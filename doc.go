// Package hbo provides hierarchical backoff locks (HBO) and the other
// lock algorithms studied in Radović & Hagersten, "Hierarchical Backoff
// Locks for Nonuniform Communication Architectures" (HPCA 2003), as a
// native Go library, together with a NUCA machine simulator that
// reproduces the paper's evaluation.
//
// # Native locks
//
// The native locks live behind this package's facade and run on real
// goroutines using sync/atomic. A Runtime describes the logical NUCA
// topology; worker goroutines register with the node they run in and
// pass the resulting *Thread to Acquire/Release:
//
//	rt := hbo.NewRuntime(2, 32)            // 2 nodes, up to 32 workers
//	lock := hbo.NewLock(hbo.HBOGTSD, rt)   // the paper's best general lock
//
//	go func() {
//	    t := rt.RegisterThread(0)          // this worker runs in node 0
//	    lock.Acquire(t)
//	    // critical section
//	    lock.Release(t)
//	}()
//
// Available algorithms: TATAS, TATASExp, MCS, CLH, RH, HBO, HBOGT and
// HBOGTSD (see AlgorithmNames). The HBO family biases lock handover
// toward threads in the owner's node, which shortens handover latency
// and keeps the data a lock guards in-node; HBO_GT throttles the global
// traffic of remote spinners; HBO_GT_SD adds starvation detection.
//
// Go cannot discover NUMA placement from inside the runtime, so node
// ids are logical: callers that pin OS threads externally get real NUCA
// affinity, while unpinned callers still benefit from reduced lock-line
// bouncing under contention.
//
// # Reproduction stack
//
// The simulator and experiment drivers live in internal packages and
// are exposed through cmd/hbobench, which regenerates every table and
// figure of the paper:
//
//	go run repro/cmd/hbobench -experiment all
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// measured-vs-paper results.
package hbo
