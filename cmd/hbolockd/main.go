// Command hbolockd is the live lock/lease daemon built on the native
// NUMA-aware lock stack: every tenant's key namespace is sharded, each
// shard arbitrated by a configurable native lock (-lock takes any
// algorithm the library implements), leases carry TTLs and monotonic
// fencing tokens, and the PR-6 observability layer streams out of the
// live process on the same port.
//
// Usage:
//
//	hbolockd -addr localhost:9151 -lock HBO -tenants 3 -shards 4
//	hbolockd -faults session -fault-seed 7 -access-log access.jsonl
//	hbolockd -data-dir /var/lib/hbolockd -snapshot-every 1024
//	hbolockd -data-dir /var/lib/hbolockd -check-data
//
// With -data-dir every lease transition is appended to a checksummed
// write-ahead log before it is acknowledged, compacted into snapshots
// every -snapshot-every records. On restart the daemon replays
// snapshot + WAL into an identical lease table (fencing tokens stay
// strictly monotonic across the crash), serving 503 recovering until
// replay completes. -check-data recovers read-only and prints the
// deterministic hbolockd-recovery/v1 report.
//
// Endpoints:
//
//	POST /v1/acquire /v1/renew /v1/release   lease operations
//	GET  /v1/inspect /v1/stats               state + per-shard counters
//	GET  /metrics /snapshot /report          live obs (watch with locktop)
//
// On SIGINT/SIGTERM the daemon drains: new operations are refused with
// 503 draining, in-flight requests finish under http.Server.Shutdown's
// -drain budget, the access log is flushed, and a final
// hbo-run-report/v1 JSON report lands at -report (default stdout).
// Exit is 0 on a clean drain.
//
// Flag validation follows the lockcheck pattern: bad values are
// rejected up front with usage text and exit status 2.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lockserv"
	"repro/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:9151", "listen address (host:port; :0 picks a port)")
		lockName  = flag.String("lock", "HBO", "shard-arbitration algorithm: "+strings.Join(core.AllNames(), ", "))
		tenants   = flag.Int("tenants", 2, "tenant namespaces to serve (t0..tN-1)")
		shards    = flag.Int("shards", 4, "shards per tenant")
		nodes     = flag.Int("nodes", 2, "logical NUCA nodes for the service runtime")
		pool      = flag.Int("pool", 4, "worker threads per node (the concurrency bound)")
		ttl       = flag.Duration("ttl", 5*time.Second, "default lease TTL")
		maxTTL    = flag.Duration("max-ttl", time.Minute, "cap on requested TTLs")
		opTimeout = flag.Duration("op-timeout", 100*time.Millisecond, "per-operation budget for thread checkout + shard-lock acquire")
		shardQPS  = flag.Float64("shard-qps", 0, "rate limit per shard in requests/second (0 = unlimited)")
		burst     = flag.Int("shard-burst", 0, "rate-limit burst (default 2x -shard-qps)")
		sweep     = flag.Duration("sweep", 250*time.Millisecond, "background lease-expiry sweep interval")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown budget for in-flight requests")

		faultSched = flag.String("faults", "", "service fault schedule: "+strings.Join(fault.ServiceSchedules(), ", ")+" (empty = none)")
		faultSeed  = flag.Uint64("fault-seed", 11, "service fault seed")
		faultInt   = flag.Float64("fault-intensity", 0.75, "service fault intensity, in (0, 1]")

		dataDir   = flag.String("data-dir", "", "durable state directory (lease WAL + snapshots); empty = in-memory only")
		snapEvery = flag.Int("snapshot-every", 65536, "WAL records between snapshot compactions (with -data-dir)")
		checkData = flag.Bool("check-data", false, "recover -data-dir read-only, print the hbolockd-recovery/v1 report, and exit")

		accessLog  = flag.String("access-log", "", "write the JSONL lease audit trail here (verify with lockload -checklog; appended, not truncated, when -data-dir is set)")
		reportPath = flag.String("report", "-", "write the final hbo-run-report/v1 JSON here on shutdown ('-' = stdout)")
	)
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "hbolockd: "+format+"\n", args...)
		os.Exit(2)
	}
	if *tenants < 1 {
		fail("-tenants must be >= 1 (got %d)", *tenants)
	}
	if *sweep <= 0 {
		fail("-sweep must be positive (got %v)", *sweep)
	}
	if *drain <= 0 {
		fail("-drain must be positive (got %v)", *drain)
	}
	if *snapEvery < 1 {
		fail("-snapshot-every must be >= 1 (got %d)", *snapEvery)
	}
	if *checkData {
		if *dataDir == "" {
			fail("-check-data requires -data-dir")
		}
		// Read-only recovery: inspecting a directory is side-effect
		// free, so running this twice yields byte-identical reports —
		// the determinism contract CI checks with cmp.
		st, err := lockserv.OpenStore(*dataDir, lockserv.StoreOptions{ReadOnly: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hbolockd: %v\n", err)
			os.Exit(1)
		}
		if err := st.Recovery().WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hbolockd: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var inj *fault.ServiceInjector
	if *faultSched != "" {
		cfg, err := fault.ServicePreset(*faultSched, *faultSeed, *faultInt)
		if err != nil {
			fail("%v", err)
		}
		inj = fault.NewServiceInjector(cfg)
	}

	var logFile *os.File
	if *accessLog != "" {
		// Durable runs append: across a crash/restart cycle the stitched
		// file is still one audit trail (the restarted daemon writes a
		// "recovered" marker first), and lockload -checklog verifies
		// fencing monotonicity straight across the boundary.
		logFlags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if *dataDir != "" {
			logFlags = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(*accessLog, logFlags, 0o644)
		if err != nil {
			fail("%v", err)
		}
		if *dataDir != "" {
			// A SIGKILLed predecessor may have left a torn final line;
			// terminate it so our first event starts a fresh line. The
			// verifier skips the blank line this adds after a clean stop.
			if st, err := f.Stat(); err == nil && st.Size() > 0 {
				_, _ = f.WriteString("\n")
			}
		}
		logFile = f
	}

	// Bring the listener up before replaying durable state so that
	// clients arriving mid-boot see 503 recovering (a retryable NACK
	// with a Retry-After hint) rather than connection refused. The
	// handler is swapped atomically once the service is live.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hbolockd: %v\n", err)
		os.Exit(1)
	}
	var handler atomic.Pointer[http.Handler]
	recovering := lockserv.RecoveringHandler(50 * time.Millisecond)
	handler.Store(&recovering)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		(*handler.Load()).ServeHTTP(w, req)
	})}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var store *lockserv.Store
	if *dataDir != "" {
		st, err := lockserv.OpenStore(*dataDir, lockserv.StoreOptions{SnapshotEvery: *snapEvery})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hbolockd: %v\n", err)
			os.Exit(1)
		}
		store = st
		rec := st.Recovery()
		fmt.Fprintf(os.Stderr, "hbolockd: recovered %s (snapshot seq %d, %d WAL frames replayed, torn tail: %v)\n",
			*dataDir, rec.SnapshotSeq, rec.FramesReplayed, rec.TornTail)
	}

	names := make([]string, *tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	reg := obs.NewRegistry()
	cfg := lockserv.Config{
		Tenants:        names,
		Shards:         *shards,
		Nodes:          *nodes,
		ThreadsPerNode: *pool,
		Lock:           *lockName,
		DefaultTTL:     *ttl,
		MaxTTL:         *maxTTL,
		OpTimeout:      *opTimeout,
		ShardQPS:       *shardQPS,
		ShardBurst:     *burst,
		Registry:       reg,
		Faults:         inj,
		Store:          store,
	}
	if logFile != nil {
		cfg.AccessLog = logFile
	}
	svc, err := lockserv.New(cfg)
	if err != nil {
		// Config validation failures are usage errors.
		fail("%v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", lockserv.Handler(svc))
	mux.Handle("/", reg.Handler())
	live := http.Handler(mux)
	handler.Store(&live)
	fmt.Fprintf(os.Stderr, "hbolockd: serving %d tenants x %d shards (lock=%s) on http://%s\n",
		*tenants, *shards, *lockName, ln.Addr())

	// Background sweeper: expire due leases promptly even on idle keys
	// and refresh the node-affinity hints off the request path.
	sweepDone := make(chan struct{})
	sweepStop := make(chan struct{})
	go func() {
		defer close(sweepDone)
		tick := time.NewTicker(*sweep)
		defer tick.Stop()
		for {
			select {
			case <-sweepStop:
				return
			case <-tick.C:
				svc.SweepDue()
				svc.RefreshAffinity()
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful drain: refuse new lease traffic, let in-flight
		// requests finish, then flush state.
		fmt.Fprintln(os.Stderr, "hbolockd: draining")
		svc.Drain()
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "hbolockd: shutdown: %v\n", err)
		}
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "hbolockd: %v\n", err)
		os.Exit(1)
	}
	close(sweepStop)
	<-sweepDone

	exit := 0
	if err := svc.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "hbolockd: access log: %v\n", err)
		exit = 1
	}
	if store != nil {
		// Clean exits fsync: SIGKILL durability rests on the WAL's
		// single-write frames, but a graceful drain should survive
		// machine crashes too.
		if err := store.Sync(); err != nil {
			fmt.Fprintf(os.Stderr, "hbolockd: store: %v\n", err)
			exit = 1
		}
		if err := store.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hbolockd: store: %v\n", err)
			exit = 1
		}
	}
	if logFile != nil {
		if err := logFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hbolockd: access log: %v\n", err)
			exit = 1
		}
	}

	w := os.Stdout
	if *reportPath != "-" && *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hbolockd: report: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := reg.Report("hbolockd").WriteJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "hbolockd: report: %v\n", err)
		exit = 1
	}
	os.Exit(exit)
}
