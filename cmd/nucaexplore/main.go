// Command nucaexplore studies how the benefit of NUCA-aware locking
// depends on the machine, extending the paper's section 2 discussion:
//
//   - NUCA-ratio sweep: scale the remote/local latency gap from 1x (a
//     uniform SMP like the SunFire 15k) up to 10x (NUMA-Q territory) and
//     report where HBO's advantage over TATAS_EXP and MCS appears.
//   - Node-count sweep: hierarchical NUCAs built from more, smaller
//     nodes (the CMP future the paper predicts).
//   - Throttle ablation: HBO vs HBO_GT vs HBO_GT_SD global traffic as
//     remote contention grows.
//
// Usage:
//
//	nucaexplore -study ratio|nodes|throttle
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
	"repro/internal/stats"
)

func main() {
	study := flag.String("study", "ratio", "ratio | nodes | throttle")
	threads := flag.Int("threads", 16, "contending threads")
	iters := flag.Int("iters", 200, "lock acquisitions per thread")
	flag.Parse()

	switch *study {
	case "ratio":
		ratioStudy(*threads, *iters)
	case "nodes":
		nodeStudy(*threads, *iters)
	case "throttle":
		throttleStudy(*threads, *iters)
	default:
		fmt.Fprintf(os.Stderr, "nucaexplore: unknown study %q\n", *study)
		os.Exit(2)
	}
}

// contend runs a contended acquire/work/release loop and returns the
// time per acquisition and the global transaction count.
func contend(cfg machine.Config, lockName string, threads, iters int) (sim.Time, uint64) {
	m := machine.New(cfg)
	cpus := make([]int, threads)
	perNode := make([]int, cfg.Nodes)
	for t := 0; t < threads; t++ {
		n := t % cfg.Nodes
		for perNode[n] >= cfg.CPUsPerNode {
			n = (n + 1) % cfg.Nodes
		}
		cpus[t] = n*cfg.CPUsPerNode + perNode[n]
		perNode[n]++
	}
	l := simlock.New(lockName, m, 0, cpus, simlock.DefaultTuning())
	data := m.Alloc(0, 2)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(uint64(tid) + 1)
			for i := 0; i < iters; i++ {
				l.Acquire(p, tid)
				p.Store(data, p.Load(data)+1)
				p.Store(data+1, p.Load(data+1)+1)
				l.Release(p, tid)
				p.Work(1500 + rng.Timen(1500))
			}
		})
	}
	m.Run()
	return m.Now() / sim.Time(threads*iters), m.Stats().Global
}

// withRatio scales the remote latencies so remote/local cache-to-cache
// equals the requested NUCA ratio.
func withRatio(ratio float64) machine.Config {
	cfg := machine.WildFire()
	cfg.CPUsPerNode = 16
	cfg.Seed = 9
	lat := cfg.Lat
	lat.C2CRemote = sim.Time(float64(lat.C2CLocal) * ratio)
	lat.MemRemote = sim.Time(float64(lat.MemLocal) * ratio)
	cfg.Lat = lat
	return cfg
}

func ratioStudy(threads, iters int) {
	t := stats.NewTable(
		"NUCA-ratio sweep: time per acquisition (µs); NUCA-aware locking pays off once the ratio is substantial",
		"NUCA ratio", "TATAS_EXP", "MCS", "HBO_GT_SD", "HBO_GT_SD/MCS")
	for _, ratio := range []float64{1, 2, 3.5, 6, 10} {
		cfg := withRatio(ratio)
		te, _ := contend(cfg, "TATAS_EXP", threads, iters)
		mc, _ := contend(cfg, "MCS", threads, iters)
		hb, _ := contend(cfg, "HBO_GT_SD", threads, iters)
		t.AddRow(stats.F(ratio, 1),
			stats.F(float64(te)/1000, 2),
			stats.F(float64(mc)/1000, 2),
			stats.F(float64(hb)/1000, 2),
			stats.F(float64(hb)/float64(mc), 2))
	}
	fmt.Print(t.String())
}

func nodeStudy(threads, iters int) {
	t := stats.NewTable(
		"Node-count sweep (fixed 32 CPUs): hierarchical NUCA from CMP-like nodes",
		"Nodes x CPUs", "TATAS_EXP", "MCS", "HBO_GT_SD")
	for _, nodes := range []int{2, 4, 8} {
		cfg := machine.WildFire()
		cfg.Nodes = nodes
		cfg.CPUsPerNode = 32 / nodes
		cfg.Seed = 9
		te, _ := contend(cfg, "TATAS_EXP", threads, iters)
		mc, _ := contend(cfg, "MCS", threads, iters)
		hb, _ := contend(cfg, "HBO_GT_SD", threads, iters)
		t.AddRow(fmt.Sprintf("%dx%d", nodes, 32/nodes),
			stats.F(float64(te)/1000, 2),
			stats.F(float64(mc)/1000, 2),
			stats.F(float64(hb)/1000, 2))
	}
	fmt.Print(t.String())
}

func throttleStudy(threads, iters int) {
	t := stats.NewTable(
		"Throttle ablation: global transactions per acquisition",
		"Lock", "Global/acq", "Time/acq (µs)")
	for _, name := range []string{"TATAS", "TATAS_EXP", "HBO", "HBO_GT", "HBO_GT_SD"} {
		cfg := machine.WildFire()
		cfg.Seed = 9
		per, glob := contend(cfg, name, threads, iters)
		t.AddRow(name,
			stats.F(float64(glob)/float64(threads*iters), 2),
			stats.F(float64(per)/1000, 2))
	}
	fmt.Print(t.String())
}
