// Command nucaexplore studies how the benefit of NUCA-aware locking
// depends on the machine, extending the paper's section 2 discussion:
//
//   - NUCA-ratio sweep: scale the remote/local latency gap from 1x (a
//     uniform SMP like the SunFire 15k) up to 10x (NUMA-Q territory) and
//     report where HBO's advantage over TATAS_EXP and MCS appears.
//   - Node-count sweep: hierarchical NUCAs built from more, smaller
//     nodes (the CMP future the paper predicts).
//   - Throttle ablation: HBO vs HBO_GT vs HBO_GT_SD global traffic as
//     remote contention grows.
//   - Cluster sweep: the cluster-scale interconnect machine at hundreds
//     of nodes, where each cell is ONE partitioned simulation spread
//     across -sim-workers cores by the conservative PDES engine.
//
// Every cell is an independent deterministic simulation, so each study
// fans its cells out over a -parallel worker pool; results land in
// fixed slots and the table is identical for any pool width. The
// cluster study adds the inner fan-out layer: -parallel spreads cells,
// -sim-workers spreads one cell's partitions, and the product is capped
// at GOMAXPROCS. Neither knob changes a single output byte.
//
// Usage:
//
//	nucaexplore -study ratio|nodes|throttle|cluster
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/simlock"
	"repro/internal/stats"
)

func main() {
	study := flag.String("study", "ratio", "ratio | nodes | throttle | cluster")
	threads := flag.Int("threads", 16, "contending threads")
	iters := flag.Int("iters", 200, "lock acquisitions per thread")
	parallel := flag.Int("parallel", par.DefaultWorkers(), "worker-pool width for independent cells (1 = sequential)")
	simWkrs := flag.Int("sim-workers", 1, "PDES worker width inside one partitioned simulation (cluster study); composes with -parallel, product capped at GOMAXPROCS")
	flag.Parse()

	pool, inner := par.Compose(*parallel, *simWkrs)
	switch *study {
	case "ratio":
		ratioStudy(*threads, *iters, pool)
	case "nodes":
		nodeStudy(*threads, *iters, pool)
	case "throttle":
		throttleStudy(*threads, *iters, pool)
	case "cluster":
		clusterStudy(*iters, pool, inner)
	default:
		fmt.Fprintf(os.Stderr, "nucaexplore: unknown study %q\n", *study)
		os.Exit(2)
	}
}

// contend runs a contended acquire/work/release loop and returns the
// time per acquisition and the global transaction count.
func contend(cfg machine.Config, lockName string, threads, iters int) (sim.Time, uint64) {
	m := machine.New(cfg)
	cpus := make([]int, threads)
	perNode := make([]int, cfg.Nodes)
	for t := 0; t < threads; t++ {
		n := t % cfg.Nodes
		for perNode[n] >= cfg.CPUsPerNode {
			n = (n + 1) % cfg.Nodes
		}
		cpus[t] = n*cfg.CPUsPerNode + perNode[n]
		perNode[n]++
	}
	l := simlock.New(lockName, m, 0, cpus, simlock.DefaultTuning())
	data := m.Alloc(0, 2)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(uint64(tid) + 1)
			for i := 0; i < iters; i++ {
				l.Acquire(p, tid)
				p.Store(data, p.Load(data)+1)
				p.Store(data+1, p.Load(data+1)+1)
				l.Release(p, tid)
				p.Work(1500 + rng.Timen(1500))
			}
		})
	}
	m.Run()
	return m.Now() / sim.Time(threads*iters), m.Stats().Global
}

// cell is one contend() outcome in a study's slot-indexed grid.
type cell struct {
	per  sim.Time
	glob uint64
}

// runGrid fans rows x cols independent cells over the worker pool.
// cfgAt returns the machine and lock for cell (row, col).
func runGrid(workers, rows, cols int, cfgAt func(r, c int) (machine.Config, string), threads, iters int) []cell {
	out := make([]cell, rows*cols)
	par.ForEach(workers, len(out), func(i int) {
		cfg, name := cfgAt(i/cols, i%cols)
		per, glob := contend(cfg, name, threads, iters)
		out[i] = cell{per: per, glob: glob}
	})
	return out
}

// withRatio scales the remote latencies so remote/local cache-to-cache
// equals the requested NUCA ratio.
func withRatio(ratio float64) machine.Config {
	cfg := machine.WildFire()
	cfg.CPUsPerNode = 16
	cfg.Seed = 9
	lat := cfg.Lat
	lat.C2CRemote = sim.Time(float64(lat.C2CLocal) * ratio)
	lat.MemRemote = sim.Time(float64(lat.MemLocal) * ratio)
	cfg.Lat = lat
	return cfg
}

func ratioStudy(threads, iters, workers int) {
	ratios := []float64{1, 2, 3.5, 6, 10}
	locks := []string{"TATAS_EXP", "MCS", "HBO_GT_SD"}
	cells := runGrid(workers, len(ratios), len(locks), func(r, c int) (machine.Config, string) {
		return withRatio(ratios[r]), locks[c]
	}, threads, iters)
	t := stats.NewTable(
		"NUCA-ratio sweep: time per acquisition (µs); NUCA-aware locking pays off once the ratio is substantial",
		"NUCA ratio", "TATAS_EXP", "MCS", "HBO_GT_SD", "HBO_GT_SD/MCS")
	for r, ratio := range ratios {
		te := cells[r*len(locks)+0].per
		mc := cells[r*len(locks)+1].per
		hb := cells[r*len(locks)+2].per
		t.AddRow(stats.F(ratio, 1),
			stats.F(float64(te)/1000, 2),
			stats.F(float64(mc)/1000, 2),
			stats.F(float64(hb)/1000, 2),
			stats.F(float64(hb)/float64(mc), 2))
	}
	fmt.Print(t.String())
}

func nodeStudy(threads, iters, workers int) {
	nodeCounts := []int{2, 4, 8}
	locks := []string{"TATAS_EXP", "MCS", "HBO_GT_SD"}
	cells := runGrid(workers, len(nodeCounts), len(locks), func(r, c int) (machine.Config, string) {
		cfg := machine.WildFire()
		cfg.Nodes = nodeCounts[r]
		cfg.CPUsPerNode = 32 / nodeCounts[r]
		cfg.Seed = 9
		return cfg, locks[c]
	}, threads, iters)
	t := stats.NewTable(
		"Node-count sweep (fixed 32 CPUs): hierarchical NUCA from CMP-like nodes",
		"Nodes x CPUs", "TATAS_EXP", "MCS", "HBO_GT_SD")
	for r, nodes := range nodeCounts {
		t.AddRow(fmt.Sprintf("%dx%d", nodes, 32/nodes),
			stats.F(float64(cells[r*len(locks)+0].per)/1000, 2),
			stats.F(float64(cells[r*len(locks)+1].per)/1000, 2),
			stats.F(float64(cells[r*len(locks)+2].per)/1000, 2))
	}
	fmt.Print(t.String())
}

// clusterStudy sweeps the cluster-scale interconnect machine: node
// counts far past the word-level machine's sharer bitmap, uniform
// exponential backoff vs HBO remote throttling. Each cell is one
// partitioned simulation run across `inner` PDES workers; the cells
// themselves fan over the `pool`-wide worker pool.
func clusterStudy(iters, pool, inner int) {
	nodeCounts := []int{16, 64, 256}
	policies := []machine.ClusterPolicy{machine.ClusterTATASExp, machine.ClusterHBO}
	lat := machine.WildFireLatencies()
	lat.C2CFar = 3400
	lat.MemFar = 3000
	results := make([]machine.ClusterResult, len(nodeCounts)*len(policies))
	par.ForEach(pool, len(results), func(i int) {
		cfg := machine.ClusterConfig{
			Nodes:       nodeCounts[i/len(policies)],
			CPUsPerNode: 4,
			ClusterSize: 8,
			Lat:         lat,
			Policy:      policies[i%len(policies)],
			Iters:       iters,
			Think:       4000,
			Hold:        600,
			Base:        2,
			Cap:         256,
			RemoteCap:   4096,
			Seed:        9,
		}
		results[i] = machine.RunCluster(cfg, inner)
	})
	t := stats.NewTable(
		"Cluster sweep: one big machine per cell, partitioned across -sim-workers cores",
		"Nodes", "Policy", "Acquires", "Global/acq", "Fairness", "Sim time (µs)")
	for i, r := range results {
		t.AddRow(
			fmt.Sprintf("%d", nodeCounts[i/len(policies)]),
			string(r.Policy),
			fmt.Sprintf("%d", r.Acquires),
			stats.F(r.GlobalPerAcquire(), 2),
			stats.F(r.Fairness(), 2),
			stats.F(float64(r.Elapsed)/1000, 1))
	}
	fmt.Print(t.String())
}

func throttleStudy(threads, iters, workers int) {
	locks := []string{"TATAS", "TATAS_EXP", "HBO", "HBO_GT", "HBO_GT_SD"}
	cells := runGrid(workers, len(locks), 1, func(r, _ int) (machine.Config, string) {
		cfg := machine.WildFire()
		cfg.Seed = 9
		return cfg, locks[r]
	}, threads, iters)
	t := stats.NewTable(
		"Throttle ablation: global transactions per acquisition",
		"Lock", "Global/acq", "Time/acq (µs)")
	for r, name := range locks {
		t.AddRow(name,
			stats.F(float64(cells[r].glob)/float64(threads*iters), 2),
			stats.F(float64(cells[r].per)/1000, 2))
	}
	fmt.Print(t.String())
}
