package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"text/tabwriter"
	"time"

	"repro/internal/lockserv"
)

// Service view: when the polled endpoint is an hbolockd (it serves
// /v1/stats next to the obs endpoints), locktop renders the lease
// service's per-tenant/per-shard activity above the per-lock table —
// grants per second, contention, expiry and shed counts, live keys.
// Plain obs endpoints (hbobench -metrics-addr) have no /v1/stats and
// the section is skipped; detection is one probe at startup.

// fetchServiceStats polls /v1/stats. ok=false with a nil error means
// the endpoint is not a lock service (404); schema mismatches and
// transport failures are errors.
func fetchServiceStats(client *http.Client, base string) (lockserv.Stats, bool, error) {
	var st lockserv.Stats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return st, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return st, false, fmt.Errorf("GET /v1/stats: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, false, fmt.Errorf("decoding /v1/stats: %w", err)
	}
	if st.Schema != lockserv.StatsSchema {
		return st, false, fmt.Errorf("unexpected stats schema %q (want %s)", st.Schema, lockserv.StatsSchema)
	}
	return st, true, nil
}

// renderService writes the per-tenant/per-shard service table. With
// rates set, st is a delta over elapsed and ACQ shows grants+renews
// per second; otherwise totals. Keys is always the live gauge.
func renderService(w io.Writer, st lockserv.Stats, elapsed time.Duration, rates bool) {
	mode := ""
	if st.Draining {
		mode = "  DRAINING"
	}
	fmt.Fprintf(w, "service  lock=%s  nodes=%d%s\n", st.Lock, st.Nodes, mode)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	acqHdr := "ACQ"
	if rates {
		acqHdr = "ACQ/s"
	}
	fmt.Fprintf(tw, "TENANT\tSHARD\tNODE\tKEYS\t%s\tCONT%%\tSTALE\tEXPIRED\tSHED\t\n", acqHdr)
	for _, t := range st.Tenants {
		for _, sh := range t.Shards {
			fmt.Fprint(tw, serviceRow(t.Tenant, fmt.Sprintf("s%d", sh.Shard), fmt.Sprintf("%d", sh.Node), sh, elapsed, rates))
		}
		if len(t.Shards) > 1 {
			fmt.Fprint(tw, serviceRow(t.Tenant, "all", "-", t.Totals(), elapsed, rates))
		}
	}
	tw.Flush()
}

// serviceRow renders one shard (or tenant-total) line.
func serviceRow(tenant, shard, node string, s lockserv.ShardStats, elapsed time.Duration, rates bool) string {
	acquired := s.Grants + s.Renews
	acqCol := fmt.Sprintf("%d", acquired)
	if rates && elapsed > 0 {
		acqCol = fmt.Sprintf("%.0f", float64(acquired)/elapsed.Seconds())
	}
	return fmt.Sprintf("%s\t%s\t%s\t%d\t%s\t%s\t%d\t%d\t%d\t\n",
		tenant, shard, node, s.Keys,
		acqCol,
		pct(s.Conflicts, s.Attempts),
		s.Stales,
		s.Expiries,
		s.Throttled+s.Busy+s.NACKs)
}
