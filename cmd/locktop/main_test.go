package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

func histOf(values ...int64) stats.HistogramSnapshot {
	var h stats.Histogram
	for _, v := range values {
		h.Add(v)
	}
	return h.Snapshot()
}

func TestRenderRates(t *testing.T) {
	snap := obs.Snapshot{
		Schema: obs.SnapshotSchema,
		Locks: []obs.LockSnapshot{
			{
				Name:           "HBO",
				Attempts:       2100,
				Contended:      1050,
				Aborts:         100,
				SpinIterations: 4000,
				HandoffLocal:   30,
				HandoffRemote:  10,
				Wait:           histOf(2_000, 2_000, 6_000_000),
				Hold:           histOf(500, 900),
			},
			{Name: "quiet"},
		},
	}
	var b strings.Builder
	render(&b, snap, 2*time.Second, true)
	out := b.String()

	for _, want := range []string{
		"LOCK", "ACQ/s", "CONT%", "ABORT%", "LOCAL%", "SPINS/ACQ",
		"WAIT p50", "HOLD p99",
		"HBO",
		"1000", // acquires/s: (2100-100)/2s
		"50.0", // contended %
		"4.8",  // abort %: 100/2100
		"75.0", // locality: 30/40
		"2.0",  // spins/acq: 4000/2000
		"quiet",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	// The quiet lock's derived columns are all dashes.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "quiet") && strings.Count(line, "-") < 7 {
			t.Errorf("quiet lock row should be dashed out: %q", line)
		}
	}
}

func TestRenderAbsolute(t *testing.T) {
	snap := obs.Snapshot{
		Schema: obs.SnapshotSchema,
		Locks:  []obs.LockSnapshot{{Name: "x", Attempts: 7}},
	}
	var b strings.Builder
	render(&b, snap, 0, false)
	out := b.String()
	if !strings.Contains(out, "ACQ") || strings.Contains(out, "ACQ/s") {
		t.Errorf("absolute header wrong:\n%s", out)
	}
	if !strings.Contains(out, "7") {
		t.Errorf("absolute count missing:\n%s", out)
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "-"},
		{815, "815ns"},
		{3_400, "3.4µs"},
		{1_200_000, "1.2ms"},
		{2_500_000_000, "2.50s"},
	}
	for _, c := range cases {
		if got := fmtDur(c.ns); got != c.want {
			t.Errorf("fmtDur(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestBaseURL(t *testing.T) {
	cases := map[string]string{
		"localhost:9141":      "http://localhost:9141",
		"http://10.0.0.1:80/": "http://10.0.0.1:80",
		"https://host:1/":     "https://host:1",
	}
	for in, want := range cases {
		if got := baseURL(in); got != want {
			t.Errorf("baseURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestAgainstLiveEndpoint drives the full fetch → delta → render and
// promcheck paths against a real obs handler.
func TestAgainstLiveEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	rt := core.NewRuntime(1, 1)
	l := reg.Instrument(core.NewTATAS(), "live", obs.WithSampleEvery(1))
	th := rt.RegisterThread(0)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	// Empty registry activity: promcheck must fail.
	if err := promCheck(client, srv.URL); err == nil {
		t.Fatal("promCheck passed with zero activity")
	}

	first, err := fetchSnapshot(client, srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		l.Acquire(th)
		l.Release(th)
	}

	if err := promCheck(client, srv.URL); err != nil {
		t.Fatalf("promCheck on active registry: %v", err)
	}
	second, err := fetchSnapshot(client, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	d := second.Delta(first)
	if len(d.Locks) != 1 || d.Locks[0].Attempts != 10 {
		t.Fatalf("delta = %+v", d.Locks)
	}
	var b strings.Builder
	render(&b, d, time.Second, true)
	if !strings.Contains(b.String(), "live") {
		t.Fatalf("render missing lock name:\n%s", b.String())
	}
}
