// Command locktop is top(1) for instrumented locks: it polls the
// /snapshot endpoint served by internal/obs (hbo.MetricsHandler, or
// hbobench -metrics-addr), differences successive snapshots, and
// renders a per-lock activity table — acquires per second, contention
// and abort rates, node-handoff locality, spins per acquire, and the
// sampled wait/hold latency quantiles.
//
// Usage:
//
//	locktop [-addr localhost:9141] [-interval 1s] [-count N]
//	locktop -once        # one absolute snapshot, no rates
//	locktop -promcheck   # CI probe: /metrics parses and shows activity
//
// With -count N it renders N delta frames and exits (frames print
// sequentially, suitable for logs); without it the screen is redrawn
// in place each interval. -promcheck fetches /metrics, validates the
// Prometheus exposition, and exits nonzero unless at least one lock
// reports a nonzero hbo_lock_attempts_total.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/lockserv"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	addr := flag.String("addr", "localhost:9141", "metrics endpoint host:port or URL")
	interval := flag.Duration("interval", time.Second, "poll interval between frames")
	once := flag.Bool("once", false, "print one absolute snapshot and exit")
	count := flag.Int("count", 0, "render this many delta frames then exit (0 = run until interrupted)")
	promcheck := flag.Bool("promcheck", false, "validate the /metrics Prometheus exposition and exit")
	flag.Parse()

	base := baseURL(*addr)
	client := &http.Client{Timeout: 10 * time.Second}

	if *promcheck {
		if err := promCheck(client, base); err != nil {
			fmt.Fprintf(os.Stderr, "locktop: promcheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("promcheck ok")
		return
	}

	prev, err := fetchSnapshot(client, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "locktop: %v\n", err)
		os.Exit(1)
	}
	// Auto-detect a lease service: hbolockd serves /v1/stats next to
	// the obs endpoints, plain obs registries don't.
	prevServ, isService, err := fetchServiceStats(client, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "locktop: %v\n", err)
		os.Exit(1)
	}
	if *once {
		if isService {
			renderService(os.Stdout, prevServ, 0, false)
			fmt.Println()
		}
		render(os.Stdout, prev, 0, false)
		return
	}

	for frame := 1; ; frame++ {
		time.Sleep(*interval)
		cur, err := fetchSnapshot(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "locktop: %v\n", err)
			os.Exit(1)
		}
		var curServ lockserv.Stats
		if isService {
			if curServ, _, err = fetchServiceStats(client, base); err != nil {
				fmt.Fprintf(os.Stderr, "locktop: %v\n", err)
				os.Exit(1)
			}
		}
		if *count == 0 {
			// Interactive mode: redraw in place.
			fmt.Print("\033[H\033[2J")
		}
		fmt.Printf("locktop  %s  window=%s  frame %d\n", base, *interval, frame)
		if isService {
			renderService(os.Stdout, curServ.Delta(prevServ), *interval, true)
			prevServ = curServ
			fmt.Println()
		}
		render(os.Stdout, cur.Delta(prev), *interval, true)
		prev = cur
		if *count > 0 && frame >= *count {
			return
		}
	}
}

// baseURL normalizes a host:port or URL flag value to a scheme-prefixed
// base with no trailing slash.
func baseURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

func fetchSnapshot(client *http.Client, base string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := client.Get(base + "/snapshot")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET /snapshot: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decoding /snapshot: %w", err)
	}
	if snap.Schema != obs.SnapshotSchema {
		return snap, fmt.Errorf("unexpected snapshot schema %q", snap.Schema)
	}
	return snap, nil
}

// render writes the per-lock table. With rates set, s is a delta over
// elapsed and the first column shows acquires per second; otherwise s
// is absolute and totals are shown.
func render(w io.Writer, s obs.Snapshot, elapsed time.Duration, rates bool) {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	acqHdr := "ACQ"
	if rates {
		acqHdr = "ACQ/s"
	}
	fmt.Fprintf(tw, "LOCK\t%s\tCONT%%\tABORT%%\tLOCAL%%\tSPINS/ACQ\tWAIT p50\tWAIT p99\tHOLD p50\tHOLD p99\t\n", acqHdr)
	for _, l := range s.Locks {
		acquired := l.Attempts - l.Aborts
		acqCol := fmt.Sprintf("%d", acquired)
		if rates && elapsed > 0 {
			acqCol = fmt.Sprintf("%.0f", float64(acquired)/elapsed.Seconds())
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t\n",
			l.Name,
			acqCol,
			pct(l.Contended, l.Attempts),
			pct(l.Aborts, l.Attempts),
			localPct(l),
			perAcq(l.SpinIterations, acquired),
			quantileCol(l.Wait, 0.5),
			quantileCol(l.Wait, 0.99),
			quantileCol(l.Hold, 0.5),
			quantileCol(l.Hold, 0.99),
		)
	}
	tw.Flush()
}

// pct formats part/whole as a percentage, "-" when whole is zero.
func pct(part, whole uint64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(part)/float64(whole))
}

// localPct shows handoff locality, "-" until a handoff is observed.
func localPct(l obs.LockSnapshot) string {
	if l.HandoffLocal+l.HandoffRemote == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*l.LocalityRatio())
}

func perAcq(spins int64, acquired uint64) string {
	if acquired == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(spins)/float64(acquired))
}

func quantileCol(h stats.HistogramSnapshot, q float64) string {
	return fmtDur(h.Quantile(q))
}

// fmtDur renders a nanosecond latency compactly: 815ns, 3.4µs, 1.2ms,
// 2.5s. Zero (an empty histogram quantile) renders as "-".
func fmtDur(ns int64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1_000)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1_000_000)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1_000_000_000)
	}
}

// promCheck validates the live Prometheus exposition: it must parse,
// and at least one lock must report a nonzero attempts counter. CI runs
// this against a mid-run hbobench soak.
func promCheck(client *http.Client, base string) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	samples, err := obs.ParsePrometheus(string(body))
	if err != nil {
		return fmt.Errorf("exposition does not parse: %w", err)
	}
	for _, s := range samples {
		if s.Name == "hbo_lock_attempts_total" && s.Value > 0 {
			return nil
		}
	}
	return fmt.Errorf("no nonzero hbo_lock_attempts_total in %d samples", len(samples))
}
