// Command locktrace runs a small contended scenario on the simulated
// NUCA machine and prints a per-thread timeline plus handover
// statistics — a magnifying glass for how each algorithm schedules its
// critical section.
//
// Usage:
//
//	locktrace -lock HBO_GT_SD -threads 8 -iters 20
//	locktrace -lock MCS -csv > events.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
	"repro/internal/trace"
)

func main() {
	var (
		lockName = flag.String("lock", "HBO_GT_SD", "lock algorithm (see -list)")
		threads  = flag.Int("threads", 8, "contending threads")
		iters    = flag.Int("iters", 20, "acquisitions per thread")
		cs       = flag.Int("cs", 1000, "critical-section work, ns")
		think    = flag.Int("think", 2000, "max random think time, ns")
		width    = flag.Int("width", 100, "timeline width, characters")
		csv      = flag.Bool("csv", false, "dump raw events as CSV instead")
		list     = flag.Bool("list", false, "list lock algorithms and exit")
		seed     = flag.Uint64("seed", 42, "simulation seed")
	)
	flag.Parse()

	if *list {
		for _, n := range simlock.AllNames() {
			fmt.Println(n)
		}
		return
	}

	cfg := machine.WildFire()
	cfg.Seed = *seed
	if *threads > cfg.TotalCPUs() {
		fmt.Fprintf(os.Stderr, "locktrace: at most %d threads\n", cfg.TotalCPUs())
		os.Exit(2)
	}
	m := machine.New(cfg)
	cpus := make([]int, *threads)
	next := make([]int, cfg.Nodes)
	for i := range cpus {
		n := i % cfg.Nodes
		cpus[i] = n*cfg.CPUsPerNode + next[n]
		next[n]++
	}

	rec := trace.NewRecorder()
	l := trace.Wrap(simlock.New(*lockName, m, 0, cpus, simlock.DefaultTuning()), rec)
	for tid := 0; tid < *threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(*seed*31 + uint64(tid))
			for i := 0; i < *iters; i++ {
				l.Acquire(p, tid)
				p.Work(sim.Time(*cs))
				l.Release(p, tid)
				p.Work(rng.Timen(sim.Time(*think)) + 100)
			}
		})
	}
	m.Run()

	if *csv {
		fmt.Print(rec.CSV())
		return
	}
	s := rec.Analyze()
	fmt.Printf("lock: %s   threads: %d x %d acquisitions\n\n", *lockName, *threads, *iters)
	fmt.Print(rec.Timeline(*width))
	fmt.Printf("\nacquisitions:  %d\n", s.Acquisitions)
	fmt.Printf("mean wait:     %v\n", s.MeanWait())
	fmt.Printf("mean hold:     %v\n", s.MeanHold())
	fmt.Printf("node handoffs: %.2f of handovers\n", s.HandoffRatio())
	fmt.Printf("total time:    %v\n", m.Now())
	fmt.Printf("global txns:   %d\n", m.Stats().Global)
	perThread := make([]int, 0, len(s.PerThread))
	for tid := 0; tid < *threads; tid++ {
		perThread = append(perThread, s.PerThread[tid])
	}
	fmt.Printf("per-thread:    %v\n", perThread)
}
