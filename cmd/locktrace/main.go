// Command locktrace runs a small contended scenario on the simulated
// NUCA machine and prints a per-thread timeline plus handover
// statistics — a magnifying glass for how each algorithm schedules its
// critical section.
//
// Usage:
//
//	locktrace -lock HBO_GT_SD -threads 8 -iters 20
//	locktrace -lock MCS -csv > events.csv
//	locktrace -lock HBO -json > report.json   # machine-readable report
//	locktrace -lock RH -trace out.json        # open in ui.perfetto.dev
//	locktrace -lock MCS,CLH,HBO -json         # compare several algorithms
//	locktrace -lock HBO_GT -fault-schedule pause -timeout 50us
//
// -lock accepts a comma-separated list (or "all"). Each algorithm's run
// is an independent deterministic simulation, so multi-lock invocations
// fan out over a -parallel worker pool and print results in the order
// listed — output is identical for any -parallel value.
//
// -fault-schedule degrades the machine with one of internal/fault's
// plans (spike, storm, pause, nack, all) at -fault-intensity, seeded by
// -fault-seed. -timeout switches locks with a timed path to abortable
// acquires with that budget (Go duration syntax); aborted waits show as
// '-' in the timeline, "abort" slices in the Perfetto trace, and abort
// counts in the JSON report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simlock"
	"repro/internal/trace"
)

// runResult is everything one lock's scenario produces.
type runResult struct {
	rec *trace.Recorder
	m   *machine.Machine
}

// runScenario executes the contended scenario for one lock algorithm,
// optionally on a degraded machine and through the timed acquire path.
func runScenario(lockName string, threads, iters, cs, think int, seed uint64,
	fc fault.Config, timeout sim.Time) runResult {
	cfg := machine.WildFire()
	cfg.Seed = seed
	cfg.Fault = fc
	m := machine.New(cfg)
	cpus := make([]int, threads)
	next := make([]int, cfg.Nodes)
	for i := range cpus {
		n := i % cfg.Nodes
		cpus[i] = n*cfg.CPUsPerNode + next[n]
		next[n]++
	}

	rec := trace.NewRecorder()
	w0 := m.AllocatedWords()
	inner := simlock.New(lockName, m, 0, cpus, simlock.DefaultTuning())
	if lockWords := m.AllocatedWords() - w0; lockWords > 0 {
		m.LabelRange(machine.Addr(w0), lockWords, "lock")
	}
	l := trace.Wrap(inner, rec)
	var timed simlock.TimedLock
	if timeout > 0 {
		timed, _ = l.(simlock.TimedLock)
	}
	for tid := 0; tid < threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(seed*31 + uint64(tid))
			for i := 0; i < iters; i++ {
				if timed != nil {
					for !timed.AcquireTimeout(p, tid, timeout) {
						p.Delay(100)
					}
				} else {
					l.Acquire(p, tid)
				}
				p.Work(sim.Time(cs))
				l.Release(p, tid)
				p.Work(rng.Timen(sim.Time(think)) + 100)
			}
		})
	}
	m.Run()
	return runResult{rec: rec, m: m}
}

func main() {
	var (
		lockName = flag.String("lock", "HBO_GT_SD", "lock algorithm, comma-separated list, or 'all' (see -list)")
		threads  = flag.Int("threads", 8, "contending threads")
		iters    = flag.Int("iters", 20, "acquisitions per thread")
		cs       = flag.Int("cs", 1000, "critical-section work, ns")
		think    = flag.Int("think", 2000, "max random think time, ns")
		width    = flag.Int("width", 100, "timeline width, characters")
		csv      = flag.Bool("csv", false, "dump raw events as CSV instead")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON run report instead")
		traceOut = flag.String("trace", "", "also write a Perfetto/Chrome trace-event file")
		list     = flag.Bool("list", false, "list lock algorithms and exit")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		parallel = flag.Int("parallel", par.DefaultWorkers(), "worker-pool width for multi-lock runs (1 = sequential)")
		simWkrs  = flag.Int("sim-workers", 1, "reserved PDES width per run; shrinks -parallel so the product stays within GOMAXPROCS (word-level traces are single-partition)")
		fSched   = flag.String("fault-schedule", "", "degrade the machine: "+strings.Join(fault.Schedules(), ", ")+" (empty = healthy)")
		fIntens  = flag.Float64("fault-intensity", 0.75, "fault intensity, in (0, 1]")
		fSeed    = flag.Uint64("fault-seed", 42, "fault-plan seed")
		timeout  = flag.Duration("timeout", 0, "timed-acquire budget for abortable locks (0 = blocking)")
	)
	flag.Parse()

	var fc fault.Config
	if *fSched != "" {
		var err error
		fc, err = fault.Preset(*fSched, *fSeed, *fIntens)
		if err != nil {
			fmt.Fprintf(os.Stderr, "locktrace: %v\n", err)
			os.Exit(2)
		}
	}
	if *timeout < 0 {
		fmt.Fprintln(os.Stderr, "locktrace: -timeout must be non-negative")
		os.Exit(2)
	}

	if *list {
		for _, n := range simlock.AllNames() {
			fmt.Println(n)
		}
		return
	}

	var locks []string
	if *lockName == "all" {
		locks = simlock.AllNames()
	} else {
		for _, n := range strings.Split(*lockName, ",") {
			if n = strings.TrimSpace(n); n != "" {
				locks = append(locks, n)
			}
		}
	}
	if len(locks) == 0 {
		fmt.Fprintln(os.Stderr, "locktrace: no lock named")
		os.Exit(2)
	}
	if *traceOut != "" && len(locks) > 1 {
		fmt.Fprintln(os.Stderr, "locktrace: -trace needs a single -lock")
		os.Exit(2)
	}

	cfg := machine.WildFire()
	if *threads > cfg.TotalCPUs() {
		fmt.Fprintf(os.Stderr, "locktrace: at most %d threads\n", cfg.TotalCPUs())
		os.Exit(2)
	}

	// Fan the independent per-lock simulations out, then print results
	// in the listed order.
	simTimeout := sim.Time(timeout.Nanoseconds())
	results := make([]runResult, len(locks))
	pool, _ := par.Compose(*parallel, *simWkrs)
	par.ForEach(pool, len(locks), func(i int) {
		results[i] = runScenario(locks[i], *threads, *iters, *cs, *think, *seed, fc, simTimeout)
	})

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "locktrace: %v\n", err)
			os.Exit(1)
		}
		if err := results[0].rec.TraceJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "locktrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "locktrace: wrote %s (open in ui.perfetto.dev)\n", *traceOut)
	}

	if *csv {
		for i, r := range results {
			if len(results) > 1 {
				fmt.Printf("# lock: %s\n", locks[i])
			}
			fmt.Print(r.rec.CSV())
		}
		return
	}

	if *jsonOut {
		rep := &experiments.Report{
			Schema:     experiments.ReportSchema,
			Tool:       "locktrace",
			Experiment: "locktrace",
			Seed:       *seed,
			Host:       report.Host(),
			Machine: experiments.MachineSummary{
				Nodes:       cfg.Nodes,
				CPUsPerNode: cfg.CPUsPerNode,
				Preset:      "WildFire",
			},
			Params: map[string]int{
				"threads":  *threads,
				"iters":    *iters,
				"cs_ns":    *cs,
				"think_ns": *think,
			},
		}
		if simTimeout > 0 {
			rep.Params["timeout_ns"] = int(simTimeout)
		}
		if *fSched != "" {
			rep.Fault = &experiments.FaultReport{Schedule: *fSched, Seed: *fSeed, Intensity: *fIntens}
		}
		for i, r := range results {
			st := r.rec.Analyze()
			lr := experiments.BuildLockReport(locks[i], st, *threads, r.m.Stats(), r.m.LineStats())
			lr.TotalTimeNS = int64(r.m.Now())
			lr.Aborts = st.Abandoned
			lr.AbortRate = st.AbortRate()
			if *fSched != "" {
				fs := r.m.FaultStats()
				lr.FaultStats = &fs
			}
			rep.Locks = append(rep.Locks, lr)
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "locktrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	for i, r := range results {
		printSummary(locks[i], r, *threads, *iters, *width)
		if i < len(results)-1 {
			fmt.Println()
		}
	}
}

// printSummary renders the human-readable timeline and statistics for
// one lock's run.
func printSummary(lockName string, r runResult, threads, iters, width int) {
	s := r.rec.Analyze()
	m := r.m
	fmt.Printf("lock: %s   threads: %d x %d acquisitions\n\n", lockName, threads, iters)
	fmt.Print(r.rec.Timeline(width))
	fmt.Printf("\nacquisitions:  %d\n", s.Acquisitions)
	if s.Abandoned > 0 {
		fmt.Printf("aborted waits: %d (%.1f%% of attempts)\n", s.Abandoned, 100*s.AbortRate())
	}
	fmt.Printf("mean wait:     %v\n", s.MeanWait())
	fmt.Printf("wait p50/p90/p99: %v / %v / %v\n",
		s.WaitQuantile(0.50), s.WaitQuantile(0.90), s.WaitQuantile(0.99))
	fmt.Printf("mean hold:     %v\n", s.MeanHold())
	fmt.Printf("node handoffs: %.2f of handovers\n", s.HandoffRatio())
	fmt.Printf("total time:    %v\n", m.Now())
	traffic := m.Stats()
	fmt.Printf("local txns:    %v (per node, total %d)\n", traffic.Local, traffic.TotalLocal())
	fmt.Printf("global txns:   %d\n", traffic.Global)
	perThread := make([]int, 0, len(s.PerThread))
	for tid := 0; tid < threads; tid++ {
		perThread = append(perThread, s.PerThread[tid])
	}
	fmt.Printf("per-thread:    %v\n", perThread)
	fmt.Printf("\nhot lines (addr home label: local/global txns):\n")
	for _, ls := range m.HotLines(5) {
		label := ls.Label
		if label == "" {
			label = "-"
		}
		fmt.Printf("  %5d n%d %-8s %d/%d  misses=%d invals=%d transfers=%d\n",
			ls.Addr, ls.Home, label, ls.Local, ls.Global,
			ls.Misses, ls.Invalidations, ls.Transfers)
	}
}
