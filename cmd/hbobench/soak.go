package main

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// runSoak drives a native contended workload over real locks from
// internal/core, instrumented through the obs registry, for wall-clock
// duration d split evenly across the selected algorithms. While it runs
// the registry's live metrics move, which is what -metrics-addr (and
// cmd/locktop, and the CI scrape job) observe; at the end the registry
// renders as an hbo-run-report/v1 JSON document on w.
//
// Each lock gets its own two-node runtime with threads workers pinned
// round-robin across the nodes, hammering a lock-protected counter.
// When timedFrac > 0 and the lock supports timed acquisition, that
// fraction of attempts goes through AcquireFor with a short deadline so
// the abort path gets exercised under real contention.
// Cancelling ctx (SIGINT/SIGTERM in the CLI) ends the soak early:
// workers drain at the next loop check, remaining locks are skipped,
// and the report still flushes with whatever was observed — a soak
// interrupted at the terminal leaves a valid report behind, not a
// truncated one.
func runSoak(ctx context.Context, w io.Writer, reg *obs.Registry, d time.Duration, names []string, threads int, timedFrac float64) error {
	if threads <= 0 {
		threads = runtime.NumCPU()
	}
	if threads < 2 {
		threads = 2 // a soak with no contention observes nothing
	}
	if len(names) == 0 {
		return fmt.Errorf("no lock algorithms selected")
	}
	slice := d / time.Duration(len(names))
	if slice <= 0 {
		slice = time.Millisecond
	}
	for _, name := range names {
		if ctx.Err() != nil {
			break
		}
		// Cluster size 1 keeps the topology valid for every
		// algorithm, including the hierarchical ones.
		rt := core.NewRuntimeHierarchical(2, 1, threads)
		l := reg.Instrument(core.New(name, rt, core.DefaultTuning()), name)
		soakLock(ctx, l, rt, threads, slice, timedFrac)
	}
	return reg.Report("hbobench").WriteJSON(w)
}

// soakLock runs the worker loop for one instrumented lock.
func soakLock(ctx context.Context, l core.Lock, rt *core.Runtime, threads int, d time.Duration, timedFrac float64) {
	timedEvery := 0
	if timedFrac > 0 {
		timedEvery = int(1 / timedFrac)
		if timedEvery < 1 {
			timedEvery = 1
		}
	}
	deadline := time.Now().Add(d)
	var shared uint64 // protected by l
	done := make(chan struct{})
	for i := 0; i < threads; i++ {
		go func(node int) {
			defer func() { done <- struct{}{} }()
			t := rt.RegisterThread(node)
			tl, timed := l.(core.TimedLock)
			for k := 0; time.Now().Before(deadline) && ctx.Err() == nil; k++ {
				if timed && timedEvery > 0 && k%timedEvery == 0 {
					if !tl.AcquireFor(t, 50*time.Microsecond) {
						continue // aborted: recorded, retry plain
					}
				} else {
					l.Acquire(t)
				}
				shared++
				l.Release(t)
			}
			if s, ok := l.(interface{ Sync(*core.Thread) }); ok {
				s.Sync(t)
			}
		}(i % 2)
	}
	for i := 0; i < threads; i++ {
		<-done
	}
	_ = shared
}

// soakLockNames resolves the -soak-locks flag: "all", "paper", or a
// comma-separated list of algorithm names.
func soakLockNames(flagVal string) ([]string, error) {
	switch flagVal {
	case "all":
		return core.AllNames(), nil
	case "paper":
		return core.Names(), nil
	}
	known := map[string]bool{}
	for _, n := range core.AllNames() {
		known[n] = true
	}
	var out []string
	for _, n := range strings.Split(flagVal, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !known[n] {
			return nil, fmt.Errorf("unknown lock %q (known: %s)", n, strings.Join(core.AllNames(), ", "))
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -soak-locks")
	}
	return out, nil
}
