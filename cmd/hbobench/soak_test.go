package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSoakLockNames(t *testing.T) {
	if names, err := soakLockNames("all"); err != nil || len(names) != 15 {
		t.Fatalf("all = %v, %v", names, err)
	}
	if names, err := soakLockNames("paper"); err != nil || len(names) != 8 {
		t.Fatalf("paper = %v, %v", names, err)
	}
	names, err := soakLockNames("HBO, TATAS")
	if err != nil || strings.Join(names, "+") != "HBO+TATAS" {
		t.Fatalf("list = %v, %v", names, err)
	}
	if _, err := soakLockNames("NOPE"); err == nil {
		t.Fatal("unknown lock accepted")
	}
	if _, err := soakLockNames(","); err == nil {
		t.Fatal("empty list accepted")
	}
}

// TestRunSoakProducesLiveReport runs a short real soak over two locks
// and checks the emitted report reflects actual contended activity.
func TestRunSoakProducesLiveReport(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	err := runSoak(context.Background(), &buf, reg, 100*time.Millisecond, []string{"TATAS", "HBO"}, 4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema string `json:"schema"`
		Tool   string `json:"tool"`
		Host   struct {
			CPUs int `json:"cpus"`
		} `json:"host"`
		Locks []struct {
			Lock         string `json:"lock"`
			Acquisitions int    `json:"acquisitions"`
		} `json:"locks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Schema != "hbo-run-report/v1" || rep.Tool != "hbobench" {
		t.Fatalf("schema/tool = %q/%q", rep.Schema, rep.Tool)
	}
	if rep.Host.CPUs < 1 {
		t.Fatalf("host block missing: %+v", rep.Host)
	}
	if len(rep.Locks) != 2 {
		t.Fatalf("locks = %+v", rep.Locks)
	}
	for _, l := range rep.Locks {
		if l.Acquisitions < 10 {
			t.Errorf("%s: only %d acquisitions in a 50ms soak slice", l.Lock, l.Acquisitions)
		}
	}

	// The registry behind the report is also the scrape target: its
	// exposition must show the soak's activity (locktop -promcheck
	// applies the same predicate to the HTTP endpoint).
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParsePrometheus(prom.String())
	if err != nil {
		t.Fatal(err)
	}
	if s := obs.FindSample(samples, "hbo_lock_attempts_total", map[string]string{"lock": "TATAS"}); s == nil || s.Value < 10 {
		t.Fatalf("attempts sample = %+v", s)
	}
}

// TestRunSoakCancelled: cancelling the context (what SIGINT does in
// main) ends a long soak early and still flushes a valid report.
func TestRunSoakCancelled(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := runSoak(ctx, &buf, reg, time.Hour, []string{"TATAS", "HBO"}, 4, 0); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 10*time.Second {
		t.Fatalf("cancelled soak took %v", e)
	}
	var rep struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("interrupted report does not parse: %v", err)
	}
	if rep.Schema != "hbo-run-report/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
}
