// Command hbobench regenerates the tables and figures of "Hierarchical
// Backoff Locks for Nonuniform Communication Architectures" (HPCA 2003)
// from the simulation stack.
//
// Usage:
//
//	hbobench -experiment table1            # one experiment
//	hbobench -experiment all               # everything, paper order
//	hbobench -experiment fig5 -csv         # CSV series for plotting
//	hbobench -experiment cmp1              # measured vs paper, side by side
//	hbobench -experiment ext2              # beyond-the-paper studies
//	hbobench -experiment all -out results  # also write per-table files
//	hbobench -json                         # machine-readable run report
//	hbobench -modern                       # HBO vs CNA/HMCS-T JSON report
//	hbobench -faults                       # degraded-mode JSON report
//	hbobench -experiment deg1              # degradation curve tables
//	hbobench -list                         # show available experiments
//	hbobench -parallel 1                   # force a sequential run
//	hbobench -cpuprofile cpu.pprof         # profile with go tool pprof
//	hbobench -soak 10s -metrics-addr localhost:9141
//	                                       # native soak with live metrics
//
// Flags -seeds, -scale, -threads and -quick trade fidelity for speed.
//
// Every simulation cell — one (lock, seed, thread-count) run — is
// deterministic and independent, so cells fan out over a worker pool of
// -parallel goroutines (default: one per CPU). Results merge back in a
// fixed canonical order: output is byte-identical for any -parallel
// value, including 1.
//
// -sim-workers adds a second, inner fan-out layer: partitioned
// simulations (the cluster-scale experiments, e.g. clu1) run ONE
// machine across that many cores via conservative PDES. The two layers
// compose — -parallel across cells, -sim-workers inside a cell — and
// the product is capped at GOMAXPROCS, so "-parallel 2 -sim-workers 4"
// uses at most 8 cores. Classic word-level cells are single-partition
// and ignore the flag. Like -parallel, any -sim-workers value yields
// byte-identical output; only wall-clock time changes.
//
// -json runs the new microbenchmark (the Table 2 operating point) with
// the full observability stack attached and emits a JSON report with
// per-lock wait/hold quantiles (p50/p90/p99), node-handoff matrices and
// per-cache-line local/global traffic. Identical seeds produce
// byte-identical reports.
//
// -faults emits the same report for a degraded machine: the fault plan
// named by -fault-schedule (spike, storm, pause, nack, or all) at
// -fault-intensity, seeded by -fault-seed, with timed acquires where
// the lock supports them. The report's "fault" section records those
// replay coordinates; rerunning with the same triple reproduces the
// report byte for byte.
//
// -soak runs a native contended workload over the real locks in
// internal/core (not the simulator), instrumented through internal/obs,
// and emits the registry's live hbo-run-report/v1 JSON when done.
// -metrics-addr serves the live registry over HTTP for the whole run —
// Prometheus text at /metrics, expvar at /debug/vars, obs-snapshot/v1
// at /snapshot, and the live report at /report. Watch it with
// cmd/locktop. The flags compose: a soak with -metrics-addr is the
// scrape target the CI observability job (and locktop -promcheck)
// exercises.
//
// -cpuprofile and -memprofile write pprof profiles of the run for
// ad-hoc performance work on the simulator itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/par"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment id or 'all'")
		outDir   = flag.String("out", "", "also write each table to <dir>/<id>-<n>.{txt,csv}")
		list     = flag.Bool("list", false, "list experiments and exit")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut  = flag.Bool("json", false, "emit a JSON run report of the new microbenchmark")
		modern   = flag.Bool("modern", false, "emit a JSON run report comparing HBO against the modern NUMA locks (CNA, HMCS-T)")
		seed     = flag.Uint64("seed", 11, "seed for the -json report run")
		faults   = flag.Bool("faults", false, "emit a degraded-mode JSON report (implies -json)")
		fSched   = flag.String("fault-schedule", "all", "fault schedule for -faults: "+strings.Join(fault.Schedules(), ", "))
		fIntens  = flag.Float64("fault-intensity", 0.75, "fault intensity for -faults, in [0, 1]")
		fSeed    = flag.Uint64("fault-seed", 11, "fault-plan seed for -faults")
		quick    = flag.Bool("quick", false, "reduced sweeps/iterations")
		seeds    = flag.Int("seeds", 3, "repetitions where variance is reported")
		scale    = flag.Int("scale", 100, "application work divisor (1 = paper scale)")
		threads  = flag.Int("threads", 0, "override thread count (0 = paper default)")
		parallel = flag.Int("parallel", par.DefaultWorkers(), "worker-pool width for independent simulation cells (1 = sequential)")
		simWkrs  = flag.Int("sim-workers", 1, "PDES worker width inside one partitioned simulation (cluster experiments); composes with -parallel, product capped at GOMAXPROCS")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		metricsAddr = flag.String("metrics-addr", "", "serve live lock metrics (Prometheus /metrics, /snapshot, /report) on this host:port for the whole run")
		soak        = flag.Duration("soak", 0, "run a native contended soak over real locks for this long, then emit a live JSON report")
		soakLocks   = flag.String("soak-locks", "all", "locks to soak: 'all', 'paper', or a comma-separated list")
		soakThreads = flag.Int("soak-threads", 0, "workers per soaked lock (0 = NumCPU, min 2)")
		soakTimed   = flag.Float64("soak-timedfrac", 0.1, "fraction of soak acquires using the timed/abortable path where supported")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-set accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			}
		}()
	}

	if *metricsAddr != "" {
		bound, closeFn, err := obs.Default.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: metrics: %v\n", err)
			os.Exit(1)
		}
		defer closeFn()
		fmt.Fprintf(os.Stderr, "hbobench: serving live metrics on http://%s\n", bound)
	}

	if *soak > 0 {
		names, err := soakLockNames(*soakLocks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(2)
		}
		// SIGINT/SIGTERM end the soak early but still flush the final
		// report: an interrupted soak is a shorter soak, not a lost one.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := runSoak(ctx, os.Stdout, obs.Default, *soak, names, *soakThreads, *soakTimed); err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(1)
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "hbobench: soak interrupted; report covers the completed portion")
		}
		return
	}

	opts := experiments.Options{
		Seeds:      *seeds,
		Scale:      *scale,
		Quick:      *quick,
		Threads:    *threads,
		Parallel:   *parallel,
		SimWorkers: *simWkrs,
	}

	if *faults {
		rep, err := experiments.DegradedReport(opts, *fSeed, *fSched, *fIntens)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(2)
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut || *modern {
		rep := experiments.MicroReport(opts, *seed)
		if *modern {
			rep = experiments.ModernReport(opts, *seed)
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "hbobench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		selected = []experiments.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(1)
		}
	}
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(opts)
		for i, tb := range tables {
			if *csv {
				fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			} else {
				fmt.Printf("%s\n", tb.String())
			}
			if *outDir != "" {
				base := filepath.Join(*outDir, fmt.Sprintf("%s-%d", e.ID, i+1))
				if err := os.WriteFile(base+".txt", []byte(tb.String()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
					os.Exit(1)
				}
				if err := os.WriteFile(base+".csv", []byte(tb.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
