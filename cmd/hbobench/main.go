// Command hbobench regenerates the tables and figures of "Hierarchical
// Backoff Locks for Nonuniform Communication Architectures" (HPCA 2003)
// from the simulation stack.
//
// Usage:
//
//	hbobench -experiment table1            # one experiment
//	hbobench -experiment all               # everything, paper order
//	hbobench -experiment fig5 -csv         # CSV series for plotting
//	hbobench -experiment cmp1              # measured vs paper, side by side
//	hbobench -experiment ext2              # beyond-the-paper studies
//	hbobench -experiment all -out results  # also write per-table files
//	hbobench -json                         # machine-readable run report
//	hbobench -list                         # show available experiments
//
// Flags -seeds, -scale, -threads and -quick trade fidelity for speed.
//
// -json runs the new microbenchmark (the Table 2 operating point) with
// the full observability stack attached and emits a JSON report with
// per-lock wait/hold quantiles (p50/p90/p99), node-handoff matrices and
// per-cache-line local/global traffic. Identical seeds produce
// byte-identical reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("experiment", "all", "experiment id or 'all'")
		outDir  = flag.String("out", "", "also write each table to <dir>/<id>-<n>.{txt,csv}")
		list    = flag.Bool("list", false, "list experiments and exit")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut = flag.Bool("json", false, "emit a JSON run report of the new microbenchmark")
		seed    = flag.Uint64("seed", 11, "seed for the -json report run")
		quick   = flag.Bool("quick", false, "reduced sweeps/iterations")
		seeds   = flag.Int("seeds", 3, "repetitions where variance is reported")
		scale   = flag.Int("scale", 100, "application work divisor (1 = paper scale)")
		threads = flag.Int("threads", 0, "override thread count (0 = paper default)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{
		Seeds:   *seeds,
		Scale:   *scale,
		Quick:   *quick,
		Threads: *threads,
	}

	if *jsonOut {
		rep := experiments.MicroReport(opts, *seed)
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "hbobench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		selected = []experiments.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(1)
		}
	}
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(opts)
		for i, tb := range tables {
			if *csv {
				fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			} else {
				fmt.Printf("%s\n", tb.String())
			}
			if *outDir != "" {
				base := filepath.Join(*outDir, fmt.Sprintf("%s-%d", e.ID, i+1))
				if err := os.WriteFile(base+".txt", []byte(tb.String()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
					os.Exit(1)
				}
				if err := os.WriteFile(base+".csv", []byte(tb.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
