// Command lockcheck runs the schedule-exploring lock-correctness
// harness (internal/check) over the simulated lock family, and
// optionally the differential twin comparison against the native locks.
//
// Usage:
//
//	lockcheck                          # default budget, all simlock locks
//	lockcheck -schedules 100           # small budget (the CI smoke run)
//	lockcheck -locks HBO_GT_SD,MCS     # subset
//	lockcheck -twins                   # add the native-twin comparison
//	lockcheck -faults                  # re-explore under every fault class
//	lockcheck -selftest                # prove the oracles catch known bugs
//	lockcheck -json report.json        # also write the JSON report
//
// -selftest also proves the parallel simulation engine honest: it runs
// the cluster-scale machine at PDES worker widths 1 and -sim-workers
// and fails unless the two runs' results are byte-identical. A
// determinism bug in the parallel engine would silently corrupt every
// report produced with -sim-workers > 1, so the selftest treats "same
// bytes at every width" as an oracle like any other.
//
// The explorer is deterministic: the same -seed explores the same
// schedule set for each lock and produces a byte-identical JSON report.
// The -twins layer runs real goroutines and is therefore not
// bit-reproducible; it is excluded from the report unless requested.
//
// -faults repeats the exploration on degraded machines, once per fault
// class (spike, storm, pause, nack, all), driving locks with a timed
// path through their abort-and-retry loop under a tight budget. Every
// oracle — mutual exclusion, quiescence, progress, fairness — must
// still hold on a sick machine.
//
// Exit status is non-zero when any oracle fails, any twin diverges, or
// -selftest finds an oracle asleep.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/simlock"
)

// parEngineSelfTest runs the cluster-scale machine — the model that
// actually exercises sim.ParEngine's cross-partition messaging — under
// both backoff policies at PDES widths 1 and `workers`, and fails
// unless each pair of runs serializes to identical bytes. Workers is a
// wall-clock knob, never a semantic one; any divergence is an engine
// determinism bug.
func parEngineSelfTest(seed uint64, workers int) error {
	if workers < 1 {
		workers = 1
	}
	for _, policy := range []machine.ClusterPolicy{machine.ClusterTATASExp, machine.ClusterHBO} {
		cfg := machine.ClusterConfig{
			Nodes:       16,
			CPUsPerNode: 4,
			ClusterSize: 4,
			Lat:         machine.WildFireLatencies(),
			Policy:      policy,
			Iters:       8,
			Think:       2000,
			Hold:        600,
			Base:        2,
			Cap:         256,
			RemoteCap:   4096,
			Seed:        seed,
		}
		digest := func(w int) ([]byte, error) {
			r := machine.RunCluster(cfg, w)
			r.Workers = 0 // metadata, not simulation output
			return json.Marshal(r)
		}
		seq, err := digest(1)
		if err != nil {
			return err
		}
		par, err := digest(workers)
		if err != nil {
			return err
		}
		if !bytes.Equal(seq, par) {
			return fmt.Errorf("parallel engine NOT deterministic: policy %s diverges between widths 1 and %d", policy, workers)
		}
	}
	return nil
}

func main() {
	var (
		schedules = flag.Int("schedules", 1000, "distinct schedules to explore per lock")
		maxRuns   = flag.Int("maxruns", 0, "cap on runs per lock (0 = 4x schedules)")
		seed      = flag.Uint64("seed", 1, "exploration seed (same seed = same schedules = same report)")
		locks     = flag.String("locks", "", "comma-separated lock names (default: all simulated locks)")
		twins     = flag.Bool("twins", false, "also run the native-twin differential comparison")
		faults    = flag.Bool("faults", false, "also re-explore every lock under each fault class")
		selftest  = flag.Bool("selftest", false, "run the broken-lock oracle self-test and the parallel-engine determinism check, then exit")
		simWkrs   = flag.Int("sim-workers", 4, "PDES worker width the selftest checks against width 1")
		jsonPath  = flag.String("json", "", "write the JSON report to this file ('-' = stdout)")
	)
	flag.Parse()

	if *schedules <= 0 {
		fmt.Fprintf(os.Stderr, "lockcheck: -schedules must be positive (got %d)\n", *schedules)
		os.Exit(2)
	}
	if *maxRuns < 0 {
		fmt.Fprintf(os.Stderr, "lockcheck: -maxruns must be non-negative (got %d)\n", *maxRuns)
		os.Exit(2)
	}

	budget := check.Budget{Schedules: *schedules, MaxRuns: *maxRuns}

	if *selftest {
		if undetected := check.SelfTest(*seed, budget); len(undetected) > 0 {
			fmt.Fprintf(os.Stderr, "lockcheck: oracles MISSED injected bugs in: %s\n",
				strings.Join(undetected, ", "))
			os.Exit(1)
		}
		fmt.Println("selftest: all injected bugs detected")
		if err := parEngineSelfTest(*seed, *simWkrs); err != nil {
			fmt.Fprintf(os.Stderr, "lockcheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("selftest: parallel engine byte-identical at widths 1 and %d\n", *simWkrs)
		return
	}

	var names []string
	if *locks != "" {
		names = strings.Split(*locks, ",")
		for _, n := range names {
			// Fail fast on typos instead of panicking mid-run.
			found := false
			for _, known := range simlock.AllNames() {
				if n == known {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "lockcheck: unknown lock %q (known: %s)\n",
					n, strings.Join(simlock.AllNames(), ", "))
				os.Exit(2)
			}
		}
		if *twins {
			// The twin comparison needs a native counterpart; reject
			// sim-only names up front rather than panicking mid-run.
			for _, n := range names {
				found := false
				for _, known := range core.AllNames() {
					if n == known {
						found = true
					}
				}
				if !found {
					fmt.Fprintf(os.Stderr, "lockcheck: lock %q has no native twin (twins: %s)\n",
						n, strings.Join(core.AllNames(), ", "))
					os.Exit(2)
				}
			}
		}
	}

	start := time.Now()
	rep := check.Explore(names, *seed, budget)
	for _, lr := range rep.Locks {
		status := "ok"
		if !lr.Passed() {
			status = fmt.Sprintf("FAIL (%d failing runs)", lr.FailedRuns)
		}
		fmt.Printf("%-12s %5d distinct schedules in %5d runs  maxwait=%-10s burst=%-3d %s\n",
			lr.Lock, lr.Distinct, lr.Runs, fmt.Sprintf("%dns", lr.MaxWaitNS), lr.MaxBurst, status)
		for _, f := range lr.Failures {
			fmt.Printf("    run %d (seed=%d tiebreak=%d sig=%s):\n",
				f.Run, f.Seed, f.TieBreak, f.Sig)
			for _, msg := range f.Failures {
				fmt.Printf("      %s\n", msg)
			}
		}
	}

	if *faults {
		results := check.ExploreFaults(names, *seed, budget)
		rep.Faults = results
		for _, lr := range results {
			status := "ok"
			if !lr.Passed() {
				status = fmt.Sprintf("FAIL (%d failing runs)", lr.FailedRuns)
				rep.Passed = false
			}
			fmt.Printf("%-22s %5d distinct schedules in %5d runs  aborts=%-6d %s\n",
				lr.Lock, lr.Distinct, lr.Runs, lr.Aborts, status)
			for _, f := range lr.Failures {
				fmt.Printf("    run %d (seed=%d tiebreak=%d sig=%s):\n",
					f.Run, f.Seed, f.TieBreak, f.Sig)
				for _, msg := range f.Failures {
					fmt.Printf("      %s\n", msg)
				}
			}
		}
	}

	if *twins {
		results := check.CheckTwins(names, *seed, check.DefaultTwinStress())
		rep.Twins = results
		for _, r := range results {
			status := "ok"
			if !r.Passed() {
				status = "DIVERGED"
				rep.Passed = false
			}
			fmt.Printf("twin %-12s sim(loc=%.2f burst=%d) native(loc=%.2f burst=%d) %s\n",
				r.Lock, r.SimLocality, r.SimMaxBurst, r.CoreLocality, r.CoreMaxBurst, status)
			for _, d := range append(append(r.SimFailures, r.CoreFailures...), r.Divergences...) {
				fmt.Printf("    %s\n", d)
			}
		}
	}
	fmt.Printf("checked %d locks in %.1fs\n", len(rep.Locks), time.Since(start).Seconds())

	if *jsonPath != "" {
		w := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lockcheck: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteJSON(w); err != nil {
			fmt.Fprintf(os.Stderr, "lockcheck: %v\n", err)
			os.Exit(2)
		}
	}

	if !rep.Passed {
		os.Exit(1)
	}
}
