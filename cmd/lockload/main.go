// Command lockload is the load driver for hbolockd: it plays a fleet
// of lease-holding client sessions against the service and reports
// what the service tier's backoff policy did under pressure.
//
// Usage:
//
//	lockload -addr localhost:9151 -duration 30s -qps 200 -concurrency 8 -tenants 2
//	lockload -deterministic -seed 7 -duration 10s -qps 500   # no daemon needed
//	lockload -checklog access.jsonl                          # fencing audit
//	lockload -chaos-kills 3 -daemon-bin ./hbolockd -data-dir ./state   # crash soak
//
// Chaos mode (-chaos-kills N) owns the daemon's lifecycle: it spawns
// -daemon-bin against -data-dir, runs the live session loop, SIGKILLs
// the daemon N times at even intervals and restarts it over the same
// durable state, then SIGTERMs it and replays the append-mode access
// log — which spans every incarnation, stitched by "recovered"
// markers — through the fencing verifier. Any double-grant or
// dead-token resurrection across a crash boundary fails the run.
//
// Live mode drives the daemon over HTTP with -concurrency workers
// paced to a global -qps, each running the session loop: acquire a
// random key → hold → renew or release, retrying conflicts and
// backpressure through lockclient's capped exponential backoff. The
// run prints a per-tenant summary table and, with -json, emits an
// hbo-run-report/v1 document with client-observed acquire-latency
// quantiles. SIGINT/SIGTERM end the run early but still flush the
// table and report.
//
// Deterministic mode (-deterministic) runs the same session model
// against an in-process service core on a manual clock: virtual time
// advances exactly 1/qps per operation, the fault layer and session
// scheduling draw from seeded streams, and the access log is verified
// for the fencing-token invariant before the table prints. The same
// (seed, duration, qps) always produces byte-identical output — the
// reproducibility contract CI checks.
//
// -checklog replays a daemon's JSONL access log through the same
// verifier and exits nonzero on any fencing violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lockserv"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/lockclient"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:9151", "hbolockd address (live mode)")
		duration    = flag.Duration("duration", 10*time.Second, "run length (virtual time in deterministic mode)")
		qps         = flag.Float64("qps", 200, "target operations/second across all workers")
		concurrency = flag.Int("concurrency", 8, "client sessions")
		tenants     = flag.Int("tenants", 2, "tenants to spread load over (t0..tN-1)")
		keys        = flag.Int("keys", 16, "keyspace size per tenant")
		ttl         = flag.Duration("ttl", 500*time.Millisecond, "lease TTL requested by sessions")
		seed        = flag.Uint64("seed", 11, "session-behaviour seed")
		jsonOut     = flag.String("json", "", "write an hbo-run-report/v1 JSON report here ('-' = stdout)")

		deterministic = flag.Bool("deterministic", false, "drive an in-process service on a manual clock (reproducible)")
		lockName      = flag.String("lock", "HBO", "shard lock algorithm (deterministic mode): "+strings.Join(core.AllNames(), ", "))
		shards        = flag.Int("shards", 4, "shards per tenant (deterministic mode)")
		faultSched    = flag.String("faults", "", "service fault schedule (deterministic mode): "+strings.Join(fault.ServiceSchedules(), ", ")+" (empty = none)")
		faultSeed     = flag.Uint64("fault-seed", 11, "service fault seed")
		faultInt      = flag.Float64("fault-intensity", 0.75, "service fault intensity, in (0, 1]")

		chaosKills = flag.Int("chaos-kills", 0, "chaos mode: SIGKILL and restart the daemon this many times mid-load")
		daemonBin  = flag.String("daemon-bin", "", "chaos mode: hbolockd binary to spawn, kill and restart")
		dataDir    = flag.String("data-dir", "", "chaos mode: daemon durable state directory (shared across restarts)")
		daemonArgs = flag.String("daemon-args", "", "chaos mode: extra args for the spawned daemon")

		checklog = flag.String("checklog", "", "verify a JSONL access log's fencing invariant and exit")
	)
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "lockload: "+format+"\n", args...)
		os.Exit(2)
	}

	if *checklog != "" {
		f, err := os.Open(*checklog)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		n, err := lockserv.VerifyAccessLog(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lockload: fencing violation after %d events: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("checklog ok: %d events, fencing-token invariant holds\n", n)
		return
	}

	// Validate the load shape up front (the lockcheck pattern: usage
	// text and exit 2, never a panic mid-run).
	if *duration <= 0 {
		fail("-duration must be positive (got %v)", *duration)
	}
	if *qps <= 0 {
		fail("-qps must be positive (got %g)", *qps)
	}
	if *concurrency < 1 {
		fail("-concurrency must be >= 1 (got %d)", *concurrency)
	}
	if *tenants < 1 {
		fail("-tenants must be >= 1 (got %d)", *tenants)
	}
	if *keys < 1 {
		fail("-keys must be >= 1 (got %d)", *keys)
	}
	if *ttl <= 0 {
		fail("-ttl must be positive (got %v)", *ttl)
	}
	if *chaosKills < 0 {
		fail("-chaos-kills must be >= 0 (got %d)", *chaosKills)
	}
	if *chaosKills > 0 {
		if *deterministic {
			fail("-chaos-kills needs a real daemon; it is incompatible with -deterministic")
		}
		if *daemonBin == "" {
			fail("-chaos-kills requires -daemon-bin (the hbolockd binary to crash)")
		}
		if *dataDir == "" {
			fail("-chaos-kills requires -data-dir (durable state shared across restarts)")
		}
	}

	cfg := loadConfig{
		duration:    *duration,
		qps:         *qps,
		concurrency: *concurrency,
		tenants:     *tenants,
		keys:        *keys,
		ttl:         *ttl,
		seed:        *seed,
	}

	var rep *report.Report
	var err error
	switch {
	case *deterministic:
		rep, err = runDeterministic(os.Stdout, cfg, *lockName, *shards, *faultSched, *faultSeed, *faultInt)
	case *chaosKills > 0:
		rep, err = runChaos(os.Stdout, cfg, *addr, chaosConfig{
			bin: *daemonBin, dataDir: *dataDir, args: *daemonArgs, kills: *chaosKills,
		})
	default:
		rep, err = runLive(os.Stdout, cfg, *addr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockload: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lockload: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteJSON(w); err != nil {
			fmt.Fprintf(os.Stderr, "lockload: %v\n", err)
			os.Exit(1)
		}
	}
}

// loadConfig is the shared load shape of both modes.
type loadConfig struct {
	duration    time.Duration
	qps         float64
	concurrency int
	tenants     int
	keys        int
	ttl         time.Duration
	seed        uint64
}

func (c loadConfig) tenantName(i int) string { return fmt.Sprintf("t%d", i) }

// params renders the load shape into report params.
func (c loadConfig) params() map[string]int {
	return map[string]int{
		"concurrency": c.concurrency,
		"duration_ms": int(c.duration / time.Millisecond),
		"keys":        c.keys,
		"qps":         int(c.qps),
		"tenants":     c.tenants,
		"ttl_ms":      int(c.ttl / time.Millisecond),
	}
}

// tally is one tenant's client-side accounting.
type tally struct {
	grants    uint64
	renews    uint64
	releases  uint64
	conflicts uint64
	denials   uint64 // throttled/busy/nack/draining
	stales    uint64
	errors    uint64
	wait      stats.Histogram // acquire latency (live mode only)
	hold      stats.Histogram // grant-to-release time (live mode only)
}

func (t *tally) merge(o *tally) {
	t.grants += o.grants
	t.renews += o.renews
	t.releases += o.releases
	t.conflicts += o.conflicts
	t.denials += o.denials
	t.stales += o.stales
	t.errors += o.errors
	t.wait.Merge(&o.wait)
	t.hold.Merge(&o.hold)
}

// printSummary renders the per-tenant table. Deterministic runs pass
// withLatency=false so the table carries no wall-clock columns.
func printSummary(w io.Writer, title string, tallies map[string]*tally, withLatency bool) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	hdr := "TENANT\tGRANTS\tRENEWS\tRELEASES\tCONFLICTS\tDENIALS\tSTALE\tERRORS\t"
	if withLatency {
		hdr += "ACQ p50\tACQ p99\t"
	}
	fmt.Fprintln(tw, hdr)
	names := make([]string, 0, len(tallies))
	for n := range tallies {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := tallies[n]
		row := fmt.Sprintf("%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t",
			n, t.grants, t.renews, t.releases, t.conflicts, t.denials, t.stales, t.errors)
		if withLatency {
			row += fmt.Sprintf("%dns\t%dns\t", t.wait.Quantile(0.50), t.wait.Quantile(0.99))
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
}

// buildReport renders tallies as an hbo-run-report/v1 document, one
// LockReport per tenant. Deterministic runs contain no latency data,
// so the report bytes depend only on (seed, duration, qps, shape).
func buildReport(cfg loadConfig, tool, experiment string, nodes int, tallies map[string]*tally, withHost bool) *report.Report {
	rep := &report.Report{
		Schema:     report.Schema,
		Tool:       tool,
		Experiment: experiment,
		Seed:       cfg.seed,
		Machine:    report.MachineSummary{Nodes: nodes, Preset: "service"},
		Params:     cfg.params(),
	}
	if withHost {
		rep.Host = report.Host()
	}
	names := make([]string, 0, len(tallies))
	for n := range tallies {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := tallies[n]
		lr := report.LockReport{
			Lock:         n,
			Acquisitions: int(t.grants),
			Contended:    int(t.conflicts),
			Aborts:       int(t.denials + t.stales),
			Wait:         report.QuantilesOf(&t.wait),
			Hold:         report.QuantilesOf(&t.hold),
			PerThread:    []int{},
			Traffic:      report.TrafficReport{LocalPerNode: []uint64{}},
		}
		if att := t.grants + t.conflicts + t.denials; att > 0 {
			lr.AbortRate = float64(t.denials) / float64(att)
		}
		rep.Locks = append(rep.Locks, lr)
	}
	return rep
}

// runLive drives a daemon over HTTP until the duration elapses or a
// signal arrives, then prints the summary and returns the report.
func runLive(w io.Writer, cfg loadConfig, addr string) (*report.Report, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Probe the daemon before unleashing workers.
	probe := lockclient.New(addr)
	pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, _, err := probe.Inspect(pctx, cfg.tenantName(0), "lockload-probe"); err != nil {
		return nil, fmt.Errorf("probing %s: %w", addr, err)
	}

	interval := time.Duration(float64(cfg.concurrency) / cfg.qps * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	deadline := time.Now().Add(cfg.duration)

	var mu sync.Mutex
	merged := map[string]*tally{}
	for i := 0; i < cfg.tenants; i++ {
		merged[cfg.tenantName(i)] = &tally{}
	}

	var wg sync.WaitGroup
	for wkr := 0; wkr < cfg.concurrency; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			c := lockclient.New(addr,
				lockclient.WithOwner(fmt.Sprintf("load-%d", wkr)),
				lockclient.WithJitterSeed(cfg.seed+uint64(wkr)))
			local := map[string]*tally{}
			for i := 0; i < cfg.tenants; i++ {
				local[cfg.tenantName(i)] = &tally{}
			}
			rng := newSessionRNG(cfg.seed + uint64(wkr)*0x9e37)
			var held *lockclient.Lease
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for time.Now().Before(deadline) && ctx.Err() == nil {
				// A session holding a lease keeps operating in that
				// lease's tenant; idle sessions roll a fresh one.
				tenant := cfg.tenantName(rng.intn(cfg.tenants))
				if held != nil {
					tenant = held.Tenant
				}
				sessionStep(ctx, c, rng, cfg, tenant, local[tenant], &held)
				select {
				case <-ctx.Done():
				case <-tick.C:
				}
			}
			if held != nil {
				rctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_ = c.Release(rctx, held)
				cancel()
			}
			mu.Lock()
			for n, t := range local {
				merged[n].merge(t)
			}
			mu.Unlock()
		}(wkr)
	}
	wg.Wait()
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "lockload: interrupted, flushing partial results")
	}

	printSummary(w, fmt.Sprintf("lockload live  %s  qps=%g concurrency=%d duration=%v",
		addr, cfg.qps, cfg.concurrency, cfg.duration), merged, true)
	return buildReport(cfg, "lockload", "service-load", 0, merged, true), nil
}

// sessionStep advances one client session by one operation: acquire
// when idle; renew, release or hold when holding.
func sessionStep(ctx context.Context, c *lockclient.Client, rng *sessionRNG, cfg loadConfig, tenant string, t *tally, held **lockclient.Lease) {
	if *held == nil {
		key := fmt.Sprintf("k%d", rng.intn(cfg.keys))
		start := time.Now()
		l, err := c.AcquireOnce(ctx, tenant, key, cfg.ttl)
		switch err.(type) {
		case nil:
			t.grants++
			t.wait.Add(time.Since(start).Nanoseconds())
			*held = l
		case *lockclient.ConflictError:
			t.conflicts++
		case *lockclient.RetryError:
			t.denials++
		default:
			if ctx.Err() == nil {
				t.errors++
			}
		}
		return
	}
	l := *held
	switch r := rng.float64(); {
	case r < 0.35: // renew
		err := c.Renew(ctx, l, cfg.ttl)
		switch {
		case err == nil:
			t.renews++
		case err == lockclient.ErrStale:
			t.stales++
			*held = nil
		default:
			if ctx.Err() == nil {
				t.errors++
			}
			*held = nil
		}
	case r < 0.85: // release
		start := l.Expiry.Add(-cfg.ttl)
		err := c.Release(ctx, l)
		switch {
		case err == nil:
			t.releases++
			t.hold.Add(time.Since(start).Nanoseconds())
		case err == lockclient.ErrStale:
			t.stales++
		default:
			if ctx.Err() == nil {
				t.errors++
			}
		}
		*held = nil
	default:
		// Hold across this tick; the lease may expire under us, which
		// the next renew/release observes as ErrStale.
	}
}

// sessionRNG is a splitmix64 stream: deterministic session behaviour
// for a fixed seed in both driver modes.
type sessionRNG struct{ x uint64 }

func newSessionRNG(seed uint64) *sessionRNG { return &sessionRNG{x: seed*2 + 1} }

func (r *sessionRNG) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *sessionRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *sessionRNG) float64() float64 { return float64(r.next()>>11) / float64(1<<53) }
