package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/lockserv"
	"repro/internal/report"
	"repro/lockclient"
)

// chaosConfig shapes a crash-restart soak: lockload owns the daemon's
// lifecycle, SIGKILLs it mid-load -kills times, restarts it against
// the same -data-dir, and audits the stitched access log afterwards.
type chaosConfig struct {
	bin     string // hbolockd binary
	dataDir string // durable state dir, shared across restarts
	args    string // extra daemon args (space separated)
	kills   int
}

// daemon is one spawn of hbolockd. exec.Cmd is single-use, so every
// restart builds a fresh one over the same argv.
type daemon struct {
	bin  string
	args []string
	cmd  *exec.Cmd
}

func (d *daemon) start() error {
	cmd := exec.Command(d.bin, d.args...)
	cmd.Stderr = os.Stderr
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", d.bin, err)
	}
	d.cmd = cmd
	return nil
}

// sigkill models a hard crash: no drain, no fsync, buffered access-log
// tail lost. Recovery must come entirely from the WAL.
func (d *daemon) sigkill() {
	if d.cmd == nil || d.cmd.Process == nil {
		return
	}
	_ = d.cmd.Process.Kill()
	_, _ = d.cmd.Process.Wait()
	d.cmd = nil
}

// sigterm asks for a graceful drain and waits up to the budget.
func (d *daemon) sigterm(budget time.Duration) error {
	if d.cmd == nil || d.cmd.Process == nil {
		return nil
	}
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		d.cmd = nil
		return err
	case <-time.After(budget):
		_ = d.cmd.Process.Kill()
		<-done
		d.cmd = nil
		return fmt.Errorf("daemon did not drain within %v", budget)
	}
}

// waitReady polls /v1/stats until the daemon answers 200. A 503 means
// the listener is up but WAL replay is still running (the recovering
// handler), so keep polling — that window is exactly what clients see
// on a crash restart.
func waitReady(ctx context.Context, addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	for time.Now().Before(deadline) && ctx.Err() == nil {
		resp, err := client.Get("http://" + addr + "/v1/stats")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
		case <-time.After(25 * time.Millisecond):
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("daemon on %s not ready within %v", addr, budget)
}

// runChaos is the crash-restart soak. The load itself is the live
// session loop; the extra machinery is the kill schedule (evenly
// spaced: duration/(kills+1) apart) and the post-run audit of the
// append-mode access log, which spans every incarnation of the daemon
// with "recovered" markers at each restart boundary.
func runChaos(w io.Writer, cfg loadConfig, addr string, chaos chaosConfig) (*report.Report, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	accessPath := filepath.Join(chaos.dataDir, "access.jsonl")
	argv := []string{"-addr", addr, "-data-dir", chaos.dataDir, "-access-log", accessPath}
	if chaos.args != "" {
		argv = append(argv, strings.Fields(chaos.args)...)
	}
	d := &daemon{bin: chaos.bin, args: argv}
	if err := d.start(); err != nil {
		return nil, err
	}
	defer d.sigkill() // no-op after a clean sigterm
	if err := waitReady(ctx, addr, 10*time.Second); err != nil {
		return nil, err
	}

	deadline := time.Now().Add(cfg.duration)
	interval := time.Duration(float64(cfg.concurrency) / cfg.qps * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}

	var mu sync.Mutex
	merged := map[string]*tally{}
	for i := 0; i < cfg.tenants; i++ {
		merged[cfg.tenantName(i)] = &tally{}
	}
	var wg sync.WaitGroup
	for wkr := 0; wkr < cfg.concurrency; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			c := lockclient.New(addr,
				lockclient.WithOwner(fmt.Sprintf("chaos-%d", wkr)),
				lockclient.WithJitterSeed(cfg.seed+uint64(wkr)))
			local := map[string]*tally{}
			for i := 0; i < cfg.tenants; i++ {
				local[cfg.tenantName(i)] = &tally{}
			}
			rng := newSessionRNG(cfg.seed + uint64(wkr)*0x9e37)
			var held *lockclient.Lease
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for time.Now().Before(deadline) && ctx.Err() == nil {
				tenant := cfg.tenantName(rng.intn(cfg.tenants))
				if held != nil {
					tenant = held.Tenant
				}
				// Bound each step so a kill window costs one short
				// retry burst, not the rest of the run.
				sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				sessionStep(sctx, c, rng, cfg, tenant, local[tenant], &held)
				cancel()
				select {
				case <-ctx.Done():
				case <-tick.C:
				}
			}
			if held != nil {
				rctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_ = c.Release(rctx, held)
				cancel()
			}
			mu.Lock()
			for n, t := range local {
				merged[n].merge(t)
			}
			mu.Unlock()
		}(wkr)
	}

	// The kill schedule runs in the foreground while workers load the
	// daemon. Each cycle: SIGKILL (hard crash), restart over the same
	// data dir, wait for WAL replay to finish.
	killInterval := cfg.duration / time.Duration(chaos.kills+1)
	restarts := 0
	for i := 0; i < chaos.kills && ctx.Err() == nil; i++ {
		select {
		case <-ctx.Done():
		case <-time.After(killInterval):
		}
		if ctx.Err() != nil {
			break
		}
		fmt.Fprintf(os.Stderr, "lockload: chaos kill %d/%d (SIGKILL + restart)\n", i+1, chaos.kills)
		d.sigkill()
		if err := d.start(); err != nil {
			return nil, err
		}
		if err := waitReady(ctx, addr, 10*time.Second); err != nil {
			return nil, fmt.Errorf("restart %d: %w", i+1, err)
		}
		restarts++
	}
	wg.Wait()
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "lockload: interrupted, flushing partial results")
	}

	// Graceful final stop so the access-log tail and WAL are flushed
	// before the audit reads them.
	if err := d.sigterm(15 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "lockload: daemon stop: %v\n", err)
	}

	f, err := os.Open(accessPath)
	if err != nil {
		return nil, fmt.Errorf("chaos audit: %w", err)
	}
	defer f.Close()
	n, err := lockserv.VerifyAccessLog(f)
	if err != nil {
		return nil, fmt.Errorf("chaos audit failed after %d events: %w", n, err)
	}
	fmt.Fprintf(w, "chaos audit ok: %d events across %d crash/restart cycles, fencing-token invariant holds\n",
		n, restarts)

	printSummary(w, fmt.Sprintf("lockload chaos  %s  qps=%g concurrency=%d duration=%v kills=%d",
		addr, cfg.qps, cfg.concurrency, cfg.duration, restarts), merged, true)
	rep := buildReport(cfg, "lockload", "service-chaos", 0, merged, true)
	rep.Params["chaos_kills"] = restarts
	rep.Params["audited_events"] = n
	return rep, nil
}
