package main

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/fault"
	"repro/internal/lockserv"
	"repro/internal/report"
)

// runDeterministic replays the live session model against an
// in-process service core on a manual clock. One goroutine, virtual
// time advancing exactly 1/qps per operation, seeded behaviour and
// fault streams: the same (seed, duration, qps, shape) always renders
// byte-identical output, which is the reproducibility contract CI
// enforces by running it twice and comparing bytes. The run's access
// log accumulates in memory and is verified for the fencing-token
// invariant before anything prints, so a passing run is also a proof
// of lease safety over that op schedule.
func runDeterministic(w io.Writer, cfg loadConfig, lockName string, shards int, faultSched string, faultSeed uint64, faultInt float64) (*report.Report, error) {
	var inj *fault.ServiceInjector
	var frep *report.FaultReport
	if faultSched != "" {
		fcfg, err := fault.ServicePreset(faultSched, faultSeed, faultInt)
		if err != nil {
			return nil, err
		}
		inj = fault.NewServiceInjector(fcfg)
		frep = &report.FaultReport{Schedule: faultSched, Seed: faultSeed, Intensity: faultInt}
	}

	names := make([]string, cfg.tenants)
	for i := range names {
		names[i] = cfg.tenantName(i)
	}
	clock := lockserv.NewManualClock(time.Unix(0, 0))
	var logBuf bytes.Buffer
	svc, err := lockserv.New(lockserv.Config{
		Tenants:    names,
		Shards:     shards,
		Lock:       lockName,
		DefaultTTL: cfg.ttl,
		MaxTTL:     cfg.ttl,
		Clock:      clock,
		Faults:     inj,
		AccessLog:  &logBuf,
	})
	if err != nil {
		return nil, err
	}

	tallies := map[string]*tally{}
	for _, n := range names {
		tallies[n] = &tally{}
	}

	totalOps := int(float64(cfg.duration) / float64(time.Second) * cfg.qps)
	step := time.Duration(float64(time.Second) / cfg.qps)
	if step <= 0 {
		step = time.Nanosecond
	}
	rng := newSessionRNG(cfg.seed)
	sessions := make([]*vSession, cfg.concurrency)
	for i := range sessions {
		sessions[i] = &vSession{owner: fmt.Sprintf("v%d", i)}
	}
	for op := 0; op < totalOps; op++ {
		clock.Advance(step)
		sessions[op%cfg.concurrency].step(svc, rng, cfg, tallies)
	}

	// End of schedule: let every surviving lease fall due and collect
	// it, so the access log closes every grant with expire/release.
	clock.Advance(cfg.ttl + time.Nanosecond)
	expired := svc.SweepDue()
	if err := svc.Close(); err != nil {
		return nil, err
	}

	events, err := lockserv.VerifyAccessLog(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("fencing invariant violated after %d events: %w", events, err)
	}

	printSummary(w, fmt.Sprintf("lockload deterministic  lock=%s seed=%d qps=%g concurrency=%d duration=%v",
		lockName, cfg.seed, cfg.qps, cfg.concurrency, cfg.duration), tallies, false)
	fmt.Fprintf(w, "ops=%d  expired-at-shutdown=%d  access-log-events=%d (fencing invariant verified)\n",
		totalOps, expired, events)

	rep := buildReport(cfg, "lockload", "service-load-deterministic", svc.Nodes(), tallies, false)
	rep.Fault = frep
	return rep, nil
}

// vSession is one virtual client session: at most one held lease,
// advanced one operation at a time by the deterministic scheduler.
type vSession struct {
	owner  string
	tenant string
	key    string
	token  uint64
	held   bool
}

// step mirrors the live sessionStep: acquire when idle, then a
// renew/release/hold mix while holding. All randomness comes from the
// shared seeded stream, all time from the manual clock.
func (s *vSession) step(svc *lockserv.Service, rng *sessionRNG, cfg loadConfig, tallies map[string]*tally) {
	if !s.held {
		tenant := cfg.tenantName(rng.intn(cfg.tenants))
		key := fmt.Sprintf("k%d", rng.intn(cfg.keys))
		t := tallies[tenant]
		d, err := svc.Acquire(tenant, key, s.owner, cfg.ttl)
		if err != nil {
			t.errors++
			return
		}
		switch d.Outcome {
		case lockserv.WireGranted, lockserv.WireRenewed:
			if d.Outcome == lockserv.WireGranted {
				t.grants++
			} else {
				t.renews++
			}
			s.tenant, s.key, s.token, s.held = tenant, key, d.Token, true
		case lockserv.WireConflict:
			t.conflicts++
		default:
			t.denials++
		}
		return
	}
	t := tallies[s.tenant]
	switch r := rng.float64(); {
	case r < 0.35: // renew
		d, err := svc.Renew(s.tenant, s.key, s.owner, s.token, cfg.ttl)
		if err != nil {
			t.errors++
			s.held = false
			return
		}
		switch d.Outcome {
		case lockserv.WireRenewed:
			t.renews++
		case lockserv.WireStale:
			t.stales++
			s.held = false
		default:
			t.denials++
		}
	case r < 0.85: // release
		d, err := svc.Release(s.tenant, s.key, s.owner, s.token)
		if err != nil {
			t.errors++
			s.held = false
			return
		}
		switch d.Outcome {
		case lockserv.WireReleased:
			t.releases++
			s.held = false
		case lockserv.WireStale:
			t.stales++
			s.held = false
		default:
			t.denials++
		}
	default:
		// Hold: virtual time still advanced, so the lease drifts
		// toward its deadline — sessions that hold too long learn
		// about expiry from the next renew's stale answer.
	}
}
