package main

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestDeterministicByteIdentical is the reproducibility contract: the
// same (seed, duration, qps, shape) renders byte-identical summary
// tables and reports, and a different seed diverges.
func TestDeterministicByteIdentical(t *testing.T) {
	cfg := loadConfig{
		duration:    time.Second,
		qps:         400,
		concurrency: 5,
		tenants:     2,
		keys:        6,
		ttl:         50 * time.Millisecond,
		seed:        21,
	}
	run := func(cfg loadConfig) (string, string) {
		var table, rep bytes.Buffer
		r, err := runDeterministic(&table, cfg, "HBO", 2, "session", 9, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&rep); err != nil {
			t.Fatal(err)
		}
		return table.String(), rep.String()
	}
	t1, r1 := run(cfg)
	t2, r2 := run(cfg)
	if t1 != t2 {
		t.Fatalf("summary tables differ:\n%s\n----\n%s", t1, t2)
	}
	if r1 != r2 {
		t.Fatalf("reports differ")
	}

	var rep struct {
		Schema string `json:"schema"`
		Tool   string `json:"tool"`
		Fault  *struct {
			Schedule string `json:"schedule"`
		} `json:"fault"`
		Locks []struct {
			Lock         string `json:"lock"`
			Acquisitions int    `json:"acquisitions"`
		} `json:"locks"`
	}
	if err := json.Unmarshal([]byte(r1), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "hbo-run-report/v1" || rep.Tool != "lockload" {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Fault == nil || rep.Fault.Schedule != "session" {
		t.Fatalf("fault coordinates missing: %+v", rep.Fault)
	}
	if len(rep.Locks) != 2 {
		t.Fatalf("per-tenant sections: %+v", rep.Locks)
	}
	grants := 0
	for _, l := range rep.Locks {
		grants += l.Acquisitions
	}
	if grants == 0 {
		t.Fatal("deterministic run granted nothing")
	}

	cfg.seed = 22
	t3, _ := run(cfg)
	if t3 == t1 {
		t.Fatal("different seeds produced identical tables")
	}
}

// TestSessionRNGDeterministic pins the driver's behaviour stream.
func TestSessionRNGDeterministic(t *testing.T) {
	a, b := newSessionRNG(7), newSessionRNG(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := newSessionRNG(8)
	diverged := false
	for i := 0; i < 100; i++ {
		if a.next() != c.next() {
			diverged = true
		}
		if f := c.float64(); f < 0 || f >= 1 {
			t.Fatalf("float64 = %v", f)
		}
		if n := c.intn(10); n < 0 || n > 9 {
			t.Fatalf("intn = %d", n)
		}
	}
	if !diverged {
		t.Fatal("different-seed streams identical")
	}
}
