package trace

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// run traces a small contended run and returns the recorder.
func run(t *testing.T, lockName string, threads, iters int) *Recorder {
	t.Helper()
	cfg := machine.WildFire()
	cfg.CPUsPerNode = 4
	cfg.Seed = 21
	m := machine.New(cfg)
	cpus := make([]int, threads)
	for i := range cpus {
		cpus[i] = i
	}
	rec := NewRecorder()
	l := Wrap(simlock.New(lockName, m, 0, cpus, simlock.DefaultTuning()), rec)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(uint64(tid) + 31)
			for i := 0; i < iters; i++ {
				l.Acquire(p, tid)
				p.Work(500)
				l.Release(p, tid)
				p.Work(rng.Timen(1000) + 100)
			}
		})
	}
	m.Run()
	return rec
}

func TestRecorderCapturesAllEvents(t *testing.T) {
	const threads, iters = 4, 25
	rec := run(t, "HBO_GT_SD", threads, iters)
	want := threads * iters * 3 // start, acquired, released
	if len(rec.Events()) != want {
		t.Fatalf("recorded %d events, want %d", len(rec.Events()), want)
	}
	// Events must be time-ordered.
	for i := 1; i < len(rec.Events()); i++ {
		if rec.Events()[i].Time < rec.Events()[i-1].Time {
			t.Fatal("events out of order")
		}
	}
}

func TestAnalyzeCountsAndInvariants(t *testing.T) {
	const threads, iters = 4, 25
	rec := run(t, "MCS", threads, iters)
	s := rec.Analyze()
	if s.Acquisitions != threads*iters {
		t.Fatalf("acquisitions = %d", s.Acquisitions)
	}
	for tid := 0; tid < threads; tid++ {
		if s.PerThread[tid] != iters {
			t.Fatalf("thread %d acquired %d times", tid, s.PerThread[tid])
		}
	}
	if s.Handoffs != threads*iters-1 {
		t.Fatalf("handoffs = %d", s.Handoffs)
	}
	// Hold time: 100 CS of 500ns each plus the release path.
	if s.MeanHold() < 500 {
		t.Fatalf("mean hold %v below the critical-section work", s.MeanHold())
	}
	if s.MeanWait() <= 0 {
		t.Fatalf("mean wait %v", s.MeanWait())
	}
	if r := s.HandoffRatio(); r < 0 || r > 1 {
		t.Fatalf("handoff ratio %v", r)
	}
}

func TestCSVShape(t *testing.T) {
	rec := run(t, "TATAS", 2, 5)
	csv := rec.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "time_ns,tid,cpu,node,kind,lock" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+2*5*3 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.Contains(csv, "acquired,TATAS") {
		t.Fatal("csv missing acquired events")
	}
}

func TestTimelineRendering(t *testing.T) {
	rec := run(t, "CLH", 3, 10)
	tl := rec.Timeline(60)
	if !strings.Contains(tl, "t00") || !strings.Contains(tl, "t02") {
		t.Fatalf("timeline missing thread rows:\n%s", tl)
	}
	if !strings.Contains(tl, "#") {
		t.Fatalf("timeline shows no holding:\n%s", tl)
	}
	if !strings.Contains(tl, "-") {
		t.Fatalf("timeline shows no waiting:\n%s", tl)
	}
	// Empty and degenerate cases.
	if NewRecorder().Timeline(10) != "" {
		t.Fatal("empty recorder should render empty timeline")
	}
	if rec.Timeline(0) != "" {
		t.Fatal("zero width should render empty timeline")
	}
}

func TestHandoffRatioDistinguishesLocks(t *testing.T) {
	mcs := run(t, "MCS", 8, 30).Analyze().HandoffRatio()
	hbo := run(t, "HBO_GT_SD", 8, 30).Analyze().HandoffRatio()
	if hbo >= mcs {
		t.Fatalf("HBO_GT_SD handoff %.2f not below MCS %.2f", hbo, mcs)
	}
}

func TestKindString(t *testing.T) {
	if AcquireStart.String() != "acquire-start" ||
		Acquired.String() != "acquired" ||
		Released.String() != "released" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind formatting")
	}
}

// TestAbandonedAccounting wraps a timed lock, drives a waiter into a
// timeout, and checks the Abandoned event flows through Wrap, the
// Analyzer, the timeline and the Perfetto export.
func TestAbandonedAccounting(t *testing.T) {
	cfg := machine.WildFire()
	cfg.CPUsPerNode = 4
	cfg.Seed = 7
	m := machine.New(cfg)
	rec := NewRecorder()
	wrapped := Wrap(simlock.New("HBO_GT", m, 0, []int{0, 1, 2, 3}, simlock.DefaultTuning()), rec)
	l, ok := wrapped.(interface {
		simlock.Lock
		AcquireTimeout(p *machine.Proc, tid int, d sim.Time) bool
	})
	if !ok {
		t.Fatal("Wrap of a TimedLock lost the timed path")
	}
	m.Spawn(0, func(p *machine.Proc) {
		l.Acquire(p, 0)
		p.Work(400 * sim.Microsecond)
		l.Release(p, 0)
	})
	var aborted, acquired bool
	m.Spawn(4, func(p *machine.Proc) {
		p.Work(5 * sim.Microsecond)
		if !l.AcquireTimeout(p, 1, 30*sim.Microsecond) {
			aborted = true
		}
		if l.AcquireTimeout(p, 1, 2*sim.Millisecond) {
			acquired = true
			l.Release(p, 1)
		}
	})
	m.Run()
	if !aborted || !acquired {
		t.Fatalf("aborted=%v acquired=%v; the scenario did not unfold", aborted, acquired)
	}
	s := rec.Analyze()
	if s.Abandoned != 1 {
		t.Errorf("Abandoned = %d, want 1", s.Abandoned)
	}
	if s.Acquisitions != 2 {
		t.Errorf("Acquisitions = %d, want 2", s.Acquisitions)
	}
	if got := s.AbortRate(); got <= 0 || got >= 1 {
		t.Errorf("AbortRate = %v, want in (0,1)", got)
	}
	if !strings.Contains(rec.CSV(), "abandoned") {
		t.Error("CSV lacks the abandoned event")
	}
	var b strings.Builder
	if err := rec.TraceJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "abort HBO_GT") {
		t.Error("TraceJSON lacks the abort slice")
	}
	if rec.Timeline(40) == "" {
		t.Error("Timeline empty")
	}
}
