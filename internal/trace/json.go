package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one entry of the Chrome trace-event format ("JSON
// array format") that Perfetto and chrome://tracing load. Timestamps
// and durations are microseconds.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the top-level object Perfetto expects.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tracePID is the single synthetic process all tracks live in.
const tracePID = 1

// usec converts simulated nanoseconds to trace microseconds.
func usec(ns int64) float64 { return float64(ns) / 1000 }

// TraceJSON writes the recorded events as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each
// simulated thread gets one track carrying complete ("X") slices for
// its wait and hold intervals, and a node handoff — the next
// acquisition landing in a different node than the previous one —
// appears as an instant ("i") event on the acquiring thread's track.
// Output is deterministic for a fixed event stream.
func (r *Recorder) TraceJSON(w io.Writer) error {
	var evs []traceEvent

	// Thread-name metadata, one per tid, in tid order.
	tids := map[int]bool{}
	for _, e := range r.events {
		tids[e.TID] = true
	}
	var sortedTIDs []int
	for tid := range tids {
		sortedTIDs = append(sortedTIDs, tid)
	}
	sort.Ints(sortedTIDs)
	evs = append(evs, traceEvent{
		Name: "process_name", Ph: "M", PID: tracePID, TID: 0,
		Args: map[string]string{"name": "locktrace"},
	})
	for _, tid := range sortedTIDs {
		evs = append(evs, traceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]string{"name": fmt.Sprintf("thread %d", tid)},
		})
	}
	meta := len(evs)

	// Wait/hold slices and handoff instants, attributed per lock.
	type key struct {
		lock string
		tid  int
	}
	open := map[key]*pendAcq{}
	lastNode := map[string]int{}
	for _, e := range r.events {
		k := key{e.Lock, e.TID}
		switch e.Kind {
		case AcquireStart:
			open[k] = &pendAcq{start: e.Time}
		case Acquired:
			if p := open[k]; p != nil {
				p.acquired = e.Time
				p.have = true
				dur := usec(int64(e.Time - p.start))
				evs = append(evs, traceEvent{
					Name: "wait " + e.Lock, Cat: "wait", Ph: "X",
					TS: usec(int64(p.start)), Dur: &dur,
					PID: tracePID, TID: e.TID,
					Args: map[string]string{"lock": e.Lock, "node": fmt.Sprint(e.Node)},
				})
			}
			if last, ok := lastNode[e.Lock]; ok && last != e.Node {
				evs = append(evs, traceEvent{
					Name: fmt.Sprintf("handoff %s n%d->n%d", e.Lock, last, e.Node),
					Cat:  "handoff", Ph: "i", TS: usec(int64(e.Time)),
					PID: tracePID, TID: e.TID, S: "g",
					Args: map[string]string{"from": fmt.Sprint(last), "to": fmt.Sprint(e.Node)},
				})
			}
			lastNode[e.Lock] = e.Node
		case Released:
			if p := open[k]; p != nil && p.have {
				dur := usec(int64(e.Time - p.acquired))
				evs = append(evs, traceEvent{
					Name: "hold " + e.Lock, Cat: "hold", Ph: "X",
					TS: usec(int64(p.acquired)), Dur: &dur,
					PID: tracePID, TID: e.TID,
					Args: map[string]string{"lock": e.Lock, "node": fmt.Sprint(e.Node)},
				})
				delete(open, k)
			}
		case Abandoned:
			if p := open[k]; p != nil {
				dur := usec(int64(e.Time - p.start))
				evs = append(evs, traceEvent{
					Name: "abort " + e.Lock, Cat: "abort", Ph: "X",
					TS: usec(int64(p.start)), Dur: &dur,
					PID: tracePID, TID: e.TID,
					Args: map[string]string{"lock": e.Lock, "node": fmt.Sprint(e.Node)},
				})
				delete(open, k)
			}
		}
	}

	// Slices are emitted at interval *end*, so nested critical sections
	// (two traced locks) can appear out of start order; sort the data
	// events by timestamp (stably, so equal stamps keep stream order)
	// to guarantee non-decreasing ts per thread track.
	data := evs[meta:]
	sort.SliceStable(data, func(i, j int) bool { return data[i].TS < data[j].TS })

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ns"})
}
