package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// perfettoFile mirrors the trace-event JSON shape for decoding in tests.
type perfettoFile struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`
		Dur  *float64          `json:"dur"`
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func exportJSON(t *testing.T, r *Recorder) perfettoFile {
	t.Helper()
	var buf bytes.Buffer
	if err := r.TraceJSON(&buf); err != nil {
		t.Fatalf("TraceJSON: %v", err)
	}
	var f perfettoFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("TraceJSON emitted invalid JSON: %v", err)
	}
	return f
}

func TestTraceJSONValidAndMonotonic(t *testing.T) {
	// 8 threads on 4-CPU nodes span two nodes; MCS's FIFO handovers
	// guarantee cross-node handoff instants appear.
	const threads = 8
	rec := run(t, "MCS", threads, 15)
	f := exportJSON(t, rec)
	if f.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}

	var threadNames, waits, holds, handoffs int
	lastTS := map[int]float64{}
	for _, e := range f.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			threadNames++
			continue
		case e.Ph == "M":
			continue
		}
		// Data events: timestamps must never go backwards on a track.
		if prev, ok := lastTS[e.TID]; ok && e.TS < prev {
			t.Fatalf("tid %d: ts %v after %v", e.TID, e.TS, prev)
		}
		lastTS[e.TID] = e.TS
		switch e.Cat {
		case "wait":
			waits++
			if e.Ph != "X" || e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("malformed wait slice: %+v", e)
			}
		case "hold":
			holds++
			if e.Ph != "X" || e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("malformed hold slice: %+v", e)
			}
		case "handoff":
			handoffs++
			if e.Ph != "i" || e.Args["from"] == e.Args["to"] {
				t.Fatalf("malformed handoff instant: %+v", e)
			}
		}
	}
	if threadNames != threads {
		t.Errorf("thread_name metadata for %d threads, want %d", threadNames, threads)
	}
	if waits != threads*15 || holds != threads*15 {
		t.Errorf("waits=%d holds=%d, want %d each", waits, holds, threads*15)
	}
	if handoffs == 0 {
		t.Error("no node-handoff instants; 8 threads span 2 nodes")
	}
}

// TestTraceJSONNestedLocks checks the exporter keeps per-thread
// timestamps monotonic even when one thread's critical sections nest
// (hold slices finish out of start order).
func TestTraceJSONNestedLocks(t *testing.T) {
	rec := feed([]Event{
		{Time: 0, TID: 0, Kind: AcquireStart, Lock: "outer"},
		{Time: 5, TID: 0, Kind: Acquired, Lock: "outer"},
		{Time: 10, TID: 0, Kind: AcquireStart, Lock: "inner"},
		{Time: 15, TID: 0, Kind: Acquired, Lock: "inner"},
		{Time: 20, TID: 0, Kind: Released, Lock: "inner"},
		{Time: 25, TID: 0, Kind: Released, Lock: "outer"},
	})
	f := exportJSON(t, rec)
	last := -1.0
	var names []string
	for _, e := range f.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.TS < last {
			t.Fatalf("ts %v after %v (%s)", e.TS, last, e.Name)
		}
		last = e.TS
		names = append(names, e.Name)
	}
	want := "wait outer,hold outer,wait inner,hold inner"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("event order %q, want %q", got, want)
	}
}

func TestTraceJSONDeterministic(t *testing.T) {
	rec := twoThreadRun()
	var a, b bytes.Buffer
	if err := rec.TraceJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := rec.TraceJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("TraceJSON not byte-deterministic for identical input")
	}
}
