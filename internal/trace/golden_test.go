package trace

import (
	"testing"

	"repro/internal/sim"
)

// feed records synthetic events into a fresh recorder.
func feed(events []Event) *Recorder {
	r := NewRecorder()
	for _, e := range events {
		r.Record(e)
	}
	return r
}

// twoThreadRun is a hand-built two-thread handover on one lock:
// thread 0 holds 10..30, thread 1 waits 20..40 and holds 40..50.
func twoThreadRun() *Recorder {
	return feed([]Event{
		{Time: 0, TID: 0, CPU: 0, Node: 0, Kind: AcquireStart, Lock: "L"},
		{Time: 10, TID: 0, CPU: 0, Node: 0, Kind: Acquired, Lock: "L"},
		{Time: 20, TID: 1, CPU: 4, Node: 1, Kind: AcquireStart, Lock: "L"},
		{Time: 30, TID: 0, CPU: 0, Node: 0, Kind: Released, Lock: "L"},
		{Time: 40, TID: 1, CPU: 4, Node: 1, Kind: Acquired, Lock: "L"},
		{Time: 50, TID: 1, CPU: 4, Node: 1, Kind: Released, Lock: "L"},
	})
}

// TestCSVGolden pins the exact CSV rendering. The CSV is a documented
// output format; change it only deliberately, updating this golden.
func TestCSVGolden(t *testing.T) {
	want := `time_ns,tid,cpu,node,kind,lock
0,0,0,0,acquire-start,L
10,0,0,0,acquired,L
20,1,4,1,acquire-start,L
30,0,0,0,released,L
40,1,4,1,acquired,L
50,1,4,1,released,L
`
	if got := twoThreadRun().CSV(); got != want {
		t.Errorf("CSV golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTimelineGolden pins the exact ASCII timeline rendering.
func TestTimelineGolden(t *testing.T) {
	want := `timeline 0 .. 50ns  (# holding, - waiting, . other)
t00 -#####....
t01 ...----###
`
	if got := twoThreadRun().Timeline(10); got != want {
		t.Errorf("timeline golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// interleavedTwoLocks builds two independent locks whose acquisitions
// interleave in time: lock A only ever held in node 0, lock B only in
// node 1. Any cross-lock conflation shows up as spurious node handoffs.
func interleavedTwoLocks() *Recorder {
	var events []Event
	tm := sim.Time(0)
	step := func(tid, node int, kind Kind, lock string) {
		events = append(events, Event{Time: tm, TID: tid, CPU: node * 4, Node: node, Kind: kind, Lock: lock})
		tm++
	}
	for i := 0; i < 3; i++ {
		step(0, 0, AcquireStart, "A")
		step(0, 0, Acquired, "A")
		step(1, 1, AcquireStart, "B")
		step(1, 1, Acquired, "B")
		step(0, 0, Released, "A")
		step(1, 1, Released, "B")
	}
	return feed(events)
}

// TestAnalyzeSeparatesLocks is the regression test for the historical
// bug where Analyze ignored Event.Lock: two interleaved locks pinned to
// different nodes produced alternating lastNode values and thus a 100%
// node-handoff ratio. Attribution must be per lock, aggregate a sum.
func TestAnalyzeSeparatesLocks(t *testing.T) {
	rec := interleavedTwoLocks()
	agg := rec.Analyze()
	if agg.Acquisitions != 6 {
		t.Fatalf("aggregate acquisitions = %d, want 6", agg.Acquisitions)
	}
	// Each lock has 3 acquisitions -> 2 within-lock handoffs; none
	// change node.
	if agg.Handoffs != 4 {
		t.Errorf("aggregate handoffs = %d, want 4 (2 per lock)", agg.Handoffs)
	}
	if agg.NodeHandoffs != 0 {
		t.Errorf("aggregate node handoffs = %d, want 0 (locks never move)", agg.NodeHandoffs)
	}

	by := rec.AnalyzeByLock()
	if len(by) != 2 {
		t.Fatalf("AnalyzeByLock returned %d locks, want 2", len(by))
	}
	for name, want := range map[string]int{"A": 0, "B": 1} {
		s := by[name]
		if s.Acquisitions != 3 || s.Handoffs != 2 || s.NodeHandoffs != 0 {
			t.Errorf("lock %s: %+v", name, s)
		}
		if s.PerThread[want] != 3 {
			t.Errorf("lock %s per-thread = %v", name, s.PerThread)
		}
		// The handoff matrix concentrates on the lock's own diagonal.
		if s.NodeMatrix[want][want] != 2 {
			t.Errorf("lock %s matrix = %v", name, s.NodeMatrix)
		}
	}
	// Aggregate matrix is the element-wise sum.
	if agg.NodeMatrix[0][0] != 2 || agg.NodeMatrix[1][1] != 2 ||
		agg.NodeMatrix[0][1] != 0 || agg.NodeMatrix[1][0] != 0 {
		t.Errorf("aggregate matrix = %v", agg.NodeMatrix)
	}
}

// TestStatsHistograms checks the wait/hold distributions feed from the
// event stream: known synthetic intervals land in the histograms.
func TestStatsHistograms(t *testing.T) {
	s := twoThreadRun().Analyze()
	if s.WaitHist.Count() != 2 || s.HoldHist.Count() != 2 {
		t.Fatalf("hist counts: wait=%d hold=%d", s.WaitHist.Count(), s.HoldHist.Count())
	}
	// Waits are 10 and 20 ns; holds are 20 and 10 ns.
	if s.WaitHist.Min() != 10 || s.WaitHist.Max() != 20 {
		t.Errorf("wait hist min/max = %d/%d", s.WaitHist.Min(), s.WaitHist.Max())
	}
	if s.WaitQuantile(1) != 20 || s.HoldQuantile(1) != 20 {
		t.Errorf("q100: wait=%v hold=%v", s.WaitQuantile(1), s.HoldQuantile(1))
	}
	if s.Wait != 30 || s.Hold != 30 {
		t.Errorf("totals: wait=%v hold=%v", s.Wait, s.Hold)
	}
	// Zero-value Stats answers quantiles without blowing up.
	var zero Stats
	if zero.WaitQuantile(0.5) != 0 || zero.HoldQuantile(0.5) != 0 {
		t.Error("zero Stats quantiles")
	}
}

// TestAnalyzerStreamingMatchesRecorder double-wraps a live lock so the
// same event stream hits a buffering Recorder and a streaming Analyzer;
// both must agree on every statistic.
func TestAnalyzerStreamingMatchesRecorder(t *testing.T) {
	rec := run(t, "HBO_GT_SD", 4, 20)
	an := NewAnalyzer()
	for _, e := range rec.Events() {
		an.Record(e)
	}
	a, b := rec.Analyze(), an.Aggregate()
	if a.Acquisitions != b.Acquisitions || a.Wait != b.Wait || a.Hold != b.Hold ||
		a.Handoffs != b.Handoffs || a.NodeHandoffs != b.NodeHandoffs {
		t.Fatalf("streaming mismatch: %+v vs %+v", a, b)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.WaitQuantile(q) != b.WaitQuantile(q) {
			t.Fatalf("wait q%v mismatch", q)
		}
	}
}
