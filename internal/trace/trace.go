// Package trace records lock events from simulated runs and renders
// them as per-thread timelines, wait/hold statistics and CSV — the
// observability layer for studying handover behaviour lock by lock.
//
// Events flow through the Sink interface. Recorder is a buffering Sink
// for runs small enough to keep every event (timelines, CSV, Perfetto
// export need the raw stream); Analyzer is a streaming Sink that folds
// events into per-lock statistics — histograms, handoff matrices,
// traffic-free O(1) state — so arbitrarily long runs never buffer an
// unbounded event slice.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
	"repro/internal/stats"
)

// Kind classifies a lock event.
type Kind uint8

// Event kinds, in the order they occur for one acquisition. A timed
// attempt that gives up emits Abandoned instead of Acquired/Released.
const (
	AcquireStart Kind = iota
	Acquired
	Released
	Abandoned
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case AcquireStart:
		return "acquire-start"
	case Acquired:
		return "acquired"
	case Released:
		return "released"
	case Abandoned:
		return "abandoned"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded lock event.
type Event struct {
	Time sim.Time
	TID  int
	CPU  int
	Node int
	Kind Kind
	Lock string
}

// Sink consumes a stream of lock events. Record is called in event
// order from the (single-threaded) simulation, so implementations need
// no locking.
type Sink interface {
	Record(Event)
}

// Recorder is a Sink that buffers every event for rendering (timeline,
// CSV, Perfetto export) and after-the-fact analysis.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Events returns the recorded events in occurrence order.
func (r *Recorder) Events() []Event { return r.events }

// Record appends one event, implementing Sink.
func (r *Recorder) Record(e Event) { r.events = append(r.events, e) }

// Wrap returns a lock that forwards to l and reports every event to s.
// If l also implements simlock.TimedLock, so does the returned wrapper:
// a timed attempt records AcquireStart and then either Acquired or — on
// a timeout — Abandoned, so abort rates flow through the same sinks as
// acquisitions.
func Wrap(l simlock.Lock, s Sink) simlock.Lock {
	t := &traced{inner: l, sink: s}
	if tl, ok := l.(simlock.TimedLock); ok {
		return &tracedTimed{traced: t, timed: tl}
	}
	return t
}

type traced struct {
	inner simlock.Lock
	sink  Sink
}

func (t *traced) Name() string { return t.inner.Name() }

func (t *traced) Acquire(p *machine.Proc, tid int) {
	t.sink.Record(Event{p.Now(), tid, p.CPU(), p.Node(), AcquireStart, t.inner.Name()})
	t.inner.Acquire(p, tid)
	t.sink.Record(Event{p.Now(), tid, p.CPU(), p.Node(), Acquired, t.inner.Name()})
}

func (t *traced) Release(p *machine.Proc, tid int) {
	t.inner.Release(p, tid)
	t.sink.Record(Event{p.Now(), tid, p.CPU(), p.Node(), Released, t.inner.Name()})
}

// tracedTimed adds the timed path to a traced lock.
type tracedTimed struct {
	*traced
	timed simlock.TimedLock
}

func (t *tracedTimed) AcquireTimeout(p *machine.Proc, tid int, d sim.Time) bool {
	t.sink.Record(Event{p.Now(), tid, p.CPU(), p.Node(), AcquireStart, t.inner.Name()})
	ok := t.timed.AcquireTimeout(p, tid, d)
	kind := Acquired
	if !ok {
		kind = Abandoned
	}
	t.sink.Record(Event{p.Now(), tid, p.CPU(), p.Node(), kind, t.inner.Name()})
	return ok
}

// Stats summarizes the acquisitions of one lock (or, via Aggregate, the
// sum over all locks).
type Stats struct {
	Acquisitions int
	// Abandoned counts timed attempts that gave up before acquiring.
	// Their wait time is NOT folded into Wait/WaitHist — an abort's
	// duration is capped by its budget, so mixing it in would make the
	// wait distribution look better exactly when the lock behaves worse.
	Abandoned int
	// Wait and Hold are total times across all acquisitions.
	Wait sim.Time
	Hold sim.Time
	// WaitHist and HoldHist are the full wait/hold distributions in
	// nanoseconds — p50/p90/p99 live here; means hide the starvation
	// tails that distinguish the HBO variants.
	WaitHist *stats.Histogram
	HoldHist *stats.Histogram
	// PerThread counts acquisitions per thread id.
	PerThread map[int]int
	// NodeHandoffs counts consecutive acquisitions landing in
	// different nodes; Handoffs counts all consecutive pairs.
	Handoffs     int
	NodeHandoffs int
	// NodeMatrix[from][to] counts handoffs from an acquisition in node
	// `from` to the next acquisition in node `to` (the diagonal is the
	// node-local traffic the NUCA-aware locks engineer for).
	NodeMatrix [][]int
}

// MeanWait returns average time from acquire-start to acquired.
func (s Stats) MeanWait() sim.Time {
	if s.Acquisitions == 0 {
		return 0
	}
	return s.Wait / sim.Time(s.Acquisitions)
}

// MeanHold returns average time from acquired to released.
func (s Stats) MeanHold() sim.Time {
	if s.Acquisitions == 0 {
		return 0
	}
	return s.Hold / sim.Time(s.Acquisitions)
}

// HandoffRatio returns node handoffs per handoff.
func (s Stats) HandoffRatio() float64 {
	if s.Handoffs == 0 {
		return 0
	}
	return float64(s.NodeHandoffs) / float64(s.Handoffs)
}

// AbortRate returns the fraction of attempts (acquisitions plus
// abandonments) that gave up.
func (s Stats) AbortRate() float64 {
	n := s.Acquisitions + s.Abandoned
	if n == 0 {
		return 0
	}
	return float64(s.Abandoned) / float64(n)
}

// WaitQuantile returns the q-quantile of the wait distribution, ns.
func (s Stats) WaitQuantile(q float64) sim.Time {
	if s.WaitHist == nil {
		return 0
	}
	return sim.Time(s.WaitHist.Quantile(q))
}

// HoldQuantile returns the q-quantile of the hold distribution, ns.
func (s Stats) HoldQuantile(q float64) sim.Time {
	if s.HoldHist == nil {
		return 0
	}
	return sim.Time(s.HoldHist.Quantile(q))
}

// newStats returns an empty Stats with its containers allocated.
func newStats() Stats {
	return Stats{
		WaitHist:  &stats.Histogram{},
		HoldHist:  &stats.Histogram{},
		PerThread: map[int]int{},
	}
}

// growMatrix extends m to cover nodes 0..n (square, n+1 wide).
func growMatrix(m [][]int, n int) [][]int {
	if n < len(m) {
		return m
	}
	for len(m) <= n {
		m = append(m, nil)
	}
	for i := range m {
		for len(m[i]) < len(m) {
			m[i] = append(m[i], 0)
		}
	}
	return m
}

// Analyzer is a streaming Sink that folds events into per-lock Stats
// without retaining them. State is O(locks × threads), so it can absorb
// runs far too long for a buffering Recorder.
type Analyzer struct {
	locks map[string]*lockAnalysis
}

type pendAcq struct {
	start    sim.Time
	acquired sim.Time
	have     bool
}

type lockAnalysis struct {
	stats    Stats
	open     map[int]*pendAcq // by tid
	lastNode int
}

// NewAnalyzer returns an empty streaming analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{locks: map[string]*lockAnalysis{}}
}

// Record folds one event into the per-lock state, implementing Sink.
// Events from different locks never mix: each lock tracks its own
// pending acquisitions and last-owner node.
func (a *Analyzer) Record(e Event) {
	la := a.locks[e.Lock]
	if la == nil {
		la = &lockAnalysis{stats: newStats(), open: map[int]*pendAcq{}, lastNode: -1}
		a.locks[e.Lock] = la
	}
	s := &la.stats
	switch e.Kind {
	case AcquireStart:
		la.open[e.TID] = &pendAcq{start: e.Time}
	case Acquired:
		if p := la.open[e.TID]; p != nil {
			p.acquired = e.Time
			p.have = true
			s.Wait += e.Time - p.start
			s.WaitHist.Add(int64(e.Time - p.start))
		}
		s.Acquisitions++
		s.PerThread[e.TID]++
		if la.lastNode >= 0 {
			s.Handoffs++
			hi := la.lastNode
			if e.Node > hi {
				hi = e.Node
			}
			s.NodeMatrix = growMatrix(s.NodeMatrix, hi)
			s.NodeMatrix[la.lastNode][e.Node]++
			if e.Node != la.lastNode {
				s.NodeHandoffs++
			}
		}
		la.lastNode = e.Node
	case Released:
		if p := la.open[e.TID]; p != nil && p.have {
			s.Hold += e.Time - p.acquired
			s.HoldHist.Add(int64(e.Time - p.acquired))
			delete(la.open, e.TID)
		}
	case Abandoned:
		s.Abandoned++
		delete(la.open, e.TID)
	}
}

// Locks returns the analyzed lock names, sorted.
func (a *Analyzer) Locks() []string {
	names := make([]string, 0, len(a.locks))
	for n := range a.locks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByLock returns the per-lock statistics keyed by lock name.
func (a *Analyzer) ByLock() map[string]Stats {
	out := make(map[string]Stats, len(a.locks))
	for n, la := range a.locks {
		out[n] = la.stats
	}
	return out
}

// Aggregate sums the per-lock statistics: counters add, histograms
// merge, handoff matrices overlay. Handoffs remain within-lock pairs —
// an acquisition of lock A never counts as a handoff of lock B.
func (a *Analyzer) Aggregate() Stats {
	agg := newStats()
	for _, name := range a.Locks() {
		s := a.locks[name].stats
		agg.Acquisitions += s.Acquisitions
		agg.Abandoned += s.Abandoned
		agg.Wait += s.Wait
		agg.Hold += s.Hold
		agg.Handoffs += s.Handoffs
		agg.NodeHandoffs += s.NodeHandoffs
		agg.WaitHist.Merge(s.WaitHist)
		agg.HoldHist.Merge(s.HoldHist)
		for tid, n := range s.PerThread {
			agg.PerThread[tid] += n
		}
		if len(s.NodeMatrix) > len(agg.NodeMatrix) {
			agg.NodeMatrix = growMatrix(agg.NodeMatrix, len(s.NodeMatrix)-1)
		}
		for i, row := range s.NodeMatrix {
			for j, v := range row {
				agg.NodeMatrix[i][j] += v
			}
		}
	}
	return agg
}

// Analyze computes aggregate statistics across all recorded events.
// Events are attributed per lock first (so wrapping several locks in
// one recorder never interleaves their handoff chains), then summed.
func (r *Recorder) Analyze() Stats {
	return r.analyzer().Aggregate()
}

// AnalyzeByLock computes per-lock statistics keyed by lock name.
func (r *Recorder) AnalyzeByLock() map[string]Stats {
	return r.analyzer().ByLock()
}

func (r *Recorder) analyzer() *Analyzer {
	a := NewAnalyzer()
	for _, e := range r.events {
		a.Record(e)
	}
	return a
}

// CSV renders the raw events.
func (r *Recorder) CSV() string {
	var b strings.Builder
	b.WriteString("time_ns,tid,cpu,node,kind,lock\n")
	for _, e := range r.events {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%s,%s\n",
			int64(e.Time), e.TID, e.CPU, e.Node, e.Kind, e.Lock)
	}
	return b.String()
}

// Timeline renders an ASCII per-thread timeline of width columns:
// '#' holding the lock, '-' waiting for it, '.' otherwise.
func (r *Recorder) Timeline(width int) string {
	if len(r.events) == 0 || width < 1 {
		return ""
	}
	var tids []int
	seen := map[int]bool{}
	var end sim.Time
	for _, e := range r.events {
		if !seen[e.TID] {
			seen[e.TID] = true
			tids = append(tids, e.TID)
		}
		if e.Time > end {
			end = e.Time
		}
	}
	sort.Ints(tids)
	if end == 0 {
		end = 1
	}
	bucket := func(t sim.Time) int {
		i := int(int64(t) * int64(width) / (int64(end) + 1))
		if i >= width {
			i = width - 1
		}
		return i
	}
	rows := map[int][]byte{}
	for _, tid := range tids {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		rows[tid] = row
	}
	fill := func(tid int, from, to sim.Time, c byte) {
		for i := bucket(from); i <= bucket(to); i++ {
			// '#' (holding) wins over '-' (waiting) in shared buckets.
			if c == '#' || rows[tid][i] == '.' {
				rows[tid][i] = c
			}
		}
	}
	start := map[int]sim.Time{}
	acq := map[int]sim.Time{}
	for _, e := range r.events {
		switch e.Kind {
		case AcquireStart:
			start[e.TID] = e.Time
		case Acquired:
			if t0, ok := start[e.TID]; ok {
				fill(e.TID, t0, e.Time, '-')
			}
			acq[e.TID] = e.Time
		case Released:
			if t0, ok := acq[e.TID]; ok {
				fill(e.TID, t0, e.Time, '#')
			}
		case Abandoned:
			if t0, ok := start[e.TID]; ok {
				fill(e.TID, t0, e.Time, '-')
				delete(start, e.TID)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline 0 .. %v  (# holding, - waiting, . other)\n", end)
	for _, tid := range tids {
		fmt.Fprintf(&b, "t%02d %s\n", tid, rows[tid])
	}
	return b.String()
}
