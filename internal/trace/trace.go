// Package trace records lock events from simulated runs and renders
// them as per-thread timelines, wait/hold statistics and CSV — the
// observability layer for studying handover behaviour lock by lock.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// Kind classifies a lock event.
type Kind uint8

// Event kinds, in the order they occur for one acquisition.
const (
	AcquireStart Kind = iota
	Acquired
	Released
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case AcquireStart:
		return "acquire-start"
	case Acquired:
		return "acquired"
	case Released:
		return "released"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded lock event.
type Event struct {
	Time sim.Time
	TID  int
	CPU  int
	Node int
	Kind Kind
	Lock string
}

// Recorder accumulates events from any number of wrapped locks.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Events returns the recorded events in occurrence order.
func (r *Recorder) Events() []Event { return r.events }

// record appends one event.
func (r *Recorder) record(e Event) { r.events = append(r.events, e) }

// Wrap returns a lock that forwards to l and records every event.
func Wrap(l simlock.Lock, r *Recorder) simlock.Lock {
	return &traced{inner: l, rec: r}
}

type traced struct {
	inner simlock.Lock
	rec   *Recorder
}

func (t *traced) Name() string { return t.inner.Name() }

func (t *traced) Acquire(p *machine.Proc, tid int) {
	t.rec.record(Event{p.Now(), tid, p.CPU(), p.Node(), AcquireStart, t.inner.Name()})
	t.inner.Acquire(p, tid)
	t.rec.record(Event{p.Now(), tid, p.CPU(), p.Node(), Acquired, t.inner.Name()})
}

func (t *traced) Release(p *machine.Proc, tid int) {
	t.inner.Release(p, tid)
	t.rec.record(Event{p.Now(), tid, p.CPU(), p.Node(), Released, t.inner.Name()})
}

// Stats summarizes a recorded run.
type Stats struct {
	Acquisitions int
	// Wait and Hold are total times across all acquisitions.
	Wait sim.Time
	Hold sim.Time
	// PerThread counts acquisitions per thread id.
	PerThread map[int]int
	// NodeHandoffs counts consecutive acquisitions landing in
	// different nodes; Handoffs counts all consecutive pairs.
	Handoffs     int
	NodeHandoffs int
}

// MeanWait returns average time from acquire-start to acquired.
func (s Stats) MeanWait() sim.Time {
	if s.Acquisitions == 0 {
		return 0
	}
	return s.Wait / sim.Time(s.Acquisitions)
}

// MeanHold returns average time from acquired to released.
func (s Stats) MeanHold() sim.Time {
	if s.Acquisitions == 0 {
		return 0
	}
	return s.Hold / sim.Time(s.Acquisitions)
}

// HandoffRatio returns node handoffs per handoff.
func (s Stats) HandoffRatio() float64 {
	if s.Handoffs == 0 {
		return 0
	}
	return float64(s.NodeHandoffs) / float64(s.Handoffs)
}

// Analyze computes statistics across all recorded events.
func (r *Recorder) Analyze() Stats {
	s := Stats{PerThread: map[int]int{}}
	type pend struct {
		start    sim.Time
		acquired sim.Time
		have     bool
	}
	open := map[int]*pend{} // by tid
	lastNode := -1
	for _, e := range r.events {
		switch e.Kind {
		case AcquireStart:
			open[e.TID] = &pend{start: e.Time}
		case Acquired:
			if p := open[e.TID]; p != nil {
				p.acquired = e.Time
				p.have = true
				s.Wait += e.Time - p.start
			}
			s.Acquisitions++
			s.PerThread[e.TID]++
			if lastNode >= 0 {
				s.Handoffs++
				if e.Node != lastNode {
					s.NodeHandoffs++
				}
			}
			lastNode = e.Node
		case Released:
			if p := open[e.TID]; p != nil && p.have {
				s.Hold += e.Time - p.acquired
				delete(open, e.TID)
			}
		}
	}
	return s
}

// CSV renders the raw events.
func (r *Recorder) CSV() string {
	var b strings.Builder
	b.WriteString("time_ns,tid,cpu,node,kind,lock\n")
	for _, e := range r.events {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%s,%s\n",
			int64(e.Time), e.TID, e.CPU, e.Node, e.Kind, e.Lock)
	}
	return b.String()
}

// Timeline renders an ASCII per-thread timeline of width columns:
// '#' holding the lock, '-' waiting for it, '.' otherwise.
func (r *Recorder) Timeline(width int) string {
	if len(r.events) == 0 || width < 1 {
		return ""
	}
	var tids []int
	seen := map[int]bool{}
	var end sim.Time
	for _, e := range r.events {
		if !seen[e.TID] {
			seen[e.TID] = true
			tids = append(tids, e.TID)
		}
		if e.Time > end {
			end = e.Time
		}
	}
	sort.Ints(tids)
	if end == 0 {
		end = 1
	}
	bucket := func(t sim.Time) int {
		i := int(int64(t) * int64(width) / (int64(end) + 1))
		if i >= width {
			i = width - 1
		}
		return i
	}
	rows := map[int][]byte{}
	for _, tid := range tids {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		rows[tid] = row
	}
	fill := func(tid int, from, to sim.Time, c byte) {
		for i := bucket(from); i <= bucket(to); i++ {
			// '#' (holding) wins over '-' (waiting) in shared buckets.
			if c == '#' || rows[tid][i] == '.' {
				rows[tid][i] = c
			}
		}
	}
	start := map[int]sim.Time{}
	acq := map[int]sim.Time{}
	for _, e := range r.events {
		switch e.Kind {
		case AcquireStart:
			start[e.TID] = e.Time
		case Acquired:
			if t0, ok := start[e.TID]; ok {
				fill(e.TID, t0, e.Time, '-')
			}
			acq[e.TID] = e.Time
		case Released:
			if t0, ok := acq[e.TID]; ok {
				fill(e.TID, t0, e.Time, '#')
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline 0 .. %v  (# holding, - waiting, . other)\n", end)
	for _, tid := range tids {
		fmt.Fprintf(&b, "t%02d %s\n", tid, rows[tid])
	}
	return b.String()
}
