package lockserv

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// Durability has a price: every grant/renew/release ack now waits for
// a WAL append. The contract is that the durable service keeps at
// least 75% of the in-memory service's uncontended op throughput —
// the frame encode plus one buffered write syscall, not an fsync, per
// op. The benchmarks measure it; the guard enforces it when
// HBO_WAL_OVERHEAD_GUARD=1 (its own CI step, like the obs guard, so
// scheduler noise cannot flake the main test job).
//
// Numbers for this host live in BENCH_wal.json. Reproduce with:
//
//	go test -run '^$' -bench 'ServiceAcquireRelease' -count 5 ./internal/lockserv/
//	HBO_WAL_OVERHEAD_GUARD=1 go test -run TestWALOverheadGuard -v ./internal/lockserv/

func benchService(b *testing.B, durable bool) {
	cfg := Config{
		Tenants:    []string{"t0"},
		Shards:     1,
		DefaultTTL: time.Minute,
		MaxTTL:     time.Minute,
	}
	if durable {
		store, err := OpenStore(b.TempDir(), StoreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close()
		cfg.Store = store
	}
	svc, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := svc.Acquire("t0", "k", "bench", time.Minute)
		if err != nil || d.Outcome != WireGranted {
			b.Fatalf("acquire %d = %+v, %v", i, d, err)
		}
		if r, err := svc.Release("t0", "k", "bench", d.Token); err != nil || r.Outcome != WireReleased {
			b.Fatalf("release %d = %+v, %v", i, r, err)
		}
	}
}

func BenchmarkServiceAcquireReleaseMemory(b *testing.B)  { benchService(b, false) }
func BenchmarkServiceAcquireReleaseDurable(b *testing.B) { benchService(b, true) }

// BenchmarkStoreAppend is the isolated WAL append: encode one frame in
// place in the mapping, fold it into the shadow state, amortized
// snapshot compaction included.
func BenchmarkStoreAppend(b *testing.B) {
	store, err := OpenStore(b.TempDir(), StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := "grant"
		if i%2 == 1 {
			op = "release"
		}
		if err := store.Append(op, "t0", "k", "bench", uint64(i/2+1), 1754650000000000000); err != nil {
			b.Fatal(err)
		}
	}
}

// measureServiceNsPerOp returns one round's ns/op for the given side.
func measureServiceNsPerOp(durable bool) float64 {
	r := testing.Benchmark(func(b *testing.B) { benchService(b, durable) })
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// TestWALOverheadGuard fails if the durable acquire/release cycle
// drops below 75% of the in-memory throughput. Gated behind an
// environment variable because it is a timing assertion: run it alone
// on an otherwise idle machine.
//
// Measurement design: the two sides are benchmarked in back-to-back
// (memory, durable) pairs and the ratio is taken within each pair,
// keeping the best. Host disturbances — CPU frequency drift, a noisy
// CI neighbor — shift both halves of an adjacent pair together, so a
// within-pair ratio is far more stable than a ratio of minima taken
// minutes apart; the best pair estimates the undisturbed ratio.
func TestWALOverheadGuard(t *testing.T) {
	if os.Getenv("HBO_WAL_OVERHEAD_GUARD") != "1" {
		t.Skip("set HBO_WAL_OVERHEAD_GUARD=1 to run the timing guard")
	}
	const rounds = 5
	// One warmup of each side before measuring.
	measureServiceNsPerOp(false)
	measureServiceNsPerOp(true)
	var mem, dur, best float64
	for i := 0; i < rounds; i++ {
		m := measureServiceNsPerOp(false)
		d := measureServiceNsPerOp(true)
		t.Logf("pair %d: memory=%.0fns/op durable=%.0fns/op ratio=%.1f%%", i, m, d, m/d*100)
		if r := m / d; r > best {
			best, mem, dur = r, m, d
		}
	}
	ratio := best * 100 // durable throughput as % of in-memory
	t.Logf("best pair: memory=%.0fns/op durable=%.0fns/op durable throughput=%.1f%% of in-memory", mem, dur, ratio)
	if dur*0.75 > mem {
		t.Fatalf("durable acquire/release %.0fns/op is %.1f%% of in-memory %.0fns/op (floor 75%%)",
			dur, ratio, mem)
	}
	fmt.Printf("wal-overhead-guard: memory=%.0f durable=%.0f throughput=%.1f%% floor=75%%\n", mem, dur, ratio)
}
