package lockserv

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strconv"
)

// WAL frame format. Every lease transition the service must not
// forget — grant, renew, release, expire — is one length-prefixed,
// checksummed frame appended to wal.log in a single write:
//
//	u32 payload length (little-endian)
//	u32 CRC-32 (Castagnoli) of the payload
//	payload: one walRecord as JSON
//
// The single-write discipline matters: a process crash can tear at
// most the final frame, and the reader's torn-tail policy (stop at
// the last frame whose length is plausible and whose checksum
// verifies) recovers everything before it without needing any repair
// step. JSON payloads keep the log greppable; the frame envelope, not
// the payload encoding, carries the integrity guarantee.

// walFrameHeader is the fixed envelope size.
const walFrameHeader = 8

// walMaxPayload bounds a plausible frame so a torn length prefix
// cannot make the reader skip gigabytes hunting for a checksum match.
const walMaxPayload = 1 << 20

// walCRC is the Castagnoli table (hardware-accelerated on amd64/arm64).
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walRecord is one durable lease transition. Seq is the store's global
// sequence number; replay skips records already folded into a
// snapshot (Seq <= snapshot seq) and duplicated tail frames (Seq <=
// last applied), which makes replay idempotent under CrashDup tails.
type walRecord struct {
	Seq          uint64 `json:"seq"`
	Op           string `json:"op"` // grant, renew, release, expire
	Tenant       string `json:"tenant"`
	Key          string `json:"key"`
	Owner        string `json:"owner,omitempty"`
	Token        uint64 `json:"token,omitempty"`
	ExpiryUnixNS int64  `json:"expiry_unix_ns,omitempty"`
}

// encodeFrame renders rec as one appendable frame.
func encodeFrame(rec walRecord) ([]byte, error) {
	return appendFrame(nil, &rec)
}

// appendFrame appends rec's frame to dst, reusing dst's capacity. The
// append path runs this on every acked operation, so the payload is
// rendered by a hand-rolled JSON emitter instead of json.Marshal —
// the output is ordinary JSON (json.Unmarshal reads it back), but the
// encoder allocates nothing once dst's capacity is warm, which is
// most of what keeps the durable service within its overhead budget.
func appendFrame(dst []byte, rec *walRecord) ([]byte, error) {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header, patched below
	dst = appendWalJSON(dst, rec)
	payload := dst[base+walFrameHeader:]
	if len(payload) > walMaxPayload {
		return dst[:base], fmt.Errorf("lockserv: wal record %d bytes exceeds frame cap", len(payload))
	}
	binary.LittleEndian.PutUint32(dst[base:base+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[base+4:base+8], crc32.Checksum(payload, walCRC))
	return dst, nil
}

// appendWalJSON renders rec as the same JSON object json.Marshal would
// produce for well-formed UTF-8 inputs, with omitempty semantics for
// the optional fields.
func appendWalJSON(dst []byte, rec *walRecord) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, rec.Seq, 10)
	dst = append(dst, `,"op":"`...)
	dst = append(dst, rec.Op...) // ops are internal constants, never escaped
	dst = append(dst, `","tenant":`...)
	dst = appendJSONString(dst, rec.Tenant)
	dst = append(dst, `,"key":`...)
	dst = appendJSONString(dst, rec.Key)
	if rec.Owner != "" {
		dst = append(dst, `,"owner":`...)
		dst = appendJSONString(dst, rec.Owner)
	}
	if rec.Token != 0 {
		dst = append(dst, `,"token":`...)
		dst = strconv.AppendUint(dst, rec.Token, 10)
	}
	if rec.ExpiryUnixNS != 0 {
		dst = append(dst, `,"expiry_unix_ns":`...)
		dst = strconv.AppendInt(dst, rec.ExpiryUnixNS, 10)
	}
	return append(dst, '}')
}

// appendJSONString quotes s, escaping what JSON requires (quote,
// backslash, control bytes). Multi-byte runes pass through untouched:
// the payload is UTF-8 in, UTF-8 out.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"', '\\':
			dst = append(dst, '\\', c)
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// decodeFrames walks data frame by frame, stopping at the first frame
// that is short, implausibly sized, zero-length, or checksum-broken.
// It returns the decoded records, the byte length of the valid prefix,
// and the length of the torn tail: the bytes past the valid prefix up
// to the last nonzero byte. An all-zero remainder is not torn — it is
// the mmap appender's preallocated padding, the normal tail of a file
// whose process never got to close cleanly — and a zero length prefix
// marks that boundary (no real frame has an empty payload).
// A torn tail is not an error — it is the expected shape of a crash —
// so the only error return is a payload that passes its checksum but
// fails to parse, which means the writer was broken, not the crash.
func decodeFrames(data []byte) (recs []walRecord, validLen int64, tornBytes int64, err error) {
	off := int64(0)
	for int64(len(data))-off >= walFrameHeader {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if n == 0 {
			break // padding (or a frame that never started)
		}
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > walMaxPayload || off+walFrameHeader+n > int64(len(data)) {
			break // torn length prefix or truncated payload
		}
		payload := data[off+walFrameHeader : off+walFrameHeader+n]
		if crc32.Checksum(payload, walCRC) != sum {
			break // torn or garbled tail
		}
		var rec walRecord
		if uerr := json.Unmarshal(payload, &rec); uerr != nil {
			return recs, off, tornTail(data, off), fmt.Errorf("lockserv: wal frame at %d: checksummed payload unparseable: %w", off, uerr)
		}
		recs = append(recs, rec)
		off += walFrameHeader + n
	}
	return recs, off, tornTail(data, off), nil
}

// tornTail measures the torn bytes past the valid prefix: everything
// up to the last nonzero byte. Trailing zeros are preallocation, not
// damage.
func tornTail(data []byte, validLen int64) int64 {
	end := int64(len(data))
	for end > validLen && data[end-1] == 0 {
		end--
	}
	return end - validLen
}
