package lockserv

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/fault"
)

// The crash matrix runs a deterministic lease workload against a
// durable service, kills the WAL at every sampled byte offset in all
// three tail shapes (kill, torn, dup), recovers, and checks the two
// promises the WAL exists to keep:
//
//   - no double-grant: every transition the client saw acked is in the
//     recovered state (an acked grant can never be forgotten, because
//     the ack itself is gated on the append);
//   - no dead-token resurrection: a token the client saw closed never
//     comes back live.
//
// The oracle is a client-side mirror built exclusively from Decision
// values — the service's acks — never from the service's internals.
// The crossing append (the op in flight when the crash lands) is the
// interesting case: it is refused as busy, so it is absent from the
// mirror, and the matrix asserts the recovered state differs from the
// mirror by at most that one un-acked transition, and only in dup
// mode (the only shape where the crossing frame survives).

// cmRNG is a splitmix64 stream local to the matrix.
type cmRNG struct{ x uint64 }

func (r *cmRNG) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *cmRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// cmState is the mirror's view of one key: the last acked lease.
type cmState struct {
	owner    string
	token    uint64
	expiryNS int64
	closed   bool // acked released
}

// cmPending records the op that was refused busy when the WAL died.
type cmPending struct {
	kind   string // "acquire", "renew", "release", "sweep"
	tenant string
	key    string
}

// cmDriver drives the scripted workload and maintains the mirror.
type cmDriver struct {
	t       *testing.T
	svc     *Service
	clock   *ManualClock
	rng     *cmRNG
	mirror  map[string]*cmState // tenant\x00key → last acked lease
	maxTok  map[string]uint64   // tenant\x00key → max acked token
	pending *cmPending
}

func newCMDriver(t *testing.T, svc *Service, clock *ManualClock, seed uint64) *cmDriver {
	return &cmDriver{
		t: t, svc: svc, clock: clock,
		rng:    &cmRNG{x: seed*2 + 1},
		mirror: map[string]*cmState{},
		maxTok: map[string]uint64{},
	}
}

var cmTenants = []string{"t0", "t1"}
var cmKeys = []string{"ka", "kb", "kc", "kd"}
var cmOwners = []string{"alice", "bob", "carol"}

// step advances the workload by one operation. It returns false once
// the service goes fail-closed (the crash landed), recording the
// refused op in pending.
func (d *cmDriver) step() bool {
	if d.rng.intn(6) == 0 {
		d.clock.Advance(time.Duration(1+d.rng.intn(40)) * time.Millisecond)
	}
	if d.rng.intn(12) == 0 {
		d.svc.SweepDue()
		if d.svc.PersistFailed() {
			d.pending = &cmPending{kind: "sweep"}
			return false
		}
		return true
	}
	tenant := cmTenants[d.rng.intn(len(cmTenants))]
	key := cmKeys[d.rng.intn(len(cmKeys))]
	owner := cmOwners[d.rng.intn(len(cmOwners))]
	id := tenant + "\x00" + key
	m := d.mirror[id]
	now := d.clock.Now().UnixNano()
	ttl := time.Duration(20+d.rng.intn(80)) * time.Millisecond

	var dec Decision
	var err error
	kind := "acquire"
	if m != nil && !m.closed && m.expiryNS > now && d.rng.intn(2) == 0 {
		// Operate on the live lease as its holder.
		switch d.rng.intn(3) {
		case 0:
			kind = "renew"
			dec, err = d.svc.Renew(tenant, key, m.owner, m.token, ttl)
		case 1:
			kind = "release"
			dec, err = d.svc.Release(tenant, key, m.owner, m.token)
		default:
			dec, err = d.svc.Acquire(tenant, key, m.owner, ttl) // reentrant
		}
	} else {
		dec, err = d.svc.Acquire(tenant, key, owner, ttl)
	}
	if err != nil {
		d.t.Fatalf("workload op error: %v", err)
	}

	switch dec.Outcome {
	case WireBusy:
		d.pending = &cmPending{kind: kind, tenant: tenant, key: key}
		return false
	case WireGranted:
		d.mirror[id] = &cmState{owner: dec.Holder, token: dec.Token, expiryNS: dec.Expiry.UnixNano()}
		if d.maxTok[id] >= dec.Token {
			d.t.Fatalf("%s/%s: acked grant token %d not monotonic (max %d)", tenant, key, dec.Token, d.maxTok[id])
		}
		d.maxTok[id] = dec.Token
	case WireRenewed:
		if m == nil || m.token != dec.Token {
			// Reentrant acquire by a fresh owner renewing an unknown
			// lease cannot happen in this script.
			d.t.Fatalf("%s/%s: acked renew of token %d but mirror holds %+v", tenant, key, dec.Token, m)
		}
		m.expiryNS = dec.Expiry.UnixNano()
	case WireReleased:
		m.closed = true
	case WireConflict, WireStale:
		// Denials carry no state the mirror tracks.
	default:
		d.t.Fatalf("unexpected outcome %q", dec.Outcome)
	}
	return true
}

// countingWriter records the cumulative byte offset after every frame.
type countingWriter struct {
	inner      io.Writer
	boundaries []int64
	total      int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.inner.Write(p)
	c.total += int64(n)
	c.boundaries = append(c.boundaries, c.total)
	return n, err
}

// cmConfig builds the durable service config for one matrix run.
func cmConfig(clock *ManualClock, store *Store, accessLog io.Writer) Config {
	return Config{
		Tenants:        cmTenants,
		Shards:         2,
		Nodes:          1,
		ThreadsPerNode: 1,
		Clock:          clock,
		Store:          store,
		AccessLog:      accessLog,
		OpTimeout:      time.Second,
	}
}

const cmOps = 90
const cmSnapshotEvery = 16
const cmSeed = 7

// cmMeasure runs the workload with no crash and returns the append
// stream's frame boundaries and total length.
func cmMeasure(t *testing.T) (boundaries []int64, total int64) {
	t.Helper()
	dir := t.TempDir()
	cw := &countingWriter{}
	store, err := OpenStore(dir, StoreOptions{
		SnapshotEvery: cmSnapshotEvery,
		WrapWAL:       func(w io.Writer) io.Writer { cw.inner = w; return cw },
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := NewManualClock(time.Unix(100, 0))
	svc, err := New(cmConfig(clock, store, nil))
	if err != nil {
		t.Fatal(err)
	}
	d := newCMDriver(t, svc, clock, cmSeed)
	for i := 0; i < cmOps; i++ {
		if !d.step() {
			t.Fatalf("op %d: service failed closed with no crash injected", i)
		}
	}
	store.Close()
	if cw.total == 0 {
		t.Fatal("workload appended nothing; the matrix would be vacuous")
	}
	return cw.boundaries, cw.total
}

// runCrashPoint executes the full matrix cycle for one (plan) crash
// point: workload → crash → double read-only recovery (byte-identical
// reports) → oracle checks against the mirror → restart → continuation
// workload → stitched access-log audit.
func runCrashPoint(t *testing.T, plan fault.CrashPlan) {
	t.Helper()
	dir := t.TempDir()
	var crashed *fault.CrashWriter
	store, err := OpenStore(dir, StoreOptions{
		SnapshotEvery: cmSnapshotEvery,
		WrapWAL: func(w io.Writer) io.Writer {
			crashed = fault.NewCrashWriter(w, plan)
			return crashed
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := NewManualClock(time.Unix(100, 0))
	var preLog bytes.Buffer
	svc, err := New(cmConfig(clock, store, &preLog))
	if err != nil {
		t.Fatal(err)
	}
	d := newCMDriver(t, svc, clock, cmSeed)
	for i := 0; i < cmOps && d.step(); i++ {
	}
	if d.pending == nil && crashed.Crashed() {
		t.Fatal("crash landed but the workload never observed fail-closed")
	}
	crashNS := clock.Now().UnixNano()
	// The access log survives in full here (the live-daemon lost-tail
	// case is covered by the chaos soak and the verifier tests).
	if err := svc.Close(); err != nil {
		t.Fatalf("flushing access log: %v", err)
	}
	_ = store.Close() // sticky crash error expected; the file must close

	// Recovery must be deterministic: two read-only passes over the
	// same bytes yield byte-identical reports.
	var reports [2]bytes.Buffer
	for i := range reports {
		ro, err := OpenStore(dir, StoreOptions{ReadOnly: true})
		if err != nil {
			t.Fatalf("read-only recovery: %v", err)
		}
		if err := ro.Recovery().WriteJSON(&reports[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(reports[0].Bytes(), reports[1].Bytes()) {
		t.Fatalf("recovery reports differ across identical recoveries:\n%s\nvs\n%s",
			reports[0].Bytes(), reports[1].Bytes())
	}

	rec, err := OpenStore(dir, StoreOptions{SnapshotEvery: cmSnapshotEvery})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	d.checkRecovered(rec, plan, crashNS)

	// Full restart: a new service over the recovered store, continuing
	// the workload; the stitched pre/post-crash access log must verify.
	var postLog bytes.Buffer
	svc2, err := New(cmConfig(clock, rec, &postLog))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	cont := newCMDriver(t, svc2, clock, cmSeed+1000)
	// Seed the continuation's mirror from the recovered state so it
	// renews and releases restored leases, not just fresh ones.
	leases, tokens := rec.Restored()
	for id, tm := range tokens {
		for k, tok := range tm {
			cont.maxTok[id+"\x00"+k] = tok
		}
	}
	for _, l := range leases {
		cont.mirror[l.Tenant+"\x00"+l.Key] = &cmState{owner: l.Owner, token: l.Token, expiryNS: l.ExpiryUnixNS}
	}
	for i := 0; i < 25; i++ {
		if !cont.step() {
			t.Fatalf("continuation op %d: service failed closed after recovery", i)
		}
	}
	if err := svc2.Close(); err != nil {
		t.Fatalf("flushing post-crash access log: %v", err)
	}
	rec.Close()
	if n, err := VerifyAccessLogSegments(bytes.NewReader(preLog.Bytes()), bytes.NewReader(postLog.Bytes())); err != nil {
		t.Fatalf("stitched access log failed audit after %d events: %v", n, err)
	}
}

// checkRecovered asserts the recovered store state against the mirror.
func (d *cmDriver) checkRecovered(rec *Store, plan fault.CrashPlan, crashNS int64) {
	d.t.Helper()
	leases, tokens := rec.Restored()
	live := map[string]RestoredLease{}
	for _, l := range leases {
		live[l.Tenant+"\x00"+l.Key] = l
	}
	dup := plan.Mode == fault.CrashDup
	p := d.pending
	pendingOn := func(id string, kinds ...string) bool {
		if !dup || p == nil {
			return false
		}
		if p.tenant+"\x00"+p.key != id {
			return false
		}
		for _, k := range kinds {
			if p.kind == k {
				return true
			}
		}
		return false
	}

	// Every recovered lease and counter must be explainable by an ack
	// or by the single un-acked crossing frame (dup mode only).
	seen := map[string]bool{}
	for id, l := range live {
		seen[id] = true
		m := d.mirror[id]
		max := d.maxTok[id]
		switch {
		case l.Token == max+1:
			if !pendingOn(id, "acquire") {
				d.t.Errorf("%s: recovered un-acked token %d (max acked %d) without a dup-mode pending acquire", id, l.Token, max)
			}
		case l.Token > max+1:
			d.t.Errorf("%s: recovered token %d but only %d tokens were ever mintable", id, l.Token, max+1)
		default:
			if m == nil || l.Token != m.token || l.Owner != m.owner {
				d.t.Errorf("%s: recovered lease %+v does not match last acked state %+v", id, l, m)
				continue
			}
			if m.closed {
				d.t.Errorf("%s: token %d resurrected after an acked release", id, l.Token)
			}
			// A renew may move the deadline either way (expiry is always
			// now+ttl), so any divergence from the acked deadline needs
			// the dup-mode crossing renew to explain it.
			if l.ExpiryUnixNS != m.expiryNS && !pendingOn(id, "acquire", "renew") {
				d.t.Errorf("%s: recovered expiry %d != acked %d without a dup-mode pending renew", id, l.ExpiryUnixNS, m.expiryNS)
			}
		}
	}
	// Acked live leases that could not have expired must have survived.
	for id, m := range d.mirror {
		if m.closed || seen[id] {
			continue
		}
		if m.expiryNS > crashNS && !pendingOn(id, "release") {
			d.t.Errorf("%s: acked lease token %d (expiry %d > crash %d) lost in recovery", id, m.token, m.expiryNS, crashNS)
		}
	}
	// Fencing counters: never below the acked maximum (a regression
	// would remint a token), at most one un-acked mint above it.
	for id, max := range d.maxTok {
		tenant, key := splitID(id)
		got := tokens[tenant][key]
		if got < max {
			d.t.Errorf("%s: recovered counter %d below acked max %d — next grant would remint", id, got, max)
		}
		if got == max+1 && !pendingOn(id, "acquire") {
			d.t.Errorf("%s: counter advanced to %d without a dup-mode pending acquire", id, got)
		}
		if got > max+1 {
			d.t.Errorf("%s: counter %d but only %d tokens were ever mintable", id, got, max+1)
		}
	}
}

func splitID(id string) (tenant, key string) {
	for i := 0; i < len(id); i++ {
		if id[i] == 0 {
			return id[:i], id[i+1:]
		}
	}
	return id, ""
}

// TestCrashMatrix sweeps crash points across the workload's append
// stream: a byte-stride sample, exact frame boundaries (and their
// neighbours, where tears are most shapely), each in all three modes.
func TestCrashMatrix(t *testing.T) {
	boundaries, total := cmMeasure(t)

	offsets := map[int64]bool{}
	stride := total / 10
	if stride < 1 {
		stride = 1
	}
	for off := stride; off < total; off += stride {
		offsets[off] = true
	}
	for _, i := range []int{0, len(boundaries) / 2, len(boundaries) - 1} {
		b := boundaries[i]
		for _, off := range []int64{b - 1, b, b + 1} {
			if off >= 1 && off < total {
				offsets[off] = true
			}
		}
	}

	for off := range offsets {
		for _, mode := range fault.CrashModes() {
			plan := fault.CrashPlan{AfterBytes: off, Mode: mode}
			t.Run(fmt.Sprintf("off=%d/%s", off, mode), func(t *testing.T) {
				runCrashPoint(t, plan)
			})
		}
	}
}

// TestCrashMatrixSeeded covers the seed-addressable plan path the
// soak-style callers use: CrashPlanFor must replay deterministically
// and land safely wherever it points.
func TestCrashMatrixSeeded(t *testing.T) {
	_, total := cmMeasure(t)
	for seed := uint64(1); seed <= 6; seed++ {
		plan := fault.CrashPlanFor(seed, total)
		if plan != fault.CrashPlanFor(seed, total) {
			t.Fatalf("seed %d: plan not deterministic", seed)
		}
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashPoint(t, plan)
		})
	}
}
