package lockserv

import (
	"testing"
	"time"
)

var t0 = time.Unix(1000, 0)

// TestLeaseGrantRenewRelease walks the happy path and pins token
// assignment: fresh grants take strictly increasing tokens, renew and
// release only work for the live (owner, token).
func TestLeaseGrantRenewRelease(t *testing.T) {
	lt := newLeaseTable()
	g, o, holder, _, expired := lt.acquire("k", "alice", time.Second, t0)
	if o != Granted || g.Token != 1 || holder != "alice" || expired {
		t.Fatalf("first acquire = %v token=%d holder=%q expired=%v", o, g.Token, holder, expired)
	}
	if g.Expiry != t0.Add(time.Second) {
		t.Fatalf("expiry = %v", g.Expiry)
	}

	g2, o2, _, _ := lt.renew("k", "alice", 1, time.Second, t0.Add(500*time.Millisecond))
	if o2 != Renewed || g2.Token != 1 || g2.Expiry != t0.Add(1500*time.Millisecond) {
		t.Fatalf("renew = %v token=%d expiry=%v", o2, g2.Token, g2.Expiry)
	}

	if o3, _, _ := lt.release("k", "alice", 1, t0.Add(time.Second)); o3 != Released {
		t.Fatalf("release = %v", o3)
	}

	// Re-grant after release: token continues the monotonic sequence.
	g4, o4, _, _, _ := lt.acquire("k", "bob", time.Second, t0.Add(2*time.Second))
	if o4 != Granted || g4.Token != 2 {
		t.Fatalf("re-grant = %v token=%d", o4, g4.Token)
	}
}

// TestLeaseConflictAndReentrant: a second owner conflicts and learns
// the holder; the live holder's re-acquire is a renewal under the same
// token, not a second grant.
func TestLeaseConflictAndReentrant(t *testing.T) {
	lt := newLeaseTable()
	lt.acquire("k", "alice", time.Second, t0)

	g, o, holder, _, _ := lt.acquire("k", "bob", time.Second, t0.Add(100*time.Millisecond))
	if o != Conflict || holder != "alice" || g.Token != 1 {
		t.Fatalf("conflict = %v holder=%q token=%d", o, holder, g.Token)
	}
	if g.Expiry != t0.Add(time.Second) {
		t.Fatalf("conflict should report the holder's deadline, got %v", g.Expiry)
	}

	g2, o2, _, _, _ := lt.acquire("k", "alice", time.Second, t0.Add(200*time.Millisecond))
	if o2 != Renewed || g2.Token != 1 || g2.Expiry != t0.Add(1200*time.Millisecond) {
		t.Fatalf("reentrant acquire = %v token=%d expiry=%v", o2, g2.Token, g2.Expiry)
	}
}

// TestRenewVsExpiry is the ISSUE's first named race: a renew that
// arrives after the deadline loses — the lease is collected first and
// the renew is Stale, never a resurrection.
func TestRenewVsExpiry(t *testing.T) {
	lt := newLeaseTable()
	lt.acquire("k", "alice", time.Second, t0)

	// One nanosecond before the deadline the renew still wins.
	if _, o, _, _ := lt.renew("k", "alice", 1, time.Second, t0.Add(time.Second-time.Nanosecond)); o != Renewed {
		t.Fatalf("renew before deadline = %v", o)
	}
	// At/after the (new) deadline the lease dies on access and the
	// renew is stale; the dead lease is reported for logging.
	late := t0.Add(2*time.Second + time.Nanosecond)
	_, o, dead, expired := lt.renew("k", "alice", 1, time.Second, late)
	if o != Stale || !expired || dead.token != 1 || dead.owner != "alice" {
		t.Fatalf("renew after deadline = %v expired=%v dead=%+v", o, expired, dead)
	}
	// The token is dead forever: even with the key now free, the old
	// token cannot renew.
	if _, o, _, _ := lt.renew("k", "alice", 1, time.Second, late); o != Stale {
		t.Fatalf("dead token renewed")
	}
}

// TestReleaseAfterExpiryStaleToken is the second named race: the key
// expires, is re-granted to another owner with a larger token, and the
// old holder's release must bounce as Stale without touching the new
// lease.
func TestReleaseAfterExpiryStaleToken(t *testing.T) {
	lt := newLeaseTable()
	lt.acquire("k", "alice", time.Second, t0)

	// Expiry then re-grant: bob gets token 2.
	g, o, _, dead, expired := lt.acquire("k", "bob", time.Second, t0.Add(2*time.Second))
	if o != Granted || g.Token != 2 || !expired || dead.token != 1 {
		t.Fatalf("re-grant = %v token=%d expired=%v dead=%+v", o, g.Token, expired, dead)
	}

	// Alice's release with her stale token 1: Stale, bob unaffected.
	o2, _, _ := lt.release("k", "alice", 1, t0.Add(2100*time.Millisecond))
	if o2 != Stale {
		t.Fatalf("stale release = %v", o2)
	}
	g3, owner, held, _, _ := lt.inspect("k", t0.Add(2200*time.Millisecond))
	if !held || owner != "bob" || g3.Token != 2 {
		t.Fatalf("after stale release: held=%v owner=%q token=%d", held, owner, g3.Token)
	}
	// Even releasing with bob's token but alice's identity is stale.
	if o4, _, _ := lt.release("k", "alice", 2, t0.Add(2300*time.Millisecond)); o4 != Stale {
		t.Fatalf("wrong-owner release = %v", o4)
	}
}

// TestFencingMonotonicAcrossExpiry: tokens never repeat or decrease on
// a key, however leases end (release, expiry, truncation).
func TestFencingMonotonicAcrossExpiry(t *testing.T) {
	lt := newLeaseTable()
	now := t0
	var last uint64
	for i := 0; i < 50; i++ {
		g, o, _, _, _ := lt.acquire("k", "owner", time.Second, now)
		if o != Granted {
			t.Fatalf("round %d: %v", i, o)
		}
		if g.Token <= last {
			t.Fatalf("round %d: token %d not > %d", i, g.Token, last)
		}
		last = g.Token
		switch i % 3 {
		case 0:
			lt.release("k", "owner", g.Token, now)
		case 1:
			now = now.Add(2 * time.Second) // expire lazily
		case 2:
			lt.truncate("k", now.Add(time.Millisecond))
			now = now.Add(2 * time.Millisecond) // expire the truncated lease
		}
	}
}

// TestSweepLazyHeap: renewals leave stale heap entries behind; sweep
// must skip them and only collect leases actually past deadline.
func TestSweepLazyHeap(t *testing.T) {
	lt := newLeaseTable()
	lt.acquire("a", "alice", time.Second, t0)
	lt.acquire("b", "bob", time.Second, t0)
	// Renew a twice: its original heap entries go stale.
	lt.renew("a", "alice", 1, 10*time.Second, t0.Add(100*time.Millisecond))
	lt.renew("a", "alice", 1, 10*time.Second, t0.Add(200*time.Millisecond))

	dead := lt.sweep(t0.Add(2 * time.Second))
	if len(dead) != 1 || dead[0].key != "b" || dead[0].owner != "bob" {
		t.Fatalf("sweep collected %+v, want only b", dead)
	}
	if _, _, held, _, _ := lt.inspect("a", t0.Add(2*time.Second)); !held {
		t.Fatal("renewed lease a was collected")
	}
	// Sweeping again at the same time collects nothing new.
	if dead := lt.sweep(t0.Add(2 * time.Second)); len(dead) != 0 {
		t.Fatalf("second sweep collected %+v", dead)
	}
	// nextExpiry is lazy: it may report a stale entry (the first
	// renew's deadline), which only ever makes the sweeper early.
	if at, ok := lt.nextExpiry(); !ok || at.After(t0.Add(10200*time.Millisecond)) {
		t.Fatalf("nextExpiry = %v, %v", at, ok)
	}
}

// TestTruncate: the session-expiry fault path only ever shortens.
func TestTruncate(t *testing.T) {
	lt := newLeaseTable()
	lt.acquire("k", "alice", time.Second, t0)
	if !lt.truncate("k", t0.Add(100*time.Millisecond)) {
		t.Fatal("truncate to an earlier deadline refused")
	}
	if lt.truncate("k", t0.Add(10*time.Second)) {
		t.Fatal("truncate extended a lease")
	}
	if lt.truncate("absent", t0) {
		t.Fatal("truncate of a free key succeeded")
	}
	if _, _, held, dead, expired := lt.inspect("k", t0.Add(200*time.Millisecond)); held || !expired || dead.token != 1 {
		t.Fatalf("truncated lease: held=%v expired=%v dead=%+v", held, expired, dead)
	}
}

// TestManualClock pins the injectable clock used throughout.
func TestManualClock(t *testing.T) {
	c := NewManualClock(t0)
	if c.Now() != t0 {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Advance(time.Minute)
	if c.Now() != t0.Add(time.Minute) {
		t.Fatalf("after Advance = %v", c.Now())
	}
	c.Set(t0)
	if c.Now() != t0 {
		t.Fatalf("after Set = %v", c.Now())
	}
	if RealClock().Now().IsZero() {
		t.Fatal("real clock returned zero time")
	}
}

// TestTokenBucket: clock-driven admission, refusal with a usable
// Retry-After hint, accrual on advance, and the unlimited mode.
func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(10, 2, t0) // 10/s, burst 2
	now := t0
	for i := 0; i < 2; i++ {
		if ok, _ := b.admit(now); !ok {
			t.Fatalf("burst admit %d refused", i)
		}
	}
	ok, ra := b.admit(now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if ra <= 0 || ra > 100*time.Millisecond {
		t.Fatalf("retry-after = %v, want in (0, 100ms]", ra)
	}
	// Advancing by the hint accrues exactly the next token.
	now = now.Add(ra)
	if ok, _ := b.admit(now); !ok {
		t.Fatal("refused after waiting the hinted duration")
	}
	// Tokens cap at burst: a long idle spell doesn't bank unbounded credit.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := b.admit(now); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d after idle, want burst=2", admitted)
	}

	unlimited := newTokenBucket(0, 0, t0)
	for i := 0; i < 1000; i++ {
		if ok, _ := unlimited.admit(t0); !ok {
			t.Fatal("unlimited bucket refused")
		}
	}
	var nilBucket *tokenBucket
	if ok, _ := nilBucket.admit(t0); !ok {
		t.Fatal("nil bucket refused")
	}
}
