package lockserv

import (
	"sync"
	"time"
)

// Clock abstracts wall time so the whole lease state machine — TTL
// expiry, rate limiting, Retry-After arithmetic — can be driven
// deterministically in tests and in the load driver's deterministic
// mode. The daemon uses the real clock; tests advance a ManualClock by
// hand and observe exactly which leases fall due.
type Clock interface {
	Now() time.Time
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// ManualClock is a Clock that moves only when told to. The zero value
// is not usable; call NewManualClock. Safe for concurrent use.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock returns a manual clock set to start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now returns the current manual time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
func (c *ManualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Set jumps the clock to t (t must not move backwards relative to
// outstanding leases for expiry semantics to stay meaningful; the
// clock itself does not enforce monotonicity).
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}
