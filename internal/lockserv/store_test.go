package lockserv

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// openTestStore opens a store in dir, failing the test on error.
func openTestStore(t *testing.T, dir string, opts StoreOptions) *Store {
	t.Helper()
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatalf("OpenStore(%s): %v", dir, err)
	}
	return s
}

// TestStoreRoundtrip: appends recover byte-for-byte into the same
// leases and fencing counters after a clean close.
func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	mustAppend := func(op, tenant, key, owner string, token uint64, exp int64) {
		t.Helper()
		if err := s.Append(op, tenant, key, owner, token, exp); err != nil {
			t.Fatalf("Append(%s %s/%s): %v", op, tenant, key, err)
		}
	}
	mustAppend("grant", "t0", "a", "alice", 1, 1000)
	mustAppend("grant", "t0", "b", "bob", 1, 2000)
	mustAppend("release", "t0", "a", "alice", 1, 0)
	mustAppend("grant", "t0", "a", "carol", 2, 3000)
	mustAppend("renew", "t0", "a", "carol", 2, 4000)
	mustAppend("grant", "t1", "a", "dave", 1, 5000)
	mustAppend("expire", "t1", "a", "dave", 1, 0)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openTestStore(t, dir, StoreOptions{})
	defer r.Close()
	rec := r.Recovery()
	if rec.FramesReplayed != 7 || rec.TornTail {
		t.Fatalf("recovery = %+v, want 7 replayed and no torn tail", rec)
	}
	leases, tokens := r.Restored()
	if len(leases) != 2 {
		t.Fatalf("restored %d leases, want 2 (%+v)", len(leases), leases)
	}
	if l := leases[0]; l.Tenant != "t0" || l.Key != "a" || l.Owner != "carol" || l.Token != 2 || l.ExpiryUnixNS != 4000 {
		t.Fatalf("lease[0] = %+v, want t0/a carol token 2 expiry 4000", l)
	}
	if l := leases[1]; l.Tenant != "t0" || l.Key != "b" || l.Owner != "bob" || l.Token != 1 {
		t.Fatalf("lease[1] = %+v, want t0/b bob token 1", l)
	}
	if tokens["t1"]["a"] != 1 {
		t.Fatalf("t1/a counter = %d, want 1 (expired lease must keep its fencing counter)", tokens["t1"]["a"])
	}
	if tokens["t0"]["a"] != 2 {
		t.Fatalf("t0/a counter = %d, want 2", tokens["t0"]["a"])
	}
}

// TestStoreCompaction: crossing SnapshotEvery snapshots and resets the
// WAL, and recovery from snapshot + empty WAL matches recovery from
// the records themselves.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{SnapshotEvery: 4})
	for i := 0; i < 10; i++ {
		tok := uint64(i + 1)
		if err := s.Append("grant", "t0", "k", "o", tok, int64(100*tok)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := s.Append("release", "t0", "k", "o", tok, 0); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	if err := s.Append("grant", "t0", "k", "o", 11, 9999); err != nil {
		t.Fatalf("final grant: %v", err)
	}
	s.Close()

	// 21 appends with SnapshotEvery=4 must have compacted: the WAL
	// holds only the records since the last snapshot.
	wal, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatalf("reading wal: %v", err)
	}
	recs, _, _, err := decodeFrames(wal)
	if err != nil {
		t.Fatalf("decoding wal: %v", err)
	}
	if len(recs) >= 21 {
		t.Fatalf("WAL still holds %d records; compaction never ran", len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFileName)); err != nil {
		t.Fatalf("no snapshot after 21 appends: %v", err)
	}

	r := openTestStore(t, dir, StoreOptions{})
	defer r.Close()
	leases, tokens := r.Restored()
	if len(leases) != 1 || leases[0].Token != 11 || leases[0].ExpiryUnixNS != 9999 {
		t.Fatalf("restored %+v, want one lease with token 11 expiry 9999", leases)
	}
	if tokens["t0"]["k"] != 11 {
		t.Fatalf("counter = %d, want 11", tokens["t0"]["k"])
	}
	if r.Seq() != 21 {
		t.Fatalf("recovered seq = %d, want 21", r.Seq())
	}
}

// TestStoreCrashBetweenRenameAndTruncate: a snapshot that landed while
// the WAL still holds pre-snapshot records (the crash window between
// rename and truncate) replays without double-applying — stale frames
// are skipped by sequence number.
func TestStoreCrashBetweenRenameAndTruncate(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	for i := 1; i <= 3; i++ {
		if err := s.Append("grant", "t0", "k", "o", uint64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
		if i < 3 {
			if err := s.Append("release", "t0", "k", "o", uint64(i), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Snapshot manually, then undo the WAL truncation by rewriting the
	// full pre-snapshot WAL — the exact state a crash between rename
	// and truncate leaves behind.
	walBefore, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, walFileName), walBefore, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTestStore(t, dir, StoreOptions{})
	defer r.Close()
	rec := r.Recovery()
	if rec.FramesSkipped != 5 || rec.FramesReplayed != 0 {
		t.Fatalf("recovery = %+v, want all 5 stale frames skipped", rec)
	}
	leases, tokens := r.Restored()
	if len(leases) != 1 || leases[0].Token != 3 {
		t.Fatalf("restored %+v, want the token-3 lease alone", leases)
	}
	if tokens["t0"]["k"] != 3 {
		t.Fatalf("counter = %d, want 3", tokens["t0"]["k"])
	}
}

// TestStoreTornTail: a WAL cut mid-frame recovers everything before
// the tear, reports it, and (read-write) truncates the tail so appends
// resume cleanly.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	for i := 1; i <= 3; i++ {
		if err := s.Append("grant", "t0", string(rune('a'+i-1)), "o", 1, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	walPath := filepath.Join(dir, walFileName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut 5 bytes into the final frame.
	if err := os.WriteFile(walPath, full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTestStore(t, dir, StoreOptions{})
	rec := r.Recovery()
	if !rec.TornTail || rec.FramesReplayed != 2 || rec.TruncatedBytes == 0 {
		t.Fatalf("recovery = %+v, want torn tail with 2 frames replayed", rec)
	}
	// Appends resume after the tear; the next recovery sees a clean log
	// with the tail replaced by the new record.
	if err := r.Append("grant", "t0", "c", "o", 1, 33); err != nil {
		t.Fatalf("append after tear: %v", err)
	}
	r.Close()

	r2 := openTestStore(t, dir, StoreOptions{})
	defer r2.Close()
	if rec := r2.Recovery(); rec.TornTail || rec.FramesReplayed != 3 {
		t.Fatalf("post-repair recovery = %+v, want 3 clean frames", rec)
	}
	leases, _ := r2.Restored()
	if len(leases) != 3 || leases[2].ExpiryUnixNS != 33 {
		t.Fatalf("restored %+v, want 3 leases with the rewritten tail", leases)
	}
}

// TestStoreReadOnlyDeterminism: read-only recovery leaves the torn
// bytes in place, so two passes produce byte-identical reports — the
// `hbolockd -check-data` contract CI checks with cmp.
func TestStoreReadOnlyDeterminism(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	for i := 1; i <= 4; i++ {
		if err := s.Append("grant", "t0", "k", "o", uint64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Append("release", "t0", "k", "o", uint64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	walPath := filepath.Join(dir, walFileName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	var reports [2]bytes.Buffer
	for i := range reports {
		ro := openTestStore(t, dir, StoreOptions{ReadOnly: true})
		if err := ro.Recovery().WriteJSON(&reports[i]); err != nil {
			t.Fatal(err)
		}
		if err := ro.Append("grant", "t0", "x", "o", 9, 9); err == nil {
			t.Fatal("append to read-only store succeeded")
		}
	}
	if !bytes.Equal(reports[0].Bytes(), reports[1].Bytes()) {
		t.Fatalf("read-only recovery reports differ:\n%s\nvs\n%s", reports[0].Bytes(), reports[1].Bytes())
	}
	after, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(full)-3 {
		t.Fatalf("read-only recovery changed the WAL: %d bytes, want %d", len(after), len(full)-3)
	}
	if rec := openTestStore(t, dir, StoreOptions{ReadOnly: true}).Recovery(); !rec.TornTail {
		t.Fatalf("recovery = %+v, want torn tail still reported", rec)
	}
}

// TestStoreStickyFailure: a failed append latches; every later append
// returns the same error and Close surfaces it.
func TestStoreStickyFailure(t *testing.T) {
	dir := t.TempDir()
	fails := &failAfterWriter{budget: 1}
	s := openTestStore(t, dir, StoreOptions{WrapWAL: fails.wrap})
	if err := s.Append("grant", "t0", "a", "o", 1, 1); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := s.Append("grant", "t0", "b", "o", 1, 2); err == nil {
		t.Fatal("append beyond the writer's budget succeeded")
	}
	if !s.Failed() {
		t.Fatal("store not sticky-failed after a write error")
	}
	if err := s.Append("release", "t0", "a", "o", 1, 0); err == nil {
		t.Fatal("append after sticky failure succeeded")
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close swallowed the sticky error")
	}
}

// failAfterWriter fails every write after the first `budget` writes.
type failAfterWriter struct {
	budget int
	inner  io.Writer
}

func (f *failAfterWriter) wrap(w io.Writer) io.Writer {
	f.inner = w
	return f
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, os.ErrClosed
	}
	f.budget--
	return f.inner.Write(p)
}
