//go:build linux

package lockserv

import (
	"fmt"
	"os"
	"syscall"
)

// walMapper appends WAL frames through a MAP_SHARED mapping instead of
// write(2). The durability is identical — an unsynced write() lands in
// the page cache, and so does a store into a shared mapping, so a
// process crash (SIGKILL) loses neither; only machine crashes need the
// explicit fsync the shutdown and compaction paths already issue. What
// changes is the cost: an append is a memcpy (~tens of ns) instead of
// a syscall (~1µs on the benchmark host), which is the difference
// between the durable service missing and clearing its 75%-of-memory
// throughput floor on a single-syscall-per-ack design.
//
// The file is preallocated in walMapChunk steps, so its size exceeds
// the valid data length while the process runs; recovery treats the
// all-zero remainder as padding (see decodeFrames) and a clean Close
// truncates the file back to its exact length.
type walMapper struct {
	f   *os.File
	m   []byte
	off int64 // bytes of valid data: the append position
}

// walMapChunk is the preallocation granularity (1 MiB: thousands of
// frames per truncate+remap).
const walMapChunk = 1 << 20

// newWalMapper maps f for appending at validLen. The caller has
// already truncated any torn tail away, so everything past validLen is
// freshly-extended zeros. sizeHint is the expected high-water mark of
// one snapshot cycle: mapping it up front means the steady state never
// remaps — a mid-cycle remap invalidates every PTE, and the refault
// storm (the zeroing reset touches every page) costs far more than the
// memory. ensure still grows past the hint if records outrun it.
func newWalMapper(f *os.File, validLen int64, sizeHint int64) (*walMapper, error) {
	w := &walMapper{f: f, off: validLen}
	need := validLen + 1
	if sizeHint > need {
		need = sizeHint
	}
	if err := w.ensure(need); err != nil {
		return nil, err
	}
	return w, nil
}

// ensure grows the file and mapping to hold at least need bytes.
func (w *walMapper) ensure(need int64) error {
	if need <= int64(len(w.m)) {
		return nil
	}
	size := (need + walMapChunk - 1) / walMapChunk * walMapChunk
	if w.m != nil {
		if err := syscall.Munmap(w.m); err != nil {
			return fmt.Errorf("lockserv: wal munmap: %w", err)
		}
		w.m = nil
	}
	if err := w.f.Truncate(size); err != nil {
		return fmt.Errorf("lockserv: wal grow: %w", err)
	}
	m, err := syscall.Mmap(int(w.f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("lockserv: wal mmap: %w", err)
	}
	w.m = m
	return nil
}

// Write appends p at the current offset. Implementing io.Writer keeps
// the WrapWAL interposition point intact: the crash-matrix tests wrap
// this very writer, so injected kills and torn writes land in the
// mapping exactly as a real crash would leave them.
func (w *walMapper) Write(p []byte) (int, error) {
	if err := w.ensure(w.off + int64(len(p))); err != nil {
		return 0, err
	}
	copy(w.m[w.off:], p)
	w.off += int64(len(p))
	return len(p), nil
}

// reserve returns an empty slice aliasing the mapping at the append
// position with at least need bytes of capacity, for encoding a frame
// in place (no intermediate buffer, no copy). The caller appends into
// the returned slice — staying under need keeps the bytes in the
// mapping — then calls commit with the final slice.
func (w *walMapper) reserve(need int) ([]byte, error) {
	if err := w.ensure(w.off + int64(need)); err != nil {
		return nil, err
	}
	return w.m[w.off:w.off:len(w.m)], nil
}

// commit advances the append position past an in-place-encoded frame.
// It verifies the slice still aliases the mapping — an append that
// outgrew its reservation would have silently relocated to the heap,
// and committing its length would leave a hole of zeros that replay
// (correctly) reads as end-of-log, losing the frame.
func (w *walMapper) commit(frame []byte) error {
	if len(frame) == 0 {
		return nil
	}
	if &frame[0] != &w.m[w.off] {
		return fmt.Errorf("lockserv: wal frame outgrew its reservation")
	}
	w.off += int64(len(frame))
	return nil
}

// reset logically empties the log after a snapshot: zero the used
// region (so no stale frame can be re-read) and rewind. The file keeps
// its preallocated size — cheaper than truncate+remap, and a crash
// mid-zeroing only strands pre-snapshot frames that replay would skip
// by sequence number anyway.
func (w *walMapper) reset() {
	used := w.m[:w.off]
	for i := range used {
		used[i] = 0
	}
	w.off = 0
}

// close unmaps and, when exact, truncates the file to the valid data
// length — the clean-shutdown path, leaving the same bytes a plain
// write()-based appender would have. A sticky-failed store passes
// exact=false so the crash evidence (partial frames, injected garbage)
// survives for recovery to report.
func (w *walMapper) close(exact bool) error {
	if w.m != nil {
		if err := syscall.Munmap(w.m); err != nil {
			return fmt.Errorf("lockserv: wal munmap: %w", err)
		}
		w.m = nil
	}
	if exact {
		if err := w.f.Truncate(w.off); err != nil {
			return fmt.Errorf("lockserv: wal trim: %w", err)
		}
	}
	return nil
}
