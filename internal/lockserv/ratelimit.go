package lockserv

import (
	"sync"
	"time"
)

// tokenBucket is a clock-injected token-bucket rate limiter, one per
// shard. It is the server half of the service tier's backoff story:
// when a shard saturates, requests are refused with an explicit
// Retry-After hint instead of being queued, and the client's capped
// exponential backoff (lockclient) spreads the retries out — the
// paper's contention response, moved from cache lines to HTTP.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket builds a limiter admitting rate requests/second with
// the given burst. rate <= 0 disables limiting.
func newTokenBucket(rate float64, burst int, now time.Time) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// admit consumes one token if available. When the bucket is empty it
// reports false and how long until a token accrues — the Retry-After
// hint. Time moves only via the caller's clock.
func (b *tokenBucket) admit(now time.Time) (bool, time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}
