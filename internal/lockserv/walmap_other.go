//go:build !linux

package lockserv

import "os"

// walMapper is linux-only; other platforms fall back to plain write(2)
// appends in the store (newWalMapper returning an error selects the
// fallback path).
type walMapper struct{}

func newWalMapper(f *os.File, validLen, sizeHint int64) (*walMapper, error) {
	return nil, os.ErrInvalid
}

func (w *walMapper) Write(p []byte) (int, error)      { return 0, os.ErrInvalid }
func (w *walMapper) reserve(need int) ([]byte, error) { return nil, os.ErrInvalid }
func (w *walMapper) commit(frame []byte) error        { return os.ErrInvalid }
func (w *walMapper) reset()                           {}
func (w *walMapper) close(exact bool) error           { return nil }
