package lockserv

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWALEncoderMatchesStdlib: the hand-rolled frame encoder must emit
// JSON that json.Unmarshal reads back field-for-field, including
// strings that need escaping. For plain UTF-8 it matches json.Marshal
// byte-for-byte.
func TestWALEncoderMatchesStdlib(t *testing.T) {
	recs := []walRecord{
		{Seq: 1, Op: "grant", Tenant: "t0", Key: "k", Owner: "alice", Token: 1, ExpiryUnixNS: 1234567890123456789},
		{Seq: 18446744073709551615, Op: "expire", Tenant: "t-long-name", Key: "jobs/1234", Token: 9999999},
		{Seq: 2, Op: "release", Tenant: "t0", Key: "k"},
		{Seq: 3, Op: "renew", Tenant: `quo"ted`, Key: "back\\slash", Owner: "tab\there", Token: 7, ExpiryUnixNS: -5},
		{Seq: 4, Op: "grant", Tenant: "nl\nrn\r", Key: "ctrl\x01\x1f", Owner: "日本語 κλειδί", Token: 2, ExpiryUnixNS: 1},
	}
	for _, rec := range recs {
		got := appendWalJSON(nil, &rec)
		var back walRecord
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("encoder output unparseable for %+v: %v\n%s", rec, err, got)
		}
		if back != rec {
			t.Fatalf("round trip mutated the record:\n in: %+v\nout: %+v\njson: %s", rec, back, got)
		}
		want, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		// json.Marshal escapes a few extra characters (<, >, &) that we
		// never emit in these records; where neither side escapes, the
		// bytes must agree exactly.
		if !bytes.ContainsAny(want, `\`) && !bytes.Equal(got, want) {
			t.Fatalf("encoder diverges from json.Marshal:\n got: %s\nwant: %s", got, want)
		}
	}
}

// TestWALFrameRoundtrip: encode → decode over several frames, then
// with trailing zero padding (the mmap appender's preallocation),
// which must read as a clean end, not a torn tail.
func TestWALFrameRoundtrip(t *testing.T) {
	var buf []byte
	want := []walRecord{
		{Seq: 1, Op: "grant", Tenant: "t0", Key: "a", Owner: "x", Token: 1, ExpiryUnixNS: 100},
		{Seq: 2, Op: "renew", Tenant: "t0", Key: "a", Owner: "x", Token: 1, ExpiryUnixNS: 200},
		{Seq: 3, Op: "release", Tenant: "t0", Key: "a", Owner: "x", Token: 1},
	}
	for i := range want {
		var err error
		buf, err = appendFrame(buf, &want[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	exact := int64(len(buf))

	for _, pad := range []int{0, 1, 7, 8, 4096} {
		data := append(append([]byte{}, buf...), make([]byte, pad)...)
		recs, validLen, tornBytes, err := decodeFrames(data)
		if err != nil {
			t.Fatalf("pad %d: %v", pad, err)
		}
		if len(recs) != 3 || validLen != exact || tornBytes != 0 {
			t.Fatalf("pad %d: %d recs, validLen %d (want %d), torn %d",
				pad, len(recs), validLen, exact, tornBytes)
		}
		for i := range recs {
			if recs[i] != want[i] {
				t.Fatalf("pad %d: rec %d = %+v, want %+v", pad, i, recs[i], want[i])
			}
		}
	}
}

// TestWALDecodeTornShapes: cut and corrupted tails are confined to the
// tail — everything before decodes — and the torn byte count excludes
// any zero padding after the damage.
func TestWALDecodeTornShapes(t *testing.T) {
	var buf []byte
	for i := 1; i <= 3; i++ {
		var err error
		buf, err = appendFrame(buf, &walRecord{Seq: uint64(i), Op: "grant", Tenant: "t0", Key: "k", Token: uint64(i), ExpiryUnixNS: 9})
		if err != nil {
			t.Fatal(err)
		}
	}
	frameLen := len(buf) / 3

	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		wantRecs int
		wantTorn bool
	}{
		{"cut mid-payload", func(b []byte) []byte { return b[:len(b)-5] }, 2, true},
		{"cut mid-header", func(b []byte) []byte { return b[:2*frameLen+3] }, 2, true},
		{"flipped payload byte", func(b []byte) []byte { b[2*frameLen+12] ^= 0x40; return b }, 2, true},
		{"partial frame then padding", func(b []byte) []byte {
			return append(b[:2*frameLen+5], make([]byte, 64)...)
		}, 2, true},
		{"absurd length prefix", func(b []byte) []byte {
			b[2*frameLen] = 0xff
			b[2*frameLen+1] = 0xff
			b[2*frameLen+2] = 0xff
			b[2*frameLen+3] = 0x7f
			return b
		}, 2, true},
		{"intact", func(b []byte) []byte { return b }, 3, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte{}, buf...))
			recs, validLen, tornBytes, err := decodeFrames(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != tc.wantRecs {
				t.Fatalf("decoded %d recs, want %d", len(recs), tc.wantRecs)
			}
			if (tornBytes > 0) != tc.wantTorn {
				t.Fatalf("tornBytes = %d, want torn=%v", tornBytes, tc.wantTorn)
			}
			if validLen != int64(tc.wantRecs*frameLen) {
				t.Fatalf("validLen = %d, want %d", validLen, tc.wantRecs*frameLen)
			}
		})
	}
}
