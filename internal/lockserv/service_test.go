package lockserv

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// newTestService builds a service on a manual clock with an in-memory
// access log, returning all three.
func newTestService(t *testing.T, mut func(*Config)) (*Service, *ManualClock, *bytes.Buffer) {
	t.Helper()
	clock := NewManualClock(time.Unix(1000, 0))
	var logBuf bytes.Buffer
	cfg := Config{
		Tenants:    []string{"t0", "t1"},
		Shards:     2,
		Nodes:      2,
		DefaultTTL: time.Second,
		MaxTTL:     10 * time.Second,
		Clock:      clock,
		AccessLog:  &logBuf,
	}
	if mut != nil {
		mut(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, clock, &logBuf
}

// verifyLog flushes and checks the service's access log.
func verifyLog(t *testing.T, svc *Service, logBuf *bytes.Buffer) int {
	t.Helper()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := VerifyAccessLog(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatalf("fencing invariant violated after %d events: %v", n, err)
	}
	return n
}

// TestServiceLifecycle: grant → conflict → renew → release → re-grant
// through the service layer, with decisions carrying affinity hints.
func TestServiceLifecycle(t *testing.T) {
	svc, clock, logBuf := newTestService(t, nil)

	d, err := svc.Acquire("t0", "jobs/1", "alice", 0)
	if err != nil || d.Outcome != WireGranted || d.Token != 1 {
		t.Fatalf("acquire = %+v, %v", d, err)
	}
	if d.Expiry != clock.Now().Add(time.Second) {
		t.Fatalf("default TTL not applied: %v", d.Expiry)
	}
	if d.Node < 0 || d.Node >= svc.Nodes() {
		t.Fatalf("node hint %d out of range", d.Node)
	}

	c, _ := svc.Acquire("t0", "jobs/1", "bob", 0)
	if c.Outcome != WireConflict || c.Holder != "alice" || c.RetryAfter <= 0 {
		t.Fatalf("conflict = %+v", c)
	}

	r, _ := svc.Renew("t0", "jobs/1", "alice", 1, 5*time.Second)
	if r.Outcome != WireRenewed || r.Expiry != clock.Now().Add(5*time.Second) {
		t.Fatalf("renew = %+v", r)
	}

	rel, _ := svc.Release("t0", "jobs/1", "alice", 1)
	if rel.Outcome != WireReleased {
		t.Fatalf("release = %+v", rel)
	}

	g2, _ := svc.Acquire("t0", "jobs/1", "bob", 0)
	if g2.Outcome != WireGranted || g2.Token != 2 {
		t.Fatalf("re-grant = %+v", g2)
	}

	// Same key name in another tenant: independent namespace.
	g3, _ := svc.Acquire("t1", "jobs/1", "carol", 0)
	if g3.Outcome != WireGranted || g3.Token != 1 {
		t.Fatalf("cross-tenant grant = %+v", g3)
	}

	if _, err := svc.Acquire("nope", "k", "o", 0); err == nil {
		t.Fatal("unknown tenant accepted")
	}
	if _, err := svc.Acquire("t0", "", "o", 0); err == nil {
		t.Fatal("empty key accepted")
	}
	verifyLog(t, svc, logBuf)
}

// TestServiceRenewVsExpiry: after the deadline passes, renew is stale,
// the expiry is logged before any re-grant, and the next grant token
// is strictly larger.
func TestServiceRenewVsExpiry(t *testing.T) {
	svc, clock, logBuf := newTestService(t, nil)
	g, _ := svc.Acquire("t0", "k", "alice", time.Second)
	clock.Advance(time.Second + time.Nanosecond)

	r, _ := svc.Renew("t0", "k", "alice", g.Token, time.Second)
	if r.Outcome != WireStale {
		t.Fatalf("renew after expiry = %+v", r)
	}
	g2, _ := svc.Acquire("t0", "k", "bob", time.Second)
	if g2.Outcome != WireGranted || g2.Token <= g.Token {
		t.Fatalf("re-grant = %+v (old token %d)", g2, g.Token)
	}
	// The old holder's release is stale and bob's lease survives it.
	rel, _ := svc.Release("t0", "k", "alice", g.Token)
	if rel.Outcome != WireStale {
		t.Fatalf("stale release = %+v", rel)
	}
	ins, _ := svc.Inspect("t0", "k")
	if ins.Outcome != WireHeld || ins.Holder != "bob" {
		t.Fatalf("inspect = %+v", ins)
	}
	verifyLog(t, svc, logBuf)
}

// TestServiceSweepDue: the background sweeper's entry point collects
// idle expired leases and logs them.
func TestServiceSweepDue(t *testing.T) {
	svc, clock, logBuf := newTestService(t, nil)
	for _, key := range []string{"a", "b", "c"} {
		if d, _ := svc.Acquire("t0", key, "alice", time.Second); d.Outcome != WireGranted {
			t.Fatalf("%s: %+v", key, d)
		}
	}
	if n := svc.SweepDue(); n != 0 {
		t.Fatalf("early sweep collected %d", n)
	}
	clock.Advance(2 * time.Second)
	if n := svc.SweepDue(); n != 3 {
		t.Fatalf("sweep collected %d, want 3", n)
	}
	st := svc.Stats()
	tot := st.Tenants[0].Totals()
	if tot.Expiries != 3 || tot.Keys != 0 {
		t.Fatalf("after sweep: %+v", tot)
	}
	verifyLog(t, svc, logBuf)
}

// TestServiceAbortDuringHandoff is the third named race: the shard
// lock is held across a (simulated) slow handoff, the incoming
// operation's timed acquire aborts within OpTimeout, and the request
// is shed as busy — with the lease table untouched and the fencing
// sequence intact afterwards.
func TestServiceAbortDuringHandoff(t *testing.T) {
	svc, _, logBuf := newTestService(t, func(c *Config) {
		c.Tenants = []string{"t0"}
		c.Shards = 1
		c.Nodes = 1
		c.ThreadsPerNode = 2
		c.OpTimeout = 20 * time.Millisecond
	})
	sh := svc.tenants["t0"].shards[0]

	// Steal a worker thread and sit on the shard lock, as if a handoff
	// stalled mid-flight.
	holder := <-svc.pools[0]
	sh.lock.Acquire(holder)

	start := time.Now()
	d, err := svc.Acquire("t0", "k", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != WireBusy || d.RetryAfter <= 0 {
		t.Fatalf("acquire under a stuck shard = %+v", d)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("busy answer took %v for a 20ms budget", e)
	}

	// Handoff completes; the same operation now succeeds and fencing
	// starts at token 1 — the aborted attempt left no trace.
	sh.lock.Release(holder)
	svc.pools[0] <- holder
	d2, _ := svc.Acquire("t0", "k", "alice", time.Second)
	if d2.Outcome != WireGranted || d2.Token != 1 {
		t.Fatalf("acquire after handoff = %+v", d2)
	}
	if got := sh.c.busy.Load(); got != 1 {
		t.Fatalf("busy counter = %d", got)
	}
	verifyLog(t, svc, logBuf)
}

// TestServiceThrottleAndDrain: the rate limiter answers throttled with
// a clock-accurate hint; drain refuses everything afterwards.
func TestServiceThrottleAndDrain(t *testing.T) {
	svc, clock, _ := newTestService(t, func(c *Config) {
		c.Tenants = []string{"t0"}
		c.Shards = 1
		c.ShardQPS = 10
		c.ShardBurst = 1
	})
	if d, _ := svc.Acquire("t0", "k", "alice", 0); d.Outcome != WireGranted {
		t.Fatalf("first = %+v", d)
	}
	d, _ := svc.Acquire("t0", "k2", "alice", 0)
	if d.Outcome != WireThrottled || d.RetryAfter <= 0 || d.RetryAfter > 100*time.Millisecond {
		t.Fatalf("throttled = %+v", d)
	}
	clock.Advance(d.RetryAfter)
	if d2, _ := svc.Acquire("t0", "k2", "alice", 0); d2.Outcome != WireGranted {
		t.Fatalf("after waiting the hint = %+v", d2)
	}

	svc.Drain()
	if !svc.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	for _, op := range []string{"acquire", "renew", "release", "inspect"} {
		var dd Decision
		switch op {
		case "acquire":
			dd, _ = svc.Acquire("t0", "x", "o", 0)
		case "renew":
			dd, _ = svc.Renew("t0", "x", "o", 1, 0)
		case "release":
			dd, _ = svc.Release("t0", "x", "o", 1)
		case "inspect":
			dd, _ = svc.Inspect("t0", "x")
		}
		if dd.Outcome != WireDraining {
			t.Fatalf("%s while draining = %+v", op, dd)
		}
		if !dd.Retryable() {
			t.Fatalf("%s: draining not Retryable", op)
		}
	}
	st := svc.Stats()
	if !st.Draining || st.Tenants[0].Totals().Throttled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServiceSessionExpiryFault: the injected fault truncates TTLs so
// holders lose leases early — and every such death still obeys the
// fencing protocol in the log.
func TestServiceSessionExpiryFault(t *testing.T) {
	inj := fault.NewServiceInjector(fault.ServiceConfig{
		Seed:    3,
		Session: fault.SessionExpiryConfig{Enabled: true, Prob: 1, Fraction: 0.5},
	})
	svc, clock, logBuf := newTestService(t, func(c *Config) { c.Faults = inj })

	d, _ := svc.Acquire("t0", "k", "alice", 2*time.Second)
	if d.Outcome != WireGranted {
		t.Fatalf("grant = %+v", d)
	}
	// Prob 1, fraction 0.5: the lease dies at half its TTL.
	if want := clock.Now().Add(time.Second); d.Expiry != want {
		t.Fatalf("truncated expiry = %v, want %v", d.Expiry, want)
	}
	clock.Advance(time.Second + time.Nanosecond)
	if r, _ := svc.Renew("t0", "k", "alice", d.Token, time.Second); r.Outcome != WireStale {
		t.Fatalf("renew of killed session = %+v", r)
	}
	tot := svc.Stats().Tenants[0].Totals()
	if tot.SessionKills != 1 || tot.Expiries != 1 {
		t.Fatalf("counters = %+v", tot)
	}
	verifyLog(t, svc, logBuf)
}

// TestServiceStatsDelta: differenced stats report window activity and
// pass gauges through.
func TestServiceStatsDelta(t *testing.T) {
	svc, _, _ := newTestService(t, nil)
	svc.Acquire("t0", "a", "o", 0)
	before := svc.Stats()
	svc.Acquire("t0", "b", "o", 0)
	after := svc.Stats()
	delta := after.Delta(before)
	tot := delta.Tenants[0].Totals()
	if tot.Grants != 1 {
		t.Fatalf("delta grants = %d", tot.Grants)
	}
	if tot.Keys != 2 {
		t.Fatalf("delta keys gauge = %d, want live value 2", tot.Keys)
	}
	var buf bytes.Buffer
	if err := after.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), StatsSchema) {
		t.Fatal("stats JSON missing schema")
	}
}

// TestServiceObsIntegration: with a registry attached, shard locks
// appear under serv/<tenant>/s<i> and record the service's acquires.
func TestServiceObsIntegration(t *testing.T) {
	reg := obs.NewRegistry()
	svc, _, _ := newTestService(t, func(c *Config) { c.Registry = reg })
	for i := 0; i < 8; i++ {
		svc.Acquire("t0", "k", "alice", 0)
	}
	svc.RefreshAffinity()
	snap := reg.Snapshot()
	found := false
	for _, l := range snap.Locks {
		if l.Name == "serv/t0/s0" || l.Name == "serv/t0/s1" {
			if l.Attempts > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no instrumented shard-lock activity in %d locks", len(snap.Locks))
	}
	d, _ := svc.Acquire("t0", "k2", "bob", 0)
	if d.Locality < 0 || d.Locality > 1 {
		t.Fatalf("locality hint %v outside [0,1]", d.Locality)
	}
}

// TestServiceRaceStress hammers one service from many goroutines with
// tiny TTLs, a truncating fault layer and a concurrent sweeper, then
// replays the access log: the fencing invariant must hold under real
// concurrency, not just under the manual clock. Run with -race.
func TestServiceRaceStress(t *testing.T) {
	inj := fault.NewServiceInjector(fault.ServiceConfig{
		Seed:    7,
		Session: fault.SessionExpiryConfig{Enabled: true, Prob: 0.3, Fraction: 0.25},
	})
	var logBuf bytes.Buffer
	svc, err := New(Config{
		Tenants:    []string{"t0", "t1"},
		Shards:     2,
		Nodes:      2,
		DefaultTTL: 2 * time.Millisecond, // expiry races on every key
		MaxTTL:     10 * time.Millisecond,
		OpTimeout:  50 * time.Millisecond,
		Faults:     inj,
		AccessLog:  &logBuf,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 300
	stop := make(chan struct{})
	var sweeps sync.WaitGroup
	sweeps.Add(1)
	go func() {
		defer sweeps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				svc.SweepDue()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := string(rune('a' + w))
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			tenants := []string{"t0", "t1"}
			keys := []string{"k0", "k1", "k2"}
			var heldTenant, heldKey string
			var heldTok uint64
			for i := 0; i < iters; i++ {
				if heldTok == 0 {
					tn, k := tenants[next(2)], keys[next(3)]
					d, err := svc.Acquire(tn, k, owner, 0)
					if err != nil {
						t.Error(err)
						return
					}
					if d.Outcome == WireGranted {
						heldTenant, heldKey, heldTok = tn, k, d.Token
					}
					continue
				}
				switch next(3) {
				case 0:
					d, _ := svc.Renew(heldTenant, heldKey, owner, heldTok, 0)
					if d.Outcome == WireStale {
						heldTok = 0
					}
				case 1:
					svc.Release(heldTenant, heldKey, owner, heldTok)
					heldTok = 0
				default:
					time.Sleep(time.Duration(next(3)) * time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	sweeps.Wait()

	n := verifyLog(t, svc, &logBuf)
	if n == 0 {
		t.Fatal("stress run produced no access-log events")
	}
	// Conservation: every grant ended in exactly one of release or
	// expiry, or is still live.
	var grants, releases, expiries, keys uint64
	for _, ts := range svc.Stats().Tenants {
		tot := ts.Totals()
		grants += tot.Grants
		releases += tot.Releases
		expiries += tot.Expiries
		keys += uint64(tot.Keys)
	}
	if grants != releases+expiries+keys {
		t.Fatalf("lease conservation: grants=%d releases=%d expiries=%d live=%d",
			grants, releases, expiries, keys)
	}
	if grants == 0 {
		t.Fatal("no grants under stress")
	}
}

// TestConfigValidation pins the usage-text contract of every limit.
func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Tenants = nil },
		func(c *Config) { c.Tenants = []string{"a", "a"} },
		func(c *Config) { c.Tenants = []string{""} },
		func(c *Config) { c.Shards = -1 },
		func(c *Config) { c.Nodes = -1 },
		func(c *Config) { c.ThreadsPerNode = -1 },
		func(c *Config) { c.Lock = "NOPE" },
		func(c *Config) { c.DefaultTTL = 5 * time.Second; c.MaxTTL = time.Second },
		func(c *Config) { c.OpTimeout = -time.Second },
		func(c *Config) { c.ShardQPS = -1 },
	}
	for i, mut := range bad {
		cfg := Config{Tenants: []string{"t"}}
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Every native lock name must work as a shard arbiter.
	for _, name := range core.AllNames() {
		svc, err := New(Config{Tenants: []string{"t"}, Lock: name})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if d, _ := svc.Acquire("t", "k", "o", 0); d.Outcome != WireGranted {
			t.Errorf("%s: acquire = %+v", name, d)
		}
		if svc.LockName() != name {
			t.Errorf("LockName = %q", svc.LockName())
		}
	}
}
