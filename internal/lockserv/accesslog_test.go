package lockserv

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// logLines renders events as the JSONL the daemon writes, assigning
// sequence numbers in order.
func logLines(t *testing.T, evs []AccessEvent) string {
	t.Helper()
	var sb strings.Builder
	for i, ev := range evs {
		if ev.Seq == 0 {
			ev.Seq = uint64(i + 1)
		}
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestVerifyAccessLogGood: a legal history — grant, renew, release,
// expiry-driven re-grant with a larger token, denials interleaved —
// verifies clean.
func TestVerifyAccessLogGood(t *testing.T) {
	good := logLines(t, []AccessEvent{
		{Op: "grant", Tenant: "t0", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 1000},
		{Op: "conflict", Tenant: "t0", Key: "k", Owner: "b"},
		{Op: "renew", Tenant: "t0", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 2000},
		{Op: "release", Tenant: "t0", Key: "k", Owner: "a", Token: 1},
		{Op: "grant", Tenant: "t0", Key: "k", Owner: "b", Token: 2, ExpiryUnixNS: 3000},
		{Op: "truncate", Tenant: "t0", Key: "k", Token: 2, ExpiryUnixNS: 2500},
		{Op: "expire", Tenant: "t0", Key: "k", Owner: "b", Token: 2},
		{Op: "stale", Tenant: "t0", Key: "k", Owner: "b", Token: 2},
		{Op: "grant", Tenant: "t0", Key: "k", Owner: "c", Token: 3, ExpiryUnixNS: 9000},
		// Independent key: its own token sequence.
		{Op: "grant", Tenant: "t1", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 9000},
	})
	n, err := VerifyAccessLog(strings.NewReader(good))
	if err != nil {
		t.Fatalf("good log rejected after %d events: %v", n, err)
	}
	if n != 10 {
		t.Fatalf("checked %d events, want 10", n)
	}
}

// TestVerifyAccessLogViolations: each corrupted history is caught.
func TestVerifyAccessLogViolations(t *testing.T) {
	cases := []struct {
		name string
		evs  []AccessEvent
		want string
	}{
		{
			name: "token not monotonic",
			evs: []AccessEvent{
				{Op: "grant", Tenant: "t", Key: "k", Owner: "a", Token: 2, ExpiryUnixNS: 1000},
				{Op: "release", Tenant: "t", Key: "k", Owner: "a", Token: 2},
				{Op: "grant", Tenant: "t", Key: "k", Owner: "b", Token: 2, ExpiryUnixNS: 2000},
			},
			want: "not monotonic",
		},
		{
			name: "double grant while live",
			evs: []AccessEvent{
				{Op: "grant", Tenant: "t", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 5000},
				// No release/expire, and the new grant's deadline is
				// earlier than the live one's — the old lease cannot
				// have lapsed.
				{Op: "grant", Tenant: "t", Key: "k", Owner: "b", Token: 2, ExpiryUnixNS: 4000},
			},
			want: "was live",
		},
		{
			name: "renew of dead token",
			evs: []AccessEvent{
				{Op: "grant", Tenant: "t", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 1000},
				{Op: "release", Tenant: "t", Key: "k", Owner: "a", Token: 1},
				{Op: "renew", Tenant: "t", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 2000},
			},
			want: "renew of token",
		},
		{
			name: "release by wrong owner",
			evs: []AccessEvent{
				{Op: "grant", Tenant: "t", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 1000},
				{Op: "release", Tenant: "t", Key: "k", Owner: "b", Token: 1},
			},
			want: "release of token",
		},
		{
			name: "expire of wrong token",
			evs: []AccessEvent{
				{Op: "grant", Tenant: "t", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 1000},
				{Op: "expire", Tenant: "t", Key: "k", Owner: "a", Token: 9},
			},
			want: "expire of token",
		},
		{
			name: "sequence backwards",
			evs: []AccessEvent{
				{Seq: 5, Op: "grant", Tenant: "t", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 1000},
				{Seq: 4, Op: "release", Tenant: "t", Key: "k", Owner: "a", Token: 1},
			},
			want: "sequence went backwards",
		},
		{
			name: "unknown op",
			evs: []AccessEvent{
				{Op: "bestow", Tenant: "t", Key: "k", Owner: "a", Token: 1},
			},
			want: "unknown op",
		},
	}
	for _, tc := range cases {
		_, err := VerifyAccessLog(strings.NewReader(logLines(t, tc.evs)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	if _, err := VerifyAccessLog(strings.NewReader("{not json}\n")); err == nil {
		t.Error("bad JSON accepted")
	}
}

// TestAccessLogRecord: the writer assigns a strictly increasing global
// sequence, skips blank-safe, and its output verifies.
func TestAccessLogRecord(t *testing.T) {
	var buf bytes.Buffer
	a := newAccessLog(&buf)
	a.record(AccessEvent{Op: "grant", Tenant: "t", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: expiryNS(time.Unix(1, 0))})
	a.record(AccessEvent{Op: "release", Tenant: "t", Key: "k", Owner: "a", Token: 1})
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := VerifyAccessLog(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 2 {
		t.Fatalf("recorded log: n=%d err=%v", n, err)
	}

	// A nil log accepts records and flushes without effect.
	var nilLog *accessLog
	nilLog.record(AccessEvent{Op: "grant"})
	if err := nilLog.Flush(); err != nil {
		t.Fatal(err)
	}
	if expiryNS(time.Time{}) != 0 {
		t.Fatal("zero time should log as 0")
	}
}
