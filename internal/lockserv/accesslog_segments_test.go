package lockserv

import (
	"strings"
	"testing"
)

// Segment-stitching and crash-recovery verification: the verifier must
// accept the histories a crashed-and-restarted daemon legitimately
// writes, and still reject every fencing violation across the seam.

// TestVerifySegmentsCleanRestart: pre-crash segment ends with live
// leases; the post-recovery segment re-declares them and carries on.
// Fencing state flows across the boundary.
func TestVerifySegmentsCleanRestart(t *testing.T) {
	pre := logLines(t, []AccessEvent{
		{Op: "grant", Tenant: "t0", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 1000},
		{Op: "release", Tenant: "t0", Key: "k", Owner: "a", Token: 1},
		{Op: "grant", Tenant: "t0", Key: "k", Owner: "b", Token: 2, ExpiryUnixNS: 5000},
		{Op: "grant", Tenant: "t0", Key: "q", Owner: "c", Token: 7, ExpiryUnixNS: 5000},
	})
	post := logLines(t, []AccessEvent{
		{Op: "recovered", Restored: 2},
		{Op: "restore", Tenant: "t0", Key: "k", Owner: "b", Token: 2, ExpiryUnixNS: 5000},
		{Op: "restore", Tenant: "t0", Key: "q", Owner: "c", Token: 7, ExpiryUnixNS: 5000},
		{Op: "renew", Tenant: "t0", Key: "k", Owner: "b", Token: 2, ExpiryUnixNS: 9000},
		{Op: "release", Tenant: "t0", Key: "q", Owner: "c", Token: 7},
		{Op: "grant", Tenant: "t0", Key: "q", Owner: "a", Token: 8, ExpiryUnixNS: 9000},
	})
	n, err := VerifyAccessLogSegments(strings.NewReader(pre), strings.NewReader(post))
	if err != nil {
		t.Fatalf("clean restart rejected after %d events: %v", n, err)
	}
	if n != 10 {
		t.Fatalf("checked %d events, want 10", n)
	}
}

// TestVerifySegmentsSingleAppendedFile: the same history as a single
// appended-to file — recovered marker in-band, sequence restarting at 1
// — verifies identically to separate segments.
func TestVerifySegmentsSingleAppendedFile(t *testing.T) {
	pre := []AccessEvent{
		{Seq: 1, Op: "grant", Tenant: "t0", Key: "k", Owner: "a", Token: 3, ExpiryUnixNS: 1000},
	}
	post := []AccessEvent{
		{Seq: 1, Op: "recovered", Restored: 1},
		{Seq: 2, Op: "restore", Tenant: "t0", Key: "k", Owner: "a", Token: 3, ExpiryUnixNS: 1000},
		{Seq: 3, Op: "expire", Tenant: "t0", Key: "k", Owner: "a", Token: 3},
		{Seq: 4, Op: "grant", Tenant: "t0", Key: "k", Owner: "b", Token: 4, ExpiryUnixNS: 2000},
	}
	one := logLines(t, pre) + logLines(t, post)
	if n, err := VerifyAccessLog(strings.NewReader(one)); err != nil {
		t.Fatalf("appended-file history rejected after %d events: %v", n, err)
	}
	if n, err := VerifyAccessLogSegments(strings.NewReader(logLines(t, pre)), strings.NewReader(logLines(t, post))); err != nil {
		t.Fatalf("segmented history rejected after %d events: %v", n, err)
	}
}

// TestVerifySegmentsViolations: crash-specific fencing violations are
// still caught across the seam.
func TestVerifySegmentsViolations(t *testing.T) {
	pre := logLines(t, []AccessEvent{
		{Op: "grant", Tenant: "t0", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 1000},
		{Op: "release", Tenant: "t0", Key: "k", Owner: "a", Token: 1},
		{Op: "grant", Tenant: "t0", Key: "k", Owner: "b", Token: 2, ExpiryUnixNS: 5000},
	})
	cases := []struct {
		name string
		post []AccessEvent
		want string
	}{
		{
			// Token 1 was released before the crash; recovery bringing it
			// back is the resurrection the WAL exists to prevent.
			name: "restored dead token",
			post: []AccessEvent{
				{Op: "recovered", Restored: 1},
				{Op: "restore", Tenant: "t0", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 9000},
			},
			want: "restored dead token",
		},
		{
			// Two restores of the same key: the second lands on a key
			// that is already live.
			name: "restore over live token",
			post: []AccessEvent{
				{Op: "recovered", Restored: 2},
				{Op: "restore", Tenant: "t0", Key: "k", Owner: "b", Token: 2, ExpiryUnixNS: 5000},
				{Op: "restore", Tenant: "t0", Key: "k", Owner: "c", Token: 3, ExpiryUnixNS: 5000},
			},
			want: "over live token",
		},
		{
			// Fencing counters must survive the crash: a post-restart
			// grant cannot reuse a pre-crash token.
			name: "grant reuses pre-crash token",
			post: []AccessEvent{
				{Op: "recovered"},
				{Op: "grant", Tenant: "t0", Key: "k", Owner: "c", Token: 2, ExpiryUnixNS: 9000},
			},
			want: "not monotonic",
		},
		{
			// A lease that was not restored did not survive the crash;
			// renewing its token afterwards is a use of dead state.
			name: "renew of un-restored lease",
			post: []AccessEvent{
				{Op: "recovered"},
				{Op: "renew", Tenant: "t0", Key: "k", Owner: "b", Token: 2, ExpiryUnixNS: 9000},
			},
			want: "renew",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := VerifyAccessLogSegments(strings.NewReader(pre), strings.NewReader(logLines(t, tc.post)))
			if err == nil {
				t.Fatalf("violation %q accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// A recovered marker with no sequence number (zero) is malformed:
	// logLines would auto-assign one, so write the line raw.
	t.Run("recovered marker without seq", func(t *testing.T) {
		_, err := VerifyAccessLogSegments(strings.NewReader(pre), strings.NewReader(`{"op":"recovered"}`+"\n"))
		if err == nil || !strings.Contains(err.Error(), "zero seq") {
			t.Fatalf("zero-seq recovered marker: err = %v, want zero seq violation", err)
		}
	})
}

// TestVerifySegmentsTornLine: a SIGKILL can cut the buffered log tail
// mid-record. Exactly one unparseable line is forgiven, and only when
// the next parseable event is a recovered marker; anywhere else a bad
// line is corruption.
func TestVerifySegmentsTornLine(t *testing.T) {
	grant := logLines(t, []AccessEvent{
		{Op: "grant", Tenant: "t0", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 1000},
	})
	recovery := logLines(t, []AccessEvent{
		{Op: "recovered", Restored: 1},
		{Op: "restore", Tenant: "t0", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 1000},
	})
	torn := `{"seq":2,"op":"renew","tenant":"t0","key":"k","ow` + "\n"

	if n, err := VerifyAccessLog(strings.NewReader(grant + torn + recovery)); err != nil {
		t.Fatalf("torn line at crash boundary rejected after %d events: %v", n, err)
	}
	if _, err := VerifyAccessLog(strings.NewReader(grant + torn)); err == nil {
		t.Fatal("torn line at end of input accepted")
	}
	if _, err := VerifyAccessLog(strings.NewReader(grant + torn + grant)); err == nil {
		t.Fatal("torn line followed by a non-recovered event accepted")
	}
	if _, err := VerifyAccessLog(strings.NewReader(grant + torn + torn + recovery)); err == nil {
		t.Fatal("two consecutive torn lines accepted")
	}
	// The forgiven line spans a segment boundary too: segment ends torn,
	// next segment opens with the recovered marker.
	if n, err := VerifyAccessLogSegments(strings.NewReader(grant+torn), strings.NewReader(recovery)); err != nil {
		t.Fatalf("torn segment tail before recovery rejected after %d events: %v", n, err)
	}
	// Blank lines (the restart's seam stamp) are skipped, not torn.
	if _, err := VerifyAccessLog(strings.NewReader(grant + "\n" + recovery)); err != nil {
		t.Fatalf("blank seam line rejected: %v", err)
	}
}

// TestVerifySegmentsRestoreAboveMax: a restore token larger than the
// log's maximum is legal — the SIGKILL ate buffered grant events, so
// the WAL knows more than this log saw.
func TestVerifySegmentsRestoreAboveMax(t *testing.T) {
	pre := logLines(t, []AccessEvent{
		{Op: "grant", Tenant: "t0", Key: "k", Owner: "a", Token: 1, ExpiryUnixNS: 1000},
		{Op: "release", Tenant: "t0", Key: "k", Owner: "a", Token: 1},
	})
	post := logLines(t, []AccessEvent{
		{Op: "recovered", Restored: 1},
		{Op: "restore", Tenant: "t0", Key: "k", Owner: "b", Token: 5, ExpiryUnixNS: 9000},
		{Op: "renew", Tenant: "t0", Key: "k", Owner: "b", Token: 5, ExpiryUnixNS: 9900},
	})
	if n, err := VerifyAccessLogSegments(strings.NewReader(pre), strings.NewReader(post)); err != nil {
		t.Fatalf("restore above log max rejected after %d events: %v", n, err)
	}
}
