package lockserv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler serves the /v1 lease API:
//
//	POST /v1/acquire  {tenant, key, owner, ttl_ms}
//	POST /v1/renew    {tenant, key, owner, token, ttl_ms}
//	POST /v1/release  {tenant, key, owner, token}
//	GET  /v1/inspect?tenant=T&key=K
//	GET  /v1/stats    per-tenant/per-shard counters (hbolockd-stats/v1)
//
// Backpressure responses (429/503) carry both a Retry-After header in
// whole seconds and a finer retry_after_ms in the body; lockclient
// prefers the body. The daemon mounts this next to the obs registry
// handler, so one port serves leases and observability together.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/acquire", func(w http.ResponseWriter, req *http.Request) {
		opEndpoint(s, w, req, func(r OpRequest) (Decision, error) {
			return s.Acquire(r.Tenant, r.Key, r.Owner, time.Duration(r.TTLMS)*time.Millisecond)
		})
	})
	mux.HandleFunc("/v1/renew", func(w http.ResponseWriter, req *http.Request) {
		opEndpoint(s, w, req, func(r OpRequest) (Decision, error) {
			return s.Renew(r.Tenant, r.Key, r.Owner, r.Token, time.Duration(r.TTLMS)*time.Millisecond)
		})
	})
	mux.HandleFunc("/v1/release", func(w http.ResponseWriter, req *http.Request) {
		opEndpoint(s, w, req, func(r OpRequest) (Decision, error) {
			return s.Release(r.Tenant, r.Key, r.Owner, r.Token)
		})
	})
	mux.HandleFunc("/v1/inspect", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		d, err := s.Inspect(req.URL.Query().Get("tenant"), req.URL.Query().Get("key"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeDecision(w, d)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = s.Stats().WriteJSON(w)
	})
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/v1/" && req.URL.Path != "/v1" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "hbolockd lease API: POST /v1/acquire /v1/renew /v1/release; GET /v1/inspect /v1/stats")
	})
	return mux
}

// opEndpoint decodes one mutation request and renders the decision.
func opEndpoint(s *Service, w http.ResponseWriter, req *http.Request, op func(OpRequest) (Decision, error)) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var r OpRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16))
	if err := dec.Decode(&r); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	d, err := op(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeDecision(w, d)
}

// writeDecision renders d with its mapped status and backoff headers.
func writeDecision(w http.ResponseWriter, d Decision) {
	resp := responseOf(d)
	status := StatusOf(d.Outcome)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if resp.RetryAfterMS > 0 && (status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable) {
		// The header speaks whole seconds; round up so "soon" never
		// becomes "now".
		secs := (resp.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// RecoveringHandler answers every request with 503 recovering and a
// Retry-After hint. The daemon serves it from the moment the listener
// is up until WAL replay finishes, so clients arriving mid-boot get a
// retryable backpressure signal instead of connection refused.
func RecoveringHandler(retryAfter time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		writeDecision(w, Decision{Outcome: WireRecovering, RetryAfter: retryAfter})
	})
}

// writeError renders a schema-stamped error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(OpResponse{Schema: WireSchema, Outcome: "error", Error: msg})
}
