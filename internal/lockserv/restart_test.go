package lockserv

import (
	"bytes"
	"testing"
	"time"
)

// Restart-boundary edge cases (ManualClock): the moments around a
// crash where lease time and fencing state interact most sharply.

// restartService closes svc's world and brings a fresh service up on
// the same data dir and clock, returning the new service and store.
func restartService(t *testing.T, dir string, clock *ManualClock, accessLog *bytes.Buffer) (*Service, *Store) {
	t.Helper()
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	svc, err := New(Config{
		Tenants:        []string{"t0"},
		Shards:         1,
		Nodes:          1,
		ThreadsPerNode: 1,
		Clock:          clock,
		Store:          store,
		AccessLog:      accessLog,
		OpTimeout:      time.Second,
	})
	if err != nil {
		t.Fatalf("restarting service: %v", err)
	}
	return svc, store
}

func startService(t *testing.T, dir string, clock *ManualClock, accessLog *bytes.Buffer) (*Service, *Store) {
	t.Helper()
	return restartService(t, dir, clock, accessLog)
}

// TestRestartLeaseExpiringAtCrashTime: a lease whose deadline is
// exactly the crash instant is restored, then collected — not revived
// into extra lifetime, and its token stays dead for renewal.
func TestRestartLeaseExpiringAtCrashTime(t *testing.T) {
	dir := t.TempDir()
	clock := NewManualClock(time.Unix(500, 0))
	svc, store := startService(t, dir, clock, nil)

	d, err := svc.Acquire("t0", "k", "alice", time.Second)
	if err != nil || d.Outcome != WireGranted {
		t.Fatalf("acquire = %+v, %v", d, err)
	}
	expiry := d.Expiry
	// Crash lands exactly when the lease falls due.
	clock.Set(expiry)
	store.Close()

	svc2, store2 := restartService(t, dir, clock, nil)
	defer store2.Close()
	// The lease is restored with its original deadline — now — so the
	// first sweep collects it immediately.
	if n := svc2.SweepDue(); n != 1 {
		t.Fatalf("SweepDue after replay = %d, want 1 (the at-deadline lease)", n)
	}
	// Its token is dead: the pre-crash holder's renew must be stale.
	r, err := svc2.Renew("t0", "k", "alice", d.Token, time.Second)
	if err != nil || r.Outcome != WireStale {
		t.Fatalf("renew of expired-at-crash token = %+v, %v, want stale", r, err)
	}
	// And the re-grant continues the fencing sequence.
	g, err := svc2.Acquire("t0", "k", "bob", time.Second)
	if err != nil || g.Outcome != WireGranted {
		t.Fatalf("re-acquire = %+v, %v", g, err)
	}
	if g.Token <= d.Token {
		t.Fatalf("re-grant token %d not past crashed token %d", g.Token, d.Token)
	}
}

// TestRestartRenewPersistedResponseLost: the renew reached the WAL but
// its response never reached the client (the crash ate it). The client
// retries with its old token — which must still be live, carrying the
// persisted deadline.
func TestRestartRenewPersistedResponseLost(t *testing.T) {
	dir := t.TempDir()
	clock := NewManualClock(time.Unix(500, 0))
	svc, store := startService(t, dir, clock, nil)

	d, err := svc.Acquire("t0", "k", "alice", time.Second)
	if err != nil || d.Outcome != WireGranted {
		t.Fatalf("acquire = %+v, %v", d, err)
	}
	clock.Advance(500 * time.Millisecond)
	// The renew persists and is acked server-side; the crash happens
	// before the client reads the response.
	r, err := svc.Renew("t0", "k", "alice", d.Token, 2*time.Second)
	if err != nil || r.Outcome != WireRenewed {
		t.Fatalf("renew = %+v, %v", r, err)
	}
	store.Close()

	clock.Advance(100 * time.Millisecond)
	svc2, store2 := restartService(t, dir, clock, nil)
	defer store2.Close()
	// The restored lease carries the renewed deadline, not the grant's.
	insp, err := svc2.Inspect("t0", "k")
	if err != nil || insp.Outcome != WireHeld {
		t.Fatalf("inspect = %+v, %v", insp, err)
	}
	if !insp.Expiry.Equal(r.Expiry) {
		t.Fatalf("restored expiry %v, want the persisted renewal's %v", insp.Expiry, r.Expiry)
	}
	// The client's retry with the same token succeeds: same token, same
	// owner, fresh deadline — an idempotent outcome, not a stale error.
	retry, err := svc2.Renew("t0", "k", "alice", d.Token, 2*time.Second)
	if err != nil || retry.Outcome != WireRenewed {
		t.Fatalf("retried renew = %+v, %v, want renewed", retry, err)
	}
	if retry.Token != d.Token {
		t.Fatalf("retried renew changed the token: %d → %d", d.Token, retry.Token)
	}
}

// TestRestartSweepImmediatelyAfterReplay: replay restores a mix of
// live and long-dead leases; SweepDue straight after boot collects
// exactly the dead ones and the access log of the whole life — grant,
// crash, restore, expire, re-grant — verifies.
func TestRestartSweepImmediatelyAfterReplay(t *testing.T) {
	dir := t.TempDir()
	clock := NewManualClock(time.Unix(500, 0))
	var pre bytes.Buffer
	svc, store := startService(t, dir, clock, &pre)

	short, err := svc.Acquire("t0", "dies", "alice", 100*time.Millisecond)
	if err != nil || short.Outcome != WireGranted {
		t.Fatalf("acquire dies = %+v, %v", short, err)
	}
	long, err := svc.Acquire("t0", "lives", "bob", time.Hour)
	if err != nil || long.Outcome != WireGranted {
		t.Fatalf("acquire lives = %+v, %v", long, err)
	}
	// Crash well past the short lease's deadline, long before the
	// long one's.
	clock.Advance(10 * time.Second)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	store.Close()

	var post bytes.Buffer
	svc2, store2 := restartService(t, dir, clock, &post)
	defer store2.Close()
	// Both leases are restored (the dead one was never collected before
	// the crash), and the first sweep buries the dead one only.
	if n := svc2.SweepDue(); n != 1 {
		t.Fatalf("SweepDue after replay = %d, want 1", n)
	}
	insp, err := svc2.Inspect("t0", "lives")
	if err != nil || insp.Outcome != WireHeld || insp.Token != long.Token {
		t.Fatalf("lives = %+v, %v, want held with token %d", insp, err, long.Token)
	}
	if d, err := svc2.Inspect("t0", "dies"); err != nil || d.Outcome != WireFree {
		t.Fatalf("dies = %+v, %v, want free", d, err)
	}
	// Fencing continues over the grave.
	g, err := svc2.Acquire("t0", "dies", "carol", time.Second)
	if err != nil || g.Outcome != WireGranted || g.Token <= short.Token {
		t.Fatalf("re-grant = %+v, %v, want token > %d", g, err, short.Token)
	}
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := VerifyAccessLogSegments(bytes.NewReader(pre.Bytes()), bytes.NewReader(post.Bytes())); err != nil {
		t.Fatalf("stitched log failed after %d events: %v", n, err)
	}
}
