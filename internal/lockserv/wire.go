package lockserv

import (
	"time"
)

// WireSchema versions the JSON wire format of the /v1 endpoints. The
// service is stdlib-only by design — JSON over net/http rather than
// gRPC — so the schema string is the compatibility contract: servers
// stamp every response with it and clients reject mismatches.
const WireSchema = "hbolock-wire/v1"

// OpRequest is the body of POST /v1/acquire, /v1/renew and
// /v1/release. Token is required for renew/release; TTLMS <= 0 asks
// for the server default.
type OpRequest struct {
	Tenant string `json:"tenant"`
	Key    string `json:"key"`
	Owner  string `json:"owner"`
	Token  uint64 `json:"token,omitempty"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
}

// OpResponse is the body of every /v1 lease operation response, for
// success and denial alike: Outcome is one of the Wire* strings, and
// the HTTP status code is derived from it (200 grant / 409 conflict /
// 410 stale / 429 throttled / 503 busy-nack-draining). Node and
// Locality are the node-affinity hint: the NUCA home node of the
// key's shard, and the live handoff-locality of the shard's
// arbitrating lock from the obs layer.
type OpResponse struct {
	Schema       string  `json:"schema"`
	Outcome      string  `json:"outcome"`
	Token        uint64  `json:"token,omitempty"`
	ExpiryUnixNS int64   `json:"expiry_unix_ns,omitempty"`
	Holder       string  `json:"holder,omitempty"`
	Node         int     `json:"node"`
	Locality     float64 `json:"locality,omitempty"`
	RetryAfterMS int64   `json:"retry_after_ms,omitempty"`
	Error        string  `json:"error,omitempty"`
}

// responseOf renders a Decision on the wire.
func responseOf(d Decision) OpResponse {
	r := OpResponse{
		Schema:   WireSchema,
		Outcome:  d.Outcome,
		Token:    d.Token,
		Holder:   d.Holder,
		Node:     d.Node,
		Locality: d.Locality,
	}
	if !d.Expiry.IsZero() {
		r.ExpiryUnixNS = d.Expiry.UnixNano()
	}
	if d.RetryAfter > 0 {
		r.RetryAfterMS = ceilMS(d.RetryAfter)
	}
	return r
}

// ceilMS rounds a duration up to whole milliseconds (never 0 for a
// positive duration, so a hint is never lost to rounding).
func ceilMS(d time.Duration) int64 {
	ms := int64(d / time.Millisecond)
	if d%time.Millisecond != 0 || ms == 0 {
		ms++
	}
	return ms
}

// StatusOf maps a wire outcome to its HTTP status code.
func StatusOf(outcome string) int {
	switch outcome {
	case WireGranted, WireRenewed, WireReleased, WireFree, WireHeld:
		return 200
	case WireConflict:
		return 409
	case WireStale:
		return 410
	case WireThrottled:
		return 429
	case WireBusy, WireNACK, WireDraining, WireRecovering:
		return 503
	}
	return 500
}
