package lockserv

import (
	"encoding/json"
	"io"
	"sync/atomic"
)

// StatsSchema versions the service stats document served at /v1/stats.
const StatsSchema = "hbolockd-stats/v1"

// shardCounters is a shard's live counter block. Operations mutate it
// under the shard's native lock; Stats() reads it without the lock, so
// every field is atomic. Padding keeps neighbor shards off each
// other's lines, matching the obs layer's sharding discipline.
type shardCounters struct {
	attempts     atomic.Uint64 // acquire requests reaching the table
	grants       atomic.Uint64 // fresh grants (new fencing token)
	renews       atomic.Uint64 // renewals incl. reentrant acquires
	releases     atomic.Uint64
	conflicts    atomic.Uint64 // acquire denied: lease held by another owner
	stales       atomic.Uint64 // renew/release denied: dead token
	expiries     atomic.Uint64 // leases collected past their deadline
	throttled    atomic.Uint64 // requests refused by the rate limiter
	busy         atomic.Uint64 // shard-lock timed acquires that gave up
	sessionKills atomic.Uint64 // fault layer truncated a live lease
	nacks        atomic.Uint64 // fault layer bounced a request
	keys         atomic.Int64  // live leases right now
	_            [32]byte
}

// ShardStats is one shard's exported counters.
type ShardStats struct {
	Shard        int    `json:"shard"`
	Node         int    `json:"node"` // home NUCA node of the shard's lock
	Keys         int64  `json:"keys"`
	Attempts     uint64 `json:"attempts"`
	Grants       uint64 `json:"grants"`
	Renews       uint64 `json:"renews"`
	Releases     uint64 `json:"releases"`
	Conflicts    uint64 `json:"conflicts"`
	Stales       uint64 `json:"stales"`
	Expiries     uint64 `json:"expiries"`
	Throttled    uint64 `json:"throttled"`
	Busy         uint64 `json:"busy"`
	SessionKills uint64 `json:"session_kills"`
	NACKs        uint64 `json:"nacks"`
}

func (c *shardCounters) export(shard, node int) ShardStats {
	return ShardStats{
		Shard:        shard,
		Node:         node,
		Keys:         c.keys.Load(),
		Attempts:     c.attempts.Load(),
		Grants:       c.grants.Load(),
		Renews:       c.renews.Load(),
		Releases:     c.releases.Load(),
		Conflicts:    c.conflicts.Load(),
		Stales:       c.stales.Load(),
		Expiries:     c.expiries.Load(),
		Throttled:    c.throttled.Load(),
		Busy:         c.busy.Load(),
		SessionKills: c.sessionKills.Load(),
		NACKs:        c.nacks.Load(),
	}
}

func (s ShardStats) sub(p ShardStats) ShardStats {
	return ShardStats{
		Shard:        s.Shard,
		Node:         s.Node,
		Keys:         s.Keys, // gauge: report current, not differenced
		Attempts:     s.Attempts - min64(s.Attempts, p.Attempts),
		Grants:       s.Grants - min64(s.Grants, p.Grants),
		Renews:       s.Renews - min64(s.Renews, p.Renews),
		Releases:     s.Releases - min64(s.Releases, p.Releases),
		Conflicts:    s.Conflicts - min64(s.Conflicts, p.Conflicts),
		Stales:       s.Stales - min64(s.Stales, p.Stales),
		Expiries:     s.Expiries - min64(s.Expiries, p.Expiries),
		Throttled:    s.Throttled - min64(s.Throttled, p.Throttled),
		Busy:         s.Busy - min64(s.Busy, p.Busy),
		SessionKills: s.SessionKills - min64(s.SessionKills, p.SessionKills),
		NACKs:        s.NACKs - min64(s.NACKs, p.NACKs),
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// TenantStats groups a tenant's shard counters.
type TenantStats struct {
	Tenant string       `json:"tenant"`
	Shards []ShardStats `json:"shards"`
}

// Totals sums the tenant's shards.
func (t TenantStats) Totals() ShardStats {
	var out ShardStats
	out.Shard = -1
	for _, s := range t.Shards {
		out.Keys += s.Keys
		out.Attempts += s.Attempts
		out.Grants += s.Grants
		out.Renews += s.Renews
		out.Releases += s.Releases
		out.Conflicts += s.Conflicts
		out.Stales += s.Stales
		out.Expiries += s.Expiries
		out.Throttled += s.Throttled
		out.Busy += s.Busy
		out.SessionKills += s.SessionKills
		out.NACKs += s.NACKs
	}
	return out
}

// Stats is the service-level stats document: deterministic field
// order, tenants and shards in fixed configuration order, so stable
// state yields stable bytes (the same contract obs snapshots keep).
type Stats struct {
	Schema   string        `json:"schema"`
	Lock     string        `json:"lock"`
	Nodes    int           `json:"nodes"`
	Draining bool          `json:"draining"`
	Tenants  []TenantStats `json:"tenants"`
}

// Delta returns the activity between earlier and s, matched by tenant
// name and shard index. Gauges (Keys) pass through from s.
func (s Stats) Delta(earlier Stats) Stats {
	prev := make(map[string]map[int]ShardStats, len(earlier.Tenants))
	for _, t := range earlier.Tenants {
		m := make(map[int]ShardStats, len(t.Shards))
		for _, sh := range t.Shards {
			m[sh.Shard] = sh
		}
		prev[t.Tenant] = m
	}
	out := Stats{Schema: s.Schema, Lock: s.Lock, Nodes: s.Nodes, Draining: s.Draining}
	for _, t := range s.Tenants {
		dt := TenantStats{Tenant: t.Tenant}
		for _, sh := range t.Shards {
			dt.Shards = append(dt.Shards, sh.sub(prev[t.Tenant][sh.Shard]))
		}
		out.Tenants = append(out.Tenants, dt)
	}
	return out
}

// WriteJSON emits the stats as indented JSON with stable bytes.
func (s Stats) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
