package lockserv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// AccessEvent is one line of the service's JSONL access log: every
// state transition of every lease, in a global sequence order. The log
// is the service's auditable safety record — VerifyAccessLog replays
// it and proves the fencing-token invariant held across the run, which
// is how the CI soak checks a live daemon after the fact.
//
// Events for one (tenant, key) are totally ordered: they are emitted
// while the key's shard lock is held, and Seq is assigned under the
// log's own mutex before the shard lock is dropped.
type AccessEvent struct {
	Seq    uint64 `json:"seq"`
	Op     string `json:"op"` // grant, renew, release, expire, conflict, stale, truncate
	Tenant string `json:"tenant"`
	Key    string `json:"key"`
	Owner  string `json:"owner,omitempty"`
	Token  uint64 `json:"token,omitempty"`
	// ExpiryUnixNS is the lease deadline for grant/renew/truncate events.
	ExpiryUnixNS int64 `json:"expiry_unix_ns,omitempty"`
}

// accessLog serializes events to w. A nil accessLog drops everything.
type accessLog struct {
	mu  sync.Mutex
	seq uint64
	bw  *bufio.Writer
	err error
}

func newAccessLog(w io.Writer) *accessLog {
	if w == nil {
		return nil
	}
	return &accessLog{bw: bufio.NewWriterSize(w, 1<<16)}
}

// record appends one event, assigning its sequence number. Encoding
// errors are sticky and surface at Flush.
func (a *accessLog) record(ev AccessEvent) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	ev.Seq = a.seq
	if a.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		a.err = err
		return
	}
	b = append(b, '\n')
	if _, err := a.bw.Write(b); err != nil {
		a.err = err
	}
}

// Flush drains the buffer and reports any sticky write error.
func (a *accessLog) Flush() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return a.err
	}
	return a.bw.Flush()
}

// VerifyAccessLog replays a JSONL access log and checks the fencing
// invariant the service promises:
//
//   - per (tenant, key), grant tokens are strictly monotonic;
//   - no two owners ever hold live grants on the same key: a grant is
//     only legal when the previous grant has been closed by a release,
//     an expire, or — when lease deadlines do the closing implicitly —
//     when the new grant's log position proves the old lease's deadline
//     had passed (the new grant carries a larger token);
//   - renew and release events name the currently-live token.
//
// It returns the number of events checked and the first violation.
func VerifyAccessLog(r io.Reader) (int, error) {
	type keyState struct {
		liveToken uint64 // 0 = no live lease
		liveOwner string
		expiry    int64 // deadline of the live lease
		maxToken  uint64
	}
	states := make(map[string]*keyState)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	n := 0
	var lastSeq uint64
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev AccessEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return n, fmt.Errorf("event %d: bad JSON: %w", n+1, err)
		}
		n++
		if ev.Seq <= lastSeq {
			return n, fmt.Errorf("event %d: sequence went backwards (%d after %d)", n, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		id := ev.Tenant + "\x00" + ev.Key
		st := states[id]
		if st == nil {
			st = &keyState{}
			states[id] = st
		}
		switch ev.Op {
		case "grant":
			if ev.Token <= st.maxToken {
				return n, fmt.Errorf("seq %d: %s/%s token %d not monotonic (max %d)",
					ev.Seq, ev.Tenant, ev.Key, ev.Token, st.maxToken)
			}
			if st.liveToken != 0 {
				// The previous lease was never explicitly closed; the
				// grant is only legal if its deadline had passed.
				if ev.ExpiryUnixNS != 0 && st.expiry != 0 && st.expiry > ev.ExpiryUnixNS {
					return n, fmt.Errorf("seq %d: %s/%s granted token %d to %q while token %d (%q) was live",
						ev.Seq, ev.Tenant, ev.Key, ev.Token, ev.Owner, st.liveToken, st.liveOwner)
				}
			}
			st.maxToken = ev.Token
			st.liveToken = ev.Token
			st.liveOwner = ev.Owner
			st.expiry = ev.ExpiryUnixNS
		case "renew":
			if st.liveToken != ev.Token || st.liveOwner != ev.Owner {
				return n, fmt.Errorf("seq %d: %s/%s renew of token %d by %q but live is token %d by %q",
					ev.Seq, ev.Tenant, ev.Key, ev.Token, ev.Owner, st.liveToken, st.liveOwner)
			}
			st.expiry = ev.ExpiryUnixNS
		case "release":
			if st.liveToken != ev.Token || st.liveOwner != ev.Owner {
				return n, fmt.Errorf("seq %d: %s/%s release of token %d by %q but live is token %d by %q",
					ev.Seq, ev.Tenant, ev.Key, ev.Token, ev.Owner, st.liveToken, st.liveOwner)
			}
			st.liveToken, st.liveOwner, st.expiry = 0, "", 0
		case "expire":
			if st.liveToken != ev.Token {
				return n, fmt.Errorf("seq %d: %s/%s expire of token %d but live is token %d",
					ev.Seq, ev.Tenant, ev.Key, ev.Token, st.liveToken)
			}
			st.liveToken, st.liveOwner, st.expiry = 0, "", 0
		case "truncate":
			if st.liveToken == ev.Token {
				st.expiry = ev.ExpiryUnixNS
			}
		case "conflict", "stale":
			// Denials; no state change to verify beyond parseability.
		default:
			return n, fmt.Errorf("seq %d: unknown op %q", ev.Seq, ev.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

// expiryNS renders a lease deadline for the log (0 for zero time).
func expiryNS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}
