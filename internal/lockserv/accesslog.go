package lockserv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// AccessEvent is one line of the service's JSONL access log: every
// state transition of every lease, in a global sequence order. The log
// is the service's auditable safety record — VerifyAccessLog replays
// it and proves the fencing-token invariant held across the run, which
// is how the CI soak checks a live daemon after the fact.
//
// Events for one (tenant, key) are totally ordered: they are emitted
// while the key's shard lock is held, and Seq is assigned under the
// log's own mutex before the shard lock is dropped.
type AccessEvent struct {
	Seq    uint64 `json:"seq"`
	Op     string `json:"op"` // grant, renew, release, expire, conflict, stale, truncate, recovered, restore
	Tenant string `json:"tenant,omitempty"`
	Key    string `json:"key,omitempty"`
	Owner  string `json:"owner,omitempty"`
	Token  uint64 `json:"token,omitempty"`
	// ExpiryUnixNS is the lease deadline for grant/renew/truncate and
	// restore events.
	ExpiryUnixNS int64 `json:"expiry_unix_ns,omitempty"`
	// Restored counts the live leases a `recovered` boot marker
	// carried over; the marker is followed by one `restore` event per
	// lease, in deterministic order.
	Restored int `json:"restored,omitempty"`
}

// accessLog serializes events to w. A nil accessLog drops everything.
type accessLog struct {
	mu  sync.Mutex
	seq uint64
	bw  *bufio.Writer
	err error
}

func newAccessLog(w io.Writer) *accessLog {
	if w == nil {
		return nil
	}
	return &accessLog{bw: bufio.NewWriterSize(w, 1<<16)}
}

// record appends one event, assigning its sequence number. Encoding
// errors are sticky and surface at Flush.
func (a *accessLog) record(ev AccessEvent) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	ev.Seq = a.seq
	if a.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		a.err = err
		return
	}
	b = append(b, '\n')
	if _, err := a.bw.Write(b); err != nil {
		a.err = err
	}
}

// Flush drains the buffer and reports any sticky write error.
func (a *accessLog) Flush() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return a.err
	}
	return a.bw.Flush()
}

// VerifyAccessLog replays a JSONL access log and checks the fencing
// invariant the service promises:
//
//   - per (tenant, key), grant tokens are strictly monotonic — across
//     restarts too, because recovery carries the counters forward;
//   - no two owners ever hold live grants on the same key: a grant is
//     only legal when the previous grant has been closed by a release,
//     an expire, or — when lease deadlines do the closing implicitly —
//     when the new grant's log position proves the old lease's deadline
//     had passed (the new grant carries a larger token);
//   - renew and release events name the currently-live token;
//   - a `recovered` boot marker resets the sequence counter (a new
//     process, a new log segment) and clears all liveness, and the
//     `restore` events that follow re-declare exactly the live set
//     that survived — each with a token no smaller than the largest
//     the log has seen for its key, so a dead token can never
//     resurrect through a crash.
//
// It returns the number of events checked and the first violation.
func VerifyAccessLog(r io.Reader) (int, error) {
	return VerifyAccessLogSegments(r)
}

// keyState is the verifier's per-(tenant, key) fencing state.
type keyState struct {
	liveToken uint64 // 0 = no live lease
	liveOwner string
	expiry    int64 // deadline of the live lease
	maxToken  uint64
}

// logVerifier carries fencing state across events and segments.
type logVerifier struct {
	states  map[string]*keyState
	lastSeq uint64
	n       int
}

// VerifyAccessLogSegments verifies a log split across several readers
// — typically a pre-crash segment and one or more post-recovery
// segments stitched together by the chaos driver. Fencing state
// (token maxima, liveness) carries across segment boundaries; only
// the per-process sequence counter resets, at each boundary and at
// each in-band `recovered` marker. A single appended-to log file with
// recovered markers and a pile of separate segment files verify
// identically.
// A SIGKILL can cut the log's buffered tail mid-record, so one
// unparseable line is forgiven when it sits exactly at a crash
// boundary: the next parseable event is a `recovered` marker (the
// dead process's torn last line, stitched over by the restart).
// Anywhere else — including at end of input — a bad line is
// corruption and fails the audit.
func VerifyAccessLogSegments(rs ...io.Reader) (int, error) {
	v := &logVerifier{states: make(map[string]*keyState)}
	var torn error // parse failure awaiting a crash boundary to justify it
	for _, r := range rs {
		v.lastSeq = 0
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var ev AccessEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				if torn != nil {
					return v.n, torn // two bad lines: corruption, not a torn tail
				}
				torn = fmt.Errorf("event %d: bad JSON: %w", v.n+1, err)
				continue
			}
			if torn != nil {
				if ev.Op != "recovered" {
					return v.n, torn
				}
				torn = nil
			}
			v.n++
			if err := v.step(ev); err != nil {
				return v.n, err
			}
		}
		if err := sc.Err(); err != nil {
			return v.n, err
		}
	}
	if torn != nil {
		return v.n, torn
	}
	return v.n, nil
}

// step checks one event against the carried fencing state.
func (v *logVerifier) step(ev AccessEvent) error {
	if ev.Op == "recovered" {
		// Boot marker: a fresh process numbers its events from 1 again,
		// and everything live before the crash must be re-declared by
		// the restore events that follow — liveness that is not
		// restored did not survive.
		if ev.Seq == 0 {
			return fmt.Errorf("event %d: recovered marker with zero seq", v.n)
		}
		v.lastSeq = ev.Seq
		for _, st := range v.states {
			st.liveToken, st.liveOwner, st.expiry = 0, "", 0
		}
		return nil
	}
	if ev.Seq <= v.lastSeq {
		return fmt.Errorf("event %d: sequence went backwards (%d after %d)", v.n, ev.Seq, v.lastSeq)
	}
	v.lastSeq = ev.Seq
	id := ev.Tenant + "\x00" + ev.Key
	st := v.states[id]
	if st == nil {
		st = &keyState{}
		v.states[id] = st
	}
	switch ev.Op {
	case "grant":
		if ev.Token <= st.maxToken {
			return fmt.Errorf("seq %d: %s/%s token %d not monotonic (max %d)",
				ev.Seq, ev.Tenant, ev.Key, ev.Token, st.maxToken)
		}
		if st.liveToken != 0 {
			// The previous lease was never explicitly closed; the
			// grant is only legal if its deadline had passed.
			if ev.ExpiryUnixNS != 0 && st.expiry != 0 && st.expiry > ev.ExpiryUnixNS {
				return fmt.Errorf("seq %d: %s/%s granted token %d to %q while token %d (%q) was live",
					ev.Seq, ev.Tenant, ev.Key, ev.Token, ev.Owner, st.liveToken, st.liveOwner)
			}
		}
		st.maxToken = ev.Token
		st.liveToken = ev.Token
		st.liveOwner = ev.Owner
		st.expiry = ev.ExpiryUnixNS
	case "renew":
		if st.liveToken != ev.Token || st.liveOwner != ev.Owner {
			return fmt.Errorf("seq %d: %s/%s renew of token %d by %q but live is token %d by %q",
				ev.Seq, ev.Tenant, ev.Key, ev.Token, ev.Owner, st.liveToken, st.liveOwner)
		}
		st.expiry = ev.ExpiryUnixNS
	case "release":
		if st.liveToken != ev.Token || st.liveOwner != ev.Owner {
			return fmt.Errorf("seq %d: %s/%s release of token %d by %q but live is token %d by %q",
				ev.Seq, ev.Tenant, ev.Key, ev.Token, ev.Owner, st.liveToken, st.liveOwner)
		}
		st.liveToken, st.liveOwner, st.expiry = 0, "", 0
	case "expire":
		if st.liveToken != ev.Token {
			return fmt.Errorf("seq %d: %s/%s expire of token %d but live is token %d",
				ev.Seq, ev.Tenant, ev.Key, ev.Token, st.liveToken)
		}
		st.liveToken, st.liveOwner, st.expiry = 0, "", 0
	case "restore":
		// Recovery re-declares a live lease. A token below the key's
		// recorded maximum would be a dead token resurrecting through
		// the crash — the exact failure class the WAL exists to stop.
		// (Lost buffered tail events mean the token may legitimately
		// exceed the maximum this log saw.)
		if ev.Token < st.maxToken {
			return fmt.Errorf("seq %d: %s/%s restored dead token %d (max seen %d)",
				ev.Seq, ev.Tenant, ev.Key, ev.Token, st.maxToken)
		}
		if st.liveToken != 0 {
			return fmt.Errorf("seq %d: %s/%s restored token %d over live token %d",
				ev.Seq, ev.Tenant, ev.Key, ev.Token, st.liveToken)
		}
		st.maxToken = ev.Token
		st.liveToken = ev.Token
		st.liveOwner = ev.Owner
		st.expiry = ev.ExpiryUnixNS
	case "truncate":
		if st.liveToken == ev.Token {
			st.expiry = ev.ExpiryUnixNS
		}
	case "conflict", "stale":
		// Denials; no state change to verify beyond parseability.
	default:
		return fmt.Errorf("seq %d: unknown op %q", ev.Seq, ev.Op)
	}
	return nil
}

// expiryNS renders a lease deadline for the log (0 for zero time).
func expiryNS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}
