package lockserv

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// doOp posts one wire operation to the handler.
func doOp(t *testing.T, h http.Handler, path string, req OpRequest) (int, OpResponse, http.Header) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(b))))
	var resp OpResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("%s: bad body %q: %v", path, rr.Body.String(), err)
	}
	if resp.Schema != WireSchema {
		t.Fatalf("%s: schema %q", path, resp.Schema)
	}
	return rr.Code, resp, rr.Header()
}

// TestHandlerStatusMapping drives the full outcome → HTTP status table
// through real requests.
func TestHandlerStatusMapping(t *testing.T) {
	svc, clock, _ := newTestService(t, func(c *Config) {
		c.Tenants = []string{"t0"}
		c.Shards = 1
		c.ShardQPS = 1000
		// The clock is manual, so exactly burst requests admit before
		// the limiter bites; size it past the happy-path ops below.
		c.ShardBurst = 8
	})
	h := Handler(svc)

	code, resp, _ := doOp(t, h, "/v1/acquire", OpRequest{Tenant: "t0", Key: "k", Owner: "alice", TTLMS: 1000})
	if code != 200 || resp.Outcome != WireGranted || resp.Token != 1 || resp.ExpiryUnixNS == 0 {
		t.Fatalf("grant: %d %+v", code, resp)
	}

	code, resp, _ = doOp(t, h, "/v1/acquire", OpRequest{Tenant: "t0", Key: "k", Owner: "bob", TTLMS: 1000})
	if code != 409 || resp.Outcome != WireConflict || resp.Holder != "alice" || resp.RetryAfterMS <= 0 {
		t.Fatalf("conflict: %d %+v", code, resp)
	}

	code, resp, _ = doOp(t, h, "/v1/renew", OpRequest{Tenant: "t0", Key: "k", Owner: "alice", Token: 1, TTLMS: 1000})
	if code != 200 || resp.Outcome != WireRenewed {
		t.Fatalf("renew: %d %+v", code, resp)
	}

	code, resp, _ = doOp(t, h, "/v1/release", OpRequest{Tenant: "t0", Key: "k", Owner: "alice", Token: 99})
	if code != 410 || resp.Outcome != WireStale {
		t.Fatalf("stale: %d %+v", code, resp)
	}

	// Exhaust the rate limiter: 429 plus a whole-seconds Retry-After
	// header rounded up from the ms hint.
	var hdr http.Header
	for i := 0; i < 10; i++ {
		code, resp, hdr = doOp(t, h, "/v1/acquire", OpRequest{Tenant: "t0", Key: "k2", Owner: "x"})
		if code == 429 {
			break
		}
	}
	if code != 429 || resp.Outcome != WireThrottled || resp.RetryAfterMS <= 0 {
		t.Fatalf("throttled: %d %+v", code, resp)
	}
	if hdr.Get("Retry-After") == "" || hdr.Get("Retry-After") == "0" {
		t.Fatalf("Retry-After header = %q", hdr.Get("Retry-After"))
	}

	clock.Advance(time.Minute)
	svc.Drain()
	code, resp, _ = doOp(t, h, "/v1/acquire", OpRequest{Tenant: "t0", Key: "k3", Owner: "x"})
	if code != 503 || resp.Outcome != WireDraining {
		t.Fatalf("draining: %d %+v", code, resp)
	}
}

// TestHandlerInspectAndStats covers the GET endpoints.
func TestHandlerInspectAndStats(t *testing.T) {
	svc, _, _ := newTestService(t, nil)
	h := Handler(svc)
	doOp(t, h, "/v1/acquire", OpRequest{Tenant: "t0", Key: "jobs/x", Owner: "alice", TTLMS: 5000})

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/inspect?tenant=t0&key=jobs%2Fx", nil))
	var resp OpResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if rr.Code != 200 || resp.Outcome != WireHeld || resp.Holder != "alice" || resp.Token != 1 {
		t.Fatalf("inspect held: %d %+v", rr.Code, resp)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/inspect?tenant=t0&key=free", nil))
	json.Unmarshal(rr.Body.Bytes(), &resp)
	if resp.Outcome != WireFree {
		t.Fatalf("inspect free: %+v", resp)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var st Stats
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Schema != StatsSchema || len(st.Tenants) != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestHandlerErrors: bad methods, bad bodies, bad tenants.
func TestHandlerErrors(t *testing.T) {
	svc, _, _ := newTestService(t, nil)
	h := Handler(svc)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/acquire", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET acquire: %d", rr.Code)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/acquire", strings.NewReader("{broken")))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", rr.Code)
	}

	code, resp, _ := doOp(t, h, "/v1/acquire", OpRequest{Tenant: "ghost", Key: "k", Owner: "o"})
	if code != http.StatusBadRequest || resp.Outcome != "error" || resp.Error == "" {
		t.Fatalf("unknown tenant: %d %+v", code, resp)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/unknown", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown path: %d", rr.Code)
	}
}

// TestCeilMS pins the never-round-to-zero contract of wire hints.
func TestCeilMS(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int64
	}{
		{time.Nanosecond, 1},
		{time.Millisecond, 1},
		{time.Millisecond + time.Nanosecond, 2},
		{999 * time.Millisecond, 999},
		{time.Second, 1000},
	}
	for _, c := range cases {
		if got := ceilMS(c.d); got != c.want {
			t.Errorf("ceilMS(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
