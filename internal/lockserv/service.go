package lockserv

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Config parameterizes a Service. The zero value is not usable; fill
// in at least Tenants and call New, which validates and applies
// defaults for everything else.
type Config struct {
	// Tenants are the namespaces the service accepts, each sharded
	// independently. Order fixes the stats/report ordering.
	Tenants []string
	// Shards is the shard count per tenant (default 4).
	Shards int
	// Nodes is the logical NUCA node count of the service's runtime;
	// shards are homed round-robin across nodes (default 2).
	Nodes int
	// ThreadsPerNode sizes each node's worker-thread pool; the pool is
	// the service's concurrency bound and backpressure valve
	// (default 4).
	ThreadsPerNode int
	// Lock names the native algorithm arbitrating every shard (any
	// core.AllNames entry; default HBO).
	Lock string
	// DefaultTTL applies when a request carries no TTL (default 5s);
	// MaxTTL caps requested TTLs (default 60s).
	DefaultTTL time.Duration
	MaxTTL     time.Duration
	// OpTimeout bounds one operation's thread checkout plus shard-lock
	// acquire — past it the request is refused as busy (default 100ms).
	OpTimeout time.Duration
	// ShardQPS rate-limits each shard (0 = unlimited); ShardBurst is
	// the bucket depth (default 2×ShardQPS, min 1).
	ShardQPS   float64
	ShardBurst int
	// Clock drives TTL expiry and rate limiting (default: wall clock).
	Clock Clock
	// Registry instruments every shard lock when non-nil, feeding
	// /metrics and the live report; shard locks register as
	// serv/<tenant>/s<shard>.
	Registry *obs.Registry
	// Faults optionally injects service-tier faults (session expiry,
	// request NACKs).
	Faults *fault.ServiceInjector
	// AccessLog, when non-nil, receives the JSONL lease audit trail
	// that VerifyAccessLog checks.
	AccessLog io.Writer
	// Store, when non-nil, makes the service crash-safe: every lease
	// transition is appended to the store's WAL before the response
	// leaves the shard, and New restores the store's recovered state —
	// fencing counters and live leases with their original deadlines —
	// before serving. A store that can no longer persist fails the
	// service closed: mutations are refused as busy rather than handing
	// out tokens the next boot would forget.
	Store *Store
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.ThreadsPerNode == 0 {
		c.ThreadsPerNode = 4
	}
	if c.Lock == "" {
		c.Lock = "HBO"
	}
	if c.DefaultTTL == 0 {
		c.DefaultTTL = 5 * time.Second
	}
	if c.MaxTTL == 0 {
		c.MaxTTL = 60 * time.Second
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 100 * time.Millisecond
	}
	if c.ShardBurst == 0 {
		c.ShardBurst = int(2 * c.ShardQPS)
	}
	if c.Clock == nil {
		c.Clock = RealClock()
	}
	return c
}

// Validate reports configuration errors with enough context for a CLI
// to render as usage text.
func (c Config) Validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("lockserv: need at least one tenant")
	}
	seen := map[string]bool{}
	for _, t := range c.Tenants {
		if t == "" {
			return fmt.Errorf("lockserv: empty tenant name")
		}
		if seen[t] {
			return fmt.Errorf("lockserv: duplicate tenant %q", t)
		}
		seen[t] = true
	}
	if c.Shards < 1 {
		return fmt.Errorf("lockserv: Shards = %d, need >= 1", c.Shards)
	}
	if c.Nodes < 1 {
		return fmt.Errorf("lockserv: Nodes = %d, need >= 1", c.Nodes)
	}
	if c.ThreadsPerNode < 1 {
		return fmt.Errorf("lockserv: ThreadsPerNode = %d, need >= 1", c.ThreadsPerNode)
	}
	known := false
	for _, n := range core.AllNames() {
		if c.Lock == n {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("lockserv: unknown lock %q (known: %s)", c.Lock, strings.Join(core.AllNames(), ", "))
	}
	if c.DefaultTTL <= 0 || c.MaxTTL <= 0 || c.DefaultTTL > c.MaxTTL {
		return fmt.Errorf("lockserv: need 0 < DefaultTTL (%v) <= MaxTTL (%v)", c.DefaultTTL, c.MaxTTL)
	}
	if c.OpTimeout <= 0 {
		return fmt.Errorf("lockserv: OpTimeout = %v, need > 0", c.OpTimeout)
	}
	if c.ShardQPS < 0 {
		return fmt.Errorf("lockserv: ShardQPS = %g, need >= 0", c.ShardQPS)
	}
	return nil
}

// Wire outcome strings: the versioned vocabulary shared by the HTTP
// layer, the client, and the deterministic driver's tables.
const (
	WireGranted    = "granted"
	WireRenewed    = "renewed"
	WireReleased   = "released"
	WireConflict   = "conflict"
	WireStale      = "stale"
	WireThrottled  = "throttled"
	WireBusy       = "busy"
	WireDraining   = "draining"
	WireNACK       = "nack"
	WireFree       = "free"       // inspect: no live lease
	WireHeld       = "held"       // inspect: live lease exists
	WireRecovering = "recovering" // daemon is replaying its WAL; retry shortly
)

// Decision is the service's answer to one operation. Outcome is one of
// the Wire* strings; Retryable outcomes carry a RetryAfter hint, and
// grants carry the shard's node-affinity hint plus the live locality
// of its arbitrating lock (1 = perfectly node-local handoffs).
type Decision struct {
	Outcome    string
	Token      uint64
	Expiry     time.Time
	Holder     string
	Node       int
	Locality   float64
	RetryAfter time.Duration
}

// Retryable reports whether the outcome is transient backpressure the
// client should retry with backoff (as opposed to a conflict, which
// retries on the lease timescale, or a stale token, which never
// succeeds again).
func (d Decision) Retryable() bool {
	switch d.Outcome {
	case WireThrottled, WireBusy, WireDraining, WireNACK, WireRecovering:
		return true
	}
	return false
}

// shardState is one tenant shard: a lease table arbitrated by a
// native lock homed on a NUCA node.
type shardState struct {
	tenant string
	index  int
	node   int
	lock   core.Lock
	table  *leaseTable
	limit  *tokenBucket
	c      shardCounters
	// metrics is the obs collector of the shard lock (nil when not
	// instrumented); locality caches its handoff-locality ratio as
	// Float64bits, refreshed off the hot path by RefreshAffinity.
	metrics  *obs.LockMetrics
	locality atomic.Uint64
}

func (sh *shardState) localityRatio() float64 {
	if bits := sh.locality.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return 1
}

type tenantState struct {
	name   string
	shards []*shardState
}

// Service is the transport-independent lease service core. All methods
// are safe for concurrent use.
type Service struct {
	cfg      Config
	clock    Clock
	tun      core.Tuning
	rt       *core.Runtime
	pools    []chan *core.Thread // per node
	tenants  map[string]*tenantState
	order    []*tenantState
	log      *accessLog
	faults   *fault.ServiceInjector
	store    *Store
	draining atomic.Bool
	// persistFailed latches when a WAL append errors; mutations are
	// refused from then on (fail-closed durability).
	persistFailed atomic.Bool
}

// New builds a Service; the Config must pass Validate.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tun := core.DefaultTuning()
	rt := core.NewRuntime(cfg.Nodes, cfg.Nodes*cfg.ThreadsPerNode)
	s := &Service{
		cfg:     cfg,
		clock:   cfg.Clock,
		tun:     tun,
		rt:      rt,
		pools:   make([]chan *core.Thread, cfg.Nodes),
		tenants: make(map[string]*tenantState, len(cfg.Tenants)),
		log:     newAccessLog(cfg.AccessLog),
		faults:  cfg.Faults,
		store:   cfg.Store,
	}
	for n := range s.pools {
		pool := make(chan *core.Thread, cfg.ThreadsPerNode)
		for i := 0; i < cfg.ThreadsPerNode; i++ {
			pool <- rt.RegisterThread(n)
		}
		s.pools[n] = pool
	}
	now := s.clock.Now()
	for _, name := range cfg.Tenants {
		ts := &tenantState{name: name}
		for i := 0; i < cfg.Shards; i++ {
			sh := &shardState{
				tenant: name,
				index:  i,
				node:   i % cfg.Nodes,
				table:  newLeaseTable(),
				limit:  newTokenBucket(cfg.ShardQPS, cfg.ShardBurst, now),
			}
			l := core.New(cfg.Lock, rt, tun)
			if cfg.Registry != nil {
				wrapped := cfg.Registry.Instrument(l, fmt.Sprintf("serv/%s/s%d", name, i))
				if il, ok := wrapped.(obs.InstrumentedLock); ok {
					sh.metrics = il.Metrics()
				}
				sh.lock = wrapped
			} else {
				sh.lock = l
			}
			ts.shards = append(ts.shards, sh)
		}
		s.tenants[name] = ts
		s.order = append(s.order, ts)
	}
	if s.store != nil {
		if err := s.restoreFromStore(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// restoreFromStore replays the store's recovered state into the shard
// tables: fencing counters for every key ever granted, live leases
// with their original deadlines on the configured Clock. It emits the
// `recovered` boot marker and one `restore` access-log event per live
// lease, in deterministic order, so a stitched pre/post-crash log
// verifies end to end.
func (s *Service) restoreFromStore() error {
	leases, tokens := s.store.Restored()
	for tenant := range tokens {
		if s.tenants[tenant] == nil {
			return fmt.Errorf("lockserv: store %s holds state for tenant %q not in config", s.store.Dir(), tenant)
		}
	}
	s.log.record(AccessEvent{Op: "recovered", Restored: len(leases)})
	// Counters first (order within a tenant does not matter for
	// counters, but iterate deterministically anyway), then leases —
	// restore() also carries its own token, so overlap is harmless.
	for _, ts := range s.order {
		tm := tokens[ts.name]
		keys := make([]string, 0, len(tm))
		for k := range tm {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s.shardFor(ts, k).table.restoreToken(k, tm[k])
		}
	}
	for _, rl := range leases {
		ts := s.tenants[rl.Tenant]
		sh := s.shardFor(ts, rl.Key)
		sh.table.restore(rl.Key, rl.Owner, rl.Token, time.Unix(0, rl.ExpiryUnixNS))
		sh.c.keys.Add(1)
		s.log.record(AccessEvent{
			Op: "restore", Tenant: rl.Tenant, Key: rl.Key, Owner: rl.Owner,
			Token: rl.Token, ExpiryUnixNS: rl.ExpiryUnixNS,
		})
	}
	return nil
}

// persist appends one lease transition to the WAL. Called with the
// shard lock held, after the in-memory transition and before the
// response is returned. A false return means the transition did NOT
// reach the WAL: the caller must not acknowledge it (the client gets
// busy instead — a grant acked but forgotten by the next boot would
// remint its token, the double-grant this whole layer exists to
// prevent), and the fail-closed latch refuses all later mutations.
func (s *Service) persist(op string, sh *shardState, key, owner string, token uint64, expiryNS int64) bool {
	if s.store == nil {
		return true
	}
	if err := s.store.Append(op, sh.tenant, key, owner, token, expiryNS); err != nil {
		s.persistFailed.Store(true)
		return false
	}
	return true
}

// refused is the decision handed back when persistence failed mid-op.
func (s *Service) refused(sh *shardState) Decision {
	return Decision{Outcome: WireBusy, Node: sh.node, RetryAfter: s.cfg.OpTimeout}
}

// LockName returns the configured shard-arbitration algorithm.
func (s *Service) LockName() string { return s.cfg.Lock }

// Nodes returns the service runtime's node count.
func (s *Service) Nodes() int { return s.cfg.Nodes }

// DefaultTTL returns the TTL applied to requests that carry none.
func (s *Service) DefaultTTL() time.Duration { return s.cfg.DefaultTTL }

// Draining reports whether Drain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// Drain puts the service into drain mode: every subsequent operation
// is refused with WireDraining so clients fail over, while in-flight
// operations complete normally. Part of graceful shutdown.
func (s *Service) Drain() { s.draining.Store(true) }

// Close flushes the access log. Call after the transport has stopped.
// The durable store (if any) is owned by the caller and closed
// separately, after Close.
func (s *Service) Close() error { return s.log.Flush() }

// Store returns the durable store backing the service, or nil for an
// in-memory service.
func (s *Service) Store() *Store { return s.store }

// PersistFailed reports whether a WAL append has failed, leaving the
// service refusing mutations (fail-closed durability).
func (s *Service) PersistFailed() bool { return s.persistFailed.Load() }

// shardFor routes a key to its tenant shard by FNV-1a hash.
func (s *Service) shardFor(ts *tenantState, key string) *shardState {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return ts.shards[int(h.Sum32())%len(ts.shards)]
}

// checkout borrows a worker thread registered on node, first without
// waiting (the common uncontended case, and the only path exercised
// in deterministic single-threaded runs — no timer, no scheduler
// nondeterminism), then blocking up to budget. A false return is the
// node-saturation backpressure signal.
func (s *Service) checkout(node int, budget time.Duration) (*core.Thread, bool) {
	select {
	case t := <-s.pools[node]:
		return t, true
	default:
	}
	if budget <= 0 {
		return nil, false
	}
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case t := <-s.pools[node]:
		return t, true
	case <-timer.C:
		return nil, false
	}
}

// admit runs the pre-table gauntlet every operation passes: drain
// check, fault-layer NACK, rate limit. It returns a non-nil refusal
// Decision when the request must not proceed.
func (s *Service) admit(sh *shardState, now time.Time) *Decision {
	if s.draining.Load() {
		return &Decision{Outcome: WireDraining, Node: sh.node, RetryAfter: s.cfg.OpTimeout}
	}
	if s.persistFailed.Load() {
		// Fail closed: a service that cannot persist transitions must
		// not hand out fencing tokens a restart would forget.
		return &Decision{Outcome: WireBusy, Node: sh.node, RetryAfter: s.cfg.OpTimeout}
	}
	if ra, bounced := s.faults.Bounce(); bounced {
		sh.c.nacks.Add(1)
		return &Decision{Outcome: WireNACK, Node: sh.node, RetryAfter: ra}
	}
	if ok, ra := sh.limit.admit(now); !ok {
		sh.c.throttled.Add(1)
		return &Decision{Outcome: WireThrottled, Node: sh.node, RetryAfter: ra}
	}
	return nil
}

// withShard runs f under the shard's native lock on a home-node worker
// thread, bounding checkout + acquire by OpTimeout. The shard lock is
// taken through the timed/abortable path (core.AcquireWithin), so a
// saturated shard aborts the acquire and sheds the request as busy.
func (s *Service) withShard(sh *shardState, f func(now time.Time)) *Decision {
	start := time.Now()
	t, ok := s.checkout(sh.node, s.cfg.OpTimeout)
	if !ok {
		sh.c.busy.Add(1)
		return &Decision{Outcome: WireBusy, Node: sh.node, RetryAfter: s.cfg.OpTimeout}
	}
	defer func() { s.pools[sh.node] <- t }()
	budget := s.cfg.OpTimeout - time.Since(start)
	if budget < time.Millisecond {
		budget = time.Millisecond
	}
	if !core.AcquireWithin(sh.lock, t, budget, s.tun) {
		sh.c.busy.Add(1)
		return &Decision{Outcome: WireBusy, Node: sh.node, RetryAfter: s.cfg.OpTimeout}
	}
	f(s.clock.Now())
	sh.lock.Release(t)
	if sh.metrics != nil {
		// Flush this thread's sampled counters so /metrics and the live
		// report are exact, not quantized to the sampling interval; the
		// service's ops are HTTP-dominated, so the flush is noise here.
		sh.metrics.Sync(t)
	}
	return nil
}

// expireOne logs and counts one lazily-collected lease. Unlike the
// acked transitions, a failed expire append is tolerated (beyond the
// fail-closed latch it trips): an expire is not a promise to any
// client, and a lease revived by the lost frame comes back with its
// original — already passed — deadline, so its token can never
// validate again anyway.
func (s *Service) expireOne(sh *shardState, dead deadLease, expired bool) {
	if !expired {
		return
	}
	sh.c.expiries.Add(1)
	sh.c.keys.Add(-1)
	_ = s.persist("expire", sh, dead.key, dead.owner, dead.token, 0)
	s.log.record(AccessEvent{Op: "expire", Tenant: sh.tenant, Key: dead.key, Owner: dead.owner, Token: dead.token})
}

// clampTTL resolves a requested TTL against the service limits.
func (s *Service) clampTTL(ttl time.Duration) time.Duration {
	if ttl <= 0 {
		return s.cfg.DefaultTTL
	}
	if ttl > s.cfg.MaxTTL {
		return s.cfg.MaxTTL
	}
	return ttl
}

// tenant resolves a tenant name.
func (s *Service) tenant(name string) (*tenantState, error) {
	ts := s.tenants[name]
	if ts == nil {
		return nil, fmt.Errorf("lockserv: unknown tenant %q", name)
	}
	return ts, nil
}

// Acquire requests a lease on (tenant, key) for owner. A ttl <= 0
// means the service default. The error return is reserved for caller
// mistakes (unknown tenant, empty key/owner); every runtime condition
// — grant, conflict, backpressure — is a Decision.
func (s *Service) Acquire(tenant, key, owner string, ttl time.Duration) (Decision, error) {
	if key == "" || owner == "" {
		return Decision{}, fmt.Errorf("lockserv: empty key or owner")
	}
	ts, err := s.tenant(tenant)
	if err != nil {
		return Decision{}, err
	}
	sh := s.shardFor(ts, key)
	now := s.clock.Now()
	if d := s.admit(sh, now); d != nil {
		return *d, nil
	}
	ttl = s.clampTTL(ttl)
	var out Decision
	if d := s.withShard(sh, func(now time.Time) {
		sh.c.attempts.Add(1)
		// The session-expiry fault decides at grant time whether this
		// session dies early; the truncated TTL models the holder
		// disappearing and its lease falling due ahead of schedule.
		effTTL, killed := ttl, false
		if s.faults != nil {
			if cut, hit := s.faults.TruncateTTL(ttl); hit {
				effTTL, killed = cut, true
			}
		}
		g, o, holder, dead, expired := sh.table.acquire(key, owner, effTTL, now)
		s.expireOne(sh, dead, expired)
		out = Decision{Token: g.Token, Expiry: g.Expiry, Holder: holder, Node: sh.node, Locality: sh.localityRatio()}
		switch o {
		case Granted:
			if !s.persist("grant", sh, key, owner, g.Token, expiryNS(g.Expiry)) {
				out = s.refused(sh)
				return
			}
			sh.c.grants.Add(1)
			sh.c.keys.Add(1)
			out.Outcome = WireGranted
			s.log.record(AccessEvent{Op: "grant", Tenant: sh.tenant, Key: key, Owner: owner, Token: g.Token, ExpiryUnixNS: expiryNS(g.Expiry)})
		case Renewed:
			if !s.persist("renew", sh, key, owner, g.Token, expiryNS(g.Expiry)) {
				out = s.refused(sh)
				return
			}
			sh.c.renews.Add(1)
			out.Outcome = WireRenewed
			s.log.record(AccessEvent{Op: "renew", Tenant: sh.tenant, Key: key, Owner: owner, Token: g.Token, ExpiryUnixNS: expiryNS(g.Expiry)})
		case Conflict:
			sh.c.conflicts.Add(1)
			out.Outcome = WireConflict
			out.RetryAfter = g.Expiry.Sub(now)
			s.log.record(AccessEvent{Op: "conflict", Tenant: sh.tenant, Key: key, Owner: owner})
		}
		if killed && (o == Granted || o == Renewed) {
			sh.c.sessionKills.Add(1)
		}
	}); d != nil {
		return *d, nil
	}
	return out, nil
}

// Renew extends an existing lease; (owner, token) must name the live
// grant or the answer is WireStale.
func (s *Service) Renew(tenant, key, owner string, token uint64, ttl time.Duration) (Decision, error) {
	if key == "" || owner == "" {
		return Decision{}, fmt.Errorf("lockserv: empty key or owner")
	}
	ts, err := s.tenant(tenant)
	if err != nil {
		return Decision{}, err
	}
	sh := s.shardFor(ts, key)
	now := s.clock.Now()
	if d := s.admit(sh, now); d != nil {
		return *d, nil
	}
	ttl = s.clampTTL(ttl)
	var out Decision
	if d := s.withShard(sh, func(now time.Time) {
		sh.c.attempts.Add(1)
		g, o, dead, expired := sh.table.renew(key, owner, token, ttl, now)
		s.expireOne(sh, dead, expired)
		out = Decision{Token: g.Token, Expiry: g.Expiry, Node: sh.node, Locality: sh.localityRatio()}
		if o == Renewed {
			if !s.persist("renew", sh, key, owner, token, expiryNS(g.Expiry)) {
				out = s.refused(sh)
				return
			}
			sh.c.renews.Add(1)
			out.Outcome = WireRenewed
			s.log.record(AccessEvent{Op: "renew", Tenant: sh.tenant, Key: key, Owner: owner, Token: token, ExpiryUnixNS: expiryNS(g.Expiry)})
		} else {
			sh.c.stales.Add(1)
			out.Outcome = WireStale
			s.log.record(AccessEvent{Op: "stale", Tenant: sh.tenant, Key: key, Owner: owner, Token: token})
		}
	}); d != nil {
		return *d, nil
	}
	return out, nil
}

// Release returns a lease; (owner, token) must name the live grant or
// the answer is WireStale (releasing after expiry is the classic
// fencing race, and the dead token stays dead).
func (s *Service) Release(tenant, key, owner string, token uint64) (Decision, error) {
	if key == "" || owner == "" {
		return Decision{}, fmt.Errorf("lockserv: empty key or owner")
	}
	ts, err := s.tenant(tenant)
	if err != nil {
		return Decision{}, err
	}
	sh := s.shardFor(ts, key)
	now := s.clock.Now()
	if d := s.admit(sh, now); d != nil {
		return *d, nil
	}
	var out Decision
	if d := s.withShard(sh, func(now time.Time) {
		sh.c.attempts.Add(1)
		o, dead, expired := sh.table.release(key, owner, token, now)
		s.expireOne(sh, dead, expired)
		out = Decision{Node: sh.node, Locality: sh.localityRatio()}
		if o == Released {
			if !s.persist("release", sh, key, owner, token, 0) {
				out = s.refused(sh)
				return
			}
			sh.c.releases.Add(1)
			sh.c.keys.Add(-1)
			out.Outcome = WireReleased
			s.log.record(AccessEvent{Op: "release", Tenant: sh.tenant, Key: key, Owner: owner, Token: token})
		} else {
			sh.c.stales.Add(1)
			out.Outcome = WireStale
			s.log.record(AccessEvent{Op: "stale", Tenant: sh.tenant, Key: key, Owner: owner, Token: token})
		}
	}); d != nil {
		return *d, nil
	}
	return out, nil
}

// Inspect reports the live lease on (tenant, key), if any. Inspection
// passes the same admission gauntlet as mutations — it holds the shard
// lock — but does not count as a table attempt.
func (s *Service) Inspect(tenant, key string) (Decision, error) {
	if key == "" {
		return Decision{}, fmt.Errorf("lockserv: empty key")
	}
	ts, err := s.tenant(tenant)
	if err != nil {
		return Decision{}, err
	}
	sh := s.shardFor(ts, key)
	now := s.clock.Now()
	if d := s.admit(sh, now); d != nil {
		return *d, nil
	}
	var out Decision
	if d := s.withShard(sh, func(now time.Time) {
		g, holder, held, dead, expired := sh.table.inspect(key, now)
		s.expireOne(sh, dead, expired)
		out = Decision{Node: sh.node, Locality: sh.localityRatio()}
		if held {
			out.Outcome = WireHeld
			out.Token = g.Token
			out.Expiry = g.Expiry
			out.Holder = holder
		} else {
			out.Outcome = WireFree
		}
	}); d != nil {
		return *d, nil
	}
	return out, nil
}

// SweepDue collects every lease past its deadline across all shards,
// returning how many expired. The daemon's background sweeper calls
// this on a tick so leases die promptly even with no traffic on their
// keys; tests call it directly after advancing a ManualClock. Shards
// that cannot be locked within OpTimeout are skipped this round (their
// leases still expire lazily on access).
func (s *Service) SweepDue() int {
	total := 0
	for _, ts := range s.order {
		for _, sh := range ts.shards {
			s.withShard(sh, func(now time.Time) {
				for _, dead := range sh.table.sweep(now) {
					s.expireOne(sh, dead, true)
					total++
				}
			})
		}
	}
	return total
}

// RefreshAffinity recomputes every shard's cached handoff-locality
// hint from the obs layer. Cheap enough for a ticker; never on the
// request path (a snapshot merges histograms under shard mutexes).
func (s *Service) RefreshAffinity() {
	for _, ts := range s.order {
		for _, sh := range ts.shards {
			if sh.metrics == nil {
				continue
			}
			ratio := sh.metrics.SnapshotLock().LocalityRatio()
			sh.locality.Store(math.Float64bits(ratio))
		}
	}
}

// Stats exports the per-tenant/per-shard counters in configuration
// order (deterministic bytes for stable state).
func (s *Service) Stats() Stats {
	out := Stats{
		Schema:   StatsSchema,
		Lock:     s.cfg.Lock,
		Nodes:    s.cfg.Nodes,
		Draining: s.draining.Load(),
	}
	for _, ts := range s.order {
		t := TenantStats{Tenant: ts.name}
		for _, sh := range ts.shards {
			t.Shards = append(t.Shards, sh.c.export(sh.index, sh.node))
		}
		out.Tenants = append(out.Tenants, t)
	}
	return out
}
