package lockserv

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Store is the service's durable state: a write-ahead log of lease
// transitions with periodic snapshot compaction, living in one
// directory:
//
//	wal.log           length-prefixed, checksummed frames (wal.go)
//	snapshot.json     last compaction: full lease/token state + seq
//	snapshot.json.tmp in-flight compaction (ignored by recovery)
//
// The store keeps its own shadow of the lease state (tenant → key →
// lease/token), updated on every append, so compaction never has to
// stop the service's shards to take a consistent picture: the
// snapshot is rendered from the shadow under the store's mutex alone.
// Recovery is the same path in reverse — load the snapshot, replay
// the WAL's valid prefix into the shadow, tolerate a torn tail by
// stopping at the last intact frame — and is deterministic: the
// RecoveryReport for a given byte state is always the same bytes.
//
// Crash-ordering notes, because this is where the safety lives:
//
//   - appends land in the page cache before the ack: one store into a
//     MAP_SHARED mapping (or, on the fallback path, one unbuffered
//     write syscall) — either way a process crash (SIGKILL) loses
//     nothing already appended, and only machine crashes need fsync,
//     which Sync provides for shutdown paths and compaction does
//     around the snapshot rename (fsync writes back mmap-dirtied
//     pages too);
//   - compaction writes snapshot.json.tmp, fsyncs, renames over
//     snapshot.json (atomic), and only then truncates the WAL. A
//     crash between rename and truncate leaves old WAL records whose
//     Seq <= the snapshot's — replay skips them;
//   - a write error is sticky: a store that cannot persist refuses
//     every later append, and the service fails the affected shard
//     ops closed rather than handing out tokens it cannot remember.
type Store struct {
	mu        sync.Mutex
	dir       string
	every     int
	readOnly  bool
	f         *os.File
	w         io.Writer
	mapw      *walMapper // non-nil when appends go through the mmap path
	direct    bool       // mmap path with no WrapWAL: encode frames in place
	encBuf    []byte     // reused frame-encoding buffer (indirect path)
	seq       uint64
	sinceSnap int
	state     map[string]*tenantShadow
	lastName  string        // most recent tenant seen by apply ...
	lastShad  *tenantShadow // ... and its shadow (services have few tenants)
	err       error
	report    RecoveryReport
}

// tenantShadow is one tenant's materialized durable state: one map
// entry per key holding both the live lease (if any) and the fencing
// counter, so the append path hashes each key string once.
type tenantShadow struct {
	keys map[string]*shadowKey
}

// shadowKey mirrors one key's durable state. maxToken is the fencing
// counter; live marks whether the lease fields are a live lease.
type shadowKey struct {
	live     bool
	owner    string
	token    uint64
	expiryNS int64
	maxToken uint64
}

// StoreOptions tunes OpenStore. The zero value is usable.
type StoreOptions struct {
	// SnapshotEvery is the number of WAL records between snapshot
	// compactions (default 4096; <= 0 means the default). Lower values
	// bound replay time at the cost of more snapshot writes.
	SnapshotEvery int
	// WrapWAL, when non-nil, wraps the writer WAL frames go through —
	// the crash-matrix tests interpose a fault.CrashWriter here.
	WrapWAL func(io.Writer) io.Writer
	// ReadOnly recovers the state and report without truncating the
	// torn tail or opening the WAL for appending; Append fails. Used
	// by `hbolockd -check-data` so inspecting a directory twice yields
	// byte-identical reports.
	ReadOnly bool
}

// defaultSnapshotEvery bounds replay length when unconfigured. 64k
// frames is ~7 MiB of WAL — replay stays near 100ms — while keeping
// the snapshot write+fsync+rename (~0.5ms on the benchmark host) rare
// enough that its amortized cost per append is single-digit ns.
const defaultSnapshotEvery = 65536

// RecoverySchema versions the deterministic recovery report.
const RecoverySchema = "hbolockd-recovery/v1"

// RecoveredTenant summarizes one tenant's restored state.
type RecoveredTenant struct {
	Tenant     string `json:"tenant"`
	LiveLeases int    `json:"live_leases"`
	Keys       int    `json:"keys"` // fencing counters carried (>= live leases)
	MaxToken   uint64 `json:"max_token"`
}

// RecoveryReport is the deterministic record of one recovery: for a
// given on-disk byte state it is always the same bytes, which CI
// checks by recovering twice and comparing.
type RecoveryReport struct {
	Schema         string            `json:"schema"`
	SnapshotSeq    uint64            `json:"snapshot_seq"`
	WALSeq         uint64            `json:"wal_seq"`
	FramesReplayed int               `json:"frames_replayed"`
	FramesSkipped  int               `json:"frames_skipped"` // pre-snapshot or duplicated tail
	TornTail       bool              `json:"torn_tail"`
	TruncatedBytes int64             `json:"truncated_bytes"`
	Tenants        []RecoveredTenant `json:"tenants"`
}

// WriteJSON emits the report as indented JSON with stable bytes.
func (r RecoveryReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Snapshot document: full durable state at a WAL sequence point, all
// slices sorted so the bytes are deterministic.
type snapshotDoc struct {
	Schema  string         `json:"schema"`
	Seq     uint64         `json:"seq"`
	Tenants []snapshotTent `json:"tenants"`
}

type snapshotTent struct {
	Tenant string          `json:"tenant"`
	Leases []snapshotLease `json:"leases"`
	Tokens []snapshotToken `json:"tokens"`
}

type snapshotLease struct {
	Key          string `json:"key"`
	Owner        string `json:"owner"`
	Token        uint64 `json:"token"`
	ExpiryUnixNS int64  `json:"expiry_unix_ns"`
}

type snapshotToken struct {
	Key   string `json:"key"`
	Token uint64 `json:"token"`
}

// snapshotSchema versions the on-disk snapshot document.
const snapshotSchema = "hbolockd-snap/v1"

const (
	walFileName      = "wal.log"
	snapshotFileName = "snapshot.json"
)

// OpenStore opens (creating if needed) the durable store in dir and
// recovers its state: snapshot first, then the WAL's valid prefix,
// with any torn tail truncated away so appends continue from the last
// intact frame. The returned store is ready for Append.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lockserv: store dir: %w", err)
	}
	s := &Store{
		dir:      dir,
		every:    opts.SnapshotEvery,
		readOnly: opts.ReadOnly,
		state:    make(map[string]*tenantShadow),
		report:   RecoveryReport{Schema: RecoverySchema},
	}

	// Load the last snapshot, if any.
	snapPath := filepath.Join(dir, snapshotFileName)
	if b, err := os.ReadFile(snapPath); err == nil {
		var doc snapshotDoc
		if err := json.Unmarshal(b, &doc); err != nil {
			return nil, fmt.Errorf("lockserv: snapshot %s: %w", snapPath, err)
		}
		if doc.Schema != snapshotSchema {
			return nil, fmt.Errorf("lockserv: snapshot schema %q (want %s)", doc.Schema, snapshotSchema)
		}
		for _, t := range doc.Tenants {
			sh := s.shadow(t.Tenant)
			for _, tok := range t.Tokens {
				sh.key(tok.Key).maxToken = tok.Token
			}
			for _, l := range t.Leases {
				k := sh.key(l.Key)
				k.live = true
				k.owner, k.token, k.expiryNS = l.Owner, l.Token, l.ExpiryUnixNS
			}
		}
		s.seq = doc.Seq
		s.report.SnapshotSeq = doc.Seq
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("lockserv: snapshot: %w", err)
	}

	// Replay the WAL's valid prefix over the snapshot.
	walPath := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("lockserv: wal: %w", err)
	}
	recs, validLen, tornBytes, err := decodeFrames(data)
	if err != nil {
		return nil, err
	}
	s.report.TornTail = tornBytes > 0
	s.report.TruncatedBytes = tornBytes
	for _, rec := range recs {
		if rec.Seq <= s.seq {
			s.report.FramesSkipped++
			continue
		}
		rec := rec
		s.apply(&rec)
		s.seq = rec.Seq
		s.report.FramesReplayed++
	}
	s.report.WALSeq = s.seq
	s.report.Tenants = s.summarize()

	if opts.ReadOnly {
		return s, nil
	}

	// Drop the torn tail so appends resume at the last intact frame,
	// then keep the file open for the service's appends. Appends go
	// through an mmap mapping where the platform supports it — same
	// page-cache durability as an unsynced write(), a fraction of the
	// cost — with plain write() as the fallback.
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lockserv: wal: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("lockserv: wal truncate: %w", err)
	}
	s.f = f
	// Size the mapping for a full snapshot cycle: every frames at a
	// generous 160 bytes each (the worst-case reservation's fixed part).
	if mw, err := newWalMapper(f, validLen, int64(s.every)*160); err == nil {
		s.mapw = mw
		s.w = mw
	} else {
		if _, err := f.Seek(validLen, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("lockserv: wal seek: %w", err)
		}
		s.w = f
	}
	if opts.WrapWAL != nil {
		s.w = opts.WrapWAL(s.w)
	} else if s.mapw != nil {
		// No interposed writer: frames can be rendered straight into
		// the mapping, skipping the staging buffer and its copy.
		s.direct = true
	}
	return s, nil
}

// shadow returns (creating) the tenant's shadow state.
func (s *Store) shadow(tenant string) *tenantShadow {
	sh := s.state[tenant]
	if sh == nil {
		sh = &tenantShadow{keys: make(map[string]*shadowKey)}
		s.state[tenant] = sh
	}
	return sh
}

// key returns (creating) one key's shadow entry.
func (t *tenantShadow) key(k string) *shadowKey {
	e := t.keys[k]
	if e == nil {
		e = &shadowKey{}
		t.keys[k] = e
	}
	return e
}

// apply folds one record into the shadow state. Application is
// idempotent for identical records, which is what makes duplicated
// tail frames (CrashDup) harmless.
func (s *Store) apply(rec *walRecord) {
	sh := s.lastShad
	if sh == nil || rec.Tenant != s.lastName {
		sh = s.shadow(rec.Tenant)
		s.lastName, s.lastShad = rec.Tenant, sh
	}
	k := sh.key(rec.Key)
	switch rec.Op {
	case "grant", "renew":
		k.live = true
		k.owner, k.token, k.expiryNS = rec.Owner, rec.Token, rec.ExpiryUnixNS
	case "release", "expire":
		// Only the named token's lease dies: a release frame replayed
		// over a later re-grant (possible only with a corrupted
		// sequence, but cheap to guard) must not kill the newer lease.
		if k.live && k.token == rec.Token {
			k.live = false
		}
	}
	if k.maxToken < rec.Token {
		k.maxToken = rec.Token
	}
}

// summarize renders the shadow state as sorted per-tenant summaries.
func (s *Store) summarize() []RecoveredTenant {
	names := make([]string, 0, len(s.state))
	for n := range s.state {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]RecoveredTenant, 0, len(names))
	for _, n := range names {
		sh := s.state[n]
		rt := RecoveredTenant{Tenant: n, Keys: len(sh.keys)}
		for _, k := range sh.keys {
			if k.live {
				rt.LiveLeases++
			}
			if k.maxToken > rt.MaxToken {
				rt.MaxToken = k.maxToken
			}
		}
		out = append(out, rt)
	}
	return out
}

// Recovery returns the report of the recovery OpenStore performed.
func (s *Store) Recovery() RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Err returns the sticky append error, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Failed reports whether the store has gone sticky-failed.
func (s *Store) Failed() bool { return s.Err() != nil }

// RestoredLease is one recovered live lease, surfaced to the service
// (and its access log) at boot.
type RestoredLease struct {
	Tenant       string
	Key          string
	Owner        string
	Token        uint64
	ExpiryUnixNS int64
}

// Restored returns every recovered live lease plus the fencing
// counters per tenant, in sorted order so the service's restore pass
// (and the `restore` access-log events it emits) is deterministic.
func (s *Store) Restored() (leases []RestoredLease, tokens map[string]map[string]uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tokens = make(map[string]map[string]uint64, len(s.state))
	names := make([]string, 0, len(s.state))
	for n := range s.state {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sh := s.state[n]
		tm := make(map[string]uint64, len(sh.keys))
		live := make([]string, 0, len(sh.keys))
		for k, e := range sh.keys {
			tm[k] = e.maxToken
			if e.live {
				live = append(live, k)
			}
		}
		tokens[n] = tm
		sort.Strings(live)
		for _, k := range live {
			e := sh.keys[k]
			leases = append(leases, RestoredLease{
				Tenant: n, Key: k, Owner: e.owner, Token: e.token, ExpiryUnixNS: e.expiryNS,
			})
		}
	}
	return leases, tokens
}

// Append persists one lease transition: it assigns the next sequence
// number, folds the record into the shadow state, writes the frame in
// a single syscall, and triggers compaction when due. An error makes
// the store sticky-failed.
func (s *Store) Append(op, tenant, key, owner string, token uint64, expiryNS int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.readOnly {
		s.err = fmt.Errorf("lockserv: append to read-only store")
		return s.err
	}
	rec := walRecord{
		Seq: s.seq + 1, Op: op, Tenant: tenant, Key: key,
		Owner: owner, Token: token, ExpiryUnixNS: expiryNS,
	}
	if s.direct {
		// In-place path: reserve a worst-case span of the mapping (the
		// fixed JSON skeleton plus full-width integers, with every
		// string byte at its 6-byte \u00xx escape bound) and render the
		// frame straight into it.
		need := walFrameHeader + 160 + 6*(len(tenant)+len(key)+len(owner))
		dst, rerr := s.mapw.reserve(need)
		if rerr == nil {
			var frame []byte
			if frame, rerr = appendFrame(dst, &rec); rerr == nil {
				rerr = s.mapw.commit(frame)
			}
		}
		if rerr != nil {
			s.err = fmt.Errorf("lockserv: wal append: %w", rerr)
			return s.err
		}
	} else {
		frame, err := appendFrame(s.encBuf[:0], &rec)
		if err != nil {
			s.err = err
			return err
		}
		s.encBuf = frame
		if _, err := s.w.Write(frame); err != nil {
			s.err = fmt.Errorf("lockserv: wal append: %w", err)
			return s.err
		}
	}
	s.seq = rec.Seq
	s.apply(&rec)
	s.sinceSnap++
	if s.sinceSnap >= s.every {
		if err := s.compactLocked(); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// Seq returns the last assigned WAL sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Compact forces a snapshot + WAL reset outside the usual cadence.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := s.compactLocked(); err != nil {
		s.err = err
	}
	return s.err
}

// compactLocked snapshots the shadow state and resets the WAL:
// tmp-write, fsync, atomic rename, then truncate. Crash windows are
// covered by seq skipping (see the Store doc comment).
func (s *Store) compactLocked() error {
	doc := snapshotDoc{Schema: snapshotSchema, Seq: s.seq}
	names := make([]string, 0, len(s.state))
	for n := range s.state {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sh := s.state[n]
		t := snapshotTent{Tenant: n, Leases: []snapshotLease{}, Tokens: []snapshotToken{}}
		keys := make([]string, 0, len(sh.keys))
		for k := range sh.keys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := sh.keys[k]
			t.Tokens = append(t.Tokens, snapshotToken{Key: k, Token: e.maxToken})
			if e.live {
				t.Leases = append(t.Leases, snapshotLease{Key: k, Owner: e.owner, Token: e.token, ExpiryUnixNS: e.expiryNS})
			}
		}
		doc.Tenants = append(doc.Tenants, t)
	}
	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, snapshotFileName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("lockserv: snapshot: %w", err)
	}
	if _, err := tf.Write(b); err != nil {
		tf.Close()
		return fmt.Errorf("lockserv: snapshot: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("lockserv: snapshot sync: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("lockserv: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFileName)); err != nil {
		return fmt.Errorf("lockserv: snapshot rename: %w", err)
	}
	if s.mapw != nil {
		s.mapw.reset()
	} else {
		if err := s.f.Truncate(0); err != nil {
			return fmt.Errorf("lockserv: wal reset: %w", err)
		}
		if _, err := s.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("lockserv: wal reset: %w", err)
		}
	}
	s.sinceSnap = 0
	return nil
}

// Sync fsyncs the WAL — the shutdown path's durability barrier
// against machine (not just process) crashes.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Close fsyncs and closes the WAL. A clean close trims the mmap
// preallocation back to the exact data length; a sticky-failed store
// leaves the bytes untouched so the damage stays inspectable. The
// sticky append error, if any, is reported here as well so shutdown
// paths cannot miss it.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	if s.mapw != nil {
		if err := s.mapw.close(s.err == nil); err != nil {
			firstErr = err
		}
		s.mapw = nil
	}
	if s.f != nil {
		if err := s.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.f = nil
	}
	if s.err != nil {
		return s.err
	}
	return firstErr
}
