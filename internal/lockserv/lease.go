// Package lockserv is the transport-independent core of hbolockd, the
// live lock/lease service built on the native NUMA-aware lock stack
// (internal/core). It generalizes the paper's thesis — backoff and
// handoff should respect communication distance — to a service tier:
//
//   - every tenant's key namespace is sharded, and each shard's waiter
//     queue is arbitrated by a configurable native lock from the
//     hbo.NewLock family, acquired through the timed/abortable path so
//     a saturated shard sheds load instead of queueing unboundedly;
//   - shards have home NUCA nodes and operations run on worker threads
//     registered to those nodes, so shard-lock handoffs stay node-local
//     (the obs layer's locality metrics verify this live);
//   - grants carry node-affinity hints so distance-aware clients can
//     route follow-up traffic to the shard's home node;
//   - clients are expected to retry with capped exponential backoff —
//     the paper's backoff policy applied at the service tier — steered
//     by explicit Retry-After hints in every backpressure response.
//
// Leases have TTL expiry and monotonic fencing tokens. The whole state
// machine is driven by an injectable Clock, so every race the service
// must survive (renew vs expiry, release with a stale token, session
// death mid-handoff) is reproducible deterministically in tests.
package lockserv

import (
	"container/heap"
	"time"
)

// Outcome classifies the result of one lease-table operation. The
// zero value is invalid so an unset outcome is visible in tests.
type Outcome int

const (
	outcomeInvalid Outcome = iota
	// Granted: the key was free (or expired) and a new lease was issued
	// with a fresh, strictly larger fencing token.
	Granted
	// Renewed: the holder extended its own live lease; token unchanged.
	Renewed
	// Released: the holder returned its live lease.
	Released
	// Conflict: another owner holds a live lease on the key.
	Conflict
	// Stale: the (owner, token) pair does not match a live lease — the
	// lease expired, was released, or was re-granted to someone else.
	// The presented token is dead forever; fencing depends on this.
	Stale
)

// String renders the outcome for logs and tables.
func (o Outcome) String() string {
	switch o {
	case Granted:
		return "granted"
	case Renewed:
		return "renewed"
	case Released:
		return "released"
	case Conflict:
		return "conflict"
	case Stale:
		return "stale"
	}
	return "invalid"
}

// lease is one live grant. Expiry is compared against the injected
// clock only; nothing in the table reads wall time on its own.
type lease struct {
	owner  string
	token  uint64
	expiry time.Time
}

// expEntry is a lazy expiry-heap entry. Renewals push a new entry
// rather than re-keying the old one; a popped entry whose (token,
// expiry) no longer matches the live lease is simply ignored.
type expEntry struct {
	at    time.Time
	key   string
	token uint64
}

// expHeap is a min-heap of expEntry by time.
type expHeap []expEntry

func (h expHeap) Len() int            { return len(h) }
func (h expHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h expHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expHeap) Push(x interface{}) { *h = append(*h, x.(expEntry)) }
func (h *expHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// leaseTable is the per-shard lease state machine. It is a plain data
// structure with no internal locking: the owning shard serializes all
// access through its native lock, which is the point of the design —
// the lock algorithm under test is the lock arbitrating the service.
type leaseTable struct {
	leases map[string]*lease
	// tokens is the per-key fencing counter. It outlives leases: a key
	// that expires and is re-granted continues the same monotonic
	// sequence, so an old holder's token can never validate again.
	tokens  map[string]uint64
	expires expHeap
}

func newLeaseTable() *leaseTable {
	return &leaseTable{
		leases: make(map[string]*lease),
		tokens: make(map[string]uint64),
	}
}

// Grant is the successful-acquire view returned to clients.
type Grant struct {
	Token  uint64
	Expiry time.Time
}

// deadLease records a collected expiry so the shard can log and count
// it: the fencing verifier needs the token of every lease that died.
type deadLease struct {
	key   string
	owner string
	token uint64
}

// expireKey drops the key's lease if it has fallen due, returning the
// dead lease for the caller (the shard) to log and count.
func (lt *leaseTable) expireKey(key string, now time.Time) (deadLease, bool) {
	l := lt.leases[key]
	if l == nil || l.expiry.After(now) {
		return deadLease{}, false
	}
	delete(lt.leases, key)
	return deadLease{key: key, owner: l.owner, token: l.token}, true
}

// sweep expires every lease due at or before now, returning the dead.
// The heap is lazy: entries for renewed or already-dead leases pop and
// are discarded without effect.
func (lt *leaseTable) sweep(now time.Time) []deadLease {
	var dead []deadLease
	for len(lt.expires) > 0 && !lt.expires[0].at.After(now) {
		e := heap.Pop(&lt.expires).(expEntry)
		l := lt.leases[e.key]
		if l == nil || l.token != e.token || l.expiry.After(now) {
			continue // renewed, released, or re-granted since
		}
		delete(lt.leases, e.key)
		dead = append(dead, deadLease{key: e.key, owner: l.owner, token: l.token})
	}
	return dead
}

// nextExpiry reports the earliest (possibly stale) pending expiry, for
// sweeper pacing. ok is false when nothing is pending.
func (lt *leaseTable) nextExpiry() (time.Time, bool) {
	if len(lt.expires) == 0 {
		return time.Time{}, false
	}
	return lt.expires[0].at, true
}

// acquire grants key to owner for ttl, renews it if owner already
// holds it, or reports the conflicting holder. dead carries a lease
// collected lazily on the way in (the caller logs and counts it).
func (lt *leaseTable) acquire(key, owner string, ttl time.Duration, now time.Time) (g Grant, o Outcome, holder string, dead deadLease, expired bool) {
	dead, expired = lt.expireKey(key, now)
	if l := lt.leases[key]; l != nil {
		if l.owner != owner {
			return Grant{Token: l.token, Expiry: l.expiry}, Conflict, l.owner, dead, expired
		}
		// Reentrant acquire by the live holder extends the lease under
		// its existing token, exactly like renew.
		l.expiry = now.Add(ttl)
		heap.Push(&lt.expires, expEntry{at: l.expiry, key: key, token: l.token})
		return Grant{Token: l.token, Expiry: l.expiry}, Renewed, owner, dead, expired
	}
	tok := lt.tokens[key] + 1
	lt.tokens[key] = tok
	l := &lease{owner: owner, token: tok, expiry: now.Add(ttl)}
	lt.leases[key] = l
	heap.Push(&lt.expires, expEntry{at: l.expiry, key: key, token: tok})
	return Grant{Token: tok, Expiry: l.expiry}, Granted, owner, dead, expired
}

// renew extends the lease iff (owner, token) still names the live
// lease. A renew that loses the race with expiry comes back Stale —
// the client must re-acquire and will receive a larger token.
func (lt *leaseTable) renew(key, owner string, token uint64, ttl time.Duration, now time.Time) (Grant, Outcome, deadLease, bool) {
	dead, expired := lt.expireKey(key, now)
	l := lt.leases[key]
	if l == nil || l.owner != owner || l.token != token {
		return Grant{}, Stale, dead, expired
	}
	l.expiry = now.Add(ttl)
	heap.Push(&lt.expires, expEntry{at: l.expiry, key: key, token: token})
	return Grant{Token: token, Expiry: l.expiry}, Renewed, dead, expired
}

// release drops the lease iff (owner, token) still names the live
// lease; releasing after expiry (or with any stale token) is Stale and
// leaves the table untouched.
func (lt *leaseTable) release(key, owner string, token uint64, now time.Time) (Outcome, deadLease, bool) {
	dead, expired := lt.expireKey(key, now)
	l := lt.leases[key]
	if l == nil || l.owner != owner || l.token != token {
		return Stale, dead, expired
	}
	delete(lt.leases, key)
	return Released, dead, expired
}

// truncate shortens the live lease on key to expire at t if that is
// earlier than its current expiry — the session-expiry fault path.
func (lt *leaseTable) truncate(key string, t time.Time) bool {
	l := lt.leases[key]
	if l == nil || !l.expiry.After(t) {
		return false
	}
	l.expiry = t
	heap.Push(&lt.expires, expEntry{at: t, key: key, token: l.token})
	return true
}

// restore reinstates a recovered lease with its original deadline and
// carries the fencing counter forward — the crash-recovery path. The
// lease may already be past due on the injected clock; lazy expiry or
// the next sweep collects it exactly as if the process had never died.
func (lt *leaseTable) restore(key, owner string, token uint64, expiry time.Time) {
	lt.leases[key] = &lease{owner: owner, token: token, expiry: expiry}
	heap.Push(&lt.expires, expEntry{at: expiry, key: key, token: token})
	if lt.tokens[key] < token {
		lt.tokens[key] = token
	}
}

// restoreToken carries a fencing counter across a restart for a key
// with no live lease, so re-grants stay strictly monotonic.
func (lt *leaseTable) restoreToken(key string, token uint64) {
	if lt.tokens[key] < token {
		lt.tokens[key] = token
	}
}

// inspect returns the live lease for key after lazy expiry.
func (lt *leaseTable) inspect(key string, now time.Time) (g Grant, owner string, held bool, dead deadLease, expired bool) {
	dead, expired = lt.expireKey(key, now)
	l := lt.leases[key]
	if l == nil {
		return Grant{}, "", false, dead, expired
	}
	return Grant{Token: l.token, Expiry: l.expiry}, l.owner, true, dead, expired
}
