// Package core implements the HBO paper's lock algorithms as native Go
// locks over sync/atomic: TATAS, TATAS_EXP, MCS, CLH, RH, HBO, HBO_GT
// and HBO_GT_SD.
//
// Go offers no thread-local storage and no CPU pinning, so the NUCA node
// a goroutine runs in cannot be discovered from inside the runtime. The
// library instead works with logical node ids: the caller registers each
// worker goroutine with a node id (however it chooses to map workers to
// nodes — OS pinning via external tools, sharding, or simply spreading
// round-robin) and passes the returned *Thread to Acquire/Release. This
// is the substitution DESIGN.md documents for the paper's "node_id in a
// thread-private register".
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/lockspec"
)

// Runtime holds the logical topology and the thread registry that locks
// are built against. Queue locks size their per-thread queue-node arrays
// from MaxThreads.
type Runtime struct {
	nodes       int
	clusterSize int // nodes per cluster; <=1 means flat
	maxThreads  int
	nextID      atomic.Int64
}

// NewRuntime creates a runtime for a machine with the given number of
// logical NUCA nodes, supporting up to maxThreads registered threads.
func NewRuntime(nodes, maxThreads int) *Runtime {
	if nodes < 1 {
		panic("core: NewRuntime needs at least one node")
	}
	if maxThreads < 1 {
		panic("core: NewRuntime needs at least one thread")
	}
	return &Runtime{nodes: nodes, maxThreads: maxThreads}
}

// NewRuntimeHierarchical creates a runtime whose nodes are grouped into
// clusters of clusterSize (a hierarchical NUCA — e.g. a NUMA machine
// built from chip multiprocessors). HBO_HIER uses the extra level;
// other locks treat the machine as flat.
func NewRuntimeHierarchical(nodes, clusterSize, maxThreads int) *Runtime {
	r := NewRuntime(nodes, maxThreads)
	if clusterSize < 1 {
		panic("core: clusterSize must be >= 1")
	}
	r.clusterSize = clusterSize
	return r
}

// Distance classifies how far apart two nodes are: 0 same node, 1 same
// cluster (or any other node on a flat runtime), 2 across clusters.
func (r *Runtime) Distance(a, b int) int {
	switch {
	case a == b:
		return 0
	case r.clusterSize <= 1:
		return 1
	case a/r.clusterSize == b/r.clusterSize:
		return 1
	default:
		return 2
	}
}

// Nodes returns the number of logical NUCA nodes.
func (r *Runtime) Nodes() int { return r.nodes }

// MaxThreads returns the registration capacity.
func (r *Runtime) MaxThreads() int { return r.maxThreads }

// Thread identifies a registered worker: a dense id used to index
// per-thread lock state, and the logical NUCA node the worker runs in.
// A Thread must be used by one goroutine at a time.
type Thread struct {
	id   int
	node int
	rt   *Runtime
	// clhSlots maps lock ids to this thread's rotating CLH node state;
	// accessed only by the owning goroutine.
	clhSlots map[uint64]*clhSlot
}

// RegisterThread allocates a Thread bound to the given logical node.
// It is safe to call from multiple goroutines.
func (r *Runtime) RegisterThread(node int) *Thread {
	if node < 0 || node >= r.nodes {
		panic(fmt.Sprintf("core: node %d out of range [0,%d)", node, r.nodes))
	}
	id := int(r.nextID.Add(1)) - 1
	if id >= r.maxThreads {
		panic(fmt.Sprintf("core: more than %d threads registered", r.maxThreads))
	}
	return &Thread{id: id, node: node, rt: r, clhSlots: make(map[uint64]*clhSlot)}
}

// ID returns the thread's dense id.
func (t *Thread) ID() int { return t.id }

// Node returns the thread's logical NUCA node.
func (t *Thread) Node() int { return t.node }

// Lock is a mutual-exclusion lock acquired on behalf of a registered
// thread. Implementations are safe for concurrent use; each *Thread may
// participate in one acquire at a time per lock.
type Lock interface {
	Name() string
	Acquire(t *Thread)
	Release(t *Thread)
}

// Locker adapts a Lock plus a Thread to sync.Locker, for APIs that want
// the standard interface.
type Locker struct {
	L Lock
	T *Thread
}

// Lock acquires the underlying lock for the bound thread.
func (lk Locker) Lock() { lk.L.Acquire(lk.T) }

// Unlock releases the underlying lock for the bound thread.
func (lk Locker) Unlock() { lk.L.Release(lk.T) }

// Names lists the algorithms in the paper's table order, derived from
// the lockspec registry.
func Names() []string { return lockspec.PaperNames() }

// ExtendedNames lists the additional algorithms beyond the paper's
// eight (simulator-only protocols omitted); see
// internal/simlock.ExtendedNames for their provenance.
func ExtendedNames() []string { return lockspec.ExtendedNames(false) }

// AllNames lists the paper's eight plus the extensions.
func AllNames() []string { return lockspec.AllNames(false) }

// New builds the named lock on runtime r with tuning tun: spec-backed
// algorithms instantiate through FromSpec, the rest keep hand-written
// native implementations. It panics on an unknown name.
func New(name string, r *Runtime, tun Tuning) Lock {
	if s := lockspec.Lookup(name); s != nil && s.Backed() && !s.SimOnly {
		return FromSpec(s, r, tun)
	}
	switch name {
	case "MCS":
		return NewMCS(r)
	case "CLH":
		return NewCLH(r)
	case "RH":
		return NewRH(r, tun)
	case "ANDERSON":
		return NewAnderson(r)
	case "REACTIVE":
		return NewReactive(r, tun)
	case "HBO_HIER":
		return NewHBOHier(r, tun)
	case "COHORT":
		return NewCohort(r)
	}
	panic(fmt.Sprintf("core: unknown lock %q", name))
}

// lockIDs hands out unique ids used by CLH's per-thread slot map.
var lockIDs atomic.Uint64

// cacheLinePad separates hot words; 64 bytes covers common hardware.
type cacheLinePad struct{ _ [64]byte }

// paddedUint64 is an atomic word alone on its cache line.
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// paddedInt64 is an atomic signed word alone on its cache line.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}
