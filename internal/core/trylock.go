package core

import "time"

// TryLocker is implemented by algorithms that support a non-blocking
// acquisition attempt. Queue locks whose enqueue commits the thread
// (CLH, TICKET, ANDERSON, COHORT) cannot offer it without the timeout
// protocols of Scott & Scherer (PPoPP 2001) — cited by the paper — and
// are deliberately left out.
type TryLocker interface {
	Lock
	// TryAcquire attempts one acquisition without waiting and reports
	// whether the lock was obtained.
	TryAcquire(t *Thread) bool
}

// TryAcquire attempts a single cas of the caller's node id. (The
// spec-backed algorithms — TATAS family, HBO family, CNA — carry their
// try paths in their specs' TryBody.)
func (l *HBOHier) TryAcquire(t *Thread) bool {
	return l.word.v.CompareAndSwap(hboFree, hboNodeVal(t.node))
}

// TryAcquire attempts to take the caller's node copy when it is free or
// locally free. When the lock lives in the other node, it makes one
// non-blocking steal attempt (claiming and, on failure, releasing the
// node-winner role).
func (l *RH) TryAcquire(t *Thread) bool {
	my := &l.copies[t.node].v
	val := rhThreadVal(t.id)
	if my.CompareAndSwap(rhFree, val) || my.CompareAndSwap(rhLFree, val) {
		return true
	}
	if l.nodes != 2 || !my.CompareAndSwap(rhRemote, rhTaken) {
		return false
	}
	// One shot at the other node's copy.
	other := &l.copies[1-t.node].v
	if v := other.Load(); v == rhFree || v == rhLFree {
		if other.CompareAndSwap(v, rhRemote) {
			if !my.CompareAndSwap(rhTaken, val) {
				panic("core: RH node-winner copy stolen")
			}
			return true
		}
	}
	// Steal failed; give the winner role back.
	if !my.CompareAndSwap(rhTaken, rhRemote) {
		panic("core: RH node-winner copy stolen")
	}
	return false
}

// TryAcquire succeeds only when the queue is empty: it swings the tail
// from nil to this thread's node in one step, so no waiting can occur.
func (l *MCS) TryAcquire(t *Thread) bool {
	q := &l.qnodes[t.id]
	q.next.v.Store(-1)
	return l.tail.v.CompareAndSwap(-1, int64(t.id))
}

// Interface checks for the hand-written TryLocker implementations (the
// spec-backed ones are checked in spec.go).
var (
	_ TryLocker = (*HBOHier)(nil)
	_ TryLocker = (*RH)(nil)
	_ TryLocker = (*MCS)(nil)
)

// AcquireTimeout repeatedly attempts TryAcquire with exponential backoff
// until it succeeds or the deadline passes, reporting success. Polling a
// try-lock forfeits queue-lock ordering guarantees, which is why only
// algorithms whose blocking path is itself a polling loop offer
// TryAcquire; for those, this helper is the natural timed acquire.
// (True timeout-capable queue locks are a research topic of their own —
// Scott & Scherer PPoPP 2001, Scott PODC 2002, both cited by the paper.)
func AcquireTimeout(l TryLocker, t *Thread, d time.Duration, tun Tuning) bool {
	deadline := time.Now().Add(d)
	b := tun.BackoffBase
	if b < 1 {
		b = 64
	}
	y := tun.YieldEvery()
	for {
		if l.TryAcquire(t) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		backoff(&b, max(tun.BackoffFactor, 2), max(tun.BackoffCap, b), y)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
