package core

import (
	"runtime"
	"sync/atomic"
)

// Barrier is a sense-reversing centralized barrier for registered
// threads — the primitive SPLASH-2 style programs pair with these locks
// between phases. Reusable across episodes.
type Barrier struct {
	parties int64
	count   atomic.Int64
	sense   atomic.Uint64
	// local sense per thread.
	local []uint64
}

// NewBarrier builds a barrier for parties threads on runtime r.
func NewBarrier(r *Runtime, parties int) *Barrier {
	if parties < 1 || parties > r.maxThreads {
		panic("core: barrier parties out of range")
	}
	b := &Barrier{parties: int64(parties), local: make([]uint64, r.maxThreads)}
	b.count.Store(int64(parties))
	return b
}

// Wait blocks thread t until all parties have arrived at this episode.
func (b *Barrier) Wait(t *Thread) {
	b.local[t.id] ^= 1
	want := b.local[t.id]
	if b.count.Add(-1) == 0 {
		b.count.Store(b.parties)
		b.sense.Store(want)
		return
	}
	for b.sense.Load() != want {
		runtime.Gosched()
	}
}
