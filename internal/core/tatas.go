package core

import "runtime"

// TATAS is the traditional test-and-test&set lock. Storage is one word;
// cost does not grow with the number of threads.
type TATAS struct {
	_    cacheLinePad
	word paddedUint64
	probeHolder
}

// NewTATAS returns an unlocked TATAS lock.
func NewTATAS() *TATAS { return &TATAS{} }

// Name returns "TATAS".
func (l *TATAS) Name() string { return "TATAS" }

// Acquire spins until the lock is obtained.
func (l *TATAS) Acquire(t *Thread) {
	if l.word.v.Swap(1) == 0 {
		return
	}
	l.acquireSlowpath(t)
}

func (l *TATAS) acquireSlowpath(t *Thread) {
	l.contended(t)
	var spins int64
	for {
		// Test phase: read until the lock looks free.
		for l.word.v.Load() != 0 {
			spins++
			runtime.Gosched()
		}
		if l.word.v.Swap(1) == 0 {
			l.spun(t, spins)
			return
		}
	}
}

// Release unlocks.
func (l *TATAS) Release(t *Thread) { l.word.v.Store(0) }

// TATASExp is TATAS with Ethernet-style exponential backoff between
// test&set attempts.
type TATASExp struct {
	_    cacheLinePad
	word paddedUint64
	tun  Tuning
	probeHolder
}

// NewTATASExp returns an unlocked TATAS_EXP lock.
func NewTATASExp(tun Tuning) *TATASExp { return &TATASExp{tun: tun} }

// Name returns "TATAS_EXP".
func (l *TATASExp) Name() string { return "TATAS_EXP" }

// Acquire obtains the lock, backing off exponentially under contention.
func (l *TATASExp) Acquire(t *Thread) {
	if l.word.v.Swap(1) == 0 {
		return
	}
	l.acquireSlowpath(t)
}

func (l *TATASExp) acquireSlowpath(t *Thread) {
	l.contended(t)
	b := l.tun.BackoffBase
	y := l.tun.yieldThreshold()
	var spins int64
	for {
		spins++
		backoff(&b, l.tun.BackoffFactor, l.tun.BackoffCap, y)
		if l.word.v.Load() != 0 {
			continue
		}
		if l.word.v.Swap(1) == 0 {
			l.spun(t, spins)
			return
		}
	}
}

// Release unlocks.
func (l *TATASExp) Release(t *Thread) { l.word.v.Store(0) }
