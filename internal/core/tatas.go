package core

import "repro/internal/lockspec"

// TATAS and TATAS_EXP are spec-backed (internal/lockspec); only the
// constructors remain here. Storage is one word; cost does not grow
// with the number of threads.

// NewTATAS returns an unlocked test-and-test&set lock.
func NewTATAS() Lock { return FromSpec(lockspec.Lookup("TATAS"), nil, DefaultTuning()) }

// NewTATASExp returns an unlocked TATAS lock with Ethernet-style
// exponential backoff between test&set attempts.
func NewTATASExp(tun Tuning) Lock { return FromSpec(lockspec.Lookup("TATAS_EXP"), nil, tun) }
