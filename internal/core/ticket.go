package core

import (
	"runtime"

	"repro/internal/lockspec"
)

// The ticket lock is spec-backed (internal/lockspec): fetch-and-increment
// takes a ticket; the release publishes the next number. FIFO-fair and
// two words of storage, but every waiter re-reads the grant word on each
// handover. This file keeps its constructor and the Anderson array lock.

// NewTicket returns an unlocked ticket lock.
func NewTicket() Lock { return FromSpec(lockspec.Lookup("TICKET"), nil, DefaultTuning()) }

// Anderson is Anderson's array-based queue lock: contenders claim slots
// in a circular flag array and spin each on their own slot.
type Anderson struct {
	tail  paddedUint64
	slots []paddedUint64
	probeHolder
	// mySlot is each thread's current slot position.
	mySlot []uint64
	size   uint64
}

// NewAnderson returns an unlocked Anderson lock sized for r's capacity.
func NewAnderson(r *Runtime) *Anderson {
	l := &Anderson{
		slots:  make([]paddedUint64, r.maxThreads+1),
		mySlot: make([]uint64, r.maxThreads),
		size:   uint64(r.maxThreads + 1),
	}
	l.slots[0].v.Store(1)
	return l
}

// Name returns "ANDERSON".
func (l *Anderson) Name() string { return "ANDERSON" }

// Acquire claims the next slot and waits for its grant flag.
func (l *Anderson) Acquire(t *Thread) {
	pos := l.tail.v.Add(1) - 1
	l.mySlot[t.id] = pos
	s := &l.slots[pos%l.size].v
	if s.Load() == 0 {
		l.contended(t)
		var spins int64
		for s.Load() == 0 {
			spins++
			runtime.Gosched()
		}
		l.spun(t, spins)
	}
	s.Store(0) // reset for the next lap
}

// Release grants the successor slot.
func (l *Anderson) Release(t *Thread) {
	l.slots[(l.mySlot[t.id]+1)%l.size].v.Store(1)
}
