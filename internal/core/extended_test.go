package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lockspec"
)

func TestExtendedRegistryNative(t *testing.T) {
	if len(AllNames()) != len(Names())+len(ExtendedNames()) {
		t.Fatal("AllNames size wrong")
	}
	r := newTestRuntime(2, 4)
	for _, name := range ExtendedNames() {
		l := New(name, r, DefaultTuning())
		if l.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, l.Name())
		}
	}
}

func TestExtendedMutualExclusionNative(t *testing.T) {
	const workers, iters = 8, 300
	for _, name := range ExtendedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := newTestRuntime(2, workers)
			l := New(name, r, DefaultTuning())
			counter := 0
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(node int) {
					defer wg.Done()
					th := r.RegisterThread(node)
					for i := 0; i < iters; i++ {
						l.Acquire(th)
						counter++
						l.Release(th)
					}
				}(w % 2)
			}
			wg.Wait()
			if counter != workers*iters {
				t.Fatalf("%s: counter = %d, want %d", name, counter, workers*iters)
			}
		})
	}
}

func TestHierarchicalRuntimeDistance(t *testing.T) {
	r := NewRuntimeHierarchical(8, 2, 4)
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 2}, {2, 3, 1}, {6, 1, 2},
	}
	for _, c := range cases {
		if got := r.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	flat := NewRuntime(4, 1)
	if flat.Distance(0, 3) != 1 {
		t.Error("flat runtime distance should be 1")
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic for clusterSize < 1")
		}
	}()
	NewRuntimeHierarchical(4, 0, 1)
}

func TestHBOHierOnHierarchicalRuntime(t *testing.T) {
	const workers = 8
	r := NewRuntimeHierarchical(4, 2, workers)
	l := NewHBOHier(r, DefaultTuning())
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			th := r.RegisterThread(node)
			for i := 0; i < 300; i++ {
				l.Acquire(th)
				counter++
				l.Release(th)
			}
		}(w % 4)
	}
	wg.Wait()
	if counter != workers*300 {
		t.Fatalf("counter = %d", counter)
	}
}

// TestTicketFIFONative: with a single contender at a time the ticket
// order is trivially preserved; this exercises sequencing under real
// concurrency by checking the final ticket counts match.
func TestTicketFIFONative(t *testing.T) {
	r := newTestRuntime(1, 4)
	l := NewTicket().(specQ)
	var wg sync.WaitGroup
	const iters = 500
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := r.RegisterThread(0)
			for i := 0; i < iters; i++ {
				l.Acquire(th)
				l.Release(th)
			}
		}()
	}
	wg.Wait()
	next := l.peek(l.spec.WordIndex("next"), 0)
	owner := l.peek(l.spec.WordIndex("owner"), 0)
	if next != 4*iters || owner != 4*iters {
		t.Fatalf("tickets %d/%d, want %d", next, owner, 4*iters)
	}
	if err := l.Quiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestAndersonWraparoundNative exercises the ring with far more
// acquisitions than slots.
func TestAndersonWraparoundNative(t *testing.T) {
	r := newTestRuntime(1, 3)
	l := NewAnderson(r)
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := r.RegisterThread(0)
			for i := 0; i < 400; i++ {
				l.Acquire(th)
				counter++
				l.Release(th)
			}
		}()
	}
	wg.Wait()
	if counter != 1200 {
		t.Fatalf("counter = %d", counter)
	}
}

// TestReactiveModeFlipsNative drives sustained contention and then a
// solo phase, checking both mode transitions.
func TestReactiveModeFlipsNative(t *testing.T) {
	r := newTestRuntime(2, 8)
	l := NewReactive(r, DefaultTuning())
	var wg sync.WaitGroup
	sawQueue := false
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			th := r.RegisterThread(node)
			for i := 0; i < 500; i++ {
				l.Acquire(th)
				if l.mode.v.Load() == 1 {
					mu.Lock()
					sawQueue = true
					mu.Unlock()
				}
				l.Release(th)
			}
		}(w % 2)
	}
	wg.Wait()
	if !sawQueue {
		t.Log("note: reactive lock never left spin mode (host scheduling dependent)")
	}
	// Solo phase must drive it back to (or keep it in) spin mode.
	th := &Thread{id: 0, node: 0, rt: r, clhSlots: map[uint64]*clhSlot{}}
	for i := 0; i < reactToSpin*3; i++ {
		l.Acquire(th)
		l.Release(th)
	}
	if l.mode.v.Load() != 0 {
		t.Fatal("reactive lock stuck in queue mode after contention subsided")
	}
}

func TestCohortNative(t *testing.T) {
	r := newTestRuntime(2, 8)
	l := NewCohort(r)
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			th := r.RegisterThread(node)
			for i := 0; i < 400; i++ {
				l.Acquire(th)
				counter++
				l.Release(th)
			}
		}(w % 2)
	}
	wg.Wait()
	if counter != 3200 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestNativeBarrier(t *testing.T) {
	const workers, episodes = 8, 20
	r := newTestRuntime(2, workers)
	b := NewBarrier(r, workers)
	var phase [workers]int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			th := r.RegisterThread(node)
			for e := 0; e < episodes; e++ {
				atomic.AddInt64(&phase[th.ID()], 1)
				mine := atomic.LoadInt64(&phase[th.ID()])
				for i := range phase {
					ph := atomic.LoadInt64(&phase[i])
					if ph < mine-1 || ph > mine+1 {
						t.Errorf("barrier violated: saw %d vs mine %d", ph, mine)
					}
				}
				b.Wait(th)
			}
		}(w % 2)
	}
	wg.Wait()
	for i := range phase {
		if phase[i] != episodes {
			t.Fatalf("thread %d at %d episodes", i, phase[i])
		}
	}
}

func TestNativeBarrierValidation(t *testing.T) {
	r := newTestRuntime(1, 2)
	for _, parties := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("want panic for parties=%d", parties)
				}
			}()
			NewBarrier(r, parties)
		}()
	}
}

func TestTryAcquire(t *testing.T) {
	// The membership is the registry's Try flag, not a hand list, so a
	// new try-capable algorithm is covered the day it is registered.
	var names []string
	for _, s := range lockspec.All() {
		if s.Try && !s.SimOnly {
			names = append(names, s.Name)
		}
	}
	if len(names) < 8 {
		t.Fatalf("registry lists only %d try-capable native locks", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			r := newTestRuntime(2, 2)
			l := New(name, r, DefaultTuning())
			tl, ok := l.(TryLocker)
			if !ok {
				t.Fatalf("%s does not implement TryLocker", name)
			}
			a := r.RegisterThread(0)
			b := r.RegisterThread(1)
			if !tl.TryAcquire(a) {
				t.Fatal("try on a free lock failed")
			}
			if tl.TryAcquire(b) {
				t.Fatal("try on a held lock succeeded")
			}
			tl.Release(a)
			if !tl.TryAcquire(b) {
				t.Fatal("try after release failed")
			}
			tl.Release(b)
			// Blocking acquire still works after try traffic.
			tl.Acquire(a)
			tl.Release(a)
		})
	}
}

func TestTryAcquireUnderContention(t *testing.T) {
	r := newTestRuntime(2, 8)
	l := NewHBOGTSD(r, DefaultTuning()).(TryLocker)
	var wg sync.WaitGroup
	hits := int64(0)
	misses := int64(0)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			th := r.RegisterThread(node)
			for i := 0; i < 2000; i++ {
				if l.TryAcquire(th) {
					atomic.AddInt64(&hits, 1)
					l.Release(th)
				} else {
					atomic.AddInt64(&misses, 1)
				}
			}
		}(w % 2)
	}
	wg.Wait()
	if hits == 0 {
		t.Fatal("no successful tries")
	}
	if hits+misses != 8*2000 {
		t.Fatalf("accounting wrong: %d+%d", hits, misses)
	}
}

func TestQueueLocksDoNotOfferTry(t *testing.T) {
	r := newTestRuntime(2, 2)
	for _, name := range []string{"CLH", "TICKET", "ANDERSON", "COHORT", "REACTIVE", "HMCS_T"} {
		if _, ok := New(name, r, DefaultTuning()).(TryLocker); ok {
			t.Errorf("%s unexpectedly offers TryAcquire", name)
		}
	}
}

func TestAcquireTimeout(t *testing.T) {
	r := newTestRuntime(2, 2)
	l := NewHBOGTSD(r, DefaultTuning()).(TryLocker)
	a := r.RegisterThread(0)
	b := r.RegisterThread(1)

	if !AcquireTimeout(l, a, time.Second, DefaultTuning()) {
		t.Fatal("timed acquire of a free lock failed")
	}
	// Held: a short timeout must expire.
	start := time.Now()
	if AcquireTimeout(l, b, 2*time.Millisecond, DefaultTuning()) {
		t.Fatal("timed acquire of a held lock succeeded")
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("returned before the deadline")
	}
	l.Release(a)
	if !AcquireTimeout(l, b, time.Second, DefaultTuning()) {
		t.Fatal("timed acquire after release failed")
	}
	l.Release(b)
}

func TestAcquireTimeoutUnderChurn(t *testing.T) {
	r := newTestRuntime(2, 4)
	l := NewTATASExp(DefaultTuning()).(TryLocker)
	var wg sync.WaitGroup
	var got int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			th := r.RegisterThread(node)
			for i := 0; i < 300; i++ {
				if AcquireTimeout(l, th, 50*time.Millisecond, DefaultTuning()) {
					atomic.AddInt64(&got, 1)
					l.Release(th)
				}
			}
		}(w % 2)
	}
	wg.Wait()
	if got == 0 {
		t.Fatal("no timed acquisitions succeeded under churn")
	}
}
