package core

import (
	"testing"
	"time"
)

// TestTimedThrottlePollQuantum pins the drift fix the spec port made:
// the hand-written native HBO polled its *timed* throttle wait at
// BackoffBase-sized delays, so a large backoff tuning silently
// stretched the abort-check cadence (a deadline of a few milliseconds
// could overshoot by seconds) while the simulator twin polled on a
// fixed 64-unit quantum. The spec's ThrottleWait polls timed waits on
// lockspec.TimedPollUnits in both stacks; this test fails against the
// old behavior.
func TestTimedThrottlePollQuantum(t *testing.T) {
	r := NewRuntime(2, 2)
	tun := DefaultTuning()
	// One BackoffBase-sized poll would busy-wait for seconds; the fixed
	// quantum keeps the abort cadence tuning-independent.
	tun.BackoffBase = 1 << 30
	l := New("HBO_GT", r, tun).(specTimedTryQI)
	th := r.RegisterThread(0)

	// Throttle th's node, as a remote-spinning node winner would.
	spin := l.spec.WordIndex("is_spinning")
	l.words[spin][0].v.Store(l.tag)

	start := time.Now()
	if l.AcquireFor(th, 5*time.Millisecond) {
		t.Fatal("acquire succeeded through a throttled node")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("timed throttle wait took %v: abort cadence followed BackoffBase instead of the fixed TimedPollUnits quantum", elapsed)
	}

	// Un-throttle; protocol state must be idle after the abort.
	l.words[spin][0].v.Store(hboDummy)
	if err := l.Quiescent(); err != nil {
		t.Fatal(err)
	}

	// With the throttle lifted the same timed acquire succeeds.
	if !l.AcquireFor(th, time.Second) {
		t.Fatal("timed acquire of a free lock failed")
	}
	l.Release(th)
}

// TestSpecCapabilitySurface asserts FromSpec exposes exactly the
// optional interfaces each spec's metadata declares — no more (a lock
// without a try path must not satisfy TryLocker) and no less.
func TestSpecCapabilitySurface(t *testing.T) {
	r := NewRuntime(2, 4)
	for _, name := range AllNames() {
		l := New(name, r, DefaultTuning())
		if l.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, l.Name())
		}
		if _, ok := l.(interface{ InjectWord(uint64) }); ok {
			if _, qok := l.(interface{ Quiescent() error }); !qok {
				t.Errorf("%s: InjectWord without Quiescent (harness cannot verify recovery)", name)
			}
		}
	}
}
