package core

import "runtime"

// mcsQnode is one thread's queue entry, padded onto its own line.
type mcsQnode struct {
	next   paddedInt64  // successor thread id, -1 = none
	locked paddedUint64 // 1 while waiting
}

// MCS is the queue lock of Mellor-Crummey and Scott: threads enqueue and
// each spins on its own flag, so a release disturbs only the successor.
type MCS struct {
	tail   paddedInt64 // thread id of the last waiter, -1 = free
	qnodes []mcsQnode
	probeHolder
}

// NewMCS returns an unlocked MCS lock sized for r's thread capacity.
func NewMCS(r *Runtime) *MCS {
	l := &MCS{qnodes: make([]mcsQnode, r.maxThreads)}
	l.tail.v.Store(-1)
	for i := range l.qnodes {
		l.qnodes[i].next.v.Store(-1)
	}
	return l
}

// Name returns "MCS".
func (l *MCS) Name() string { return "MCS" }

// Acquire enqueues the thread and waits for its predecessor's grant.
func (l *MCS) Acquire(t *Thread) {
	me := int64(t.id)
	q := &l.qnodes[t.id]
	q.next.v.Store(-1)
	prev := l.tail.v.Swap(me)
	if prev < 0 {
		return
	}
	q.locked.v.Store(1)
	l.qnodes[prev].next.v.Store(me)
	l.contended(t)
	var spins int64
	for q.locked.v.Load() != 0 {
		spins++
		runtime.Gosched()
	}
	l.spun(t, spins)
}

// Release grants the lock to the successor, if any.
func (l *MCS) Release(t *Thread) {
	me := int64(t.id)
	q := &l.qnodes[t.id]
	next := q.next.v.Load()
	if next < 0 {
		if l.tail.v.CompareAndSwap(me, -1) {
			return
		}
		// A successor is mid-enqueue; wait for the link.
		for {
			next = q.next.v.Load()
			if next >= 0 {
				break
			}
			runtime.Gosched()
		}
	}
	l.qnodes[next].locked.v.Store(0)
}

// clhNode is a CLH request flag on its own cache line.
type clhNode struct {
	flag paddedUint64 // 1 = pending, 0 = granted
}

// clhSlot is a thread's private rotating-node state for one CLH lock.
type clhSlot struct {
	mine int32 // node to use for the next acquire
	held int32 // node enqueued by the current/last acquire
}

// CLH is the queue lock of Craig and of Magnusson, Landin and Hagersten.
// Each thread spins on its predecessor's flag and recycles that node for
// its next acquire, so the lock needs maxThreads+1 nodes in total.
type CLH struct {
	id    uint64
	tail  paddedInt64 // index of the current tail node
	nodes []clhNode   // maxThreads+1 entries
	probeHolder
}

// NewCLH returns an unlocked CLH lock sized for r's thread capacity.
func NewCLH(r *Runtime) *CLH {
	l := &CLH{
		id:    lockIDs.Add(1),
		nodes: make([]clhNode, r.maxThreads+1),
	}
	// Node index maxThreads is the initial granted dummy; thread t
	// starts owning node t.
	l.tail.v.Store(int64(r.maxThreads))
	return l
}

// Name returns "CLH".
func (l *CLH) Name() string { return "CLH" }

// slot returns thread t's rotating node state for this lock, creating it
// on first use (thread t starts owning node index t.id).
func (l *CLH) slot(t *Thread) *clhSlot {
	s, ok := t.clhSlots[l.id]
	if !ok {
		s = &clhSlot{mine: int32(t.id)}
		t.clhSlots[l.id] = s
	}
	return s
}

// Acquire enqueues a pending flag and waits on the predecessor's.
func (l *CLH) Acquire(t *Thread) {
	s := l.slot(t)
	me := s.mine
	l.nodes[me].flag.v.Store(1)
	prev := int32(l.tail.v.Swap(int64(me)))
	if l.nodes[prev].flag.v.Load() != 0 {
		l.contended(t)
		var spins int64
		for l.nodes[prev].flag.v.Load() != 0 {
			spins++
			runtime.Gosched()
		}
		l.spun(t, spins)
	}
	// Adopt the predecessor's node for the next acquire; ours stays
	// live (the successor spins on it) until Release clears it.
	s.held = me
	s.mine = prev
}

// Release clears the thread's pending flag, granting the successor.
func (l *CLH) Release(t *Thread) {
	s := l.slot(t)
	l.nodes[s.held].flag.v.Store(0)
}
