package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/lockspec"
)

// This file instantiates lockspec.Spec descriptions as native locks: the
// spec's state words become cache-line-padded atomics, its transition
// bodies run against an Env whose wait primitives busy-wait with
// periodic runtime.Gosched yields and count spin work into the lock's
// Probe. The simulated twin of the same spec lives in
// internal/simlock/spec.go; every shared word and every atomic
// transition come from the one body, so the two stacks cannot drift
// apart by editing one copy.

// specLock is a native lock built from a spec.
type specLock struct {
	spec    *lockspec.Spec
	tun     Tuning
	yield   int // tun.YieldEvery(), cached
	nodes   int
	threads int
	tag     uint64 // non-zero identity for throttle words (Env.Tag)
	// words[w][i] is element i (Ref addressing) of declared word w;
	// every element sits alone on its cache line.
	words [][]paddedUint64
	// scratch[t] is thread t's private scratch (Env.Scratch); nil when
	// the lock was built without a Runtime (see FromSpec).
	scratch []scratchPad
	// envs[t] is thread t's pooled environment, so an acquire allocates
	// nothing; nil when built without a Runtime.
	envs []specEnv
	probeHolder
}

// scratchPad keeps each thread's scratch words on their own cache line.
type scratchPad struct {
	s [4]uint64
	_ [32]byte
}

// FromSpec instantiates spec as a native lock on runtime r. The
// returned lock additionally implements TimedLock, TryLocker,
// Quiescent() error and/or InjectWord(uint64) exactly as the spec's
// metadata declares, so capability dispatch (AcquireWithin, the
// correctness harness's probes) sees the same surface the hand-written
// locks offered.
//
// r may be nil only for specs whose words are all lock-scoped and whose
// bodies do not carry scratch across calls (the single-word locks the
// no-argument constructors build); such a lock allocates a transient
// environment per operation instead of using the per-thread pool.
func FromSpec(spec *lockspec.Spec, r *Runtime, tun Tuning) Lock {
	if !spec.Backed() {
		panic(fmt.Sprintf("core: spec %s has no bodies", spec.Name))
	}
	if spec.SimOnly {
		panic(fmt.Sprintf("core: spec %s is simulator-only", spec.Name))
	}
	l := &specLock{
		spec:  spec,
		tun:   tun,
		yield: tun.YieldEvery(),
		nodes: 1,
		tag:   lockIDs.Add(1),
	}
	if r != nil {
		l.nodes = r.nodes
		l.threads = r.maxThreads
		l.scratch = make([]scratchPad, r.maxThreads)
		l.envs = make([]specEnv, r.maxThreads)
		for i := range l.envs {
			l.envs[i].l = l
		}
	}
	if spec.MaxNodes > 0 && l.nodes > spec.MaxNodes {
		panic(fmt.Sprintf("core: %s supports at most %d nodes, runtime has %d",
			spec.Name, spec.MaxNodes, l.nodes))
	}
	l.words = make([][]paddedUint64, len(spec.Words))
	for w, word := range spec.Words {
		if r == nil && word.Scope != lockspec.ScopeLock {
			panic(fmt.Sprintf("core: spec %s needs a *Runtime (scoped word %q)",
				spec.Name, word.Name))
		}
		elems := make([]paddedUint64, word.Elems(l.nodes, l.threads))
		if word.Init != 0 {
			for i := range elems {
				elems[i].v.Store(word.Init)
			}
		}
		l.words[w] = elems
	}

	timed, try, q, inj := spec.Timed, spec.TryBody != nil, spec.Quiesce != nil, spec.Inject != nil
	if inj && !q {
		panic(fmt.Sprintf("core: spec %s declares Inject without Quiesce", spec.Name))
	}
	switch {
	case timed && try && q && inj:
		return specTimedTryQI{specTimedTryQ{l}}
	case timed && try && q:
		return specTimedTryQ{l}
	case timed && try:
		return specTimedTry{l}
	case timed && q:
		return specTimedQ{l}
	case try && q:
		return specTryQ{l}
	case q:
		return specQ{l}
	case !timed && !try:
		return l
	default:
		panic(fmt.Sprintf("core: spec %s has unsupported capability combination", spec.Name))
	}
}

// Capability wrappers: each exposes exactly the optional interfaces its
// spec declares, so a lock without a try path does not satisfy
// TryLocker (TestQueueLocksDoNotOfferTry pins this for TICKET).
type specTimedTry struct{ *specLock }  // TATAS, TATAS_EXP
type specQ struct{ *specLock }         // TICKET
type specTryQ struct{ *specLock }      // CNA
type specTimedQ struct{ *specLock }    // HMCS_T
type specTimedTryQ struct{ *specLock } // (HBO family before Inject)
type specTimedTryQI struct{ specTimedTryQ }

func (l specTimedTry) AcquireFor(t *Thread, d time.Duration) bool { return l.acquireFor(t, d) }
func (l specTimedTry) TryAcquire(t *Thread) bool                  { return l.tryAcquire(t) }

func (l specQ) Quiescent() error { return l.quiescent() }

func (l specTryQ) TryAcquire(t *Thread) bool { return l.tryAcquire(t) }
func (l specTryQ) Quiescent() error          { return l.quiescent() }

func (l specTimedQ) AcquireFor(t *Thread, d time.Duration) bool { return l.acquireFor(t, d) }
func (l specTimedQ) Quiescent() error                           { return l.quiescent() }

func (l specTimedTryQ) AcquireFor(t *Thread, d time.Duration) bool { return l.acquireFor(t, d) }
func (l specTimedTryQ) TryAcquire(t *Thread) bool                  { return l.tryAcquire(t) }
func (l specTimedTryQ) Quiescent() error                           { return l.quiescent() }

func (l specTimedTryQI) InjectWord(v uint64) { l.injectWord(v) }

var (
	_ TimedLock = specTimedTry{}
	_ TryLocker = specTimedTry{}
	_ TimedLock = specTimedTryQI{}
	_ TryLocker = specTryQ{}
	_ TimedLock = specTimedQ{}
)

// Name returns the spec's algorithm name.
func (l *specLock) Name() string { return l.spec.Name }

// env prepares thread t's environment for one operation.
func (l *specLock) env(t *Thread, deadline time.Time) *specEnv {
	var e *specEnv
	if l.envs != nil {
		e = &l.envs[t.id]
	} else {
		e = &specEnv{l: l}
	}
	e.t = t
	e.deadline = deadline
	e.timed = !deadline.IsZero()
	e.fired = false
	e.spins = 0
	return e
}

// acquire runs the spec's acquire body; a zero deadline means unbounded.
func (l *specLock) acquire(t *Thread, deadline time.Time) bool {
	e := l.env(t, deadline)
	ok := l.spec.Acquire(e, l.tun)
	if e.fired {
		l.spun(t, e.spins)
	}
	return ok
}

// Acquire runs the unbounded acquire.
func (l *specLock) Acquire(t *Thread) { l.acquire(t, time.Time{}) }

// acquireFor is the timed acquire backing TimedLock (d <= 0 = no bound).
func (l *specLock) acquireFor(t *Thread, d time.Duration) bool {
	if d <= 0 {
		l.acquire(t, time.Time{})
		return true
	}
	return l.acquire(t, time.Now().Add(d))
}

// Release runs the spec's release body.
func (l *specLock) Release(t *Thread) {
	l.spec.Release(l.env(t, time.Time{}), l.tun)
}

// tryAcquire runs the spec's non-blocking attempt.
func (l *specLock) tryAcquire(t *Thread) bool {
	return l.spec.TryBody(l.env(t, time.Time{}), l.tun)
}

// quiescent runs the spec's quiescence probe over the raw words.
func (l *specLock) quiescent() error { return l.spec.Quiesce(specPeeker{l}) }

// injectWord overwrites the spec's declared fault-injection word.
func (l *specLock) injectWord(v uint64) {
	ref := l.spec.Inject
	l.words[ref.W][ref.I].v.Store(v)
}

// peek reads a raw word element — test access only.
func (l *specLock) peek(w, i int) uint64 { return l.words[w][i].v.Load() }

// specPeeker is the quiescence probe's raw view of the lock words.
type specPeeker struct{ l *specLock }

func (p specPeeker) Peek(w, i int) uint64 { return p.l.words[w][i].v.Load() }
func (p specPeeker) Nodes() int           { return p.l.nodes }
func (p specPeeker) Threads() int         { return p.l.threads }

// specEnv executes one thread's spec body against the native words.
type specEnv struct {
	l        *specLock
	t        *Thread
	deadline time.Time
	timed    bool
	fired    bool  // Contended probe fired this acquire
	spins    int64 // spin work reported at acquire completion
	// local backs Scratch for runtime-free locks (valid within one
	// operation — specs that carry scratch from Acquire to Release have
	// scoped words and therefore always a Runtime-backed pool).
	local [4]uint64
	_     cacheLinePad
}

var _ lockspec.Env = (*specEnv)(nil)

func (e *specEnv) word(w, i int) *atomic.Uint64 { return &e.l.words[w][i].v }

func (e *specEnv) TID() int     { return e.t.id }
func (e *specEnv) Node() int    { return e.t.node }
func (e *specEnv) Nodes() int   { return e.l.nodes }
func (e *specEnv) Threads() int { return e.l.threads }
func (e *specEnv) Tag() uint64  { return e.l.tag }

func (e *specEnv) Load(w, i int) uint64           { return e.word(w, i).Load() }
func (e *specEnv) Store(w, i int, v uint64)       { e.word(w, i).Store(v) }
func (e *specEnv) Swap(w, i int, v uint64) uint64 { return e.word(w, i).Swap(v) }
func (e *specEnv) TAS(w, i int) uint64            { return e.word(w, i).Swap(1) }

// CAS provides the spec's SPARC semantics: it returns expect exactly
// when the swap happened. A failed CompareAndSwap that then observes
// expect (the owner released in between) retries, because returning
// expect without owning would be a false acquisition.
func (e *specEnv) CAS(w, i int, expect, v uint64) uint64 {
	a := e.word(w, i)
	for {
		if a.CompareAndSwap(expect, v) {
			return expect
		}
		if cur := a.Load(); cur != expect {
			return cur
		}
	}
}

func (e *specEnv) CASOnce(w, i int, expect, v uint64) bool {
	return e.word(w, i).CompareAndSwap(expect, v)
}

func (e *specEnv) FetchInc(w, i int) uint64 { return e.word(w, i).Add(1) - 1 }
func (e *specEnv) HolderInc(w, i int)       { e.word(w, i).Add(1) }

func (e *specEnv) Delay(units int) { spinDelay(units, e.l.yield) }

func (e *specEnv) Backoff(b *int, factor, cap int) {
	e.noteSpin()
	backoff(b, factor, cap, e.l.yield)
}

// noteSpin counts one unit of spin work once the acquire is contended.
func (e *specEnv) noteSpin() {
	if e.fired {
		e.spins++
	}
}

func (e *specEnv) Expired() bool {
	return e.timed && time.Now().After(e.deadline)
}

func (e *specEnv) AwaitZero(w, i int) bool {
	a := e.word(w, i)
	for a.Load() != 0 {
		if e.timed && time.Now().After(e.deadline) {
			return false
		}
		e.noteSpin()
		runtime.Gosched()
	}
	return true
}

func (e *specEnv) AwaitWhile(w, i int, v uint64) (uint64, bool) {
	a := e.word(w, i)
	for {
		cur := a.Load()
		if cur != v {
			return cur, true
		}
		if e.timed && time.Now().After(e.deadline) {
			return 0, false
		}
		e.noteSpin()
		runtime.Gosched()
	}
}

func (e *specEnv) AwaitLink(w, i int) uint64 {
	a := e.word(w, i)
	for {
		if v := a.Load(); v != 0 {
			return v
		}
		e.noteSpin()
		runtime.Gosched()
	}
}

// ThrottleWait polls at BackoffBase-sized delays — except under a
// deadline, where it polls on the fixed TimedPollUnits quantum both
// stacks share, so the abort-check cadence cannot become
// tuning-dependent in one stack only (the drift the hand-written
// native HBO shipped; TestTimedThrottlePollQuantum pins the fix).
func (e *specEnv) ThrottleWait(w, i int, v uint64) bool {
	a := e.word(w, i)
	for a.Load() == v {
		if e.timed {
			if time.Now().After(e.deadline) {
				return false
			}
			spinDelay(lockspec.TimedPollUnits, e.l.yield)
		} else {
			spinDelay(e.l.tun.BackoffBase, e.l.yield)
		}
	}
	return true
}

// GrantWait waits proportionally to the distance from the granted value
// (the ticket lock's proportional backoff). The delay alone never
// reaches spinDelay's yield threshold when few waiters are ahead, so a
// host with fewer CPUs than contenders would strand a preempted lock
// holder behind quantum-burning spinners; one yield per grant probe
// guarantees progress, and with idle CPUs it is nearly free.
func (e *specEnv) GrantWait(w, i int, my uint64) bool {
	a := e.word(w, i)
	if a.Load() == my {
		return true
	}
	e.SlowPath()
	for {
		cur := a.Load()
		if cur == my {
			return true
		}
		if e.timed && time.Now().After(e.deadline) {
			return false
		}
		e.noteSpin()
		ahead := int(my - cur)
		if ahead < 1 {
			ahead = 1
		}
		spinDelay(ahead*16, 1024)
		runtime.Gosched()
	}
}

func (e *specEnv) SlowPath() {
	if !e.fired {
		e.fired = true
		e.l.contended(e.t)
	}
}

func (e *specEnv) Scratch() *[4]uint64 {
	if e.l.scratch != nil {
		return &e.l.scratch[e.t.id].s
	}
	return &e.local
}
