package core

import (
	"sync/atomic"
)

// RH lock-word values; thread values start at rhTaken+1.
const (
	rhFree   uint64 = 0
	rhLFree  uint64 = 1
	rhRemote uint64 = 2
	rhTaken  uint64 = 3
)

func rhThreadVal(tid int) uint64 { return rhTaken + 1 + uint64(tid) }

// RH is the authors' earlier two-node NUCA-aware lock (SC 2002), ported
// from the simulator implementation in internal/simlock; see the design
// notes there for the two documented implementation choices (per-node
// waiter counts and the be-fair steal threshold).
type RH struct {
	copies  [2]paddedUint64
	waiters [2]paddedUint64
	streak  [2]paddedUint64 // consecutive local handovers per node
	tun     Tuning
	nodes   int
	probeHolder
}

// NewRH returns an unlocked RH lock. The runtime must have at most two
// nodes (the RH algorithm does not generalize; that limitation is what
// HBO removes).
func NewRH(r *Runtime, tun Tuning) *RH {
	if r.nodes > 2 {
		panic("core: the RH lock supports at most two nodes")
	}
	l := &RH{tun: tun, nodes: r.nodes}
	if r.nodes == 2 {
		l.copies[1].v.Store(rhRemote)
	}
	return l
}

// Name returns "RH".
func (l *RH) Name() string { return "RH" }

// casWord performs a cas returning the pre-CAS observed value, retrying
// the observation when it is stale the way l.cas does for HBO.
func casWord(w *atomic.Uint64, expect, new uint64) uint64 {
	for {
		if w.CompareAndSwap(expect, new) {
			return expect
		}
		if v := w.Load(); v != expect {
			return v
		}
	}
}

// Acquire obtains the lock for thread t.
func (l *RH) Acquire(t *Thread) {
	my := &l.copies[t.node].v
	val := rhThreadVal(t.id)
	tmp := casWord(my, rhFree, val)
	if tmp == rhFree {
		return
	}
	if tmp == rhLFree && casWord(my, rhLFree, val) == rhLFree {
		return
	}
	l.acquireSlowpath(t)
}

func (l *RH) acquireSlowpath(t *Thread) {
	node := t.node
	my := &l.copies[node].v
	val := rhThreadVal(t.id)
	y := l.tun.YieldEvery()
	l.waiters[node].v.Add(1)
	defer l.waiters[node].v.Add(^uint64(0))

	l.contended(t)
	var spins int64
	defer func() { l.spun(t, spins) }()

	b := l.tun.BackoffBase
	for {
		tmp := casWord(my, rhFree, val)
		if tmp == rhFree {
			return
		}
		if tmp == rhLFree {
			if casWord(my, rhLFree, val) == rhLFree {
				return
			}
			continue
		}
		if tmp == rhRemote && l.nodes == 2 {
			if casWord(my, rhRemote, rhTaken) == rhRemote {
				spins += l.remoteSpin(t)
				return
			}
		}
		spins++
		backoff(&b, l.tun.BackoffFactor, l.tun.BackoffCap, y)
	}
}

// remoteSpin migrates the lock from the other node (node-winner role).
// It returns the number of backoff iterations spent migrating.
func (l *RH) remoteSpin(t *Thread) int64 {
	node := t.node
	other := &l.copies[1-node].v
	my := &l.copies[node].v
	val := rhThreadVal(t.id)
	y := l.tun.YieldEvery()
	b := l.tun.RHRemoteBase
	tries := 0
	var spins int64
	for {
		v := other.Load()
		if v == rhFree || (v == rhLFree && tries >= l.tun.RHFairTries) {
			if other.CompareAndSwap(v, rhRemote) {
				if !my.CompareAndSwap(rhTaken, val) {
					panic("core: RH node-winner copy stolen")
				}
				return spins
			}
		}
		tries++
		spins++
		backoff(&b, l.tun.BackoffFactor, l.tun.RHRemoteCap, y)
	}
}

// Release unlocks, preferring a local handover when neighbors wait.
func (l *RH) Release(t *Thread) {
	node := t.node
	my := &l.copies[node].v
	if l.nodes == 2 {
		if l.waiters[node].v.Load() > 0 &&
			l.streak[node].v.Load() < uint64(l.tun.RHGlobalEvery) {
			l.streak[node].v.Add(1)
			my.Store(rhLFree)
			return
		}
	}
	l.streak[node].v.Store(0)
	my.Store(rhFree)
}
