package core

// HBOHier is the hierarchical HBO generalization (paper section 4.1):
// the backoff schedule is chosen by the contender's *distance* to the
// lock owner — same node, same cluster, or across clusters. It requires
// a runtime built with NewRuntimeHierarchical (flat runtimes degrade to
// two distance classes, i.e. plain HBO behaviour).
type HBOHier struct {
	word paddedUint64
	tun  Tuning
	rt   *Runtime
	probeHolder
}

// NewHBOHier returns an unlocked hierarchical HBO lock.
func NewHBOHier(r *Runtime, tun Tuning) *HBOHier {
	return &HBOHier{tun: tun, rt: r}
}

// Name returns "HBO_HIER".
func (l *HBOHier) Name() string { return "HBO_HIER" }

// schedule maps a distance class to backoff constants.
func (l *HBOHier) schedule(distance int) (base, cap int) {
	switch distance {
	case 0:
		return l.tun.BackoffBase, l.tun.BackoffCap
	case 1:
		return l.tun.RemoteBackoffBase, l.tun.RemoteBackoffCap
	default:
		return 4 * l.tun.RemoteBackoffBase, 4 * l.tun.RemoteBackoffCap
	}
}

// cas mirrors the HBO helper: FREE return means acquired.
func (l *HBOHier) cas(my uint64) uint64 {
	for {
		if l.word.v.CompareAndSwap(hboFree, my) {
			return hboFree
		}
		if v := l.word.v.Load(); v != hboFree {
			return v
		}
	}
}

// Acquire obtains the lock with distance-dependent backoff.
func (l *HBOHier) Acquire(t *Thread) {
	my := hboNodeVal(t.node)
	tmp := l.cas(my)
	if tmp == hboFree {
		return
	}
	l.acquireSlowpath(t, tmp)
}

func (l *HBOHier) acquireSlowpath(t *Thread, tmp uint64) {
	my := hboNodeVal(t.node)
	y := l.tun.YieldEvery()
	l.contended(t)
	var spins int64
	for {
		dist := l.rt.Distance(t.node, int(tmp)-1)
		b, bcap := l.schedule(dist)
		for {
			spins++
			backoff(&b, l.tun.BackoffFactor, bcap, y)
			tmp = l.cas(my)
			if tmp == hboFree {
				l.spun(t, spins)
				return
			}
			if l.rt.Distance(t.node, int(tmp)-1) != dist {
				break // owner moved to a different distance class
			}
		}
	}
}

// Release unlocks.
func (l *HBOHier) Release(t *Thread) { l.word.v.Store(hboFree) }
