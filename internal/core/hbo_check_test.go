package core

import (
	"sync"
	"testing"
	"time"
)

// angryTestTuning makes the GT_SD starvation detector fire after a few
// failed remote probes so tests reach the SD path quickly.
func angryTestTuning() Tuning {
	tun := DefaultTuning()
	tun.BackoffBase = 16
	tun.BackoffCap = 64
	tun.RemoteBackoffBase = 32
	tun.RemoteBackoffCap = 128
	tun.GetAngryLimit = 2
	return tun
}

// TestHBOQuiescentAfterStress: after all acquirers finish, the lock word
// is free and every per-node throttle word is back to hboDummy — the
// native twin of simlock's TestHBOQuiescence.
func TestHBOQuiescentAfterStress(t *testing.T) {
	for _, name := range []string{"HBO", "HBO_GT", "HBO_GT_SD"} {
		name := name
		t.Run(name, func(t *testing.T) {
			const threads, iters = 8, 150
			r := NewRuntime(2, threads)
			l := New(name, r, angryTestTuning()).(specTimedTryQI)
			var wg sync.WaitGroup
			counter := 0
			for i := 0; i < threads; i++ {
				th := r.RegisterThread(i % 2)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < iters; j++ {
						l.Acquire(th)
						counter++
						l.Release(th)
					}
				}()
			}
			wg.Wait()
			if counter != threads*iters {
				t.Fatalf("counter = %d, want %d", counter, threads*iters)
			}
			if err := l.Quiescent(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHBOGTSDCorruptedOwnerSurvives: the native twin of simlock's
// TestHBOGTSDOwnerBoundsGuard — a lock word decoding to an out-of-range
// owner must not crash the starvation detector; the acquirer rides it
// out and completes once the word clears.
func TestHBOGTSDCorruptedOwnerSurvives(t *testing.T) {
	r := NewRuntime(2, 2)
	l := NewHBOGTSD(r, angryTestTuning()).(specTimedTryQI)
	l.InjectWord(hboNodeVal(99)) // owner 99 on a 2-node runtime

	th := r.RegisterThread(0)
	done := make(chan struct{})
	go func() {
		l.Acquire(th) // spins on the corrupted word, gets angry
		l.Release(th)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let several SD episodes fire
	l.InjectWord(hboFree)             // simulated recovery
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("acquirer never recovered from the corrupted lock word")
	}
	if err := l.Quiescent(); err != nil {
		t.Fatal(err)
	}
}
