package core

import (
	"sync"
	"testing"
	"time"
)

// holdWhile acquires l on a holder thread, runs the contenders while
// the lock is held for holdFor, then releases — forcing every contender
// through its algorithm's slow path even on a single-CPU host, where
// the fast path otherwise always wins.
func holdWhile(t *testing.T, l Lock, holder *Thread, holdFor time.Duration, contend func()) {
	t.Helper()
	l.Acquire(holder)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		contend()
	}()
	time.Sleep(holdFor)
	l.Release(holder)
	wg.Wait()
}

// TestSlowPathsUnderHeldLock drives each algorithm's contended path:
// a holder pins the lock while same-node and remote-node contenders
// arrive, spin, and eventually acquire.
func TestSlowPathsUnderHeldLock(t *testing.T) {
	for _, name := range AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := newTestRuntime(2, 4)
			l := New(name, r, DefaultTuning())
			holder := r.RegisterThread(0)
			sameNode := r.RegisterThread(0)
			remote := r.RegisterThread(1)

			acquired := 0
			holdWhile(t, l, holder, 3*time.Millisecond, func() {
				// The same-node contender sees the holder's node id in
				// the lock word (HBO local path); the remote contender
				// sees a foreign id (HBO remote path).
				var wg sync.WaitGroup
				for _, th := range []*Thread{sameNode, remote} {
					th := th
					wg.Add(1)
					go func() {
						defer wg.Done()
						l.Acquire(th)
						acquired++
						l.Release(th)
					}()
				}
				wg.Wait()
			})
			if acquired != 2 {
				t.Fatalf("%s: %d contenders acquired, want 2", name, acquired)
			}
		})
	}
}

// TestHBOSlowPathTransitions drives the HBO restart path: the lock
// migrates between nodes while a contender waits, forcing the
// local-loop -> restart -> remote-loop transitions.
func TestHBOSlowPathTransitions(t *testing.T) {
	for _, name := range []string{"HBO", "HBO_GT", "HBO_GT_SD", "HBO_HIER"} {
		name := name
		t.Run(name, func(t *testing.T) {
			r := NewRuntimeHierarchical(4, 2, 8)
			l := New(name, r, DefaultTuning())
			var wg sync.WaitGroup
			counter := 0
			// Eight threads across four nodes with long enough holds
			// that waiters observe owners in several distance classes.
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(node int) {
					defer wg.Done()
					th := r.RegisterThread(node)
					for i := 0; i < 60; i++ {
						l.Acquire(th)
						counter++
						time.Sleep(50 * time.Microsecond)
						l.Release(th)
					}
				}(w % 4)
			}
			wg.Wait()
			if counter != 480 {
				t.Fatalf("%s: counter = %d", name, counter)
			}
		})
	}
}

// TestMCSReleaseWaitsForLinking exercises the MCS release race where
// the successor has swapped the tail but not yet linked prev.next: the
// releaser must wait for the link rather than dropping the lock.
func TestMCSReleaseWaitsForLinking(t *testing.T) {
	r := newTestRuntime(1, 8)
	l := NewMCS(r)
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := r.RegisterThread(0)
			for i := 0; i < 500; i++ {
				l.Acquire(th)
				counter++
				l.Release(th)
			}
		}()
	}
	wg.Wait()
	if counter != 4000 {
		t.Fatalf("counter = %d (a grant was lost)", counter)
	}
}

// TestGTThrottleEngagesNative: hold the lock remotely long enough for a
// node winner to set is_spinning, then check its neighbor is gated and
// ultimately released.
func TestGTThrottleEngagesNative(t *testing.T) {
	r := newTestRuntime(2, 4)
	tun := DefaultTuning()
	tun.RemoteBackoffBase = 64 // spin often so the winner forms fast
	tun.RemoteBackoffCap = 256
	l := NewHBOGT(r, tun)
	holder := r.RegisterThread(0)
	w1 := r.RegisterThread(1)
	w2 := r.RegisterThread(1)

	acquired := 0
	holdWhile(t, l, holder, 5*time.Millisecond, func() {
		var wg sync.WaitGroup
		for _, th := range []*Thread{w1, w2} {
			th := th
			wg.Add(1)
			go func() {
				defer wg.Done()
				l.Acquire(th)
				acquired++
				time.Sleep(time.Millisecond)
				l.Release(th)
			}()
		}
		wg.Wait()
	})
	if acquired != 2 {
		t.Fatalf("acquired = %d", acquired)
	}
}

// TestSDAngerFiresNative: a tiny GetAngryLimit with a long-held remote
// lock drives the starvation-detection branch.
func TestSDAngerFiresNative(t *testing.T) {
	r := newTestRuntime(2, 2)
	tun := DefaultTuning()
	tun.GetAngryLimit = 2
	tun.RemoteBackoffBase = 64
	tun.RemoteBackoffCap = 128
	l := NewHBOGTSD(r, tun).(specTimedTryQI)
	spinIdx := l.spec.WordIndex("is_spinning")
	holder := r.RegisterThread(0)
	angry := r.RegisterThread(1)

	acquired := false
	holdWhile(t, l, holder, 5*time.Millisecond, func() {
		l.Acquire(angry)
		acquired = true
		// The anger path stopped node 0; releasing must reopen it.
		l.Release(angry)
		if l.peek(spinIdx, 0) != hboDummy {
			// is_spinning is cleared on acquire, before release.
			t.Error("stopped node not released after angry acquire")
		}
	})
	if !acquired {
		t.Fatal("angry thread never acquired")
	}
}

// TestRHNodeWinnerNative drives the RH remote-spin (node winner) path.
func TestRHNodeWinnerNative(t *testing.T) {
	r := newTestRuntime(2, 3)
	tun := DefaultTuning()
	tun.RHRemoteBase = 64
	tun.RHRemoteCap = 256
	l := NewRH(r, tun)
	holder := r.RegisterThread(0)
	winner := r.RegisterThread(1)
	follower := r.RegisterThread(1)

	acquired := 0
	holdWhile(t, l, holder, 3*time.Millisecond, func() {
		var wg sync.WaitGroup
		for _, th := range []*Thread{winner, follower} {
			th := th
			wg.Add(1)
			go func() {
				defer wg.Done()
				l.Acquire(th)
				acquired++
				l.Release(th)
			}()
		}
		wg.Wait()
	})
	if acquired != 2 {
		t.Fatalf("acquired = %d", acquired)
	}
}

// TestTicketSlowPath parks a ticket-holder briefly so later tickets
// wait proportionally.
func TestTicketSlowPath(t *testing.T) {
	r := newTestRuntime(1, 3)
	l := NewTicket()
	holder := r.RegisterThread(0)
	acquired := 0
	holdWhile(t, l, holder, 2*time.Millisecond, func() {
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := r.RegisterThread(0)
				l.Acquire(th)
				acquired++
				l.Release(th)
			}()
		}
		wg.Wait()
	})
	if acquired != 2 {
		t.Fatalf("acquired = %d", acquired)
	}
}
