package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTimedNamesMatchImplementations pins which native locks carry the
// timed path.
func TestTimedNamesMatchImplementations(t *testing.T) {
	timed := map[string]bool{}
	for _, n := range TimedNames() {
		timed[n] = true
	}
	r := newTestRuntime(2, 4)
	for _, name := range AllNames() {
		l := New(name, r, DefaultTuning())
		_, ok := l.(TimedLock)
		if ok != timed[name] {
			t.Errorf("%s: TimedLock = %v, TimedNames says %v", name, ok, timed[name])
		}
	}
}

// TestAcquireForUncontended: the timed path takes a free lock, and
// d <= 0 degrades to the blocking acquire.
func TestAcquireForUncontended(t *testing.T) {
	for _, name := range TimedNames() {
		r := newTestRuntime(2, 1)
		l := New(name, r, DefaultTuning()).(TimedLock)
		th := r.RegisterThread(0)
		if !l.AcquireFor(th, 50*time.Millisecond) {
			t.Errorf("%s: timed acquire of a free lock failed", name)
			continue
		}
		l.Release(th)
		if !l.AcquireFor(th, 0) {
			t.Errorf("%s: AcquireFor(d=0) failed", name)
			continue
		}
		l.Release(th)
	}
}

// TestAcquireForExpires: with the lock held past the deadline, the
// timed acquire aborts, the protocol stays intact (a later blocking
// acquire works), and the lock quiesces.
func TestAcquireForExpires(t *testing.T) {
	for _, name := range TimedNames() {
		r := newTestRuntime(2, 4)
		l := New(name, r, DefaultTuning()).(TimedLock)
		holder := r.RegisterThread(0)
		waiter := r.RegisterThread(1) // other node: HBO takes the remote slowpath
		l.Acquire(holder)
		release := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			if l.AcquireFor(waiter, 20*time.Millisecond) {
				t.Errorf("%s: timed acquire succeeded while held", name)
				l.Release(waiter)
				return
			}
			close(release)
			// The abort must leave the lock acquirable.
			l.Acquire(waiter)
			l.Release(waiter)
		}()
		<-release
		l.Release(holder)
		<-done
		if q, ok := l.(interface{ Quiescent() error }); ok {
			if err := q.Quiescent(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
}

// TestAcquireForAbortStorm hammers each timed lock with goroutines that
// mix short timed attempts (many of which abort) with blocking
// acquires, under the race detector, and checks mutual exclusion,
// abort accounting and quiescence.
func TestAcquireForAbortStorm(t *testing.T) {
	const (
		goroutines = 8
		iters      = 60
	)
	for _, name := range TimedNames() {
		r := NewRuntime(2, goroutines)
		tun := DefaultTuning()
		tun.GetAngryLimit = 2 // exercise GT_SD anger + stopped cleanup
		l := New(name, r, tun).(TimedLock)
		var inCS, violations, aborts, acquired atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				th := r.RegisterThread(g % 2)
				for i := 0; i < iters; i++ {
					ok := l.AcquireFor(th, time.Duration(50+g*17)*time.Microsecond)
					if !ok {
						aborts.Add(1)
						continue
					}
					if inCS.Add(1) != 1 {
						violations.Add(1)
					}
					inCS.Add(-1)
					l.Release(th)
					acquired.Add(1)
				}
			}(g)
		}
		wg.Wait()
		if violations.Load() != 0 {
			t.Errorf("%s: %d mutual-exclusion violations", name, violations.Load())
		}
		if acquired.Load() == 0 {
			t.Errorf("%s: every attempt aborted; no acquisition happened", name)
		}
		if q, ok := l.(interface{ Quiescent() error }); ok {
			if err := q.Quiescent(); err != nil {
				t.Errorf("%s after %d aborts: %v", name, aborts.Load(), err)
			}
		}
	}
}
