package core

import (
	"runtime"

	"repro/internal/lockspec"
)

// Tuning holds the backoff constants for the native locks. Units are
// iterations of the busy-wait loop in spinDelay; the effective duration
// depends on the host CPU, exactly as the paper notes ("backoff
// parameters must be tuned by trial and error for each individual
// architecture"). The type is shared with internal/simlock via
// lockspec, so one value can configure an algorithm's twin in either
// stack.
type Tuning = lockspec.Tuning

// DefaultTuning returns constants that behave reasonably on commodity
// hardware.
func DefaultTuning() Tuning {
	return Tuning{
		BackoffBase:       64,
		BackoffFactor:     2,
		BackoffCap:        4096,
		RemoteBackoffBase: 1024,
		RemoteBackoffCap:  16384,
		GetAngryLimit:     32,
		RHRemoteBase:      1024,
		RHRemoteCap:       16384,
		RHFairTries:       4,
		RHGlobalEvery:     64,
		YieldThreshold:    1024,
	}
}

// spinDelay busy-waits for roughly n loop iterations, yielding the
// processor periodically so spinners cannot starve the goroutine holding
// the lock when GOMAXPROCS is smaller than the number of contenders.
func spinDelay(n, yieldEvery int) {
	for i := 0; i < n; i++ {
		if i%yieldEvery == yieldEvery-1 {
			runtime.Gosched()
		}
	}
}

// backoff delays for *b iterations and doubles *b up to cap (the paper's
// backoff helper, Figure 1 lines 11–16).
func backoff(b *int, factor, cap, yieldEvery int) {
	spinDelay(*b, yieldEvery)
	*b *= factor
	if *b > cap {
		*b = cap
	}
}
