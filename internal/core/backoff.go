package core

import "runtime"

// Tuning holds the backoff constants for the native locks. Units are
// iterations of the busy-wait loop in spinDelay; the effective duration
// depends on the host CPU, exactly as the paper notes ("backoff
// parameters must be tuned by trial and error for each individual
// architecture").
type Tuning struct {
	BackoffBase       int
	BackoffFactor     int
	BackoffCap        int
	RemoteBackoffBase int
	RemoteBackoffCap  int
	GetAngryLimit     int
	// RH-specific knobs (see internal/simlock for their meaning).
	RHRemoteBase  int
	RHRemoteCap   int
	RHFairTries   int
	RHGlobalEvery int
	// YieldThreshold: spinDelay calls runtime.Gosched once per this many
	// loop iterations so oversubscribed GOMAXPROCS configurations make
	// progress. 0 selects the default.
	YieldThreshold int
}

// DefaultTuning returns constants that behave reasonably on commodity
// hardware.
func DefaultTuning() Tuning {
	return Tuning{
		BackoffBase:       64,
		BackoffFactor:     2,
		BackoffCap:        4096,
		RemoteBackoffBase: 1024,
		RemoteBackoffCap:  16384,
		GetAngryLimit:     32,
		RHRemoteBase:      1024,
		RHRemoteCap:       16384,
		RHFairTries:       4,
		RHGlobalEvery:     64,
		YieldThreshold:    1024,
	}
}

func (t Tuning) yieldThreshold() int {
	if t.YieldThreshold <= 0 {
		return 1024
	}
	return t.YieldThreshold
}

// spinDelay busy-waits for roughly n loop iterations, yielding the
// processor periodically so spinners cannot starve the goroutine holding
// the lock when GOMAXPROCS is smaller than the number of contenders.
func spinDelay(n, yieldEvery int) {
	for i := 0; i < n; i++ {
		if i%yieldEvery == yieldEvery-1 {
			runtime.Gosched()
		}
	}
}

// backoff delays for *b iterations and doubles *b up to cap (the paper's
// backoff helper, Figure 1 lines 11–16).
func backoff(b *int, factor, cap, yieldEvery int) {
	spinDelay(*b, yieldEvery)
	*b *= factor
	if *b > cap {
		*b = cap
	}
}
