package core

import (
	"fmt"
	"time"
)

// HBO-family lock-word values: 0 is free, otherwise node id + 1.
const hboFree uint64 = 0

func hboNodeVal(node int) uint64 { return uint64(node) + 1 }

// isSpinning sentinel: 0 means no neighbor is remote-spinning; the word
// otherwise holds an opaque non-zero tag identifying the lock.
const hboDummy uint64 = 0

type hboMode int

const (
	modeHBO hboMode = iota
	modeGT
	modeGTSD
)

// HBO is the paper's hierarchical backoff lock (Figure 1): the acquiring
// thread cas-es its node id into the lock word; contenders in the
// owner's node back off gently, contenders in other nodes back off hard,
// so the lock (and the data it guards) tends to stay within a node.
//
// The GT variant adds per-node traffic throttling (one word per node
// that a remote-spinning "node winner" uses to hold its neighbors back),
// and GT_SD adds the node-centric starvation detection of Figure 2.
type HBO struct {
	name string
	mode hboMode
	word paddedUint64
	tag  uint64 // non-zero identity stored in is_spinning words
	// isSpinning[n] is node n's throttle word (GT modes).
	isSpinning []paddedUint64
	tun        Tuning
	probeHolder
}

func newHBOVariant(name string, mode hboMode, r *Runtime, tun Tuning) *HBO {
	l := &HBO{name: name, mode: mode, tun: tun, tag: lockIDs.Add(1)}
	if mode != modeHBO {
		l.isSpinning = make([]paddedUint64, r.nodes)
	}
	return l
}

// NewHBO returns an unlocked HBO lock.
func NewHBO(r *Runtime, tun Tuning) *HBO { return newHBOVariant("HBO", modeHBO, r, tun) }

// NewHBOGT returns an unlocked HBO lock with global-traffic throttling.
func NewHBOGT(r *Runtime, tun Tuning) *HBO { return newHBOVariant("HBO_GT", modeGT, r, tun) }

// NewHBOGTSD returns an unlocked HBO_GT lock with starvation detection.
func NewHBOGTSD(r *Runtime, tun Tuning) *HBO {
	return newHBOVariant("HBO_GT_SD", modeGTSD, r, tun)
}

// Name returns the variant name.
func (l *HBO) Name() string { return l.name }

// Acquire implements hbo_acquire (Figure 1, lines 1–10). The fast path
// is a single CAS, so an uncontested HBO acquire costs the same as
// TATAS — the paper's low-latency design goal.
func (l *HBO) Acquire(t *Thread) {
	l.acquire(t, time.Time{})
}

// AcquireFor is the timed, abortable acquire: the same protocol with
// the deadline checked at backoff boundaries. d <= 0 means no bound.
// An abort restores every protocol invariant — the lock word is never
// claimed, the aborting waiter's throttle word is reset and any nodes
// the GT_SD anger logic stopped are released — so Quiescent holds
// after any mix of aborts.
func (l *HBO) AcquireFor(t *Thread, d time.Duration) bool {
	if d <= 0 {
		l.acquire(t, time.Time{})
		return true
	}
	return l.acquire(t, time.Now().Add(d))
}

// acquire runs the protocol; a zero deadline means unbounded (always
// returns true).
func (l *HBO) acquire(t *Thread, deadline time.Time) bool {
	my := hboNodeVal(t.node)
	if l.mode != modeHBO {
		if !l.waitThrottled(t, deadline) {
			return false
		}
	}
	tmp := l.cas(my)
	if tmp == hboFree {
		return true
	}
	return l.acquireSlowpath(t, tmp, deadline)
}

// waitThrottled waits while this node's throttle word names us, giving
// up at the deadline (zero deadline = wait forever).
func (l *HBO) waitThrottled(t *Thread, deadline time.Time) bool {
	y := l.tun.yieldThreshold()
	timed := !deadline.IsZero()
	for l.isSpinning[t.node].v.Load() == l.tag {
		if timed && time.Now().After(deadline) {
			return false
		}
		spinDelay(l.tun.BackoffBase, y)
	}
	return true
}

// cas mirrors the paper's cas(L, FREE, my): it returns FREE exactly when
// the lock was obtained, else the observed owner value. A failed
// CompareAndSwap that then observes FREE (the owner released in between)
// retries, because returning FREE without owning would be a false
// acquisition.
func (l *HBO) cas(my uint64) uint64 {
	for {
		if l.word.v.CompareAndSwap(hboFree, my) {
			return hboFree
		}
		if v := l.word.v.Load(); v != hboFree {
			return v
		}
	}
}

// acquireSlowpath implements Figure 1 lines 17–61 (with the Figure 2
// replacement in GT_SD mode). A zero deadline means unbounded.
func (l *HBO) acquireSlowpath(t *Thread, tmp uint64, deadline time.Time) bool {
	my := hboNodeVal(t.node)
	gt := l.mode != modeHBO
	y := l.tun.yieldThreshold()
	timed := !deadline.IsZero()
	expired := func() bool { return timed && time.Now().After(deadline) }

	l.contended(t)
	var spins int64
	defer func() { l.spun(t, spins) }()

	getAngry := 0
	angry := false
	var stopped []int
	releaseStopped := func() {
		for _, n := range stopped {
			l.isSpinning[n].v.Store(hboDummy)
		}
		stopped = stopped[:0]
	}

start:
	if tmp == my { // lock held in our node: gentle backoff
		b := l.tun.BackoffBase
		for {
			if expired() {
				return false // local waiters publish no auxiliary state
			}
			spins++
			backoff(&b, l.tun.BackoffFactor, l.tun.BackoffCap, y)
			tmp = l.cas(my)
			if tmp == hboFree {
				return true
			}
			if tmp != my {
				backoff(&b, l.tun.BackoffFactor, l.tun.BackoffCap, y)
				goto restart
			}
		}
	}

	// Lock held in a remote node: hard backoff; in GT modes, throttle
	// our neighbors while we are the node winner.
	{
		b := l.tun.RemoteBackoffBase
		bcap := l.tun.RemoteBackoffCap
		if gt {
			l.isSpinning[t.node].v.Store(l.tag)
		}
		for {
			if expired() {
				if gt {
					// Abort mirrors the successful exit so the abandoned
					// attempt leaves the protocol idle.
					l.isSpinning[t.node].v.Store(hboDummy)
					releaseStopped()
				}
				return false
			}
			spins++
			backoff(&b, l.tun.BackoffFactor, bcap, y)
			tmp = l.cas(my)
			if tmp == hboFree {
				if gt {
					l.isSpinning[t.node].v.Store(hboDummy)
					releaseStopped()
				}
				return true
			}
			if tmp == my {
				if gt {
					l.isSpinning[t.node].v.Store(hboDummy)
					releaseStopped()
				}
				goto restart
			}
			if l.mode == modeGTSD {
				getAngry++
				if getAngry >= l.tun.GetAngryLimit {
					getAngry = 0
					owner := int(tmp) - 1
					if owner >= 0 && owner < len(l.isSpinning) &&
						owner != t.node && !containsInt(stopped, owner) {
						stopped = append(stopped, owner)
						l.isSpinning[owner].v.Store(l.tag)
					}
					if !angry {
						angry = true
						b = l.tun.BackoffBase
						bcap = l.tun.BackoffCap
					}
				}
			}
		}
	}

restart:
	// No auxiliary state is held here: both jumps to restart reset the
	// throttle word and the stopped list first.
	if gt {
		if !l.waitThrottled(t, deadline) {
			return false
		}
	}
	tmp = l.cas(my)
	if tmp == hboFree {
		return true
	}
	if expired() {
		return false
	}
	goto start
}

// Release implements hbo_release: a single store.
func (l *HBO) Release(t *Thread) { l.word.v.Store(hboFree) }

// InjectWord overwrites the raw lock word — a fault-injection probe for
// the correctness harness (internal/check), which feeds both HBO twins
// the same corrupted owner encodings and compares survival. Not part of
// the lock algorithm.
func (l *HBO) InjectWord(v uint64) { l.word.v.Store(v) }

// Quiescent verifies the lock's shared state is fully idle: the lock
// word is free and every per-node throttle word has returned to
// hboDummy. Call only when no acquires are in flight.
func (l *HBO) Quiescent() error {
	if v := l.word.v.Load(); v != hboFree {
		return fmt.Errorf("%s: lock word %d not free at quiescence", l.name, v)
	}
	for n := range l.isSpinning {
		if v := l.isSpinning[n].v.Load(); v != hboDummy {
			return fmt.Errorf("%s: is_spinning[%d] = %d at quiescence (node left throttled)",
				l.name, n, v)
		}
	}
	return nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
