package core

import "repro/internal/lockspec"

// The HBO family (HBO, HBO_GT, HBO_GT_SD) is spec-backed: the paper's
// Figure 1/2 protocol lives once in internal/lockspec and instantiates
// here through FromSpec. What remains in this file are the lock-word
// encodings, shared with the hand-written hierarchical variant
// (hbohier.go), and the constructors.

// HBO-family lock-word values: 0 is free, otherwise node id + 1.
const hboFree uint64 = 0

func hboNodeVal(node int) uint64 { return uint64(node) + 1 }

// isSpinning sentinel: 0 means no neighbor is remote-spinning; the word
// otherwise holds an opaque non-zero tag identifying the lock.
const hboDummy uint64 = 0

// NewHBO returns an unlocked HBO lock (Figure 1): the acquiring thread
// cas-es its node id into the lock word; contenders in the owner's node
// back off gently, contenders in other nodes back off hard, so the lock
// (and the data it guards) tends to stay within a node.
func NewHBO(r *Runtime, tun Tuning) Lock { return FromSpec(lockspec.Lookup("HBO"), r, tun) }

// NewHBOGT returns an unlocked HBO lock with global-traffic throttling:
// one word per node that a remote-spinning "node winner" uses to hold
// its neighbors back.
func NewHBOGT(r *Runtime, tun Tuning) Lock { return FromSpec(lockspec.Lookup("HBO_GT"), r, tun) }

// NewHBOGTSD returns an unlocked HBO_GT lock with the node-centric
// starvation detection of Figure 2.
func NewHBOGTSD(r *Runtime, tun Tuning) Lock {
	return FromSpec(lockspec.Lookup("HBO_GT_SD"), r, tun)
}
