package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// countProbe records probe events; counters are atomic because probes
// fire from the contending goroutine.
type countProbe struct {
	contended atomic.Int64
	spunCalls atomic.Int64
	spins     atomic.Int64
	badN      atomic.Int64
}

func (p *countProbe) Contended(t *Thread) { p.contended.Add(1) }

func (p *countProbe) Spun(t *Thread, n int64) {
	if n <= 0 {
		p.badN.Add(1)
	}
	p.spunCalls.Add(1)
	p.spins.Add(n)
}

// TestProbeFiresOnContention verifies the Probe contract for every lock:
// uncontended acquires never touch the probe, and an acquire that waits
// behind a holder reports Contended and positive spin work.
func TestProbeFiresOnContention(t *testing.T) {
	for _, name := range AllNames() {
		t.Run(name, func(t *testing.T) {
			rt := NewRuntimeHierarchical(2, 1, 4)
			l := New(name, rt, DefaultTuning())
			p := &countProbe{}
			pr, ok := l.(Probed)
			if !ok {
				t.Fatalf("%s does not implement Probed", name)
			}
			pr.SetProbe(p)
			t0 := rt.RegisterThread(0)
			t1 := rt.RegisterThread(1)

			for i := 0; i < 3; i++ {
				l.Acquire(t0)
				l.Release(t0)
			}
			if c, s := p.contended.Load(), p.spunCalls.Load(); c != 0 || s != 0 {
				t.Fatalf("probe fired on uncontended path: contended=%d spun=%d", c, s)
			}

			l.Acquire(t0)
			done := make(chan struct{})
			go func() {
				defer close(done)
				l.Acquire(t1)
				l.Release(t1)
			}()
			// Wait until the contender reaches its wait loop, then let it
			// spin a little before handing over.
			deadline := time.Now().Add(10 * time.Second)
			for p.contended.Load() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			time.Sleep(10 * time.Millisecond)
			l.Release(t0)
			<-done

			if p.contended.Load() == 0 {
				t.Fatal("contended acquire reported no Contended event")
			}
			if p.spunCalls.Load() == 0 || p.spins.Load() <= 0 {
				t.Fatalf("contended acquire reported no spin work: calls=%d spins=%d",
					p.spunCalls.Load(), p.spins.Load())
			}
			if p.badN.Load() != 0 {
				t.Fatalf("Spun fired with n <= 0 (%d times)", p.badN.Load())
			}
		})
	}
}

// TestProbeRemovable checks SetProbe(nil) detaches cleanly.
func TestProbeRemovable(t *testing.T) {
	rt := NewRuntime(1, 2)
	l := NewTATAS()
	p := &countProbe{}
	l.(Probed).SetProbe(p)
	l.(Probed).SetProbe(nil)
	t0 := rt.RegisterThread(0)
	l.Acquire(t0)
	l.Release(t0)
	if p.contended.Load() != 0 {
		t.Fatal("detached probe still fired")
	}
}
