package core

import (
	"time"

	"repro/internal/lockspec"
)

// TimedLock is implemented by native locks with a genuinely timed,
// abortable acquire path. AcquireFor attempts the acquisition for at
// most d (d <= 0 means no bound, equivalent to Acquire) and reports
// whether the lock was obtained. An aborted attempt restores every
// protocol invariant, so a Quiescent probe (where the lock has one)
// passes after any mix of aborts.
//
// This is distinct from the AcquireTimeout helper, which polls a
// TryLocker from outside: AcquireFor runs *inside* the lock's own
// waiting loops, so it keeps the algorithm's backoff behaviour (and,
// for the HBO family, its throttle-word protocol) while waiting.
// Queue locks are deliberately absent — their enqueue commits the
// thread, and retracting it needs a full abandonment protocol
// (Scott & Scherer PPoPP 2001; Chabbi et al.'s HMCS-T), which the
// native family does not carry. Their simulated counterpart CLH_TRY
// demonstrates the protocol on the simulated machine.
type TimedLock interface {
	Lock
	AcquireFor(t *Thread, d time.Duration) bool
}

// TimedNames lists the native locks that implement TimedLock, derived
// from the lockspec registry (simulator-only protocols omitted).
func TimedNames() []string { return lockspec.TimedNames(false) }

// AcquireWithin is the capability-dispatching timed acquire: the
// plumbing callers use when the lock algorithm is configuration (the
// lock service arbitrates its shards with whatever -lock names). It
// picks the strongest bounded path the lock offers:
//
//   - a TimedLock waits inside its own algorithm (AcquireFor), keeping
//     its backoff and throttle-word protocol while honouring d;
//   - a TryLocker is polled from outside with exponential backoff
//     (AcquireTimeout);
//   - a plain queue lock has no abortable path — AcquireWithin falls
//     back to the unbounded Acquire and always reports true, so
//     configuring one trades deadline fidelity for FIFO order.
//
// Wrapped locks (internal/obs instrumentation) surface the same
// interfaces, so dispatch sees through them. d <= 0 always blocks.
func AcquireWithin(l Lock, t *Thread, d time.Duration, tun Tuning) bool {
	if d <= 0 {
		l.Acquire(t)
		return true
	}
	if tl, ok := l.(TimedLock); ok {
		return tl.AcquireFor(t, d)
	}
	if tr, ok := l.(TryLocker); ok {
		return AcquireTimeout(tr, t, d, tun)
	}
	l.Acquire(t)
	return true
}

// Bounded reports whether AcquireWithin can actually honour a deadline
// for l (it implements TimedLock or TryLocker, possibly via a
// wrapper). Callers that need hard backpressure — the lock service's
// shard arbitration — use this to warn when a configured algorithm
// can only block.
func Bounded(l Lock) bool {
	if _, ok := l.(TimedLock); ok {
		return true
	}
	_, ok := l.(TryLocker)
	return ok
}
