package core

import (
	"sync"
	"testing"
)

func newTestRuntime(nodes, threads int) *Runtime { return NewRuntime(nodes, threads) }

func TestNamesAndNewCover(t *testing.T) {
	r := newTestRuntime(2, 8)
	for _, name := range Names() {
		l := New(name, r, DefaultTuning())
		if l.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, l.Name())
		}
	}
}

func TestNewUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New("BOGUS", newTestRuntime(1, 1), DefaultTuning())
}

func TestRuntimeValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewRuntime(0, 1) },
		func() { NewRuntime(1, 0) },
		func() { newTestRuntime(2, 1).RegisterThread(5) },
		func() { newTestRuntime(2, 1).RegisterThread(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

func TestRegisterThreadAssignsDenseIDs(t *testing.T) {
	r := newTestRuntime(2, 4)
	seen := map[int]bool{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			th := r.RegisterThread(n % 2)
			mu.Lock()
			seen[th.ID()] = true
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if len(seen) != 4 {
		t.Fatalf("ids not dense/unique: %v", seen)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic registering beyond capacity")
		}
	}()
	r.RegisterThread(0)
}

func TestThreadAccessors(t *testing.T) {
	r := newTestRuntime(3, 2)
	th := r.RegisterThread(2)
	if th.Node() != 2 {
		t.Errorf("Node = %d", th.Node())
	}
	if r.Nodes() != 3 || r.MaxThreads() != 2 {
		t.Errorf("runtime accessors wrong: %d nodes, %d threads", r.Nodes(), r.MaxThreads())
	}
}

// TestMutualExclusionNative hammers every lock with concurrent
// goroutines; run with -race for full effect.
func TestMutualExclusionNative(t *testing.T) {
	const workers, iters = 8, 400
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := newTestRuntime(2, workers)
			l := New(name, r, DefaultTuning())
			counter := 0
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(node int) {
					defer wg.Done()
					th := r.RegisterThread(node)
					for i := 0; i < iters; i++ {
						l.Acquire(th)
						counter++
						l.Release(th)
					}
				}(w % 2)
			}
			wg.Wait()
			if counter != workers*iters {
				t.Fatalf("%s: counter = %d, want %d (lost updates)", name, counter, workers*iters)
			}
		})
	}
}

// TestReentrantSequence: a single thread acquiring and releasing in a
// loop must never deadlock and must leave each lock free for another
// thread afterwards.
func TestReentrantSequence(t *testing.T) {
	for _, name := range Names() {
		r := newTestRuntime(2, 2)
		l := New(name, r, DefaultTuning())
		t0 := r.RegisterThread(0)
		t1 := r.RegisterThread(1)
		for i := 0; i < 100; i++ {
			l.Acquire(t0)
			l.Release(t0)
		}
		done := make(chan struct{})
		go func() {
			l.Acquire(t1)
			l.Release(t1)
			close(done)
		}()
		<-done
	}
}

func TestLockerAdapter(t *testing.T) {
	r := newTestRuntime(1, 2)
	l := NewHBO(r, DefaultTuning())
	var wg sync.WaitGroup
	counter := 0
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lk := Locker{L: l, T: r.RegisterThread(0)}
			for j := 0; j < 200; j++ {
				lk.Lock()
				counter++
				lk.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 400 {
		t.Fatalf("counter = %d", counter)
	}
}

// TestCLHMultipleLocks: a thread's rotating CLH nodes must stay
// independent across distinct locks.
func TestCLHMultipleLocks(t *testing.T) {
	r := newTestRuntime(1, 4)
	l1, l2 := NewCLH(r), NewCLH(r)
	var wg sync.WaitGroup
	c1, c2 := 0, 0
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := r.RegisterThread(0)
			for i := 0; i < 200; i++ {
				l1.Acquire(th)
				c1++
				l1.Release(th)
				l2.Acquire(th)
				c2++
				l2.Release(th)
			}
		}()
	}
	wg.Wait()
	if c1 != 800 || c2 != 800 {
		t.Fatalf("counters = %d, %d; want 800, 800", c1, c2)
	}
}

// TestNestedDistinctLocks: holding one lock while acquiring another
// (lock ordering respected) must work for every pairing, since apps
// like SPLASH-2 nest fine-grained locks.
func TestNestedDistinctLocks(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := newTestRuntime(2, 4)
			outer := New(name, r, DefaultTuning())
			inner := New(name, r, DefaultTuning())
			counter := 0
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(node int) {
					defer wg.Done()
					th := r.RegisterThread(node)
					for i := 0; i < 100; i++ {
						outer.Acquire(th)
						inner.Acquire(th)
						counter++
						inner.Release(th)
						outer.Release(th)
					}
				}(w % 2)
			}
			wg.Wait()
			if counter != 400 {
				t.Fatalf("counter = %d", counter)
			}
		})
	}
}

func TestRHRejectsThreeNodesNative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRH(newTestRuntime(3, 1), DefaultTuning())
}

func TestHBOFourNodesNative(t *testing.T) {
	const workers = 8
	r := newTestRuntime(4, workers)
	for _, name := range []string{"HBO", "HBO_GT", "HBO_GT_SD"} {
		l := New(name, r, DefaultTuning())
		counter := 0
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				th := r.RegisterThread(node)
				for i := 0; i < 150; i++ {
					l.Acquire(th)
					counter++
					l.Release(th)
				}
			}(w % 4)
		}
		wg.Wait()
		if counter != workers*150 {
			t.Fatalf("%s: counter = %d", name, counter)
		}
		r.nextID.Store(0) // reuse ids for the next variant
	}
}

func TestSingleNodeRuntimeAllLocks(t *testing.T) {
	for _, name := range Names() {
		r := newTestRuntime(1, 4)
		l := New(name, r, DefaultTuning())
		counter := 0
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := r.RegisterThread(0)
				for i := 0; i < 200; i++ {
					l.Acquire(th)
					counter++
					l.Release(th)
				}
			}()
		}
		wg.Wait()
		if counter != 800 {
			t.Fatalf("%s: counter = %d", name, counter)
		}
	}
}

func TestTuningYieldThresholdDefault(t *testing.T) {
	var z Tuning
	if z.YieldEvery() != 1024 {
		t.Fatalf("zero Tuning yield threshold = %d", z.YieldEvery())
	}
	tn := Tuning{YieldThreshold: 7}
	if tn.YieldEvery() != 7 {
		t.Fatalf("explicit yield threshold ignored")
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	b := 4
	backoff(&b, 2, 16, 1024)
	if b != 8 {
		t.Fatalf("b = %d, want 8", b)
	}
	backoff(&b, 2, 16, 1024)
	backoff(&b, 2, 16, 1024)
	backoff(&b, 2, 16, 1024)
	if b != 16 {
		t.Fatalf("b = %d, want cap 16", b)
	}
}
