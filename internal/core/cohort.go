package core

import "runtime"

// Cohort implements ticket-ticket lock cohorting (after Dice, Marathe &
// Shavit): a global ticket lock arbitrates between nodes, a per-node
// ticket lock within a node, and a releaser with a local successor hands
// the global lock along the cohort — the deterministic way to get the
// node affinity HBO gets with backoff races. See internal/simlock for
// the simulated twin and design notes.
type Cohort struct {
	globalNext  paddedUint64
	globalOwner paddedUint64
	local       []cohortNode
	myTicket    []uint64
	cohortLimit uint64
	probeHolder
}

type cohortNode struct {
	next      paddedUint64
	owner     paddedUint64
	ownGlobal paddedUint64
	streak    paddedUint64
}

// NewCohort returns an unlocked cohort lock for r's topology.
func NewCohort(r *Runtime) *Cohort {
	return &Cohort{
		local:       make([]cohortNode, r.nodes),
		myTicket:    make([]uint64, r.maxThreads),
		cohortLimit: 64,
	}
}

// Name returns "COHORT".
func (l *Cohort) Name() string { return "COHORT" }

// Acquire takes the node-local ticket lock, then the global lock unless
// the node already owns it.
func (l *Cohort) Acquire(t *Thread) {
	n := &l.local[t.node]
	my := n.next.v.Add(1) - 1
	l.myTicket[t.id] = my
	if n.owner.v.Load() != my {
		l.contended(t)
		var spins int64
		for n.owner.v.Load() != my {
			spins++
			runtime.Gosched()
		}
		l.spun(t, spins)
	}
	if n.ownGlobal.v.Load() != 0 {
		return
	}
	g := l.globalNext.v.Add(1) - 1
	if l.globalOwner.v.Load() != g {
		l.contended(t)
		var spins int64
		for l.globalOwner.v.Load() != g {
			spins++
			runtime.Gosched()
		}
		l.spun(t, spins)
	}
	n.ownGlobal.v.Store(1)
}

// Release hands over in-node when a local successor exists and the
// cohort limit allows; otherwise it releases the global lock.
func (l *Cohort) Release(t *Thread) {
	n := &l.local[t.node]
	my := l.myTicket[t.id]
	succ := n.next.v.Load() > my+1
	streak := n.streak.v.Load()
	if succ && streak < l.cohortLimit {
		n.streak.v.Store(streak + 1)
		n.owner.v.Store(my + 1)
		return
	}
	n.streak.v.Store(0)
	n.ownGlobal.v.Store(0)
	l.globalOwner.v.Add(1)
	n.owner.v.Store(my + 1)
}
