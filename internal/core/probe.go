package core

// Probe receives slow-path events from a lock. It exists for the live
// observability layer (internal/obs): locks report contention and spin
// work through it without the observer having to wrap or poll them.
//
// Probes fire only from acquire slow paths — an uncontended acquire
// never touches the probe, so installing one adds nothing to the fast
// path beyond the wrapper's own bookkeeping. Multi-stage locks
// (REACTIVE's queue+word, COHORT's local+global tickets) may fire
// Contended more than once for a single logical acquire; consumers that
// need at-most-once semantics must dedup per acquire, the way
// internal/obs does with its per-thread in-slow-path flag.
//
// Install probes with SetProbe before the lock is shared: the probe
// field is read without synchronization from acquire paths, so mutating
// it while acquires are in flight is a data race.
type Probe interface {
	// Contended reports that thread t entered a wait loop: the acquire
	// observed the lock (or its stage) held and is about to spin.
	Contended(t *Thread)
	// Spun reports that thread t performed n spin/backoff iterations
	// while waiting. It fires when the wait completes (including timed
	// acquires that give up), never with n <= 0.
	Spun(t *Thread, n int64)
}

// Probed is implemented by every lock in this package: anything that
// accepts a Probe. internal/obs type-asserts against it when wrapping.
type Probed interface {
	SetProbe(Probe)
}

// probeHolder embeds probe plumbing into a lock. The helpers keep the
// nil checks out of the algorithms' slow paths.
type probeHolder struct {
	probe Probe
}

// SetProbe installs p (nil removes it). Call before sharing the lock.
func (h *probeHolder) SetProbe(p Probe) { h.probe = p }

func (h *probeHolder) contended(t *Thread) {
	if h.probe != nil {
		h.probe.Contended(t)
	}
}

func (h *probeHolder) spun(t *Thread, n int64) {
	if h.probe != nil && n > 0 {
		h.probe.Spun(t, n)
	}
}
