package core

// Reactive is the simplified Lim & Agarwal reactive lock, twin of the
// simulator version in internal/simlock: the TATAS word always provides
// mutual exclusion; queue mode routes contenders through an MCS queue
// in front of it, and the holder flips modes with hysteresis.
type Reactive struct {
	mode    paddedUint64 // 0 = spin, 1 = queue in front of the word
	counter paddedUint64 // hysteresis, written only while holding
	// word is the TATAS_EXP-style lock word that carries mutual
	// exclusion in both modes.
	word   paddedUint64
	tun    Tuning
	mcs    *MCS
	queued []bool
	probeHolder
}

// Hysteresis thresholds (see internal/simlock/reactive.go).
const (
	reactToQueue = 8
	reactToSpin  = 16
)

// NewReactive returns an unlocked reactive lock.
func NewReactive(r *Runtime, tun Tuning) *Reactive {
	return &Reactive{
		tun:    tun,
		mcs:    NewMCS(r),
		queued: make([]bool, r.maxThreads),
	}
}

// SetProbe cascades the probe to the spin word and the MCS queue, so a
// queued-then-contended acquire may fire Contended twice (see Probe).
func (l *Reactive) SetProbe(p Probe) {
	l.probeHolder.SetProbe(p)
	l.mcs.SetProbe(p)
}

// spinSlowpath is the TATAS_EXP contention loop (exponential backoff
// between test&set attempts), inlined here so the spin mode matches the
// spec-backed TATAS_EXP's behavior without reaching into it.
func (l *Reactive) spinSlowpath(t *Thread) {
	l.contended(t)
	b := l.tun.BackoffBase
	y := l.tun.YieldEvery()
	var spins int64
	for {
		spins++
		backoff(&b, l.tun.BackoffFactor, l.tun.BackoffCap, y)
		if l.word.v.Load() != 0 {
			continue
		}
		if l.word.v.Swap(1) == 0 {
			l.spun(t, spins)
			return
		}
	}
}

// Name returns "REACTIVE".
func (l *Reactive) Name() string { return "REACTIVE" }

// Acquire obtains the lock through the current mode's protocol.
func (l *Reactive) Acquire(t *Thread) {
	viaQueue := l.mode.v.Load() == 1
	l.queued[t.id] = viaQueue
	if viaQueue {
		l.mcs.Acquire(t)
	}
	contended := l.word.v.Swap(1) != 0
	if contended {
		l.spinSlowpath(t)
	}
	// Bookkeeping while holding the lock.
	c := l.counter.v.Load()
	if viaQueue {
		if l.mcs.qnodes[t.id].next.v.Load() < 0 {
			c++
			if c >= reactToSpin {
				l.mode.v.Store(0)
				c = 0
			}
		} else {
			c = 0
		}
	} else {
		if contended {
			c++
			if c >= reactToQueue {
				l.mode.v.Store(1)
				c = 0
			}
		} else if c > 0 {
			c--
		}
	}
	l.counter.v.Store(c)
}

// Release unlocks through the protocol the caller acquired with.
func (l *Reactive) Release(t *Thread) {
	l.word.v.Store(0)
	if l.queued[t.id] {
		l.mcs.Release(t)
	}
}
