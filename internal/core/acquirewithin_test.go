package core

import (
	"testing"
	"time"
)

// TestAcquireWithinFree: every algorithm takes a free lock through the
// unified bounded path, whatever capability it advertises.
func TestAcquireWithinFree(t *testing.T) {
	for _, name := range AllNames() {
		r := newTestRuntime(2, 1)
		l := New(name, r, DefaultTuning())
		th := r.RegisterThread(0)
		if !AcquireWithin(l, th, 20*time.Millisecond, DefaultTuning()) {
			t.Errorf("%s: AcquireWithin on a free lock failed", name)
			continue
		}
		l.Release(th)
		// d <= 0 is the blocking path; a free lock must still be taken.
		if !AcquireWithin(l, th, 0, DefaultTuning()) {
			t.Errorf("%s: AcquireWithin(d=0) failed", name)
			continue
		}
		l.Release(th)
	}
}

// TestAcquireWithinHeld: for every bounded algorithm (timed or
// try-lock), AcquireWithin on a held lock gives up within its budget
// and leaves the protocol intact.
func TestAcquireWithinHeld(t *testing.T) {
	for _, name := range AllNames() {
		r := newTestRuntime(2, 2)
		l := New(name, r, DefaultTuning())
		if !Bounded(l) {
			continue // would block forever by contract
		}
		holder := r.RegisterThread(0)
		waiter := r.RegisterThread(1)
		l.Acquire(holder)
		start := time.Now()
		if AcquireWithin(l, waiter, 10*time.Millisecond, DefaultTuning()) {
			t.Errorf("%s: bounded acquire succeeded while held", name)
			l.Release(waiter)
		}
		if e := time.Since(start); e > 2*time.Second {
			t.Errorf("%s: bounded acquire took %v for a 10ms budget", name, e)
		}
		l.Release(holder)
		// The abort must leave the lock acquirable.
		if !AcquireWithin(l, waiter, 100*time.Millisecond, DefaultTuning()) {
			t.Errorf("%s: acquire after abort failed", name)
			continue
		}
		l.Release(waiter)
	}
}

// TestBoundedCoverage pins which algorithms support a bounded acquire:
// everything that is a TimedLock or a TryLocker, and every name the
// lease service can be configured with must qualify via one of the
// two (the service sheds load by aborting shard-lock acquires).
func TestBoundedCoverage(t *testing.T) {
	r := newTestRuntime(2, 1)
	bounded := 0
	for _, name := range AllNames() {
		l := New(name, r, DefaultTuning())
		_, timed := l.(TimedLock)
		_, try := l.(TryLocker)
		if Bounded(l) != (timed || try) {
			t.Errorf("%s: Bounded = %v, want timed(%v) || try(%v)", name, Bounded(l), timed, try)
		}
		if Bounded(l) {
			bounded++
		}
	}
	if bounded == 0 {
		t.Fatal("no algorithm supports bounded acquisition")
	}
}
