package machine

import "fmt"

// This file is the always-on checkable form of the coherence invariants
// that used to live only in invariants_test.go. The machine's directory
// doubles as the ground truth for every CPU's cache, so three families
// of checks cover the protocol:
//
//   - MESI state validity: a Modified line has exactly one writer (an
//     in-range owner, no sharers); a Shared line has at least one sharer
//     and only in-range ones; an Uncached line has neither.
//   - Directory–cache ownership consistency: the CPU completing a write
//     must leave the directory showing it as the exclusive owner, and a
//     CPU completing a read must hold a valid copy.
//   - Conservation: the per-line traffic attribution (lineTraffic) must
//     sum to the machine-level Stats counters — the two are updated in
//     lockstep and any drift means attribution is lying.
//
// With Config.Probes set, the state checks run at every memory-access
// completion and the first violation is latched (ProbeError); the
// whole-machine checks are cheap enough to run after every simulation.

// CheckInvariants validates the directory's structural invariants for
// every line, plus any violation latched by the per-access probes. The
// waiter check only holds once the simulation has drained (spinners may
// legitimately be parked mid-run), so call it after Run.
func (m *Machine) CheckInvariants() error {
	if m.probeFailure != nil {
		return m.probeFailure
	}
	for i := range m.lines {
		if err := m.checkLine(i); err != nil {
			return err
		}
		if n := len(m.lines[i].waiters); n != 0 {
			return fmt.Errorf("machine: line %d: %d waiters left parked", i, n)
		}
	}
	return m.CheckConservation()
}

// checkLine validates the MESI state invariants of line i.
func (m *Machine) checkLine(i int) error {
	l := &m.lines[i]
	switch l.state {
	case stateModified:
		if !l.sharers.empty() {
			return fmt.Errorf("machine: line %d: Modified with sharers %b", i, l.sharers)
		}
		if l.owner < 0 || l.owner >= m.cfg.TotalCPUs() {
			return fmt.Errorf("machine: line %d: Modified with owner %d out of range", i, l.owner)
		}
	case stateShared:
		if l.sharers.empty() {
			return fmt.Errorf("machine: line %d: Shared with no sharers", i)
		}
		if max := m.cfg.TotalCPUs(); max < 64 && l.sharers>>uint(max) != 0 {
			return fmt.Errorf("machine: line %d: sharer bitmap %b names CPUs >= %d", i, l.sharers, max)
		}
	case stateUncached:
		if !l.sharers.empty() {
			return fmt.Errorf("machine: line %d: Uncached with sharers %b", i, l.sharers)
		}
	default:
		return fmt.Errorf("machine: line %d: invalid state %d", i, l.state)
	}
	return nil
}

// CheckConservation verifies that per-line traffic attribution sums to
// the machine totals: every counted transaction is attributed to exactly
// one line and vice versa.
func (m *Machine) CheckConservation() error {
	var local, global uint64
	for i := range m.lines {
		local += m.lines[i].traf.local
		global += m.lines[i].traf.global
	}
	if want := m.stats.TotalLocal(); local != want {
		return fmt.Errorf("machine: per-line local traffic %d != machine total %d", local, want)
	}
	if m.stats.Global != global {
		return fmt.Errorf("machine: per-line global traffic %d != machine total %d", global, m.stats.Global)
	}
	return nil
}

// ProbeError returns the first violation recorded by the per-access
// probes (nil when Probes is off or nothing fired).
func (m *Machine) ProbeError() error { return m.probeFailure }

// probeFail latches the first probe violation. Latching instead of
// panicking lets the correctness harness report the violation alongside
// the schedule that produced it.
func (m *Machine) probeFail(err error) {
	if m.probeFailure == nil {
		m.probeFailure = err
	}
}

// probeLine runs the per-line state checks at an access completion.
func (m *Machine) probeLine(a Addr) {
	if !m.cfg.Probes || m.probeFailure != nil {
		return
	}
	if err := m.checkLine(int(a) / m.wordsPerLine()); err != nil {
		m.probeFail(err)
	}
}

// probeAfterWrite asserts directory–cache ownership consistency after a
// write completion: the writing CPU must be the sole (Modified) owner.
func (m *Machine) probeAfterWrite(cpu int, a Addr) {
	if !m.cfg.Probes || m.probeFailure != nil {
		return
	}
	l := m.lineOf(a)
	if l.state != stateModified || l.owner != cpu {
		m.probeFail(fmt.Errorf(
			"machine: cpu %d completed a write to %d but directory shows state=%d owner=%d",
			cpu, a, l.state, l.owner))
		return
	}
	m.probeLine(a)
}

// probeAfterRead asserts that a CPU completing a read holds a valid copy.
func (m *Machine) probeAfterRead(cpu int, a Addr) {
	if !m.cfg.Probes || m.probeFailure != nil {
		return
	}
	if !m.cached(cpu, a) {
		m.probeFail(fmt.Errorf(
			"machine: cpu %d completed a read of %d without a valid copy", cpu, a))
		return
	}
	m.probeLine(a)
}
