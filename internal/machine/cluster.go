package machine

import (
	"fmt"

	"repro/internal/sim"
)

// This file is the parallel-simulation tier of the machine package: a
// cluster-scale interconnect model that runs ONE big machine across all
// host cores, byte-identically at any worker width.
//
// The word-level coherence machine (machine.go/proc.go) simulates every
// cache line of a 2..8-node box exactly, but its directory, buses and
// global link are shared state touched by every access, so a single run
// is inherently one partition — it stays on the sequential engine. The
// cluster model trades word-level detail for scale: each node is one
// sim.Part owning all of its CPUs' state, and the only cross-node
// interactions are the interconnect transactions the HBO paper actually
// reasons about — lock probes (CAS requests), grant/deny replies and
// releases — carried as timestamped messages whose one-way latency is
// the latency tree's flight time. The PDES lookahead is exactly
// Latencies.MinCrossNodeFlight, so the conservative window argument is
// inherited from the hardware model rather than hand-tuned.
//
// The model reproduces the paper's mechanism at scales the original
// machine cannot reach (hundreds of nodes): uniform exponential backoff
// floods the interconnect with remote probes, while HBO-style remote
// throttling (back off harder when the observed holder is on another
// node) keeps traffic near-local and trades a controlled amount of
// fairness for it.

// ClusterPolicy selects the backoff algorithm the cluster CPUs run.
type ClusterPolicy string

const (
	// ClusterTATASExp is uniform capped exponential backoff: the
	// distance to the lock holder does not change the delay.
	ClusterTATASExp ClusterPolicy = "tatas_exp"
	// ClusterHBO throttles remote probes the way the paper's HBO lock
	// does: a CPU that loses to a holder on another node backs off
	// against RemoteCap (>> Cap), so lock traffic stays on the holder's
	// node while remote nodes stay away.
	ClusterHBO ClusterPolicy = "hbo"
)

// ClusterConfig describes one big-machine cluster simulation.
type ClusterConfig struct {
	// Nodes is the number of NUCA nodes (= PDES partitions). At least 2
	// — a single node has no interconnect to model.
	Nodes int
	// CPUsPerNode is the number of lock-contending CPUs on each node.
	CPUsPerNode int
	// ClusterSize groups nodes into super-clusters (0/1 = flat): probes
	// inside a cluster pay C2CRemote, across clusters C2CFar.
	ClusterSize int
	// Lat is the latency calibration; cross-node message latency and
	// the PDES lookahead both derive from it.
	Lat Latencies
	// Policy is the backoff algorithm (default ClusterTATASExp).
	Policy ClusterPolicy
	// Iters is how many acquire/release pairs each CPU performs.
	Iters int
	// Think is the mean exponential think time between a CPU's release
	// and its next acquire attempt.
	Think sim.Time
	// Hold is the critical-section hold time.
	Hold sim.Time
	// Base, Cap and RemoteCap are backoff bounds in BackoffUnit units:
	// delay doubles from Base per consecutive failure up to Cap (local
	// holder) or RemoteCap (remote holder, HBO policy only; 0 falls
	// back to Cap).
	Base, Cap, RemoteCap int
	// Seed drives every per-node RNG stream (partition-stable).
	Seed uint64
	// TimeLimit stops the run even if iterations remain (0 = none).
	TimeLimit sim.Time
}

// Validate reports configuration errors, mirroring Config.Validate's
// role as the single up-front gate for cluster shapes.
func (c ClusterConfig) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("machine: cluster Nodes = %d, need >= 2", c.Nodes)
	}
	if c.CPUsPerNode < 1 {
		return fmt.Errorf("machine: cluster CPUsPerNode = %d, need >= 1", c.CPUsPerNode)
	}
	if c.ClusterSize < 0 {
		return fmt.Errorf("machine: cluster ClusterSize = %d, need >= 0", c.ClusterSize)
	}
	if c.Iters < 1 && c.TimeLimit <= 0 {
		return fmt.Errorf("machine: cluster needs Iters >= 1 or a TimeLimit")
	}
	if c.Lat.C2CRemote <= 0 {
		return fmt.Errorf("machine: cluster C2CRemote = %v, need > 0", c.Lat.C2CRemote)
	}
	if c.Base < 1 || c.Cap < c.Base {
		return fmt.Errorf("machine: cluster backoff Base=%d Cap=%d, need 1 <= Base <= Cap", c.Base, c.Cap)
	}
	if c.RemoteCap != 0 && c.RemoteCap < c.Cap {
		return fmt.Errorf("machine: cluster RemoteCap=%d below Cap=%d", c.RemoteCap, c.Cap)
	}
	switch c.policy() {
	case ClusterTATASExp, ClusterHBO:
	default:
		return fmt.Errorf("machine: unknown cluster policy %q", c.Policy)
	}
	return nil
}

func (c ClusterConfig) policy() ClusterPolicy {
	if c.Policy == "" {
		return ClusterTATASExp
	}
	return c.Policy
}

func (c ClusterConfig) remoteCap() int {
	if c.RemoteCap > 0 {
		return c.RemoteCap
	}
	return c.Cap
}

func (c ClusterConfig) backoffUnit() sim.Time {
	if c.Lat.BackoffUnit > 0 {
		return c.Lat.BackoffUnit
	}
	return 1
}

// clusterOf mirrors Machine.ClusterOf for the cluster config.
func (c ClusterConfig) clusterOf(node int) int {
	if c.ClusterSize <= 1 {
		return node
	}
	return node / c.ClusterSize
}

// flight returns the one-way message latency between two distinct
// nodes: half the cache-to-cache transfer cost at their distance,
// never below the engine lookahead (both derive from the same tree).
func (c ClusterConfig) flight(a, b int) sim.Time {
	lat := c.Lat.C2CRemote
	if c.ClusterSize > 1 && c.clusterOf(a) != c.clusterOf(b) && c.Lat.C2CFar > 0 {
		lat = c.Lat.C2CFar
	}
	f := lat / 2
	if min := c.Lat.MinCrossNodeFlight(); f < min {
		f = min
	}
	return f
}

// ClusterNodeStats is one node's view of the run. Every field is
// written only by that node's partition, which is what makes the
// aggregate deterministic at any worker width.
type ClusterNodeStats struct {
	Attempts     uint64   `json:"attempts"`      // CAS probes issued
	Acquires     uint64   `json:"acquires"`      // successful acquires completed
	Denies       uint64   `json:"denies"`        // probes that lost
	RemoteDenies uint64   `json:"remote_denies"` // lost to a holder on another node
	GlobalMsgs   uint64   `json:"global_msgs"`   // interconnect messages sent
	BackoffTime  sim.Time `json:"backoff_ns"`    // total time spent backed off
}

// ClusterResult is the merged outcome of a cluster run.
type ClusterResult struct {
	Policy   ClusterPolicy      `json:"policy"`
	Nodes    []ClusterNodeStats `json:"nodes"`
	Elapsed  sim.Time           `json:"elapsed_ns"`
	Workers  int                `json:"workers"`
	Acquires uint64             `json:"acquires"`
	Attempts uint64             `json:"attempts"`
	Global   uint64             `json:"global_msgs"`
}

// GlobalPerAcquire is the run's headline traffic metric (cf. Table 2).
func (r ClusterResult) GlobalPerAcquire() float64 {
	if r.Acquires == 0 {
		return 0
	}
	return float64(r.Global) / float64(r.Acquires)
}

// Throughput returns completed acquires per simulated second.
func (r ClusterResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Acquires) / r.Elapsed.Seconds()
}

// Fairness returns min/max completed acquires across nodes (1 = fully
// fair, 0 = some node starved), the cluster-scale analogue of Fig 8.
func (r ClusterResult) Fairness() float64 {
	var min, max uint64
	for i, n := range r.Nodes {
		if i == 0 || n.Acquires < min {
			min = n.Acquires
		}
		if n.Acquires > max {
			max = n.Acquires
		}
	}
	if max == 0 {
		return 0
	}
	return float64(min) / float64(max)
}

// clusterCPU is one contending CPU's state machine; all of its events
// run on its node's partition.
type clusterCPU struct {
	node     int
	id       int // cpu index within the node
	attempts int // consecutive failed probes (backoff exponent)
	done     int // completed acquire/release pairs
}

// clusterNode is one partition's state: its CPUs, RNG stream and stats.
type clusterNode struct {
	part *sim.Part
	rng  *sim.RNG
	st   ClusterNodeStats
	cpus []clusterCPU
}

// clusterLock is the lock home's directory word, owned by partition
// home. owner encodes the holding CPU as node*CPUsPerNode+id, -1 free.
// A run with Iters set terminates by drain: once every CPU has
// completed its iterations no new events are scheduled and Run returns
// with the event set empty, so no grant or release is ever cut off
// mid-flight.
type clusterLock struct {
	owner     int
	ownerNode int
}

// RunCluster executes one cluster simulation on workers PDES workers
// and returns the merged result. The result is byte-identical for any
// workers value (including 1); workers only changes wall-clock time.
func RunCluster(cfg ClusterConfig, workers int) ClusterResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	const home = 0
	lookahead := cfg.Lat.MinCrossNodeFlight()
	eng := sim.NewParEngine(cfg.Nodes, workers, lookahead)
	if cfg.TimeLimit > 0 {
		eng.SetLimit(cfg.TimeLimit)
	}
	nodes := make([]*clusterNode, cfg.Nodes)
	for i := range nodes {
		nodes[i] = &clusterNode{
			part: eng.Part(i),
			rng:  sim.NewRNG(sim.PartitionSeed(cfg.Seed, i)),
			cpus: make([]clusterCPU, cfg.CPUsPerNode),
		}
		for c := range nodes[i].cpus {
			nodes[i].cpus[c] = clusterCPU{node: i, id: c}
		}
	}
	lock := &clusterLock{owner: -1, ownerNode: -1}
	unit := cfg.backoffUnit()

	// The state machine below runs entirely in event context. Requests,
	// replies and releases between a CPU's node and the lock home are
	// sim.Part.Send messages when the nodes differ (each counted as one
	// interconnect crossing) and plain intra-partition events when the
	// CPU lives on the home node — the cluster-scale analogue of the
	// local/global transaction split in Stats.
	var (
		attempt func(n *clusterNode, c *clusterCPU)
		granted func(n *clusterNode, c *clusterCPU)
		denied  func(n *clusterNode, c *clusterCPU, holderNode int)
	)
	localHalf := cfg.Lat.C2CLocal/2 + 1
	decide := func(c *clusterCPU) { // runs on the home partition
		h := nodes[home]
		requester := nodes[c.node]
		grant := lock.owner < 0
		holderNode := lock.ownerNode
		if grant {
			lock.owner = c.node*cfg.CPUsPerNode + c.id
			lock.ownerNode = c.node
		}
		reply := func() {
			if grant {
				granted(requester, c)
			} else {
				denied(requester, c, holderNode)
			}
		}
		if c.node == home {
			// Local probe: the reply is the second half of the local
			// round trip.
			h.part.Schedule(localHalf, reply)
		} else {
			h.st.GlobalMsgs++
			h.part.Send(c.node, cfg.flight(home, c.node), reply)
		}
	}
	release := func() { // runs on the home partition
		lock.owner = -1
		lock.ownerNode = -1
	}
	think := func(n *clusterNode, c *clusterCPU) {
		n.part.Schedule(1+n.rng.Exp(cfg.Think+1), func() { attempt(n, c) })
	}
	attempt = func(n *clusterNode, c *clusterCPU) {
		n.st.Attempts++
		if c.node == home {
			n.part.Schedule(localHalf, func() { decide(c) })
			return
		}
		n.st.GlobalMsgs++
		n.part.Send(home, cfg.flight(c.node, home), func() { decide(c) })
	}
	granted = func(n *clusterNode, c *clusterCPU) { // requester partition
		n.st.Acquires++
		c.attempts = 0
		c.done++
		// Hold the critical section, then hand the release back to the
		// home directory.
		n.part.Schedule(cfg.Hold+1, func() {
			if c.node == home {
				n.part.Schedule(localHalf, release)
			} else {
				n.st.GlobalMsgs++
				n.part.Send(home, cfg.flight(c.node, home), release)
			}
			if cfg.Iters < 1 || c.done < cfg.Iters {
				think(n, c)
			}
		})
	}
	denied = func(n *clusterNode, c *clusterCPU, holderNode int) { // requester partition
		n.st.Denies++
		remote := holderNode >= 0 && holderNode != c.node
		if remote {
			n.st.RemoteDenies++
		}
		c.attempts++
		shift := c.attempts - 1
		if shift > 16 {
			shift = 16
		}
		units := cfg.Base << uint(shift)
		capUnits := cfg.Cap
		if cfg.policy() == ClusterHBO && remote {
			capUnits = cfg.remoteCap()
		}
		if units > capUnits {
			units = capUnits
		}
		span := sim.Time(units) * unit
		delay := span/2 + 1 + n.rng.Timen(span/2+1)
		n.st.BackoffTime += delay
		n.part.Schedule(delay, func() { attempt(n, c) })
	}
	for _, n := range nodes {
		for i := range n.cpus {
			think(n, &n.cpus[i])
		}
	}
	eng.Run()
	eng.Shutdown()

	res := ClusterResult{Policy: cfg.policy(), Workers: workers, Elapsed: eng.Now()}
	for _, n := range nodes {
		res.Nodes = append(res.Nodes, n.st)
		res.Acquires += n.st.Acquires
		res.Attempts += n.st.Attempts
		res.Global += n.st.GlobalMsgs
	}
	return res
}
