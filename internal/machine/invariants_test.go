package machine

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// invariantErr checks the directory's structural invariants after a run.
func (m *Machine) invariantErr() error {
	for i := range m.lines {
		l := &m.lines[i]
		switch l.state {
		case stateModified:
			if !l.sharers.empty() {
				return fmt.Errorf("line %d: Modified with sharers %b", i, l.sharers)
			}
			if l.owner < 0 || l.owner >= m.cfg.TotalCPUs() {
				return fmt.Errorf("line %d: Modified with owner %d", i, l.owner)
			}
		case stateShared:
			if l.sharers.empty() {
				return fmt.Errorf("line %d: Shared with no sharers", i)
			}
		case stateUncached:
			if !l.sharers.empty() {
				return fmt.Errorf("line %d: Uncached with sharers %b", i, l.sharers)
			}
		}
		if len(l.waiters) != 0 {
			return fmt.Errorf("line %d: %d waiters left parked", i, len(l.waiters))
		}
	}
	return nil
}

// TestCoherenceInvariantsUnderRandomOps drives random loads, stores and
// RMWs from every CPU, then validates the directory and that each
// word's final value equals the last completed write (tracked by
// shadowing every mutation through the same serialized order the
// machine applies).
func TestCoherenceInvariantsUnderRandomOps(t *testing.T) {
	type scenario struct {
		Seed  uint64
		Words uint8
		Ops   uint8
	}
	f := func(sc scenario) bool {
		cfg := WildFire()
		cfg.CPUsPerNode = 4
		cfg.Seed = sc.Seed
		m := New(cfg)
		words := int(sc.Words%6) + 1
		addrs := make([]Addr, words)
		for i := range addrs {
			addrs[i] = m.Alloc(i%cfg.Nodes, 1)
		}
		ops := int(sc.Ops%40) + 10
		// Shadow counters: every op that writes adds a known delta, so
		// the final value must equal the sum of applied deltas.
		expect := make([]uint64, words)
		for cpu := 0; cpu < 8; cpu++ {
			cpu := cpu
			m.Spawn(cpu, func(p *Proc) {
				rng := sim.NewRNG(sc.Seed*31 + uint64(cpu) + 1)
				for i := 0; i < ops; i++ {
					w := rng.Intn(words)
					a := addrs[w]
					switch rng.Intn(4) {
					case 0:
						p.Load(a)
					case 1:
						// Atomic add via CAS retry: a known delta.
						for {
							v := p.Load(a)
							if p.CAS(a, v, v+3) == v {
								break
							}
						}
						expect[w] += 3
					case 2:
						for {
							v := p.Load(a)
							if p.CAS(a, v, v+7) == v {
								break
							}
						}
						expect[w] += 7
					case 3:
						p.Work(rng.Timen(500) + 1)
					}
				}
			})
		}
		m.Run()
		if err := m.invariantErr(); err != nil {
			t.Log(err)
			return false
		}
		for w := range addrs {
			if m.Peek(addrs[w]) != expect[w] {
				t.Logf("word %d: final %d, expect %d", w, m.Peek(addrs[w]), expect[w])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSwapSerializesTotalOrder: concurrent Swaps on one word observe a
// chain — each return value was some other op's written value (or the
// initial), and all writes are distinct, so the multiset of (returned +
// final) values equals (initial + all written).
func TestSwapSerializesTotalOrder(t *testing.T) {
	m := New(func() Config { c := WildFire(); c.CPUsPerNode = 4; c.Seed = 5; return c }())
	a := m.Alloc(0, 1)
	const perCPU = 30
	seen := map[uint64]int{}
	for cpu := 0; cpu < 8; cpu++ {
		cpu := cpu
		m.Spawn(cpu, func(p *Proc) {
			rng := sim.NewRNG(uint64(cpu) + 99)
			for i := 0; i < perCPU; i++ {
				v := uint64(cpu*1000 + i + 1)
				old := p.Swap(a, v)
				seen[old]++
				p.Work(rng.Timen(800) + 1)
			}
		})
	}
	m.Run()
	seen[m.Peek(a)]++
	// Every written value plus the initial zero must appear exactly once.
	if seen[0] != 1 {
		t.Fatalf("initial value observed %d times", seen[0])
	}
	for cpu := 0; cpu < 8; cpu++ {
		for i := 0; i < perCPU; i++ {
			v := uint64(cpu*1000 + i + 1)
			if seen[v] != 1 {
				t.Fatalf("value %d observed %d times (swap chain broken)", v, seen[v])
			}
		}
	}
}
