package machine

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestCoherenceInvariantsUnderRandomOps drives random loads, stores and
// RMWs from every CPU, then validates the directory and that each
// word's final value equals the last completed write (tracked by
// shadowing every mutation through the same serialized order the
// machine applies).
func TestCoherenceInvariantsUnderRandomOps(t *testing.T) {
	type scenario struct {
		Seed  uint64
		Words uint8
		Ops   uint8
	}
	f := func(sc scenario) bool {
		cfg := WildFire()
		cfg.CPUsPerNode = 4
		cfg.Seed = sc.Seed
		cfg.Probes = true
		cfg.TieBreakSeed = sc.Seed * 3
		m := New(cfg)
		words := int(sc.Words%6) + 1
		addrs := make([]Addr, words)
		for i := range addrs {
			addrs[i] = m.Alloc(i%cfg.Nodes, 1)
		}
		ops := int(sc.Ops%40) + 10
		// Shadow counters: every op that writes adds a known delta, so
		// the final value must equal the sum of applied deltas.
		expect := make([]uint64, words)
		for cpu := 0; cpu < 8; cpu++ {
			cpu := cpu
			m.Spawn(cpu, func(p *Proc) {
				rng := sim.NewRNG(sc.Seed*31 + uint64(cpu) + 1)
				for i := 0; i < ops; i++ {
					w := rng.Intn(words)
					a := addrs[w]
					switch rng.Intn(4) {
					case 0:
						p.Load(a)
					case 1:
						// Atomic add via CAS retry: a known delta.
						for {
							v := p.Load(a)
							if p.CAS(a, v, v+3) == v {
								break
							}
						}
						expect[w] += 3
					case 2:
						for {
							v := p.Load(a)
							if p.CAS(a, v, v+7) == v {
								break
							}
						}
						expect[w] += 7
					case 3:
						p.Work(rng.Timen(500) + 1)
					}
				}
			})
		}
		m.Run()
		if err := m.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		for w := range addrs {
			if m.Peek(addrs[w]) != expect[w] {
				t.Logf("word %d: final %d, expect %d", w, m.Peek(addrs[w]), expect[w])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckInvariantsDetectsCorruption corrupts the directory in each of
// the ways CheckInvariants guards against and verifies each is reported.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	build := func() (*Machine, Addr) {
		m := New(func() Config { c := WildFire(); c.CPUsPerNode = 2; return c }())
		a := m.Alloc(0, 1)
		m.Spawn(0, func(p *Proc) { p.Store(a, 1) })
		m.Run()
		return m, a
	}
	cases := []struct {
		name    string
		corrupt func(m *Machine, a Addr)
		want    string
	}{
		{"modified-with-sharers", func(m *Machine, a Addr) {
			m.lineOf(a).sharers.add(1)
		}, "Modified with sharers"},
		{"owner-out-of-range", func(m *Machine, a Addr) {
			m.lineOf(a).owner = 999
		}, "owner 999 out of range"},
		{"shared-without-sharers", func(m *Machine, a Addr) {
			m.lineOf(a).state = stateShared
		}, "Shared with no sharers"},
		{"uncached-with-sharers", func(m *Machine, a Addr) {
			l := m.lineOf(a)
			l.state = stateUncached
			l.sharers.add(0)
		}, "Uncached with sharers"},
		{"attribution-drift", func(m *Machine, a Addr) {
			m.lineOf(a).traf.local++
		}, "local traffic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, a := build()
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("clean machine failed: %v", err)
			}
			tc.corrupt(m, a)
			err := m.CheckInvariants()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("corruption %s not detected: err = %v", tc.name, err)
			}
		})
	}
}

// TestProbesLatchViolationMidRun: with Probes on, a mid-run directory
// corruption is caught at the next access completion, not just at the
// end-of-run sweep.
func TestProbesLatchViolationMidRun(t *testing.T) {
	cfg := WildFire()
	cfg.CPUsPerNode = 2
	cfg.Probes = true
	m := New(cfg)
	a := m.Alloc(0, 1)
	m.Spawn(0, func(p *Proc) {
		p.Store(a, 1)
		m.lineOf(a).sharers.add(1) // corrupt: Modified line gains a sharer
		p.Load(a)
	})
	m.Run()
	if m.ProbeError() == nil {
		t.Fatal("probes missed a Modified-with-sharers corruption")
	}
}

// TestConservationHoldsAfterReset: ResetStats zeroes both sides of the
// attribution ledger, so conservation holds across a warmup reset.
func TestConservationHoldsAfterReset(t *testing.T) {
	cfg := WildFire()
	cfg.CPUsPerNode = 2
	m := New(cfg)
	a := m.Alloc(0, 1)
	b := m.Alloc(1, 1)
	m.Spawn(0, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Store(a, uint64(i))
			p.Load(b)
		}
	})
	m.Spawn(2, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Store(b, uint64(i))
			p.Load(a)
		}
	})
	m.Run()
	if err := m.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	if err := m.CheckConservation(); err != nil {
		t.Fatalf("after ResetStats: %v", err)
	}
}

// TestSwapSerializesTotalOrder: concurrent Swaps on one word observe a
// chain — each return value was some other op's written value (or the
// initial), and all writes are distinct, so the multiset of (returned +
// final) values equals (initial + all written).
func TestSwapSerializesTotalOrder(t *testing.T) {
	m := New(func() Config { c := WildFire(); c.CPUsPerNode = 4; c.Seed = 5; return c }())
	a := m.Alloc(0, 1)
	const perCPU = 30
	seen := map[uint64]int{}
	for cpu := 0; cpu < 8; cpu++ {
		cpu := cpu
		m.Spawn(cpu, func(p *Proc) {
			rng := sim.NewRNG(uint64(cpu) + 99)
			for i := 0; i < perCPU; i++ {
				v := uint64(cpu*1000 + i + 1)
				old := p.Swap(a, v)
				seen[old]++
				p.Work(rng.Timen(800) + 1)
			}
		})
	}
	m.Run()
	seen[m.Peek(a)]++
	// Every written value plus the initial zero must appear exactly once.
	if seen[0] != 1 {
		t.Fatalf("initial value observed %d times", seen[0])
	}
	for cpu := 0; cpu < 8; cpu++ {
		for i := 0; i < perCPU; i++ {
			v := uint64(cpu*1000 + i + 1)
			if seen[v] != 1 {
				t.Fatalf("value %d observed %d times (swap chain broken)", v, seen[v])
			}
		}
	}
}
