package machine

import (
	"testing"

	"repro/internal/sim"
)

// wideLines returns a machine with 4 words per cache line.
func wideLines() *Machine {
	cfg := Config{
		Nodes:        2,
		CPUsPerNode:  4,
		WordsPerLine: 4,
		Lat: Latencies{
			LoadHit:    10,
			StoreOwned: 50,
			Upgrade:    200,
			C2CLocal:   500,
			C2CRemote:  2000,
			MemLocal:   300,
			MemRemote:  1500,
		},
		Seed: 1,
	}
	return New(cfg)
}

// TestCollocationOneMissFetchesNeighbors: words allocated together on
// one line arrive together — the QOLB collocation effect.
func TestCollocationOneMissFetchesNeighbors(t *testing.T) {
	m := wideLines()
	a := m.Alloc(0, 4) // one line: lock word + 3 data words
	var first, rest sim.Time
	m.Spawn(0, func(p *Proc) {
		t0 := p.Now()
		p.Load(a) // miss fetches the whole line
		first = p.Now() - t0
		t1 := p.Now()
		p.Load(a + 1)
		p.Load(a + 2)
		p.Load(a + 3)
		rest = p.Now() - t1
	})
	m.Run()
	if first != 300 {
		t.Fatalf("first load = %v, want a 300ns memory fetch", first)
	}
	if rest != 30 {
		t.Fatalf("neighbor loads = %v, want 3 hits (30)", rest)
	}
}

// TestLineAlignmentSeparatesAllocations: two Allocs never share a line,
// so independent variables cannot false-share by accident.
func TestLineAlignmentSeparatesAllocations(t *testing.T) {
	m := wideLines()
	a := m.Alloc(0, 1) // occupies one word, pads to the line
	b := m.Alloc(0, 1)
	if m.lineOf(a) == m.lineOf(b) {
		t.Fatal("separate allocations share a cache line")
	}
	if int(b-a) != 4 {
		t.Fatalf("allocation not line-aligned: a=%d b=%d", a, b)
	}
}

// TestFalseSharingWithinOneAlloc: words deliberately placed on one line
// invalidate each other's readers.
func TestFalseSharingWithinOneAlloc(t *testing.T) {
	m := wideLines()
	a := m.Alloc(0, 2) // same line
	var rereadCost sim.Time
	m.Spawn(0, func(p *Proc) {
		p.Load(a) // cache the line
		p.Work(5000)
		t0 := p.Now()
		p.Load(a) // neighbor's write to a+1 invalidated us
		rereadCost = p.Now() - t0
	})
	m.Spawn(4, func(p *Proc) {
		p.Work(1000)
		p.Store(a+1, 9) // writes the *other* word on the line
	})
	m.Run()
	if rereadCost < 500 {
		t.Fatalf("re-read cost %v; false sharing not modeled", rereadCost)
	}
}

// TestCollocatedLockHandover: with data on the lock's line, the lock
// transfer carries the data — the handover needs one line transfer
// instead of three.
func TestCollocatedLockHandover(t *testing.T) {
	handover := func(collocated bool) sim.Time {
		m := wideLines()
		var lock, data Addr
		if collocated {
			region := m.Alloc(0, 3)
			lock, data = region, region+1
		} else {
			lock = m.Alloc(0, 1)
			data = m.Alloc(0, 2)
		}
		// CPU 1 (same node) takes lock and data dirty; CPU 0 then
		// acquires and touches the data.
		var cost sim.Time
		m.Spawn(1, func(p *Proc) {
			p.TAS(lock)
			p.Store(data, 1)
			p.Store(data+1, 2)
			p.Store(lock, 0)
		})
		m.Spawn(0, func(p *Proc) {
			p.Work(20000)
			t0 := p.Now()
			for p.TAS(lock) != 0 {
				p.SpinUntilZero(lock)
			}
			p.Store(data, p.Load(data)+1)
			p.Store(data+1, p.Load(data+1)+1)
			p.Store(lock, 0)
			cost = p.Now() - t0
		})
		m.Run()
		return cost
	}
	apart := handover(false)
	together := handover(true)
	if together >= apart {
		t.Fatalf("collocated handover %v not below separate %v", together, apart)
	}
}

// TestWordsPerLineDefault: zero config behaves as one word per line.
func TestWordsPerLineDefault(t *testing.T) {
	m := small()
	a := m.Alloc(0, 2)
	if m.lineOf(a) == m.lineOf(a+1) {
		t.Fatal("default machine should isolate words")
	}
}
