package machine

import (
	"testing"

	"repro/internal/sim"
)

// TestLocalCASBeatsEarlierRemoteCAS verifies the arrival-order service
// discipline that underlies the paper's node affinity: a CAS issued by
// a CPU in the line's node wins against a remote CPU's CAS issued
// slightly earlier, because the local request reaches the line first.
func TestLocalCASBeatsEarlierRemoteCAS(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	m.SeedOwner(a, 1, 0) // free lock word, dirty in cpu 1 (node 0)

	var remoteGot, localGot uint64
	// Remote CPU 4 issues first (t=0); local CPU 0 issues at t=100.
	// Remote flight = C2CRemote/2 = 1000; local flight = C2CLocal/2 =
	// 250, arriving at t=350 — well before the remote request.
	m.Spawn(4, func(p *Proc) {
		remoteGot = p.CAS(a, 0, 44)
	})
	m.Spawn(0, func(p *Proc) {
		p.Work(100)
		localGot = p.CAS(a, 0, 10)
	})
	m.Run()
	if localGot != 0 {
		t.Fatalf("local CAS lost: got %d", localGot)
	}
	if remoteGot != 10 {
		t.Fatalf("remote CAS should observe the local winner, got %d", remoteGot)
	}
	if m.Peek(a) != 44 {
		// The remote CAS failed (observed 10), so the final value is 10.
		if m.Peek(a) != 10 {
			t.Fatalf("final value %d", m.Peek(a))
		}
	}
}

// TestRefillStormSerializes: when many CPUs miss the same line at once,
// the last one waits for all earlier transfers (the tas-storm effect).
func TestRefillStormSerializes(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	m.SeedOwner(a, 7, 5)
	var finishes []sim.Time
	for cpu := 0; cpu < 4; cpu++ {
		m.Spawn(cpu, func(p *Proc) {
			p.Load(a)
			finishes = append(finishes, p.Now())
		})
	}
	m.Run()
	if len(finishes) != 4 {
		t.Fatalf("finishes = %v", finishes)
	}
	// All issued at t=0 with the same remote latency (2000): without
	// line serialization all would finish at 2000; with it they are
	// spaced by the 1000ns service time.
	last := finishes[0]
	spaced := 0
	for _, f := range finishes[1:] {
		if f-last >= 900 {
			spaced++
		}
		last = f
	}
	if spaced < 2 {
		t.Fatalf("refill burst not serialized: %v", finishes)
	}
}

// TestHolderReleaseQueuesBehindStorm: the owner's own store must queue
// behind transfers already bound for the line — the mechanism that
// delays TATAS handover under contention.
func TestHolderReleaseQueuesBehindStorm(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	m.SeedOwner(a, 0, 1)
	var releaseDone sim.Time
	// Four remote CPUs pull the line with CAS at t=0 (their transfers
	// serialize at 2000, 3000, 4000, 5000); the owner tries to write it
	// back at t=2500, after ownership has moved, and must queue behind
	// the remaining transfers.
	for cpu := 4; cpu < 8; cpu++ {
		m.Spawn(cpu, func(p *Proc) { p.CAS(a, 99, 7) })
	}
	m.Spawn(0, func(p *Proc) {
		p.Work(2500)
		p.Store(a, 0)
		releaseDone = p.Now()
	})
	m.Run()
	// An unqueued miss would finish around 2500+2000; behind the storm
	// it must land after the last pending transfer (~5000).
	if releaseDone < 5000 {
		t.Fatalf("holder store finished at %v; storm did not delay it", releaseDone)
	}
}

func TestUtilizationAccessors(t *testing.T) {
	cfg := WildFire() // has non-zero bus and link service times
	cfg.Seed = 2
	m := New(cfg)
	a := m.Alloc(0, 1)
	m.SeedOwner(a, cfg.CPUsPerNode, 1)      // dirty in node 1
	m.Spawn(0, func(p *Proc) { p.Load(a) }) // crosses the link
	m.Run()
	bu := m.BusUtilization()
	if len(bu) != 2 || bu[0] <= 0 {
		t.Fatalf("bus utilization = %v", bu)
	}
	if m.LinkUtilization() <= 0 {
		t.Fatal("link utilization should be positive after a remote miss")
	}
	if m.RNG() == nil {
		t.Fatal("RNG accessor nil")
	}
	if m.Config().Nodes != 2 {
		t.Fatal("Config accessor wrong")
	}
}

// TestWaitersAcrossDistinctLines: waiters parked on different lines wake
// independently.
func TestWaitersAcrossDistinctLines(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	b := m.Alloc(0, 1)
	var wokeA, wokeB sim.Time
	m.Spawn(0, func(p *Proc) {
		p.SpinUntil(a, func(v uint64) bool { return v == 1 })
		wokeA = p.Now()
	})
	m.Spawn(1, func(p *Proc) {
		p.SpinUntil(b, func(v uint64) bool { return v == 1 })
		wokeB = p.Now()
	})
	m.Spawn(2, func(p *Proc) {
		p.Work(10000)
		p.Store(a, 1)
		p.Work(10000)
		p.Store(b, 1)
	})
	m.Run()
	if wokeA >= wokeB {
		t.Fatalf("waiters coupled across lines: A at %v, B at %v", wokeA, wokeB)
	}
}

// TestSeedOwnerThenOwnedOps: a seeded owner operates at hit cost.
func TestSeedOwnerThenOwnedOps(t *testing.T) {
	m := small()
	a := m.Alloc(1, 1)
	m.SeedOwner(a, 0, 9)
	var loadCost, storeCost sim.Time
	m.Spawn(0, func(p *Proc) {
		t0 := p.Now()
		if v := p.Load(a); v != 9 {
			t.Errorf("seeded value = %d", v)
		}
		loadCost = p.Now() - t0
		t1 := p.Now()
		p.Store(a, 10)
		storeCost = p.Now() - t1
	})
	m.Run()
	if loadCost != 10 || storeCost != 50 {
		t.Fatalf("owned costs = %v, %v; want 10, 50", loadCost, storeCost)
	}
}

// TestPokeInvalidatesCaches: Poke resets cached copies so the next
// access re-fetches.
func TestPokeInvalidatesCaches(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	var second sim.Time
	m.Spawn(0, func(p *Proc) {
		p.Load(a) // cache it
		m.Poke(a, 7)
		t0 := p.Now()
		if v := p.Load(a); v != 7 {
			t.Errorf("Load after Poke = %d", v)
		}
		second = p.Now() - t0
	})
	m.Run()
	if second < 300 {
		t.Fatalf("Load after Poke cost %v, want a memory fetch", second)
	}
}
