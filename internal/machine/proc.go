package machine

import (
	"fmt"

	"repro/internal/sim"
)

// Proc is a simulated processor executing one program. All memory
// operations charge simulated time and update the coherence state; none
// of them touch host-level synchronization, so programs are plain
// single-threaded Go functions from the host's point of view.
//
// Memory operations take effect at their *completion* time: a miss
// first queues on the target line (a cache line satisfies one transfer
// at a time), pays its transfer latency, and only then updates the
// directory and the value. Completion-time semantics make latency part
// of the race: a nearby CPU's CAS beats a remote CPU's CAS issued
// slightly earlier, which is exactly the NUCA effect the paper's locks
// exploit, and a burst of misses after a release serializes into the
// refill storm that makes TATAS collapse under contention.
type Proc struct {
	m    *Machine
	proc *sim.Process
	cpu  int
	node int
}

// CPU returns the processor id (0 .. TotalCPUs-1).
func (p *Proc) CPU() int { return p.cpu }

// Node returns the NUCA node this processor belongs to.
func (p *Proc) Node() int { return p.node }

// Machine returns the owning machine.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the simulated clock.
func (p *Proc) Now() sim.Time { return p.m.eng.Now() }

// checkPreempt stalls the processor while the OS has stolen its CPU or
// the fault injector has paused its whole node.
func (p *Proc) checkPreempt() {
	until := p.m.preemptedUntil[p.cpu]
	if now := p.m.eng.Now(); until > now {
		p.proc.Sleep(until - now)
	}
	if f := p.m.faults; f != nil {
		// Pause windows can chain (a new window may open while we sleep
		// out the current one), so re-check until the node is running.
		for {
			now := p.m.eng.Now()
			end, ok := f.PausedUntil(now, p.node)
			if !ok {
				return
			}
			p.proc.Sleep(end - now)
		}
	}
}

// faultScale applies active latency-spike windows to a miss latency
// involving p's node and other (the transfer's far end; pass p.node
// when the transfer stays local).
func (p *Proc) faultScale(d sim.Time, other int) sim.Time {
	if p.m.faults == nil {
		return d
	}
	return p.m.faultLatency(d, p.node, other)
}

// Work models off-memory computation taking d nanoseconds.
func (p *Proc) Work(d sim.Time) {
	p.checkPreempt()
	p.proc.Sleep(d)
}

// Delay models the empty backoff loop `for (i = units; i; i--);`.
func (p *Proc) Delay(units int) {
	if units <= 0 {
		return
	}
	p.Work(sim.Time(units) * p.m.cfg.Lat.BackoffUnit)
}

func (p *Proc) checkAddr(a Addr) *line {
	if a == NilAddr || int(a) >= len(p.m.words) {
		panic(fmt.Sprintf("machine: access to invalid address %d", a))
	}
	return p.m.lineOf(a)
}

// miss models one coherence miss of total unloaded latency d in two
// phases. First the request travels to the line (half the latency, plus
// any bus/link queueing the caller accumulated in extra); then the line
// serves the transfer (the other half), one transfer at a time, in
// request-arrival order. Arrival-order service is what gives nearby CPUs
// their NUCA advantage: a local CAS issued after a remote one still
// reaches the line first and wins the race.
func (p *Proc) miss(l *line, d, extra sim.Time) {
	if f := p.m.faults; f != nil {
		// Transient NACKs: the request is bounced at the target and
		// retried after a delay; each bounce burns one more bus
		// transaction at the requester's node.
		for r := f.MaxRetries(); r > 0 && f.NACKed(p.node); r-- {
			p.m.countLocal(l, p.node)
			p.proc.Sleep(f.RetryDelay())
		}
	}
	flight := d / 2
	service := d - flight
	p.proc.Sleep(flight + extra) // request in flight
	now := p.m.eng.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	l.busyUntil = start + service
	p.proc.Sleep(start + service - now) // queue behind earlier arrivals, then transfer
}

// busWait reserves the node bus for one transaction and returns the
// queueing delay (service occupancy is modeled inside the resource; the
// data-transfer time is part of the latency constants).
func (p *Proc) busWait(node int) sim.Time {
	d := p.m.buses[node].Delay(p.m.cfg.BusService)
	return d - p.m.cfg.BusService
}

// linkWait reserves the global interconnect for one crossing. During a
// congestion storm the crossing occupies the link for longer, so
// concurrent crossings queue; the requester pays the queueing plus the
// storm surcharge on its own service.
func (p *Proc) linkWait() sim.Time {
	service := p.m.cfg.LinkService
	if f := p.m.faults; f != nil {
		if s := f.LinkScale(p.m.eng.Now()); s > 1 {
			service = sim.Time(float64(service) * s)
		}
	}
	d := p.m.link.Delay(service)
	return d - p.m.cfg.LinkService
}

// readAccess performs one load and returns the value observed at
// completion time.
func (p *Proc) readAccess(a Addr) uint64 {
	p.checkPreempt()
	l := p.checkAddr(a)
	m := p.m
	lat := m.cfg.Lat
	for {
		if m.cached(p.cpu, a) {
			p.proc.Sleep(lat.OpOverhead + lat.LoadHit)
			if m.cached(p.cpu, a) {
				m.probeAfterRead(p.cpu, a)
				return m.words[a]
			}
			continue // lost the line while the hit retired; re-fetch
		}
		// Miss: charge by the state observed at issue.
		extra := lat.OpOverhead + p.busWait(p.node)
		m.countLocal(l, p.node)
		l.traf.misses++
		var base sim.Time
		switch {
		case l.state == stateModified:
			src := m.NodeOf(l.owner)
			base = p.faultScale(m.c2cLatency(p.node, src), src)
			l.traf.transfers++
			if src != p.node {
				extra += p.linkWait() + p.busWait(src)
				m.countLocal(l, src)
				m.countGlobal(l)
			}
		default:
			base = p.faultScale(m.memLatency(p.node, l.home), l.home)
			if l.home != p.node {
				extra += p.linkWait() + p.busWait(l.home)
				m.countLocal(l, l.home)
				m.countGlobal(l)
			}
		}
		p.miss(l, base, extra)
		// Completion: join the sharers (downgrading a dirty owner).
		if l.state == stateModified {
			l.sharers = 0
			l.sharers.add(l.owner)
			l.state = stateShared
		} else if l.state == stateUncached {
			l.state = stateShared
		}
		l.sharers.add(p.cpu)
		m.probeAfterRead(p.cpu, a)
		return m.words[a]
	}
}

// writeAccess obtains exclusive ownership of a's line and returns a
// pointer to the word; the caller mutates it immediately (no simulated
// time passes between return and the mutation).
func (p *Proc) writeAccess(a Addr) *uint64 {
	p.checkPreempt()
	l := p.checkAddr(a)
	m := p.m
	lat := m.cfg.Lat
	for {
		if l.state == stateModified && l.owner == p.cpu {
			p.proc.Sleep(lat.OpOverhead + lat.StoreOwned)
			if l.state == stateModified && l.owner == p.cpu {
				m.probeAfterWrite(p.cpu, a)
				return &m.words[a]
			}
			continue // ownership stolen while the op retired; redo
		}
		extra := lat.OpOverhead + p.busWait(p.node)
		m.countLocal(l, p.node)
		l.traf.misses++
		var base sim.Time
		switch {
		case l.state == stateShared && l.sharers.has(p.cpu):
			// Upgrade: invalidate the other sharers, no data transfer.
			base = p.faultScale(lat.Upgrade, p.node)
			extra += p.invalidateRemoteSharers(l)
		case l.state == stateModified:
			src := m.NodeOf(l.owner)
			base = p.faultScale(m.c2cLatency(p.node, src), src)
			l.traf.transfers++
			if src != p.node {
				extra += p.linkWait() + p.busWait(src)
				m.countLocal(l, src)
				m.countGlobal(l)
			}
		default: // Shared without our copy, or uncached: fetch from home.
			base = p.faultScale(m.memLatency(p.node, l.home), l.home)
			if l.home != p.node {
				extra += p.linkWait() + p.busWait(l.home)
				m.countLocal(l, l.home)
				m.countGlobal(l)
			}
			extra += p.invalidateRemoteSharers(l)
		}
		p.miss(l, base, extra)
		// Completion: take exclusive ownership.
		l.sharers = 0
		l.state = stateModified
		l.owner = p.cpu
		m.wakeWaiters(l)
		m.probeAfterWrite(p.cpu, a)
		return &m.words[a]
	}
}

// invalidateRemoteSharers counts and charges the invalidations sent to
// nodes (other than p's) that hold shared copies of l. Invalidations to
// sharers in p's own node ride the requester's own bus transaction.
func (p *Proc) invalidateRemoteSharers(l *line) sim.Time {
	var extra sim.Time
	m := p.m
	for n := 0; n < m.cfg.Nodes; n++ {
		if n == p.node {
			continue
		}
		hasSharer := false
		lo, hi := n*m.cfg.CPUsPerNode, (n+1)*m.cfg.CPUsPerNode
		for c := lo; c < hi; c++ {
			if l.sharers.has(c) {
				hasSharer = true
				break
			}
		}
		if hasSharer {
			extra += p.linkWait()
			extra += p.busWait(n)
			m.countLocal(l, n)
			m.countGlobal(l)
			l.traf.invals++
		}
	}
	return extra
}

// Load reads a word.
func (p *Proc) Load(a Addr) uint64 { return p.readAccess(a) }

// Store writes a word.
func (p *Proc) Store(a Addr, v uint64) {
	w := p.writeAccess(a)
	*w = v
}

// CAS atomically compares the word at a with expect and, if equal,
// replaces it with new. It returns the original value. Like SPARC cas,
// a failed CAS still acquires the line exclusively — the traffic source
// the HBO paper's throttling targets.
func (p *Proc) CAS(a Addr, expect, new uint64) uint64 {
	w := p.writeAccess(a)
	old := *w
	if old == expect {
		*w = new
	}
	return old
}

// Swap atomically writes v and returns the previous value.
func (p *Proc) Swap(a Addr, v uint64) uint64 {
	w := p.writeAccess(a)
	old := *w
	*w = v
	return old
}

// TAS atomically writes 1 and returns the previous value (0 means the
// caller obtained the lock).
func (p *Proc) TAS(a Addr) uint64 { return p.Swap(a, 1) }

// SpinUntil busy-waits until pred holds for the word at a, and returns
// the value that satisfied it. The first check pays a normal load; while
// the predicate is false the processor holds a cached copy and parks
// until the line is invalidated by a writer, then re-reads (a coherence
// miss), modeling test-and-test&set style spinning without simulating
// every polling iteration.
func (p *Proc) SpinUntil(a Addr, pred func(uint64) bool) uint64 {
	for {
		v := p.Load(a)
		if pred(v) {
			return v
		}
		if !p.m.cached(p.cpu, a) {
			// Invalidated between our load's completion and now (the
			// load retried internally); re-read.
			continue
		}
		l := p.m.lineOf(a)
		l.waiters = append(l.waiters, p)
		p.proc.Block()
	}
}

// SpinWhileEquals busy-waits while the word at a equals v.
func (p *Proc) SpinWhileEquals(a Addr, v uint64) uint64 {
	return p.SpinUntil(a, func(cur uint64) bool { return cur != v })
}

// SpinUntilZero busy-waits until the word at a reads zero.
func (p *Proc) SpinUntilZero(a Addr) {
	p.SpinUntil(a, func(cur uint64) bool { return cur == 0 })
}
