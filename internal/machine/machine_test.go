package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// small returns a 2-node, 4-CPUs-per-node machine with simple latencies
// so tests can assert exact costs.
func small() *Machine {
	return New(Config{
		Nodes:       2,
		CPUsPerNode: 4,
		Lat: Latencies{
			OpOverhead:  0,
			LoadHit:     10,
			StoreOwned:  50,
			Upgrade:     200,
			C2CLocal:    500,
			C2CRemote:   2000,
			MemLocal:    300,
			MemRemote:   1500,
			BackoffUnit: 4,
		},
		Seed: 1,
	})
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Nodes: 0, CPUsPerNode: 1}).Validate(); err == nil {
		t.Error("want error for 0 nodes")
	}
	if err := (Config{Nodes: 1, CPUsPerNode: 0}).Validate(); err == nil {
		t.Error("want error for 0 cpus")
	}
	if err := (Config{Nodes: 8, CPUsPerNode: 16}).Validate(); err == nil {
		t.Error("want error for >64 cpus")
	}
	if err := WildFire().Validate(); err != nil {
		t.Errorf("WildFire config invalid: %v", err)
	}
}

func TestAllocAndPeekPoke(t *testing.T) {
	m := small()
	a := m.Alloc(0, 3)
	if a == NilAddr {
		t.Fatal("Alloc returned NilAddr")
	}
	b := m.Alloc(1, 1)
	if b != a+3 {
		t.Fatalf("second Alloc = %d, want %d", b, a+3)
	}
	m.Poke(a, 42)
	if m.Peek(a) != 42 {
		t.Fatalf("Peek = %d, want 42", m.Peek(a))
	}
}

func TestLoadCosts(t *testing.T) {
	cases := []struct {
		name string
		cpu  int
		prep func(m *Machine, a Addr)
		want sim.Time
	}{
		{"uncached local memory", 0, func(m *Machine, a Addr) {}, 300},
		{"uncached remote memory", 4, func(m *Machine, a Addr) {}, 1500},
		{"dirty in own cache", 0, func(m *Machine, a Addr) { m.SeedOwner(a, 0, 7) }, 10},
		{"dirty same node", 1, func(m *Machine, a Addr) { m.SeedOwner(a, 0, 7) }, 500},
		{"dirty remote node", 4, func(m *Machine, a Addr) { m.SeedOwner(a, 0, 7) }, 2000},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := small()
			a := m.Alloc(0, 1)
			c.prep(m, a)
			var elapsed sim.Time
			m.Spawn(c.cpu, func(p *Proc) {
				start := p.Now()
				p.Load(a)
				elapsed = p.Now() - start
			})
			m.Run()
			if elapsed != c.want {
				t.Fatalf("load latency = %v, want %v", elapsed, c.want)
			}
		})
	}
}

func TestSecondLoadIsHit(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	var first, second sim.Time
	m.Spawn(0, func(p *Proc) {
		t0 := p.Now()
		p.Load(a)
		first = p.Now() - t0
		t1 := p.Now()
		p.Load(a)
		second = p.Now() - t1
	})
	m.Run()
	if first != 300 || second != 10 {
		t.Fatalf("latencies = %v, %v; want 300, 10", first, second)
	}
}

func TestStoreUpgradeInvalidatesSharers(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	m.Poke(a, 1)
	var readAfter uint64
	// CPU 0 and CPU 4 read (both become sharers), then CPU 0 writes,
	// then CPU 4 reads again — it must see the new value and pay a miss.
	var missCost sim.Time
	m.Spawn(0, func(p *Proc) {
		p.Load(a)
		p.Work(3000) // let cpu 4's read complete first
		p.Store(a, 2)
	})
	m.Spawn(4, func(p *Proc) {
		p.Load(a)
		p.Work(8000) // let the store happen
		t0 := p.Now()
		readAfter = p.Load(a)
		missCost = p.Now() - t0
	})
	m.Run()
	if readAfter != 2 {
		t.Fatalf("stale read %d after invalidation", readAfter)
	}
	if missCost < 500 {
		t.Fatalf("re-read after invalidation cost %v, want a miss", missCost)
	}
}

func TestCASSemantics(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	m.Poke(a, 5)
	var got []uint64
	m.Spawn(0, func(p *Proc) {
		got = append(got, p.CAS(a, 4, 9)) // fails, returns 5
		got = append(got, p.CAS(a, 5, 9)) // succeeds, returns 5
		got = append(got, p.Load(a))      // 9
	})
	m.Run()
	if got[0] != 5 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("CAS sequence = %v", got)
	}
}

func TestFailedCASStillAcquiresLine(t *testing.T) {
	// A failed CAS must still pull the line exclusive (SPARC semantics);
	// a subsequent CAS by the same CPU is then an owned-line operation.
	m := small()
	a := m.Alloc(0, 1)
	m.SeedOwner(a, 4, 5) // dirty in remote cpu 4
	var firstCost, secondCost sim.Time
	m.Spawn(0, func(p *Proc) {
		t0 := p.Now()
		p.CAS(a, 99, 1) // fails
		firstCost = p.Now() - t0
		t1 := p.Now()
		p.CAS(a, 98, 1) // fails again, but line is now ours
		secondCost = p.Now() - t1
	})
	m.Run()
	if firstCost != 2000 {
		t.Fatalf("first CAS cost %v, want 2000 (remote C2C)", firstCost)
	}
	if secondCost != 50 {
		t.Fatalf("second CAS cost %v, want 50 (owned)", secondCost)
	}
}

func TestSwapAndTAS(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	var old1, old2, final uint64
	m.Spawn(0, func(p *Proc) {
		old1 = p.Swap(a, 7)
		old2 = p.TAS(a)
		final = p.Load(a)
	})
	m.Run()
	if old1 != 0 || old2 != 7 || final != 1 {
		t.Fatalf("swap/tas = %d, %d, %d", old1, old2, final)
	}
}

func TestTrafficCounters(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	m.Spawn(0, func(p *Proc) {
		p.Load(a)     // local mem fetch: 1 local @0
		p.Store(a, 1) // upgrade: 1 local @0 (no remote sharers)
		p.Load(a)     // hit: nothing
	})
	m.Run()
	s := m.Stats()
	if s.Local[0] != 2 || s.Local[1] != 0 || s.Global != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRemoteTrafficCountsGlobal(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	m.SeedOwner(a, 0, 3)
	m.Spawn(4, func(p *Proc) {
		p.Load(a) // remote C2C: local @1, local @0, 1 global
	})
	m.Run()
	s := m.Stats()
	if s.Local[1] != 1 || s.Local[0] != 1 || s.Global != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUpgradeWithRemoteSharerCountsInvalidation(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	m.Poke(a, 1)
	m.Spawn(4, func(p *Proc) { p.Load(a) }) // remote sharer
	m.Spawn(0, func(p *Proc) {
		p.Work(10000)
		p.Load(a) // become sharer: 1 local @0
		m.ResetStats()
		p.Store(a, 2) // upgrade: local @0 + invalidation to node 1
	})
	m.Run()
	s := m.Stats()
	if s.Local[0] != 1 || s.Local[1] != 1 || s.Global != 1 {
		t.Fatalf("upgrade stats = %+v", s)
	}
}

func TestStatsSubAndTotal(t *testing.T) {
	a := Stats{Local: []uint64{5, 7}, Global: 3}
	b := Stats{Local: []uint64{2, 3}, Global: 1}
	d := a.Sub(b)
	if d.Local[0] != 3 || d.Local[1] != 4 || d.Global != 2 {
		t.Fatalf("Sub = %+v", d)
	}
	if a.TotalLocal() != 12 {
		t.Fatalf("TotalLocal = %d", a.TotalLocal())
	}
}

func TestSpinUntilWakesOnWrite(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	var observed uint64
	var wakeTime sim.Time
	m.Spawn(0, func(p *Proc) {
		observed = p.SpinUntil(a, func(v uint64) bool { return v == 42 })
		wakeTime = p.Now()
	})
	m.Spawn(4, func(p *Proc) {
		p.Work(100000)
		p.Store(a, 42)
	})
	m.Run()
	if observed != 42 {
		t.Fatalf("observed %d, want 42", observed)
	}
	if wakeTime < 100000 {
		t.Fatalf("woke at %v, before the store", wakeTime)
	}
}

func TestSpinWhileEqualsManyWaiters(t *testing.T) {
	m := small()
	a := m.Alloc(0, 1)
	m.Poke(a, 1)
	woke := 0
	for cpu := 0; cpu < 6; cpu++ {
		m.Spawn(cpu, func(p *Proc) {
			p.SpinWhileEquals(a, 1)
			woke++
		})
	}
	m.Spawn(6, func(p *Proc) {
		p.Work(50000)
		p.Store(a, 0)
	})
	m.Run()
	if woke != 6 {
		t.Fatalf("%d waiters woke, want 6", woke)
	}
}

func TestSpinUntilSeesWriteDuringFlight(t *testing.T) {
	// A write that lands while the spinner's first load is in flight
	// must not be lost.
	m := small()
	a := m.Alloc(0, 1) // home node 0; cpu 4 pays 1500 for first load
	var done bool
	m.Spawn(4, func(p *Proc) {
		p.SpinUntil(a, func(v uint64) bool { return v == 9 })
		done = true
	})
	m.Spawn(0, func(p *Proc) {
		p.Work(700) // lands inside cpu 4's 1500ns load
		p.Store(a, 9)
	})
	m.Run()
	if !done {
		t.Fatal("spinner missed in-flight write")
	}
}

func TestDelayAdvancesClock(t *testing.T) {
	m := small()
	var elapsed sim.Time
	m.Spawn(0, func(p *Proc) {
		t0 := p.Now()
		p.Delay(100) // 100 * 4ns
		elapsed = p.Now() - t0
	})
	m.Run()
	if elapsed != 400 {
		t.Fatalf("Delay(100) took %v, want 400", elapsed)
	}
}

func TestPreemptionStallsCPU(t *testing.T) {
	cfg := Config{
		Nodes:       1,
		CPUsPerNode: 1,
		Lat:         WildFireLatencies(),
		Preempt: PreemptConfig{
			Enabled:      true,
			MeanInterval: 1000,
			MeanDuration: 50000,
		},
		Seed: 3,
	}
	m := New(cfg)
	a := m.Alloc(0, 1)
	var elapsed sim.Time
	m.Spawn(0, func(p *Proc) {
		t0 := p.Now()
		for i := 0; i < 100; i++ {
			p.Load(a)
			p.Store(a, uint64(i))
			p.Work(100)
		}
		elapsed = p.Now() - t0
	})
	m.Run()
	// Without preemption this takes ~100*(12+70+100+2*5) ≈ 20µs; with a
	// CPU stolen every ~1µs for ~50µs it must take far longer.
	if elapsed < 200000 {
		t.Fatalf("elapsed %v; preemption had no effect", elapsed)
	}
}

func TestTimeLimitAborts(t *testing.T) {
	cfg := WildFire()
	cfg.TimeLimit = 10000
	m := New(cfg)
	a := m.Alloc(0, 1)
	m.Spawn(0, func(p *Proc) {
		for {
			p.Store(a, 1)
			p.Work(100)
		}
	})
	m.Run()
	if !m.Aborted() {
		t.Fatal("machine did not report abort at time limit")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (sim.Time, Stats) {
		m := small()
		a := m.Alloc(0, 1)
		for cpu := 0; cpu < 8; cpu++ {
			m.Spawn(cpu, func(p *Proc) {
				for i := 0; i < 50; i++ {
					for p.TAS(a) != 0 {
						p.Delay(10 + p.CPU())
					}
					p.Work(200)
					p.Store(a, 0)
					p.Work(sim.Time(100 * (p.CPU() + 1)))
				}
			})
		}
		m.Run()
		return m.Now(), m.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1.Global != s2.Global || s1.TotalLocal() != s2.TotalLocal() {
		t.Fatalf("nondeterministic: (%v,%v,%v) vs (%v,%v,%v)",
			t1, s1.Global, s1.TotalLocal(), t2, s2.Global, s2.TotalLocal())
	}
}

// Coherence safety property: under random concurrent ops the final value
// is one actually written, and a mutual-exclusion protocol built on TAS
// never admits two CPUs at once.
func TestMutualExclusionOnSimulatedTAS(t *testing.T) {
	m := small()
	lock := m.Alloc(0, 1)
	counter := 0
	inCS := 0
	for cpu := 0; cpu < 8; cpu++ {
		m.Spawn(cpu, func(p *Proc) {
			for i := 0; i < 200; i++ {
				for p.TAS(lock) != 0 {
					p.SpinUntilZero(lock)
				}
				inCS++
				if inCS != 1 {
					t.Errorf("mutual exclusion violated: %d in CS", inCS)
				}
				counter++
				p.Work(50)
				inCS--
				p.Store(lock, 0)
			}
		})
	}
	m.Run()
	if counter != 8*200 {
		t.Fatalf("counter = %d, want %d", counter, 8*200)
	}
}

func TestSharerSetProperties(t *testing.T) {
	f := func(cpus []uint8) bool {
		var s sharerSet
		seen := map[int]bool{}
		for _, c := range cpus {
			cpu := int(c % maxCPUs)
			s.add(cpu)
			seen[cpu] = true
		}
		if s.count() != len(seen) {
			return false
		}
		for cpu := range seen {
			if !s.has(cpu) {
				return false
			}
			s.remove(cpu)
			if s.has(cpu) {
				return false
			}
		}
		return s.empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeOf(t *testing.T) {
	m := small()
	for cpu, want := range map[int]int{0: 0, 3: 0, 4: 1, 7: 1} {
		if got := m.NodeOf(cpu); got != want {
			t.Errorf("NodeOf(%d) = %d, want %d", cpu, got, want)
		}
	}
}

func TestInvalidAccessPanics(t *testing.T) {
	m := small()
	m.Spawn(0, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("want panic on NilAddr access")
			}
		}()
		p.Load(NilAddr)
	})
	m.Run()
}

func TestPresetConfigsValid(t *testing.T) {
	for _, cfg := range []Config{WildFire(), E6000(), CMPServer()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
	if E6000().Nodes != 1 {
		t.Error("E6000 should have one node")
	}
	c := CMPServer()
	if c.Nodes != 8 || c.ClusterSize != 2 {
		t.Errorf("CMPServer shape = %d nodes, cluster %d", c.Nodes, c.ClusterSize)
	}
}

func TestAllocValidation(t *testing.T) {
	m := small()
	for _, f := range []func(){
		func() { m.Alloc(-1, 1) },
		func() { m.Alloc(9, 1) },
		func() { m.Alloc(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

func TestProcAccessors(t *testing.T) {
	m := small()
	m.Spawn(5, func(p *Proc) {
		if p.Node() != 1 || p.CPU() != 5 || p.Machine() != m {
			t.Error("proc accessors wrong")
		}
		p.Delay(0)  // no-op
		p.Delay(-3) // no-op
	})
	m.Run()
}

func TestHierarchicalLatencies(t *testing.T) {
	cfg := CMPServer()
	cfg.Seed = 1
	m := New(cfg)
	a := m.Alloc(0, 1)
	// Owner in node 1 (same cluster as 0), reader in node 2 (far).
	m.SeedOwner(a, cfg.CPUsPerNode, 1)
	var nearCost sim.Time
	m.Spawn(0, func(p *Proc) {
		t0 := p.Now()
		p.Load(a)
		nearCost = p.Now() - t0
	})
	m.Run()

	m2 := New(cfg)
	b := m2.Alloc(0, 1)
	m2.SeedOwner(b, cfg.CPUsPerNode, 1) // node 1
	var farCost sim.Time
	m2.Spawn(2*cfg.CPUsPerNode, func(p *Proc) { // node 2, other cluster
		t0 := p.Now()
		p.Load(b)
		farCost = p.Now() - t0
	})
	m2.Run()
	if farCost <= nearCost {
		t.Fatalf("far C2C %v not above near C2C %v", farCost, nearCost)
	}
}

func TestFarMemoryLatency(t *testing.T) {
	cfg := CMPServer()
	m := New(cfg)
	a := m.Alloc(0, 1) // homed in node 0 (cluster 0)
	var nearMem, farMem sim.Time
	m.Spawn(cfg.CPUsPerNode, func(p *Proc) { // node 1, same cluster
		t0 := p.Now()
		p.Load(a)
		nearMem = p.Now() - t0
	})
	m.Run()
	m2 := New(cfg)
	b := m2.Alloc(0, 1)
	m2.Spawn(7*cfg.CPUsPerNode, func(p *Proc) { // node 7, far cluster
		t0 := p.Now()
		p.Load(b)
		farMem = p.Now() - t0
	})
	m2.Run()
	if farMem <= nearMem {
		t.Fatalf("far memory %v not above near memory %v", farMem, nearMem)
	}
}

func TestClusterOfFlat(t *testing.T) {
	m := small() // flat
	if m.ClusterOf(1) != 1 {
		t.Fatal("flat ClusterOf should be identity")
	}
}
