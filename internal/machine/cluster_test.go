package machine

import (
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// testClusterConfig is a small but genuinely contended cluster shape.
func testClusterConfig(policy ClusterPolicy) ClusterConfig {
	return ClusterConfig{
		Nodes:       16,
		CPUsPerNode: 4,
		ClusterSize: 4,
		Lat:         WildFireLatencies(),
		Policy:      policy,
		Iters:       8,
		Think:       2000,
		Hold:        600,
		Base:        2,
		Cap:         256,
		RemoteCap:   4096,
		Seed:        7,
	}
}

// digest renders a result to canonical JSON — the same serialization
// the report layer uses, so "byte-identical" means what it says.
func digest(t *testing.T, r ClusterResult) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterByteIdenticalAcrossWidths is the machine-level half of the
// PDES determinism contract: one big machine, every worker width, one
// answer.
func TestClusterByteIdenticalAcrossWidths(t *testing.T) {
	for _, policy := range []ClusterPolicy{ClusterTATASExp, ClusterHBO} {
		var want string
		for _, workers := range []int{1, 2, 4, 8} {
			r := RunCluster(testClusterConfig(policy), workers)
			r.Workers = 0 // workers is metadata, not simulation output
			got := digest(t, r)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("policy=%s workers=%d diverged:\n got %s\nwant %s", policy, workers, got, want)
			}
		}
	}
}

// TestClusterCompletesAllIterations: drain-based termination means the
// books balance exactly.
func TestClusterCompletesAllIterations(t *testing.T) {
	cfg := testClusterConfig(ClusterHBO)
	r := RunCluster(cfg, 4)
	want := uint64(cfg.Nodes) * uint64(cfg.CPUsPerNode) * uint64(cfg.Iters)
	if r.Acquires != want {
		t.Fatalf("acquires = %d, want %d", r.Acquires, want)
	}
	if r.Attempts < r.Acquires {
		t.Fatalf("attempts %d < acquires %d", r.Attempts, r.Acquires)
	}
	if r.Elapsed <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

// TestClusterHBOThrottlesGlobalTraffic reproduces the paper's central
// claim at cluster scale: remote-throttled backoff spends fewer
// interconnect messages per acquire than uniform exponential backoff.
func TestClusterHBOThrottlesGlobalTraffic(t *testing.T) {
	uniform := RunCluster(testClusterConfig(ClusterTATASExp), 4)
	hbo := RunCluster(testClusterConfig(ClusterHBO), 4)
	if hbo.GlobalPerAcquire() >= uniform.GlobalPerAcquire() {
		t.Fatalf("HBO global/acquire %.2f not below uniform %.2f",
			hbo.GlobalPerAcquire(), uniform.GlobalPerAcquire())
	}
	if hbo.Acquires != uniform.Acquires {
		t.Fatalf("policies completed different work: %d vs %d", hbo.Acquires, uniform.Acquires)
	}
}

// TestClusterTimeLimit: a limit-only run stops at the limit and still
// reports deterministically.
func TestClusterTimeLimit(t *testing.T) {
	cfg := testClusterConfig(ClusterTATASExp)
	cfg.Iters = 0
	cfg.TimeLimit = 200 * sim.Microsecond
	a := RunCluster(cfg, 1)
	b := RunCluster(cfg, 4)
	a.Workers, b.Workers = 0, 0
	if digest(t, a) != digest(t, b) {
		t.Fatal("time-limited run not width-stable")
	}
	if a.Acquires == 0 {
		t.Fatal("no acquires before the time limit")
	}
	if a.Elapsed > cfg.TimeLimit {
		t.Fatalf("elapsed %v past limit %v", a.Elapsed, cfg.TimeLimit)
	}
}

// TestClusterScalesToHundredsOfNodes: the shape the sequential
// word-level machine cannot reach (its sharer bitmap caps at 64 CPUs).
func TestClusterScalesToHundredsOfNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("large topology")
	}
	cfg := testClusterConfig(ClusterHBO)
	cfg.Nodes = 256
	cfg.CPUsPerNode = 2
	cfg.ClusterSize = 16
	cfg.Iters = 2
	r := RunCluster(cfg, 8)
	want := uint64(cfg.Nodes) * uint64(cfg.CPUsPerNode) * uint64(cfg.Iters)
	if r.Acquires != want {
		t.Fatalf("acquires = %d, want %d", r.Acquires, want)
	}
	if len(r.Nodes) != 256 {
		t.Fatalf("per-node stats for %d nodes, want 256", len(r.Nodes))
	}
}

// TestClusterValidate covers the configuration gate.
func TestClusterValidate(t *testing.T) {
	ok := testClusterConfig(ClusterHBO)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := map[string]func(*ClusterConfig){
		"one node":       func(c *ClusterConfig) { c.Nodes = 1 },
		"zero cpus":      func(c *ClusterConfig) { c.CPUsPerNode = 0 },
		"no termination": func(c *ClusterConfig) { c.Iters = 0; c.TimeLimit = 0 },
		"zero c2c":       func(c *ClusterConfig) { c.Lat.C2CRemote = 0 },
		"cap below base": func(c *ClusterConfig) { c.Base = 8; c.Cap = 4 },
		"remote cap low": func(c *ClusterConfig) { c.RemoteCap = ok.Cap - 1 },
		"unknown policy": func(c *ClusterConfig) { c.Policy = "mcs" },
		"negative shape": func(c *ClusterConfig) { c.ClusterSize = -1 },
	}
	for name, mutate := range cases {
		c := testClusterConfig(ClusterHBO)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad config", name)
		}
	}
}

// TestLookaheadDerivation pins the latency-tree extraction: flight time
// is half the smallest cross-node transfer cost.
func TestLookaheadDerivation(t *testing.T) {
	l := WildFireLatencies()
	if got, want := l.MinCrossNodeFlight(), sim.Time(850); got != want {
		t.Fatalf("WildFire lookahead %v, want %v (MemRemote 1700 / 2)", got, want)
	}
	l.MemRemote = 0 // cross-node memory disabled: C2C bound remains
	if got, want := l.MinCrossNodeFlight(), sim.Time(985); got != want {
		t.Fatalf("lookahead %v, want %v (C2CRemote 1970 / 2)", got, want)
	}
	l.C2CFar = 100 // a far tier *below* remote still bounds the window
	if got, want := l.MinCrossNodeFlight(), sim.Time(50); got != want {
		t.Fatalf("lookahead %v, want %v", got, want)
	}
	var zero Latencies
	if got := zero.MinCrossNodeFlight(); got < 1 {
		t.Fatalf("zero latencies must floor at 1ns, got %v", got)
	}
	if cfg := WildFire(); cfg.Lookahead() != cfg.Lat.MinCrossNodeFlight() {
		t.Fatal("Config.Lookahead does not delegate to the latency tree")
	}
}
