package machine

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Addr identifies one word of simulated shared memory. By default every
// word lives on its own cache line (the paper allocates each lock on a
// private line); Config.WordsPerLine > 1 makes words share lines, for
// collocation and false-sharing studies. Addr 0 is reserved as a nil
// pointer value for queue-lock links.
type Addr uint32

// NilAddr is never returned by Alloc; queue locks use it as a null link.
const NilAddr Addr = 0

type lineState uint8

const (
	stateUncached lineState = iota
	stateShared
	stateModified
)

// sharerSet is a bitmap over CPU ids.
type sharerSet uint64

func (s sharerSet) has(cpu int) bool { return s&(1<<uint(cpu)) != 0 }
func (s *sharerSet) add(cpu int)     { *s |= 1 << uint(cpu) }
func (s *sharerSet) remove(cpu int)  { *s &^= 1 << uint(cpu) }
func (s sharerSet) empty() bool      { return s == 0 }
func (s sharerSet) count() int {
	n := 0
	for v := uint64(s); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// lineTraffic attributes coherence traffic to one cache line, so runs
// can split lock-line vs data-line transactions the way the paper's
// Tables 2 and 6 attribute traffic per lock.
type lineTraffic struct {
	misses    uint64 // read/write misses and upgrades served for this line
	invals    uint64 // remote-node invalidation messages
	transfers uint64 // cache-to-cache data transfers
	local     uint64 // bus transactions at any node (matches Stats.Local)
	global    uint64 // interconnect crossings (matches Stats.Global)
}

type line struct {
	home    int // home node of the backing memory
	state   lineState
	owner   int // cpu id when stateModified
	sharers sharerSet
	waiters []*Proc // procs parked in SpinUntil on this line
	// busyUntil serializes ownership/data transfers of this line: a
	// cache line can only move between caches one transfer at a time,
	// so a burst of misses (the test&set storm after a release) queues.
	// This serialization is what makes TATAS collapse under contention.
	busyUntil sim.Time
	traf      lineTraffic
}

// Stats accumulates coherence-traffic counters. Local transactions are
// counted per node (any bus transaction at that node); transactions that
// cross the interconnect also count as one global transaction, matching
// how the paper's Tables 2 and 6 report "local" and "global" traffic.
type Stats struct {
	Local  []uint64 // indexed by node
	Global uint64
}

// TotalLocal sums the per-node local counters.
func (s Stats) TotalLocal() uint64 {
	var t uint64
	for _, v := range s.Local {
		t += v
	}
	return t
}

// Sub returns s - o (counter deltas between two snapshots).
func (s Stats) Sub(o Stats) Stats {
	d := Stats{Local: make([]uint64, len(s.Local)), Global: s.Global - o.Global}
	for i := range s.Local {
		d.Local[i] = s.Local[i] - o.Local[i]
	}
	return d
}

// Machine is a simulated NUCA multiprocessor. Construct with New, allocate
// shared memory with Alloc, start programs with Spawn, then call Run.
type Machine struct {
	cfg   Config
	eng   *sim.Engine
	rng   *sim.RNG
	words []uint64
	lines []line
	buses []*sim.Resource // one per node
	link  *sim.Resource

	stats          Stats
	labels         map[int]string // line index -> caller-supplied label
	procs          []*Proc
	active         int // procs still running
	preemptedUntil []sim.Time
	probeFailure   error // first violation latched by the invariant probes
	// faults is nil unless a fault class is enabled, so the fault-free
	// fast paths stay branch-one-nil-check cheap and byte-identical.
	faults *fault.Injector
}

// New builds a machine from cfg. It panics on an invalid configuration
// (machine shape is programmer input, not runtime data).
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	eng := sim.NewEngine()
	if cfg.TimeLimit > 0 {
		eng.SetLimit(cfg.TimeLimit)
	}
	if cfg.TieBreakSeed != 0 {
		eng.Perturb(cfg.TieBreakSeed)
	}
	m := &Machine{
		cfg:            cfg,
		eng:            eng,
		rng:            sim.NewRNG(cfg.Seed),
		words:          make([]uint64, 1, 1024), // index 0 reserved (NilAddr)
		lines:          make([]line, 1, 1024),
		link:           sim.NewResource(eng, "link"),
		stats:          Stats{Local: make([]uint64, cfg.Nodes)},
		labels:         map[int]string{},
		preemptedUntil: make([]sim.Time, cfg.TotalCPUs()),
	}
	for n := 0; n < cfg.Nodes; n++ {
		m.buses = append(m.buses, sim.NewResource(eng, fmt.Sprintf("bus%d", n)))
	}
	if cfg.Preempt.Enabled {
		m.schedulePreempt()
	}
	if cfg.Fault.Enabled() {
		m.faults = fault.NewInjector(cfg.Fault, cfg.Nodes)
	}
	return m
}

// FaultStats returns the fault-injection counts observed so far (zero
// when no fault class is enabled).
func (m *Machine) FaultStats() fault.Stats {
	if m.faults == nil {
		return fault.Stats{}
	}
	return m.faults.Stats()
}

// faultLatency scales a transfer latency touching nodes a and b by the
// strongest active spike window among them.
func (m *Machine) faultLatency(d sim.Time, a, b int) sim.Time {
	s := m.faults.LatencyScale(m.eng.Now(), a)
	if a != b {
		if s2 := m.faults.LatencyScale(m.eng.Now(), b); s2 > s {
			s = s2
		}
	}
	if s <= 1 {
		return d
	}
	return sim.Time(float64(d) * s)
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the simulated clock.
func (m *Machine) Now() sim.Time { return m.eng.Now() }

// RNG returns the machine's deterministic random source. Workloads share
// it so a single seed reproduces an entire experiment.
func (m *Machine) RNG() *sim.RNG { return m.rng }

// Alloc reserves words of shared memory homed in the given node and
// returns the address of the first word. Each word is its own cache line.
func (m *Machine) Alloc(home, words int) Addr {
	if home < 0 || home >= m.cfg.Nodes {
		panic(fmt.Sprintf("machine: Alloc home node %d out of range", home))
	}
	if words <= 0 {
		panic("machine: Alloc of non-positive size")
	}
	wpl := m.wordsPerLine()
	// Align to a line boundary so separate allocations never share a
	// line (deliberate collocation uses a single multi-word Alloc).
	for len(m.words)%wpl != 0 {
		m.words = append(m.words, 0)
	}
	base := Addr(len(m.words))
	for i := 0; i < words; i++ {
		m.words = append(m.words, 0)
	}
	// Grow line metadata to cover the new words.
	for len(m.lines)*wpl < len(m.words) {
		m.lines = append(m.lines, line{home: home})
	}
	return base
}

// wordsPerLine returns the configured line width (>= 1).
func (m *Machine) wordsPerLine() int {
	if m.cfg.WordsPerLine < 1 {
		return 1
	}
	return m.cfg.WordsPerLine
}

// lineOf returns the cache-line metadata covering address a.
func (m *Machine) lineOf(a Addr) *line {
	return &m.lines[int(a)/m.wordsPerLine()]
}

// Peek reads a word without simulating any cost or coherence action.
// Intended for workload setup and result collection.
func (m *Machine) Peek(a Addr) uint64 { return m.words[a] }

// Poke writes a word without cost; the line is left uncached so the next
// access pays a memory fetch. Intended for workload setup.
func (m *Machine) Poke(a Addr, v uint64) {
	m.words[a] = v
	l := m.lineOf(a)
	l.state = stateUncached
	l.sharers = 0
}

// SeedOwner places a's line dirty in cpu's cache, as if cpu had just
// written v. Used by the uncontested-latency probe to set up the
// "previous owner" scenarios of Table 1.
func (m *Machine) SeedOwner(a Addr, cpu int, v uint64) {
	m.words[a] = v
	l := m.lineOf(a)
	l.state = stateModified
	l.owner = cpu
	l.sharers = 0
}

// NodeOf maps a cpu id to its node.
func (m *Machine) NodeOf(cpu int) int { return cpu / m.cfg.CPUsPerNode }

// ClusterOf maps a node to its cluster (the node itself on flat
// machines).
func (m *Machine) ClusterOf(node int) int {
	if m.cfg.ClusterSize <= 1 {
		return node
	}
	return node / m.cfg.ClusterSize
}

// Distance classifies how far apart two nodes are: 0 same node, 1 same
// cluster (or any other node on a flat machine), 2 across clusters.
func (m *Machine) Distance(a, b int) int {
	switch {
	case a == b:
		return 0
	case m.ClusterOf(a) == m.ClusterOf(b):
		return 1
	default:
		if m.cfg.ClusterSize <= 1 {
			return 1
		}
		return 2
	}
}

// c2cLatency returns the cache-to-cache cost between two nodes.
func (m *Machine) c2cLatency(a, b int) sim.Time {
	switch m.Distance(a, b) {
	case 0:
		return m.cfg.Lat.C2CLocal
	case 1:
		return m.cfg.Lat.C2CRemote
	default:
		if m.cfg.Lat.C2CFar > 0 {
			return m.cfg.Lat.C2CFar
		}
		return m.cfg.Lat.C2CRemote
	}
}

// memLatency returns the memory-fetch cost from node a to memory homed
// in node b.
func (m *Machine) memLatency(a, b int) sim.Time {
	switch m.Distance(a, b) {
	case 0:
		return m.cfg.Lat.MemLocal
	case 1:
		return m.cfg.Lat.MemRemote
	default:
		if m.cfg.Lat.MemFar > 0 {
			return m.cfg.Lat.MemFar
		}
		return m.cfg.Lat.MemRemote
	}
}

// Stats returns a copy of the current traffic counters.
func (m *Machine) Stats() Stats {
	c := Stats{Local: make([]uint64, len(m.stats.Local)), Global: m.stats.Global}
	copy(c.Local, m.stats.Local)
	return c
}

// ResetStats zeroes the traffic counters, aggregate and per-line
// (e.g. after a warmup phase).
func (m *Machine) ResetStats() {
	for i := range m.stats.Local {
		m.stats.Local[i] = 0
	}
	m.stats.Global = 0
	for i := range m.lines {
		m.lines[i].traf = lineTraffic{}
	}
}

// countLocal records one bus transaction at node for l's line, in both
// the aggregate and the per-line counters.
func (m *Machine) countLocal(l *line, node int) {
	m.stats.Local[node]++
	l.traf.local++
}

// countGlobal records one interconnect crossing for l's line.
func (m *Machine) countGlobal(l *line) {
	m.stats.Global++
	l.traf.global++
}

// Label tags the cache line containing a so traffic reports can name it
// (e.g. "lock", "cs_data"). The last label for a line wins.
func (m *Machine) Label(a Addr, label string) {
	if a == NilAddr || int(a) >= len(m.words) {
		panic(fmt.Sprintf("machine: Label of invalid address %d", a))
	}
	m.labels[int(a)/m.wordsPerLine()] = label
}

// LabelRange tags every cache line covering [base, base+words). Line 0
// (the reserved NilAddr region, which may pad the range's start when
// WordsPerLine > 1) is skipped.
func (m *Machine) LabelRange(base Addr, words int, label string) {
	wpl := m.wordsPerLine()
	lo := int(base) / wpl
	hi := (int(base) + words - 1) / wpl
	if words <= 0 || hi >= len(m.lines) {
		panic(fmt.Sprintf("machine: LabelRange [%d,+%d) out of range", base, words))
	}
	if lo < 1 {
		lo = 1
	}
	for li := lo; li <= hi; li++ {
		m.labels[li] = label
	}
}

// AllocatedWords returns the current size of the shared-memory arena.
// Bracketing an allocation phase with it lets callers label everything
// that phase allocated (e.g. a lock's internal lines) via LabelRange.
func (m *Machine) AllocatedWords() int { return len(m.words) }

// LineStats is the coherence traffic attributed to one cache line.
type LineStats struct {
	Addr          Addr   `json:"addr"`
	Home          int    `json:"home"`
	Label         string `json:"label,omitempty"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Transfers     uint64 `json:"transfers"`
	Local         uint64 `json:"local"`
	Global        uint64 `json:"global"`
}

// Traffic returns the line's total transaction count (local + global),
// the hotness metric used by HotLines.
func (s LineStats) Traffic() uint64 { return s.Local + s.Global }

// LineStats returns per-line traffic for every line that saw any, in
// ascending address order. Addr is the line's first word.
func (m *Machine) LineStats() []LineStats {
	var out []LineStats
	wpl := m.wordsPerLine()
	for i := 1; i < len(m.lines); i++ {
		t := m.lines[i].traf
		if t.misses == 0 && t.invals == 0 && t.transfers == 0 && t.local == 0 && t.global == 0 {
			continue
		}
		out = append(out, LineStats{
			Addr:          Addr(i * wpl),
			Home:          m.lines[i].home,
			Label:         m.labels[i],
			Misses:        t.misses,
			Invalidations: t.invals,
			Transfers:     t.transfers,
			Local:         t.local,
			Global:        t.global,
		})
	}
	return out
}

// HotLines returns the n busiest lines by total traffic, ties broken by
// address so a fixed seed yields a fixed report.
func (m *Machine) HotLines(n int) []LineStats {
	ls := m.LineStats()
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Traffic() != ls[j].Traffic() {
			return ls[i].Traffic() > ls[j].Traffic()
		}
		return ls[i].Addr < ls[j].Addr
	})
	if n > 0 && len(ls) > n {
		ls = ls[:n]
	}
	return ls
}

// BusUtilization returns per-node bus utilization so far.
func (m *Machine) BusUtilization() []float64 {
	u := make([]float64, len(m.buses))
	for i, b := range m.buses {
		u[i] = b.Utilization()
	}
	return u
}

// LinkUtilization returns global interconnect utilization so far.
func (m *Machine) LinkUtilization() float64 { return m.link.Utilization() }

// Spawn starts body on the given CPU. Multiple programs may share a CPU
// only if the caller multiplexes them itself; normally one program per
// CPU. Programs begin executing when Run is called.
func (m *Machine) Spawn(cpu int, body func(p *Proc)) *Proc {
	if cpu < 0 || cpu >= m.cfg.TotalCPUs() {
		panic(fmt.Sprintf("machine: Spawn cpu %d out of range", cpu))
	}
	p := &Proc{m: m, cpu: cpu, node: m.NodeOf(cpu)}
	m.active++
	p.proc = m.eng.Spawn(cpu, func(sp *sim.Process) {
		body(p)
		m.active--
	})
	m.procs = append(m.procs, p)
	return p
}

// Run executes all spawned programs to completion (or the time limit) and
// releases simulation resources. The machine can be inspected afterwards
// but not run again.
func (m *Machine) Run() {
	m.eng.Run()
	m.eng.Shutdown()
}

// Aborted reports whether Run stopped at the time limit rather than by
// all programs finishing.
func (m *Machine) Aborted() bool { return m.active > 0 }

// schedulePreempt installs the OS-interference injector.
func (m *Machine) schedulePreempt() {
	pc := m.cfg.Preempt
	var tick func()
	tick = func() {
		if m.active == 0 || len(m.procs) == 0 {
			return // all programs done; let the simulation drain
		}
		// Steal a CPU that actually runs a program: daemons displace
		// workers only when the machine is fully subscribed, which is
		// the scenario the injector exists to model.
		cpu := m.procs[m.rng.Intn(len(m.procs))].cpu
		dur := m.rng.Exp(pc.MeanDuration)
		until := m.eng.Now() + dur
		if until > m.preemptedUntil[cpu] {
			m.preemptedUntil[cpu] = until
		}
		m.eng.Schedule(m.rng.Exp(pc.MeanInterval), tick)
	}
	m.eng.Schedule(m.rng.Exp(pc.MeanInterval), tick)
}

// wakeWaiters releases every proc parked in SpinUntil on l. Each waiter
// resumes after a randomized propagation delay (see Latencies.WakeJitter)
// and re-reads the line, which reproduces the refill burst that follows
// an invalidation with a hardware-realistic scramble of who gets there
// first.
func (m *Machine) wakeWaiters(l *line) {
	if len(l.waiters) == 0 {
		return
	}
	ws := l.waiters
	l.waiters = l.waiters[:0]
	for _, w := range ws {
		var d sim.Time
		if j := m.cfg.Lat.WakeJitter; j > 0 {
			d = m.rng.Timen(j + 1)
		}
		w.proc.Wake(d)
	}
}

// cached reports whether cpu currently holds a valid copy of a's line.
func (m *Machine) cached(cpu int, a Addr) bool {
	l := m.lineOf(a)
	switch l.state {
	case stateModified:
		return l.owner == cpu
	case stateShared:
		return l.sharers.has(cpu)
	}
	return false
}
