package machine

import (
	"testing"
)

// pingPong builds a 2-node machine where CPUs in different nodes take
// turns writing the contended word while a second word stays node-local.
func pingPong(t *testing.T) (*Machine, Addr, Addr) {
	t.Helper()
	cfg := WildFire()
	cfg.CPUsPerNode = 2
	cfg.Seed = 5
	m := New(cfg)
	hot := m.Alloc(0, 1)  // bounced between nodes
	cold := m.Alloc(0, 1) // only touched by node 0
	m.Label(hot, "hot")
	for _, cpu := range []int{0, 2} {
		cpu := cpu
		m.Spawn(cpu, func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Store(hot, uint64(cpu))
				p.Work(500)
			}
		})
	}
	m.Spawn(1, func(p *Proc) {
		p.Store(cold, 7)
		p.Load(cold)
	})
	m.Run()
	return m, hot, cold
}

func TestLineStatsAttribution(t *testing.T) {
	m, hot, cold := pingPong(t)
	ls := m.LineStats()
	if len(ls) != 2 {
		t.Fatalf("LineStats has %d lines, want 2: %+v", len(ls), ls)
	}
	byAddr := map[Addr]LineStats{}
	var sumLocal, sumGlobal uint64
	for _, l := range ls {
		byAddr[l.Addr] = l
		sumLocal += l.Local
		sumGlobal += l.Global
	}
	// Per-line attribution must account for exactly the aggregate
	// counters — nothing dropped, nothing double-counted.
	agg := m.Stats()
	if sumLocal != agg.TotalLocal() || sumGlobal != agg.Global {
		t.Errorf("per-line sums local=%d global=%d, aggregate local=%d global=%d",
			sumLocal, sumGlobal, agg.TotalLocal(), agg.Global)
	}
	h := byAddr[hot]
	if h.Label != "hot" {
		t.Errorf("hot line label = %q", h.Label)
	}
	if h.Global == 0 || h.Transfers == 0 || h.Misses == 0 {
		t.Errorf("bounced line shows no cross-node traffic: %+v", h)
	}
	c := byAddr[cold]
	if c.Global != 0 {
		t.Errorf("node-local line counted %d global transactions", c.Global)
	}
	if c.Local == 0 || c.Home != 0 {
		t.Errorf("cold line = %+v", c)
	}
}

func TestHotLinesOrderAndReset(t *testing.T) {
	m, hot, _ := pingPong(t)
	top := m.HotLines(1)
	if len(top) != 1 || top[0].Addr != hot {
		t.Fatalf("HotLines(1) = %+v, want the bounced line %d", top, hot)
	}
	if all := m.HotLines(0); len(all) != 2 {
		t.Fatalf("HotLines(0) returned %d lines", len(all))
	}
	m.ResetStats()
	if ls := m.LineStats(); len(ls) != 0 {
		t.Fatalf("LineStats after reset = %+v", ls)
	}
	if m.Stats().TotalLocal() != 0 || m.Stats().Global != 0 {
		t.Fatal("aggregate stats not reset")
	}
}

func TestLabelRangeMultiWordLines(t *testing.T) {
	cfg := WildFire()
	cfg.WordsPerLine = 4
	m := New(cfg)
	base := m.Alloc(0, 8) // two lines
	m.LabelRange(base, 8, "vec")
	m.Spawn(0, func(p *Proc) {
		p.Store(base, 1)
		p.Store(base+4, 1)
	})
	m.Run()
	ls := m.LineStats()
	if len(ls) != 2 {
		t.Fatalf("LineStats = %+v", ls)
	}
	for _, l := range ls {
		if l.Label != "vec" {
			t.Errorf("line %d label = %q, want vec", l.Addr, l.Label)
		}
	}
}
