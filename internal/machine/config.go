// Package machine models a NUCA (nonuniform communication architecture)
// shared-memory multiprocessor on top of the internal/sim discrete-event
// engine.
//
// The model captures exactly the mechanisms the HBO paper's evaluation
// depends on: per-CPU caches kept coherent by an invalidation protocol,
// a latency hierarchy (own cache, neighbor cache, remote cache, local and
// remote memory), per-node snoop buses and a global interconnect that
// queue under load, and accounting of local vs. global coherence
// transactions. Simulated processors execute Go functions and interact
// with memory through the Proc API (Load/Store/CAS/Swap/TAS), so lock
// algorithms can be transcribed almost line by line from the paper.
package machine

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Latencies holds the unloaded cost of each memory operation class, in
// simulated nanoseconds. See DESIGN.md §4 for the calibration against the
// paper's Sun WildFire numbers.
type Latencies struct {
	// OpOverhead is the fixed instruction overhead charged per memory
	// operation (address generation, branch, call glue).
	OpOverhead sim.Time
	// LoadHit is a load of a line valid in the issuing CPU's cache.
	LoadHit sim.Time
	// StoreOwned is a store or atomic to a line this CPU owns (M state).
	StoreOwned sim.Time
	// Upgrade is a store/atomic to a line this CPU shares: the sharers
	// must be invalidated but no data transfer is needed.
	Upgrade sim.Time
	// C2CLocal is a cache-to-cache transfer from a CPU in the same node.
	C2CLocal sim.Time
	// C2CRemote is a cache-to-cache transfer from a CPU in another node.
	C2CRemote sim.Time
	// MemLocal is a fetch from memory homed in the issuing CPU's node.
	MemLocal sim.Time
	// MemRemote is a fetch from memory homed in another node.
	MemRemote sim.Time
	// BackoffUnit is the cost of one iteration of the empty delay loop
	// `for (i = b; i; i--);` used by backoff locks.
	BackoffUnit sim.Time
	// WakeJitter is the maximum extra delay before a spinner parked on
	// an invalidated line re-reads it. Real coherence fabrics resolve a
	// refill storm through queued retries and NACKs, which effectively
	// randomizes the winner among the spinning requesters; without this
	// jitter the deterministic model lets the nearest CPU win every
	// race, starving remote nodes far beyond what hardware shows.
	WakeJitter sim.Time
	// C2CFar and MemFar apply to transfers that cross cluster
	// boundaries on hierarchical machines (Config.ClusterSize > 1),
	// modeling the paper's "several levels of non-uniformity" (a NUMA
	// of CMPs). Zero values fall back to C2CRemote/MemRemote.
	C2CFar sim.Time
	MemFar sim.Time
}

// PreemptConfig describes OS scheduling interference: at exponentially
// distributed intervals a random CPU is stolen for an exponentially
// distributed duration. The paper's Table 4 shows queue-based locks
// collapsing when the machine is fully subscribed and Solaris daemons
// preempt a queued thread; this injector reproduces that mechanism.
type PreemptConfig struct {
	Enabled      bool
	MeanInterval sim.Time // mean time between preemption events
	MeanDuration sim.Time // mean duration a CPU is stolen
}

// Config describes a machine instance.
type Config struct {
	Nodes       int
	CPUsPerNode int
	// ClusterSize groups nodes into clusters of this many nodes for
	// hierarchical NUCAs; 0 or 1 means a flat two-level machine.
	// Transfers within a cluster use the Remote latencies, transfers
	// across clusters the Far latencies.
	ClusterSize int
	// WordsPerLine sets how many memory words share a cache line
	// (0 or 1 = one word per line, the default that isolates every
	// variable). Larger values enable collocation studies — the QOLB
	// trick of placing guarded data on the lock's own line — and false
	// sharing. Allocations are always line-aligned.
	WordsPerLine int
	Lat          Latencies
	// BusService is each node bus's occupancy per coherence transaction.
	BusService sim.Time
	// LinkService is the global interconnect's occupancy per crossing.
	LinkService sim.Time
	Preempt     PreemptConfig
	Seed        uint64
	// TieBreakSeed, when non-zero, perturbs the engine's equal-timestamp
	// event ordering (sim.Engine.Perturb): same seed, same schedule. The
	// correctness harness in internal/check sweeps it to explore distinct
	// interleavings; 0 keeps the default deterministic FIFO tie-break.
	TieBreakSeed uint64
	// Probes enables the always-on coherence invariant probes: every
	// memory-access completion validates the MESI directory state and the
	// first violation is recorded (see Machine.ProbeError). Off by
	// default; the overhead is one extra check per simulated access.
	Probes bool
	// TimeLimit aborts the simulation when the clock passes it (0 = off).
	TimeLimit sim.Time
	// Fault configures the deterministic fault-injection layer (latency
	// spikes, interconnect congestion storms, node pauses, coherence
	// NACKs). The zero value injects nothing and leaves the event
	// sequence byte-identical to a machine without the layer. Fault.Seed
	// plus a schedule (see fault.Preset) are the replay coordinates of a
	// degraded run, independent of Seed and TieBreakSeed.
	Fault fault.Config
}

// Validate reports configuration errors. It is the single up-front
// gate for machine shapes: anything it accepts must construct and run
// without panicking deep inside the model, so harnesses (fuzzers, flag
// parsers) can surface a clean error instead of a stack trace.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("machine: Nodes = %d, need >= 1", c.Nodes)
	}
	if c.CPUsPerNode < 1 {
		return fmt.Errorf("machine: CPUsPerNode = %d, need >= 1", c.CPUsPerNode)
	}
	if c.Nodes*c.CPUsPerNode > maxCPUs {
		return fmt.Errorf("machine: %d CPUs exceeds the %d-CPU sharer bitmap",
			c.Nodes*c.CPUsPerNode, maxCPUs)
	}
	if c.ClusterSize < 0 {
		return fmt.Errorf("machine: ClusterSize = %d, need >= 0", c.ClusterSize)
	}
	if c.WordsPerLine < 0 {
		return fmt.Errorf("machine: WordsPerLine = %d, need >= 0", c.WordsPerLine)
	}
	for _, l := range []struct {
		name string
		v    sim.Time
	}{
		{"OpOverhead", c.Lat.OpOverhead}, {"LoadHit", c.Lat.LoadHit},
		{"StoreOwned", c.Lat.StoreOwned}, {"Upgrade", c.Lat.Upgrade},
		{"C2CLocal", c.Lat.C2CLocal}, {"C2CRemote", c.Lat.C2CRemote},
		{"MemLocal", c.Lat.MemLocal}, {"MemRemote", c.Lat.MemRemote},
		{"BackoffUnit", c.Lat.BackoffUnit}, {"WakeJitter", c.Lat.WakeJitter},
		{"C2CFar", c.Lat.C2CFar}, {"MemFar", c.Lat.MemFar},
		{"BusService", c.BusService}, {"LinkService", c.LinkService},
		{"TimeLimit", c.TimeLimit},
	} {
		if l.v < 0 {
			return fmt.Errorf("machine: %s = %v, need >= 0", l.name, l.v)
		}
	}
	if c.Preempt.Enabled {
		if c.Preempt.MeanInterval <= 0 {
			return fmt.Errorf("machine: Preempt.MeanInterval = %v, need > 0", c.Preempt.MeanInterval)
		}
		if c.Preempt.MeanDuration <= 0 {
			return fmt.Errorf("machine: Preempt.MeanDuration = %v, need > 0", c.Preempt.MeanDuration)
		}
	}
	return c.Fault.Validate()
}

// TotalCPUs returns Nodes * CPUsPerNode.
func (c Config) TotalCPUs() int { return c.Nodes * c.CPUsPerNode }

// MinCrossNodeFlight returns the smallest one-way (request-in-flight)
// latency of any transaction that crosses nodes: half the smallest
// cross-node transfer cost, matching the miss model's flight/service
// split (Proc.miss charges d/2 for the request to reach the line). This
// is the conservative-PDES lookahead the latency tree admits: no node
// can affect another in less simulated time than this, so a partition
// may execute that far past its neighbors' clocks without waiting.
// The result is floored at 1ns (a zero lookahead admits no window).
func (l Latencies) MinCrossNodeFlight() sim.Time {
	min := l.C2CRemote
	pick := func(v sim.Time) {
		if v > 0 && (min <= 0 || v < min) {
			min = v
		}
	}
	pick(l.MemRemote)
	pick(l.C2CFar)
	pick(l.MemFar)
	f := min / 2
	if f < 1 {
		f = 1
	}
	return f
}

// Lookahead returns the conservative parallel-simulation lookahead
// derived from this machine's latency tree (see MinCrossNodeFlight).
func (c Config) Lookahead() sim.Time { return c.Lat.MinCrossNodeFlight() }

// WildFireLatencies is the latency calibration for the paper's 2-node Sun
// WildFire (two E6000 cabinets, 250 MHz UltraSPARC-II). The constants are
// chosen so the uncontested lock costs of Table 1 land on the measured
// values: e.g. TATAS same-processor = tas(owned) + store(owned) +
// overheads ≈ 150 ns; same-node ≈ 660 ns; remote ≈ 2050 ns.
func WildFireLatencies() Latencies {
	return Latencies{
		OpOverhead:  5,
		LoadHit:     12,
		StoreOwned:  70,
		Upgrade:     250,
		C2CLocal:    580,
		C2CRemote:   1970,
		MemLocal:    330,
		MemRemote:   1700,
		BackoffUnit: 4, // 250 MHz, ~1 cycle per empty loop iteration
		WakeJitter:  1600,
	}
}

// WildFire returns the 2-node, 28-CPU configuration used for most of the
// paper's experiments (14 threads per node; the hardware had 16+14 CPUs
// but the authors ran 14+14).
func WildFire() Config {
	return Config{
		Nodes:       2,
		CPUsPerNode: 16,
		Lat:         WildFireLatencies(),
		BusService:  40,
		LinkService: 120,
		Seed:        1,
	}
}

// E6000 returns a single-node 16-CPU SMP (uniform communication), the
// machine used for the paper's non-DSM measurements.
func E6000() Config {
	c := WildFire()
	c.Nodes = 1
	return c
}

// CMPServer returns a hierarchical NUCA: eight 4-CPU nodes (think chip
// multiprocessors) in clusters of two, with a third latency level
// across clusters — the future machine class the paper's section 2
// sketches (NUCA ratios 6–10).
func CMPServer() Config {
	c := WildFire()
	c.Nodes = 8
	c.CPUsPerNode = 4
	c.ClusterSize = 2
	c.Lat.C2CLocal = 300 // on-chip neighbor
	c.Lat.C2CRemote = 900
	c.Lat.C2CFar = 2400
	c.Lat.MemLocal = 200
	c.Lat.MemRemote = 700
	c.Lat.MemFar = 1900
	return c
}

// maxCPUs bounds the sharer bitmap.
const maxCPUs = 64
