package machine

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// faultWorkload runs a small contended read-modify-write workload and
// returns the final simulated time, traffic stats and fault stats.
func faultWorkload(cfg Config) (sim.Time, Stats, fault.Stats) {
	m := New(cfg)
	a := m.Alloc(0, 1)
	b := m.Alloc(cfg.Nodes-1, 1)
	for cpu := 0; cpu < cfg.TotalCPUs(); cpu++ {
		m.Spawn(cpu, func(p *Proc) {
			// Long enough (several simulated ms) that the preset fault
			// windows, whose mean gaps are hundreds of µs, open many
			// times during the run.
			for i := 0; i < 1200; i++ {
				p.Store(a, p.Load(a)+1)
				p.Store(b, p.Load(b)+1)
				p.Work(500)
			}
		})
	}
	m.Run()
	return m.Now(), m.Stats(), m.FaultStats()
}

func smallShape() Config {
	cfg := WildFire()
	cfg.Nodes = 2
	cfg.CPUsPerNode = 2
	cfg.Probes = true
	return cfg
}

// TestFaultRunsDeterministic requires byte-level replay: the same
// (faultSeed, schedule) pair yields identical elapsed time, traffic and
// fault counts; a different fault seed yields a different run.
func TestFaultRunsDeterministic(t *testing.T) {
	for _, sched := range fault.Schedules() {
		cfg := smallShape()
		fc, err := fault.Preset(sched, 77, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Fault = fc
		t1, s1, f1 := faultWorkload(cfg)
		t2, s2, f2 := faultWorkload(cfg)
		if t1 != t2 || s1.Global != s2.Global || s1.TotalLocal() != s2.TotalLocal() || f1 != f2 {
			t.Fatalf("%s: replay diverged: (%v,%d,%d,%+v) vs (%v,%d,%d,%+v)",
				sched, t1, s1.Global, s1.TotalLocal(), f1, t2, s2.Global, s2.TotalLocal(), f2)
		}
		cfg.Fault.Seed = 78
		t3, _, _ := faultWorkload(cfg)
		if t3 == t1 {
			t.Errorf("%s: fault seed change did not alter the run", sched)
		}
	}
}

// pingPong passes a token between one CPU in node 0 and one in node 1
// through a strictly serialized handshake, so the elapsed time is a
// monotone sum of transfer latencies: any injected delay must slow the
// run. (A *contended* workload is not monotone — pausing a node can
// dissolve a convoy and finish faster.)
func faultPingPong(cfg Config, rounds int) (sim.Time, fault.Stats) {
	m := New(cfg)
	tok := m.Alloc(0, 1)
	m.Spawn(0, func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.SpinUntil(tok, func(v uint64) bool { return v == uint64(2*i) })
			p.Store(tok, uint64(2*i+1))
		}
	})
	m.Spawn(cfg.CPUsPerNode, func(p *Proc) { // first CPU of node 1
		for i := 0; i < rounds; i++ {
			p.SpinUntil(tok, func(v uint64) bool { return v == uint64(2*i+1) })
			p.Store(tok, uint64(2*i+2))
		}
	})
	m.Run()
	return m.Now(), m.FaultStats()
}

// TestFaultClassesSlowTheMachine checks each class actually injects:
// the degraded run is slower than the fault-free run and the injector
// counted events.
func TestFaultClassesSlowTheMachine(t *testing.T) {
	const rounds = 1500
	base, _ := faultPingPong(smallShape(), rounds)
	for _, sched := range fault.Schedules() {
		cfg := smallShape()
		fc, err := fault.Preset(sched, 5, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Fault = fc
		elapsed, fs := faultPingPong(cfg, rounds)
		if fs.Total() == 0 {
			t.Errorf("%s: no fault events observed", sched)
		}
		if elapsed <= base {
			t.Errorf("%s: degraded run (%v) not slower than fault-free (%v)", sched, elapsed, base)
		}
	}
}

// TestFaultZeroConfigIdentical checks the zero fault config reproduces
// the fault-free event sequence exactly (same clock, same traffic).
func TestFaultZeroConfigIdentical(t *testing.T) {
	t1, s1, _ := faultWorkload(smallShape())
	cfg := smallShape()
	cfg.Fault = fault.Config{Seed: 12345} // seed set, no class enabled
	t2, s2, f2 := faultWorkload(cfg)
	if t1 != t2 || s1.Global != s2.Global || s1.TotalLocal() != s2.TotalLocal() {
		t.Fatalf("zero fault config changed the run: (%v,%d,%d) vs (%v,%d,%d)",
			t1, s1.Global, s1.TotalLocal(), t2, s2.Global, s2.TotalLocal())
	}
	if f2.Total() != 0 {
		t.Fatalf("zero fault config counted %d events", f2.Total())
	}
}

// TestFaultConservationHolds runs every fault class with probes on and
// requires the per-line traffic attribution to still conserve against
// the aggregate counters (NACK retries count on both sides).
func TestFaultConservationHolds(t *testing.T) {
	for _, sched := range fault.Schedules() {
		cfg := smallShape()
		fc, err := fault.Preset(sched, 9, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Fault = fc
		m := New(cfg)
		a := m.Alloc(0, 2)
		for cpu := 0; cpu < cfg.TotalCPUs(); cpu++ {
			m.Spawn(cpu, func(p *Proc) {
				for i := 0; i < 30; i++ {
					p.CAS(a, 0, uint64(cpu))
					p.Store(a+1, p.Load(a+1)+1)
					p.Store(a, 0)
				}
			})
		}
		m.Run()
		if err := m.CheckConservation(); err != nil {
			t.Errorf("%s: %v", sched, err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", sched, err)
		}
		if err := m.ProbeError(); err != nil {
			t.Errorf("%s: %v", sched, err)
		}
	}
}

// TestConfigValidateRejectsBadShapes exercises the up-front validation
// satellite: shapes that used to panic deep in construction now fail
// Validate with a descriptive error.
func TestConfigValidateRejectsBadShapes(t *testing.T) {
	good := WildFire()
	if err := good.Validate(); err != nil {
		t.Fatalf("WildFire invalid: %v", err)
	}
	mut := func(f func(*Config)) Config {
		c := WildFire()
		f(&c)
		return c
	}
	bad := []struct {
		name string
		cfg  Config
	}{
		{"zero nodes", mut(func(c *Config) { c.Nodes = 0 })},
		{"negative nodes", mut(func(c *Config) { c.Nodes = -3 })},
		{"zero cpus", mut(func(c *Config) { c.CPUsPerNode = 0 })},
		{"too many cpus", mut(func(c *Config) { c.Nodes = 9; c.CPUsPerNode = 8 })},
		{"negative cluster", mut(func(c *Config) { c.ClusterSize = -1 })},
		{"negative line width", mut(func(c *Config) { c.WordsPerLine = -2 })},
		{"negative latency", mut(func(c *Config) { c.Lat.C2CRemote = -1 })},
		{"negative bus service", mut(func(c *Config) { c.BusService = -40 })},
		{"negative time limit", mut(func(c *Config) { c.TimeLimit = -1 })},
		{"preempt no mean", mut(func(c *Config) { c.Preempt = PreemptConfig{Enabled: true} })},
		{"bad fault", mut(func(c *Config) {
			c.Fault.Spike = fault.SpikeConfig{Enabled: true, Factor: 2}
		})},
	}
	for _, b := range bad {
		if err := b.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the config", b.name)
		}
	}
}
