// Package locktest is a conformance harness for lock implementations on
// the simulated NUCA machine: it drives a configurable contention
// scenario against any registered algorithm and verifies mutual
// exclusion, progress and accounting invariants, reporting the
// behavioural metrics (handoffs, fairness, traffic) alongside. New lock
// implementations get a full shakedown from one call.
package locktest

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// Config describes one conformance scenario.
type Config struct {
	Machine    machine.Config
	Threads    int
	Iterations int      // per thread
	CSWork     sim.Time // critical-section compute
	MaxThink   sim.Time // uniform random think time bound (0 = none)
	// CSLines of shared data are mutated inside the critical section
	// and verified afterwards (defaults to 2).
	CSLines int
	// LockHome is the node holding the lock variable (default 0).
	LockHome int
}

// DefaultConfig returns a moderately contended 8-thread scenario.
func DefaultConfig(seed uint64) Config {
	m := machine.WildFire()
	m.CPUsPerNode = 4
	m.Seed = seed
	return Config{
		Machine:    m,
		Threads:    8,
		Iterations: 100,
		CSWork:     300,
		MaxThink:   2000,
		CSLines:    2,
	}
}

// Report is the outcome of one conformance run.
type Report struct {
	Lock         string
	Acquisitions int
	// Violations counts overlapping critical sections (must be 0).
	Violations int
	// LostUpdates is the difference between expected and observed
	// increments of the guarded data (must be 0).
	LostUpdates  int
	Elapsed      sim.Time
	HandoffRatio float64
	// FinishSpreadPct is (last-first)/first finish time, in percent.
	FinishSpreadPct float64
	PerThread       []int
	Traffic         machine.Stats
}

// Ok reports whether every invariant held.
func (r Report) Ok() bool {
	return r.Violations == 0 && r.LostUpdates == 0 &&
		r.Acquisitions > 0 && r.Elapsed > 0
}

// Err returns a descriptive error when an invariant failed, else nil.
func (r Report) Err() error {
	if r.Ok() {
		return nil
	}
	return fmt.Errorf("locktest: %s failed conformance: %d violations, %d lost updates, %d acquisitions",
		r.Lock, r.Violations, r.LostUpdates, r.Acquisitions)
}

// Check runs the scenario against the named algorithm.
func Check(lockName string, cfg Config) Report {
	if cfg.Threads < 1 || cfg.Iterations < 1 {
		panic("locktest: need at least one thread and iteration")
	}
	if cfg.CSLines < 1 {
		cfg.CSLines = 2
	}
	m := machine.New(cfg.Machine)
	cpus := make([]int, cfg.Threads)
	next := make([]int, cfg.Machine.Nodes)
	for i := range cpus {
		n := i % cfg.Machine.Nodes
		for next[n] >= cfg.Machine.CPUsPerNode {
			n = (n + 1) % cfg.Machine.Nodes
		}
		cpus[i] = n*cfg.Machine.CPUsPerNode + next[n]
		next[n]++
	}
	l := simlock.New(lockName, m, cfg.LockHome, cpus, simlock.DefaultTuning())
	data := m.Alloc(cfg.LockHome, cfg.CSLines)

	rep := Report{Lock: lockName, PerThread: make([]int, cfg.Threads)}
	inCS := 0
	lastNode, handoffs, switches := -1, 0, 0
	finish := make([]sim.Time, cfg.Threads)

	for tid := 0; tid < cfg.Threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(cfg.Machine.Seed*524287 + uint64(tid) + 7)
			for i := 0; i < cfg.Iterations; i++ {
				l.Acquire(p, tid)
				inCS++
				if inCS != 1 {
					rep.Violations++
				}
				rep.Acquisitions++
				rep.PerThread[tid]++
				if lastNode >= 0 {
					handoffs++
					if lastNode != p.Node() {
						switches++
					}
				}
				lastNode = p.Node()
				for w := 0; w < cfg.CSLines; w++ {
					a := data + machine.Addr(w)
					p.Store(a, p.Load(a)+1)
				}
				p.Work(cfg.CSWork)
				inCS--
				l.Release(p, tid)
				if cfg.MaxThink > 0 {
					p.Work(rng.Timen(cfg.MaxThink) + 1)
				}
			}
			finish[tid] = p.Now()
		})
	}
	m.Run()

	rep.Elapsed = m.Now()
	rep.Traffic = m.Stats()
	if handoffs > 0 {
		rep.HandoffRatio = float64(switches) / float64(handoffs)
	}
	want := uint64(cfg.Threads * cfg.Iterations)
	for w := 0; w < cfg.CSLines; w++ {
		got := m.Peek(data + machine.Addr(w))
		if got != want {
			rep.LostUpdates += int(want - got)
		}
	}
	min, max := finish[0], finish[0]
	for _, f := range finish {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if min > 0 {
		rep.FinishSpreadPct = 100 * float64(max-min) / float64(min)
	}
	return rep
}

// Sweep runs Check across several seeds and machine shapes, returning
// the first failing report (or the last passing one). RH is restricted
// to two-node shapes by construction.
func Sweep(lockName string, seeds int) (Report, error) {
	shapes := []struct{ nodes, cpus int }{
		{1, 8}, {2, 4}, {2, 8}, {4, 2},
	}
	var last Report
	for s := 0; s < seeds; s++ {
		for _, sh := range shapes {
			if lockName == "RH" && sh.nodes > 2 {
				continue
			}
			cfg := DefaultConfig(uint64(s + 1))
			cfg.Machine.Nodes = sh.nodes
			cfg.Machine.CPUsPerNode = sh.cpus
			cfg.Threads = sh.nodes * sh.cpus
			if cfg.Threads > 8 {
				cfg.Threads = 8
			}
			cfg.Iterations = 40
			rep := Check(lockName, cfg)
			if err := rep.Err(); err != nil {
				return rep, fmt.Errorf("%w (shape %dx%d seed %d)", err, sh.nodes, sh.cpus, s+1)
			}
			last = rep
		}
	}
	return last, nil
}
