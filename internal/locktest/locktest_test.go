package locktest

import (
	"strings"
	"testing"

	"repro/internal/simlock"
)

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig(1)
	if cfg.Threads < 2 || cfg.Iterations < 1 || cfg.CSLines < 1 {
		t.Fatalf("default config degenerate: %+v", cfg)
	}
}

// TestAllAlgorithmsConform sweeps the full registry through the
// conformance harness.
func TestAllAlgorithmsConform(t *testing.T) {
	for _, name := range simlock.AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			rep, err := Sweep(name, 2)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Acquisitions == 0 {
				t.Fatal("sweep did nothing")
			}
		})
	}
}

func TestCheckReportFields(t *testing.T) {
	rep := Check("HBO_GT_SD", DefaultConfig(3))
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Acquisitions != 8*100 {
		t.Fatalf("acquisitions = %d", rep.Acquisitions)
	}
	for tid, n := range rep.PerThread {
		if n != 100 {
			t.Fatalf("thread %d acquired %d times", tid, n)
		}
	}
	if rep.HandoffRatio < 0 || rep.HandoffRatio > 1 {
		t.Fatalf("handoff ratio %v", rep.HandoffRatio)
	}
	if rep.Traffic.TotalLocal() == 0 {
		t.Fatal("no traffic recorded")
	}
	if rep.FinishSpreadPct < 0 {
		t.Fatalf("spread %v", rep.FinishSpreadPct)
	}
}

func TestReportErrDescribesFailure(t *testing.T) {
	bad := Report{Lock: "X", Violations: 2, Acquisitions: 10}
	err := bad.Err()
	if err == nil || !strings.Contains(err.Error(), "2 violations") {
		t.Fatalf("err = %v", err)
	}
	good := Report{Lock: "X", Acquisitions: 1, Elapsed: 1}
	if good.Err() != nil {
		t.Fatal("good report reported error")
	}
}

func TestCheckValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for zero threads")
		}
	}()
	cfg := DefaultConfig(1)
	cfg.Threads = 0
	Check("TATAS", cfg)
}
