package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/stats"
)

// quickReport runs the JSON-report path at test scale.
func quickReport() *Report {
	return MicroReport(Options{Quick: true, Threads: 8}, 11)
}

func TestMicroReportShape(t *testing.T) {
	rep := quickReport()
	if rep.Schema != ReportSchema || rep.Tool != "hbobench" || rep.Seed != 11 {
		t.Fatalf("header = %+v", rep)
	}
	if rep.Machine.Nodes != 2 || rep.Machine.CPUsPerNode != 16 {
		t.Fatalf("machine = %+v", rep.Machine)
	}
	if len(rep.Locks) != 8 {
		t.Fatalf("%d locks reported, want the paper's 8", len(rep.Locks))
	}
	for _, lr := range rep.Locks {
		if lr.Acquisitions == 0 {
			t.Errorf("%s: no acquisitions", lr.Lock)
		}
		if lr.Wait.Count == 0 || lr.Wait.P50NS > lr.Wait.P90NS || lr.Wait.P90NS > lr.Wait.P99NS ||
			lr.Wait.P99NS > lr.Wait.MaxNS {
			t.Errorf("%s: wait quantiles not ordered: %+v", lr.Lock, lr.Wait)
		}
		if lr.Traffic.LocalTotal == 0 || len(lr.Traffic.LocalPerNode) != 2 {
			t.Errorf("%s: traffic = %+v", lr.Lock, lr.Traffic)
		}
		if len(lr.HotLines) == 0 {
			t.Errorf("%s: no hot-line attribution", lr.Lock)
		}
		// The by-label rollup must split lock-line from data-line
		// traffic, and account for every aggregate transaction.
		var lockTraffic, labelLocal, labelGlobal uint64
		for _, lt := range lr.TrafficByLabel {
			if lt.Label == "lock" {
				lockTraffic = lt.Local + lt.Global
			}
			labelLocal += lt.Local
			labelGlobal += lt.Global
		}
		if lockTraffic == 0 {
			t.Errorf("%s: no 'lock' label in %+v", lr.Lock, lr.TrafficByLabel)
		}
		if labelLocal != lr.Traffic.LocalTotal || labelGlobal != lr.Traffic.Global {
			t.Errorf("%s: by-label sums %d/%d != aggregate %d/%d",
				lr.Lock, labelLocal, labelGlobal, lr.Traffic.LocalTotal, lr.Traffic.Global)
		}
		if lr.IterationTimeNS <= 0 || lr.TotalTimeNS <= 0 {
			t.Errorf("%s: times %d/%d", lr.Lock, lr.IterationTimeNS, lr.TotalTimeNS)
		}
	}
}

// TestMicroReportDeterministic is the acceptance criterion: identical
// seeds must produce byte-identical JSON reports.
func TestMicroReportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := quickReport().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := quickReport().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different JSON reports")
	}
	// And the bytes decode back into the schema.
	var rt Report
	if err := json.Unmarshal(a.Bytes(), &rt); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if rt.Schema != ReportSchema {
		t.Fatalf("round-trip schema = %q", rt.Schema)
	}
}

func TestQuantilesOf(t *testing.T) {
	if q := QuantilesOf(nil); q.Count != 0 || q.MaxNS != 0 {
		t.Fatalf("nil histogram quantiles = %+v", q)
	}
	var h stats.Histogram
	for v := int64(1); v <= 100; v++ {
		h.Add(v)
	}
	q := QuantilesOf(&h)
	if q.Count != 100 || q.MaxNS != 100 {
		t.Fatalf("quantiles = %+v", q)
	}
	if q.P50NS > q.P90NS || q.P90NS > q.P99NS || q.P99NS > q.MaxNS {
		t.Fatalf("quantiles not ordered: %+v", q)
	}
}
