package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Seeds: 1, Scale: 800, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig3", "fig5", "table2", "table3", "table4",
		"table5", "table6", "fig6", "fig7", "fig8", "fig9", "fig10",
		"ext1", "ext2", "ext3", "ext4", "deg1", "deg2", "clu1",
		"cmp1", "cmp2", "cmp4", "cmp5"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], id)
		}
	}
	if _, ok := ByID("table1"); !ok {
		t.Fatal("ByID(table1) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) should not exist")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seeds() != 1 || o.scale() != 1 || o.threads(28) != 28 {
		t.Fatal("zero Options defaults wrong")
	}
	o = Options{Seeds: 5, Scale: 10, Threads: 4}
	if o.seeds() != 5 || o.scale() != 10 || o.threads(28) != 4 {
		t.Fatal("explicit Options ignored")
	}
}

// TestAllExperimentsProduceTables smoke-runs every driver in quick mode
// and checks the output shape.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(quick())
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				if tb.NumRows() == 0 {
					t.Fatalf("table %q has no rows", tb.Title)
				}
				out := tb.String()
				if !strings.Contains(out, "-") {
					t.Fatalf("table %q did not render:\n%s", tb.Title, out)
				}
			}
		})
	}
}

// TestTable1Shape checks the uncontested table reproduces the paper's
// ordering: HBO's remote cost below the queue locks', RH's remote cost
// the highest.
func TestTable1Shape(t *testing.T) {
	tb := Table1(quick())[0]
	csv := tb.CSV()
	remote := map[string]float64{}
	for _, line := range strings.Split(csv, "\n")[1:] {
		if line == "" {
			continue
		}
		f := strings.Split(line, ",")
		v, err := strconv.ParseFloat(strings.TrimSuffix(f[3], " ns"), 64)
		if err != nil {
			t.Fatalf("bad cell %q: %v", f[3], err)
		}
		remote[f[0]] = v
	}
	if !(remote["HBO"] < remote["CLH"]) {
		t.Errorf("HBO remote %.0f not below CLH %.0f", remote["HBO"], remote["CLH"])
	}
	for _, name := range []string{"TATAS", "MCS", "CLH", "HBO", "HBO_GT", "HBO_GT_SD"} {
		if remote["RH"] <= remote[name] {
			t.Errorf("RH remote %.0f not the highest (vs %s %.0f)", remote["RH"], name, remote[name])
		}
	}
}

// TestFig9ShowsSensitivity: iteration time must vary across the cap
// sweep (a flat line would mean the knob is disconnected).
func TestFig9ShowsSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	tb := Fig9(quick())[0]
	vals := map[string]bool{}
	for _, line := range strings.Split(tb.CSV(), "\n")[1:] {
		if line == "" {
			continue
		}
		vals[strings.Split(line, ",")[1]] = true
	}
	if len(vals) < 2 {
		t.Fatalf("REMOTE_BACKOFF_CAP sweep produced constant results: %v", vals)
	}
}
