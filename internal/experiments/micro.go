package experiments

import (
	"fmt"

	"repro/internal/microbench"
	"repro/internal/simlock"
	"repro/internal/stats"
)

// Table1 measures uncontested acquire-release latency for the three
// previous-owner scenarios.
func Table1(o Options) []*stats.Table {
	rounds := 5
	if o.Quick {
		rounds = 2
	}
	names := lockNames()
	scs := microbench.Scenarios()
	cells := make([]float64, len(names)*len(scs))
	o.parfor(len(cells), func(i int) {
		name, sc := names[i/len(scs)], scs[i%len(scs)]
		cells[i] = float64(microbench.Uncontested(wildfire(1), name, sc, rounds))
	})
	t := stats.NewTable(
		"Table 1: uncontested acquire-release latency",
		"Lock Type", "Same Processor", "Same Node", "Remote Node")
	for ni, name := range names {
		row := []string{name}
		for si := range scs {
			row = append(row, fmtNS(cells[ni*len(scs)+si]))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// fig3Procs returns the processor counts swept in Figure 3.
func fig3Procs(o Options) []int {
	if o.Quick {
		return []int{4, 12, 20, 28}
	}
	ps := []int{2}
	for p := 4; p <= 28; p += 4 {
		ps = append(ps, p)
	}
	return ps
}

// Fig3 runs the traditional microbenchmark across processor counts,
// reporting iteration time (left diagram) and node-handoff ratio (right
// diagram).
func Fig3(o Options) []*stats.Table {
	iters := 150
	if o.Quick {
		iters = 40
	}
	procs := fig3Procs(o)
	names := lockNames()
	type cell struct{ time, hand float64 }
	cells := make([]cell, len(procs)*len(names))
	o.parfor(len(cells), func(i int) {
		p, name := procs[i/len(names)], names[i%len(names)]
		res := microbench.Traditional(microbench.TraditionalConfig{
			Machine:    wildfire(uint64(p)),
			Lock:       name,
			Threads:    p,
			Iterations: iters,
			Tuning:     simlock.DefaultTuning(),
		})
		cells[i] = cell{float64(res.IterationTime), res.HandoffRatio}
	})
	cols := append([]string{"Processors"}, names...)
	tTime := stats.NewTable("Figure 3 (left): iteration time, µs", cols...)
	tHand := stats.NewTable("Figure 3 (right): node handoff ratio", cols...)
	for pi, p := range procs {
		timeRow := []string{fmt.Sprint(p)}
		handRow := []string{fmt.Sprint(p)}
		for ni := range names {
			c := cells[pi*len(names)+ni]
			timeRow = append(timeRow, stats.F(c.time/1000, 2))
			handRow = append(handRow, stats.F(c.hand, 3))
		}
		tTime.AddRow(timeRow...)
		tHand.AddRow(handRow...)
	}
	return []*stats.Table{tTime, tHand}
}

// newBenchDefaults returns the new microbenchmark's fixed parameters.
func newBenchDefaults(o Options) (threads, iters, private int) {
	threads = o.threads(28)
	iters = 30
	if o.Quick {
		iters = 10
	}
	private = 4000
	return
}

// fig5Work returns the critical-work sweep of Figure 5.
func fig5Work(o Options) []int {
	if o.Quick {
		return []int{0, 1000, 2000}
	}
	return []int{0, 250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2250, 2500}
}

// Fig5 runs the new microbenchmark against critical-work size.
func Fig5(o Options) []*stats.Table {
	threads, iters, private := newBenchDefaults(o)
	works := fig5Work(o)
	names := lockNames()
	type cell struct{ time, hand float64 }
	cells := make([]cell, len(works)*len(names))
	o.parfor(len(cells), func(i int) {
		cw, name := works[i/len(names)], names[i%len(names)]
		res := microbench.NewBench(microbench.NewBenchConfig{
			Machine:      wildfire(uint64(cw) + 7),
			Lock:         name,
			Threads:      threads,
			Iterations:   iters,
			CriticalWork: cw,
			PrivateWork:  private,
			Tuning:       simlock.DefaultTuning(),
		})
		cells[i] = cell{float64(res.IterationTime), res.HandoffRatio}
	})
	cols := append([]string{"CriticalWork"}, names...)
	tTime := stats.NewTable(
		fmt.Sprintf("Figure 5 (left): iteration time, µs (%d processors)", threads), cols...)
	tHand := stats.NewTable("Figure 5 (right): node handoff ratio", cols...)
	for wi, cw := range works {
		timeRow := []string{fmt.Sprint(cw)}
		handRow := []string{fmt.Sprint(cw)}
		for ni := range names {
			c := cells[wi*len(names)+ni]
			timeRow = append(timeRow, stats.F(c.time/1000, 2))
			handRow = append(handRow, stats.F(c.hand, 3))
		}
		tTime.AddRow(timeRow...)
		tHand.AddRow(handRow...)
	}
	return []*stats.Table{tTime, tHand}
}

// Table2 reports local/global traffic for the new microbenchmark at
// critical work 1500, normalized to TATAS_EXP.
func Table2(o Options) []*stats.Table {
	threads, iters, private := newBenchDefaults(o)
	type traffic struct{ local, global float64 }
	names := lockNames()
	res := make([]traffic, len(names))
	o.parfor(len(names), func(i int) {
		r := microbench.NewBench(microbench.NewBenchConfig{
			Machine:      wildfire(11),
			Lock:         names[i],
			Threads:      threads,
			Iterations:   iters,
			CriticalWork: 1500,
			PrivateWork:  private,
			Tuning:       simlock.DefaultTuning(),
		})
		res[i] = traffic{
			local:  float64(r.Traffic.TotalLocal()),
			global: float64(r.Traffic.Global),
		}
	})
	var base traffic
	for i, name := range names {
		if name == "TATAS_EXP" {
			base = res[i]
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("Table 2: normalized traffic, critical work 1500, %d processors "+
			"(TATAS_EXP absolute: %.2fM local, %.2fM global)",
			threads, base.local/1e6, base.global/1e6),
		"Lock Type", "Local Transactions", "Global Transactions")
	for i, name := range names {
		t.AddRow(name,
			stats.F(res[i].local/base.local, 2),
			stats.F(res[i].global/base.global, 2))
	}
	return []*stats.Table{t}
}

// Fig8 measures per-thread completion-time spread on the new
// microbenchmark (the paper's fairness study).
func Fig8(o Options) []*stats.Table {
	threads, iters, private := newBenchDefaults(o)
	if !o.Quick {
		iters *= 2 // fairness needs enough acquisitions per thread
	}
	names := lockNames()
	spreads := make([]float64, len(names))
	o.parfor(len(names), func(i int) {
		r := microbench.NewBench(microbench.NewBenchConfig{
			Machine:      wildfire(13),
			Lock:         names[i],
			Threads:      threads,
			Iterations:   iters,
			CriticalWork: 1500,
			PrivateWork:  private,
			Tuning:       simlock.DefaultTuning(),
		})
		spreads[i] = r.FinishSpreadPercent()
	})
	t := stats.NewTable(
		fmt.Sprintf("Figure 8: fairness — completion-time spread, %%, %d processors", threads),
		"Lock Type", "First-to-last spread %")
	for i, name := range names {
		t.AddRow(name, stats.F(spreads[i], 1))
	}
	return []*stats.Table{t}
}
