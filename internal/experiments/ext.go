package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/sim"
	"repro/internal/simlock"
	"repro/internal/stats"
)

// Ext1 runs the new microbenchmark over all thirteen algorithms — the
// paper's eight plus this library's extensions — at three contention
// levels, extending Figure 5 with the baselines and follow-on designs.
func Ext1(o Options) []*stats.Table {
	threads, iters, private := newBenchDefaults(o)
	works := []int{250, 1000, 2000}
	if o.Quick {
		works = []int{1000}
	}
	cols := []string{"Lock"}
	for _, cw := range works {
		cols = append(cols, fmt.Sprintf("cw=%d µs/iter", cw), fmt.Sprintf("cw=%d handoff", cw))
	}
	t := stats.NewTable(
		fmt.Sprintf("Extension 1: all algorithms on the new microbenchmark (%d processors)", threads),
		cols...)
	for _, name := range simlock.AllNames() {
		row := []string{name}
		for _, cw := range works {
			r := microbench.NewBench(microbench.NewBenchConfig{
				Machine:      wildfire(uint64(cw) + 23),
				Lock:         name,
				Threads:      threads,
				Iterations:   iters,
				CriticalWork: cw,
				PrivateWork:  private,
				Tuning:       simlock.DefaultTuning(),
			})
			row = append(row,
				stats.F(float64(r.IterationTime)/1000, 2),
				stats.F(r.HandoffRatio, 3))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// Ext2 contends a lock on the hierarchical CMP-server machine (8 nodes
// in clusters of 2, three latency levels) and reports time and
// cross-cluster handoffs — the hierarchical NUCA future of the paper's
// section 2, with HBO_HIER realizing section 4.1's sketch.
func Ext2(o Options) []*stats.Table {
	iters := 150
	if o.Quick {
		iters = 40
	}
	locks := []string{"TATAS_EXP", "MCS", "TICKET", "HBO", "HBO_GT_SD", "HBO_HIER", "COHORT"}
	t := stats.NewTable(
		"Extension 2: hierarchical CMP server (8 nodes x 4 CPUs, clusters of 2)",
		"Lock", "µs/acquisition", "Node handoff", "Cluster handoff", "Global txns")
	for _, name := range locks {
		cfg := machine.CMPServer()
		cfg.Seed = 29
		m := machine.New(cfg)
		threads := 16
		cpus := make([]int, threads)
		for i := range cpus {
			cpus[i] = (i * 2) % cfg.TotalCPUs()
		}
		l := simlock.New(name, m, 0, cpus, simlock.DefaultTuning())
		shared := m.Alloc(0, 2)
		last, hand, nodeSw, clusterSw := -1, 0, 0, 0
		for tid := 0; tid < threads; tid++ {
			tid := tid
			m.Spawn(cpus[tid], func(p *machine.Proc) {
				rng := sim.NewRNG(uint64(tid) + 41)
				for i := 0; i < iters; i++ {
					l.Acquire(p, tid)
					if last >= 0 {
						hand++
						if last != p.Node() {
							nodeSw++
						}
						if m.ClusterOf(last) != m.ClusterOf(p.Node()) {
							clusterSw++
						}
					}
					last = p.Node()
					p.Store(shared, p.Load(shared)+1)
					p.Store(shared+1, p.Load(shared+1)+1)
					l.Release(p, tid)
					p.Work(rng.Timen(3000) + 1000)
				}
			})
		}
		m.Run()
		t.AddRow(name,
			stats.F(float64(m.Now())/float64(threads*iters)/1000, 2),
			stats.F(float64(nodeSw)/float64(hand), 3),
			stats.F(float64(clusterSw)/float64(hand), 3),
			fmt.Sprint(m.Stats().Global))
	}
	return []*stats.Table{t}
}

// Ext3 studies data layout: compacting the guarded data onto a single
// cache line (Config.WordsPerLine) instead of spreading it over one
// line per word — the software-feasible half of QOLB's collocation
// story (paper section 3; full lock+data collocation needs control of
// the lock's own line, demonstrated with a raw TAS lock in
// internal/machine's TestCollocatedLockHandover).
func Ext3(o Options) []*stats.Table {
	iters := 120
	if o.Quick {
		iters = 40
	}
	const dataWords = 3
	run := func(name string, collocate bool) sim.Time {
		cfg := wildfire(31)
		if collocate {
			cfg.WordsPerLine = 1 + dataWords
		}
		m := machine.New(cfg)
		threads := o.threads(16)
		cpus := make([]int, threads)
		next := make([]int, cfg.Nodes)
		for i := range cpus {
			n := i % cfg.Nodes
			cpus[i] = n*cfg.CPUsPerNode + next[n]
			next[n]++
		}
		// Allocations are line-aligned, so with WordsPerLine = 1+dataWords
		// the guarded words share one line; with the default they spread
		// over dataWords lines.
		l := simlock.New(name, m, 0, cpus, simlock.DefaultTuning())
		data := m.Alloc(0, dataWords)
		for tid := 0; tid < threads; tid++ {
			tid := tid
			m.Spawn(cpus[tid], func(p *machine.Proc) {
				rng := sim.NewRNG(uint64(tid) + 61)
				for i := 0; i < iters; i++ {
					l.Acquire(p, tid)
					for w := 0; w < dataWords; w++ {
						a := data + machine.Addr(w)
						p.Store(a, p.Load(a)+1)
					}
					l.Release(p, tid)
					p.Work(rng.Timen(4000) + 1000)
				}
			})
		}
		m.Run()
		return m.Now() / sim.Time(threads*iters)
	}
	t := stats.NewTable(
		"Extension 3: compacting guarded data onto one line (µs/acquisition)",
		"Lock", "Spread", "Compacted", "Speedup")
	for _, name := range []string{"TATAS", "TATAS_EXP", "MCS", "HBO", "HBO_GT_SD"} {
		apart := run(name, false)
		together := run(name, true)
		t.AddRow(name,
			stats.F(float64(apart)/1000, 2),
			stats.F(float64(together)/1000, 2),
			stats.F(float64(apart)/float64(together), 2))
	}
	return []*stats.Table{t}
}
