package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/sim"
	"repro/internal/simlock"
	"repro/internal/stats"
)

// Ext1 runs the new microbenchmark over every registered algorithm —
// the paper's eight plus this library's extensions — at three
// contention levels, extending Figure 5 with the baselines and
// follow-on designs.
func Ext1(o Options) []*stats.Table {
	threads, iters, private := newBenchDefaults(o)
	works := []int{250, 1000, 2000}
	if o.Quick {
		works = []int{1000}
	}
	names := simlock.AllNames()
	type cell struct{ time, hand float64 }
	cells := make([]cell, len(names)*len(works))
	o.parfor(len(cells), func(i int) {
		name, cw := names[i/len(works)], works[i%len(works)]
		r := microbench.NewBench(microbench.NewBenchConfig{
			Machine:      wildfire(uint64(cw) + 23),
			Lock:         name,
			Threads:      threads,
			Iterations:   iters,
			CriticalWork: cw,
			PrivateWork:  private,
			Tuning:       simlock.DefaultTuning(),
		})
		cells[i] = cell{float64(r.IterationTime), r.HandoffRatio}
	})
	cols := []string{"Lock"}
	for _, cw := range works {
		cols = append(cols, fmt.Sprintf("cw=%d µs/iter", cw), fmt.Sprintf("cw=%d handoff", cw))
	}
	t := stats.NewTable(
		fmt.Sprintf("Extension 1: all algorithms on the new microbenchmark (%d processors)", threads),
		cols...)
	for ni, name := range names {
		row := []string{name}
		for wi := range works {
			c := cells[ni*len(works)+wi]
			row = append(row, stats.F(c.time/1000, 2), stats.F(c.hand, 3))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// ext2Run contends one lock on the hierarchical CMP-server machine and
// returns its Extension 2 row values.
func ext2Run(name string, iters int) (usPerAcq, nodeRatio, clusterRatio float64, global uint64) {
	cfg := machine.CMPServer()
	cfg.Seed = 29
	m := machine.New(cfg)
	threads := 16
	cpus := make([]int, threads)
	for i := range cpus {
		cpus[i] = (i * 2) % cfg.TotalCPUs()
	}
	l := simlock.New(name, m, 0, cpus, simlock.DefaultTuning())
	shared := m.Alloc(0, 2)
	last, hand, nodeSw, clusterSw := -1, 0, 0, 0
	for tid := 0; tid < threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(uint64(tid) + 41)
			for i := 0; i < iters; i++ {
				l.Acquire(p, tid)
				if last >= 0 {
					hand++
					if last != p.Node() {
						nodeSw++
					}
					if m.ClusterOf(last) != m.ClusterOf(p.Node()) {
						clusterSw++
					}
				}
				last = p.Node()
				p.Store(shared, p.Load(shared)+1)
				p.Store(shared+1, p.Load(shared+1)+1)
				l.Release(p, tid)
				p.Work(rng.Timen(3000) + 1000)
			}
		})
	}
	m.Run()
	return float64(m.Now()) / float64(threads*iters) / 1000,
		float64(nodeSw) / float64(hand),
		float64(clusterSw) / float64(hand),
		m.Stats().Global
}

// Ext2 contends a lock on the hierarchical CMP-server machine (8 nodes
// in clusters of 2, three latency levels) and reports time and
// cross-cluster handoffs — the hierarchical NUCA future of the paper's
// section 2, with HBO_HIER realizing section 4.1's sketch.
func Ext2(o Options) []*stats.Table {
	iters := 150
	if o.Quick {
		iters = 40
	}
	locks := []string{"TATAS_EXP", "MCS", "TICKET", "HBO", "HBO_GT_SD", "HBO_HIER", "COHORT"}
	type cell struct {
		us, node, cluster float64
		global            uint64
	}
	cells := make([]cell, len(locks))
	o.parfor(len(locks), func(i int) {
		us, n, c, g := ext2Run(locks[i], iters)
		cells[i] = cell{us, n, c, g}
	})
	t := stats.NewTable(
		"Extension 2: hierarchical CMP server (8 nodes x 4 CPUs, clusters of 2)",
		"Lock", "µs/acquisition", "Node handoff", "Cluster handoff", "Global txns")
	for i, name := range locks {
		t.AddRow(name,
			stats.F(cells[i].us, 2),
			stats.F(cells[i].node, 3),
			stats.F(cells[i].cluster, 3),
			fmt.Sprint(cells[i].global))
	}
	return []*stats.Table{t}
}

// ext3Run measures one Extension 3 configuration: µs/acquisition with
// the guarded words spread over one line each, or compacted onto one.
func ext3Run(o Options, name string, collocate bool, iters int) sim.Time {
	const dataWords = 3
	cfg := wildfire(31)
	if collocate {
		cfg.WordsPerLine = 1 + dataWords
	}
	m := machine.New(cfg)
	threads := o.threads(16)
	cpus := make([]int, threads)
	next := make([]int, cfg.Nodes)
	for i := range cpus {
		n := i % cfg.Nodes
		cpus[i] = n*cfg.CPUsPerNode + next[n]
		next[n]++
	}
	// Allocations are line-aligned, so with WordsPerLine = 1+dataWords
	// the guarded words share one line; with the default they spread
	// over dataWords lines.
	l := simlock.New(name, m, 0, cpus, simlock.DefaultTuning())
	data := m.Alloc(0, dataWords)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(uint64(tid) + 61)
			for i := 0; i < iters; i++ {
				l.Acquire(p, tid)
				for w := 0; w < dataWords; w++ {
					a := data + machine.Addr(w)
					p.Store(a, p.Load(a)+1)
				}
				l.Release(p, tid)
				p.Work(rng.Timen(4000) + 1000)
			}
		})
	}
	m.Run()
	return m.Now() / sim.Time(threads*iters)
}

// Ext3 studies data layout: compacting the guarded data onto a single
// cache line (Config.WordsPerLine) instead of spreading it over one
// line per word — the software-feasible half of QOLB's collocation
// story (paper section 3; full lock+data collocation needs control of
// the lock's own line, demonstrated with a raw TAS lock in
// internal/machine's TestCollocatedLockHandover).
func Ext3(o Options) []*stats.Table {
	iters := 120
	if o.Quick {
		iters = 40
	}
	names := []string{"TATAS", "TATAS_EXP", "MCS", "HBO", "HBO_GT_SD"}
	cells := make([]sim.Time, 2*len(names)) // [2*i] spread, [2*i+1] compacted
	o.parfor(len(cells), func(i int) {
		cells[i] = ext3Run(o, names[i/2], i%2 == 1, iters)
	})
	t := stats.NewTable(
		"Extension 3: compacting guarded data onto one line (µs/acquisition)",
		"Lock", "Spread", "Compacted", "Speedup")
	for i, name := range names {
		apart, together := cells[2*i], cells[2*i+1]
		t.AddRow(name,
			stats.F(float64(apart)/1000, 2),
			stats.F(float64(together)/1000, 2),
			stats.F(float64(apart)/float64(together), 2))
	}
	return []*stats.Table{t}
}
