package experiments

import (
	"fmt"

	"repro/internal/microbench"
	"repro/internal/report"
	"repro/internal/simlock"
	"repro/internal/stats"
	"repro/internal/trace"
)

// modernLocks is the HBO-vs-modern comparison set: the paper's two
// strongest baselines (TATAS_EXP, MCS), its HBO variants, and the two
// follow-on NUMA queue locks this library expresses as lockspecs —
// CNA (Dice & Kogan, EuroSys 2019) and HMCS-T (Chabbi et al.). The
// sweep asks the question the paper's future-work section left open:
// does explicit queueing with NUMA-aware handoff beat HBO's
// backoff-only locality on the same machine?
func modernLocks() []string {
	return []string{"TATAS_EXP", "MCS", "HBO", "HBO_GT_SD", "CNA", "HMCS_T"}
}

// Ext4 races the HBO family against the modern NUMA queue locks on the
// new microbenchmark across processor counts, reporting iteration
// time, node-handoff ratio and global coherence transactions per
// acquisition — the three axes the NUMA-lock literature compares on.
func Ext4(o Options) []*stats.Table {
	iters := 30
	if o.Quick {
		iters = 10
	}
	procs := fig3Procs(o)
	names := modernLocks()
	type cell struct {
		time, hand, global float64
	}
	cells := make([]cell, len(procs)*len(names))
	o.parfor(len(cells), func(i int) {
		p, name := procs[i/len(names)], names[i%len(names)]
		res := microbench.NewBench(microbench.NewBenchConfig{
			Machine:      wildfire(uint64(p) + 43),
			Lock:         name,
			Threads:      p,
			Iterations:   iters,
			CriticalWork: 1500,
			PrivateWork:  4000,
			Tuning:       simlock.DefaultTuning(),
		})
		cells[i] = cell{
			time:   float64(res.IterationTime),
			hand:   res.HandoffRatio,
			global: float64(res.Traffic.Global) / float64(p*iters),
		}
	})
	cols := append([]string{"Processors"}, names...)
	tTime := stats.NewTable("Extension 4 (a): HBO vs modern NUMA locks — iteration time, µs", cols...)
	tHand := stats.NewTable("Extension 4 (b): HBO vs modern NUMA locks — node handoff ratio", cols...)
	tGlob := stats.NewTable("Extension 4 (c): HBO vs modern NUMA locks — global txns per acquisition", cols...)
	for pi, p := range procs {
		timeRow := []string{fmt.Sprint(p)}
		handRow := []string{fmt.Sprint(p)}
		globRow := []string{fmt.Sprint(p)}
		for ni := range names {
			c := cells[pi*len(names)+ni]
			timeRow = append(timeRow, stats.F(c.time/1000, 2))
			handRow = append(handRow, stats.F(c.hand, 3))
			globRow = append(globRow, stats.F(c.global, 2))
		}
		tTime.AddRow(timeRow...)
		tHand.AddRow(handRow...)
		tGlob.AddRow(globRow...)
	}
	return []*stats.Table{tTime, tHand, tGlob}
}

// ModernReport is MicroReport restricted to the HBO-vs-modern
// comparison set: one hbo-run-report/v1 run per lock at the Table 2
// operating point, with wait/hold quantiles, handoff matrices and
// per-line traffic. Deterministic for a fixed seed; the recorded copy
// lives in results/modern-compare.json.
func ModernReport(o Options, seed uint64) *Report {
	threads, iters, private := newBenchDefaults(o)
	cfg := wildfire(seed)
	rep := &Report{
		Schema:     ReportSchema,
		Tool:       "hbobench",
		Experiment: "modern",
		Seed:       seed,
		Host:       report.Host(),
		Machine: MachineSummary{
			Nodes:       cfg.Nodes,
			CPUsPerNode: cfg.CPUsPerNode,
			Preset:      "WildFire",
		},
		Params: map[string]int{
			"threads":       threads,
			"iterations":    iters,
			"critical_work": 1500,
			"private_work":  private,
		},
	}
	names := modernLocks()
	rep.Locks = make([]LockReport, len(names))
	o.parfor(len(names), func(i int) {
		an := trace.NewAnalyzer()
		res := microbench.NewBench(microbench.NewBenchConfig{
			Machine:      cfg,
			Lock:         names[i],
			Threads:      threads,
			Iterations:   iters,
			CriticalWork: 1500,
			PrivateWork:  private,
			Tuning:       simlock.DefaultTuning(),
			WrapLock:     func(l simlock.Lock) simlock.Lock { return trace.Wrap(l, an) },
		})
		st := an.Aggregate()
		lr := BuildLockReport(names[i], st, threads, res.Traffic, res.Lines)
		lr.IterationTimeNS = int64(res.IterationTime)
		lr.TotalTimeNS = int64(res.TotalTime)
		rep.Locks[i] = lr
	})
	return rep
}
