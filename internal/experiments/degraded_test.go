package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simlock"
)

// TestDegradedReportByteDeterministic is the acceptance criterion for
// the robustness layer: the same (faultSeed, schedule, intensity)
// coordinates reproduce the degraded hbo-run-report/v1 byte for byte,
// at any worker-pool width.
func TestDegradedReportByteDeterministic(t *testing.T) {
	render := func(parallel int) []byte {
		rep, err := DegradedReport(Options{Quick: true, Parallel: parallel}, 42, "all", 0.8)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b, wide := render(1), render(1), render(4)
	if !bytes.Equal(a, b) {
		t.Fatal("same (seed, schedule, intensity) produced different report bytes")
	}
	if !bytes.Equal(a, wide) {
		t.Fatal("report bytes depend on worker-pool width")
	}
	s := string(a)
	for _, want := range []string{
		`"experiment": "degraded"`,
		`"schedule": "all"`,
		`"intensity": 0.8`,
		`"fault_stats"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %s", want)
		}
	}
	// The timed locks must have exercised the abort path under the
	// composite schedule; the report only serializes nonzero aborts.
	if !strings.Contains(s, `"aborts"`) {
		t.Error("no lock reported aborts under the composite fault schedule")
	}
}

// TestDegradedReportRejectsBadCoordinates: unknown schedules and
// out-of-range intensities surface as errors, not bad reports.
func TestDegradedReportRejectsBadCoordinates(t *testing.T) {
	if _, err := DegradedReport(Options{Quick: true}, 1, "meteor", 0.5); err == nil {
		t.Error("unknown schedule accepted")
	}
	if _, err := DegradedReport(Options{Quick: true}, 1, "all", -1); err == nil {
		t.Error("negative intensity accepted")
	}
}

// TestDegExperimentsRegistered: the degradation drivers are reachable
// through the experiment registry and produce well-formed tables.
func TestDegExperimentsRegistered(t *testing.T) {
	if testing.Short() {
		t.Skip("degradation sweeps are slow; run without -short")
	}
	nLocks := len(simlock.Names())
	// deg2 sweeps past two nodes and must drop the two-node-only RH lock.
	wantCols := map[string]int{"deg1": nLocks + 1, "deg2": nLocks}
	for id, wantTables := range map[string]int{"deg1": 3, "deg2": 1} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		tables := e.Run(Options{Quick: true, Parallel: 4, Seeds: 1, Scale: 100})
		if len(tables) != wantTables {
			t.Fatalf("%s: got %d tables, want %d", id, len(tables), wantTables)
		}
		for _, tb := range tables {
			if len(tb.Columns) != wantCols[id] {
				t.Errorf("%s table %q: %d cols, want %d", id, tb.Title, len(tb.Columns), wantCols[id])
			}
			if tb.NumRows() == 0 {
				t.Errorf("%s table %q has no rows", id, tb.Title)
			}
		}
	}
}
