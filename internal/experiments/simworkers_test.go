package experiments

import (
	"bytes"
	"fmt"
	"testing"
)

// simWorkerWidths is the matrix every byte-identity check sweeps.
var simWorkerWidths = []int{1, 2, 4, 8}

// TestSimWorkersByteIdentityMatrix is the acceptance matrix for the
// parallel simulation tier: every lock in internal/simlock (MicroReport
// and DegradedReport both sweep lockNames()) × sim-worker widths
// {1, 2, 4, 8} × a healthy and a fault-injected machine must produce
// byte-identical hbo-run-report/v1 JSON; the cluster experiment's
// rendered tables must match too. Parallel is raised alongside
// SimWorkers so the product cap path is exercised as well.
func TestSimWorkersByteIdentityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("width matrix is not short")
	}
	render := func(w int) (micro, degraded, cluster []byte) {
		o := quick()
		o.SimWorkers = w
		o.Parallel = w
		var mb bytes.Buffer
		if err := MicroReport(o, 11).WriteJSON(&mb); err != nil {
			t.Fatal(err)
		}
		rep, err := DegradedReport(o, 11, "all", 0.75)
		if err != nil {
			t.Fatal(err)
		}
		var db bytes.Buffer
		if err := rep.WriteJSON(&db); err != nil {
			t.Fatal(err)
		}
		var cb bytes.Buffer
		for _, tbl := range Clu1(o) {
			fmt.Fprint(&cb, tbl.String())
		}
		return mb.Bytes(), db.Bytes(), cb.Bytes()
	}
	wantMicro, wantDeg, wantClu := render(simWorkerWidths[0])
	if len(wantClu) == 0 {
		t.Fatal("cluster experiment rendered nothing")
	}
	for _, w := range simWorkerWidths[1:] {
		micro, deg, clu := render(w)
		if !bytes.Equal(micro, wantMicro) {
			t.Errorf("sim-workers %d: healthy-machine report bytes diverge from width 1", w)
		}
		if !bytes.Equal(deg, wantDeg) {
			t.Errorf("sim-workers %d: degraded-machine report bytes diverge from width 1", w)
		}
		if !bytes.Equal(clu, wantClu) {
			t.Errorf("sim-workers %d: cluster tables diverge from width 1", w)
		}
	}
}

// TestSimWorkersCap pins the two-layer composition rule: the
// Parallel × SimWorkers product never exceeds GOMAXPROCS, and the
// clamp floors at one worker.
func TestSimWorkersCap(t *testing.T) {
	o := Options{Parallel: 1 << 20, SimWorkers: 1 << 20}
	if got := o.simWorkersFor(1 << 20); got != 1 {
		t.Fatalf("saturated pool should clamp sim workers to 1, got %d", got)
	}
	o = Options{Parallel: 1, SimWorkers: 2}
	if got := o.simWorkersFor(8); got < 1 || got > 2 {
		t.Fatalf("simWorkersFor out of range: %d", got)
	}
	o = Options{}
	if got := o.simWorkersFor(4); got != 1 {
		t.Fatalf("zero Options must default to 1 sim worker, got %d", got)
	}
}
