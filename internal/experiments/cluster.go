package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/stats"
)

// Cluster-scale study (beyond the paper): the HBO mechanism re-examined
// on machines with hundreds of nodes, simulated by the conservative
// PDES engine (machine.RunCluster on sim.ParEngine). Each cell is one
// big machine whose node partitions execute across SimWorkers host
// cores; Options.Parallel still fans the independent cells. This is the
// experiment family the sequential word-level machine cannot reach —
// its sharer bitmap caps at 64 CPUs — and the first consumer of the
// two-layer fan-out (Parallel × SimWorkers, product capped at
// GOMAXPROCS).

// clu1Nodes returns the node counts swept.
func clu1Nodes(o Options) []int {
	if o.Quick {
		return []int{16, 64}
	}
	return []int{16, 64, 256}
}

// clu1Config builds one cluster cell. The latency calibration is the
// WildFire tree with a far tier, so the PDES lookahead derives from the
// same constants as every other experiment.
func clu1Config(nodes int, policy machine.ClusterPolicy, o Options, seed uint64) machine.ClusterConfig {
	iters := 8
	if o.Quick {
		iters = 4
	}
	lat := machine.WildFireLatencies()
	lat.C2CFar = 3400
	lat.MemFar = 3000
	return machine.ClusterConfig{
		Nodes:       nodes,
		CPUsPerNode: 4,
		ClusterSize: 8,
		Lat:         lat,
		Policy:      policy,
		Iters:       iters,
		Think:       4000,
		Hold:        600,
		Base:        2,
		Cap:         256,
		RemoteCap:   4096,
		Seed:        seed,
	}
}

// Clu1 sweeps node count × backoff policy on the parallel-simulated
// cluster machine and reports throughput, interconnect traffic per
// acquire and node fairness — Table 2 and Figure 8 re-asked at
// datacenter scale.
func Clu1(o Options) []*stats.Table {
	nodeCounts := clu1Nodes(o)
	policies := []machine.ClusterPolicy{machine.ClusterTATASExp, machine.ClusterHBO}
	cells := make([]machine.ClusterResult, len(nodeCounts)*len(policies))
	workers := o.simWorkersFor(len(cells))
	o.parfor(len(cells), func(i int) {
		nodes, pol := nodeCounts[i/len(policies)], policies[i%len(policies)]
		cells[i] = machine.RunCluster(clu1Config(nodes, pol, o, 1), workers)
	})
	t := stats.NewTable(
		"Cluster 1: backoff policy at scale (PDES, one machine across cores)",
		"Nodes", "Policy", "Acquires", "Global/Acquire", "Fairness", "Sim Time")
	for i, r := range cells {
		nodes := nodeCounts[i/len(policies)]
		t.AddRow(
			fmt.Sprint(nodes),
			string(r.Policy),
			fmt.Sprint(r.Acquires),
			fmt.Sprintf("%.2f", r.GlobalPerAcquire()),
			fmt.Sprintf("%.3f", r.Fairness()),
			r.Elapsed.String(),
		)
	}
	return []*stats.Table{t}
}
