// Package experiments regenerates every table and figure of the paper's
// evaluation (section 5 and 6) from the simulation stack. Each driver
// returns stats.Tables whose rows/series match what the paper reports;
// EXPERIMENTS.md records measured-vs-paper for each.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/simlock"
	"repro/internal/stats"
)

// Options tune how much work the drivers do.
type Options struct {
	// Seeds is the number of repetitions used where the paper reports
	// variance (Tables 4 and 5). Minimum 1.
	Seeds int
	// Scale divides application work (see apps.Config.Scale).
	Scale int
	// Quick shrinks sweeps and iteration counts for tests and smoke
	// runs; shapes survive, absolute noise grows.
	Quick bool
	// Threads overrides the default 28-thread runs when positive.
	Threads int
	// Parallel is the worker-pool width used to fan independent
	// simulation cells across CPUs (0 or 1 = sequential). Cells merge
	// back in a fixed canonical order, so tables and JSON reports are
	// byte-identical for any width.
	Parallel int
	// SimWorkers is the intra-simulation PDES worker width: how many
	// host cores one partitioned simulation (the cluster-scale machine,
	// sim.ParEngine) may use. It composes with Parallel — Parallel fans
	// *across* cells, SimWorkers fans *inside* one — and the product is
	// capped at GOMAXPROCS (see simWorkersFor). Classic word-level
	// machine cells are single-partition and ignore it. Like Parallel,
	// any value produces byte-identical tables and JSON reports; only
	// wall-clock time changes.
	SimWorkers int
}

// DefaultOptions returns the settings used for the recorded results.
func DefaultOptions() Options {
	return Options{Seeds: 3, Scale: 100}
}

func (o Options) seeds() int {
	if o.Seeds < 1 {
		return 1
	}
	return o.Seeds
}

func (o Options) scale() int {
	if o.Scale < 1 {
		return 1
	}
	return o.Scale
}

func (o Options) threads(def int) int {
	if o.Threads > 0 {
		return o.Threads
	}
	return def
}

func (o Options) parallel() int {
	if o.Parallel < 1 {
		return 1
	}
	return o.Parallel
}

func (o Options) simWorkers() int {
	if o.SimWorkers < 1 {
		return 1
	}
	return o.SimWorkers
}

// simWorkersFor returns the PDES worker width one of `cells` concurrent
// simulations may use, capping the cell-level × intra-run product at
// GOMAXPROCS (par.Compose) so the two fan-out layers compose instead of
// oversubscribing the host. The cap only trims wall-clock concurrency:
// results are width-independent by the PDES determinism contract, so
// the host-dependent clamp never leaks into output bytes.
func (o Options) simWorkersFor(cells int) int {
	pool := o.parallel()
	if pool > cells && cells > 0 {
		pool = cells
	}
	_, inner := par.Compose(pool, o.simWorkers())
	return inner
}

// parfor fans fn(i) for i in [0, n) over the configured worker pool.
// Each call must write only to its own result slot so that assembly in
// index order reproduces the sequential output exactly.
func (o Options) parfor(n int, fn func(i int)) {
	par.ForEach(o.parallel(), n, fn)
}

// wildfire returns the standard experiment machine, seeded.
func wildfire(seed uint64) machine.Config {
	cfg := machine.WildFire()
	cfg.Seed = seed
	return cfg
}

// Experiment pairs an id with its driver.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) []*stats.Table
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Uncontested performance for a single acquire-release operation", Table1},
		{"fig3", "Traditional microbenchmark on a 2-node NUCA", Fig3},
		{"fig5", "New microbenchmark, 28-processor runs", Fig5},
		{"table2", "Normalized local and global traffic (new microbenchmark)", Table2},
		{"table3", "SPLASH-2 programs and lock statistics", Table3},
		{"table4", "Raytrace performance (1, 28, 30 CPUs)", Table4},
		{"table5", "Application performance, 28-processor runs", Table5},
		{"table6", "Normalized traffic for all locking algorithms", Table6},
		{"fig6", "Normalized speedup for 28-processor runs", Fig6},
		{"fig7", "Speedup for Raytrace", Fig7},
		{"fig8", "Fairness study", Fig8},
		{"fig9", "Sensitivity: REMOTE_BACKOFF_CAP", Fig9},
		{"fig10", "Sensitivity: GET_ANGRY_LIMIT", Fig10},
		{"ext1", "Extension: every registered algorithm on the new microbenchmark", Ext1},
		{"ext2", "Extension: hierarchical CMP-server machine", Ext2},
		{"ext3", "Extension: compacting guarded data onto one cache line", Ext3},
		{"ext4", "Extension: HBO vs modern NUMA locks (CNA, HMCS-T)", Ext4},
		{"deg1", "Degradation: fault-intensity sweep on the new microbenchmark", Deg1},
		{"deg2", "Degradation: node-count sweep under a fixed fault plan", Deg2},
		{"clu1", "Cluster scale: backoff policies on a parallel-simulated big machine", Clu1},
		{"cmp1", "Comparison: Table 1 measured vs paper", Cmp1},
		{"cmp2", "Comparison: Table 2 measured vs paper", Cmp2},
		{"cmp4", "Comparison: Table 4 measured vs paper", Cmp4},
		{"cmp5", "Comparison: Table 5 measured vs paper", Cmp5},
	}
}

// IDs lists the experiment ids in order.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// ByID returns the named experiment and whether it exists.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// lockNames is the paper's algorithm order.
func lockNames() []string { return simlock.Names() }

// fmtTime renders nanoseconds the way Table 1 does.
func fmtNS(ns float64) string { return fmt.Sprintf("%.0f ns", ns) }

// meanVar renders "mean (variance)" the way Tables 4 and 5 do.
func meanVar(xs []float64) string {
	s := stats.Summarize(xs)
	return fmt.Sprintf("%.2f (%.2f)", s.Mean, s.Variance)
}

// sortedKeys returns the sorted keys of a string-keyed map (stable table
// rendering for map-accumulated results).
func sortedKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
