package experiments

import (
	"bytes"
	"testing"
)

// TestParallelMatchesSequential runs every experiment with a sequential
// runner and an 8-wide worker pool and requires byte-identical rendered
// tables: parallelism must never change results, only wall-clock.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism sweep is not short")
	}
	seq := quick()
	par := quick()
	par.Parallel = 8
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			a := e.Run(seq)
			b := e.Run(par)
			if len(a) != len(b) {
				t.Fatalf("table count %d (sequential) vs %d (parallel)", len(a), len(b))
			}
			for i := range a {
				sa, sb := a[i].String(), b[i].String()
				if sa != sb {
					t.Errorf("table %d diverges under -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", i, sa, sb)
				}
			}
		})
	}
}

// TestMicroReportParallelByteIdentical is the JSON-report half of the
// determinism contract: hbo-run-report/v1 bytes must not depend on the
// worker-pool width.
func TestMicroReportParallelByteIdentical(t *testing.T) {
	seq := quick()
	par := quick()
	par.Parallel = 8
	var a, b bytes.Buffer
	if err := MicroReport(seq, 11).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := MicroReport(par, 11).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSON run reports differ between -parallel 1 and -parallel 8:\n%s\nvs\n%s", a.String(), b.String())
	}
}
