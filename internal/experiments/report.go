package experiments

import (
	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/report"
	"repro/internal/simlock"
	"repro/internal/stats"
	"repro/internal/trace"
)

// The hbo-run-report/v1 schema types live in the leaf package
// internal/report so that the live native observability stack
// (internal/obs) can emit the same format without importing the
// simulation drivers. The aliases below keep the experiments API (and
// its callers: hbobench, locktrace, degraded mode) source-compatible.
const ReportSchema = report.Schema

type (
	Quantiles      = report.Quantiles
	TrafficReport  = report.TrafficReport
	LabelTraffic   = report.LabelTraffic
	LockReport     = report.LockReport
	MachineSummary = report.MachineSummary
	HostReport     = report.HostReport
	FaultReport    = report.FaultReport
	Report         = report.Report
)

// QuantilesOf extracts report quantiles from a histogram.
func QuantilesOf(h *stats.Histogram) Quantiles { return report.QuantilesOf(h) }

// BuildLockReport assembles the per-lock report section from trace
// statistics and machine counters. threads sizes the dense per-thread
// acquisition vector; lines is the full per-line attribution, which is
// rolled up by label and capped to the hottest few for the report.
func BuildLockReport(name string, st trace.Stats, threads int,
	traffic machine.Stats, lines []machine.LineStats) LockReport {
	perThread := make([]int, threads)
	for tid, n := range st.PerThread {
		if tid >= 0 && tid < threads {
			perThread[tid] = n
		}
	}
	return LockReport{
		Lock:           name,
		Acquisitions:   st.Acquisitions,
		Wait:           QuantilesOf(st.WaitHist),
		Hold:           QuantilesOf(st.HoldHist),
		HandoffRatio:   st.HandoffRatio(),
		NodeMatrix:     st.NodeMatrix,
		PerThread:      perThread,
		Traffic:        report.TrafficOf(traffic),
		TrafficByLabel: report.AggregateByLabel(lines),
		HotLines:       report.HotLines(lines, reportHotLines),
	}
}

// reportHotLines caps per-line attribution in reports: the lock's own
// lines plus the hottest data lines tell the Tables 2/6 story without
// dumping every vector line.
const reportHotLines = 8

// MicroReport runs the new microbenchmark (the paper's Figure 4
// workload at critical work 1500, the Table 2 operating point) once per
// paper lock with the full observability stack attached: a streaming
// trace.Analyzer for wait/hold quantiles and the handoff matrix, and
// per-line traffic attribution from the machine. Deterministic for a
// fixed seed (and fixed host — the host block records where it ran).
func MicroReport(o Options, seed uint64) *Report {
	threads, iters, private := newBenchDefaults(o)
	cfg := wildfire(seed)
	rep := &Report{
		Schema:     ReportSchema,
		Tool:       "hbobench",
		Experiment: "micro",
		Seed:       seed,
		Host:       report.Host(),
		Machine: MachineSummary{
			Nodes:       cfg.Nodes,
			CPUsPerNode: cfg.CPUsPerNode,
			Preset:      "WildFire",
		},
		Params: map[string]int{
			"threads":       threads,
			"iterations":    iters,
			"critical_work": 1500,
			"private_work":  private,
		},
	}
	names := lockNames()
	rep.Locks = make([]LockReport, len(names))
	o.parfor(len(names), func(i int) {
		an := trace.NewAnalyzer()
		res := microbench.NewBench(microbench.NewBenchConfig{
			Machine:      cfg,
			Lock:         names[i],
			Threads:      threads,
			Iterations:   iters,
			CriticalWork: 1500,
			PrivateWork:  private,
			Tuning:       simlock.DefaultTuning(),
			WrapLock:     func(l simlock.Lock) simlock.Lock { return trace.Wrap(l, an) },
		})
		st := an.Aggregate()
		lr := BuildLockReport(names[i], st, threads, res.Traffic, res.Lines)
		lr.IterationTimeNS = int64(res.IterationTime)
		lr.TotalTimeNS = int64(res.TotalTime)
		rep.Locks[i] = lr
	})
	return rep
}
