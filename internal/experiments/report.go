package experiments

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/simlock"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ReportSchema versions the machine-readable run report. Consumers pin
// this string; bump it whenever a field changes meaning or layout.
const ReportSchema = "hbo-run-report/v1"

// Quantiles summarizes a latency distribution in nanoseconds, the
// tail-aware replacement for the mean-only numbers the text tables
// print.
type Quantiles struct {
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P90NS  int64   `json:"p90_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// QuantilesOf extracts report quantiles from a histogram.
func QuantilesOf(h *stats.Histogram) Quantiles {
	if h == nil {
		return Quantiles{}
	}
	return Quantiles{
		Count:  h.Count(),
		MeanNS: h.Mean(),
		P50NS:  h.Quantile(0.50),
		P90NS:  h.Quantile(0.90),
		P99NS:  h.Quantile(0.99),
		MaxNS:  h.Max(),
	}
}

// TrafficReport is the machine's coherence-transaction accounting,
// split the way the paper's Tables 2 and 6 report it.
type TrafficReport struct {
	LocalPerNode []uint64 `json:"local_per_node"`
	LocalTotal   uint64   `json:"local_total"`
	Global       uint64   `json:"global"`
}

// trafficReport converts machine counters into report form.
func trafficReport(s machine.Stats) TrafficReport {
	return TrafficReport{LocalPerNode: s.Local, LocalTotal: s.TotalLocal(), Global: s.Global}
}

// LabelTraffic sums per-line traffic over all lines sharing a label —
// the lock-line vs data-line split of Tables 2 and 6. Unlabeled lines
// aggregate under "other".
type LabelTraffic struct {
	Label         string `json:"label"`
	Lines         int    `json:"lines"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Transfers     uint64 `json:"transfers"`
	Local         uint64 `json:"local"`
	Global        uint64 `json:"global"`
}

// aggregateByLabel rolls per-line stats up by label, sorted by label.
func aggregateByLabel(ls []machine.LineStats) []LabelTraffic {
	byLabel := map[string]*LabelTraffic{}
	for _, l := range ls {
		label := l.Label
		if label == "" {
			label = "other"
		}
		t := byLabel[label]
		if t == nil {
			t = &LabelTraffic{Label: label}
			byLabel[label] = t
		}
		t.Lines++
		t.Misses += l.Misses
		t.Invalidations += l.Invalidations
		t.Transfers += l.Transfers
		t.Local += l.Local
		t.Global += l.Global
	}
	labels := make([]string, 0, len(byLabel))
	for label := range byLabel {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	out := make([]LabelTraffic, 0, len(labels))
	for _, label := range labels {
		out = append(out, *byLabel[label])
	}
	return out
}

// LockReport is the per-lock section of a run report. The abort and
// fault fields only appear in degraded-mode reports (omitempty), so
// fault-free reports keep their exact bytes.
type LockReport struct {
	Lock            string              `json:"lock"`
	Acquisitions    int                 `json:"acquisitions"`
	Aborts          int                 `json:"aborts,omitempty"`
	AbortRate       float64             `json:"abort_rate,omitempty"`
	Wait            Quantiles           `json:"wait"`
	Hold            Quantiles           `json:"hold"`
	HandoffRatio    float64             `json:"handoff_ratio"`
	NodeMatrix      [][]int             `json:"node_handoff_matrix,omitempty"`
	PerThread       []int               `json:"per_thread_acquisitions"`
	IterationTimeNS int64               `json:"iteration_time_ns,omitempty"`
	TotalTimeNS     int64               `json:"total_time_ns,omitempty"`
	Traffic         TrafficReport       `json:"traffic"`
	TrafficByLabel  []LabelTraffic      `json:"traffic_by_label,omitempty"`
	HotLines        []machine.LineStats `json:"hot_lines,omitempty"`
	FaultStats      *fault.Stats        `json:"fault_stats,omitempty"`
}

// BuildLockReport assembles the per-lock report section from trace
// statistics and machine counters. threads sizes the dense per-thread
// acquisition vector; lines is the full per-line attribution, which is
// rolled up by label and capped to the hottest few for the report.
func BuildLockReport(name string, st trace.Stats, threads int,
	traffic machine.Stats, lines []machine.LineStats) LockReport {
	perThread := make([]int, threads)
	for tid, n := range st.PerThread {
		if tid >= 0 && tid < threads {
			perThread[tid] = n
		}
	}
	return LockReport{
		Lock:           name,
		Acquisitions:   st.Acquisitions,
		Wait:           QuantilesOf(st.WaitHist),
		Hold:           QuantilesOf(st.HoldHist),
		HandoffRatio:   st.HandoffRatio(),
		NodeMatrix:     st.NodeMatrix,
		PerThread:      perThread,
		Traffic:        trafficReport(traffic),
		TrafficByLabel: aggregateByLabel(lines),
		HotLines:       hotLines(lines, reportHotLines),
	}
}

// MachineSummary records the simulated machine shape in a report.
type MachineSummary struct {
	Nodes        int    `json:"nodes"`
	CPUsPerNode  int    `json:"cpus_per_node"`
	ClusterSize  int    `json:"cluster_size,omitempty"`
	WordsPerLine int    `json:"words_per_line,omitempty"`
	Preset       string `json:"preset,omitempty"`
}

// FaultReport records the replay coordinates of a degraded-mode run:
// re-running the same tool with this (schedule, seed, intensity)
// triple reproduces the report byte for byte.
type FaultReport struct {
	Schedule  string  `json:"schedule"`
	Seed      uint64  `json:"seed"`
	Intensity float64 `json:"intensity"`
}

// Report is the machine-readable result of one observability run. All
// fields are deterministic for a fixed seed, so identical invocations
// produce byte-identical JSON. Fault is present only for degraded-mode
// runs (omitempty keeps fault-free reports byte-stable).
type Report struct {
	Schema     string         `json:"schema"`
	Tool       string         `json:"tool"`
	Experiment string         `json:"experiment"`
	Seed       uint64         `json:"seed"`
	Machine    MachineSummary `json:"machine"`
	Params     map[string]int `json:"params,omitempty"`
	Fault      *FaultReport   `json:"fault,omitempty"`
	Locks      []LockReport   `json:"locks"`
}

// WriteJSON emits the report as indented JSON. encoding/json renders
// struct fields in declaration order and map keys sorted, so the bytes
// are stable for a fixed report.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// reportHotLines caps per-line attribution in reports: the lock's own
// lines plus the hottest data lines tell the Tables 2/6 story without
// dumping every vector line.
const reportHotLines = 8

// MicroReport runs the new microbenchmark (the paper's Figure 4
// workload at critical work 1500, the Table 2 operating point) once per
// paper lock with the full observability stack attached: a streaming
// trace.Analyzer for wait/hold quantiles and the handoff matrix, and
// per-line traffic attribution from the machine. Deterministic for a
// fixed seed.
func MicroReport(o Options, seed uint64) *Report {
	threads, iters, private := newBenchDefaults(o)
	cfg := wildfire(seed)
	rep := &Report{
		Schema:     ReportSchema,
		Tool:       "hbobench",
		Experiment: "micro",
		Seed:       seed,
		Machine: MachineSummary{
			Nodes:       cfg.Nodes,
			CPUsPerNode: cfg.CPUsPerNode,
			Preset:      "WildFire",
		},
		Params: map[string]int{
			"threads":       threads,
			"iterations":    iters,
			"critical_work": 1500,
			"private_work":  private,
		},
	}
	names := lockNames()
	rep.Locks = make([]LockReport, len(names))
	o.parfor(len(names), func(i int) {
		an := trace.NewAnalyzer()
		res := microbench.NewBench(microbench.NewBenchConfig{
			Machine:      cfg,
			Lock:         names[i],
			Threads:      threads,
			Iterations:   iters,
			CriticalWork: 1500,
			PrivateWork:  private,
			Tuning:       simlock.DefaultTuning(),
			WrapLock:     func(l simlock.Lock) simlock.Lock { return trace.Wrap(l, an) },
		})
		st := an.Aggregate()
		lr := BuildLockReport(names[i], st, threads, res.Traffic, res.Lines)
		lr.IterationTimeNS = int64(res.IterationTime)
		lr.TotalTimeNS = int64(res.TotalTime)
		rep.Locks[i] = lr
	})
	return rep
}

// hotLines returns the n busiest lines by total traffic, ties broken by
// address (mirrors machine.HotLines for an already-collected slice).
func hotLines(ls []machine.LineStats, n int) []machine.LineStats {
	out := append([]machine.LineStats(nil), ls...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Traffic() != out[j].Traffic() {
			return out[i].Traffic() > out[j].Traffic()
		}
		return out[i].Addr < out[j].Addr
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
