package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/microbench"
	"repro/internal/paper"
	"repro/internal/simlock"
	"repro/internal/stats"
)

// Cmp1 prints Table 1 measured next to the paper's published numbers,
// with the relative error per scenario.
func Cmp1(o Options) []*stats.Table {
	rounds := 5
	if o.Quick {
		rounds = 2
	}
	t := stats.NewTable(
		"Table 1 comparison: measured vs paper, ns (delta %)",
		"Lock", "Same Proc", "paper", "Same Node", "paper", "Remote Node", "paper")
	for _, name := range paper.LockOrder {
		ref := paper.Table1[name]
		row := []string{name}
		for i, sc := range microbench.Scenarios() {
			ns := float64(microbench.Uncontested(wildfire(1), name, sc, rounds))
			row = append(row,
				fmt.Sprintf("%.0f (%+.0f%%)", ns, 100*(ns-ref[i])/ref[i]),
				stats.F(ref[i], 0))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// Cmp2 prints the Table 2 normalized-traffic comparison.
func Cmp2(o Options) []*stats.Table {
	threads, iters, private := newBenchDefaults(o)
	type traffic struct{ local, global float64 }
	res := map[string]traffic{}
	for _, name := range paper.LockOrder {
		r := microbench.NewBench(microbench.NewBenchConfig{
			Machine:      wildfire(11),
			Lock:         name,
			Threads:      threads,
			Iterations:   iters,
			CriticalWork: 1500,
			PrivateWork:  private,
			Tuning:       simlock.DefaultTuning(),
		})
		res[name] = traffic{float64(r.Traffic.TotalLocal()), float64(r.Traffic.Global)}
	}
	base := res["TATAS_EXP"]
	t := stats.NewTable(
		"Table 2 comparison: normalized traffic, measured vs paper",
		"Lock", "Local", "paper", "Global", "paper")
	for _, name := range paper.LockOrder {
		ref := paper.Table2[name]
		t.AddRow(name,
			stats.F(res[name].local/base.local, 2), stats.F(ref[0], 2),
			stats.F(res[name].global/base.global, 2), stats.F(ref[1], 2))
	}
	return []*stats.Table{t}
}

// Cmp4 prints the Table 4 Raytrace comparison.
func Cmp4(o Options) []*stats.Table {
	scale := o.scale()
	seeds := o.seeds()
	spec := apps.SpecByName("Raytrace")
	t := stats.NewTable(
		"Table 4 comparison: Raytrace seconds, measured vs paper",
		"Lock", "1 CPU", "paper", "28 CPUs", "paper", "30 CPUs", "paper")
	fmtRef := func(v float64) string {
		if v < 0 {
			return "> 200 s"
		}
		return stats.F(v, 2)
	}
	for _, name := range paper.LockOrder {
		ref := paper.Table4[name]
		one := appRun(spec, name, 1, scale, 1, false, 0)
		var s28 []float64
		cell30 := ""
		aborted := false
		var s30 []float64
		for s := 0; s < seeds; s++ {
			s28 = append(s28, appRun(spec, name, 28, scale, uint64(s+1), false, 0).Seconds)
			r30 := appRun(spec, name, 30, scale, uint64(s+1), true, 200)
			if r30.Aborted {
				aborted = true
			}
			s30 = append(s30, r30.Seconds)
		}
		if aborted {
			cell30 = "> 200 s"
		} else {
			cell30 = stats.F(stats.Summarize(s30).Mean, 2)
		}
		t.AddRow(name,
			stats.F(one.Seconds, 2), fmtRef(ref[0]),
			stats.F(stats.Summarize(s28).Mean, 2), fmtRef(ref[1]),
			cell30, fmtRef(ref[2]))
	}
	return []*stats.Table{t}
}

// Cmp5 prints the Table 5 application-time comparison (means only).
func Cmp5(o Options) []*stats.Table {
	times, _ := table5Data(o)
	cols := []string{"Program"}
	for _, l := range []string{"TATAS", "TATAS_EXP", "MCS", "CLH", "HBO_GT_SD"} {
		cols = append(cols, l, "paper")
	}
	t := stats.NewTable("Table 5 comparison: seconds, measured vs paper (subset of locks)", cols...)
	for _, app := range paper.Apps {
		row := []string{app}
		for _, l := range []string{"TATAS", "TATAS_EXP", "MCS", "CLH", "HBO_GT_SD"} {
			m := stats.Summarize(times[app][l]).Mean
			ref := paper.Table5[app][l]
			refCell := stats.F(ref, 2)
			if ref < 0 {
				refCell = "N/A"
			}
			row = append(row, stats.F(m, 2), refCell)
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}
