package experiments

import (
	"fmt"

	"repro/internal/microbench"
	"repro/internal/paper"
	"repro/internal/simlock"
	"repro/internal/stats"
)

// Cmp1 prints Table 1 measured next to the paper's published numbers,
// with the relative error per scenario.
func Cmp1(o Options) []*stats.Table {
	rounds := 5
	if o.Quick {
		rounds = 2
	}
	names := paper.LockOrder
	scs := microbench.Scenarios()
	cells := make([]float64, len(names)*len(scs))
	o.parfor(len(cells), func(i int) {
		name, sc := names[i/len(scs)], scs[i%len(scs)]
		cells[i] = float64(microbench.Uncontested(wildfire(1), name, sc, rounds))
	})
	t := stats.NewTable(
		"Table 1 comparison: measured vs paper, ns (delta %)",
		"Lock", "Same Proc", "paper", "Same Node", "paper", "Remote Node", "paper")
	for ni, name := range names {
		ref := paper.Table1[name]
		row := []string{name}
		for si := range scs {
			ns := cells[ni*len(scs)+si]
			row = append(row,
				fmt.Sprintf("%.0f (%+.0f%%)", ns, 100*(ns-ref[si])/ref[si]),
				stats.F(ref[si], 0))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// Cmp2 prints the Table 2 normalized-traffic comparison.
func Cmp2(o Options) []*stats.Table {
	threads, iters, private := newBenchDefaults(o)
	type traffic struct{ local, global float64 }
	names := paper.LockOrder
	res := make([]traffic, len(names))
	o.parfor(len(names), func(i int) {
		r := microbench.NewBench(microbench.NewBenchConfig{
			Machine:      wildfire(11),
			Lock:         names[i],
			Threads:      threads,
			Iterations:   iters,
			CriticalWork: 1500,
			PrivateWork:  private,
			Tuning:       simlock.DefaultTuning(),
		})
		res[i] = traffic{float64(r.Traffic.TotalLocal()), float64(r.Traffic.Global)}
	})
	var base traffic
	for i, name := range names {
		if name == "TATAS_EXP" {
			base = res[i]
		}
	}
	t := stats.NewTable(
		"Table 2 comparison: normalized traffic, measured vs paper",
		"Lock", "Local", "paper", "Global", "paper")
	for i, name := range names {
		ref := paper.Table2[name]
		t.AddRow(name,
			stats.F(res[i].local/base.local, 2), stats.F(ref[0], 2),
			stats.F(res[i].global/base.global, 2), stats.F(ref[1], 2))
	}
	return []*stats.Table{t}
}

// Cmp4 prints the Table 4 Raytrace comparison.
func Cmp4(o Options) []*stats.Table {
	names := paper.LockOrder
	res := runRaytrace(o, names)
	t := stats.NewTable(
		"Table 4 comparison: Raytrace seconds, measured vs paper",
		"Lock", "1 CPU", "paper", "28 CPUs", "paper", "30 CPUs", "paper")
	fmtRef := func(v float64) string {
		if v < 0 {
			return "> 200 s"
		}
		return stats.F(v, 2)
	}
	for i, name := range names {
		ref := paper.Table4[name]
		cell30 := stats.F(stats.Summarize(res[i].t30).Mean, 2)
		if res[i].aborted30() {
			cell30 = "> 200 s"
		}
		t.AddRow(name,
			stats.F(res[i].one, 2), fmtRef(ref[0]),
			stats.F(stats.Summarize(res[i].t28).Mean, 2), fmtRef(ref[1]),
			cell30, fmtRef(ref[2]))
	}
	return []*stats.Table{t}
}

// Cmp5 prints the Table 5 application-time comparison (means only).
func Cmp5(o Options) []*stats.Table {
	times, _ := table5Data(o)
	cols := []string{"Program"}
	for _, l := range []string{"TATAS", "TATAS_EXP", "MCS", "CLH", "HBO_GT_SD"} {
		cols = append(cols, l, "paper")
	}
	t := stats.NewTable("Table 5 comparison: seconds, measured vs paper (subset of locks)", cols...)
	for _, app := range paper.Apps {
		row := []string{app}
		for _, l := range []string{"TATAS", "TATAS_EXP", "MCS", "CLH", "HBO_GT_SD"} {
			m := stats.Summarize(times[app][l]).Mean
			ref := paper.Table5[app][l]
			refCell := stats.F(ref, 2)
			if ref < 0 {
				refCell = "N/A"
			}
			row = append(row, stats.F(m, 2), refCell)
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}
