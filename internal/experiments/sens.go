package experiments

import (
	"fmt"

	"repro/internal/microbench"
	"repro/internal/simlock"
	"repro/internal/stats"
)

// sensBench runs the new microbenchmark at 26 processors (the paper's
// sensitivity-study configuration) with the given tuning.
func sensBench(o Options, lock string, tun simlock.Tuning, seed uint64) float64 {
	iters := 30
	if o.Quick {
		iters = 10
	}
	r := microbench.NewBench(microbench.NewBenchConfig{
		Machine:      wildfire(seed),
		Lock:         lock,
		Threads:      o.threads(26),
		Iterations:   iters,
		CriticalWork: 1500,
		PrivateWork:  4000,
		Tuning:       tun,
	})
	return float64(r.TotalTime)
}

// fig9Caps returns the REMOTE_BACKOFF_CAP sweep (delay-loop iterations).
func fig9Caps(o Options) []int {
	if o.Quick {
		return []int{512, 4096, 32768}
	}
	return []int{256, 512, 1024, 2048, 4096, 8192, 16384, 32768}
}

// Fig9 varies HBO_GT_SD's REMOTE_BACKOFF_CAP, normalizing against MCS
// (values < 1 mean faster than MCS).
func Fig9(o Options) []*stats.Table {
	caps := fig9Caps(o)
	vals := make([]float64, 1+len(caps)) // slot 0: the MCS baseline
	o.parfor(len(vals), func(i int) {
		if i == 0 {
			vals[0] = sensBench(o, "MCS", simlock.DefaultTuning(), 17)
			return
		}
		cap := caps[i-1]
		tun := simlock.DefaultTuning()
		tun.RemoteBackoffCap = cap
		if tun.RemoteBackoffBase > cap {
			tun.RemoteBackoffBase = cap
		}
		vals[i] = sensBench(o, "HBO_GT_SD", tun, 17)
	})
	mcs := vals[0]
	t := stats.NewTable(
		"Figure 9: HBO_GT_SD sensitivity to REMOTE_BACKOFF_CAP (time normalized to MCS)",
		"RemoteBackoffCap", "HBO_GT_SD / MCS")
	for i, cap := range caps {
		t.AddRow(fmt.Sprint(cap), stats.F(vals[i+1]/mcs, 2))
	}
	return []*stats.Table{t}
}

// fig10Limits returns the GET_ANGRY_LIMIT sweep.
func fig10Limits(o Options) []int {
	if o.Quick {
		return []int{2, 32, 512}
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
}

// Fig10 varies HBO_GT_SD's GET_ANGRY_LIMIT, normalizing against HBO_GT
// (the same lock without starvation detection).
func Fig10(o Options) []*stats.Table {
	limits := fig10Limits(o)
	iters := 30
	if o.Quick {
		iters = 10
	}
	type cell struct{ time, spread float64 }
	var gt float64
	cells := make([]cell, len(limits))
	o.parfor(1+len(limits), func(i int) {
		if i == 0 {
			gt = sensBench(o, "HBO_GT", simlock.DefaultTuning(), 19)
			return
		}
		tun := simlock.DefaultTuning()
		tun.GetAngryLimit = limits[i-1]
		r := microbench.NewBench(microbench.NewBenchConfig{
			Machine:      wildfire(19),
			Lock:         "HBO_GT_SD",
			Threads:      o.threads(26),
			Iterations:   iters,
			CriticalWork: 1500,
			PrivateWork:  4000,
			Tuning:       tun,
		})
		cells[i-1] = cell{float64(r.TotalTime), r.FinishSpreadPercent()}
	})
	t := stats.NewTable(
		"Figure 10: HBO_GT_SD sensitivity to GET_ANGRY_LIMIT (time normalized to HBO_GT)",
		"GetAngryLimit", "HBO_GT_SD / HBO_GT", "Fairness spread %")
	for i, lim := range limits {
		t.AddRow(fmt.Sprint(lim),
			stats.F(cells[i].time/gt, 2),
			stats.F(cells[i].spread, 1))
	}
	return []*stats.Table{t}
}
