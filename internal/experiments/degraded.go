package experiments

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/microbench"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simlock"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Graceful-degradation study (beyond the paper): the new microbenchmark
// re-run on machines degraded by internal/fault's four fault classes,
// through the locks' timed acquire path where one exists. The paper's
// claim is that HBO's locality pays off on a *healthy* NUCA machine;
// these drivers measure what each algorithm gives back when the machine
// misbehaves — latency spikes, interconnect storms, preempted holders
// and NACKed transactions — as throughput, fairness and abort-rate
// degradation curves.

// degTimeout is the per-attempt acquire budget used by the degraded
// drivers for locks with a timed path. At the Table 2 operating point a
// 28-way contended wait runs to a few milliseconds, so the budget is a
// handful of multiples of that: fault-free runs abort well under 1% of
// attempts, while spike/storm/pause windows push an order of magnitude
// more waits over budget.
const degTimeout = 16 * sim.Millisecond

// degIntensities returns the fault-intensity sweep (0 rows are the
// fault-free baseline, run separately).
func degIntensities(o Options) []float64 {
	if o.Quick {
		return []float64{0.5, 1.0}
	}
	return []float64{0.25, 0.5, 0.75, 1.0}
}

// runDegraded executes one degraded cell; intensity 0 means fault-free.
func runDegraded(name, schedule string, intensity float64, seed uint64,
	threads, iters, private int) microbench.DegradedResult {
	var fc fault.Config
	if intensity > 0 {
		var err error
		fc, err = fault.Preset(schedule, seed*2654435761+1, intensity)
		if err != nil {
			panic(err) // schedules come from fault.Schedules()
		}
	}
	return microbench.DegradedBench(microbench.DegradedConfig{
		NewBenchConfig: microbench.NewBenchConfig{
			Machine:      wildfire(seed),
			Lock:         name,
			Threads:      threads,
			Iterations:   iters,
			CriticalWork: 1500,
			PrivateWork:  private,
			Tuning:       simlock.DefaultTuning(),
		},
		Fault:   fc,
		Timeout: degTimeout,
	})
}

// Deg1 sweeps fault intensity for the composite "all" schedule and
// reports per-lock degradation curves: iteration time normalized to the
// lock's own fault-free baseline, the abort rate of the timed acquire
// path, and the fairness spread.
func Deg1(o Options) []*stats.Table {
	threads, iters, private := newBenchDefaults(o)
	const schedule = "all"
	intens := degIntensities(o)
	names := lockNames()
	timed := map[string]bool{}
	for _, n := range simlock.TimedNames() {
		timed[n] = true
	}

	rows := len(intens) + 1 // leading fault-free baseline row
	cells := make([]microbench.DegradedResult, rows*len(names))
	o.parfor(len(cells), func(i int) {
		ri, ni := i/len(names), i%len(names)
		intensity := 0.0
		if ri > 0 {
			intensity = intens[ri-1]
		}
		cells[i] = runDegraded(names[ni], schedule, intensity, 17, threads, iters, private)
	})

	cols := append([]string{"Intensity"}, names...)
	tTime := stats.NewTable(
		fmt.Sprintf("Degradation 1a: iteration time vs fault intensity, normalized to fault-free "+
			"(schedule %q, %d processors)", schedule, threads), cols...)
	tAbort := stats.NewTable(
		fmt.Sprintf("Degradation 1b: timed-acquire abort rate (budget %v; '-' = no timed path)",
			degTimeout), cols...)
	tFair := stats.NewTable(
		"Degradation 1c: completion-time spread, %", cols...)
	for ri := 0; ri < rows; ri++ {
		label := "0 (clean)"
		if ri > 0 {
			label = stats.F(intens[ri-1], 2)
		}
		timeRow := []string{label}
		abortRow := []string{label}
		fairRow := []string{label}
		for ni := range names {
			c := cells[ri*len(names)+ni]
			base := cells[ni] // row 0 = fault-free
			norm := 0.0
			if base.IterationTime > 0 {
				norm = float64(c.IterationTime) / float64(base.IterationTime)
			}
			timeRow = append(timeRow, stats.F(norm, 2))
			if timed[names[ni]] {
				abortRow = append(abortRow, stats.F(c.AbortRate(), 3))
			} else {
				abortRow = append(abortRow, "-")
			}
			fairRow = append(fairRow, stats.F(c.FinishSpreadPercent(), 1))
		}
		tTime.AddRow(timeRow...)
		tAbort.AddRow(abortRow...)
		tFair.AddRow(fairRow...)
	}
	return []*stats.Table{tTime, tAbort, tFair}
}

// deg2Nodes returns the node-count sweep of the second degradation
// study.
func deg2Nodes(o Options) []int {
	if o.Quick {
		return []int{2, 4}
	}
	return []int{2, 4, 8}
}

// deg2Names drops the RH lock, which only supports two-node machines.
func deg2Names() []string {
	var out []string
	for _, n := range lockNames() {
		if n != "RH" {
			out = append(out, n)
		}
	}
	return out
}

// Deg2 fixes the fault plan ("all" at intensity 0.75) and sweeps the
// machine's node count, reporting the slowdown each lock suffers
// relative to its own clean run on the same shape — does NUCA-aware
// locality still pay when the machine is sick and bigger?
func Deg2(o Options) []*stats.Table {
	const (
		schedule  = "all"
		intensity = 0.75
		cpusPer   = 8
	)
	iters := 20
	if o.Quick {
		iters = 8
	}
	nodes := deg2Nodes(o)
	names := deg2Names()
	type cell struct{ clean, degraded microbench.DegradedResult }
	cells := make([]cell, len(nodes)*len(names))
	o.parfor(len(cells), func(i int) {
		ni, li := i/len(names), i%len(names)
		cfg := wildfire(uint64(23 + ni))
		cfg.Nodes = nodes[ni]
		cfg.CPUsPerNode = cpusPer
		threads := 4 * nodes[ni] // constant per-node contention
		run := func(intens float64) microbench.DegradedResult {
			var fc fault.Config
			if intens > 0 {
				var err error
				fc, err = fault.Preset(schedule, 4099, intens)
				if err != nil {
					panic(err)
				}
			}
			return microbench.DegradedBench(microbench.DegradedConfig{
				NewBenchConfig: microbench.NewBenchConfig{
					Machine:      cfg,
					Lock:         names[li],
					Threads:      threads,
					Iterations:   iters,
					CriticalWork: 1500,
					PrivateWork:  4000,
					Tuning:       simlock.DefaultTuning(),
				},
				Fault:   fc,
				Timeout: degTimeout,
			})
		}
		cells[i] = cell{clean: run(0), degraded: run(intensity)}
	})

	cols := append([]string{"Nodes"}, names...)
	t := stats.NewTable(
		fmt.Sprintf("Degradation 2: slowdown under schedule %q at intensity %.2f vs node count "+
			"(%d CPUs/node, 4 threads/node)", schedule, intensity, cpusPer), cols...)
	for ni, n := range nodes {
		row := []string{fmt.Sprint(n)}
		for li := range names {
			c := cells[ni*len(names)+li]
			slow := 0.0
			if c.clean.IterationTime > 0 {
				slow = float64(c.degraded.IterationTime) / float64(c.clean.IterationTime)
			}
			row = append(row, stats.F(slow, 2))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// DegradedReport runs the degraded-mode benchmark (the Table 2
// operating point under the named fault schedule) once per paper lock
// with the observability stack attached, and emits a report whose
// fault section carries the exact replay coordinates. Byte-identical
// for a fixed (seed, schedule, intensity).
func DegradedReport(o Options, seed uint64, schedule string, intensity float64) (*Report, error) {
	if _, err := fault.Preset(schedule, seed, intensity); err != nil {
		return nil, err
	}
	threads, iters, private := newBenchDefaults(o)
	cfg := wildfire(seed)
	rep := &Report{
		Schema:     ReportSchema,
		Tool:       "hbobench",
		Experiment: "degraded",
		Seed:       seed,
		Host:       report.Host(),
		Machine: MachineSummary{
			Nodes:       cfg.Nodes,
			CPUsPerNode: cfg.CPUsPerNode,
			Preset:      "WildFire",
		},
		Params: map[string]int{
			"threads":       threads,
			"iterations":    iters,
			"critical_work": 1500,
			"private_work":  private,
			"timeout_ns":    int(degTimeout),
		},
		Fault: &FaultReport{Schedule: schedule, Seed: seed, Intensity: intensity},
	}
	names := lockNames()
	rep.Locks = make([]LockReport, len(names))
	o.parfor(len(names), func(i int) {
		fc, err := fault.Preset(schedule, seed, intensity)
		if err != nil {
			panic(err) // validated above
		}
		an := trace.NewAnalyzer()
		res := microbench.DegradedBench(microbench.DegradedConfig{
			NewBenchConfig: microbench.NewBenchConfig{
				Machine:      cfg,
				Lock:         names[i],
				Threads:      threads,
				Iterations:   iters,
				CriticalWork: 1500,
				PrivateWork:  private,
				Tuning:       simlock.DefaultTuning(),
				WrapLock:     func(l simlock.Lock) simlock.Lock { return trace.Wrap(l, an) },
			},
			Fault:   fc,
			Timeout: degTimeout,
		})
		st := an.Aggregate()
		lr := BuildLockReport(names[i], st, threads, res.Traffic, res.Lines)
		lr.Aborts = res.Aborts
		lr.AbortRate = res.AbortRate()
		lr.IterationTimeNS = int64(res.IterationTime)
		lr.TotalTimeNS = int64(res.TotalTime)
		fs := res.Faults
		lr.FaultStats = &fs
		rep.Locks[i] = lr
	})
	return rep, nil
}
