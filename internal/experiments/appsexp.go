package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/simlock"
	"repro/internal/stats"
)

// appRun executes one application/lock configuration for one seed.
func appRun(spec apps.Spec, lock string, threads, scale int, seed uint64, preempt bool, limitSec float64) apps.Result {
	cfg := apps.Config{
		Machine:          wildfire(seed),
		Lock:             lock,
		Threads:          threads,
		Tuning:           simlock.DefaultTuning(),
		Scale:            scale,
		TimeLimitSeconds: limitSec,
	}
	if preempt {
		cfg.Machine.Preempt = apps.Preemption(scale)
	}
	return apps.Run(spec, cfg)
}

// Table3 reports each program's lock statistics (Table 3 is measured at
// 32-processor runs; the WildFire model has exactly 32 CPUs).
func Table3(o Options) []*stats.Table {
	scale := o.scale()
	specs := apps.AllSpecs()
	modeled := make([]int, len(specs))
	o.parfor(len(specs), func(i int) {
		if !specs[i].Studied {
			return
		}
		res := appRun(specs[i], "TATAS_EXP", 32, scale, 3, false, 0)
		modeled[i] = res.LockCalls * scale
	})
	t := stats.NewTable(
		"Table 3: SPLASH-2 programs and lock statistics (32-thread runs; ▶ = studied further)",
		"Program", "Problem Size", "Total Locks", "Lock Calls", "Modeled Calls (scaled)")
	for i, spec := range specs {
		name := spec.Name
		cell := "-"
		if spec.Studied {
			name = "▶ " + name
			cell = fmt.Sprint(modeled[i])
		}
		t.AddRow(name, spec.Problem,
			fmt.Sprint(spec.TotalLocks),
			fmt.Sprint(spec.LockCalls),
			cell)
	}
	return []*stats.Table{t}
}

// raytraceRuns fans out the Table 4 / Cmp4 cell grid: for every lock a
// 1-CPU run plus per-seed 28-CPU and 30-CPU runs (the latter with the
// preemption injector and a 200-second limit, reproducing the paper's
// "> 200 s" entries).
type raytraceRuns struct {
	one  float64
	t28  []float64
	t30  []float64
	ab30 []bool
}

func runRaytrace(o Options, names []string) []raytraceRuns {
	scale := o.scale()
	seeds := o.seeds()
	spec := apps.SpecByName("Raytrace")
	res := make([]raytraceRuns, len(names))
	for i := range res {
		res[i] = raytraceRuns{
			t28:  make([]float64, seeds),
			t30:  make([]float64, seeds),
			ab30: make([]bool, seeds),
		}
	}
	runsPer := 1 + 2*seeds
	o.parfor(len(names)*runsPer, func(i int) {
		li, r := i/runsPer, i%runsPer
		name := names[li]
		switch {
		case r == 0:
			res[li].one = appRun(spec, name, 1, scale, 1, false, 0).Seconds
		case r <= seeds:
			s := r - 1
			res[li].t28[s] = appRun(spec, name, 28, scale, uint64(s+1), false, 0).Seconds
		default:
			s := r - seeds - 1
			r30 := appRun(spec, name, 30, scale, uint64(s+1), true, 200)
			res[li].t30[s] = r30.Seconds
			res[li].ab30[s] = r30.Aborted
		}
	})
	return res
}

func (r raytraceRuns) aborted30() bool {
	for _, a := range r.ab30 {
		if a {
			return true
		}
	}
	return false
}

// Table4 reports Raytrace execution time for 1, 28 and 30 CPUs.
func Table4(o Options) []*stats.Table {
	names := lockNames()
	res := runRaytrace(o, names)
	t := stats.NewTable(
		"Table 4: Raytrace performance, seconds (variance)",
		"Lock Type", "1 CPU", "28 CPUs", "30 CPUs")
	for i, name := range names {
		cell30 := meanVar(res[i].t30)
		if res[i].aborted30() {
			cell30 = "> 200 s"
		}
		t.AddRow(name, stats.F(res[i].one, 2), meanVar(res[i].t28), cell30)
	}
	return []*stats.Table{t}
}

// table5Data runs all apps × locks × seeds at 28 threads — the single
// biggest cell grid in the suite — returning exec-time samples and the
// traffic of the first seed.
func table5Data(o Options) (times map[string]map[string][]float64, traffic map[string]map[string][2]float64) {
	scale := o.scale()
	seeds := o.seeds()
	threads := o.threads(28)
	specs := apps.Specs()
	names := lockNames()
	tms := make([][][]float64, len(specs))  // [spec][lock][seed]
	trf := make([][][2]float64, len(specs)) // [spec][lock], seed 0 only
	for si := range specs {
		tms[si] = make([][]float64, len(names))
		trf[si] = make([][2]float64, len(names))
		for li := range names {
			tms[si][li] = make([]float64, seeds)
		}
	}
	cellsPer := len(names) * seeds
	o.parfor(len(specs)*cellsPer, func(i int) {
		si := i / cellsPer
		li := (i % cellsPer) / seeds
		s := i % seeds
		r := appRun(specs[si], names[li], threads, scale, uint64(s+1), false, 0)
		tms[si][li][s] = r.Seconds
		if s == 0 {
			trf[si][li] = [2]float64{
				float64(r.Traffic.TotalLocal()) * float64(scale),
				float64(r.Traffic.Global) * float64(scale),
			}
		}
	})
	times = map[string]map[string][]float64{}
	traffic = map[string]map[string][2]float64{}
	for si, spec := range specs {
		times[spec.Name] = map[string][]float64{}
		traffic[spec.Name] = map[string][2]float64{}
		for li, name := range names {
			times[spec.Name][name] = tms[si][li]
			traffic[spec.Name][name] = trf[si][li]
		}
	}
	return times, traffic
}

// Table5 reports application execution times for all eight algorithms.
func Table5(o Options) []*stats.Table {
	times, _ := table5Data(o)
	cols := append([]string{"Program"}, lockNames()...)
	t := stats.NewTable("Table 5: application performance, 28-processor runs, seconds (variance)", cols...)
	var averages []float64
	avgRow := []string{"Average"}
	perLockAll := map[string][]float64{}
	for _, spec := range apps.Specs() {
		row := []string{spec.Name}
		for _, name := range lockNames() {
			xs := times[spec.Name][name]
			row = append(row, meanVar(xs))
			perLockAll[name] = append(perLockAll[name], stats.Summarize(xs).Mean)
		}
		t.AddRow(row...)
	}
	for _, name := range lockNames() {
		m := stats.Summarize(perLockAll[name]).Mean
		averages = append(averages, m)
		avgRow = append(avgRow, stats.F(m, 2))
	}
	_ = averages
	t.AddRow(avgRow...)
	return []*stats.Table{t}
}

// Table6 reports per-application local/global traffic normalized to
// TATAS_EXP, with TATAS_EXP's absolute transaction count (millions) in
// parentheses.
func Table6(o Options) []*stats.Table {
	_, traffic := table5Data(o)
	cols := append([]string{"Program"}, lockNames()...)
	t := stats.NewTable("Table 6: normalized traffic (local/global); TATAS_EXP absolute in millions", cols...)
	for _, spec := range apps.Specs() {
		base := traffic[spec.Name]["TATAS_EXP"]
		row := []string{spec.Name}
		for _, name := range lockNames() {
			v := traffic[spec.Name][name]
			cell := fmt.Sprintf("%s / %s",
				stats.F(v[0]/base[0], 2), stats.F(v[1]/base[1], 2))
			if name == "TATAS_EXP" {
				cell += fmt.Sprintf(" (%.1fM/%.1fM)", base[0]/1e6, base[1]/1e6)
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// Fig6 reports speedup normalized to TATAS_EXP for the five algorithms
// the paper plots.
func Fig6(o Options) []*stats.Table {
	times, _ := table5Data(o)
	plotted := []string{"TATAS", "TATAS_EXP", "MCS", "CLH", "HBO_GT_SD"}
	cols := append([]string{"Program"}, plotted...)
	t := stats.NewTable("Figure 6: speedup normalized to TATAS_EXP, 28-processor runs", cols...)
	for _, spec := range apps.Specs() {
		base := stats.Summarize(times[spec.Name]["TATAS_EXP"]).Mean
		row := []string{spec.Name}
		for _, name := range plotted {
			m := stats.Summarize(times[spec.Name][name]).Mean
			row = append(row, stats.F(base/m, 2))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// fig7Procs returns the processor counts swept for Raytrace speedup.
func fig7Procs(o Options) []int {
	if o.Quick {
		return []int{1, 8, 28}
	}
	return []int{1, 2, 4, 8, 12, 16, 20, 24, 28}
}

// Fig7 reports Raytrace speedup (T1/Tp) against processor count.
func Fig7(o Options) []*stats.Table {
	scale := o.scale()
	spec := apps.SpecByName("Raytrace")
	names := lockNames()
	procs := fig7Procs(o)
	base := make([]float64, len(names))
	cells := make([]float64, len(procs)*len(names))
	// One grid: row 0 is the 1-CPU baseline per lock, the rest the sweep.
	o.parfor(len(names)*(1+len(procs)), func(i int) {
		li := i % len(names)
		if i < len(names) {
			base[li] = appRun(spec, names[li], 1, scale, 1, false, 0).Seconds
			return
		}
		pi := i/len(names) - 1
		p := procs[pi]
		cells[pi*len(names)+li] = appRun(spec, names[li], p, scale, uint64(p), false, 0).Seconds
	})
	cols := append([]string{"Processors"}, names...)
	t := stats.NewTable("Figure 7: speedup for Raytrace", cols...)
	for pi, p := range procs {
		row := []string{fmt.Sprint(p)}
		for li := range names {
			row = append(row, stats.F(base[li]/cells[pi*len(names)+li], 2))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}
