package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/simlock"
	"repro/internal/stats"
)

// appRun executes one application/lock configuration for one seed.
func appRun(spec apps.Spec, lock string, threads, scale int, seed uint64, preempt bool, limitSec float64) apps.Result {
	cfg := apps.Config{
		Machine:          wildfire(seed),
		Lock:             lock,
		Threads:          threads,
		Tuning:           simlock.DefaultTuning(),
		Scale:            scale,
		TimeLimitSeconds: limitSec,
	}
	if preempt {
		cfg.Machine.Preempt = apps.Preemption(scale)
	}
	return apps.Run(spec, cfg)
}

// Table3 reports each program's lock statistics (Table 3 is measured at
// 32-processor runs; the WildFire model has exactly 32 CPUs).
func Table3(o Options) []*stats.Table {
	scale := o.scale()
	t := stats.NewTable(
		"Table 3: SPLASH-2 programs and lock statistics (32-thread runs; ▶ = studied further)",
		"Program", "Problem Size", "Total Locks", "Lock Calls", "Modeled Calls (scaled)")
	for _, spec := range apps.AllSpecs() {
		name := spec.Name
		if spec.Studied {
			name = "▶ " + name
		}
		modeled := "-"
		if spec.Studied {
			res := appRun(spec, "TATAS_EXP", 32, scale, 3, false, 0)
			modeled = fmt.Sprint(res.LockCalls * scale)
		}
		t.AddRow(name, spec.Problem,
			fmt.Sprint(spec.TotalLocks),
			fmt.Sprint(spec.LockCalls),
			modeled)
	}
	return []*stats.Table{t}
}

// Table4 reports Raytrace execution time for 1, 28 and 30 CPUs. The
// 30-CPU runs enable the preemption injector (fully subscribed machine)
// and a 200-second limit, reproducing the paper's "> 200 s" entries.
func Table4(o Options) []*stats.Table {
	scale := o.scale()
	seeds := o.seeds()
	spec := apps.SpecByName("Raytrace")
	t := stats.NewTable(
		"Table 4: Raytrace performance, seconds (variance)",
		"Lock Type", "1 CPU", "28 CPUs", "30 CPUs")
	for _, name := range lockNames() {
		one := appRun(spec, name, 1, scale, 1, false, 0)

		var t28, t30 []float64
		aborted30 := false
		for s := 0; s < seeds; s++ {
			t28 = append(t28, appRun(spec, name, 28, scale, uint64(s+1), false, 0).Seconds)
			r30 := appRun(spec, name, 30, scale, uint64(s+1), true, 200)
			if r30.Aborted {
				aborted30 = true
			}
			t30 = append(t30, r30.Seconds)
		}
		cell30 := meanVar(t30)
		if aborted30 {
			cell30 = "> 200 s"
		}
		t.AddRow(name, stats.F(one.Seconds, 2), meanVar(t28), cell30)
	}
	return []*stats.Table{t}
}

// table5Data runs all apps × locks at 28 threads, returning exec-time
// samples and the traffic of the first seed.
func table5Data(o Options) (times map[string]map[string][]float64, traffic map[string]map[string][2]float64) {
	scale := o.scale()
	seeds := o.seeds()
	threads := o.threads(28)
	times = map[string]map[string][]float64{}
	traffic = map[string]map[string][2]float64{}
	for _, spec := range apps.Specs() {
		times[spec.Name] = map[string][]float64{}
		traffic[spec.Name] = map[string][2]float64{}
		for _, name := range lockNames() {
			for s := 0; s < seeds; s++ {
				r := appRun(spec, name, threads, scale, uint64(s+1), false, 0)
				times[spec.Name][name] = append(times[spec.Name][name], r.Seconds)
				if s == 0 {
					traffic[spec.Name][name] = [2]float64{
						float64(r.Traffic.TotalLocal()) * float64(scale),
						float64(r.Traffic.Global) * float64(scale),
					}
				}
			}
		}
	}
	return times, traffic
}

// Table5 reports application execution times for all eight algorithms.
func Table5(o Options) []*stats.Table {
	times, _ := table5Data(o)
	cols := append([]string{"Program"}, lockNames()...)
	t := stats.NewTable("Table 5: application performance, 28-processor runs, seconds (variance)", cols...)
	var averages []float64
	avgRow := []string{"Average"}
	perLockAll := map[string][]float64{}
	for _, spec := range apps.Specs() {
		row := []string{spec.Name}
		for _, name := range lockNames() {
			xs := times[spec.Name][name]
			row = append(row, meanVar(xs))
			perLockAll[name] = append(perLockAll[name], stats.Summarize(xs).Mean)
		}
		t.AddRow(row...)
	}
	for _, name := range lockNames() {
		m := stats.Summarize(perLockAll[name]).Mean
		averages = append(averages, m)
		avgRow = append(avgRow, stats.F(m, 2))
	}
	_ = averages
	t.AddRow(avgRow...)
	return []*stats.Table{t}
}

// Table6 reports per-application local/global traffic normalized to
// TATAS_EXP, with TATAS_EXP's absolute transaction count (millions) in
// parentheses.
func Table6(o Options) []*stats.Table {
	_, traffic := table5Data(o)
	cols := append([]string{"Program"}, lockNames()...)
	t := stats.NewTable("Table 6: normalized traffic (local/global); TATAS_EXP absolute in millions", cols...)
	for _, spec := range apps.Specs() {
		base := traffic[spec.Name]["TATAS_EXP"]
		row := []string{spec.Name}
		for _, name := range lockNames() {
			v := traffic[spec.Name][name]
			cell := fmt.Sprintf("%s / %s",
				stats.F(v[0]/base[0], 2), stats.F(v[1]/base[1], 2))
			if name == "TATAS_EXP" {
				cell += fmt.Sprintf(" (%.1fM/%.1fM)", base[0]/1e6, base[1]/1e6)
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// Fig6 reports speedup normalized to TATAS_EXP for the five algorithms
// the paper plots.
func Fig6(o Options) []*stats.Table {
	times, _ := table5Data(o)
	plotted := []string{"TATAS", "TATAS_EXP", "MCS", "CLH", "HBO_GT_SD"}
	cols := append([]string{"Program"}, plotted...)
	t := stats.NewTable("Figure 6: speedup normalized to TATAS_EXP, 28-processor runs", cols...)
	for _, spec := range apps.Specs() {
		base := stats.Summarize(times[spec.Name]["TATAS_EXP"]).Mean
		row := []string{spec.Name}
		for _, name := range plotted {
			m := stats.Summarize(times[spec.Name][name]).Mean
			row = append(row, stats.F(base/m, 2))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// fig7Procs returns the processor counts swept for Raytrace speedup.
func fig7Procs(o Options) []int {
	if o.Quick {
		return []int{1, 8, 28}
	}
	return []int{1, 2, 4, 8, 12, 16, 20, 24, 28}
}

// Fig7 reports Raytrace speedup (T1/Tp) against processor count.
func Fig7(o Options) []*stats.Table {
	scale := o.scale()
	spec := apps.SpecByName("Raytrace")
	cols := append([]string{"Processors"}, lockNames()...)
	t := stats.NewTable("Figure 7: speedup for Raytrace", cols...)
	base := map[string]float64{}
	for _, name := range lockNames() {
		base[name] = appRun(spec, name, 1, scale, 1, false, 0).Seconds
	}
	for _, p := range fig7Procs(o) {
		row := []string{fmt.Sprint(p)}
		for _, name := range lockNames() {
			r := appRun(spec, name, p, scale, uint64(p), false, 0)
			row = append(row, stats.F(base[name]/r.Seconds, 2))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}
