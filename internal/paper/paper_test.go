package paper

import "testing"

func TestAllTablesCoverEveryLock(t *testing.T) {
	if len(LockOrder) != 8 {
		t.Fatalf("LockOrder has %d locks", len(LockOrder))
	}
	for _, l := range LockOrder {
		if _, ok := Table1[l]; !ok {
			t.Errorf("Table1 missing %s", l)
		}
		if _, ok := Table2[l]; !ok {
			t.Errorf("Table2 missing %s", l)
		}
		if _, ok := Table4[l]; !ok {
			t.Errorf("Table4 missing %s", l)
		}
		if _, ok := Table4Variance[l]; !ok {
			t.Errorf("Table4Variance missing %s", l)
		}
		if _, ok := Table5Average[l]; !ok {
			t.Errorf("Table5Average missing %s", l)
		}
	}
}

func TestAppTablesConsistent(t *testing.T) {
	if len(Apps) != 7 {
		t.Fatalf("Apps has %d entries", len(Apps))
	}
	for _, app := range Apps {
		row5, ok := Table5[app]
		if !ok {
			t.Fatalf("Table5 missing %s", app)
		}
		row6, ok := Table6[app]
		if !ok {
			t.Fatalf("Table6 missing %s", app)
		}
		if _, ok := Table3[app]; !ok {
			t.Fatalf("Table3 missing %s", app)
		}
		for _, l := range LockOrder {
			if _, ok := row5[l]; !ok {
				t.Errorf("Table5[%s] missing %s", app, l)
			}
			if _, ok := row6[l]; !ok {
				t.Errorf("Table6[%s] missing %s", app, l)
			}
		}
	}
}

func TestKeyFactsFromTheText(t *testing.T) {
	// Cross-checks against claims made in the paper's prose.
	if Table1["RH"][2] < 2*Table1["HBO"][2] {
		t.Error("RH remote handover should be ~2x HBO (two remote transactions)")
	}
	// Queue locks are unusable at 30 CPUs.
	if Table4["MCS"][2] >= 0 || Table4["CLH"][2] >= 0 {
		t.Error("MCS/CLH 30-CPU entries should be '> 200 s' sentinels")
	}
	// Radiosity N/A for queue locks.
	if Table5["Radiosity"]["MCS"] >= 0 || Table5["Radiosity"]["CLH"] >= 0 {
		t.Error("Radiosity should be N/A for queue locks")
	}
	// NUCA-aware locks win the Table 5 average; HBO_GT_SD is best.
	for _, l := range LockOrder {
		if l == "HBO_GT_SD" {
			continue
		}
		if Table5Average["HBO_GT_SD"] >= Table5Average[l] {
			t.Errorf("HBO_GT_SD average %.2f not below %s %.2f",
				Table5Average["HBO_GT_SD"], l, Table5Average[l])
		}
	}
	// Global traffic reduced by a factor of 15 vs TATAS (paper text):
	// 4.70 / 0.30 ≈ 15.7.
	ratio := Table2["TATAS"][1] / Table2["HBO"][1]
	if ratio < 14 || ratio > 17 {
		t.Errorf("TATAS/HBO global traffic ratio %.1f, text says ~15", ratio)
	}
}
