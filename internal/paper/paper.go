// Package paper records the published numbers from Radović & Hagersten
// (HPCA 2003) as structured data, so the harness can print measured
// results side by side with the paper's and compute deltas — the
// executable form of EXPERIMENTS.md.
package paper

// LockOrder is the paper's algorithm order, shared by all tables.
var LockOrder = []string{"TATAS", "TATAS_EXP", "MCS", "CLH", "RH", "HBO", "HBO_GT", "HBO_GT_SD"}

// Table1 holds the uncontested acquire-release latencies in ns:
// [same processor, same node, remote node].
var Table1 = map[string][3]float64{
	"TATAS":     {150, 660, 2050},
	"TATAS_EXP": {143, 613, 2070},
	"MCS":       {210, 732, 2120},
	"CLH":       {234, 806, 2630},
	"RH":        {198, 672, 4480},
	"HBO":       {152, 652, 2010},
	"HBO_GT":    {152, 643, 2010},
	"HBO_GT_SD": {149, 638, 2010},
}

// Table2 holds the normalized [local, global] transaction counts for
// the new microbenchmark (critical work 1500, 28 processors). The
// paper's TATAS_EXP absolutes: 15.1M local, 8.9M global.
var Table2 = map[string][2]float64{
	"TATAS":     {4.41, 4.70},
	"TATAS_EXP": {1.00, 1.00},
	"MCS":       {0.53, 0.65},
	"CLH":       {0.54, 0.63},
	"RH":        {0.54, 0.28},
	"HBO":       {0.60, 0.30},
	"HBO_GT":    {0.60, 0.30},
	"HBO_GT_SD": {0.61, 0.29},
}

// Table2AbsoluteMillions is TATAS_EXP's absolute transaction counts
// [local, global] in millions.
var Table2AbsoluteMillions = [2]float64{15.1, 8.9}

// Table4 holds Raytrace execution times in seconds for [1, 28, 30]
// CPUs; a negative entry marks the paper's "> 200 s".
var Table4 = map[string][3]float64{
	"TATAS":     {5.02, 2.90, 2.70},
	"TATAS_EXP": {5.26, 1.71, 2.05},
	"MCS":       {5.05, 1.41, -1},
	"CLH":       {5.30, 1.38, -1},
	"RH":        {5.08, 0.62, 0.68},
	"HBO":       {5.00, 0.77, 0.78},
	"HBO_GT":    {5.02, 0.70, 0.75},
	"HBO_GT_SD": {5.02, 0.72, 0.80},
}

// Table4Variance holds the variance the paper reports in parentheses
// for the [28, 30] CPU columns (NaN-free: -1 where the paper shows
// "> 200 s").
var Table4Variance = map[string][2]float64{
	"TATAS":     {0.91, 0.45},
	"TATAS_EXP": {0.18, 0.26},
	"MCS":       {0.28, -1},
	"CLH":       {0.32, -1},
	"RH":        {0.01, 0.00},
	"HBO":       {0.01, 0.01},
	"HBO_GT":    {0.01, 0.00},
	"HBO_GT_SD": {0.01, 0.02},
}

// Table5 holds the 28-processor application execution times in seconds
// (mean only; the paper's variance is omitted here). A negative entry
// marks the paper's "N/A" (Radiosity does not execute correctly with
// software queuing locks).
var Table5 = map[string]map[string]float64{
	"Barnes": {
		"TATAS": 1.54, "TATAS_EXP": 1.43, "MCS": 1.83, "CLH": 1.54,
		"RH": 1.54, "HBO": 1.50, "HBO_GT": 1.69, "HBO_GT_SD": 1.44,
	},
	"Cholesky": {
		"TATAS": 2.31, "TATAS_EXP": 2.04, "MCS": 2.09, "CLH": 2.25,
		"RH": 2.23, "HBO": 2.06, "HBO_GT": 2.34, "HBO_GT_SD": 2.13,
	},
	"FMM": {
		"TATAS": 4.84, "TATAS_EXP": 4.19, "MCS": 4.33, "CLH": 4.46,
		"RH": 4.27, "HBO": 4.37, "HBO_GT": 4.59, "HBO_GT_SD": 4.27,
	},
	"Radiosity": {
		"TATAS": 1.66, "TATAS_EXP": 1.75, "MCS": -1, "CLH": -1,
		"RH": 1.44, "HBO": 1.45, "HBO_GT": 1.68, "HBO_GT_SD": 1.51,
	},
	"Raytrace": {
		"TATAS": 2.90, "TATAS_EXP": 1.71, "MCS": 1.41, "CLH": 1.38,
		"RH": 0.62, "HBO": 0.77, "HBO_GT": 0.70, "HBO_GT_SD": 0.72,
	},
	"Volrend": {
		"TATAS": 1.70, "TATAS_EXP": 1.57, "MCS": 1.48, "CLH": 1.75,
		"RH": 1.61, "HBO": 1.68, "HBO_GT": 1.33, "HBO_GT_SD": 1.24,
	},
	"Water-Nsq": {
		"TATAS": 2.37, "TATAS_EXP": 2.25, "MCS": 2.20, "CLH": 2.45,
		"RH": 2.21, "HBO": 2.14, "HBO_GT": 2.09, "HBO_GT_SD": 2.14,
	},
}

// Table5Average holds the paper's per-lock averages across the seven
// programs.
var Table5Average = map[string]float64{
	"TATAS": 2.47, "TATAS_EXP": 2.13, "MCS": 2.22, "CLH": 2.31,
	"RH": 1.99, "HBO": 2.00, "HBO_GT": 2.06, "HBO_GT_SD": 1.92,
}

// Table6 holds normalized [local, global] traffic per application for
// 28-processor runs; negative entries mark "N/A".
var Table6 = map[string]map[string][2]float64{
	"Barnes": {
		"TATAS": {1.01, 0.67}, "TATAS_EXP": {1.00, 1.00}, "MCS": {1.01, 0.66},
		"CLH": {1.14, 0.78}, "RH": {1.02, 0.60}, "HBO": {0.92, 0.61},
		"HBO_GT": {0.92, 0.62}, "HBO_GT_SD": {0.97, 0.62},
	},
	"Cholesky": {
		"TATAS": {0.99, 1.00}, "TATAS_EXP": {1.00, 1.00}, "MCS": {0.96, 0.87},
		"CLH": {0.97, 0.90}, "RH": {0.95, 0.87}, "HBO": {0.96, 0.90},
		"HBO_GT": {0.96, 0.90}, "HBO_GT_SD": {0.97, 0.91},
	},
	"FMM": {
		"TATAS": {1.09, 1.17}, "TATAS_EXP": {1.00, 1.00}, "MCS": {0.99, 0.83},
		"CLH": {0.97, 0.80}, "RH": {1.00, 0.83}, "HBO": {0.96, 0.84},
		"HBO_GT": {0.99, 0.89}, "HBO_GT_SD": {1.03, 0.98},
	},
	"Radiosity": {
		"TATAS": {1.06, 1.08}, "TATAS_EXP": {1.00, 1.00}, "MCS": {-1, -1},
		"CLH": {-1, -1}, "RH": {1.00, 0.85}, "HBO": {1.01, 0.89},
		"HBO_GT": {0.92, 0.82}, "HBO_GT_SD": {0.99, 0.98},
	},
	"Raytrace": {
		"TATAS": {1.15, 1.24}, "TATAS_EXP": {1.00, 1.00}, "MCS": {0.91, 0.84},
		"CLH": {1.04, 0.78}, "RH": {0.86, 0.49}, "HBO": {0.83, 0.58},
		"HBO_GT": {0.82, 0.58}, "HBO_GT_SD": {0.81, 0.64},
	},
	"Volrend": {
		"TATAS": {1.02, 1.07}, "TATAS_EXP": {1.00, 1.00}, "MCS": {1.02, 1.05},
		"CLH": {1.04, 1.17}, "RH": {1.01, 1.03}, "HBO": {1.01, 0.87},
		"HBO_GT": {1.02, 0.87}, "HBO_GT_SD": {1.01, 0.86},
	},
	"Water-Nsq": {
		"TATAS": {1.01, 1.03}, "TATAS_EXP": {1.00, 1.00}, "MCS": {1.00, 1.04},
		"CLH": {1.07, 1.10}, "RH": {1.03, 1.02}, "HBO": {0.98, 0.97},
		"HBO_GT": {0.96, 0.98}, "HBO_GT_SD": {0.99, 0.98},
	},
}

// Table3 holds the SPLASH-2 lock statistics [total locks, lock calls]
// for the studied programs.
var Table3 = map[string][2]int{
	"Barnes":    {130, 69193},
	"Cholesky":  {67, 74284},
	"FMM":       {2052, 80528},
	"Radiosity": {3975, 295627},
	"Raytrace":  {35, 366450},
	"Volrend":   {67, 38456},
	"Water-Nsq": {2206, 112415},
}

// Fig8Spread holds the completion-time spreads the paper quotes in
// prose (queue locks 2.1%, TATAS_EXP 28.9%, HBO_GT_SD 5.6%).
var Fig8Spread = map[string]float64{
	"MCS":       2.1,
	"CLH":       2.1,
	"TATAS_EXP": 28.9,
	"HBO_GT_SD": 5.6,
}

// Apps lists the studied applications in the paper's order.
var Apps = []string{"Barnes", "Cholesky", "FMM", "Radiosity", "Raytrace", "Volrend", "Water-Nsq"}
