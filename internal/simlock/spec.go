package simlock

import (
	"repro/internal/lockspec"
	"repro/internal/machine"
	"repro/internal/sim"
)

// specLock runs a lockspec.Spec on the simulated machine: every Env
// operation maps onto machine.Proc word accesses, so the spec body pays
// simulated coherence traffic exactly like the hand-written locks it
// replaced. Unbounded waits park on the watched cache line (the
// machine's event-driven spin); timed waits poll on the fixed
// lockspec.TimedPollUnits quantum, because a parked spinner may only
// wake long after its deadline.
type specLock struct {
	spec    *lockspec.Spec
	tun     Tuning
	nodes   int
	threads int
	// addrs[w][i] is the simulated word backing element i of declared
	// word w, in lockspec.Ref's flattened addressing. Allocation order
	// is part of the lock's observable identity (addresses seed the
	// machine's deterministic schedule), so FromSpec allocates words in
	// declaration order, elements in index order.
	addrs   [][]machine.Addr
	scratch [][4]uint64
}

// FromSpec instantiates a spec-backed algorithm on machine m. home is
// the node whose memory backs lock-scoped words; per-node words live in
// their node and per-thread words in the owning thread's node (cpus
// maps thread ids to CPUs, as in Factory).
func FromSpec(spec *lockspec.Spec, m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	if spec == nil || !spec.Backed() {
		panic("simlock: FromSpec needs a spec-backed algorithm")
	}
	nodes := m.Config().Nodes
	if spec.MaxNodes > 0 && nodes > spec.MaxNodes {
		panic("simlock: " + spec.Name + " supports fewer nodes than the machine has")
	}
	l := &specLock{
		spec:    spec,
		tun:     tun,
		nodes:   nodes,
		threads: len(cpus),
		addrs:   make([][]machine.Addr, len(spec.Words)),
		scratch: make([][4]uint64, len(cpus)),
	}
	for wi, w := range spec.Words {
		as := make([]machine.Addr, w.Elems(nodes, len(cpus)))
		k := 0
		per := w.Elems(1, 1) // elements per unit
		switch w.Scope {
		case lockspec.ScopePerNode:
			for n := 0; n < nodes; n++ {
				for j := 0; j < per; j++ {
					as[k] = m.Alloc(n, 1)
					k++
				}
			}
		case lockspec.ScopePerThread:
			for _, cpu := range cpus {
				for j := 0; j < per; j++ {
					as[k] = m.Alloc(m.NodeOf(cpu), 1)
					k++
				}
			}
		default:
			for j := 0; j < per; j++ {
				as[k] = m.Alloc(home, 1)
				k++
			}
		}
		if w.Init != 0 {
			for _, a := range as {
				m.Poke(a, w.Init)
			}
		}
		l.addrs[wi] = as
	}

	// Wrap in the capability combination the spec declares, so interface
	// assertions (TimedLock, Quiescer, WordInjector) keep meaning what
	// they meant for the hand-written locks.
	timed, quiesce, inject := spec.Timed, spec.Quiesce != nil, spec.Inject != nil
	switch {
	case inject && !quiesce:
		// No wrapper for injection sans quiescence; add one if a spec
		// ever wants it rather than silently dropping the capability.
		panic("simlock: " + spec.Name + " declares Inject without Quiesce")
	case timed && quiesce && inject:
		return specTQI{specTQ{specT{l}}}
	case timed && quiesce:
		return specTQ{specT{l}}
	case timed:
		return specT{l}
	case quiesce && inject:
		return specQI{specQ{l}}
	case quiesce:
		return specQ{l}
	default:
		return l
	}
}

func (l *specLock) Name() string { return l.spec.Name }

func (l *specLock) wordAddr(w, i int) machine.Addr { return l.addrs[w][i] }

func (l *specLock) Acquire(p *machine.Proc, tid int) {
	l.spec.Acquire(&simEnv{l: l, p: p, tid: tid}, l.tun)
}

func (l *specLock) Release(p *machine.Proc, tid int) {
	l.spec.Release(&simEnv{l: l, p: p, tid: tid}, l.tun)
}

func (l *specLock) acquireTimeout(p *machine.Proc, tid int, d sim.Time) bool {
	if d <= 0 {
		l.Acquire(p, tid)
		return true
	}
	return l.spec.Acquire(&simEnv{l: l, p: p, tid: tid, deadline: p.Now() + d}, l.tun)
}

func (l *specLock) quiescent(m *machine.Machine) error {
	return l.spec.Quiesce(simPeeker{l: l, m: m})
}

func (l *specLock) injectWord(m *machine.Machine, v uint64) {
	m.Poke(l.addrs[l.spec.Inject.W][l.spec.Inject.I], v)
}

// Capability wrappers. Embedding exposes every promoted method, so each
// wrapper only adds the interfaces its layer introduces.
type specT struct{ *specLock }

func (l specT) AcquireTimeout(p *machine.Proc, tid int, d sim.Time) bool {
	return l.acquireTimeout(p, tid, d)
}

type specQ struct{ *specLock }

func (l specQ) Quiescent(m *machine.Machine) error { return l.quiescent(m) }

type specQI struct{ specQ }

func (l specQI) InjectWord(m *machine.Machine, v uint64) { l.injectWord(m, v) }

type specTQ struct{ specT }

func (l specTQ) Quiescent(m *machine.Machine) error { return l.quiescent(m) }

type specTQI struct{ specTQ }

func (l specTQI) InjectWord(m *machine.Machine, v uint64) { l.injectWord(m, v) }

// simPeeker is the zero-cost quiescence view.
type simPeeker struct {
	l *specLock
	m *machine.Machine
}

func (q simPeeker) Peek(w, i int) uint64 { return q.m.Peek(q.l.addrs[w][i]) }
func (q simPeeker) Nodes() int           { return q.l.nodes }
func (q simPeeker) Threads() int         { return q.l.threads }

// simEnv is the per-acquire execution environment. deadline 0 means
// unbounded. Deadline checks read only the simulated clock, so a spec
// body's unbounded path issues the exact event sequence of the
// hand-written lock it replaced.
type simEnv struct {
	l        *specLock
	p        *machine.Proc
	tid      int
	deadline sim.Time
}

func (e *simEnv) addr(w, i int) machine.Addr { return e.l.addrs[w][i] }

func (e *simEnv) TID() int     { return e.tid }
func (e *simEnv) Node() int    { return e.p.Node() }
func (e *simEnv) Nodes() int   { return e.l.nodes }
func (e *simEnv) Threads() int { return e.l.threads }

// Tag is the first declared word's address — never zero (machine.Alloc
// starts above zero), unique per lock, and exactly the value the
// hand-written HBO family published in is_spinning.
func (e *simEnv) Tag() uint64 { return uint64(e.l.addrs[0][0]) }

func (e *simEnv) Load(w, i int) uint64     { return e.p.Load(e.addr(w, i)) }
func (e *simEnv) Store(w, i int, v uint64) { e.p.Store(e.addr(w, i), v) }
func (e *simEnv) Swap(w, i int, v uint64) uint64 {
	return e.p.Swap(e.addr(w, i), v)
}
func (e *simEnv) TAS(w, i int) uint64 { return e.p.TAS(e.addr(w, i)) }
func (e *simEnv) CAS(w, i int, expect, v uint64) uint64 {
	return e.p.CAS(e.addr(w, i), expect, v)
}
func (e *simEnv) CASOnce(w, i int, expect, v uint64) bool {
	return e.p.CAS(e.addr(w, i), expect, v) == expect
}

// FetchInc is the cas-loop idiom available on SPARC.
func (e *simEnv) FetchInc(w, i int) uint64 {
	a := e.addr(w, i)
	for {
		v := e.p.Load(a)
		if e.p.CAS(a, v, v+1) == v {
			return v
		}
	}
}

func (e *simEnv) HolderInc(w, i int) {
	a := e.addr(w, i)
	v := e.p.Load(a)
	e.p.Store(a, v+1)
}

func (e *simEnv) Delay(units int) { e.p.Delay(units) }

func (e *simEnv) Backoff(b *int, factor, cap int) {
	backoff(e.p, b, factor, cap)
}

func (e *simEnv) Expired() bool {
	return e.deadline != 0 && e.p.Now() >= e.deadline
}

func (e *simEnv) AwaitZero(w, i int) bool {
	a := e.addr(w, i)
	if e.deadline == 0 {
		e.p.SpinUntilZero(a)
		return true
	}
	for e.p.Load(a) != 0 {
		if e.p.Now() >= e.deadline {
			return false
		}
		e.p.Delay(lockspec.TimedPollUnits)
	}
	return true
}

func (e *simEnv) AwaitWhile(w, i int, v uint64) (uint64, bool) {
	a := e.addr(w, i)
	if e.deadline == 0 {
		return e.p.SpinWhileEquals(a, v), true
	}
	for {
		cur := e.p.Load(a)
		if cur != v {
			return cur, true
		}
		if e.p.Now() >= e.deadline {
			return 0, false
		}
		e.p.Delay(lockspec.TimedPollUnits)
	}
}

func (e *simEnv) AwaitLink(w, i int) uint64 {
	return e.p.SpinUntil(e.addr(w, i), func(v uint64) bool { return v != 0 })
}

func (e *simEnv) ThrottleWait(w, i int, v uint64) bool {
	a := e.addr(w, i)
	if e.deadline == 0 {
		e.p.SpinWhileEquals(a, v)
		return true
	}
	for e.p.Load(a) == v {
		if e.p.Now() >= e.deadline {
			return false
		}
		e.p.Delay(lockspec.TimedPollUnits)
	}
	return true
}

func (e *simEnv) GrantWait(w, i int, my uint64) bool {
	a := e.addr(w, i)
	if e.deadline == 0 {
		// Test-and-test&set style wait: spin on a cached copy and
		// re-read after each release's invalidation (each release bumps
		// the word, so every waiter re-reads once per handover — the
		// ticket lock's known O(waiters) refill cost per release).
		e.p.SpinUntil(a, func(v uint64) bool { return v == my })
		return true
	}
	for {
		if e.p.Load(a) == my {
			return true
		}
		if e.p.Now() >= e.deadline {
			return false
		}
		e.p.Delay(lockspec.TimedPollUnits)
	}
}

func (e *simEnv) SlowPath() {}

func (e *simEnv) Scratch() *[4]uint64 { return &e.l.scratch[e.tid] }
