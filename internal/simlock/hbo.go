package simlock

// The HBO family (HBO, HBO_GT, HBO_GT_SD) is spec-backed: the paper's
// Figure 1/2 protocol lives once in internal/lockspec and instantiates
// here through FromSpec. What remains in this file are the lock-word
// encodings, shared with the hand-written hierarchical variant
// (hbohier.go).

// Lock-word values for the HBO family. The paper cas-es the acquiring
// thread's node_id into the lock; we shift node ids by one so FREE can
// be zero.
const hboFree = 0

func hboNodeVal(node int) uint64 { return uint64(node) + 1 }

// The per-node is_spinning word holds the lock's address while a node
// winner is remote-spinning (blocking its neighbors) and hboDummy
// otherwise. Addresses from machine.Alloc are never zero.
const hboDummy = 0
