package simlock

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Lock-word values for the HBO family. The paper cas-es the acquiring
// thread's node_id into the lock; we shift node ids by one so FREE can
// be zero.
const hboFree = 0

func hboNodeVal(node int) uint64 { return uint64(node) + 1 }

// The per-node is_spinning word holds the lock's address while a node
// winner is remote-spinning (blocking its neighbors) and hboDummy
// otherwise. Addresses from machine.Alloc are never zero.
const hboDummy = 0

// hbo implements the paper's Figure 1. mode selects plain HBO (the
// emphasized GT lines skipped), HBO_GT (global-traffic throttling via
// per-node is_spinning words), or HBO_GT_SD (GT plus the node-centric
// starvation detection of Figure 2).
type hbo struct {
	name       string
	mode       hboMode
	addr       machine.Addr
	isSpinning []machine.Addr // one word per node (GT modes)
	tun        Tuning
	nodes      int
}

type hboMode int

const (
	modeHBO hboMode = iota
	modeGT
	modeGTSD
)

func newHBOVariant(name string, mode hboMode) Factory {
	return func(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
		l := &hbo{
			name:  name,
			mode:  mode,
			addr:  m.Alloc(home, 1),
			tun:   tun,
			nodes: m.Config().Nodes,
		}
		if mode != modeHBO {
			l.isSpinning = make([]machine.Addr, l.nodes)
			for n := range l.isSpinning {
				// "not necessarily allocated in the local memory" — we
				// do home each node's throttle word locally, which is
				// the intended deployment.
				l.isSpinning[n] = m.Alloc(n, 1)
			}
		}
		return l
	}
}

var (
	newHBO     = newHBOVariant("HBO", modeHBO)
	newHBOGT   = newHBOVariant("HBO_GT", modeGT)
	newHBOGTSD = newHBOVariant("HBO_GT_SD", modeGTSD)
)

func (l *hbo) Name() string { return l.name }

// Acquire is hbo_acquire (Figure 1, lines 1–10).
func (l *hbo) Acquire(p *machine.Proc, tid int) {
	l.acquire(p, 0)
}

// AcquireTimeout is the timed path: the same protocol with a deadline
// checked at backoff boundaries (deadline checks cost no simulated
// time, so the unbounded path is instruction-identical to Acquire). An
// abort restores every protocol invariant: the lock word is never
// claimed, the aborting waiter's is_spinning throttle is reset to the
// dummy value — the same store the successful remote path issues — and
// any nodes the GT_SD anger logic stopped are released.
func (l *hbo) AcquireTimeout(p *machine.Proc, tid int, d sim.Time) bool {
	if d <= 0 {
		l.acquire(p, 0)
		return true
	}
	return l.acquire(p, p.Now()+d)
}

// acquire runs the protocol; deadline 0 means unbounded (always true).
func (l *hbo) acquire(p *machine.Proc, deadline sim.Time) bool {
	my := hboNodeVal(p.Node())
	if l.mode != modeHBO {
		// Line 5: while (L == is_spinning[my_node_id]) ; // spin
		if !l.waitThrottled(p, deadline) {
			return false
		}
	}
	tmp := p.CAS(l.addr, hboFree, my)
	if tmp == hboFree {
		return true // lock was free, and is now locked
	}
	return l.acquireSlowpath(p, tmp, deadline)
}

// spinWhileThrottled blocks while this node's is_spinning word names our
// lock (a neighbor is already remote-spinning on it).
func (l *hbo) spinWhileThrottled(p *machine.Proc) {
	p.SpinWhileEquals(l.isSpinning[p.Node()], uint64(l.addr))
}

// waitThrottled is spinWhileThrottled with a deadline: timed waiters
// poll (the parked spin could outlive the deadline), unbounded waiters
// keep the event-driven park.
func (l *hbo) waitThrottled(p *machine.Proc, deadline sim.Time) bool {
	if deadline == 0 {
		l.spinWhileThrottled(p)
		return true
	}
	for p.Load(l.isSpinning[p.Node()]) == uint64(l.addr) {
		if p.Now() >= deadline {
			return false
		}
		p.Delay(timedPollUnits)
	}
	return true
}

// acquireSlowpath is hbo_acquire_slowpath (Figure 1, lines 17–61), with
// the Figure 2 replacement for the GT_SD variant. The paper's goto
// start / goto restart structure maps onto the labeled outer loop.
// deadline 0 means unbounded; the deadline checks read only the clock,
// so the unbounded path issues the exact event sequence it always did.
func (l *hbo) acquireSlowpath(p *machine.Proc, tmp uint64, deadline sim.Time) bool {
	my := hboNodeVal(p.Node())
	gt := l.mode != modeHBO

	// SD state (Figure 2): per-acquire anger counter and stopped nodes.
	getAngry := 0
	angry := false
	var stopped []int

	releaseStopped := func() {
		for _, n := range stopped {
			p.Store(l.isSpinning[n], hboDummy)
		}
		stopped = stopped[:0]
	}
	expired := func() bool { return deadline != 0 && p.Now() >= deadline }

start:
	if tmp == my { // local lock (Figure 1, lines 23–36)
		b := l.tun.BackoffBase
		for {
			if expired() {
				return false // local waiters publish no auxiliary state
			}
			backoff(p, &b, l.tun.BackoffFactor, l.tun.BackoffCap)
			tmp = p.CAS(l.addr, hboFree, my)
			if tmp == hboFree {
				return true
			}
			if tmp != my {
				backoff(p, &b, l.tun.BackoffFactor, l.tun.BackoffCap)
				goto restart
			}
		}
	}

	// Remote lock (Figure 1, lines 37–52).
	{
		b := l.tun.RemoteBackoffBase
		bcap := l.tun.RemoteBackoffCap
		if gt {
			p.Store(l.isSpinning[p.Node()], uint64(l.addr))
		}
		for {
			if expired() {
				if gt {
					// Abort mirrors the successful exit: un-throttle our
					// node's neighbors and release any stopped nodes, so
					// the abandoned attempt leaves the protocol idle.
					p.Store(l.isSpinning[p.Node()], hboDummy)
					releaseStopped()
				}
				return false
			}
			backoff(p, &b, l.tun.BackoffFactor, bcap)
			tmp = p.CAS(l.addr, hboFree, my)
			if tmp == hboFree {
				if gt {
					// Release the threads from our node.
					p.Store(l.isSpinning[p.Node()], hboDummy)
					releaseStopped()
				}
				return true
			}
			if tmp == my {
				if gt {
					p.Store(l.isSpinning[p.Node()], hboDummy)
					releaseStopped()
				}
				goto restart
			}
			if l.mode == modeGTSD {
				// Figure 2, lines 57–63: the lock is still in some
				// remote node; get angry. An angry node spins more
				// frequently and stops the owning node's other
				// threads from re-acquiring.
				getAngry++
				if getAngry >= l.tun.GetAngryLimit {
					getAngry = 0
					owner := int(tmp) - 1
					// Bounds-guard the decoded owner before indexing
					// is_spinning: a corrupted lock word must not take
					// down the whole machine (twin of core/hbo.go).
					if owner >= 0 && owner < len(l.isSpinning) &&
						owner != p.Node() && !contains(stopped, owner) {
						stopped = append(stopped, owner)
						p.Store(l.isSpinning[owner], uint64(l.addr))
					}
					if !angry {
						angry = true
						b = l.tun.BackoffBase
						bcap = l.tun.BackoffCap
					}
				}
			}
		}
	}

restart:
	// Figure 1, lines 55–60. No auxiliary state is held here: both jumps
	// to restart reset is_spinning and the stopped list first.
	if gt {
		if !l.waitThrottled(p, deadline) {
			return false
		}
	}
	tmp = p.CAS(l.addr, hboFree, my)
	if tmp == hboFree {
		return true
	}
	if expired() {
		return false
	}
	goto start
}

// Release is hbo_release (Figure 1, lines 62–65).
func (l *hbo) Release(p *machine.Proc, tid int) {
	p.Store(l.addr, hboFree)
}

// InjectWord overwrites the raw lock word without simulated cost — a
// fault-injection probe for the correctness harness (internal/check),
// which feeds both HBO twins the same corrupted owner encodings and
// compares survival. Not part of the lock algorithm.
func (l *hbo) InjectWord(m *machine.Machine, v uint64) {
	m.Poke(l.addr, v)
}

// Quiescent verifies the lock's shared state is fully idle: the lock
// word is free and every per-node is_spinning word has returned to
// hboDummy (a stale GT/GT_SD store would permanently throttle a node).
// Call only when no acquires are in flight.
func (l *hbo) Quiescent(m *machine.Machine) error {
	if v := m.Peek(l.addr); v != hboFree {
		return fmt.Errorf("%s: lock word %d not free at quiescence", l.name, v)
	}
	for n, a := range l.isSpinning {
		if v := m.Peek(a); v != hboDummy {
			return fmt.Errorf("%s: is_spinning[%d] = %d at quiescence (node left throttled)",
				l.name, n, v)
		}
	}
	return nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
