package simlock

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// testMachine returns a 2-node, 4-CPUs-per-node machine.
func testMachine(seed uint64) *machine.Machine {
	cfg := machine.WildFire()
	cfg.CPUsPerNode = 4
	cfg.Seed = seed
	return machine.New(cfg)
}

// roundRobinCPUs binds threads alternately to the two nodes, as the
// paper's microbenchmarks do.
func roundRobinCPUs(m *machine.Machine, threads int) []int {
	cfg := m.Config()
	cpus := make([]int, threads)
	perNode := make([]int, cfg.Nodes)
	for t := 0; t < threads; t++ {
		n := t % cfg.Nodes
		cpus[t] = n*cfg.CPUsPerNode + perNode[n]
		perNode[n]++
	}
	return cpus
}

func TestNamesCoverAllFactories(t *testing.T) {
	if len(AllNames()) != len(factories) {
		t.Fatalf("AllNames() has %d entries, factories %d", len(AllNames()), len(factories))
	}
	for _, n := range AllNames() {
		if _, ok := factories[n]; !ok {
			t.Errorf("no factory for %q", n)
		}
	}
}

func TestNUCAAware(t *testing.T) {
	for name, want := range map[string]bool{
		"TATAS": false, "TATAS_EXP": false, "MCS": false, "CLH": false,
		"RH": true, "HBO": true, "HBO_GT": true, "HBO_GT_SD": true,
	} {
		if got := NUCAAware(name); got != want {
			t.Errorf("NUCAAware(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestUnknownLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for unknown lock name")
		}
	}()
	m := testMachine(1)
	New("BOGUS", m, 0, []int{0}, DefaultTuning())
}

// TestMutualExclusion drives every algorithm with 8 threads hammering a
// counter; any overlap in the critical section or a lost increment fails.
func TestMutualExclusion(t *testing.T) {
	const threads, iters = 8, 150
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := testMachine(7)
			cpus := roundRobinCPUs(m, threads)
			l := New(name, m, 0, cpus, DefaultTuning())
			counter := 0
			inCS := 0
			for tid := 0; tid < threads; tid++ {
				tid := tid
				m.Spawn(cpus[tid], func(p *machine.Proc) {
					for i := 0; i < iters; i++ {
						l.Acquire(p, tid)
						inCS++
						if inCS != 1 {
							t.Errorf("%s: %d threads in critical section", name, inCS)
						}
						counter++
						p.Work(100)
						inCS--
						l.Release(p, tid)
						p.Work(sim.Time(50 * (tid + 1)))
					}
				})
			}
			m.Run()
			if counter != threads*iters {
				t.Fatalf("%s: counter = %d, want %d", name, counter, threads*iters)
			}
		})
	}
}

// TestUncontestedReacquire checks the fast path: a single thread can
// acquire and release repeatedly, cheaply, with every algorithm.
func TestUncontestedReacquire(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := testMachine(1)
			cpus := []int{0}
			l := New(name, m, 0, cpus, DefaultTuning())
			var elapsed sim.Time
			m.Spawn(0, func(p *machine.Proc) {
				l.Acquire(p, 0) // first acquire: cold misses
				l.Release(p, 0)
				t0 := p.Now()
				for i := 0; i < 10; i++ {
					l.Acquire(p, 0)
					l.Release(p, 0)
				}
				elapsed = (p.Now() - t0) / 10
			})
			m.Run()
			// Warm re-acquisition must not involve remote traffic:
			// everything under ~1µs per pair.
			if elapsed > 1000 {
				t.Fatalf("%s: warm acquire-release pair costs %v", name, elapsed)
			}
		})
	}
}

// TestSingleNodeMachine ensures every algorithm also runs on a plain SMP
// (1 node), where NUCA awareness degenerates gracefully.
func TestSingleNodeMachine(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := machine.E6000()
			cfg.CPUsPerNode = 4
			cfg.Seed = 3
			m := machine.New(cfg)
			cpus := []int{0, 1, 2, 3}
			l := New(name, m, 0, cpus, DefaultTuning())
			counter := 0
			for tid := 0; tid < 4; tid++ {
				tid := tid
				m.Spawn(cpus[tid], func(p *machine.Proc) {
					for i := 0; i < 50; i++ {
						l.Acquire(p, tid)
						counter++
						l.Release(p, tid)
						p.Work(100)
					}
				})
			}
			m.Run()
			if counter != 200 {
				t.Fatalf("%s: counter = %d, want 200", name, counter)
			}
		})
	}
}

// TestHBONodeAffinity: with heavy contention from both nodes, HBO should
// hand the lock within a node far more often than across nodes.
func TestHBONodeAffinity(t *testing.T) {
	for _, name := range []string{"HBO", "HBO_GT", "HBO_GT_SD"} {
		name := name
		t.Run(name, func(t *testing.T) {
			handoffs, nodeSwitches := runHandoffCount(t, name, 8, 120)
			ratio := float64(nodeSwitches) / float64(handoffs)
			if ratio > 0.25 {
				t.Errorf("%s: node handoff ratio %.2f, want < 0.25", name, ratio)
			}
		})
	}
}

// TestQueueLocksHandoffFairly: MCS/CLH serve FIFO, so with round-robin
// thread placement and de-correlated arrival times roughly half the
// handovers cross nodes. (With lock-step arrivals, same-node threads
// "queue up after each other" — the artifact the paper observes in its
// traditional microbenchmark — so this test randomizes the think time.)
func TestQueueLocksHandoffFairly(t *testing.T) {
	for _, name := range []string{"MCS", "CLH"} {
		name := name
		t.Run(name, func(t *testing.T) {
			m := testMachine(11)
			cpus := roundRobinCPUs(m, 8)
			l := New(name, m, 0, cpus, DefaultTuning())
			lastNode, handoffs, switches := -1, 0, 0
			for tid := 0; tid < 8; tid++ {
				tid := tid
				m.Spawn(cpus[tid], func(p *machine.Proc) {
					rng := sim.NewRNG(uint64(tid) + 100)
					for i := 0; i < 150; i++ {
						l.Acquire(p, tid)
						if lastNode != -1 {
							handoffs++
							if lastNode != p.Node() {
								switches++
							}
						}
						lastNode = p.Node()
						p.Work(500)
						l.Release(p, tid)
						p.Work(2000 + rng.Timen(4000))
					}
				})
			}
			m.Run()
			ratio := float64(switches) / float64(handoffs)
			// FIFO order with round-robin placement should cross nodes
			// often; some same-node clumping survives randomization
			// (the paper sees the same artifact), so the bound is loose
			// but still an order of magnitude above the NUCA locks'.
			if ratio < 0.2 {
				t.Errorf("%s: node handoff ratio %.2f, want >= 0.2", name, ratio)
			}
		})
	}
}

// runHandoffCount runs a contended loop and counts lock handovers that
// crossed node boundaries.
func runHandoffCount(t *testing.T, name string, threads, iters int) (handoffs, nodeSwitches int) {
	t.Helper()
	m := testMachine(11)
	cpus := roundRobinCPUs(m, threads)
	l := New(name, m, 0, cpus, DefaultTuning())
	lastNode := -1
	for tid := 0; tid < threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			for i := 0; i < iters; i++ {
				l.Acquire(p, tid)
				if lastNode != -1 {
					handoffs++
					if lastNode != p.Node() {
						nodeSwitches++
					}
				}
				lastNode = p.Node()
				p.Work(500)
				l.Release(p, tid)
				p.Work(200)
			}
		})
	}
	m.Run()
	if handoffs == 0 {
		t.Fatal("no handoffs recorded")
	}
	return handoffs, nodeSwitches
}

// TestHBOGTThrottlesGlobalTraffic: under cross-node contention HBO_GT's
// throttling keeps only the node winner spinning remotely. The paper's
// own Table 2 measures HBO and HBO_GT at the same normalized global
// traffic (0.30), so the assertion here is that GT costs at most a small
// premium over HBO while both stay far below TATAS.
func TestHBOGTThrottlesGlobalTraffic(t *testing.T) {
	global := func(name string) uint64 {
		m := testMachine(13)
		cpus := roundRobinCPUs(m, 8)
		l := New(name, m, 0, cpus, DefaultTuning())
		for tid := 0; tid < 8; tid++ {
			tid := tid
			m.Spawn(cpus[tid], func(p *machine.Proc) {
				for i := 0; i < 100; i++ {
					l.Acquire(p, tid)
					p.Work(2000) // long CS: remote spinners burn CAS
					l.Release(p, tid)
				}
			})
		}
		m.Run()
		return m.Stats().Global
	}
	hbo, gt, tatas := global("HBO"), global("HBO_GT"), global("TATAS")
	if float64(gt) > 1.25*float64(hbo) {
		t.Fatalf("HBO_GT global traffic %d far above HBO %d", gt, hbo)
	}
	if gt >= tatas || hbo >= tatas {
		t.Fatalf("NUCA locks (HBO %d, HBO_GT %d) not below TATAS %d", hbo, gt, tatas)
	}
}

// TestHBOGTSDReleasesStoppedNodes: after a starvation-detection episode
// the stopped node's is_spinning word must be reset so its threads can
// proceed; the run completing at all is the main assertion.
func TestHBOGTSDReleasesStoppedNodes(t *testing.T) {
	m := testMachine(17)
	cpus := roundRobinCPUs(m, 8)
	tun := DefaultTuning()
	tun.GetAngryLimit = 2 // anger quickly
	l := New("HBO_GT_SD", m, 0, cpus, tun)
	counter := 0
	for tid := 0; tid < 8; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			for i := 0; i < 100; i++ {
				l.Acquire(p, tid)
				counter++
				p.Work(1500)
				l.Release(p, tid)
			}
		})
	}
	m.Run()
	if counter != 800 {
		t.Fatalf("counter = %d, want 800 (a stopped node stayed stopped?)", counter)
	}
}

// TestHBOGTSDBoundsNodeResidency: with starvation detection, a remote
// node must not be locked out arbitrarily long. Compare the longest
// consecutive same-node run under HBO vs HBO_GT_SD.
func TestHBOGTSDBoundsNodeResidency(t *testing.T) {
	longestRun := func(name string, tun Tuning) int {
		m := testMachine(23)
		cpus := roundRobinCPUs(m, 8)
		l := New(name, m, 0, cpus, tun)
		last, run, longest := -1, 0, 0
		for tid := 0; tid < 8; tid++ {
			tid := tid
			m.Spawn(cpus[tid], func(p *machine.Proc) {
				for i := 0; i < 150; i++ {
					l.Acquire(p, tid)
					if p.Node() == last {
						run++
					} else {
						run = 1
						last = p.Node()
					}
					if run > longest {
						longest = run
					}
					p.Work(300)
					l.Release(p, tid)
				}
			})
		}
		m.Run()
		return longest
	}
	tun := DefaultTuning()
	tun.GetAngryLimit = 4
	plain := longestRun("HBO", DefaultTuning())
	sd := longestRun("HBO_GT_SD", tun)
	if sd > plain*2 {
		t.Fatalf("HBO_GT_SD longest same-node run %d vs HBO %d: SD is not bounding residency", sd, plain)
	}
}

// TestRHLocalHandover: RH hands the lock to local waiters via L_FREE.
func TestRHLocalHandover(t *testing.T) {
	handoffs, switches := runHandoffCount(t, "RH", 8, 120)
	ratio := float64(switches) / float64(handoffs)
	if ratio > 0.3 {
		t.Errorf("RH node handoff ratio %.2f, want < 0.3", ratio)
	}
}

func TestRHRejectsThreeNodes(t *testing.T) {
	cfg := machine.WildFire()
	cfg.Nodes = 3
	cfg.CPUsPerNode = 2
	m := machine.New(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for 3-node RH")
		}
	}()
	New("RH", m, 0, []int{0}, DefaultTuning())
}

// TestHBOWorksOnFourNodes: the HBO family generalizes to >2 nodes
// (hierarchical NUCA); check mutual exclusion holds there too.
func TestHBOWorksOnFourNodes(t *testing.T) {
	for _, name := range []string{"HBO", "HBO_GT", "HBO_GT_SD"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := machine.WildFire()
			cfg.Nodes = 4
			cfg.CPUsPerNode = 2
			cfg.Seed = 5
			m := machine.New(cfg)
			cpus := make([]int, 8)
			for i := range cpus {
				cpus[i] = i
			}
			l := New(name, m, 0, cpus, DefaultTuning())
			counter := 0
			for tid := 0; tid < 8; tid++ {
				tid := tid
				m.Spawn(cpus[tid], func(p *machine.Proc) {
					for i := 0; i < 80; i++ {
						l.Acquire(p, tid)
						counter++
						p.Work(400)
						l.Release(p, tid)
						p.Work(100)
					}
				})
			}
			m.Run()
			if counter != 640 {
				t.Fatalf("%s: counter = %d, want 640", name, counter)
			}
		})
	}
}

// TestDeterministicTiming: the same seed must reproduce identical
// simulated end times for every algorithm.
func TestDeterministicTiming(t *testing.T) {
	runOnce := func(name string) sim.Time {
		m := testMachine(99)
		cpus := roundRobinCPUs(m, 6)
		l := New(name, m, 0, cpus, DefaultTuning())
		for tid := 0; tid < 6; tid++ {
			tid := tid
			m.Spawn(cpus[tid], func(p *machine.Proc) {
				for i := 0; i < 60; i++ {
					l.Acquire(p, tid)
					p.Work(250)
					l.Release(p, tid)
					p.Work(sim.Time(100 + 37*tid))
				}
			})
		}
		m.Run()
		return m.Now()
	}
	for _, name := range Names() {
		if a, b := runOnce(name), runOnce(name); a != b {
			t.Errorf("%s: nondeterministic end time %v vs %v", name, a, b)
		}
	}
}

// TestPreemptionRobustness contrasts queue locks and backoff locks under
// OS interference: both must still complete (liveness), and the queue
// lock should suffer at least as much as HBO_GT_SD (Table 4 mechanism).
func TestPreemptionRobustness(t *testing.T) {
	runWith := func(name string) sim.Time {
		cfg := machine.WildFire()
		cfg.CPUsPerNode = 4
		cfg.Seed = 31
		cfg.Preempt = machine.PreemptConfig{
			Enabled:      true,
			MeanInterval: 200 * sim.Microsecond,
			MeanDuration: 1 * sim.Millisecond,
		}
		m := machine.New(cfg)
		cpus := roundRobinCPUs(m, 8)
		l := New(name, m, 0, cpus, DefaultTuning())
		for tid := 0; tid < 8; tid++ {
			tid := tid
			m.Spawn(cpus[tid], func(p *machine.Proc) {
				for i := 0; i < 60; i++ {
					l.Acquire(p, tid)
					p.Work(500)
					l.Release(p, tid)
					p.Work(500)
				}
			})
		}
		m.Run()
		return m.Now()
	}
	mcsT := runWith("MCS")
	hboT := runWith("HBO_GT_SD")
	if mcsT < hboT {
		t.Logf("note: MCS %v faster than HBO_GT_SD %v under preemption (seed-dependent)", mcsT, hboT)
	}
	// Liveness is the hard assertion: both finished (Run returned).
}
