package simlock

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestExtendedRegistry(t *testing.T) {
	if len(AllNames()) != len(Names())+len(ExtendedNames()) {
		t.Fatal("AllNames size wrong")
	}
	for _, n := range AllNames() {
		if _, ok := factories[n]; !ok {
			t.Errorf("no factory for %q", n)
		}
	}
	if len(AllNames()) != len(factories) {
		t.Fatalf("registry has %d entries, AllNames %d", len(factories), len(AllNames()))
	}
	for name, want := range map[string]bool{
		"TICKET": false, "ANDERSON": false, "REACTIVE": false,
		"HBO_HIER": true, "COHORT": true,
	} {
		if NUCAAware(name) != want {
			t.Errorf("NUCAAware(%q) = %v", name, !want)
		}
	}
}

// TestExtendedMutualExclusion hammers the new algorithms the way the
// core eight are hammered.
func TestExtendedMutualExclusion(t *testing.T) {
	const threads, iters = 8, 150
	for _, name := range ExtendedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := testMachine(19)
			cpus := roundRobinCPUs(m, threads)
			l := New(name, m, 0, cpus, DefaultTuning())
			counter, inCS := 0, 0
			for tid := 0; tid < threads; tid++ {
				tid := tid
				m.Spawn(cpus[tid], func(p *machine.Proc) {
					rng := sim.NewRNG(uint64(tid) + 3)
					for i := 0; i < iters; i++ {
						l.Acquire(p, tid)
						inCS++
						if inCS != 1 {
							t.Errorf("%s: %d threads in CS", name, inCS)
						}
						counter++
						p.Work(100)
						inCS--
						l.Release(p, tid)
						p.Work(rng.Timen(500) + 50)
					}
				})
			}
			m.Run()
			if counter != threads*iters {
				t.Fatalf("%s: counter = %d, want %d", name, counter, threads*iters)
			}
		})
	}
}

// TestTicketIsFIFO: grants must follow ticket order exactly.
func TestTicketIsFIFO(t *testing.T) {
	m := testMachine(5)
	cpus := roundRobinCPUs(m, 6)
	l := New("TICKET", m, 0, cpus, DefaultTuning())
	var order []int
	for tid := 0; tid < 6; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			// Stagger arrival so enqueue order is well-defined.
			p.Work(sim.Time(1000 * (tid + 1)))
			l.Acquire(p, tid)
			order = append(order, tid)
			p.Work(5000)
			l.Release(p, tid)
		})
	}
	m.Run()
	for i, tid := range order {
		if tid != i {
			t.Fatalf("grant order %v not FIFO", order)
		}
	}
}

// TestAndersonSlotRing: more acquisitions than slots exercises the ring
// wraparound.
func TestAndersonSlotRing(t *testing.T) {
	m := testMachine(7)
	cpus := roundRobinCPUs(m, 4)
	l := New("ANDERSON", m, 0, cpus, DefaultTuning())
	counter := 0
	for tid := 0; tid < 4; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			for i := 0; i < 100; i++ { // 400 acquisitions over a 5-slot ring
				l.Acquire(p, tid)
				counter++
				l.Release(p, tid)
				p.Work(200)
			}
		})
	}
	m.Run()
	if counter != 400 {
		t.Fatalf("counter = %d", counter)
	}
}

// TestReactiveSwitchesModes: under sustained contention the mode word
// must flip to queue mode; after it subsides, back to spin.
func TestReactiveSwitchesModes(t *testing.T) {
	m := testMachine(9)
	cpus := roundRobinCPUs(m, 8)
	l := New("REACTIVE", m, 0, cpus, DefaultTuning()).(*reactive)
	sawQueue := false
	for tid := 0; tid < 8; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			for i := 0; i < 120; i++ {
				l.Acquire(p, tid)
				if m.Peek(l.mode) == 1 {
					sawQueue = true
				}
				p.Work(1000)
				l.Release(p, tid)
				// Think time so handovers occur (a releaser with no
				// think time re-wins its own owned lock word forever
				// and never observes contention).
				p.Work(2000)
			}
		})
	}
	m.Run()
	if !sawQueue {
		t.Fatal("reactive lock never switched to queue mode under contention")
	}

	// Single-thread phase on a fresh lock: must stay in spin mode.
	m2 := testMachine(10)
	l2 := New("REACTIVE", m2, 0, []int{0}, DefaultTuning()).(*reactive)
	m2.Spawn(0, func(p *machine.Proc) {
		for i := 0; i < 50; i++ {
			l2.Acquire(p, 0)
			l2.Release(p, 0)
		}
		if m2.Peek(l2.mode) != 0 {
			t.Error("reactive lock left spin mode without contention")
		}
	})
	m2.Run()
}

// TestCohortKeepsGlobalInNode: under contention from both nodes, the
// cohort lock must hand over in-node most of the time.
func TestCohortKeepsGlobalInNode(t *testing.T) {
	handoffs, switches := runHandoffCount(t, "COHORT", 8, 120)
	ratio := float64(switches) / float64(handoffs)
	if ratio > 0.2 {
		t.Fatalf("COHORT node handoff ratio %.2f, want <= 0.2", ratio)
	}
}

// TestCohortBoundsStreak: the cohort limit forces periodic global
// handovers, so the other node is never starved outright.
func TestCohortBoundsStreak(t *testing.T) {
	m := testMachine(11)
	cpus := roundRobinCPUs(m, 8)
	l := New("COHORT", m, 0, cpus, DefaultTuning())
	perNode := map[int]int{}
	for tid := 0; tid < 8; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			for i := 0; i < 200; i++ {
				l.Acquire(p, tid)
				perNode[p.Node()]++
				p.Work(300)
				l.Release(p, tid)
			}
		})
	}
	m.Run()
	if perNode[0] == 0 || perNode[1] == 0 {
		t.Fatalf("a node starved: %v", perNode)
	}
}

// TestHBOHierOnCMPServer: on a hierarchical machine, HBO_HIER must show
// stronger cluster affinity than flat HBO shows node affinity... at
// minimum, correctness plus lower cross-cluster handoffs than TICKET.
func TestHBOHierOnCMPServer(t *testing.T) {
	run := func(name string) (counter int, crossCluster float64) {
		cfg := machine.CMPServer()
		cfg.Seed = 13
		m := machine.New(cfg)
		threads := 16
		cpus := make([]int, threads)
		for i := range cpus {
			cpus[i] = (i * 2) % cfg.TotalCPUs() // spread over all 8 nodes
		}
		l := New(name, m, 0, cpus, DefaultTuning())
		last, hand, cross := -1, 0, 0
		for tid := 0; tid < threads; tid++ {
			tid := tid
			m.Spawn(cpus[tid], func(p *machine.Proc) {
				for i := 0; i < 100; i++ {
					l.Acquire(p, tid)
					if last >= 0 {
						hand++
						if m.ClusterOf(last) != m.ClusterOf(p.Node()) {
							cross++
						}
					}
					last = p.Node()
					counter++
					p.Work(300)
					l.Release(p, tid)
					p.Work(500)
				}
			})
		}
		m.Run()
		return counter, float64(cross) / float64(hand)
	}
	cHier, hier := run("HBO_HIER")
	cTkt, tkt := run("TICKET")
	if cHier != 1600 || cTkt != 1600 {
		t.Fatalf("counters = %d, %d", cHier, cTkt)
	}
	if hier >= tkt {
		t.Fatalf("HBO_HIER cross-cluster ratio %.2f not below TICKET %.2f", hier, tkt)
	}
}

// TestDistanceClassification covers the machine's hierarchy helpers.
func TestDistanceClassification(t *testing.T) {
	cfg := machine.CMPServer()
	m := machine.New(cfg)
	if m.Distance(0, 0) != 0 || m.Distance(0, 1) != 1 || m.Distance(0, 2) != 2 {
		t.Fatalf("distances = %d %d %d",
			m.Distance(0, 0), m.Distance(0, 1), m.Distance(0, 2))
	}
	flat := machine.New(machine.WildFire())
	if flat.Distance(0, 1) != 1 {
		t.Fatal("flat machine distance should be 1")
	}
}

// Property: every algorithm preserves mutual exclusion across random
// small machine shapes, thread counts and seeds (RH restricted to <= 2
// nodes by construction).
func TestMutualExclusionProperty(t *testing.T) {
	type shape struct {
		Nodes   uint8
		CPUs    uint8
		Threads uint8
		Seed    uint64
		Lock    uint8
	}
	names := AllNames()
	f := func(s shape) bool {
		nodes := int(s.Nodes%3) + 1
		cpus := int(s.CPUs%4) + 1
		name := names[int(s.Lock)%len(names)]
		if name == "RH" && nodes > 2 {
			nodes = 2
		}
		cfg := machine.WildFire()
		cfg.Nodes = nodes
		cfg.CPUsPerNode = cpus
		cfg.Seed = s.Seed
		m := machine.New(cfg)
		total := nodes * cpus
		threads := int(s.Threads)%total + 1
		// One thread per CPU, distinct CPUs.
		cpuList := make([]int, threads)
		for i := range cpuList {
			cpuList[i] = i
		}
		l := New(name, m, 0, cpuList, DefaultTuning())
		counter, inCS, ok := 0, 0, true
		for tid := 0; tid < threads; tid++ {
			tid := tid
			m.Spawn(cpuList[tid], func(p *machine.Proc) {
				for i := 0; i < 20; i++ {
					l.Acquire(p, tid)
					inCS++
					if inCS != 1 {
						ok = false
					}
					counter++
					p.Work(50)
					inCS--
					l.Release(p, tid)
					p.Work(sim.Time(30 * (tid + 1)))
				}
			})
		}
		m.Run()
		return ok && counter == threads*20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCLHTryTimesOutUnderHeldLock: a timed waiter behind a long holder
// must give up near its deadline, and the queue must stay functional.
func TestCLHTryTimesOutUnderHeldLock(t *testing.T) {
	m := testMachine(41)
	cpus := roundRobinCPUs(m, 3)
	l := New("CLH_TRY", m, 0, cpus, DefaultTuning()).(*clhTry)
	var timedOutAt sim.Time
	gotLate := false
	m.Spawn(cpus[0], func(p *machine.Proc) {
		l.Acquire(p, 0)
		p.Work(200_000) // hold 200µs
		l.Release(p, 0)
	})
	m.Spawn(cpus[1], func(p *machine.Proc) {
		p.Work(5000)
		if l.AcquireTimeout(p, 1, 20_000) {
			t.Error("timed acquire succeeded under a 200µs hold")
			l.Release(p, 1)
		}
		timedOutAt = p.Now()
		// Retry without timeout once the holder releases.
		l.Acquire(p, 1)
		gotLate = true
		l.Release(p, 1)
	})
	m.Run()
	if timedOutAt < 25_000 || timedOutAt > 80_000 {
		t.Fatalf("timed out at %v, want shortly after the 25µs deadline", timedOutAt)
	}
	if !gotLate {
		t.Fatal("retry after timeout never acquired")
	}
}

// TestCLHTryMiddleLeaverSplices: a waiter between two others leaves; the
// successor must still receive the lock through the splice.
func TestCLHTryMiddleLeaverSplices(t *testing.T) {
	m := testMachine(43)
	cpus := roundRobinCPUs(m, 4)
	l := New("CLH_TRY", m, 0, cpus, DefaultTuning()).(*clhTry)
	var order []int
	m.Spawn(cpus[0], func(p *machine.Proc) { // holder
		l.Acquire(p, 0)
		p.Work(100_000)
		order = append(order, 0)
		l.Release(p, 0)
	})
	m.Spawn(cpus[1], func(p *machine.Proc) { // middle, times out
		p.Work(5000)
		if l.AcquireTimeout(p, 1, 10_000) {
			t.Error("middle waiter should time out")
			l.Release(p, 1)
		}
	})
	m.Spawn(cpus[2], func(p *machine.Proc) { // successor behind the leaver
		p.Work(10_000)
		l.Acquire(p, 2)
		order = append(order, 2)
		l.Release(p, 2)
	})
	m.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 2 {
		t.Fatalf("grant order %v, want [0 2]", order)
	}
}

// TestCLHTryChurn: heavy mixed timed/blocking churn with tiny deadlines
// must preserve mutual exclusion and finish.
func TestCLHTryChurn(t *testing.T) {
	m := testMachine(47)
	cpus := roundRobinCPUs(m, 8)
	l := New("CLH_TRY", m, 0, cpus, DefaultTuning()).(*clhTry)
	inCS, acquired := 0, 0
	for tid := 0; tid < 8; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(uint64(tid) + 71)
			for i := 0; i < 150; i++ {
				ok := true
				if tid%2 == 0 {
					ok = l.AcquireTimeout(p, tid, sim.Time(rng.Timen(8000)+500))
				} else {
					l.Acquire(p, tid)
				}
				if ok {
					inCS++
					if inCS != 1 {
						t.Errorf("mutual exclusion violated")
					}
					acquired++
					p.Work(800)
					inCS--
					l.Release(p, tid)
				}
				p.Work(rng.Timen(2000) + 100)
			}
		})
	}
	m.Run()
	if acquired == 0 {
		t.Fatal("nothing acquired")
	}
	// Blocking threads must have completed all iterations.
	if acquired < 4*150 {
		t.Fatalf("acquired %d, below the blocking threads' 600", acquired)
	}
}
