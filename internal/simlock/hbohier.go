package simlock

import "repro/internal/machine"

// hboHier is the hierarchical generalization the paper sketches in
// section 4.1: "This scheme can be expanded in a hierarchical way, using
// more than two sets of constants, for a hierarchical NUCA." The lock
// word still holds the owner's node id; a contender chooses its backoff
// schedule by its *distance* to the owner — same node, same cluster, or
// across clusters — so the lock prefers the closest waiters at every
// level of the hierarchy.
type hboHier struct {
	addr  machine.Addr
	tun   Tuning
	nodes int
}

func newHBOHier(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	return &hboHier{
		addr:  m.Alloc(home, 1),
		tun:   tun,
		nodes: m.Config().Nodes,
	}
}

func (l *hboHier) Name() string { return "HBO_HIER" }

// schedule returns the (base, cap) backoff constants for a contender at
// the given distance from the owner.
func (l *hboHier) schedule(distance int) (base, cap int) {
	switch distance {
	case 0:
		return l.tun.BackoffBase, l.tun.BackoffCap
	case 1:
		return l.tun.RemoteBackoffBase, l.tun.RemoteBackoffCap
	default:
		fb, fc := l.tun.FarBackoffBase, l.tun.FarBackoffCap
		if fb <= 0 {
			fb = 4 * l.tun.RemoteBackoffBase
		}
		if fc <= 0 {
			fc = 4 * l.tun.RemoteBackoffCap
		}
		return fb, fc
	}
}

func (l *hboHier) Acquire(p *machine.Proc, tid int) {
	my := hboNodeVal(p.Node())
	tmp := p.CAS(l.addr, hboFree, my)
	if tmp == hboFree {
		return
	}
	l.acquireSlowpath(p, tmp)
}

func (l *hboHier) acquireSlowpath(p *machine.Proc, tmp uint64) {
	my := hboNodeVal(p.Node())
	for {
		owner := int(tmp) - 1
		dist := p.Machine().Distance(p.Node(), owner)
		b, cap := l.schedule(dist)
		for {
			p.Delay(b)
			b *= l.tun.BackoffFactor
			if b > cap {
				b = cap
			}
			tmp = p.CAS(l.addr, hboFree, my)
			if tmp == hboFree {
				return
			}
			// If the owner moved to a different distance class,
			// re-dispatch onto that class's schedule.
			if p.Machine().Distance(p.Node(), int(tmp)-1) != dist {
				break
			}
		}
	}
}

func (l *hboHier) Release(p *machine.Proc, tid int) {
	p.Store(l.addr, hboFree)
}
