// Package simlock implements the eight lock algorithms the HBO paper
// evaluates — TATAS, TATAS_EXP, MCS, CLH, RH, HBO, HBO_GT and HBO_GT_SD —
// as programs for the simulated NUCA machine in internal/machine.
//
// The HBO family is transcribed from the paper's Figures 1 and 2; the
// others follow the classic published algorithms (Mellor-Crummey & Scott
// 1991; Craig / Magnusson-Landin-Hagersten 1993/94). Native Go versions
// of the same algorithms, for real programs, live in internal/core.
package simlock

import (
	"fmt"

	"repro/internal/lockspec"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Lock is a mutual-exclusion lock operated by simulated processors.
// tid identifies the acquiring thread (dense ids, one per simulated
// thread) so queue locks can find their per-thread queue nodes.
type Lock interface {
	Name() string
	Acquire(p *machine.Proc, tid int)
	Release(p *machine.Proc, tid int)
}

// TimedLock is implemented by locks with an abortable, timed acquire
// path. AcquireTimeout attempts the acquisition for at most d of
// simulated time (d <= 0 means no bound, equivalent to Acquire) and
// reports whether the lock was obtained. An aborted attempt restores
// every protocol invariant — lock word untouched, auxiliary words
// (e.g. the HBO family's is_spinning throttles) back to idle — so a
// Quiescer probe passes after any mix of aborts.
//
// Backoff locks (TATAS, TATAS_EXP, HBO family) abandon trivially: a
// waiter owns no queue state, so it stops retrying and clears any
// throttle word it published. Queue locks commit the thread at enqueue
// time; of those only CLH_TRY implements the Scott & Scherer splice-out
// handshake, and the rest are deliberately non-abortable (see
// TimedNames).
type TimedLock interface {
	Lock
	AcquireTimeout(p *machine.Proc, tid int, d sim.Time) bool
}

// TimedNames lists the registered locks that implement TimedLock,
// derived from the lockspec registry. MCS, CLH, TICKET, ANDERSON,
// REACTIVE, RH, HBO_HIER, COHORT and CNA are deliberately
// non-abortable: their enqueue (or node-election) step publishes state
// a departing waiter cannot retract without a full abandonment
// protocol, which only CLH_TRY (splice-out) and HMCS_T (status-word
// abort race) carry. A test pins this membership so a lock gaining or
// losing a timed path updates the documentation.
func TimedNames() []string { return lockspec.TimedNames(true) }

// Quiescer is implemented by locks whose auxiliary shared state (e.g.
// the HBO family's per-node is_spinning words) must return to a known
// idle value once no acquires are in flight. The correctness harness
// checks it after every schedule.
type Quiescer interface {
	Quiescent(m *machine.Machine) error
}

// WordInjector is implemented by locks that expose raw lock-word
// injection, so the correctness harness can feed both twins of an
// algorithm identical corrupted states and compare survival.
type WordInjector interface {
	InjectWord(m *machine.Machine, v uint64)
}

// Tuning collects the backoff constants that the paper tunes "by trial
// and error for each individual architecture". Units are iterations of
// the empty delay loop (machine.Latencies.BackoffUnit each). The type
// is shared with internal/core via lockspec, so one value can configure
// an algorithm's twin in either stack (the native-only fields, like
// YieldThreshold, are ignored here).
type Tuning = lockspec.Tuning

// DefaultTuning returns constants tuned for the WildFire latency preset
// (BackoffUnit = 4 ns): local backoff 128 ns .. 2 µs, remote backoff
// 8 µs .. 65 µs. The remote cap must dwarf the local handover time —
// every failed remote cas drags the lock line across the interconnect,
// so remote spinners probe rarely and the lock stays in its node (the
// tuning lesson the paper's Figure 9 sweep teaches).
func DefaultTuning() Tuning {
	return Tuning{
		BackoffBase:       32,
		BackoffFactor:     2,
		BackoffCap:        4096,
		RemoteBackoffBase: 4096,
		RemoteBackoffCap:  32768,
		GetAngryLimit:     8,
		RHRemoteBase:      2048,
		RHRemoteCap:       16384,
		RHFairTries:       4,
		RHGlobalEvery:     64,
	}
}

// Factory builds a lock instance on machine m. home is the node whose
// memory backs the lock variable; cpus maps thread ids to the CPUs they
// run on (queue locks home each thread's queue node in that thread's
// node).
type Factory func(m *machine.Machine, home int, cpus []int, tun Tuning) Lock

// Names lists the algorithms in the order the paper's tables use,
// derived from the lockspec registry.
func Names() []string { return lockspec.PaperNames() }

// ExtendedNames lists the additional algorithms this library implements
// beyond the paper's eight: classic baselines from its related work
// (TICKET, ANDERSON, REACTIVE), the hierarchical HBO the paper sketches
// in section 4.1 (HBO_HIER), the cohort-lock family that HBO helped
// inspire (COHORT), a timeout-capable CLH (CLH_TRY), and the modern
// NUMA locks CNA and HMCS_T.
func ExtendedNames() []string { return lockspec.ExtendedNames(true) }

// AllNames lists the paper's eight plus the extensions.
func AllNames() []string { return lockspec.AllNames(true) }

// NUCAAware reports whether the named algorithm exploits node locality
// (the paper's "NUCA-aware" group).
func NUCAAware(name string) bool { return lockspec.NUCAAware(name) }

// New builds the named lock. It panics on an unknown name (experiment
// configuration is programmer input).
func New(name string, m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	f, ok := factories[name]
	if !ok {
		panic(fmt.Sprintf("simlock: unknown lock %q", name))
	}
	return f(m, home, cpus, tun)
}

// factories maps every algorithm to its builder: spec-backed
// algorithms instantiate through FromSpec (init below), the rest keep
// hand-written sim implementations.
var factories = map[string]Factory{
	"MCS":      newMCS,
	"CLH":      newCLH,
	"RH":       newRH,
	"ANDERSON": newAnderson,
	"REACTIVE": newReactive,
	"HBO_HIER": newHBOHier,
	"COHORT":   newCohort,
	"CLH_TRY":  newCLHTry,
}

func init() {
	for _, s := range lockspec.All() {
		if !s.Backed() {
			continue
		}
		s := s
		factories[s.Name] = func(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
			return FromSpec(s, m, home, cpus, tun)
		}
	}
}

// backoff executes the paper's backoff helper (Figure 1, lines 11–16):
// delay for *b loop iterations, then double *b up to cap.
func backoff(p *machine.Proc, b *int, factor, cap int) {
	p.Delay(*b)
	*b *= factor
	if *b > cap {
		*b = cap
	}
}
