// Package simlock implements the eight lock algorithms the HBO paper
// evaluates — TATAS, TATAS_EXP, MCS, CLH, RH, HBO, HBO_GT and HBO_GT_SD —
// as programs for the simulated NUCA machine in internal/machine.
//
// The HBO family is transcribed from the paper's Figures 1 and 2; the
// others follow the classic published algorithms (Mellor-Crummey & Scott
// 1991; Craig / Magnusson-Landin-Hagersten 1993/94). Native Go versions
// of the same algorithms, for real programs, live in internal/core.
package simlock

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Lock is a mutual-exclusion lock operated by simulated processors.
// tid identifies the acquiring thread (dense ids, one per simulated
// thread) so queue locks can find their per-thread queue nodes.
type Lock interface {
	Name() string
	Acquire(p *machine.Proc, tid int)
	Release(p *machine.Proc, tid int)
}

// TimedLock is implemented by locks with an abortable, timed acquire
// path. AcquireTimeout attempts the acquisition for at most d of
// simulated time (d <= 0 means no bound, equivalent to Acquire) and
// reports whether the lock was obtained. An aborted attempt restores
// every protocol invariant — lock word untouched, auxiliary words
// (e.g. the HBO family's is_spinning throttles) back to idle — so a
// Quiescer probe passes after any mix of aborts.
//
// Backoff locks (TATAS, TATAS_EXP, HBO family) abandon trivially: a
// waiter owns no queue state, so it stops retrying and clears any
// throttle word it published. Queue locks commit the thread at enqueue
// time; of those only CLH_TRY implements the Scott & Scherer splice-out
// handshake, and the rest are deliberately non-abortable (see
// TimedNames).
type TimedLock interface {
	Lock
	AcquireTimeout(p *machine.Proc, tid int, d sim.Time) bool
}

// TimedNames lists the registered locks that implement TimedLock.
// MCS, CLH, TICKET, ANDERSON, REACTIVE, RH, HBO_HIER and COHORT are
// deliberately non-abortable: their enqueue (or node-election) step
// publishes state a departing waiter cannot retract without the full
// HMCS-T-style abandonment protocol, which only CLH_TRY carries. A
// test pins this membership so a lock gaining or losing a timed path
// updates the documentation.
func TimedNames() []string {
	return []string{"TATAS", "TATAS_EXP", "HBO", "HBO_GT", "HBO_GT_SD", "CLH_TRY"}
}

// Quiescer is implemented by locks whose auxiliary shared state (e.g.
// the HBO family's per-node is_spinning words) must return to a known
// idle value once no acquires are in flight. The correctness harness
// checks it after every schedule.
type Quiescer interface {
	Quiescent(m *machine.Machine) error
}

// WordInjector is implemented by locks that expose raw lock-word
// injection, so the correctness harness can feed both twins of an
// algorithm identical corrupted states and compare survival.
type WordInjector interface {
	InjectWord(m *machine.Machine, v uint64)
}

// Tuning collects the backoff constants that the paper tunes "by trial
// and error for each individual architecture". Units are iterations of
// the empty delay loop (machine.Latencies.BackoffUnit each).
type Tuning struct {
	// TATAS_EXP and the HBO local path.
	BackoffBase   int
	BackoffFactor int
	BackoffCap    int
	// HBO remote path.
	RemoteBackoffBase int
	RemoteBackoffCap  int
	// HBO_HIER cross-cluster path (0 = 4x the remote constants).
	FarBackoffBase int
	FarBackoffCap  int
	// HBO_GT_SD starvation detection (Figure 2).
	GetAngryLimit int
	// RH node-winner remote spin and be-fair threshold.
	RHRemoteBase  int
	RHRemoteCap   int
	RHFairTries   int
	RHGlobalEvery int // force a global release after this many local handoffs
}

// DefaultTuning returns constants tuned for the WildFire latency preset
// (BackoffUnit = 4 ns): local backoff 128 ns .. 2 µs, remote backoff
// 8 µs .. 65 µs. The remote cap must dwarf the local handover time —
// every failed remote cas drags the lock line across the interconnect,
// so remote spinners probe rarely and the lock stays in its node (the
// tuning lesson the paper's Figure 9 sweep teaches).
func DefaultTuning() Tuning {
	return Tuning{
		BackoffBase:       32,
		BackoffFactor:     2,
		BackoffCap:        4096,
		RemoteBackoffBase: 4096,
		RemoteBackoffCap:  32768,
		GetAngryLimit:     8,
		RHRemoteBase:      2048,
		RHRemoteCap:       16384,
		RHFairTries:       4,
		RHGlobalEvery:     64,
	}
}

// Factory builds a lock instance on machine m. home is the node whose
// memory backs the lock variable; cpus maps thread ids to the CPUs they
// run on (queue locks home each thread's queue node in that thread's
// node).
type Factory func(m *machine.Machine, home int, cpus []int, tun Tuning) Lock

// Names lists the algorithms in the order the paper's tables use.
func Names() []string {
	return []string{"TATAS", "TATAS_EXP", "MCS", "CLH", "RH", "HBO", "HBO_GT", "HBO_GT_SD"}
}

// ExtendedNames lists the additional algorithms this library implements
// beyond the paper's eight: classic baselines from its related work
// (TICKET, ANDERSON, REACTIVE), the hierarchical HBO the paper sketches
// in section 4.1 (HBO_HIER), and the cohort-lock family that HBO helped
// inspire (COHORT).
func ExtendedNames() []string {
	return []string{"TICKET", "ANDERSON", "REACTIVE", "HBO_HIER", "COHORT", "CLH_TRY"}
}

// AllNames lists the paper's eight plus the extensions.
func AllNames() []string { return append(Names(), ExtendedNames()...) }

// NUCAAware reports whether the named algorithm exploits node locality
// (the paper's "NUCA-aware" group).
func NUCAAware(name string) bool {
	switch name {
	case "RH", "HBO", "HBO_GT", "HBO_GT_SD", "HBO_HIER", "COHORT":
		return true
	}
	return false
}

// New builds the named lock. It panics on an unknown name (experiment
// configuration is programmer input).
func New(name string, m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	f, ok := factories[name]
	if !ok {
		panic(fmt.Sprintf("simlock: unknown lock %q", name))
	}
	return f(m, home, cpus, tun)
}

var factories = map[string]Factory{
	"TATAS":     newTATAS,
	"TATAS_EXP": newTATASExp,
	"MCS":       newMCS,
	"CLH":       newCLH,
	"RH":        newRH,
	"HBO":       newHBO,
	"HBO_GT":    newHBOGT,
	"HBO_GT_SD": newHBOGTSD,
	"TICKET":    newTicket,
	"ANDERSON":  newAnderson,
	"REACTIVE":  newReactive,
	"HBO_HIER":  newHBOHier,
	"COHORT":    newCohort,
	"CLH_TRY":   newCLHTry,
}

// backoff executes the paper's backoff helper (Figure 1, lines 11–16):
// delay for *b loop iterations, then double *b up to cap.
func backoff(p *machine.Proc, b *int, factor, cap int) {
	p.Delay(*b)
	*b *= factor
	if *b > cap {
		*b = cap
	}
}
