package simlock

import (
	"repro/internal/machine"
	"repro/internal/sim"
)

// clhTry is a CLH queue lock with timeout, in the spirit of Scott &
// Scherer's try locks (PPoPP 2001), which the paper cites when
// discussing queue locks under preemption. A waiter that gives up
// splices itself out of the queue with a handshake:
//
//   - the leaver publishes its predecessor in its node's prev word and
//     marks the node LEAVING;
//   - its successor (spinning on the node) acknowledges by marking it
//     ABANDONED and redirects its spin to the published predecessor;
//   - a leaver with no successor swings the tail back to its
//     predecessor instead.
//
// As Scott's later work (PODC 2002) observes, the handshake makes the
// timeout bounded-but-not-wait-free: a leaver whose successor also
// leaves may briefly wait for the tail to come back. The blocking
// Acquire is plain CLH.
type clhTry struct {
	tail machine.Addr
	// Per-node words: status and prev pointer.
	status []machine.Addr // indexed by node id
	prev   []machine.Addr
	addrs  []uint64 // status-word address per node id (queue links)
	// Thread-private registers: the node each thread will use next,
	// and the node its current hold will release.
	myNode    []int
	heldByTid []int
	tun       Tuning
}

// Node status values. GRANTED is zero so a freshly released node reads
// like CLH's classic "flag = 0".
const (
	ctGranted   uint64 = 0
	ctWaiting   uint64 = 1
	ctLeaving   uint64 = 2
	ctAbandoned uint64 = 3
)

func newCLHTry(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	n := len(cpus) + 1
	l := &clhTry{
		tail:      m.Alloc(home, 1),
		status:    make([]machine.Addr, n),
		prev:      make([]machine.Addr, n),
		addrs:     make([]uint64, n),
		myNode:    make([]int, len(cpus)),
		heldByTid: make([]int, len(cpus)),
		tun:       tun,
	}
	for i := 0; i < n; i++ {
		node := home
		if i < len(cpus) {
			node = m.NodeOf(cpus[i])
		}
		l.status[i] = m.Alloc(node, 1)
		l.prev[i] = m.Alloc(node, 1)
		l.addrs[i] = uint64(l.status[i])
	}
	// Node index len(cpus) is the initial granted dummy.
	m.Poke(l.tail, l.addrs[len(cpus)])
	for tid := range l.myNode {
		l.myNode[tid] = tid
	}
	return l
}

func (l *clhTry) Name() string { return "CLH_TRY" }

// nodeOf maps a status-word address back to a node index.
func (l *clhTry) nodeOf(addr uint64) int {
	for i, a := range l.addrs {
		if a == addr {
			return i
		}
	}
	panic("simlock: CLH_TRY queue holds an unknown node address")
}

// Acquire is the blocking path: plain CLH spinning that also follows
// LEAVING handshakes from timed waiters ahead of it.
func (l *clhTry) Acquire(p *machine.Proc, tid int) {
	if !l.acquire(p, tid, 0) {
		panic("simlock: unbounded CLH_TRY acquire failed")
	}
}

// AcquireTimeout attempts a timed acquisition; d <= 0 means no timeout.
func (l *clhTry) AcquireTimeout(p *machine.Proc, tid int, d sim.Time) bool {
	return l.acquire(p, tid, d)
}

func (l *clhTry) acquire(p *machine.Proc, tid int, d sim.Time) bool {
	me := l.myNode[tid]
	p.Store(l.status[me], ctWaiting)
	prevIdx := l.nodeOf(p.Swap(l.tail, l.addrs[me]))

	var deadline sim.Time
	if d > 0 {
		deadline = p.Now() + d
	}
	b := l.tun.BackoffBase
	for {
		var st uint64
		if deadline == 0 {
			// Event-driven spin: wake on any status write.
			st = p.SpinUntil(l.status[prevIdx], func(v uint64) bool { return v != ctWaiting })
		} else {
			st = p.Load(l.status[prevIdx])
		}
		switch st {
		case ctGranted:
			// Acquired. Adopt the predecessor's node for next time;
			// ours stays live for our successor and is released by us.
			l.myNode[tid] = prevIdx
			l.heldByTid[tid] = me
			return true
		case ctLeaving:
			// Predecessor is timing out: take its predecessor and
			// acknowledge so it can recycle the node.
			earlier := l.nodeOf(p.Load(l.prev[prevIdx]))
			p.Store(l.status[prevIdx], ctAbandoned)
			prevIdx = earlier
			continue
		}
		// Still waiting.
		if deadline > 0 && p.Now() >= deadline {
			return l.leave(p, tid, me, prevIdx)
		}
		backoff(p, &b, l.tun.BackoffFactor, l.tun.BackoffCap)
	}
}

// leave splices the timed-out waiter out of the queue.
func (l *clhTry) leave(p *machine.Proc, tid, me, prevIdx int) bool {
	// Publish our predecessor, then announce we are leaving.
	p.Store(l.prev[me], l.addrs[prevIdx])
	p.Store(l.status[me], ctLeaving)
	b := l.tun.BackoffBase
	for {
		// No successor? Swing the tail back to our predecessor.
		if p.CAS(l.tail, l.addrs[me], l.addrs[prevIdx]) == l.addrs[me] {
			return false // node never observed; reusable as-is
		}
		// A successor exists (or existed): wait for its acknowledgment.
		if p.Load(l.status[me]) == ctAbandoned {
			return false
		}
		// The successor may itself be leaving and may swing the tail
		// back to us, so retry the tail CAS rather than parking.
		backoff(p, &b, l.tun.BackoffFactor, l.tun.BackoffCap)
	}
}

func (l *clhTry) Release(p *machine.Proc, tid int) {
	p.Store(l.status[l.heldByTid[tid]], ctGranted)
}
