package simlock

import "repro/internal/machine"

// cohort implements lock cohorting (Dice, Marathe & Shavit, PPoPP 2012),
// the line of NUMA-aware locks that HBO helped inspire: a global ticket
// lock arbitrates between nodes while a per-node ticket lock arbitrates
// within a node. A releaser that sees a local successor hands over the
// local lock and keeps the global one (cheap, in-node), passing global
// ownership along the cohort; after cohortLimit consecutive in-node
// handovers the global lock is released for fairness.
//
// Compared with HBO, cohorting gets node affinity *deterministically*
// (no backoff races) at the price of two lock words per acquire on the
// cold path — the same trade queue locks make against TATAS.
type cohort struct {
	globalNext  machine.Addr
	globalOwner machine.Addr
	// Per-node local ticket locks and state.
	localNext  []machine.Addr
	localOwner []machine.Addr
	// ownGlobal marks whether the node currently holds the global lock
	// (one word per node, only touched by that node's cohort).
	ownGlobal []machine.Addr
	// streak counts consecutive local handovers (per node).
	streak      []machine.Addr
	cohortLimit uint64
	// myTicket is each thread's local ticket (thread-private register).
	myTicket []uint64
}

// cohortLimit default: long enough to amortize global handovers, short
// enough to bound cross-node starvation (the same trade GET_ANGRY_LIMIT
// makes for HBO_GT_SD).
const defaultCohortLimit = 64

func newCohort(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	nodes := m.Config().Nodes
	l := &cohort{
		globalNext:  m.Alloc(home, 1),
		globalOwner: m.Alloc(home, 1),
		localNext:   make([]machine.Addr, nodes),
		localOwner:  make([]machine.Addr, nodes),
		ownGlobal:   make([]machine.Addr, nodes),
		streak:      make([]machine.Addr, nodes),
		cohortLimit: defaultCohortLimit,
		myTicket:    make([]uint64, len(cpus)),
	}
	for n := 0; n < nodes; n++ {
		l.localNext[n] = m.Alloc(n, 1)
		l.localOwner[n] = m.Alloc(n, 1)
		l.ownGlobal[n] = m.Alloc(n, 1)
		l.streak[n] = m.Alloc(n, 1)
	}
	return l
}

func (l *cohort) Name() string { return "COHORT" }

func (l *cohort) Acquire(p *machine.Proc, tid int) {
	n := p.Node()
	// Local ticket first: serializes the node's threads cheaply.
	my := fetchInc(p, l.localNext[n])
	l.myTicket[tid] = my
	p.SpinUntil(l.localOwner[n], func(v uint64) bool { return v == my })
	// We now own the node's local lock. If the node already holds the
	// global lock (handed along the cohort), we are done.
	if p.Load(l.ownGlobal[n]) != 0 {
		return
	}
	// Cold path: take the global ticket lock on behalf of the node.
	g := fetchInc(p, l.globalNext)
	p.SpinUntil(l.globalOwner, func(v uint64) bool { return v == g })
	p.Store(l.ownGlobal[n], 1)
}

func (l *cohort) Release(p *machine.Proc, tid int) {
	n := p.Node()
	my := l.myTicket[tid]
	// A local successor exists if someone took a ticket after ours.
	succ := p.Load(l.localNext[n]) > my+1
	streak := p.Load(l.streak[n])
	if succ && streak < l.cohortLimit {
		// Hand over in-node: keep the global lock with the node.
		p.Store(l.streak[n], streak+1)
		p.Store(l.localOwner[n], my+1)
		return
	}
	// Release globally: drop the node's global ownership first so the
	// local successor (if any) re-competes for the global lock.
	p.Store(l.streak[n], 0)
	p.Store(l.ownGlobal[n], 0)
	v := p.Load(l.globalOwner)
	p.Store(l.globalOwner, v+1)
	p.Store(l.localOwner[n], my+1)
}
