package simlock

import "repro/internal/machine"

// tatas is the traditional test-and-test&set lock: tas to acquire, spin
// with plain loads while the lock is held, store zero to release.
type tatas struct {
	addr machine.Addr
}

func newTATAS(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	return &tatas{addr: m.Alloc(home, 1)}
}

func (l *tatas) Name() string { return "TATAS" }

func (l *tatas) Acquire(p *machine.Proc, tid int) {
	for p.TAS(l.addr) != 0 {
		// Test: spin with ordinary loads until the lock reads free,
		// then retry the tas. The refill burst after a release is
		// modeled by every spinner re-reading and re-tas-ing.
		p.SpinUntilZero(l.addr)
	}
}

func (l *tatas) Release(p *machine.Proc, tid int) {
	p.Store(l.addr, 0)
}

// tatasExp adds Ethernet-style exponential backoff between tas attempts
// (the paper's TATAS_EXP, section 3).
type tatasExp struct {
	addr machine.Addr
	tun  Tuning
}

func newTATASExp(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	return &tatasExp{addr: m.Alloc(home, 1), tun: tun}
}

func (l *tatasExp) Name() string { return "TATAS_EXP" }

func (l *tatasExp) Acquire(p *machine.Proc, tid int) {
	if p.TAS(l.addr) == 0 {
		return
	}
	l.acquireSlowpath(p)
}

func (l *tatasExp) acquireSlowpath(p *machine.Proc) {
	b := l.tun.BackoffBase
	for {
		backoff(p, &b, l.tun.BackoffFactor, l.tun.BackoffCap)
		if p.Load(l.addr) != 0 {
			continue
		}
		if p.TAS(l.addr) == 0 {
			return
		}
	}
}

func (l *tatasExp) Release(p *machine.Proc, tid int) {
	p.Store(l.addr, 0)
}
