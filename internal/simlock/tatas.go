package simlock

import (
	"repro/internal/machine"
	"repro/internal/sim"
)

// timedPollUnits paces the polling loops of timed acquires. The
// event-driven SpinUntil parks until the watched line changes, which
// may be long after the deadline (or never, with a paused holder), so
// timed waiters poll on a fixed backoff quantum instead.
const timedPollUnits = 64

// tatas is the traditional test-and-test&set lock: tas to acquire, spin
// with plain loads while the lock is held, store zero to release.
type tatas struct {
	addr machine.Addr
}

func newTATAS(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	return &tatas{addr: m.Alloc(home, 1)}
}

func (l *tatas) Name() string { return "TATAS" }

func (l *tatas) Acquire(p *machine.Proc, tid int) {
	for p.TAS(l.addr) != 0 {
		// Test: spin with ordinary loads until the lock reads free,
		// then retry the tas. The refill burst after a release is
		// modeled by every spinner re-reading and re-tas-ing.
		p.SpinUntilZero(l.addr)
	}
}

// AcquireTimeout is the timed path. An aborted attempt leaves no state
// behind: a failed tas writes 1 over an already-set word, so giving up
// is just ceasing to retry.
func (l *tatas) AcquireTimeout(p *machine.Proc, tid int, d sim.Time) bool {
	if d <= 0 {
		l.Acquire(p, tid)
		return true
	}
	deadline := p.Now() + d
	for {
		if p.TAS(l.addr) == 0 {
			return true
		}
		for p.Load(l.addr) != 0 {
			if p.Now() >= deadline {
				return false
			}
			p.Delay(timedPollUnits)
		}
	}
}

func (l *tatas) Release(p *machine.Proc, tid int) {
	p.Store(l.addr, 0)
}

// tatasExp adds Ethernet-style exponential backoff between tas attempts
// (the paper's TATAS_EXP, section 3).
type tatasExp struct {
	addr machine.Addr
	tun  Tuning
}

func newTATASExp(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	return &tatasExp{addr: m.Alloc(home, 1), tun: tun}
}

func (l *tatasExp) Name() string { return "TATAS_EXP" }

func (l *tatasExp) Acquire(p *machine.Proc, tid int) {
	if p.TAS(l.addr) == 0 {
		return
	}
	l.acquireSlowpath(p)
}

func (l *tatasExp) acquireSlowpath(p *machine.Proc) {
	b := l.tun.BackoffBase
	for {
		backoff(p, &b, l.tun.BackoffFactor, l.tun.BackoffCap)
		if p.Load(l.addr) != 0 {
			continue
		}
		if p.TAS(l.addr) == 0 {
			return
		}
	}
}

// AcquireTimeout is the timed path: the same exponential-backoff loop
// with a deadline check at every backoff boundary. Like TATAS, an
// abort needs no cleanup.
func (l *tatasExp) AcquireTimeout(p *machine.Proc, tid int, d sim.Time) bool {
	if d <= 0 {
		l.Acquire(p, tid)
		return true
	}
	if p.TAS(l.addr) == 0 {
		return true
	}
	deadline := p.Now() + d
	b := l.tun.BackoffBase
	for {
		if p.Now() >= deadline {
			return false
		}
		backoff(p, &b, l.tun.BackoffFactor, l.tun.BackoffCap)
		if p.Load(l.addr) != 0 {
			continue
		}
		if p.TAS(l.addr) == 0 {
			return true
		}
	}
}

func (l *tatasExp) Release(p *machine.Proc, tid int) {
	p.Store(l.addr, 0)
}
