package simlock

import "repro/internal/machine"

// mcs is the queue lock of Mellor-Crummey and Scott (1991). Each thread
// owns a queue node (next pointer + locked flag) homed in its own NUCA
// node, so waiting threads spin on node-local memory.
type mcs struct {
	tail   machine.Addr   // holds the queue-node address of the last waiter
	next   []machine.Addr // per-thread qnode: next pointer word
	locked []machine.Addr // per-thread qnode: locked flag word
}

func newMCS(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	l := &mcs{
		tail:   m.Alloc(home, 1),
		next:   make([]machine.Addr, len(cpus)),
		locked: make([]machine.Addr, len(cpus)),
	}
	for tid, cpu := range cpus {
		n := m.NodeOf(cpu)
		l.next[tid] = m.Alloc(n, 1)
		l.locked[tid] = m.Alloc(n, 1)
	}
	return l
}

func (l *mcs) Name() string { return "MCS" }

// qnodeOf maps a next-pointer address back to the owning thread.
func (l *mcs) qnodeOf(a uint64) int {
	for tid, n := range l.next {
		if uint64(n) == a {
			return tid
		}
	}
	panic("simlock: MCS tail holds an unknown qnode address")
}

func (l *mcs) Acquire(p *machine.Proc, tid int) {
	p.Store(l.next[tid], uint64(machine.NilAddr))
	prev := p.Swap(l.tail, uint64(l.next[tid]))
	if prev == uint64(machine.NilAddr) {
		return // lock was free
	}
	p.Store(l.locked[tid], 1)
	p.Store(machine.Addr(prev), uint64(l.next[tid])) // prev.next = me
	p.SpinUntilZero(l.locked[tid])
}

func (l *mcs) Release(p *machine.Proc, tid int) {
	next := p.Load(l.next[tid])
	if next == uint64(machine.NilAddr) {
		if p.CAS(l.tail, uint64(l.next[tid]), uint64(machine.NilAddr)) == uint64(l.next[tid]) {
			return // no successor
		}
		// A successor is linking itself; wait for the pointer.
		next = p.SpinUntil(l.next[tid], func(v uint64) bool {
			return v != uint64(machine.NilAddr)
		})
	}
	succ := l.qnodeOf(next)
	p.Store(l.locked[succ], 0)
}

// clh is the queue lock of Craig and of Magnusson, Landin and Hagersten.
// Each thread enqueues a request flag and spins on its predecessor's
// flag; on release a thread recycles its predecessor's node.
type clh struct {
	tail machine.Addr // holds the current tail request-flag address
	// myNode and myPrev are thread-private registers (not simulated
	// memory): the flag word each thread will use for its next acquire,
	// and the predecessor flag captured during the current hold.
	myNode []machine.Addr
	myPrev []machine.Addr
}

func newCLH(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	l := &clh{
		tail:   m.Alloc(home, 1),
		myNode: make([]machine.Addr, len(cpus)),
		myPrev: make([]machine.Addr, len(cpus)),
	}
	// Initial dummy node, already granted (flag = 0).
	dummy := m.Alloc(home, 1)
	m.Poke(l.tail, uint64(dummy))
	for tid, cpu := range cpus {
		l.myNode[tid] = m.Alloc(m.NodeOf(cpu), 1)
	}
	return l
}

func (l *clh) Name() string { return "CLH" }

func (l *clh) Acquire(p *machine.Proc, tid int) {
	me := l.myNode[tid]
	p.Store(me, 1) // pending
	prev := machine.Addr(p.Swap(l.tail, uint64(me)))
	p.SpinUntilZero(prev)
	l.myPrev[tid] = prev
}

func (l *clh) Release(p *machine.Proc, tid int) {
	p.Store(l.myNode[tid], 0)
	// Recycle the predecessor's node for our next acquire.
	l.myNode[tid] = l.myPrev[tid]
}
