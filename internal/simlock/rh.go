package simlock

import "repro/internal/machine"

// rh is the authors' earlier proof-of-concept NUCA-aware lock (Radović &
// Hagersten, SC 2002), which the paper uses as a baseline. It supports
// exactly two nodes: every node holds its own copy of the lock, a
// releaser hands over locally by tagging its copy L_FREE, and one "node
// winner" per node spins on the other node's copy to migrate the lock.
//
// The paper gives only a prose description (section 3), so two details
// are implementation choices, documented in EXPERIMENTS.md:
//
//   - The releaser needs to know whether local waiters exist to choose
//     between an L_FREE local handover and leaving the lock globally
//     FREE; we keep a per-node waiter count next to each copy.
//   - To bound (not eliminate — the paper calls RH starvation-prone)
//     remote starvation, a node winner may also steal an L_FREE copy
//     after RHFairTries failed attempts, and a node releases globally
//     after RHGlobalEvery consecutive local handovers.
type rh struct {
	copies  [2]machine.Addr // per-node lock copy
	waiters [2]machine.Addr // per-node local-waiter count
	tun     Tuning
	nodes   int
	// streak counts consecutive local handovers per node (host-side
	// bookkeeping standing in for the algorithm's fairness heuristic).
	streak [2]int
}

// RH lock-word values. Thread values start at rhTaken+1.
const (
	rhFree   uint64 = 0 // anyone may take the lock
	rhLFree  uint64 = 1 // only threads in this node may take it
	rhRemote uint64 = 2 // the lock lives in the other node
	rhTaken  uint64 = 3 // a node winner has claimed the remote-spin role
)

func rhThreadVal(tid int) uint64 { return rhTaken + 1 + uint64(tid) }

// atomicAdd adds delta (two's complement) to the word at a with a CAS
// retry loop, the way SPARC code would implement a fetch-and-add.
func atomicAdd(p *machine.Proc, a machine.Addr, delta uint64) {
	for {
		v := p.Load(a)
		if p.CAS(a, v, v+delta) == v {
			return
		}
	}
}

func newRH(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	nodes := m.Config().Nodes
	if nodes > 2 {
		panic("simlock: the RH lock supports at most two nodes")
	}
	l := &rh{tun: tun, nodes: nodes}
	for n := 0; n < nodes; n++ {
		l.copies[n] = m.Alloc(n, 1)
		l.waiters[n] = m.Alloc(n, 1)
	}
	if nodes == 2 {
		// The lock starts logically in node 0: copy 0 FREE, copy 1 REMOTE.
		m.Poke(l.copies[1], rhRemote)
	}
	return l
}

func (l *rh) Name() string { return "RH" }

func (l *rh) Acquire(p *machine.Proc, tid int) {
	my := l.copies[p.Node()]
	val := rhThreadVal(tid)
	tmp := p.CAS(my, rhFree, val)
	if tmp == rhFree {
		return
	}
	if tmp == rhLFree && p.CAS(my, rhLFree, val) == rhLFree {
		return
	}
	l.acquireSlowpath(p, tid)
}

func (l *rh) acquireSlowpath(p *machine.Proc, tid int) {
	node := p.Node()
	my := l.copies[node]
	val := rhThreadVal(tid)
	atomicAdd(p, l.waiters[node], 1)
	defer atomicAdd(p, l.waiters[node], ^uint64(0))

	b := l.tun.BackoffBase
	for {
		tmp := p.CAS(my, rhFree, val)
		if tmp == rhFree {
			return
		}
		if tmp == rhLFree {
			if p.CAS(my, rhLFree, val) == rhLFree {
				return
			}
			continue
		}
		if tmp == rhRemote && l.nodes == 2 {
			// Try to become the node winner.
			if p.CAS(my, rhRemote, rhTaken) == rhRemote {
				l.remoteSpin(p, tid)
				return
			}
		}
		backoff(p, &b, l.tun.BackoffFactor, l.tun.BackoffCap)
	}
}

// remoteSpin is the node winner's role: migrate the lock from the other
// node by marking the other copy REMOTE, then claim our own copy (which
// we hold as rhTaken).
func (l *rh) remoteSpin(p *machine.Proc, tid int) {
	node := p.Node()
	other := l.copies[1-node]
	my := l.copies[node]
	val := rhThreadVal(tid)
	b := l.tun.RHRemoteBase
	tries := 0
	for {
		// Test first, then cas: the steal costs two remote transactions,
		// which is why the paper measures RH's uncontested remote
		// handover at ~2x the other locks (Table 1).
		v := p.Load(other)
		if v == rhFree || (v == rhLFree && tries >= l.tun.RHFairTries) {
			if p.CAS(other, v, rhRemote) == v {
				// Lock migrated to our node; our copy holds rhTaken.
				if p.CAS(my, rhTaken, val) != rhTaken {
					panic("simlock: RH node-winner copy stolen")
				}
				return
			}
		}
		tries++
		backoff(p, &b, l.tun.BackoffFactor, l.tun.RHRemoteCap)
	}
}

func (l *rh) Release(p *machine.Proc, tid int) {
	node := p.Node()
	my := l.copies[node]
	if l.nodes == 2 {
		local := p.Load(l.waiters[node])
		if local > 0 && l.streak[node] < l.tun.RHGlobalEvery {
			l.streak[node]++
			p.Store(my, rhLFree)
			return
		}
	}
	l.streak[node] = 0
	p.Store(my, rhFree)
}
