package simlock

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
)

func timedTestMachine() (*machine.Machine, machine.Config) {
	cfg := machine.WildFire()
	cfg.Nodes = 2
	cfg.CPUsPerNode = 2
	cfg.Probes = true
	return machine.New(cfg), cfg
}

// TestTimedNamesMatchImplementations pins the TimedLock membership:
// exactly the locks TimedNames documents implement the interface, and
// every other registered lock is (deliberately) non-abortable.
func TestTimedNamesMatchImplementations(t *testing.T) {
	timed := map[string]bool{}
	for _, n := range TimedNames() {
		timed[n] = true
	}
	m, _ := timedTestMachine()
	cpus := []int{0, 1, 2, 3}
	for _, name := range AllNames() {
		l := New(name, m, 0, cpus, DefaultTuning())
		_, ok := l.(TimedLock)
		if ok != timed[name] {
			t.Errorf("%s: TimedLock = %v, TimedNames says %v", name, ok, timed[name])
		}
	}
}

// TestAcquireTimeoutUncontended checks the timed path takes a free lock
// and that d <= 0 degrades to the blocking acquire.
func TestAcquireTimeoutUncontended(t *testing.T) {
	for _, name := range TimedNames() {
		m, _ := timedTestMachine()
		l := New(name, m, 0, []int{0, 1, 2, 3}, DefaultTuning()).(TimedLock)
		got, gotZero := false, false
		m.Spawn(0, func(p *machine.Proc) {
			got = l.AcquireTimeout(p, 0, 10*sim.Microsecond)
			if got {
				l.Release(p, 0)
			}
			gotZero = l.AcquireTimeout(p, 0, 0)
			if gotZero {
				l.Release(p, 0)
			}
		})
		m.Run()
		if !got {
			t.Errorf("%s: timed acquire of a free lock failed", name)
		}
		if !gotZero {
			t.Errorf("%s: AcquireTimeout(d=0) of a free lock failed", name)
		}
	}
}

// TestAcquireTimeoutExpires holds the lock past a waiter's deadline and
// checks the waiter aborts, can still acquire afterwards (the abort
// left the protocol intact), and the lock quiesces.
func TestAcquireTimeoutExpires(t *testing.T) {
	const hold = 500 * sim.Microsecond
	for _, name := range TimedNames() {
		// The waiter sits in the remote node so the HBO family takes the
		// remote slowpath, the one with throttle state to clean up.
		m, _ := timedTestMachine()
		l := New(name, m, 0, []int{0, 1, 2, 3}, DefaultTuning()).(TimedLock)
		var aborted, reacquired bool
		m.Spawn(0, func(p *machine.Proc) {
			l.Acquire(p, 0)
			p.Work(hold)
			l.Release(p, 0)
		})
		m.Spawn(2, func(p *machine.Proc) {
			p.Work(5 * sim.Microsecond) // let the holder win
			if !l.AcquireTimeout(p, 1, 40*sim.Microsecond) {
				aborted = true
			} else {
				l.Release(p, 1)
			}
			// Blocking acquire must still work after the abort.
			l.Acquire(p, 1)
			reacquired = true
			l.Release(p, 1)
		})
		m.Run()
		if !aborted {
			t.Errorf("%s: waiter acquired despite a %v hold and 40µs budget", name, hold)
		}
		if !reacquired {
			t.Errorf("%s: blocking acquire failed after an abort", name)
		}
		if q, ok := l.(Quiescer); ok {
			if err := q.Quiescent(m); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
		if err := m.ProbeError(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestTimedAbortStormQuiesces hammers the HBO family with many timed
// waiters that all abort (including GT_SD's angry path, which stops
// other nodes), then verifies every is_spinning word is back to idle.
func TestTimedAbortStormQuiesces(t *testing.T) {
	for _, name := range []string{"HBO", "HBO_GT", "HBO_GT_SD"} {
		m, cfg := timedTestMachine()
		tun := DefaultTuning()
		// Small constants so remote waiters retry (and GT_SD gets angry)
		// many times within the abort budget.
		tun.BackoffBase = 16
		tun.BackoffCap = 256
		tun.RemoteBackoffBase = 64
		tun.RemoteBackoffCap = 512
		tun.GetAngryLimit = 2
		l := New(name, m, 0, []int{0, 1, 2, 3}, tun).(TimedLock)
		aborts := 0
		m.Spawn(0, func(p *machine.Proc) {
			l.Acquire(p, 0)
			p.Work(2 * sim.Millisecond) // outlive every waiter budget
			l.Release(p, 0)
		})
		for tid := 1; tid < cfg.TotalCPUs(); tid++ {
			tid := tid
			m.Spawn(tid, func(p *machine.Proc) {
				p.Work(sim.Microsecond)
				for round := 0; round < 4; round++ {
					if !l.AcquireTimeout(p, tid, 60*sim.Microsecond) {
						aborts++
						p.Work(10 * sim.Microsecond)
						continue
					}
					l.Release(p, tid)
				}
			})
		}
		m.Run()
		if aborts == 0 {
			t.Fatalf("%s: no aborts; the storm never exercised the abort path", name)
		}
		if err := l.(Quiescer).Quiescent(m); err != nil {
			t.Errorf("%s after %d aborts: %v", name, aborts, err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestTimedAbortDuringHandoff sweeps a timed waiter's deadline in fine
// steps across the instant the holder releases, so some runs abort
// exactly while the handoff (or the free window) is landing — the race
// HMCS-T's timeout protocol exists to resolve, and the one a naive
// abort gets wrong in two ways: consuming a grant after reporting
// failure (lock held by nobody) or leaving its queue node/announcement
// behind (next handoff goes to a ghost). Whatever side of the race a
// run lands on, the outcome must be coherent: a waiter that reported
// success held the lock exclusively, a waiter that aborted left the
// protocol reusable (a later blocking acquire succeeds), and the lock
// quiesces.
func TestTimedAbortDuringHandoff(t *testing.T) {
	const hold = 100 * sim.Microsecond
	for _, name := range TimedNames() {
		for d := hold - 10*sim.Microsecond; d <= hold+10*sim.Microsecond; d += 500 * sim.Nanosecond {
			m, _ := timedTestMachine()
			l := New(name, m, 0, []int{0, 1, 2, 3}, DefaultTuning()).(TimedLock)
			inCS, chased := 0, false
			bad := func(who string) {
				t.Fatalf("%s (deadline %v): %s entered with %d already in the critical section",
					name, d, who, inCS)
			}
			m.Spawn(0, func(p *machine.Proc) {
				l.Acquire(p, 0)
				inCS++
				p.Work(hold)
				inCS--
				l.Release(p, 0)
			})
			// The timed waiter sits on the remote node; its deadline lands
			// in a ±10µs window around the holder's release.
			m.Spawn(2, func(p *machine.Proc) {
				p.Work(2 * sim.Microsecond) // let the holder win
				if l.AcquireTimeout(p, 1, d) {
					inCS++
					if inCS != 1 {
						bad("timed waiter")
					}
					p.Work(5 * sim.Microsecond)
					inCS--
					l.Release(p, 1)
				}
			})
			// A chaser proves the lock outlives the abort: whichever way
			// the race went, a blocking acquire must still get through.
			m.Spawn(1, func(p *machine.Proc) {
				p.Work(hold + 50*sim.Microsecond)
				l.Acquire(p, 2)
				inCS++
				if inCS != 1 {
					bad("chaser")
				}
				inCS--
				l.Release(p, 2)
				chased = true
			})
			m.Run()
			if !chased {
				t.Fatalf("%s (deadline %v): blocking acquire never completed after the abort window",
					name, d)
			}
			if q, ok := l.(Quiescer); ok {
				if err := q.Quiescent(m); err != nil {
					t.Fatalf("%s (deadline %v): %v", name, d, err)
				}
			}
			if err := m.ProbeError(); err != nil {
				t.Fatalf("%s (deadline %v): %v", name, d, err)
			}
		}
	}
}

// TestTimedUnderFaults runs every timed lock with all fault classes on
// and a retry-until-acquired loop, checking that every thread
// eventually gets through and the lock quiesces.
func TestTimedUnderFaults(t *testing.T) {
	for _, name := range TimedNames() {
		cfg := machine.WildFire()
		cfg.Nodes = 2
		cfg.CPUsPerNode = 2
		cfg.Probes = true
		fc, err := fault.Preset("all", 1234, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Fault = fc
		m := machine.New(cfg)
		l := New(name, m, 0, []int{0, 1, 2, 3}, DefaultTuning()).(TimedLock)
		done := 0
		for tid := 0; tid < 4; tid++ {
			tid := tid
			m.Spawn(tid, func(p *machine.Proc) {
				for i := 0; i < 5; i++ {
					for !l.AcquireTimeout(p, tid, 100*sim.Microsecond) {
						p.Delay(200) // brief pause before the retry
					}
					p.Work(500)
					l.Release(p, tid)
					p.Work(1000)
				}
				done++
			})
		}
		m.Run()
		if done != 4 {
			t.Errorf("%s: %d/4 threads finished under faults", name, done)
		}
		if q, ok := l.(Quiescer); ok {
			if err := q.Quiescent(m); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
}
