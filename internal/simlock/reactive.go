package simlock

import "repro/internal/machine"

// reactive is a simplified reactive lock in the spirit of Lim & Agarwal
// (ASPLOS 1994), the "alternative approach" of the paper's section 3:
// low contention is served by a bare TATAS_EXP protocol and high
// contention routes waiters through an MCS queue, with the holder
// switching modes using hysteresis.
//
// Unlike the original's consensus-object protocol, mutual exclusion
// here always rests on the TATAS word: queue mode only *orders* the
// contenders in front of it (the MCS head acquires an almost-free TATAS
// word). A thread that raced a mode switch merely contends on the TATAS
// word directly, degrading fairness for one handover, never safety.
type reactive struct {
	mode machine.Addr // 0 = spin, 1 = queue in front of the word
	// Hysteresis counter, written only while holding the lock.
	counter machine.Addr
	// word is the TATAS_EXP-style lock word that carries mutual
	// exclusion in both modes.
	word machine.Addr
	tun  Tuning
	mcs  *mcs
	// queued records whether each thread entered through the queue
	// (thread-private register).
	queued []bool
}

// Hysteresis thresholds: switch to the queue after this many contended
// spin-mode acquisitions in a row, and back to spin mode after this
// many queue acquisitions with no successor waiting.
const (
	reactToQueue = 8
	reactToSpin  = 16
)

func newReactive(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	return &reactive{
		mode:    m.Alloc(home, 1),
		counter: m.Alloc(home, 1),
		word:    m.Alloc(home, 1),
		tun:     tun,
		mcs:     newMCS(m, home, cpus, tun).(*mcs),
		queued:  make([]bool, len(cpus)),
	}
}

// spinSlowpath is the TATAS_EXP contention loop (exponential backoff
// between tas attempts), inlined here so the spin mode matches the
// spec-backed TATAS_EXP's behavior without reaching into it.
func (l *reactive) spinSlowpath(p *machine.Proc) {
	b := l.tun.BackoffBase
	for {
		backoff(p, &b, l.tun.BackoffFactor, l.tun.BackoffCap)
		if p.Load(l.word) != 0 {
			continue
		}
		if p.TAS(l.word) == 0 {
			return
		}
	}
}

func (l *reactive) Name() string { return "REACTIVE" }

func (l *reactive) Acquire(p *machine.Proc, tid int) {
	viaQueue := p.Load(l.mode) == 1
	l.queued[tid] = viaQueue
	if viaQueue {
		l.mcs.Acquire(p, tid)
	}
	contended := p.TAS(l.word) != 0
	if contended {
		l.spinSlowpath(p)
	}
	// Holding the lock now; run the hysteresis bookkeeping.
	c := p.Load(l.counter)
	if viaQueue {
		noSucc := p.Load(l.mcs.next[tid]) == uint64(machine.NilAddr)
		if noSucc {
			c++
			if c >= reactToSpin {
				p.Store(l.mode, 0)
				c = 0
			}
		} else {
			c = 0
		}
	} else {
		if contended {
			c++
			if c >= reactToQueue {
				p.Store(l.mode, 1)
				c = 0
			}
		} else if c > 0 {
			c--
		}
	}
	p.Store(l.counter, c)
}

func (l *reactive) Release(p *machine.Proc, tid int) {
	p.Store(l.word, 0)
	if l.queued[tid] {
		l.mcs.Release(p, tid)
	}
}
