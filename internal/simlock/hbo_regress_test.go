package simlock

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// angryTuning makes the GT_SD starvation detector fire after a couple of
// failed remote probes, so regression scenarios reach the SD path fast.
func angryTuning() Tuning {
	tun := DefaultTuning()
	tun.BackoffBase = 16
	tun.BackoffCap = 64
	tun.RemoteBackoffBase = 64
	tun.RemoteBackoffCap = 256
	tun.GetAngryLimit = 2
	return tun
}

// TestHBOGTSDOwnerBoundsGuard feeds the GT_SD slowpath a lock word whose
// decoded owner is far out of range (the corrupted-word scenario the
// native twin in internal/core guards against at core/hbo.go). Before
// the guard was added here, the starvation detector indexed
// is_spinning[owner] and crashed the whole machine; with the guard the
// acquirer rides out the corruption and completes once the word clears.
func TestHBOGTSDOwnerBoundsGuard(t *testing.T) {
	cfg := machine.WildFire()
	cfg.CPUsPerNode = 2
	cfg.Seed = 9
	cfg.TimeLimit = 50 * sim.Millisecond // watchdog: fail, don't hang
	m := machine.New(cfg)
	cpus := []int{0, 1}
	l := New("HBO_GT_SD", m, 0, cpus, angryTuning()).(specTQI)
	lockWord := l.wordAddr(0, 0)

	// Corrupt the lock word: owner id 99 on a 2-node machine.
	l.InjectWord(m, hboNodeVal(99))

	acquired := 0
	m.Spawn(0, func(p *machine.Proc) {
		l.Acquire(p, 0) // spins on the corrupted word, gets angry
		acquired++
		p.Work(100)
		l.Release(p, 0)
	})
	m.Spawn(1, func(p *machine.Proc) {
		// Simulated recovery: after long enough for several failed CASes
		// (and therefore several starvation-detection episodes), the
		// corrupted word is cleared.
		p.Work(200 * sim.Microsecond)
		p.Store(lockWord, hboFree)
	})
	m.Run()

	if m.Aborted() {
		t.Fatal("watchdog hit: acquirer never recovered from the corrupted lock word")
	}
	if acquired != 1 {
		t.Fatalf("acquired = %d, want 1", acquired)
	}
	if err := l.Quiescent(m); err != nil {
		t.Fatal(err)
	}
}

// TestHBOQuiescence: after every acquirer finishes, the lock word is
// free and every per-node is_spinning word has returned to hboDummy —
// no node is left permanently throttled by a stale GT/GT_SD store.
func TestHBOQuiescence(t *testing.T) {
	for _, name := range []string{"HBO", "HBO_GT", "HBO_GT_SD"} {
		name := name
		t.Run(name, func(t *testing.T) {
			m := testMachine(21)
			cpus := roundRobinCPUs(m, 8)
			l := New(name, m, 0, cpus, angryTuning())
			for tid := 0; tid < 8; tid++ {
				tid := tid
				m.Spawn(cpus[tid], func(p *machine.Proc) {
					for i := 0; i < 60; i++ {
						l.Acquire(p, tid)
						p.Work(800) // long CS: remote spinners throttle their nodes
						l.Release(p, tid)
						p.Work(sim.Time(50 * (tid + 1)))
					}
				})
			}
			m.Run()
			q, ok := l.(Quiescer)
			if !ok {
				t.Fatalf("%s does not implement Quiescer", name)
			}
			if err := q.Quiescent(m); err != nil {
				t.Fatal(err)
			}
		})
	}
}
