package simlock

import "repro/internal/machine"

// The ticket lock is spec-backed (internal/lockspec); this file keeps
// the shared fetch-and-increment idiom and the Anderson array lock.

// fetchInc atomically increments the word at a and returns its previous
// value, using the cas-loop idiom available on SPARC.
func fetchInc(p *machine.Proc, a machine.Addr) uint64 {
	for {
		v := p.Load(a)
		if p.CAS(a, v, v+1) == v {
			return v
		}
	}
}

// anderson is Anderson's array-based queue lock: a fetch-and-increment
// assigns each contender a slot in a circular flag array; the releaser
// sets the successor slot. Each waiter spins on its own word, but the
// array lives in one node, which is exactly the NUMA weakness that
// motivated distributed queue locks (and, later, NUCA-aware locks).
type anderson struct {
	tail  machine.Addr // slot counter
	slots machine.Addr // size flag words
	size  int
	// mySlot is each thread's current slot (a thread-private register).
	mySlot []uint64
}

func newAnderson(m *machine.Machine, home int, cpus []int, tun Tuning) Lock {
	l := &anderson{
		tail:   m.Alloc(home, 1),
		size:   len(cpus) + 1,
		mySlot: make([]uint64, len(cpus)),
	}
	l.slots = m.Alloc(home, l.size)
	m.Poke(l.slots, 1) // slot 0 starts granted
	return l
}

func (l *anderson) Name() string { return "ANDERSON" }

func (l *anderson) slot(i uint64) machine.Addr {
	return l.slots + machine.Addr(i%uint64(l.size))
}

func (l *anderson) Acquire(p *machine.Proc, tid int) {
	pos := fetchInc(p, l.tail)
	l.mySlot[tid] = pos
	a := l.slot(pos)
	p.SpinUntil(a, func(v uint64) bool { return v != 0 })
	p.Store(a, 0) // reset for the next lap around the ring
}

func (l *anderson) Release(p *machine.Proc, tid int) {
	p.Store(l.slot(l.mySlot[tid]+1), 1)
}
