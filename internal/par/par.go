// Package par fans independent work items over a bounded worker pool.
//
// Every cell of an experiment sweep — one (driver, seed, thread-count)
// simulation — is deterministic and self-contained: it builds its own
// machine, engine and RNG from a config value and touches no shared
// state. Cells can therefore run concurrently as long as results are
// merged back in a fixed canonical order. Callers index results by item
// so output is byte-identical for any worker count.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool width the CLIs default to: one worker per
// schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Compose reconciles the two fan-out layers — pool cells running
// concurrently, each allowed inner PDES workers — so their product
// never exceeds GOMAXPROCS. The inner width wins the contest for cores
// (one big partitioned run benefits more from an extra core than one
// more queued cell), the pool shrinks to fit, and both floor at 1.
// Neither value affects simulation output, only wall-clock concurrency,
// so the host-dependent clamp never breaks byte-identity.
func Compose(pool, inner int) (int, int) {
	if pool < 1 {
		pool = 1
	}
	if inner < 1 {
		inner = 1
	}
	max := runtime.GOMAXPROCS(0)
	if inner > max {
		inner = max
	}
	if pool*inner > max {
		pool = max / inner
		if pool < 1 {
			pool = 1
		}
	}
	return pool, inner
}

// CellPanic is re-raised on the calling goroutine when a work item
// panics inside ForEach. The pool drains cleanly first — already-started
// items finish, no worker goroutine leaks, the caller never hangs — and
// then the first panicking item propagates, lowest index winning when
// several items fail, so the crash report does not depend on goroutine
// scheduling.
type CellPanic struct {
	Item  int    // index of the panicking work item
	Value any    // the original panic value
	Stack []byte // stack of the goroutine that panicked
}

func (p *CellPanic) Error() string {
	return fmt.Sprintf("par: item %d panicked: %v\n%s", p.Item, p.Value, p.Stack)
}

// Unwrap exposes the original panic value when it was an error.
func (p *CellPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// ForEach runs fn(i) for every i in [0, n), at most workers at a time.
// workers <= 1 runs inline on the calling goroutine (fully sequential,
// no pool). fn must confine its writes to per-i state. A panic in any
// item stops new items from being handed out, lets in-flight items
// finish, and then re-panics on the calling goroutine with a *CellPanic
// — identical behavior at any pool width, and never a hung pool.
func ForEach(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}

	var (
		mu    sync.Mutex
		first *CellPanic
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return first != nil
	}
	runCell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				cp := &CellPanic{Item: i, Value: r, Stack: debug.Stack()}
				mu.Lock()
				if first == nil || i < first.Item {
					first = cp
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}

	if workers <= 1 {
		for i := 0; i < n && !failed(); i++ {
			runCell(i)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !failed() {
					i := int(next.Add(1))
					if i >= n {
						return
					}
					runCell(i)
				}
			}()
		}
		wg.Wait()
	}

	if first != nil {
		panic(first)
	}
}
