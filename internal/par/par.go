// Package par fans independent work items over a bounded worker pool.
//
// Every cell of an experiment sweep — one (driver, seed, thread-count)
// simulation — is deterministic and self-contained: it builds its own
// machine, engine and RNG from a config value and touches no shared
// state. Cells can therefore run concurrently as long as results are
// merged back in a fixed canonical order. Callers index results by item
// so output is byte-identical for any worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool width the CLIs default to: one worker per
// schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(i) for every i in [0, n), at most workers at a time.
// workers <= 1 runs inline on the calling goroutine (fully sequential,
// no pool). fn must confine its writes to per-i state; a panic in any
// item propagates and crashes the program, matching sequential
// behavior.
func ForEach(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
