package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryItemOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16, 100} {
		const n = 257
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty range")
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var got []int
	ForEach(1, 5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential mode out of order: %v", got)
		}
	}
}

func TestForEachResultsIndependentOfWorkers(t *testing.T) {
	compute := func(workers int) []int {
		out := make([]int, 64)
		ForEach(workers, len(out), func(i int) { out[i] = i * i })
		return out
	}
	want := compute(1)
	for _, w := range []int{2, 8, 64} {
		got := compute(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d", DefaultWorkers())
	}
}
