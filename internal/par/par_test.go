package par

import (
	"sync/atomic"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestForEachCoversEveryItemOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16, 100} {
		const n = 257
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty range")
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var got []int
	ForEach(1, 5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential mode out of order: %v", got)
		}
	}
}

func TestForEachResultsIndependentOfWorkers(t *testing.T) {
	compute := func(workers int) []int {
		out := make([]int, 64)
		ForEach(workers, len(out), func(i int) { out[i] = i * i })
		return out
	}
	want := compute(1)
	for _, w := range []int{2, 8, 64} {
		got := compute(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d", DefaultWorkers())
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		ran := make([]int32, 40)
		var cp *CellPanic
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				var ok bool
				if cp, ok = r.(*CellPanic); !ok {
					t.Fatalf("workers=%d: re-panicked with %T, want *CellPanic", workers, r)
				}
			}()
			ForEach(workers, len(ran), func(i int) {
				atomic.AddInt32(&ran[i], 1)
				if i == 7 {
					panic("item seven is broken")
				}
			})
		}()
		if cp.Item != 7 || cp.Value != "item seven is broken" {
			t.Fatalf("workers=%d: CellPanic = {%d %v}", workers, cp.Item, cp.Value)
		}
		if len(cp.Stack) == 0 || cp.Error() == "" {
			t.Fatalf("workers=%d: CellPanic missing stack or message", workers)
		}
		for i := 0; i < 7; i++ {
			if workers == 1 && ran[i] != 1 {
				t.Fatalf("sequential: item %d before the panic did not run", i)
			}
		}
	}
}

func TestForEachPanicLowestIndexWins(t *testing.T) {
	// Items are handed out in index order, so the lowest panicking
	// index always runs before any failure can stop distribution — the
	// reported item must not depend on scheduling or pool width.
	for _, workers := range []int{1, 3, 64} {
		for trial := 0; trial < 20; trial++ {
			func() {
				defer func() {
					cp, ok := recover().(*CellPanic)
					if !ok || cp.Item != 3 {
						t.Fatalf("workers=%d trial %d: got %+v, want item 3", workers, trial, cp)
					}
				}()
				ForEach(workers, 64, func(i int) {
					if i == 3 || i == 11 || i == 50 {
						panic(i)
					}
				})
			}()
		}
	}
}

func TestForEachPanicStopsNewItems(t *testing.T) {
	// After a failure the pool must drain, not churn through the whole
	// range: with one worker, nothing past the panicking item runs.
	var ran int32
	func() {
		defer func() { recover() }()
		ForEach(1, 1000, func(i int) {
			atomic.AddInt32(&ran, 1)
			if i == 2 {
				panic("stop")
			}
		})
	}()
	if ran != 3 {
		t.Fatalf("sequential pool ran %d items after early panic, want 3", ran)
	}
}

// degradedCell runs one deterministic fault-injected simulation and
// returns its fingerprint: the pool only schedules cells, so the same
// cell must produce the same machine state at any width.
func degradedCell(i int) [3]uint64 {
	cfg := machine.Config{Nodes: 2, CPUsPerNode: 2, Seed: uint64(i + 1)}
	fc, err := fault.Preset("all", uint64(i)*7919+1, 1.0)
	if err != nil {
		panic(err)
	}
	cfg.Fault = fc
	m := machine.New(cfg)
	a := m.Alloc(0, 1)
	for cpu := 0; cpu < 4; cpu++ {
		m.Spawn(cpu, func(p *machine.Proc) {
			for k := 0; k < 50; k++ {
				for {
					v := p.Load(a)
					if p.CAS(a, v, v+1) == v {
						break
					}
				}
				p.Work(sim.Time(100 + 100*(i%5)))
			}
		})
	}
	m.Run()
	return [3]uint64{uint64(m.Now()), m.Peek(a), uint64(m.FaultStats().Total())}
}

func TestForEachWidthDeterminismUnderFaults(t *testing.T) {
	const n = 24
	run := func(workers int) [n][3]uint64 {
		var out [n][3]uint64
		ForEach(workers, n, func(i int) { out[i] = degradedCell(i) })
		return out
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); got != want {
			t.Fatalf("workers=%d: fault-injected cells diverged from sequential run", w)
		}
	}
	// Sanity: the faults actually engaged in at least one cell.
	engaged := false
	for _, fp := range want {
		if fp[2] > 0 {
			engaged = true
		}
	}
	if !engaged {
		t.Fatal("no cell served a single fault window; the plan never engaged")
	}
}
