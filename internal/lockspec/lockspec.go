// Package lockspec is the single source of truth for lock algorithms.
//
// Every algorithm is described once, as a Spec: the shared state words it
// declares (with their placement scope), the acquire/release transition
// bodies written against the Env abstraction, an optional non-blocking
// try path, an optional timeout path, and the quiescence/fault-injection
// probes the correctness harness consumes. One Spec instantiates into
// both lock stacks:
//
//   - internal/simlock builds a simulated lock whose Env maps every
//     operation onto machine.Proc word accesses (Load/Store/CAS/Swap,
//     Delay, event-driven parked spins), so the spec runs under the
//     deterministic NUCA simulator and its schedule explorer;
//   - internal/core builds a native lock whose Env maps the same
//     operations onto sync/atomic words with cache-line padding,
//     core.Probe contention hooks and runtime.Gosched-yielding waits.
//
// The two instantiations necessarily differ in *waiting policy* — the
// simulator parks a spinner until the watched line is invalidated, while
// native Go can only poll and yield — but every state word, every atomic
// transition and their order come from the one body, so the twin drift
// the differential checker (internal/check) used to hunt by comparison
// can no longer be introduced by editing one copy.
//
// The registry (registry.go) additionally carries metadata entries for
// the legacy hand-written algorithms that are not (yet) spec-backed, so
// name lists, capability flags and CLI help in both stacks derive from
// one table.
package lockspec

import "fmt"

// Scope places a declared word.
type Scope int

const (
	// ScopeLock homes the word(s) at the lock's home node.
	ScopeLock Scope = iota
	// ScopePerNode declares Count words per NUCA node, each homed at
	// its node (the HBO family's is_spinning words, HMCS-T's per-node
	// queues).
	ScopePerNode
	// ScopePerThread declares Count words per thread, homed at the
	// thread's node (queue-lock nodes, CNA's qnode fields).
	ScopePerThread
)

// Word declares one named piece of shared lock state. Every element
// occupies its own cache line in both instantiations.
type Word struct {
	Name  string
	Scope Scope
	Count int    // elements per unit; 0 means 1
	Init  uint64 // initial value of every element
}

// count returns the per-unit multiplicity.
func (w Word) count() int {
	if w.Count <= 0 {
		return 1
	}
	return w.Count
}

// Elems returns the total element count of word w for the given
// topology.
func (w Word) Elems(nodes, threads int) int {
	switch w.Scope {
	case ScopePerNode:
		return nodes * w.count()
	case ScopePerThread:
		return threads * w.count()
	default:
		return w.count()
	}
}

// Ref names one element of a declared word: W indexes Spec.Words, I the
// flattened element (node*Count+k for per-node scope, tid*Count+k for
// per-thread scope).
type Ref struct{ W, I int }

// Env is the execution environment a spec body runs against. Word
// operands are (w, i) pairs in Ref's flattened addressing.
//
// The wait primitives (AwaitZero, AwaitWhile, AwaitLink, GrantWait) and
// Backoff embody each stack's waiting policy: the simulator parks
// unbounded spins on the watched cache line and polls timed spins on a
// fixed 64-unit quantum; the native side busy-waits with periodic
// runtime.Gosched yields and counts spin work into the lock's Probe.
// Expired reports deadline passage for timed acquires and is always
// false in an unbounded acquire; it performs no shared-memory access,
// so a body's unbounded path issues the same access sequence whether or
// not it contains Expired checks.
type Env interface {
	// TID returns the acquiring thread's dense id.
	TID() int
	// Node returns the acquiring thread's NUCA node.
	Node() int
	// Nodes returns the machine's node count.
	Nodes() int
	// Threads returns the thread-id capacity.
	Threads() int
	// Tag returns a non-zero value identifying this lock instance,
	// suitable for publication in throttle words (the HBO family's
	// is_spinning protocol).
	Tag() uint64

	// Load reads element (w, i).
	Load(w, i int) uint64
	// Store writes element (w, i).
	Store(w, i int, v uint64)
	// Swap atomically writes v and returns the previous value.
	Swap(w, i int, v uint64) uint64
	// TAS is Swap(w, i, 1): test&set returning the previous value.
	TAS(w, i int) uint64
	// CAS compares-and-swaps with SPARC semantics: it returns expect
	// exactly when the swap happened, else the observed value. (The
	// native emulation retries a failed compare-and-swap that then
	// observes expect, because returning expect without owning would be
	// a false acquisition.)
	CAS(w, i int, expect, v uint64) uint64
	// CASOnce is a single compare-and-swap attempt reporting success —
	// the non-blocking primitive for try paths and tail swings whose
	// failure has its own handling.
	CASOnce(w, i int, expect, v uint64) bool
	// FetchInc atomically increments and returns the previous value
	// (built from a load+CAS loop on the simulator, as on SPARC).
	FetchInc(w, i int) uint64
	// HolderInc increments a word only the lock holder writes (a plain
	// load+store on the simulator — the ticket lock's release idiom).
	HolderInc(w, i int)

	// Delay burns roughly units iterations of the empty backoff loop.
	Delay(units int)
	// Backoff delays *b units and grows *b by factor up to cap (the
	// paper's backoff helper, Figure 1 lines 11–16).
	Backoff(b *int, factor, cap int)
	// Expired reports whether the acquire's deadline has passed. Always
	// false for unbounded acquires; never touches shared memory.
	Expired() bool
	// AwaitZero waits until element (w, i) reads zero; false means the
	// deadline expired first.
	AwaitZero(w, i int) bool
	// AwaitWhile waits while element (w, i) equals v, returning the
	// first differing value; ok=false means the deadline expired first.
	AwaitWhile(w, i int, v uint64) (val uint64, ok bool)
	// AwaitLink waits until element (w, i) reads non-zero, ignoring any
	// deadline — the must-complete handshake of queue locks (an
	// enqueuer that swapped the tail is guaranteed to link shortly).
	AwaitLink(w, i int) uint64
	// ThrottleWait waits while element (w, i) equals v with the HBO
	// family's throttle-wait policy: the simulator parks (or, timed,
	// polls on the fixed quantum); the native side polls at
	// BackoffBase-sized delays — except under a deadline, where it
	// polls on the same fixed quantum the simulator uses, so the
	// abort-check cadence cannot silently become tuning-dependent in
	// one stack only (that exact drift shipped in the hand-written
	// native HBO and is pinned by TestTimedThrottlePollQuantum).
	// False means the deadline expired first.
	ThrottleWait(w, i int, v uint64) bool
	// GrantWait waits until element (w, i) equals my. The native side
	// waits proportionally to (my - current), the ticket lock's
	// proportional backoff; the simulator parks. False means the
	// deadline expired first.
	GrantWait(w, i int, my uint64) bool
	// SlowPath marks the acquire contended: the native side fires the
	// lock's Probe.Contended hook (once per acquire) and begins
	// counting spin work; the simulator ignores it.
	SlowPath()
	// Scratch returns this thread's private scratch words for this lock
	// (queue-slot indices and the like). Scratch is host storage — it
	// models the paper's "thread-private register" and costs nothing in
	// either instantiation.
	Scratch() *[4]uint64
}

// Peeker reads lock state without simulated cost or synchronization —
// the quiescence probe's view. Call only when no acquires are in
// flight.
type Peeker interface {
	Peek(w, i int) uint64
	Nodes() int
	Threads() int
}

// Meta is the registry metadata every algorithm carries, spec-backed or
// not.
type Meta struct {
	Name string
	// Doc is the one-line description the README lock table renders.
	Doc string
	// Paper marks the HPCA 2003 paper's eight algorithms.
	Paper bool
	// NUCA marks node-locality-exploiting algorithms.
	NUCA bool
	// Timed marks algorithms with a genuinely timed, abortable acquire.
	Timed bool
	// SimOnly marks algorithms implemented only on the simulator
	// (CLH_TRY's splice-out protocol).
	SimOnly bool
	// Try marks algorithms offering a native non-blocking TryAcquire.
	Try bool
	// MaxNodes bounds the machine shapes the algorithm supports
	// (RH is two-node by construction); 0 means unbounded.
	MaxNodes int
}

// Spec is one algorithm: metadata, state words and transition bodies.
type Spec struct {
	Meta
	Words []Word
	// Acquire runs the acquisition; it returns false only when the
	// environment's deadline expired (an unbounded Env never expires).
	// An abort must restore every protocol invariant, so Quiesce
	// passes after any mix of aborts.
	Acquire func(e Env, tun Tuning) bool
	// Release releases a held lock.
	Release func(e Env, tun Tuning)
	// TryBody, when non-nil, is the single non-blocking acquisition
	// attempt backing the native TryLocker.
	TryBody func(e Env, tun Tuning) bool
	// Quiesce, when non-nil, verifies all shared state is idle.
	Quiesce func(q Peeker) error
	// Inject, when non-nil, names the raw lock word the fault-injection
	// harness may overwrite.
	Inject *Ref
}

// WordIndex returns the index of the named word (programmer input; it
// panics on an unknown name).
func (s *Spec) WordIndex(name string) int {
	for i, w := range s.Words {
		if w.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("lockspec: %s has no word %q", s.Name, name))
}
