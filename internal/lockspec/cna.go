package lockspec

import "fmt"

// Word layout for CNA. Queue handles are thread ids encoded +1 so zero
// means nil.
const (
	cnaTail     = 0 // main-queue tail: enc(tid) of the last enqueuer
	cnaHandoffs = 1 // holder-only counter of grants that bypassed the secondary queue
	cnaNext     = 2 // per-thread successor link: enc(tid) or 0
	cnaSpin     = 3 // per-thread grant word: 0 waiting, 1 granted, >=2 granted with secondary head enc = v-1
	cnaNode     = 4 // per-thread NUCA node, published at enqueue for the holder's locality walk
	cnaSTail    = 5 // per-thread secondary-queue tail enc, handed to the grantee before the grant store
)

func cnaEnc(tid int) uint64 { return uint64(tid) + 1 }

// cnaSpec is Compact NUMA-aware Locks (Dice & Kogan, EuroSys 2019): an
// MCS-style queue lock whose releaser keeps the lock on its own NUCA
// node by granting the first same-node waiter in the main queue and
// parking the remote waiters it skipped on a secondary queue. Unlike
// MCS there is no per-thread qnode structure to carry around — the
// queue state is a fixed set of per-thread words (hence "compact") and
// the secondary queue reuses the same next links.
//
// Fairness: the upstream design flips a random coin to decide when to
// flush the secondary queue back into the main one; this repo's twin
// stacks demand determinism (the schedule explorer replays
// interleavings byte-for-byte), so the coin is a holder-only handoff
// counter — after Tuning.FairEvery grants that bypassed the secondary
// queue, the releaser splices it back in front of the main queue.
//
// Invariants the bodies maintain:
//
//   - next[x] is written only by x's successor-enqueuer (the link
//     handshake) or by the current holder (splices). A node moved to
//     the secondary queue always had next != 0, so no late enqueuer
//     can link onto it — the main tail is never moved.
//   - the secondary tail's next is meaningless; it is overwritten
//     before the tail is exposed (appends and flushes store it, and
//     swinging the main tail onto the secondary clears it first).
//   - spin[t] of the holder stays at its grant value until release
//     reads it, carrying the secondary-queue head across handoffs;
//     stail[t] carries the tail and is stored before the grant.
func cnaSpec() *Spec {
	s := &Spec{
		Meta: Meta{
			Name: "CNA",
			Doc:  "compact NUMA-aware MCS (Dice-Kogan); remote waiters parked on a secondary queue",
			NUCA: true, Try: true,
		},
		Words: []Word{
			{Name: "tail"},
			{Name: "handoffs"},
			{Name: "next", Scope: ScopePerThread},
			{Name: "spin", Scope: ScopePerThread},
			{Name: "node", Scope: ScopePerThread},
			{Name: "stail", Scope: ScopePerThread},
		},
		Quiesce: func(q Peeker) error {
			// Every granted thread's Acquire returned, so a non-empty
			// main or secondary queue means a waiter was lost.
			if v := q.Peek(cnaTail, 0); v != 0 {
				return fmt.Errorf("CNA: tail %d not empty at quiescence", v)
			}
			return nil
		},
	}
	s.Acquire = func(e Env, tun Tuning) bool {
		me := e.TID()
		e.Store(cnaNext, me, 0)
		e.Store(cnaSpin, me, 0)
		e.Store(cnaNode, me, uint64(e.Node()))
		prev := e.Swap(cnaTail, 0, cnaEnc(me))
		if prev == 0 {
			// Uncontended: grant ourselves with an empty secondary queue.
			e.Store(cnaSpin, me, 1)
			return true
		}
		e.Store(cnaNext, int(prev)-1, cnaEnc(me))
		e.SlowPath()
		e.AwaitLink(cnaSpin, me)
		return true
	}
	s.TryBody = func(e Env, tun Tuning) bool {
		me := e.TID()
		e.Store(cnaNext, me, 0)
		e.Store(cnaNode, me, uint64(e.Node()))
		e.Store(cnaSpin, me, 1)
		return e.CASOnce(cnaTail, 0, 0, cnaEnc(me))
	}
	s.Release = func(e Env, tun Tuning) {
		me := e.TID()
		v := e.Load(cnaSpin, me)
		var secHead, secTail uint64 // enc; 0 = empty secondary queue
		if v >= 2 {
			secHead = v - 1
			secTail = e.Load(cnaSTail, me)
		}
		succ := e.Load(cnaNext, me)
		if succ == 0 {
			if secHead == 0 {
				// Nobody anywhere: swing the tail out.
				if e.CASOnce(cnaTail, 0, cnaEnc(me), 0) {
					return
				}
			} else {
				// Main queue drained but remote waiters are parked: the
				// secondary queue becomes the main queue. Clear the
				// parked tail's stale next before exposing it as the
				// main tail, then grant the parked head.
				e.Store(cnaNext, int(secTail)-1, 0)
				if e.CASOnce(cnaTail, 0, cnaEnc(me), secTail) {
					e.Store(cnaHandoffs, 0, 0)
					e.Store(cnaSpin, int(secHead)-1, 1)
					return
				}
			}
			// An enqueuer swapped the tail but has not linked yet.
			succ = e.AwaitLink(cnaNext, me)
		}

		grant := func(t uint64, head, tail uint64) {
			if head != 0 {
				e.Store(cnaSTail, int(t)-1, tail)
				e.Store(cnaSpin, int(t)-1, head+1)
			} else {
				e.Store(cnaSpin, int(t)-1, 1)
			}
		}
		flush := func() {
			// Splice the whole secondary queue in front of the main
			// successor and grant its head, with no secondary.
			e.Store(cnaHandoffs, 0, 0)
			e.Store(cnaNext, int(secTail)-1, succ)
			e.Store(cnaSpin, int(secHead)-1, 1)
		}

		if secHead != 0 {
			// Holder-only counter: plain read-modify-write.
			h := e.Load(cnaHandoffs, 0) + 1
			if int(h) >= tun.FairEvery() {
				flush()
				return
			}
			e.Store(cnaHandoffs, 0, h)
		}

		// Locality walk: find the first waiter on our node whose chain
		// position is fully linked. Stop at an unlinked next — the tail
		// (or an in-flight enqueue) must never be moved.
		myNode := uint64(e.Node())
		var local, localPred uint64
		for cur, prev := succ, uint64(0); cur != 0; {
			if e.Load(cnaNode, int(cur)-1) == myNode {
				local, localPred = cur, prev
				break
			}
			nxt := e.Load(cnaNext, int(cur)-1)
			if nxt == 0 {
				break
			}
			prev, cur = cur, nxt
		}

		switch {
		case local == 0:
			// No same-node waiter visible: the lock leaves the node, so
			// flush any parked remote waiters rather than strand them.
			if secHead != 0 {
				flush()
			} else {
				grant(succ, 0, 0)
			}
		case localPred == 0:
			// The direct successor is local: plain handoff, secondary
			// queue passed along.
			grant(local, secHead, secTail)
		default:
			// Park the remote prefix [succ .. localPred] on the
			// secondary queue (every node in it has next != 0) and
			// grant the local waiter behind it.
			if secHead != 0 {
				e.Store(cnaNext, int(secTail)-1, succ)
			} else {
				secHead = succ
			}
			secTail = localPred
			grant(local, secHead, secTail)
		}
	}
	return s
}
