package lockspec

// Tuning collects the backoff constants every algorithm draws from —
// the paper tunes them "by trial and error for each individual
// architecture". It is the union of the knobs both stacks use: the
// simulator interprets delay counts as iterations of the machine's
// empty backoff loop (machine.Latencies.BackoffUnit each), the native
// library as iterations of its spinDelay busy-wait. internal/simlock
// and internal/core alias this type, so one Tuning value configures a
// lock in either stack; each package keeps its own DefaultTuning with
// stack-appropriate magnitudes.
type Tuning struct {
	// TATAS_EXP and the HBO local path.
	BackoffBase   int
	BackoffFactor int
	BackoffCap    int
	// HBO remote path.
	RemoteBackoffBase int
	RemoteBackoffCap  int
	// HBO_HIER cross-cluster path (0 = 4x the remote constants).
	FarBackoffBase int
	FarBackoffCap  int
	// HBO_GT_SD starvation detection (Figure 2).
	GetAngryLimit int
	// RH node-winner remote spin and be-fair threshold.
	RHRemoteBase  int
	RHRemoteCap   int
	RHFairTries   int
	RHGlobalEvery int // force a global release after this many local handoffs
	// CNAFairEvery flushes CNA's secondary (remote-waiter) queue back
	// into the main queue after this many lock handoffs that bypassed
	// it, bounding remote-waiter starvation (0 = 32). Deterministic —
	// the upstream design's random coin is replaced by a counter so
	// schedules replay.
	CNAFairEvery int
	// HMCSThreshold caps consecutive same-node handoffs of HMCS-T's
	// local level before the global lock is released (0 = 8).
	HMCSThreshold int
	// YieldThreshold: the native spinDelay calls runtime.Gosched once
	// per this many loop iterations so oversubscribed GOMAXPROCS
	// configurations make progress (0 = 1024). The simulator ignores it.
	YieldThreshold int
}

// YieldEvery returns the effective native yield threshold.
func (t Tuning) YieldEvery() int {
	if t.YieldThreshold <= 0 {
		return 1024
	}
	return t.YieldThreshold
}

// FairEvery returns the effective CNA flush period.
func (t Tuning) FairEvery() int {
	if t.CNAFairEvery <= 0 {
		return 32
	}
	return t.CNAFairEvery
}

// PassLimit returns the effective HMCS-T local pass threshold.
func (t Tuning) PassLimit() int {
	if t.HMCSThreshold <= 0 {
		return 8
	}
	return t.HMCSThreshold
}

// TimedPollUnits paces the polling loops of timed acquires in both
// stacks: the simulator's event-driven parked spin may outsleep the
// deadline, and a native tuning-sized delay may outspin it, so timed
// waiters poll on this fixed backoff quantum instead.
const TimedPollUnits = 64
