package lockspec

import "fmt"

// Word layout for HMCS-T. Two abortable-MCS levels: one queue per NUCA
// node (local) and one global queue of node representatives. Queue
// handles encode a slot in the owning unit's K=2 node ring, +1 so zero
// means nil: local handle = tid*2+slot, global handle = node*2+slot.
const (
	hmGTail = 0 // global-queue tail: enc(global handle) or 0
	hmLTail = 1 // per-node local-queue tail: enc(local handle) or 0
	hmGStat = 2 // per-node x2: gnode status words
	hmGNext = 3 // per-node x2: gnode successor links
	hmLStat = 4 // per-thread x2: lnode status words
	hmLNext = 5 // per-thread x2: lnode successor links
)

// Status-word protocol (both levels). The abort handshake is a CAS
// race on the status word: an expiring waiter CASes W -> A, a granter
// CASes W -> grant; exactly one wins, and the loser follows the
// winner's decision (an "aborted" waiter that lost the race must
// accept the lock, even past its deadline).
//
// A local grant value additionally carries the handoff context:
// value = ((passes+1) << 32) | gEnc, where passes counts consecutive
// same-node handoffs and gEnc is the enc of the gnode that holds the
// global lock on the node's behalf. The offset keeps every grant value
// >= hmGrantBase and clear of the small control values. The global
// level passes nothing, so its grant value is plain hmGrantBase.
const (
	hmFree       uint64 = 0 // slot unused, reusable by its owner
	hmWait       uint64 = 1 // enqueued, waiting
	hmAbandoned  uint64 = 2 // waiter timed out; node awaits a releaser's sweep
	hmMustGlobal uint64 = 3 // local lock passed, but the global lock must be (re)acquired
	hmGrantBase  uint64 = 4 // >= hmGrantBase: granted
)

func hmLocalGrant(passes int, gEnc uint64) uint64 {
	return (uint64(passes)+1)<<32 | gEnc
}

// hmcstSpec is HMCS-T — the Hierarchical MCS lock with timeouts
// (Chabbi, Amer, Wen & Liu; an abortable HMCS). Threads queue on their
// node's local MCS lock; the local winner queues the node's
// representative on the global MCS lock. The global holder hands the
// lock to local successors up to Tuning.PassLimit consecutive
// same-node passes (carried in the grant value), then releases the
// global lock and tells its successor hmMustGlobal.
//
// Timeout protocol (the T in HMCS-T): every wait is abortable via the
// status-word CAS race above. An abandoned node stays enqueued — its
// links may be read at any moment — until a releaser's sweep walks
// past it: the sweeper reads the node's successor link, attempts the
// grant CAS on that successor, and only then frees the swept node
// (status back to hmFree), so a slot is never recycled while a
// traversal can still reach it. Each unit owns K=2 slots; an acquire
// needing a slot while both are abandoned-in-queue polls until a sweep
// frees one (every abandoned node has a live chain ahead of it, so the
// sweep always comes; a timed acquire gives up instead).
func hmcstSpec() *Spec {
	s := &Spec{
		Meta: Meta{
			Name: "HMCS_T",
			Doc:  "hierarchical MCS with timeout (Chabbi et al.); abortable two-level queues",
			NUCA: true, Timed: true,
		},
		Words: []Word{
			{Name: "gtail"},
			{Name: "ltail", Scope: ScopePerNode},
			{Name: "gstat", Scope: ScopePerNode, Count: 2},
			{Name: "gnext", Scope: ScopePerNode, Count: 2},
			{Name: "lstat", Scope: ScopePerThread, Count: 2},
			{Name: "lnext", Scope: ScopePerThread, Count: 2},
		},
		Quiesce: func(q Peeker) error {
			if v := q.Peek(hmGTail, 0); v != 0 {
				return fmt.Errorf("HMCS_T: global tail %d not empty at quiescence", v)
			}
			for n := 0; n < q.Nodes(); n++ {
				if v := q.Peek(hmLTail, n); v != 0 {
					return fmt.Errorf("HMCS_T: ltail[%d] = %d not empty at quiescence", n, v)
				}
				for k := 0; k < 2; k++ {
					if v := q.Peek(hmGStat, n*2+k); v != hmFree {
						return fmt.Errorf("HMCS_T: gstat[%d][%d] = %d at quiescence (gnode leaked)", n, k, v)
					}
				}
			}
			for t := 0; t < q.Threads(); t++ {
				for k := 0; k < 2; k++ {
					if v := q.Peek(hmLStat, t*2+k); v != hmFree {
						return fmt.Errorf("HMCS_T: lstat[%d][%d] = %d at quiescence (lnode leaked)", t, k, v)
					}
				}
			}
			return nil
		},
	}

	// amcsRelease releases one abortable-MCS level from the node
	// myEnc, granting grantVal to the first waiting successor and
	// sweeping abandoned nodes. It returns the granted node's enc, or
	// 0 when the queue emptied. Order is load-bearing: a swept node's
	// successor link is read, and the grant CAS on that successor
	// attempted, before the swept node is freed for reuse.
	amcsRelease := func(e Env, statW, nextW, tailW, tailI int, myEnc uint64, grantVal uint64) uint64 {
		cur := myEnc
		for {
			nxt := e.Load(nextW, int(cur)-1)
			if nxt == 0 {
				if e.CASOnce(tailW, tailI, cur, 0) {
					e.Store(statW, int(cur)-1, hmFree)
					return 0
				}
				// An enqueuer swapped the tail; its link always lands
				// (linking precedes any abort), so wait it out even
				// past a deadline — releases must complete.
				nxt = e.AwaitLink(nextW, int(cur)-1)
			}
			granted := e.CAS(statW, int(nxt)-1, hmWait, grantVal) == hmWait
			e.Store(statW, int(cur)-1, hmFree)
			if granted {
				return nxt
			}
			cur = nxt // successor abandoned: sweep on
		}
	}

	// claimSlot finds a free slot in the unit's K=2 ring (base is the
	// flattened index of slot 0) and claims it by storing hmWait with
	// a cleared link. Only the unit's owner claims (a thread its own
	// lnodes; a node's unique chain head its gnodes), so observing
	// hmFree is enough. Returns the slot, or -1 on deadline expiry.
	claimSlot := func(e Env, statW, nextW, base int) int {
		for {
			for k := 0; k < 2; k++ {
				if e.Load(statW, base+k) == hmFree {
					e.Store(nextW, base+k, 0)
					e.Store(statW, base+k, hmWait)
					return k
				}
			}
			if e.Expired() {
				return -1
			}
			e.Delay(TimedPollUnits)
		}
	}

	// acquireGlobal enqueues the node's representative on the global
	// queue and waits, returning the gnode's enc (0 means the deadline
	// expired; the aborted gnode stays queued until a sweep frees it).
	acquireGlobal := func(e Env, tun Tuning) uint64 {
		node := e.Node()
		slot := claimSlot(e, hmGStat, hmGNext, node*2)
		if slot < 0 {
			return 0
		}
		h := node*2 + slot
		enc := uint64(h) + 1
		prev := e.Swap(hmGTail, 0, enc)
		if prev == 0 {
			return enc // global winner; status stays hmWait, freed at release
		}
		e.Store(hmGNext, int(prev)-1, enc)
		e.SlowPath()
		if _, ok := e.AwaitWhile(hmGStat, h, hmWait); ok {
			return enc // any non-W value here is a grant
		}
		if e.CAS(hmGStat, h, hmWait, hmAbandoned) == hmWait {
			return 0 // abort won; the gnode awaits a sweep
		}
		return enc // a granter beat our abort: accept, even past the deadline
	}

	s.Acquire = func(e Env, tun Tuning) bool {
		me, node := e.TID(), e.Node()
		slot := claimSlot(e, hmLStat, hmLNext, me*2)
		if slot < 0 {
			return false
		}
		h := me*2 + slot
		enc := uint64(h) + 1
		e.Scratch()[0] = uint64(slot)

		goGlobal := false
		prev := e.Swap(hmLTail, node, enc)
		if prev == 0 {
			goGlobal = true // local winner
		} else {
			e.Store(hmLNext, int(prev)-1, enc)
			e.SlowPath()
			v, ok := e.AwaitWhile(hmLStat, h, hmWait)
			if !ok {
				// Deadline passed: race the abort CAS against a grant.
				old := e.CAS(hmLStat, h, hmWait, hmAbandoned)
				if old == hmWait {
					return false
				}
				v = old // the grant that beat us
			}
			if v >= hmGrantBase {
				// Inherited the global lock from a same-node holder.
				e.Scratch()[1] = v & 0xffffffff
				return true
			}
			goGlobal = true // v == hmMustGlobal
		}
		gEnc := acquireGlobal(e, tun)
		if gEnc == 0 {
			// Global level timed out (or both gnodes still await
			// sweeps): pass local leadership on and report failure.
			amcsRelease(e, hmLStat, hmLNext, hmLTail, node, enc, hmMustGlobal)
			return false
		}
		_ = goGlobal
		e.Scratch()[1] = gEnc
		return true
	}

	s.Release = func(e Env, tun Tuning) {
		me, node := e.TID(), e.Node()
		h := me*2 + int(e.Scratch()[0])
		gEnc := e.Scratch()[1]
		v := e.Load(hmLStat, h)
		passes := 0
		if v >= hmGrantBase {
			passes = int(v >> 32)
		}
		if passes < tun.PassLimit() {
			// Try to hand the global lock to a local successor.
			if amcsRelease(e, hmLStat, hmLNext, hmLTail, node, uint64(h)+1,
				hmLocalGrant(passes, gEnc)) != 0 {
				return
			}
			// Local queue drained: release the global lock too.
			amcsRelease(e, hmGStat, hmGNext, hmGTail, 0, gEnc, hmGrantBase)
			return
		}
		// Pass limit reached: release the global lock first, then tell
		// the local successor to queue globally itself.
		amcsRelease(e, hmGStat, hmGNext, hmGTail, 0, gEnc, hmGrantBase)
		amcsRelease(e, hmLStat, hmLNext, hmLTail, node, uint64(h)+1, hmMustGlobal)
	}
	return s
}
