// Package lockspec_test checks the registry from outside: every
// algorithm must instantiate in both stacks (or be flagged SimOnly),
// and the sim and native instantiations of a spec must report identical
// algorithm metadata — name and capability surface. This is the
// test-level twin of the CI drift guard: an algorithm registered in one
// stack only, or exposing a capability in one stack only, fails here.
package lockspec_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lockspec"
	"repro/internal/machine"
	"repro/internal/simlock"
)

func testTopology() (*machine.Machine, []int, *core.Runtime) {
	cfg := machine.WildFire()
	cfg.CPUsPerNode = 2
	cfg.Seed = 1
	m := machine.New(cfg)
	cpus := []int{0, 1, 2, 3} // round-robin over the two nodes
	for t := range cpus {
		cpus[t] = (t%2)*cfg.CPUsPerNode + t/2
	}
	return m, cpus, core.NewRuntime(2, 4)
}

// TestSpecRoundTripMetadata instantiates every registered algorithm in
// both stacks and asserts the two twins agree with the registry: same
// name, and the Timed / Try / Quiesce / Inject capabilities surface on
// both sides exactly when the spec declares them.
func TestSpecRoundTripMetadata(t *testing.T) {
	m, cpus, r := testTopology()
	for _, s := range lockspec.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			sl := simlock.New(s.Name, m, 0, cpus, simlock.DefaultTuning())
			if sl.Name() != s.Name {
				t.Errorf("sim Name() = %q", sl.Name())
			}
			_, simTimed := sl.(simlock.TimedLock)
			if simTimed != s.Timed {
				t.Errorf("sim TimedLock = %v, registry Timed = %v", simTimed, s.Timed)
			}
			if s.Backed() {
				_, simQ := sl.(simlock.Quiescer)
				if simQ != (s.Quiesce != nil) {
					t.Errorf("sim Quiescer = %v, spec Quiesce = %v", simQ, s.Quiesce != nil)
				}
				_, simInj := sl.(simlock.WordInjector)
				if simInj != (s.Inject != nil) {
					t.Errorf("sim WordInjector = %v, spec Inject = %v", simInj, s.Inject != nil)
				}
			}

			if s.SimOnly {
				return
			}
			nl := core.New(s.Name, r, core.DefaultTuning())
			if nl.Name() != s.Name {
				t.Errorf("native Name() = %q", nl.Name())
			}
			_, natTimed := nl.(core.TimedLock)
			if natTimed != s.Timed {
				t.Errorf("native TimedLock = %v, registry Timed = %v", natTimed, s.Timed)
			}
			_, natTry := nl.(core.TryLocker)
			if natTry != s.Try {
				t.Errorf("native TryLocker = %v, registry Try = %v", natTry, s.Try)
			}
			if s.Backed() {
				_, natQ := nl.(interface{ Quiescent() error })
				if natQ != (s.Quiesce != nil) {
					t.Errorf("native Quiescent = %v, spec Quiesce = %v", natQ, s.Quiesce != nil)
				}
				_, natInj := nl.(interface{ InjectWord(uint64) })
				if natInj != (s.Inject != nil) {
					t.Errorf("native InjectWord = %v, spec Inject = %v", natInj, s.Inject != nil)
				}
			}
		})
	}
}

// TestNameListsAgreeAcrossStacks pins that every name list both stacks
// and the facade expose derives from the one registry.
func TestNameListsAgreeAcrossStacks(t *testing.T) {
	if got, want := len(simlock.AllNames()), len(lockspec.AllNames(true)); got != want {
		t.Errorf("simlock.AllNames: %d names, registry %d", got, want)
	}
	if got, want := len(core.AllNames()), len(lockspec.AllNames(false)); got != want {
		t.Errorf("core.AllNames: %d names, registry %d", got, want)
	}
	for i, n := range core.Names() {
		if simlock.Names()[i] != n {
			t.Fatalf("paper name order diverges at %d: core %q vs sim %q",
				i, n, simlock.Names()[i])
		}
	}
	// The native list is the sim list minus simulator-only protocols.
	simOnly := map[string]bool{}
	for _, s := range lockspec.All() {
		if s.SimOnly {
			simOnly[s.Name] = true
		}
	}
	var fromSim []string
	for _, n := range simlock.AllNames() {
		if !simOnly[n] {
			fromSim = append(fromSim, n)
		}
	}
	native := core.AllNames()
	if len(fromSim) != len(native) {
		t.Fatalf("native %v vs sim-derived %v", native, fromSim)
	}
	for i := range native {
		if native[i] != fromSim[i] {
			t.Fatalf("name lists diverge at %d: %q vs %q", i, native[i], fromSim[i])
		}
	}
}

// TestREADMETableMatchesRegistry pins the README's lock table to the
// registry rendering: adding or changing an algorithm fails this test
// until the committed table is regenerated (lockspec.MarkdownTable).
func TestREADMETableMatchesRegistry(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), lockspec.MarkdownTable()) {
		t.Fatal("README.md lock table does not match lockspec.MarkdownTable(); " +
			"regenerate the table from the registry")
	}
}

// TestRegistryWellFormed sanity-checks the registry itself.
func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range lockspec.All() {
		if s.Name == "" || seen[s.Name] {
			t.Fatalf("registry entry %q empty or duplicated", s.Name)
		}
		seen[s.Name] = true
		if s.Doc == "" {
			t.Errorf("%s: missing Doc line (README table renders it)", s.Name)
		}
		if s.Backed() && s.Release == nil {
			t.Errorf("%s: Acquire without Release", s.Name)
		}
		if s.Inject != nil && s.Quiesce == nil {
			t.Errorf("%s: Inject without Quiesce (harness cannot verify recovery)", s.Name)
		}
	}
	if len(lockspec.PaperNames()) != 8 {
		t.Fatalf("paper names = %v", lockspec.PaperNames())
	}
}
