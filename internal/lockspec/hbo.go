package lockspec

import "fmt"

// Lock-word values for the HBO family. The paper cas-es the acquiring
// thread's node_id into the lock; node ids are shifted by one so FREE
// can be zero.
const hboFree uint64 = 0

func hboNodeVal(node int) uint64 { return uint64(node) + 1 }

// The per-node is_spinning word holds the lock's tag (Env.Tag — the
// lock word's address on the simulator, a process-unique id natively)
// while a node winner is remote-spinning, blocking its neighbors, and
// hboDummy otherwise.
const hboDummy uint64 = 0

type hboMode int

const (
	modeHBO hboMode = iota
	modeGT
	modeGTSD
)

// Word layout for the HBO family. GT modes append the per-node
// is_spinning throttle words; plain HBO declares only the lock word.
const (
	hboLock = 0
	hboSpin = 1
)

// hboSpec is the paper's Figure 1. mode selects plain HBO (the
// emphasized GT lines skipped), HBO_GT (global-traffic throttling via
// per-node is_spinning words), or HBO_GT_SD (GT plus the node-centric
// starvation detection of Figure 2). The timed path is the same
// protocol with the deadline checked at backoff boundaries — deadline
// checks touch no shared word, so the unbounded path issues the exact
// access sequence of the paper's pseudocode. An abort restores every
// protocol invariant: the lock word is never claimed, the aborting
// waiter's is_spinning throttle is reset to the dummy value — the same
// store the successful remote path issues — and any nodes the GT_SD
// anger logic stopped are released.
func hboSpec(name string, mode hboMode) *Spec {
	gt := mode != modeHBO
	doc := "hierarchical backoff lock (Figure 1); lock stays in its node"
	if mode == modeGT {
		doc = "HBO + per-node traffic throttling (is_spinning words)"
	}
	if mode == modeGTSD {
		doc = "HBO_GT + node-centric starvation detection (Figure 2)"
	}
	words := []Word{{Name: "lock"}}
	if gt {
		// "not necessarily allocated in the local memory" — each node's
		// throttle word is homed locally, the intended deployment.
		words = append(words, Word{Name: "is_spinning", Scope: ScopePerNode})
	}
	s := &Spec{
		Meta: Meta{
			Name:  name,
			Doc:   doc,
			Paper: true, NUCA: true, Timed: true, Try: true,
		},
		Words:  words,
		Inject: &Ref{W: hboLock, I: 0},
		Release: func(e Env, tun Tuning) {
			// hbo_release (Figure 1, lines 62–65).
			e.Store(hboLock, 0, hboFree)
		},
		TryBody: func(e Env, tun Tuning) bool {
			if gt && e.Load(hboSpin, e.Node()) == e.Tag() {
				return false // a neighbor holds the node back; don't barge
			}
			return e.CASOnce(hboLock, 0, hboFree, hboNodeVal(e.Node()))
		},
		Quiesce: func(q Peeker) error {
			if v := q.Peek(hboLock, 0); v != hboFree {
				return fmt.Errorf("%s: lock word %d not free at quiescence", name, v)
			}
			if gt {
				for n := 0; n < q.Nodes(); n++ {
					if v := q.Peek(hboSpin, n); v != hboDummy {
						return fmt.Errorf("%s: is_spinning[%d] = %d at quiescence (node left throttled)",
							name, n, v)
					}
				}
			}
			return nil
		},
	}
	// Acquire is hbo_acquire (Figure 1, lines 1–10) with
	// hbo_acquire_slowpath (lines 17–61; Figure 2 replaces the remote
	// loop's tail in GT_SD mode). The paper's goto start / goto restart
	// structure is kept verbatim.
	s.Acquire = func(e Env, tun Tuning) bool {
		my := hboNodeVal(e.Node())
		if gt {
			// Line 5: while (L == is_spinning[my_node_id]) ; // spin
			if !e.ThrottleWait(hboSpin, e.Node(), e.Tag()) {
				return false
			}
		}
		tmp := e.CAS(hboLock, 0, hboFree, my)
		if tmp == hboFree {
			return true // lock was free, and is now locked
		}

		// Slow path.
		e.SlowPath()

		// SD state (Figure 2): per-acquire anger counter and stopped
		// nodes.
		getAngry := 0
		angry := false
		var stopped []int
		releaseStopped := func() {
			for _, n := range stopped {
				e.Store(hboSpin, n, hboDummy)
			}
			stopped = stopped[:0]
		}

	start:
		if tmp == my { // local lock (Figure 1, lines 23–36)
			b := tun.BackoffBase
			for {
				if e.Expired() {
					return false // local waiters publish no auxiliary state
				}
				e.Backoff(&b, tun.BackoffFactor, tun.BackoffCap)
				tmp = e.CAS(hboLock, 0, hboFree, my)
				if tmp == hboFree {
					return true
				}
				if tmp != my {
					e.Backoff(&b, tun.BackoffFactor, tun.BackoffCap)
					goto restart
				}
			}
		}

		// Remote lock (Figure 1, lines 37–52).
		{
			b := tun.RemoteBackoffBase
			bcap := tun.RemoteBackoffCap
			if gt {
				e.Store(hboSpin, e.Node(), e.Tag())
			}
			for {
				if e.Expired() {
					if gt {
						// Abort mirrors the successful exit: un-throttle
						// our node's neighbors and release any stopped
						// nodes, so the abandoned attempt leaves the
						// protocol idle.
						e.Store(hboSpin, e.Node(), hboDummy)
						releaseStopped()
					}
					return false
				}
				e.Backoff(&b, tun.BackoffFactor, bcap)
				tmp = e.CAS(hboLock, 0, hboFree, my)
				if tmp == hboFree {
					if gt {
						// Release the threads from our node.
						e.Store(hboSpin, e.Node(), hboDummy)
						releaseStopped()
					}
					return true
				}
				if tmp == my {
					if gt {
						e.Store(hboSpin, e.Node(), hboDummy)
						releaseStopped()
					}
					goto restart
				}
				if mode == modeGTSD {
					// Figure 2, lines 57–63: the lock is still in some
					// remote node; get angry. An angry node spins more
					// frequently and stops the owning node's other
					// threads from re-acquiring.
					getAngry++
					if getAngry >= tun.GetAngryLimit {
						getAngry = 0
						owner := int(tmp) - 1
						// Bounds-guard the decoded owner before indexing
						// is_spinning: a corrupted lock word must not take
						// down the whole machine.
						if owner >= 0 && owner < e.Nodes() &&
							owner != e.Node() && !containsInt(stopped, owner) {
							stopped = append(stopped, owner)
							e.Store(hboSpin, owner, e.Tag())
						}
						if !angry {
							angry = true
							b = tun.BackoffBase
							bcap = tun.BackoffCap
						}
					}
				}
			}
		}

	restart:
		// Figure 1, lines 55–60. No auxiliary state is held here: both
		// jumps to restart reset is_spinning and the stopped list first.
		if gt {
			if !e.ThrottleWait(hboSpin, e.Node(), e.Tag()) {
				return false
			}
		}
		tmp = e.CAS(hboLock, 0, hboFree, my)
		if tmp == hboFree {
			return true
		}
		if e.Expired() {
			return false
		}
		goto start
	}
	return s
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
