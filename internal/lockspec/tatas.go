package lockspec

// tatasSpec is the traditional test-and-test&set lock: tas to acquire,
// spin with plain loads while the lock is held, store zero to release.
// An aborted timed attempt leaves no state behind — a failed tas writes
// 1 over an already-set word — so giving up is just ceasing to retry.
func tatasSpec() *Spec {
	return &Spec{
		Meta: Meta{
			Name:  "TATAS",
			Doc:   "test-and-test&set; one word, spin on cached copy",
			Paper: true, Timed: true, Try: true,
		},
		Words: []Word{{Name: "lock"}},
		Acquire: func(e Env, tun Tuning) bool {
			for {
				if e.TAS(0, 0) == 0 {
					return true
				}
				// Test: spin with ordinary loads until the lock reads
				// free, then retry the tas. The refill burst after a
				// release is modeled by every spinner re-reading and
				// re-tas-ing.
				e.SlowPath()
				if !e.AwaitZero(0, 0) {
					return false
				}
			}
		},
		Release: func(e Env, tun Tuning) { e.Store(0, 0, 0) },
		TryBody: func(e Env, tun Tuning) bool {
			return e.Load(0, 0) == 0 && e.TAS(0, 0) == 0
		},
	}
}

// tatasExpSpec adds Ethernet-style exponential backoff between tas
// attempts (the paper's TATAS_EXP, section 3). The timed path is the
// same loop with a deadline check at every backoff boundary.
func tatasExpSpec() *Spec {
	return &Spec{
		Meta: Meta{
			Name:  "TATAS_EXP",
			Doc:   "TATAS + exponential backoff between attempts",
			Paper: true, Timed: true, Try: true,
		},
		Words: []Word{{Name: "lock"}},
		Acquire: func(e Env, tun Tuning) bool {
			if e.TAS(0, 0) == 0 {
				return true
			}
			e.SlowPath()
			b := tun.BackoffBase
			for {
				if e.Expired() {
					return false
				}
				e.Backoff(&b, tun.BackoffFactor, tun.BackoffCap)
				if e.Load(0, 0) != 0 {
					continue
				}
				if e.TAS(0, 0) == 0 {
					return true
				}
			}
		},
		Release: func(e Env, tun Tuning) { e.Store(0, 0, 0) },
		TryBody: func(e Env, tun Tuning) bool {
			return e.Load(0, 0) == 0 && e.TAS(0, 0) == 0
		},
	}
}
