package lockspec

// The registry: every lock algorithm either stack knows, in canonical
// order — the paper's eight first (its table order), then the
// extensions in the order they were added. Spec-backed algorithms
// carry transition bodies (Acquire != nil) and instantiate into both
// stacks from this one description; the remaining entries are
// metadata-only and still have hand-written twins (their name lists,
// capability flags and docs derive from here all the same, so a lock
// cannot exist in one list and not another).
var registry = []*Spec{
	tatasSpec(),
	tatasExpSpec(),
	{Meta: Meta{Name: "MCS", Paper: true, Try: true,
		Doc: "Mellor-Crummey & Scott list queue lock; each waiter spins on its own node"}},
	{Meta: Meta{Name: "CLH", Paper: true,
		Doc: "Craig/Landin-Hagersten implicit-queue lock; spin on predecessor's node"}},
	{Meta: Meta{Name: "RH", Paper: true, NUCA: true, Try: true, MaxNodes: 2,
		Doc: "Radovic-Hagersten two-copy lock; node winner steals the remote copy"}},
	hboSpec("HBO", modeHBO),
	hboSpec("HBO_GT", modeGT),
	hboSpec("HBO_GT_SD", modeGTSD),
	ticketSpec(),
	{Meta: Meta{Name: "ANDERSON",
		Doc: "Anderson array queue lock; slots in one circular flag array"}},
	{Meta: Meta{Name: "REACTIVE",
		Doc: "Lim-Agarwal reactive lock; switches TATAS_EXP <-> MCS by contention"}},
	{Meta: Meta{Name: "HBO_HIER", NUCA: true, Try: true,
		Doc: "hierarchical HBO (paper §4.1); third backoff tier across clusters"}},
	{Meta: Meta{Name: "COHORT", NUCA: true,
		Doc: "Dice-Marathe-Shavit ticket-ticket cohort lock; node-local handoffs"}},
	{Meta: Meta{Name: "CLH_TRY", Timed: true, SimOnly: true,
		Doc: "CLH with Scott-Scherer timeout splice-out (simulator only)"}},
	cnaSpec(),
	hmcstSpec(),
}

// All returns every registered algorithm in canonical order.
func All() []*Spec { return registry }

// Lookup returns the named algorithm's entry, or nil. Spec-backed
// entries (Backed) can be instantiated; metadata-only entries cannot.
func Lookup(name string) *Spec {
	for _, s := range registry {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Backed reports whether s carries transition bodies (instantiable via
// simlock.FromSpec / core.FromSpec) rather than metadata alone.
func (s *Spec) Backed() bool { return s.Acquire != nil }

// names filters the registry in order.
func names(keep func(*Spec) bool) []string {
	var out []string
	for _, s := range registry {
		if keep(s) {
			out = append(out, s.Name)
		}
	}
	return out
}

// PaperNames lists the paper's eight algorithms in its table order.
func PaperNames() []string {
	return names(func(s *Spec) bool { return s.Paper })
}

// ExtendedNames lists the algorithms beyond the paper's eight. With
// simOnly false it omits the simulator-only protocols (the native
// stack's view).
func ExtendedNames(simOnly bool) []string {
	return names(func(s *Spec) bool { return !s.Paper && (simOnly || !s.SimOnly) })
}

// AllNames lists the paper's eight plus the extensions.
func AllNames(simOnly bool) []string {
	return names(func(s *Spec) bool { return simOnly || !s.SimOnly })
}

// TimedNames lists the algorithms with a genuinely timed, abortable
// acquire, in registry order.
func TimedNames(simOnly bool) []string {
	return names(func(s *Spec) bool { return s.Timed && (simOnly || !s.SimOnly) })
}

// NUCAAware reports whether the named algorithm exploits node locality
// (the paper's "NUCA-aware" group). Unknown names are not NUCA-aware.
func NUCAAware(name string) bool {
	s := Lookup(name)
	return s != nil && s.NUCA
}

// MarkdownTable renders the registry as the README's lock table. The
// README embeds the output verbatim (TestREADMETableMatchesRegistry
// pins it), so the docs cannot drift from the code: add an algorithm
// and the test fails until the table is regenerated.
func MarkdownTable() string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return ""
	}
	out := "| Algorithm | Paper | NUCA | Try | Timed | Stacks | Description |\n" +
		"|---|---|---|---|---|---|---|\n"
	for _, s := range registry {
		stacks := "sim+native"
		if s.SimOnly {
			stacks = "sim only"
		}
		out += "| `" + s.Name + "` | " + mark(s.Paper) + " | " + mark(s.NUCA) +
			" | " + mark(s.Try) + " | " + mark(s.Timed) + " | " + stacks +
			" | " + s.Doc + " |\n"
	}
	return out
}
