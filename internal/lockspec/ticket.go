package lockspec

import "fmt"

// Word layout for the ticket lock.
const (
	tkNext  = 0 // next ticket to hand out
	tkOwner = 1 // ticket currently served
)

// ticketSpec is the classic ticket lock with proportional backoff: a
// fetch-and-increment (built from cas on the simulator, as on SPARC)
// takes a ticket, and the holder's release publishes the next ticket
// number. The grant wait is GrantWait — proportional backoff natively,
// a parked test-and-test&set-style spin on the simulator. The paper's
// related work (Mellor-Crummey & Scott 1991) uses it as the
// fair-but-centralized baseline between TATAS and queue locks.
func ticketSpec() *Spec {
	return &Spec{
		Meta: Meta{
			Name: "TICKET",
			Doc:  "FIFO ticket lock with proportional backoff",
		},
		Words: []Word{{Name: "next"}, {Name: "owner"}},
		Acquire: func(e Env, tun Tuning) bool {
			my := e.FetchInc(tkNext, 0)
			e.GrantWait(tkOwner, 0, my)
			return true
		},
		Release: func(e Env, tun Tuning) {
			// Only the holder writes owner, so a plain increment is safe.
			e.HolderInc(tkOwner, 0)
		},
		Quiesce: func(q Peeker) error {
			if n, o := q.Peek(tkNext, 0), q.Peek(tkOwner, 0); n != o {
				return fmt.Errorf("TICKET: next %d != owner %d at quiescence", n, o)
			}
			return nil
		},
	}
}
