// Package stats provides the small statistics and table-rendering
// helpers the experiment harness uses to report results the way the
// paper's tables and figures do.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // population variance, matching the paper's "(var)"
	Min      float64
	Max      float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Variance = sq / float64(s.N)
	return s
}

// Stddev returns the population standard deviation.
func (s Summary) Stddev() float64 { return math.Sqrt(s.Variance) }

// SpreadPercent returns (max-min)/min as a percentage — the paper's
// fairness metric ("percentage difference in completion time between the
// first and the last processor"). It returns 0 for degenerate samples.
func SpreadPercent(xs []float64) float64 {
	s := Summarize(xs)
	if s.N == 0 || s.Min == 0 {
		return 0
	}
	return 100 * (s.Max - s.Min) / s.Min
}

// Normalize divides each value by base. A zero base yields zeros.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Median returns the middle value (mean of the two middles for even n).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-quantile of xs (q in [0,1]) by linear
// interpolation between order statistics, so Quantile(xs, 0.5) agrees
// with Median. An empty sample yields 0; q is clamped to [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return sortedQuantile(s, q)
}

// Quantiles evaluates Quantile at each q with a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, q := range qs {
		out[i] = sortedQuantile(s, q)
	}
	return out
}

// sortedQuantile interpolates the q-quantile of an ascending non-empty s.
// A NaN q propagates as NaN: the comparisons below are all false for NaN,
// and int(NaN) is an out-of-range index, so without the explicit guard a
// NaN would panic instead of following float semantics.
func sortedQuantile(s []float64, q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i] + (pos-float64(i))*(s[i+1]-s[i])
}

// Table renders aligned text tables and CSV.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not
// needed for the numeric/identifier cells the harness produces).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// F formats a float with the given number of decimals, trimming to a
// compact representation for table cells.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}
