package stats

import (
	"math"
	"testing"
)

// Edge-case coverage for the quantile and merge paths: empty inputs,
// single samples, NaN quantile arguments, and merges involving empty
// histograms. The NaN cases are regression tests — sortedQuantile used
// to index with int(NaN) (a panic) and Histogram.Quantile computed
// uint64(NaN*n) (architecture-dependent).

func TestHistogramEmptyQuantiles(t *testing.T) {
	var h Histogram
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram summary not all zero: %s", h.String())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Add(42)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("single-sample Quantile(%v) = %d, want 42", q, got)
		}
	}
	if h.Mean() != 42 {
		t.Fatalf("single-sample Mean = %v, want 42", h.Mean())
	}
}

func TestHistogramQuantileNaN(t *testing.T) {
	var h Histogram
	h.Add(10)
	h.Add(20)
	h.Add(30)
	// NaN behaves like q <= 0: the observed minimum, deterministically.
	if got := h.Quantile(math.NaN()); got != 10 {
		t.Fatalf("Quantile(NaN) = %d, want 10", got)
	}
}

func TestHistogramMergeEmptyCases(t *testing.T) {
	var full Histogram
	for _, v := range []int64{5, 7, 9} {
		full.Add(v)
	}
	before := full.String()

	// Merging an empty histogram in must not disturb min/max/count.
	var empty Histogram
	full.Merge(&empty)
	full.Merge(nil)
	if full.String() != before {
		t.Fatalf("merge of empty changed %q to %q", before, full.String())
	}

	// Merging into an empty histogram must adopt the source's min, even
	// though the empty side's zero-value min field (0) is smaller.
	var dst Histogram
	dst.Merge(&full)
	if dst.Min() != 5 || dst.Max() != 9 || dst.Count() != 3 {
		t.Fatalf("empty.Merge(full) = %s, want min=5 max=9 n=3", dst.String())
	}
	if dst.Quantile(0.5) != full.Quantile(0.5) {
		t.Fatalf("merged median %d != source median %d", dst.Quantile(0.5), full.Quantile(0.5))
	}
}

func TestQuantileNaNArg(t *testing.T) {
	xs := []float64{1, 2, 3}
	// NaN propagates as NaN instead of panicking on int(NaN).
	if got := Quantile(xs, math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(xs, NaN) = %v, want NaN", got)
	}
	got := Quantiles(xs, 0.5, math.NaN(), 1)
	if got[0] != 2 || !math.IsNaN(got[1]) || got[2] != 3 {
		t.Fatalf("Quantiles mixed NaN = %v, want [2 NaN 3]", got)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %v, want 0", got)
	}
	for _, q := range []float64{-0.5, 0, 0.3, 1, 7} {
		if got := Quantile([]float64{4}, q); got != 4 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 4", q, got)
		}
	}
}
