package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Histogram bucket geometry. Values below histSubBuckets get exact
// buckets; above that, every power-of-two octave [2^k, 2^(k+1)) is split
// into histSubBuckets linear sub-buckets, bounding the relative quantile
// error by 1/histSubBuckets (6.25%). The geometry is part of the report
// format — TestHistogramBucketBoundaries pins it.
const (
	histSubBits    = 4
	histSubBuckets = 1 << histSubBits // 16
	// histBuckets covers every non-negative int64: exact buckets for
	// 0..15 plus 16 sub-buckets for each of the 59 octaves 2^4..2^62.
	histBuckets = histSubBuckets + (63-histSubBits)*histSubBuckets
)

// Histogram is a streaming log-bucketed histogram of non-negative int64
// samples (simulated nanoseconds, counters). It records in O(1) per
// sample with no per-sample allocation, merges with other histograms,
// and answers p50/p90/p99-style quantile queries with bounded relative
// error — the distribution machinery mean-only summaries cannot provide.
// The zero value is ready to use. Negative samples clamp to zero.
//
// Concurrency: a Histogram is NOT safe for concurrent use. Add, Merge,
// Sub and every query method must be externally synchronized — Add from
// one goroutine racing Merge (or Quantile) from another corrupts counts
// and trips the race detector. The single-threaded simulation needs no
// locking; concurrent native recorders must either give each goroutine
// its own histogram and Merge after quiescence, or serialize access the
// way internal/obs does: per-node shards, each shard's histograms
// guarded by that shard's mutex, taken only on sampled records and at
// snapshot-merge time (TestShardedRecordVsMergeRace in internal/obs
// exercises exactly that contract under -race).
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// histBucket returns the bucket index for value v.
func histBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	k := bits.Len64(u) - 1 // k >= histSubBits
	sub := int(u>>(uint(k)-histSubBits)) - histSubBuckets
	return histSubBuckets + (k-histSubBits)*histSubBuckets + sub
}

// histBounds returns the inclusive value range [lo, hi] of bucket i.
func histBounds(i int) (lo, hi int64) {
	if i < histSubBuckets {
		return int64(i), int64(i)
	}
	octave := (i - histSubBuckets) / histSubBuckets
	sub := (i - histSubBuckets) % histSubBuckets
	width := int64(1) << uint(octave)
	lo = int64(histSubBuckets+sub) << uint(octave)
	return lo, lo + width - 1
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.counts[histBucket(v)]++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact mean of the recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]): the upper
// bound of the first bucket whose cumulative count reaches q*n, clamped
// to the observed min/max so Quantile(0) == Min and Quantile(1) == Max.
// A NaN q behaves like q <= 0 and returns Min: every comparison below is
// false for NaN, and uint64(NaN*n) is architecture-dependent, so without
// the guard the result would differ across platforms.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 || math.IsNaN(q) {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			_, hi := histBounds(i)
			if hi > h.max {
				hi = h.max
			}
			if hi < h.min {
				hi = h.min
			}
			return hi
		}
	}
	return h.max
}

// Merge adds o's samples into h. Mergeable buckets are what let
// per-lock histograms roll up into run aggregates without replaying
// events.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// Clone returns an independent copy of h.
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// Sub removes an earlier snapshot o from h in place: counts, n and sum
// subtract bucket-wise, so h becomes the histogram of the samples
// recorded after o was taken. o must be a prior snapshot of the same
// histogram (every bucket count ≤ h's); defensive clamping keeps a
// violated precondition from underflowing. Min and Max are recomputed
// from the surviving buckets' bounds, so after Sub they are bucket-edge
// approximations rather than exact observed samples.
func (h *Histogram) Sub(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		if c >= h.counts[i] {
			h.counts[i] = 0
		} else {
			h.counts[i] -= c
		}
	}
	if o.n >= h.n {
		h.n = 0
	} else {
		h.n -= o.n
	}
	h.sum -= o.sum
	if h.n == 0 {
		h.sum, h.min, h.max = 0, 0, 0
		return
	}
	h.min, h.max = 0, 0
	first := true
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := histBounds(i)
		if first {
			h.min = lo
			first = false
		}
		h.max = hi
	}
	if h.sum < 0 {
		h.sum = 0
	}
}

// HistogramSnapshot is the portable form of a Histogram: enough to
// rebuild it exactly (bucket geometry is pinned by the package
// constants), serialize it deterministically, and difference two
// snapshots. Buckets hold only the non-empty buckets in ascending value
// order.
type HistogramSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot exports h's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:   h.n,
		Sum:     h.sum,
		Min:     h.Min(),
		Max:     h.Max(),
		Buckets: h.Buckets(),
	}
}

// Histogram rebuilds a live histogram from the snapshot. Each bucket's
// Lo pins its index, so rebuild→Snapshot round-trips exactly.
func (s HistogramSnapshot) Histogram() *Histogram {
	h := &Histogram{n: s.Count, sum: s.Sum, min: s.Min, max: s.Max}
	for _, b := range s.Buckets {
		h.counts[histBucket(b.Lo)] += b.Count
	}
	return h
}

// Quantile answers the q-quantile of the snapshotted distribution (a
// convenience wrapper over rebuilding; see Histogram.Quantile).
func (s HistogramSnapshot) Quantile(q float64) int64 {
	return s.Histogram().Quantile(q)
}

// Mean returns the snapshot's mean (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// HistBucket is one non-empty histogram bucket, for export.
type HistBucket struct {
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := histBounds(i)
		out = append(out, HistBucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// String renders a compact one-line summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50=%d p90=%d p99=%d max=%d",
		h.n, h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.max)
	return b.String()
}
