package stats

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries pins the bucket geometry: values 0..15
// get exact buckets, then each power-of-two octave splits into 16
// linear sub-buckets. Report formats depend on this staying stable
// across PRs — do not change these expectations without versioning the
// report schema.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
		lo, hi int64
	}{
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{15, 15, 15, 15},
		{16, 16, 16, 16}, // first octave has width-1 sub-buckets
		{31, 31, 31, 31},
		{32, 32, 32, 33}, // octave [32,64): width-2 sub-buckets
		{33, 32, 32, 33},
		{63, 47, 62, 63},
		{64, 48, 64, 67}, // octave [64,128): width-4 sub-buckets
		{100, 57, 100, 103},
		{1000, 111, 992, 1023},
		{1024, 112, 1024, 1087},
		{1 << 20, 272, 1 << 20, 1<<20 + (1<<16 - 1)},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.bucket {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.bucket)
		}
		lo, hi := histBounds(c.bucket)
		if lo != c.lo || hi != c.hi {
			t.Errorf("histBounds(%d) = [%d,%d], want [%d,%d]", c.bucket, lo, hi, c.lo, c.hi)
		}
	}
	// Every value maps into its bucket's range, across octave edges.
	for _, v := range []int64{0, 1, 7, 15, 16, 17, 255, 256, 1 << 30, 1<<62 + 12345} {
		lo, hi := histBounds(histBucket(v))
		if v < lo || v > hi {
			t.Errorf("value %d outside its bucket range [%d,%d]", v, lo, hi)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("zero histogram not empty")
	}
	for v := int64(1); v <= 1000; v++ {
		h.Add(v)
	}
	if h.Count() != 1000 || h.Sum() != 500500 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Fatalf("mean=%v", h.Mean())
	}
	// Quantiles must be within one sub-bucket (6.25%) of the truth.
	for _, c := range []struct {
		q     float64
		exact float64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}} {
		got := float64(h.Quantile(c.q))
		if math.Abs(got-c.exact)/c.exact > 1.0/16 {
			t.Errorf("Quantile(%v) = %v, want within 6.25%% of %v", c.q, got, c.exact)
		}
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 1000 {
		t.Fatalf("extreme quantiles: p0=%d p100=%d", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample not clamped: %+v", h.String())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	for v := int64(0); v < 500; v++ {
		a.Add(v)
		all.Add(v)
	}
	for v := int64(500); v < 1000; v++ {
		b.Add(v * 7)
		all.Add(v * 7)
	}
	a.Merge(&b)
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.Count() != all.Count() || a.Sum() != all.Sum() ||
		a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge mismatch: %s vs %s", a.String(), all.String())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("Quantile(%v): merged %d vs direct %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(3)
	h.Add(3)
	h.Add(40)
	bs := h.Buckets()
	if len(bs) != 2 {
		t.Fatalf("buckets = %+v", bs)
	}
	if bs[0].Lo != 3 || bs[0].Hi != 3 || bs[0].Count != 2 {
		t.Fatalf("bucket 0 = %+v", bs[0])
	}
	if bs[1].Lo != 40 || bs[1].Hi != 41 || bs[1].Count != 1 {
		t.Fatalf("bucket 1 = %+v", bs[1])
	}
}

func TestQuantileHelpers(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0.5); q != Median(xs) {
		t.Fatalf("Quantile(0.5) = %v, median = %v", q, Median(xs))
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 1.75 {
		t.Fatalf("Quantile(0.25) = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("Quantile(nil) = %v", q)
	}
	qs := Quantiles(xs, 0, 0.25, 0.5, 1)
	want := []float64{1, 1.75, 2.5, 4}
	for i := range qs {
		if qs[i] != want[i] {
			t.Fatalf("Quantiles = %v, want %v", qs, want)
		}
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Fatalf("Quantiles(nil) = %v", got)
	}
}

func TestHistogramCloneIndependent(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 100; v++ {
		h.Add(v)
	}
	c := h.Clone()
	c.Add(1 << 20)
	if h.Count() != 100 || c.Count() != 101 {
		t.Fatalf("clone not independent: h=%d c=%d", h.Count(), c.Count())
	}
	if h.Max() == c.Max() {
		t.Fatalf("clone shares state: max %d", h.Max())
	}
}

func TestHistogramSub(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 50; v++ {
		h.Add(v)
	}
	early := h.Clone()
	for v := int64(51); v <= 100; v++ {
		h.Add(v)
	}
	h.Sub(early)
	if h.Count() != 50 {
		t.Fatalf("Sub count = %d, want 50", h.Count())
	}
	wantSum := int64(0)
	for v := int64(51); v <= 100; v++ {
		wantSum += v
	}
	if h.Sum() != wantSum {
		t.Fatalf("Sub sum = %d, want %d", h.Sum(), wantSum)
	}
	// Min/max are bucket-edge approximations covering the real values.
	if h.Min() > 51 || h.Max() < 100 {
		t.Fatalf("Sub min/max = %d/%d do not cover [51,100]", h.Min(), h.Max())
	}
	if p50 := h.Quantile(0.5); p50 < 51 || p50 > 100 {
		t.Fatalf("Sub p50 = %d outside surviving range", p50)
	}

	// Subtracting everything empties the histogram.
	h2 := early.Clone()
	h2.Sub(early)
	if h2.Count() != 0 || h2.Sum() != 0 || h2.Min() != 0 || h2.Max() != 0 {
		t.Fatalf("full Sub left residue: %+v", h2.Snapshot())
	}
	// Nil and empty subtrahends are no-ops.
	h3 := early.Clone()
	h3.Sub(nil)
	h3.Sub(&Histogram{})
	if h3.Count() != early.Count() {
		t.Fatalf("no-op Sub changed count")
	}
}

func TestHistogramSnapshotRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 3, 17, 17, 4096, 1 << 40} {
		h.Add(v)
	}
	s := h.Snapshot()
	r := s.Histogram()
	if r.Count() != h.Count() || r.Sum() != h.Sum() || r.Min() != h.Min() || r.Max() != h.Max() {
		t.Fatalf("round trip header: %+v vs %+v", r.Snapshot(), s)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if r.Quantile(q) != h.Quantile(q) {
			t.Fatalf("round trip quantile %v: %d vs %d", q, r.Quantile(q), h.Quantile(q))
		}
		if s.Quantile(q) != h.Quantile(q) {
			t.Fatalf("snapshot quantile %v: %d vs %d", q, s.Quantile(q), h.Quantile(q))
		}
	}
	if s.Mean() != h.Mean() {
		t.Fatalf("snapshot mean %v vs %v", s.Mean(), h.Mean())
	}
	var empty Histogram
	es := empty.Snapshot()
	if es.Count != 0 || len(es.Buckets) != 0 || es.Mean() != 0 {
		t.Fatalf("empty snapshot = %+v", es)
	}
}
