package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Variance-1.25) > 1e-12 {
		t.Fatalf("variance = %v, want 1.25", s.Variance)
	}
	if math.Abs(s.Stddev()-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("stddev = %v", s.Stddev())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSpreadPercent(t *testing.T) {
	if got := SpreadPercent([]float64{100, 110}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("spread = %v, want 10", got)
	}
	if got := SpreadPercent(nil); got != 0 {
		t.Fatalf("spread of empty = %v", got)
	}
	if got := SpreadPercent([]float64{0, 5}); got != 0 {
		t.Fatalf("spread with zero min = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalize = %v", got)
		}
	}
	if z := Normalize([]float64{1}, 0); z[0] != 0 {
		t.Fatalf("normalize by zero = %v", z)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("median odd = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median even = %v", m)
	}
	if m := Median(nil); m != 0 {
		t.Fatalf("median empty = %v", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "Lock", "Value")
	tb.AddRow("TATAS", "1.5")
	tb.AddRow("HBO")
	out := tb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "TATAS") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "Lock,Value\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "HBO,\n") {
		t.Fatalf("csv should pad short rows:\n%s", csv)
	}
}

func TestFFormat(t *testing.T) {
	if F(1.2345, 2) != "1.23" {
		t.Fatalf("F = %q", F(1.2345, 2))
	}
}

// Property: mean lies within [min, max]; variance non-negative.
func TestSummaryProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Variance >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: normalizing by the mean yields values whose mean is ~1.
func TestNormalizeByMeanProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1
		}
		m := Summarize(xs).Mean
		n := Normalize(xs, m)
		return math.Abs(Summarize(n).Mean-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
