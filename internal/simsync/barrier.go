// Package simsync provides synchronization primitives beyond locks for
// programs on the simulated NUCA machine: the sense-reversing central
// barrier SPLASH-2 uses between phases, and a combining-tree barrier
// that scales better on large machines. The paper's fairness discussion
// (section 6) is framed around threads arriving at such barriers.
package simsync

import "repro/internal/machine"

// CentralBarrier is a sense-reversing centralized barrier: arrivals
// decrement a counter; the last arrival flips the sense word, releasing
// everyone. Simple and fine for small machines, but every episode puts
// one hot line in front of all processors.
type CentralBarrier struct {
	parties int
	count   machine.Addr
	sense   machine.Addr
	// localSense is each thread's private sense (a register).
	localSense []uint64
}

// NewCentralBarrier builds a barrier for parties threads, with its hot
// line homed in the given node.
func NewCentralBarrier(m *machine.Machine, home, parties, maxThreads int) *CentralBarrier {
	if parties < 1 {
		panic("simsync: barrier needs at least one party")
	}
	b := &CentralBarrier{
		parties:    parties,
		count:      m.Alloc(home, 1),
		sense:      m.Alloc(home, 1),
		localSense: make([]uint64, maxThreads),
	}
	m.Poke(b.count, uint64(parties))
	return b
}

// Wait blocks the calling thread until all parties have arrived.
func (b *CentralBarrier) Wait(p *machine.Proc, tid int) {
	b.localSense[tid] ^= 1
	want := b.localSense[tid]
	// fetch-and-decrement via cas (SPARC-style).
	for {
		v := p.Load(b.count)
		if p.CAS(b.count, v, v-1) == v {
			if v == 1 {
				// Last arrival: reset the counter, flip the sense.
				p.Store(b.count, uint64(b.parties))
				p.Store(b.sense, want)
				return
			}
			break
		}
	}
	p.SpinUntil(b.sense, func(v uint64) bool { return v == want })
}

// TreeBarrier is a combining-tree barrier: threads are grouped per NUCA
// node; the last arrival in each node proceeds to a central root
// barrier, so only one processor per node touches the global line.
type TreeBarrier struct {
	// Per-node leaf counters and sense words (homed locally).
	leafCount  []machine.Addr
	leafSense  []machine.Addr
	leafSize   []int
	root       *CentralBarrier
	localSense []uint64
}

// NewTreeBarrier builds a two-level barrier for the given threads,
// where cpus maps tid to its CPU (node membership follows from it).
func NewTreeBarrier(m *machine.Machine, cpus []int) *TreeBarrier {
	nodes := m.Config().Nodes
	b := &TreeBarrier{
		leafCount:  make([]machine.Addr, nodes),
		leafSense:  make([]machine.Addr, nodes),
		leafSize:   make([]int, nodes),
		localSense: make([]uint64, len(cpus)),
	}
	participating := 0
	for _, cpu := range cpus {
		b.leafSize[m.NodeOf(cpu)]++
	}
	for n := 0; n < nodes; n++ {
		b.leafCount[n] = m.Alloc(n, 1)
		b.leafSense[n] = m.Alloc(n, 1)
		m.Poke(b.leafCount[n], uint64(b.leafSize[n]))
		if b.leafSize[n] > 0 {
			participating++
		}
	}
	b.root = NewCentralBarrier(m, 0, participating, nodes)
	return b
}

// Wait blocks until every registered thread has arrived.
func (b *TreeBarrier) Wait(p *machine.Proc, tid int) {
	n := p.Node()
	b.localSense[tid] ^= 1
	want := b.localSense[tid]
	for {
		v := p.Load(b.leafCount[n])
		if p.CAS(b.leafCount[n], v, v-1) == v {
			if v == 1 {
				// Node representative: cross the global barrier, then
				// release the node.
				b.root.Wait(p, n)
				p.Store(b.leafCount[n], uint64(b.leafSize[n]))
				p.Store(b.leafSense[n], want)
				return
			}
			break
		}
	}
	p.SpinUntil(b.leafSense[n], func(v uint64) bool { return v == want })
}
