package simsync

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func barrierMachine() *machine.Machine {
	cfg := machine.WildFire()
	cfg.CPUsPerNode = 4
	cfg.Seed = 3
	return machine.New(cfg)
}

func TestCentralBarrierSynchronizes(t *testing.T) {
	m := barrierMachine()
	const threads, episodes = 8, 10
	b := NewCentralBarrier(m, 0, threads, threads)
	phase := make([]int, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		m.Spawn(tid, func(p *machine.Proc) {
			rng := sim.NewRNG(uint64(tid) + 5)
			for e := 0; e < episodes; e++ {
				p.Work(rng.Timen(5000) + 100)
				phase[tid]++
				// Nobody may be more than one episode ahead.
				for _, ph := range phase {
					if ph < phase[tid]-1 || ph > phase[tid]+1 {
						t.Errorf("barrier violated: phases %v", phase)
					}
				}
				b.Wait(p, tid)
			}
		})
	}
	m.Run()
	for tid, ph := range phase {
		if ph != episodes {
			t.Fatalf("thread %d finished %d episodes", tid, ph)
		}
	}
}

func TestCentralBarrierSingleParty(t *testing.T) {
	m := barrierMachine()
	b := NewCentralBarrier(m, 0, 1, 1)
	m.Spawn(0, func(p *machine.Proc) {
		for i := 0; i < 5; i++ {
			b.Wait(p, 0) // must never block
		}
	})
	m.Run()
	if m.Aborted() {
		t.Fatal("single-party barrier blocked")
	}
}

func TestCentralBarrierValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for 0 parties")
		}
	}()
	NewCentralBarrier(barrierMachine(), 0, 0, 1)
}

func TestTreeBarrierSynchronizes(t *testing.T) {
	m := barrierMachine()
	const threads, episodes = 8, 10
	cpus := make([]int, threads)
	for i := range cpus {
		cpus[i] = i
	}
	b := NewTreeBarrier(m, cpus)
	phase := make([]int, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(uint64(tid) + 7)
			for e := 0; e < episodes; e++ {
				p.Work(rng.Timen(5000) + 100)
				phase[tid]++
				for _, ph := range phase {
					if ph < phase[tid]-1 || ph > phase[tid]+1 {
						t.Errorf("tree barrier violated: phases %v", phase)
					}
				}
				b.Wait(p, tid)
			}
		})
	}
	m.Run()
	for tid, ph := range phase {
		if ph != episodes {
			t.Fatalf("thread %d finished %d episodes", tid, ph)
		}
	}
}

// TestTreeBarrierCutsGlobalTraffic: only one processor per node crosses
// to the root, so the tree barrier must generate fewer global
// transactions than the central one under the same schedule.
func TestTreeBarrierCutsGlobalTraffic(t *testing.T) {
	run := func(tree bool) uint64 {
		m := barrierMachine()
		const threads, episodes = 8, 40
		cpus := make([]int, threads)
		for i := range cpus {
			cpus[i] = i
		}
		var wait func(p *machine.Proc, tid int)
		if tree {
			b := NewTreeBarrier(m, cpus)
			wait = b.Wait
		} else {
			b := NewCentralBarrier(m, 0, threads, threads)
			wait = b.Wait
		}
		for tid := 0; tid < threads; tid++ {
			tid := tid
			m.Spawn(cpus[tid], func(p *machine.Proc) {
				rng := sim.NewRNG(uint64(tid) + 11)
				for e := 0; e < episodes; e++ {
					p.Work(rng.Timen(3000) + 100)
					wait(p, tid)
				}
			})
		}
		m.Run()
		return m.Stats().Global
	}
	central, tree := run(false), run(true)
	if tree >= central {
		t.Fatalf("tree barrier global traffic %d not below central %d", tree, central)
	}
}

func TestTreeBarrierOneSidedPlacement(t *testing.T) {
	// All threads in one node: the root barrier has a single party.
	m := barrierMachine()
	cpus := []int{0, 1, 2, 3}
	b := NewTreeBarrier(m, cpus)
	done := 0
	for tid := range cpus {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			for e := 0; e < 5; e++ {
				b.Wait(p, tid)
			}
			done++
		})
	}
	m.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
}
