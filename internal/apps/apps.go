// Package apps models the lock behaviour of the seven SPLASH-2 programs
// the paper studies (Table 3: Barnes, Cholesky, FMM, Radiosity, Raytrace,
// Volrend, Water-Nsq) as workloads for the simulated NUCA machine.
//
// The paper's application results are driven by each program's lock
// topology — how many locks exist, how often they are taken, how hot the
// hottest ones are, and how much computation separates lock calls — not
// by the programs' numerics. Each model reproduces the documented
// topology: the lock population and call counts come straight from
// Table 3, the hot-lock structure from the paper's description (e.g.
// Raytrace's central task queue plus global statistics counters), and
// the serial execution time is calibrated so the simulated single-CPU
// Raytrace run lands at the paper's 5.0 s.
package apps

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
	"repro/internal/simsync"
)

// HotSpot gives one lock index a fixed share of all lock calls; calls
// not claimed by any hotspot spread uniformly over the whole population.
type HotSpot struct {
	Lock int
	P    float64
}

// Spec describes one application model.
type Spec struct {
	Name    string
	Problem string
	// TotalLocks and LockCalls reproduce Table 3 (32-thread counts).
	TotalLocks int
	LockCalls  int
	// SerialSeconds is the single-CPU execution time the model is
	// calibrated to.
	SerialSeconds float64
	// CSLines is the number of shared cache lines a critical section
	// touches (the data guarded by the lock), CSWork the ALU time spent
	// inside it.
	CSLines int
	CSWork  sim.Time
	// Hot lists the contended locks. An empty list means uniformly
	// distributed lock calls (fine-grained locking).
	Hot []HotSpot
	// Imbalance is the relative spread of per-call work (0.5 = ±50%).
	Imbalance float64
	// LockPhase is the fraction of the program's compute time that
	// accompanies lock calls. Real SPLASH-2 programs concentrate their
	// synchronization in phases (Barnes' tree build, Cholesky's task
	// dispatch); the remaining (1-LockPhase) of the work runs lock-free
	// in parallel. 0 is treated as 1 (all work interleaves with locks).
	LockPhase float64
	// Phases is the number of barrier-separated timesteps the program
	// runs (tree rebuild + force phases in Barnes, MD timesteps in
	// Water). Threads meet at a tree barrier between phases, so lock
	// unfairness surfaces as barrier wait — the paper's section 6
	// setting. 0 is treated as 1.
	Phases int
	// Studied marks the programs the paper examines further (the ▶ rows
	// of Table 3; >10,000 lock calls).
	Studied bool
}

// NonStudied returns the SPLASH-2 programs the paper lists in Table 3
// but does not examine further (fewer than 10,000 lock calls): their
// lock populations are tiny, so lock choice cannot matter. They appear
// here so the regenerated Table 3 is complete.
func NonStudied() []Spec {
	return []Spec{
		{Name: "FFT", Problem: "1M points", TotalLocks: 1, LockCalls: 32, SerialSeconds: 20},
		{Name: "LU-c", Problem: "1024x1024 matrices, 16x16 blocks", TotalLocks: 1, LockCalls: 32, SerialSeconds: 30},
		{Name: "LU-nc", Problem: "1024x1024 matrices, 16x16 blocks", TotalLocks: 1, LockCalls: 32, SerialSeconds: 35},
		{Name: "Ocean-c", Problem: "514x514", TotalLocks: 6, LockCalls: 6304, SerialSeconds: 25},
		{Name: "Ocean-nc", Problem: "258x258", TotalLocks: 6, LockCalls: 6656, SerialSeconds: 22},
		{Name: "Radix", Problem: "4M integers, radix 1024", TotalLocks: 1, LockCalls: 32, SerialSeconds: 15},
		{Name: "Water-Sp", Problem: "2197 molecules", TotalLocks: 222, LockCalls: 510, SerialSeconds: 40},
	}
}

// AllSpecs returns every Table 3 program, studied and not, in the
// paper's alphabetical-ish order.
func AllSpecs() []Spec {
	all := append([]Spec{}, Specs()...)
	all = append(all, NonStudied()...)
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// Specs returns the seven studied applications in the paper's order.
// Serial times are calibrated so the 28-CPU simulated runs land in the
// neighbourhood of Table 5 (see EXPERIMENTS.md for measured vs. paper).
func Specs() []Spec {
	return []Spec{
		{
			Name: "Barnes", Problem: "29k particles",
			TotalLocks: 130, LockCalls: 69193,
			SerialSeconds: 30.0,
			CSLines:       1, CSWork: 400,
			// Tree-cell locks, hammered during the tree-build phase
			// (~2% of the compute); the root cells are hottest.
			Hot:       []HotSpot{{Lock: 0, P: 0.15}, {Lock: 1, P: 0.08}},
			Imbalance: 0.4,
			LockPhase: 0.02,
			Phases:    4,
			Studied:   true,
		},
		{
			Name: "Cholesky", Problem: "tk29.O",
			TotalLocks: 67, LockCalls: 74284,
			SerialSeconds: 44.0,
			CSLines:       2, CSWork: 500,
			// Supernode task-queue dispatch (~3% of the compute) takes
			// a fair share of the calls.
			Hot:       []HotSpot{{Lock: 0, P: 0.30}},
			Imbalance: 0.6,
			LockPhase: 0.03,
			Studied:   true,
		},
		{
			Name: "FMM", Problem: "32k particles",
			TotalLocks: 2052, LockCalls: 80528,
			SerialSeconds: 92.0,
			CSLines:       1, CSWork: 400,
			// Thousands of fine-grained locks plus a mildly hot
			// list-insertion point, all within the interaction phases.
			Hot:       []HotSpot{{Lock: 0, P: 0.12}},
			Imbalance: 0.3,
			LockPhase: 0.01,
			Phases:    2,
			Studied:   true,
		},
		{
			Name: "Radiosity", Problem: "room, -ae 5000.0 -en 0.050 -bf 0.10",
			TotalLocks: 3975, LockCalls: 295627,
			SerialSeconds: 26.0,
			CSLines:       1, CSWork: 300,
			// Distributed task queues with stealing: a handful of
			// queue locks absorb a noticeable share of calls.
			Hot: []HotSpot{
				{Lock: 0, P: 0.08}, {Lock: 1, P: 0.06},
				{Lock: 2, P: 0.05}, {Lock: 3, P: 0.04},
			},
			Imbalance: 0.5,
			LockPhase: 0.15,
			Phases:    3,
			Studied:   true,
		},
		{
			Name: "Raytrace", Problem: "car",
			TotalLocks: 35, LockCalls: 366450,
			SerialSeconds: 5.0,
			CSLines:       2, CSWork: 300,
			// The paper: "locks are used to protect task queues; locks
			// are also used for some global variables that track
			// statistics". One scorching task-queue lock plus a hot
			// counter make Raytrace the high-contention case.
			Hot:       []HotSpot{{Lock: 0, P: 0.45}, {Lock: 1, P: 0.35}},
			Imbalance: 0.8,
			Studied:   true,
		},
		{
			Name: "Volrend", Problem: "head",
			TotalLocks: 67, LockCalls: 38456,
			SerialSeconds: 28.0,
			CSLines:       1, CSWork: 350,
			// A hot task queue drained in a short dispatch phase.
			Hot:       []HotSpot{{Lock: 0, P: 0.40}},
			Imbalance: 0.5,
			LockPhase: 0.01,
			Phases:    2,
			Studied:   true,
		},
		{
			Name: "Water-Nsq", Problem: "2197 molecules",
			TotalLocks: 2206, LockCalls: 112415,
			SerialSeconds: 48.0,
			CSLines:       1, CSWork: 350,
			// Per-molecule locks plus a global accumulator, touched in
			// the force-update phase.
			Hot:       []HotSpot{{Lock: 0, P: 0.10}},
			Imbalance: 0.3,
			LockPhase: 0.02,
			Phases:    4,
			Studied:   true,
		},
	}
}

// SpecByName returns the named spec.
func SpecByName(name string) Spec {
	for _, s := range Specs() {
		if s.Name == name {
			return s
		}
	}
	panic(fmt.Sprintf("apps: unknown application %q", name))
}

// Config parameterizes one application run.
type Config struct {
	Machine machine.Config
	Lock    string
	Threads int
	Tuning  simlock.Tuning
	// Scale divides lock calls and work by this factor to keep host
	// time manageable; reported times are scaled back up. 1 = paper
	// scale.
	Scale int
	// TimeLimitSeconds aborts runs exceeding this much (unscaled)
	// simulated time, reproducing the paper's "> 200 s" entries.
	// 0 disables the limit.
	TimeLimitSeconds float64
}

// Result reports one application run.
type Result struct {
	App     string
	Lock    string
	Threads int
	// Seconds is the (scaled-back) execution time; Aborted marks runs
	// that hit the time limit, whose Seconds is the limit itself.
	Seconds   float64
	Aborted   bool
	LockCalls int
	Traffic   machine.Stats
}

// Run executes the application model. Threads are placed round-robin
// across nodes; locks are homed round-robin across nodes.
func Run(spec Spec, cfg Config) Result {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.Threads < 1 {
		panic("apps: need at least one thread")
	}
	mcfg := cfg.Machine
	if cfg.TimeLimitSeconds > 0 {
		mcfg.TimeLimit = sim.Time(cfg.TimeLimitSeconds / float64(cfg.Scale) * float64(sim.Second))
	}
	m := machine.New(mcfg)
	cpus := placement(mcfg, cfg.Threads)

	if spec.CSLines < 1 {
		spec.CSLines = 1 // every critical section guards something
	}

	// Build the lock population, homed round-robin across nodes; each
	// lock guards CSLines of shared data in the same node.
	locks := make([]simlock.Lock, spec.TotalLocks)
	data := make([]machine.Addr, spec.TotalLocks)
	for i := range locks {
		home := i % mcfg.Nodes
		locks[i] = simlock.New(cfg.Lock, m, home, cpus, cfg.Tuning)
		data[i] = m.Alloc(home, spec.CSLines)
	}

	totalCalls := spec.LockCalls / cfg.Scale
	if totalCalls < cfg.Threads {
		totalCalls = cfg.Threads
	}
	callsPer := totalCalls / cfg.Threads
	serial := sim.Time(spec.SerialSeconds / float64(cfg.Scale) * float64(sim.Second))
	lockPhase := spec.LockPhase
	if lockPhase <= 0 || lockPhase > 1 {
		lockPhase = 1
	}
	phases := spec.Phases
	if phases < 1 {
		phases = 1
	}
	if callsPer/phases < 1 {
		phases = 1
	}
	workPerCall := sim.Time(float64(serial) * lockPhase / float64(totalCalls))
	bulkPerThread := sim.Time(float64(serial) * (1 - lockPhase) / float64(cfg.Threads))

	// Threads meet at a tree barrier between timesteps, the structure
	// SPLASH-2 programs share; a barrier for one thread is a no-op.
	var barrier *simsync.TreeBarrier
	if cfg.Threads > 1 && phases > 1 {
		barrier = simsync.NewTreeBarrier(m, cpus)
	}

	actualCalls := 0
	for tid := 0; tid < cfg.Threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(mcfg.Seed*7919 + uint64(tid) + 13)
			// Thread-creation skew, so first lock calls don't all land
			// at t=0 (see microbench.NewBench).
			if workPerCall > 0 {
				p.Work(rng.Timen(2*workPerCall + 1))
			}
			for ph := 0; ph < phases; ph++ {
				calls := callsPer / phases
				if ph == phases-1 {
					calls += callsPer % phases
				}
				for c := 0; c < calls; c++ {
					li := pickLock(spec, rng)
					l := locks[li]
					l.Acquire(p, tid)
					actualCalls++
					for w := 0; w < spec.CSLines; w++ {
						a := data[li] + machine.Addr(w)
						p.Store(a, p.Load(a)+1)
					}
					p.Work(spec.CSWork)
					l.Release(p, tid)
					p.Work(jitter(rng, workPerCall, spec.Imbalance))
				}
				// Lock-free compute outside the synchronization phase.
				p.Work(jitter(rng, bulkPerThread/sim.Time(phases), spec.Imbalance/4))
				if barrier != nil {
					barrier.Wait(p, tid)
				}
			}
		})
	}
	m.Run()

	res := Result{
		App:       spec.Name,
		Lock:      cfg.Lock,
		Threads:   cfg.Threads,
		LockCalls: actualCalls,
		Traffic:   m.Stats(),
		Aborted:   m.Aborted(),
	}
	if res.Aborted {
		res.Seconds = cfg.TimeLimitSeconds
	} else {
		res.Seconds = m.Now().Seconds() * float64(cfg.Scale)
	}
	return res
}

// pickLock selects a lock index per the spec's hotspot distribution.
func pickLock(spec Spec, rng *sim.RNG) int {
	u := rng.Float64()
	for _, h := range spec.Hot {
		if u < h.P {
			return h.Lock
		}
		u -= h.P
	}
	return rng.Intn(spec.TotalLocks)
}

// jitter returns base scaled by a uniform factor in [1-imbalance, 1+imbalance].
func jitter(rng *sim.RNG, base sim.Time, imbalance float64) sim.Time {
	if base <= 0 {
		return 0
	}
	f := 1 + imbalance*(2*rng.Float64()-1)
	if f < 0 {
		f = 0
	}
	return sim.Time(float64(base) * f)
}

// placement mirrors microbench.Placement without importing it (keeps the
// packages independent): round-robin threads across nodes.
func placement(cfg machine.Config, threads int) []int {
	cpus := make([]int, threads)
	next := make([]int, cfg.Nodes)
	for t := 0; t < threads; t++ {
		n := t % cfg.Nodes
		if next[n] >= cfg.CPUsPerNode {
			for i := 0; i < cfg.Nodes; i++ {
				if next[i] < cfg.CPUsPerNode {
					n = i
					break
				}
			}
		}
		cpus[t] = n*cfg.CPUsPerNode + next[n]
		next[n]++
	}
	return cpus
}

// Preemption returns the OS-interference settings used for the fully
// subscribed 30-CPU runs of Table 4: Solaris daemons periodically steal
// a worker's CPU, and the displaced thread waits out a long requeue
// delay. A preempted backoff-lock spinner only hurts itself (or, rarely,
// holds the lock), but a preempted queue-lock waiter stalls every
// successor. The ratio MeanDuration/(2·MeanInterval) > 1 makes stall
// time arrive faster than a FIFO queue can drain it (divergence — the
// paper's "> 200 s" rows), while the per-CPU stolen fraction
// MeanDuration/(30·MeanInterval) stays near 13%, so locks that route
// around preempted threads lose only that fraction. Both durations
// scale with the workload's Scale factor so the stall-per-call dynamics
// are preserved on scaled runs.
func Preemption(scale int) machine.PreemptConfig {
	if scale < 1 {
		scale = 1
	}
	return machine.PreemptConfig{
		Enabled:      true,
		MeanInterval: 200 * sim.Millisecond / sim.Time(scale),
		MeanDuration: 2000 * sim.Millisecond / sim.Time(scale),
	}
}

// SpecByNameAll looks up any Table 3 program, studied or not.
func SpecByNameAll(name string) Spec {
	for _, s := range AllSpecs() {
		if s.Name == name {
			return s
		}
	}
	panic(fmt.Sprintf("apps: unknown application %q", name))
}
