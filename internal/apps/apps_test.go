package apps

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

func appMachine(seed uint64) machine.Config {
	cfg := machine.WildFire()
	cfg.Seed = seed
	return cfg
}

func TestSpecsMatchTable3(t *testing.T) {
	want := map[string]struct{ locks, calls int }{
		"Barnes":    {130, 69193},
		"Cholesky":  {67, 74284},
		"FMM":       {2052, 80528},
		"Radiosity": {3975, 295627},
		"Raytrace":  {35, 366450},
		"Volrend":   {67, 38456},
		"Water-Nsq": {2206, 112415},
	}
	specs := Specs()
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected app %q", s.Name)
			continue
		}
		if s.TotalLocks != w.locks || s.LockCalls != w.calls {
			t.Errorf("%s: locks/calls = %d/%d, want %d/%d",
				s.Name, s.TotalLocks, s.LockCalls, w.locks, w.calls)
		}
		if !s.Studied {
			t.Errorf("%s should be marked studied", s.Name)
		}
		if s.LockCalls <= 10000 {
			t.Errorf("%s: the paper only studies apps with >10k lock calls", s.Name)
		}
	}
}

func TestSpecByName(t *testing.T) {
	if SpecByName("Raytrace").TotalLocks != 35 {
		t.Fatal("SpecByName returned wrong spec")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for unknown app")
		}
	}()
	SpecByName("Doom")
}

func TestHotSpotProbabilitiesValid(t *testing.T) {
	for _, s := range Specs() {
		sum := 0.0
		for _, h := range s.Hot {
			if h.Lock < 0 || h.Lock >= s.TotalLocks {
				t.Errorf("%s: hotspot lock %d out of range", s.Name, h.Lock)
			}
			if h.P <= 0 || h.P >= 1 {
				t.Errorf("%s: hotspot p=%v out of range", s.Name, h.P)
			}
			sum += h.P
		}
		if sum >= 1 {
			t.Errorf("%s: hotspot mass %v >= 1", s.Name, sum)
		}
	}
}

func TestRunCompletesAllApps(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res := Run(spec, Config{
				Machine: appMachine(1),
				Lock:    "HBO_GT_SD",
				Threads: 8,
				Tuning:  simlock.DefaultTuning(),
				Scale:   400,
			})
			if res.Seconds <= 0 || res.Aborted {
				t.Fatalf("%s: seconds=%v aborted=%v", spec.Name, res.Seconds, res.Aborted)
			}
			if res.LockCalls == 0 {
				t.Fatalf("%s: no lock calls recorded", spec.Name)
			}
		})
	}
}

func TestRunAllLocksOnRaytrace(t *testing.T) {
	spec := SpecByName("Raytrace")
	for _, name := range simlock.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := Run(spec, Config{
				Machine: appMachine(2),
				Lock:    name,
				Threads: 8,
				Tuning:  simlock.DefaultTuning(),
				Scale:   400,
			})
			if res.Seconds <= 0 {
				t.Fatalf("seconds = %v", res.Seconds)
			}
		})
	}
}

// TestRaytraceContentionOrdering: the headline application result — on
// high-contention Raytrace, NUCA-aware locks beat TATAS clearly.
func TestRaytraceContentionOrdering(t *testing.T) {
	spec := SpecByName("Raytrace")
	run := func(name string) float64 {
		return Run(spec, Config{
			Machine: appMachine(3),
			Lock:    name,
			Threads: 16,
			Tuning:  simlock.DefaultTuning(),
			Scale:   100,
		}).Seconds
	}
	tatas := run("TATAS")
	hbogt := run("HBO_GT")
	if hbogt >= tatas {
		t.Fatalf("HBO_GT %.2fs not faster than TATAS %.2fs on Raytrace", hbogt, tatas)
	}
}

// TestSerialCalibration: a 1-thread Raytrace run should land near the
// paper's 5.0 s (the lock path adds a little on top of the pure work).
func TestSerialCalibration(t *testing.T) {
	spec := SpecByName("Raytrace")
	res := Run(spec, Config{
		Machine: appMachine(4),
		Lock:    "TATAS",
		Threads: 1,
		Tuning:  simlock.DefaultTuning(),
		Scale:   100,
	})
	if res.Seconds < 4.5 || res.Seconds > 6.5 {
		t.Fatalf("1-CPU Raytrace = %.2fs, want ~5s", res.Seconds)
	}
}

// TestTimeLimitReproducesTable4Abort: queue locks at full subscription
// with preemption must blow through the time limit.
func TestTimeLimitReproducesTable4Abort(t *testing.T) {
	spec := SpecByName("Raytrace")
	cfg := Config{
		Machine:          appMachine(5),
		Lock:             "MCS",
		Threads:          30,
		Tuning:           simlock.DefaultTuning(),
		Scale:            200,
		TimeLimitSeconds: 200,
	}
	cfg.Machine.Preempt = Preemption(cfg.Scale)
	res := Run(spec, cfg)
	if !res.Aborted {
		t.Fatalf("MCS at 30 threads with preemption finished in %.2fs; expected abort >200s", res.Seconds)
	}
	if res.Seconds != 200 {
		t.Fatalf("aborted Seconds = %v, want the limit", res.Seconds)
	}
}

// TestBackoffLocksSurvivePreemption: HBO_GT_SD under the same
// interference finishes in the same ballpark as without it.
func TestBackoffLocksSurvivePreemption(t *testing.T) {
	spec := SpecByName("Raytrace")
	base := Config{
		Machine:          appMachine(6),
		Lock:             "HBO_GT_SD",
		Threads:          30,
		Tuning:           simlock.DefaultTuning(),
		Scale:            200,
		TimeLimitSeconds: 200,
	}
	quiet := Run(spec, base)
	noisy := base
	noisy.Machine.Preempt = Preemption(base.Scale)
	loud := Run(spec, noisy)
	if loud.Aborted {
		t.Fatalf("HBO_GT_SD aborted under preemption")
	}
	// The hard assertion is liveness (queue locks abort at >200 s under
	// the same interference); the soft one bounds the degradation to a
	// modest factor, two orders of magnitude from the queue locks'
	// collapse. (A preempted node winner holds is_spinning and blocks
	// its node for the stolen window — a real sensitivity of HBO_GT
	// that the paper's measured runs did not surface; EXPERIMENTS.md
	// discusses the deviation.)
	if loud.Seconds > 8*quiet.Seconds {
		t.Fatalf("HBO_GT_SD degraded %.2fs -> %.2fs under preemption", quiet.Seconds, loud.Seconds)
	}
}

func TestJitterBounds(t *testing.T) {
	rng := sim.NewRNG(17)
	for i := 0; i < 1000; i++ {
		v := jitter(rng, 1000, 0.5)
		if v < 500 || v > 1500 {
			t.Fatalf("jitter out of bounds: %v", v)
		}
	}
	if jitter(rng, 0, 0.5) != 0 {
		t.Fatal("jitter of zero base")
	}
}

func TestPickLockDistribution(t *testing.T) {
	spec := SpecByName("Raytrace") // lock0 45%, lock1 35%
	rng := sim.NewRNG(23)
	counts := make([]int, spec.TotalLocks)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[pickLock(spec, rng)]++
	}
	f0 := float64(counts[0]) / n
	f1 := float64(counts[1]) / n
	if f0 < 0.42 || f0 > 0.50 {
		t.Fatalf("hot lock 0 frequency %.3f, want ~0.46", f0)
	}
	if f1 < 0.32 || f1 > 0.40 {
		t.Fatalf("hot lock 1 frequency %.3f, want ~0.36", f1)
	}
}

func TestScaleClampAndDeterminism(t *testing.T) {
	spec := SpecByName("Volrend")
	cfg := Config{
		Machine: appMachine(9),
		Lock:    "CLH",
		Threads: 4,
		Tuning:  simlock.DefaultTuning(),
		Scale:   400,
	}
	a, b := Run(spec, cfg), Run(spec, cfg)
	if a.Seconds != b.Seconds || a.Traffic.Global != b.Traffic.Global {
		t.Fatalf("nondeterministic app run: %v/%d vs %v/%d",
			a.Seconds, a.Traffic.Global, b.Seconds, b.Traffic.Global)
	}
}

func TestAllSpecsCompleteTable3(t *testing.T) {
	all := AllSpecs()
	if len(all) != 14 {
		t.Fatalf("Table 3 has 14 programs, got %d", len(all))
	}
	studied, rest := 0, 0
	for _, s := range all {
		if s.Studied {
			studied++
			if s.LockCalls <= 10000 {
				t.Errorf("%s studied with only %d calls", s.Name, s.LockCalls)
			}
		} else {
			rest++
			if s.LockCalls > 10000 {
				t.Errorf("%s not studied despite %d calls", s.Name, s.LockCalls)
			}
		}
	}
	if studied != 7 || rest != 7 {
		t.Fatalf("studied/rest = %d/%d, want 7/7", studied, rest)
	}
	// Spot-check paper values.
	for _, s := range all {
		switch s.Name {
		case "FFT":
			if s.TotalLocks != 1 || s.LockCalls != 32 {
				t.Errorf("FFT stats wrong: %+v", s)
			}
		case "Water-Sp":
			if s.TotalLocks != 222 || s.LockCalls != 510 {
				t.Errorf("Water-Sp stats wrong: %+v", s)
			}
		}
	}
}

func TestNonStudiedSpecsRunnable(t *testing.T) {
	// Even the tiny-lock-count programs must execute as workloads.
	spec := SpecByNameAll("Ocean-c")
	res := Run(spec, Config{
		Machine: appMachine(3),
		Lock:    "TATAS_EXP",
		Threads: 8,
		Tuning:  simlock.DefaultTuning(),
		Scale:   50,
	})
	if res.Seconds <= 0 || res.LockCalls == 0 {
		t.Fatalf("Ocean-c run = %+v", res)
	}
}
