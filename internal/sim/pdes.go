package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements conservative parallel discrete-event simulation
// (PDES) on top of the same event/heap machinery as the sequential
// Engine. A ParEngine splits the event set into partitions (logical
// processes), each with its own monomorphic min-heap and its own clock.
// Partitions only interact through timestamped messages that must be
// sent at least one lookahead ahead of the sender's clock, which makes
// the classic conservative window argument hold: if T is the minimum
// next-event time across all partitions, every event before T+lookahead
// is causally independent of anything another partition has yet to do,
// so all partitions may execute the window [T, T+lookahead) concurrently.
//
// Determinism contract (the property everything downstream relies on):
// the simulation result is byte-identical for any worker count,
// including workers=1. Three mechanisms enforce it:
//
//  1. Partition-owned state. During a window a partition touches only
//     its own heap, clock, sequence counter and outbox; the simulation
//     model built on top must confine each partition's mutable state
//     the same way (cross-partition effects go through Send).
//  2. Barrier-phase delivery. Messages produced during a window are
//     collected after all partitions finish, sorted by (timestamp,
//     source partition, source sequence) and only then pushed into the
//     destination heaps — arrival interleaving never leaks into event
//     order.
//  3. Partition-stable tie-breaks. Each partition numbers its own
//     events; perturbed runs (Perturb) derive one RNG stream per
//     partition from an FNV-1a mix of (seed, partition), so the
//     tie-break priority of an event never depends on which worker
//     executed which partition first.
//
// The sequential Engine in engine.go is the degenerate single-partition
// case of this design and remains the right tool for models with
// globally shared state (internal/machine's word-level coherence
// simulation); ParEngine is for models whose state is partitioned, such
// as the cluster-scale interconnect machine in internal/machine.

// Msg is a cross-partition event in flight: fn will execute on the
// destination partition at the given absolute time.
type msg struct {
	at     Time
	src    int
	srcSeq uint64
	dst    int
	fn     func()
}

// ParEngine is a conservative parallel discrete-event simulator over a
// fixed set of partitions. Construct with NewParEngine, obtain the
// partition handles with Part, schedule initial events, then call Run.
type ParEngine struct {
	parts     []*Part
	workers   int
	lookahead Time
	now       Time // committed lower bound (start of the current window)
	limit     Time // 0 = no limit
	limited   bool
	stopped   atomic.Bool
	killed    bool
	mailCap   int

	// inbox is the barrier-phase merge buffer, reused across windows.
	inbox []msg
}

// DefaultMailboxCap bounds how many cross-partition messages a single
// partition may emit within one window before Send panics. The bound
// exists to surface runaway models (a partition flooding a neighbor
// faster than simulated time advances) instead of letting the merge
// buffer grow without limit.
const DefaultMailboxCap = 1 << 20

// NewParEngine returns a parallel engine with parts partitions executed
// by up to workers OS-level workers. lookahead is the minimum simulated
// delay of any cross-partition message (Send enforces it); it must be
// positive, because a zero lookahead admits no conservative window.
// workers <= 1 executes windows on the calling goroutine — the
// sequential degenerate case — with identical results.
func NewParEngine(parts, workers int, lookahead Time) *ParEngine {
	if parts < 1 {
		panic("sim: ParEngine needs at least one partition")
	}
	if lookahead <= 0 {
		panic("sim: ParEngine lookahead must be positive")
	}
	if workers < 1 {
		workers = 1
	}
	d := &ParEngine{workers: workers, lookahead: lookahead, mailCap: DefaultMailboxCap}
	d.parts = make([]*Part, parts)
	for i := range d.parts {
		d.parts[i] = &Part{d: d, id: i, events: *heapPool.Get().(*eventHeap)}
	}
	return d
}

// Parts returns the number of partitions.
func (d *ParEngine) Parts() int { return len(d.parts) }

// Workers returns the configured worker width.
func (d *ParEngine) Workers() int { return d.workers }

// Lookahead returns the engine's conservative window size.
func (d *ParEngine) Lookahead() Time { return d.lookahead }

// Part returns partition i's handle.
func (d *ParEngine) Part(i int) *Part { return d.parts[i] }

// Now returns the committed global simulation time: the start of the
// window being (or about to be) executed. Individual partitions may be
// ahead of it by up to one lookahead; use Part.Now inside event code.
func (d *ParEngine) Now() Time { return d.now }

// SetLimit makes Run stop once every remaining event lies past t
// (0 disables the limit). Like Engine.SetLimit, raising or clearing the
// limit after a limit-induced stop re-arms the engine.
func (d *ParEngine) SetLimit(t Time) {
	d.limit = t
	if d.limited && (t == 0 || t > d.now) {
		d.limited = false
	}
}

// SetMailboxCap overrides the per-partition, per-window bound on
// cross-partition sends (see DefaultMailboxCap). Call before Run.
func (d *ParEngine) SetMailboxCap(n int) {
	if n < 1 {
		panic("sim: mailbox cap must be positive")
	}
	d.mailCap = n
}

// Stop makes Run return at the next window boundary. Unlike the
// sequential engine, which stops after the current event, a parallel
// window always completes once started — that is what keeps the result
// independent of which worker observes the flag first. Safe to call
// from event code in any partition.
func (d *ParEngine) Stop() { d.stopped.Store(true) }

// Stopped reports whether Stop has been called or the limit was hit.
func (d *ParEngine) Stopped() bool { return d.stopped.Load() || d.limited }

// Perturb gives every partition its own tie-break RNG stream derived
// from an FNV-1a mix of (seed, partition id), so equal-timestamp events
// within a partition fire in a pseudo-random but partition-stable order:
// the same seed yields the same schedule at every worker width. A zero
// seed restores FIFO tie-breaks. Call before Run.
func (d *ParEngine) Perturb(seed uint64) {
	for _, p := range d.parts {
		if seed == 0 {
			p.tiebreak = nil
		} else {
			p.tiebreak = NewRNG(mixSeed(seed, uint64(p.id)))
		}
	}
}

// Pending returns the total number of queued events across partitions.
func (d *ParEngine) Pending() int {
	n := 0
	for _, p := range d.parts {
		n += len(p.events)
	}
	return n
}

// mixSeed folds part into seed with FNV-1a so perturbation streams and
// other per-partition derived seeds are decorrelated but reproducible.
// This is the partition-stable extension of the engine's tie-break
// scheme: the stream depends on (seed, partition), never on global
// schedule order.
func mixSeed(seed, part uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= (part >> (8 * i)) & 0xff
		h *= prime64
	}
	if h == 0 {
		h = offset64
	}
	return h
}

// PartitionSeed derives a partition-stable RNG seed from a run seed and
// a partition id (FNV-1a mix, never zero). Models built on ParEngine
// must draw per-partition randomness from streams seeded this way —
// never from one shared stream, whose draw order would depend on
// execution interleaving.
func PartitionSeed(seed uint64, part int) uint64 { return mixSeed(seed, uint64(part)) }

// partPanic carries an event panic from a worker goroutine back to the
// Run caller. The lowest partition id wins when several partitions fail
// in the same window, so crash reports do not depend on scheduling.
type partPanic struct {
	part  int
	value any
}

// Run executes windows until no events remain, Stop is called, or every
// remaining event lies past the time limit. It must be called from the
// goroutine that constructed the engine. A panic inside event code is
// re-raised on this goroutine (lowest partition id first).
func (d *ParEngine) Run() {
	if d.killed {
		panic("sim: Run after Shutdown (the engine cannot be reused)")
	}
	active := make([]*Part, 0, len(d.parts))
	for !d.stopped.Load() {
		// Find the window start: the earliest queued event anywhere.
		first := Time(-1)
		for _, p := range d.parts {
			if len(p.events) > 0 && (first < 0 || p.events[0].at < first) {
				first = p.events[0].at
			}
		}
		if first < 0 {
			return // drained
		}
		if first < d.now {
			panic("sim: event time went backwards across windows")
		}
		if d.limit > 0 && first > d.limit {
			d.now = d.limit
			d.limited = true
			return
		}
		d.now = first
		end := first + d.lookahead
		if d.limit > 0 && end > d.limit+1 {
			// Clamp so no event past the limit executes; events at
			// exactly the limit still do, matching Engine semantics.
			end = d.limit + 1
		}
		active = active[:0]
		for _, p := range d.parts {
			if len(p.events) > 0 && p.events[0].at < end {
				active = append(active, p)
			}
		}
		d.runWindow(active, end)
		d.deliver()
	}
}

// runWindow executes every active partition's sub-window, fanning over
// the worker pool when it pays.
func (d *ParEngine) runWindow(active []*Part, end Time) {
	w := d.workers
	if w > len(active) {
		w = len(active)
	}
	if w <= 1 {
		for _, p := range active {
			p.runWindow(end)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail *partPanic
	)
	next.Store(-1)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(active) {
					return
				}
				p := active[i]
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if fail == nil || p.id < fail.part {
								fail = &partPanic{part: p.id, value: r}
							}
							mu.Unlock()
						}
					}()
					p.runWindow(end)
				}()
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		panic(fail.value)
	}
}

// deliver merges every partition's outbox into the destination heaps in
// a deterministic order: (timestamp, source partition, source sequence).
// Runs single-threaded between windows.
func (d *ParEngine) deliver() {
	d.inbox = d.inbox[:0]
	for _, p := range d.parts {
		d.inbox = append(d.inbox, p.outbox...)
		p.outbox = p.outbox[:0]
	}
	if len(d.inbox) == 0 {
		return
	}
	sort.Slice(d.inbox, func(i, j int) bool {
		a, b := d.inbox[i], d.inbox[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.srcSeq < b.srcSeq
	})
	for i := range d.inbox {
		m := &d.inbox[i]
		p := d.parts[m.dst]
		p.seq++
		var pri uint64
		if p.tiebreak != nil {
			pri = p.tiebreak.Uint64()
		}
		p.events.push(event{at: m.at, pri: pri, seq: p.seq, fn: m.fn})
		m.fn = nil // don't pin the closure in the reused buffer
	}
}

// Shutdown releases every partition's event storage back to the heap
// pool. The engine cannot be used afterwards.
func (d *ParEngine) Shutdown() {
	if d.killed {
		return
	}
	d.killed = true
	d.stopped.Store(true)
	for _, p := range d.parts {
		h := p.events
		for i := range h {
			h[i] = event{}
		}
		h = h[:0]
		p.events = nil
		p.outbox = nil
		heapPool.Put(&h)
	}
	d.inbox = nil
}

// A Part is one partition (logical process) of a ParEngine: an
// independently clocked event queue whose events run sequentially and
// in timestamp order, possibly concurrently with other partitions.
// Event code running on a partition may freely touch that partition's
// model state without locking, and must touch nothing owned by another
// partition — use Send for cross-partition effects.
type Part struct {
	d        *ParEngine
	id       int
	now      Time
	events   eventHeap
	seq      uint64
	tiebreak *RNG
	outbox   []msg
}

// ID returns the partition index.
func (p *Part) ID() int { return p.id }

// Engine returns the owning parallel engine.
func (p *Part) Engine() *ParEngine { return p.d }

// Now returns the partition's local clock. Partitions within the same
// window may disagree by less than one lookahead; that skew is the
// parallelism.
func (p *Part) Now() Time { return p.now }

// Schedule runs fn on this partition at now+delay. Intra-partition
// events never synchronize with other partitions. Scheduling in the
// past panics, as does scheduling after Shutdown.
func (p *Part) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule %v in the past", delay))
	}
	if p.d.killed {
		panic("sim: Schedule after Shutdown (the engine cannot be reused)")
	}
	p.seq++
	var pri uint64
	if p.tiebreak != nil {
		pri = p.tiebreak.Uint64()
	}
	p.events.push(event{at: p.now + delay, pri: pri, seq: p.seq, fn: fn})
}

// Send schedules fn on partition dst at now+delay. delay must be at
// least the engine's lookahead — that bound is what lets other
// partitions run ahead without waiting — and sending to one's own
// partition is allowed but pointless (Schedule is cheaper). The message
// is delivered at the next window barrier; delivery order is
// deterministic regardless of worker width.
func (p *Part) Send(dst int, delay Time, fn func()) {
	if delay < p.d.lookahead {
		panic(fmt.Sprintf("sim: Send delay %v below lookahead %v", delay, p.d.lookahead))
	}
	if dst < 0 || dst >= len(p.d.parts) {
		panic(fmt.Sprintf("sim: Send to invalid partition %d", dst))
	}
	if p.d.killed {
		panic("sim: Send after Shutdown (the engine cannot be reused)")
	}
	if len(p.outbox) >= p.d.mailCap {
		panic(fmt.Sprintf("sim: partition %d exceeded its mailbox cap (%d messages in one window)", p.id, p.d.mailCap))
	}
	p.seq++
	p.outbox = append(p.outbox, msg{at: p.now + delay, src: p.id, srcSeq: p.seq, dst: dst, fn: fn})
}

// Pending returns the number of events queued on this partition.
func (p *Part) Pending() int { return len(p.events) }

// runWindow executes this partition's events with timestamps in
// [p.now, end). Called with exclusive ownership of the partition.
func (p *Part) runWindow(end Time) {
	for len(p.events) > 0 {
		at := p.events[0].at
		if at >= end {
			return
		}
		if at < p.now {
			panic("sim: event time went backwards")
		}
		p.now = at
		ev := p.events.pop()
		ev.fn()
	}
}
