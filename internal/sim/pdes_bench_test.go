package sim

import (
	"fmt"
	"testing"
)

// benchPHOLD drives the classic PHOLD model: parts partitions, jobs
// jobs per partition, each job hopping either locally or to a random
// remote partition (40% remote, delay >= lookahead). The model is pure
// event scheduling — no process goroutines — so it measures the PDES
// window/merge machinery itself.
func benchPHOLD(b *testing.B, parts, workers, jobs int, horizon Time) {
	const lookahead = 50
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewParEngine(parts, workers, lookahead)
		d.SetLimit(horizon)
		rngs := make([]*RNG, parts)
		events := make([]int64, parts)
		var step func(p *Part)
		step = func(p *Part) {
			r := rngs[p.ID()]
			events[p.ID()]++
			// A dash of local work per hop keeps the event:message ratio
			// realistic (coherence models do far more local than remote).
			for k := 0; k < 4; k++ {
				p.Schedule(1+r.Timen(lookahead), func() { events[p.ID()]++ })
			}
			if parts > 1 && r.Intn(100) < 40 {
				dst := r.Intn(parts - 1)
				if dst >= p.ID() {
					dst++
				}
				p.Send(dst, lookahead+r.Timen(lookahead), func() { step(p.Engine().Part(dst)) })
			} else {
				p.Schedule(1+r.Timen(lookahead), func() { step(p) })
			}
		}
		for pi := 0; pi < parts; pi++ {
			rngs[pi] = NewRNG(mixSeed(1, uint64(pi)))
			p := d.Part(pi)
			for j := 0; j < jobs; j++ {
				p.Schedule(rngs[pi].Timen(lookahead), func() { step(p) })
			}
		}
		d.Run()
		d.Shutdown()
		var total int64
		for _, n := range events {
			total += n
		}
		if total == 0 {
			b.Fatal("no events executed")
		}
		if i == b.N-1 {
			b.ReportMetric(float64(total), "events/op")
		}
	}
}

// BenchmarkParEnginePHOLD measures one big partitioned simulation at
// several worker widths; the width-1 row is the sequential baseline the
// speedup columns in BENCH_pdes.json divide by.
func BenchmarkParEnginePHOLD(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parts=64/workers=%d", w), func(b *testing.B) {
			benchPHOLD(b, 64, w, 4, 100_000)
		})
	}
}
