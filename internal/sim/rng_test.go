package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestExpMeanRoughlyCorrect(t *testing.T) {
	r := NewRNG(123)
	const mean = 1000
	var sum Time
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	avg := float64(sum) / n
	if avg < 0.9*mean || avg > 1.1*mean {
		t.Fatalf("sample mean %v, want ~%v", avg, mean)
	}
}

func TestTimenRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Timen(500)
		if v < 0 || v >= 500 {
			t.Fatalf("Timen out of range: %v", v)
		}
	}
}

func TestTimenPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRNG(1).Timen(0)
}

func TestExpPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRNG(1).Exp(0)
}
