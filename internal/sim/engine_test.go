package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.Schedule(10, func() {
		got = append(got, e.Now())
		e.Schedule(5, func() { got = append(got, e.Now()) })
	})
	e.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("nested schedule times = %v, want [10 15]", got)
	}
}

func TestNegativeSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestProcessSleep(t *testing.T) {
	e := NewEngine()
	var marks []Time
	e.Spawn(0, func(p *Process) {
		marks = append(marks, p.Now())
		p.Sleep(100)
		marks = append(marks, p.Now())
		p.Sleep(0) // zero sleep is a no-op
		marks = append(marks, p.Now())
	})
	e.Run()
	if len(marks) != 3 || marks[0] != 0 || marks[1] != 100 || marks[2] != 100 {
		t.Fatalf("marks = %v", marks)
	}
	if e.Running() != 0 {
		t.Fatalf("Running = %d after completion", e.Running())
	}
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var trace []int
		e.Spawn(1, func(p *Process) {
			for i := 0; i < 5; i++ {
				trace = append(trace, 1)
				p.Sleep(10)
			}
		})
		e.Spawn(2, func(p *Process) {
			for i := 0; i < 5; i++ {
				trace = append(trace, 2)
				p.Sleep(7)
			}
		})
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 10 {
		t.Fatalf("trace lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic interleaving: %v vs %v", a, b)
		}
	}
}

func TestBlockWake(t *testing.T) {
	e := NewEngine()
	var wokenAt Time
	waiter := e.Spawn(0, func(p *Process) {
		p.Block()
		wokenAt = p.Now()
	})
	e.Spawn(1, func(p *Process) {
		p.Sleep(50)
		waiter.Wake(25)
	})
	e.Run()
	if wokenAt != 75 {
		t.Fatalf("woken at %v, want 75", wokenAt)
	}
}

func TestWakeNonBlockedPanics(t *testing.T) {
	e := NewEngine()
	p := e.Spawn(0, func(p *Process) { p.Sleep(1000) })
	e.Schedule(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic waking a non-blocked process")
			}
			e.Stop()
		}()
		p.Wake(0)
	})
	e.Run()
	e.Shutdown()
}

func TestTimeLimitStopsRun(t *testing.T) {
	e := NewEngine()
	e.SetLimit(100)
	count := 0
	e.Spawn(0, func(p *Process) {
		for {
			count++
			p.Sleep(30)
		}
	})
	e.Run()
	e.Shutdown()
	if !e.Stopped() {
		t.Fatal("engine not stopped at limit")
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want limit 100", e.Now())
	}
	if count < 3 || count > 4 {
		t.Fatalf("count = %d, want 3..4", count)
	}
}

func TestShutdownUnwindsBlockedProcesses(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.Spawn(i, func(p *Process) { p.Block() })
	}
	e.Schedule(10, func() { e.Stop() })
	e.Run()
	e.Shutdown()
	if e.Running() != 0 {
		t.Fatalf("Running = %d after Shutdown, want 0", e.Running())
	}
}

func TestShutdownBeforeSpawnEventRuns(t *testing.T) {
	e := NewEngine()
	e.Stop() // stop immediately; spawn events never execute
	e.Spawn(0, func(p *Process) { t.Error("body must not run") })
	e.Run()
	e.Shutdown()
	if e.Running() != 0 {
		t.Fatalf("Running = %d, want 0", e.Running())
	}
}

func TestResourceFIFOQueueing(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Spawn(i, func(p *Process) {
			r.Use(p, 100)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{100, 200, 300}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if r.Requests() != 3 {
		t.Fatalf("requests = %d", r.Requests())
	}
	if r.TotalWaited() != 0+100+200 {
		t.Fatalf("waited = %v", r.TotalWaited())
	}
}

func TestResourceIdleThenBusy(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "link")
	var second Time
	e.Spawn(0, func(p *Process) {
		r.Use(p, 50) // 0..50
	})
	e.Spawn(1, func(p *Process) {
		p.Sleep(200) // resource idle 50..200
		r.Use(p, 50) // 200..250, no wait
		second = p.Now()
	})
	e.Run()
	if second != 250 {
		t.Fatalf("second finish = %v, want 250", second)
	}
	if u := r.Utilization(); u <= 0.3 || u >= 0.5 {
		t.Fatalf("utilization = %v, want 100/250", u)
	}
}

func TestResourceDelayMatchesUse(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	d1 := r.Delay(100)
	d2 := r.Delay(100)
	if d1 != 100 || d2 != 200 {
		t.Fatalf("delays = %v, %v; want 100, 200", d1, d2)
	}
}

// Property: for any batch of (delay, duration) pairs, processes sleeping
// those amounts finish in the order implied by their total times, and the
// engine clock ends at the max.
func TestSleepCompletionOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		e := NewEngine()
		type done struct {
			id int
			at Time
		}
		var finished []done
		for i, v := range raw {
			i, v := i, v
			e.Spawn(i, func(p *Process) {
				p.Sleep(Time(v))
				finished = append(finished, done{i, p.Now()})
			})
		}
		e.Run()
		if len(finished) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(finished, func(a, b int) bool {
			if finished[a].at != finished[b].at {
				return finished[a].at < finished[b].at
			}
			return false
		}) {
			return false
		}
		var max Time
		for _, v := range raw {
			if Time(v) > max {
				max = Time(v)
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLimitKeepsOvershootingEvent: hitting the time limit must leave
// the not-yet-due event queued so a later SetLimit+Run resume sees it
// (the old pop-then-check loop silently dropped it).
func TestLimitKeepsOvershootingEvent(t *testing.T) {
	e := NewEngine()
	e.SetLimit(100)
	fired := Time(-1)
	e.Schedule(150, func() { fired = e.Now() })
	e.Run()
	if e.Now() != 100 || !e.Stopped() {
		t.Fatalf("Now = %v, Stopped = %v after limit", e.Now(), e.Stopped())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after limit stop, want 1 (event kept)", e.Pending())
	}
	if fired != -1 {
		t.Fatalf("event fired at %v despite the limit", fired)
	}
	e.SetLimit(200) // re-arms a limit-induced stop
	e.Run()
	if fired != 150 {
		t.Fatalf("resumed event fired at %v, want 150", fired)
	}
}

// TestEarlyStopReleasesAllProcesses: a simulation cut short by the time
// limit must not leak the goroutines backing still-sleeping processes
// once Shutdown runs.
func TestEarlyStopReleasesAllProcesses(t *testing.T) {
	e := NewEngine()
	e.SetLimit(50)
	const n = 16
	for i := 0; i < n; i++ {
		e.Spawn(i, func(p *Process) {
			for {
				p.Sleep(40) // always has a wake event pending at the stop
			}
		})
	}
	e.Run()
	if e.Running() != n {
		t.Fatalf("Running = %d before Shutdown, want %d", e.Running(), n)
	}
	e.Shutdown()
	if e.Running() != 0 {
		t.Fatalf("Running = %d after Shutdown, want 0 (leaked processes)", e.Running())
	}
}

func TestScheduleAfterShutdownPanics(t *testing.T) {
	e := NewEngine()
	e.Run()
	e.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling on a shut-down engine")
		}
	}()
	e.Schedule(1, func() {})
}

func TestSpawnAfterShutdownPanics(t *testing.T) {
	e := NewEngine()
	e.Run()
	e.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic spawning on a shut-down engine")
		}
	}()
	e.Spawn(0, func(p *Process) {})
}

func TestShutdownIdempotent(t *testing.T) {
	e := NewEngine()
	e.Spawn(0, func(p *Process) { p.Sleep(10) })
	e.Run()
	e.Shutdown()
	e.Shutdown() // second call must be a no-op, not a double unwind
	if e.Running() != 0 {
		t.Fatalf("Running = %d", e.Running())
	}
}

// TestSleepFastPathMatchesEventOrder: a process's self-resumed sleeps
// must interleave with scheduled events and other processes exactly as
// the event queue dictates.
func TestSleepFastPathMatchesEventOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(25, func() { got = append(got, -1) })
	e.Spawn(0, func(p *Process) {
		for i := 0; i < 5; i++ {
			p.Sleep(10) // wakes at 10,20,30,40,50; event at 25 must cut in
			got = append(got, i)
		}
	})
	e.Run()
	want := []int{0, 1, -1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %v, want 50", e.Now())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{5, "5ns"},
		{1500, "1.500µs"},
		{2500000, "2.500ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestAccessorsAndPending(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 {
		t.Fatal("fresh engine has pending events")
	}
	e.Schedule(5, func() {})
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	var p *Process
	p = e.Spawn(7, func(pr *Process) {
		if pr.ID() != 7 || pr.Engine() != e {
			t.Error("process accessors wrong")
		}
		if pr.Done() || pr.Blocked() {
			t.Error("fresh process marked done/blocked")
		}
		pr.Sleep(10)
	})
	e.Run()
	if !p.Done() {
		t.Fatal("process not done after Run")
	}
	if (3 * Second).Seconds() != 3.0 {
		t.Fatal("Seconds conversion wrong")
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn(0, func(p *Process) {
		defer func() {
			if recover() == nil {
				t.Error("want panic for negative sleep")
			}
		}()
		p.Sleep(-1)
	})
	e.Run()
}

func TestResourceName(t *testing.T) {
	e := NewEngine()
	if NewResource(e, "bus0").Name() != "bus0" {
		t.Fatal("resource name wrong")
	}
	if NewResource(e, "x").Utilization() != 0 {
		t.Fatal("utilization at t=0 should be 0")
	}
}
