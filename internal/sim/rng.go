package sim

import "math"

// RNG is a small deterministic pseudo-random generator (xorshift64*).
// Experiments seed one RNG per run so results are reproducible across
// hosts and Go versions (unlike math/rand's global source, whose stream
// is not part of the compatibility promise for new helpers).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped so the
// xorshift state never sticks at zero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Timen returns a Time in [0, n). It panics if n <= 0.
func (r *RNG) Timen(n Time) Time {
	if n <= 0 {
		panic("sim: Timen with non-positive bound")
	}
	return Time(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Exp returns an exponentially distributed Time with the given mean via
// inverse transform sampling. Mean must be positive.
func (r *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		panic("sim: Exp with non-positive mean")
	}
	u := r.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	return Time(-float64(mean) * math.Log(u))
}
