package sim

import "testing"

// runOrder schedules n same-timestamp events on a perturbed engine and
// returns the order they fired in.
func runOrder(seed uint64, n int) []int {
	e := NewEngine()
	e.Perturb(seed)
	var order []int
	for i := 0; i < n; i++ {
		i := i
		e.Schedule(0, func() { order = append(order, i) })
	}
	e.Run()
	e.Shutdown()
	return order
}

// TestPerturbZeroKeepsFIFO: an unperturbed engine (and seed 0) fires
// equal-timestamp events in schedule order, the documented default.
func TestPerturbZeroKeepsFIFO(t *testing.T) {
	order := runOrder(0, 8)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO order broken: got %v", order)
		}
	}
}

// TestPerturbIsDeterministicAndReordering: the same seed yields the same
// order, and among a handful of seeds at least one deviates from FIFO.
func TestPerturbIsDeterministicAndReordering(t *testing.T) {
	reordered := false
	distinct := map[string]bool{}
	for seed := uint64(1); seed <= 8; seed++ {
		a := runOrder(seed, 8)
		b := runOrder(seed, 8)
		key := ""
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d not deterministic: %v vs %v", seed, a, b)
			}
			key += string(rune('a' + a[i]))
			if a[i] != i {
				reordered = true
			}
		}
		distinct[key] = true
	}
	if !reordered {
		t.Fatal("no seed reordered equal-timestamp events")
	}
	if len(distinct) < 2 {
		t.Fatal("all seeds produced the same order; perturbation is inert")
	}
}

// TestPerturbPreservesTimestampOrder: perturbation only reorders ties —
// events at different timestamps still fire in time order.
func TestPerturbPreservesTimestampOrder(t *testing.T) {
	e := NewEngine()
	e.Perturb(42)
	var times []Time
	for _, d := range []Time{30, 10, 20, 10, 30, 0} {
		d := d
		e.Schedule(d, func() { times = append(times, e.Now()) })
	}
	e.Run()
	e.Shutdown()
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("time went backwards: %v", times)
		}
	}
	if len(times) != 6 {
		t.Fatalf("fired %d events, want 6", len(times))
	}
}
