package sim

// Resource models a FIFO server with a fixed service order: a snoop bus,
// an interconnect link, a memory controller. Requests arriving while the
// server is busy queue behind earlier requests. Because the engine
// delivers requests in timestamp order, tracking the next-free time is
// sufficient to implement exact FIFO queueing.
type Resource struct {
	e        *Engine
	name     string
	nextFree Time

	// Accounting.
	busy     Time   // total service time granted
	requests uint64 // number of Use calls
	waited   Time   // total queueing delay experienced
}

// NewResource creates a resource attached to e.
func NewResource(e *Engine, name string) *Resource {
	return &Resource{e: e, name: name}
}

// Name returns the label given at construction.
func (r *Resource) Name() string { return r.name }

// Use blocks p until the resource has served a request of the given
// service time, modeling FIFO queueing. It returns the queueing delay
// (time spent waiting behind earlier requests).
func (r *Resource) Use(p *Process, service Time) Time {
	start := r.e.now
	if r.nextFree > start {
		start = r.nextFree
	}
	wait := start - r.e.now
	r.nextFree = start + service
	r.busy += service
	r.requests++
	r.waited += wait
	p.Sleep(wait + service)
	return wait
}

// Delay returns the queueing + service delay a request issued now would
// experience, and advances the server state, without blocking a process.
// Used when a single logical operation visits several resources and the
// caller wants to sleep once for the sum.
func (r *Resource) Delay(service Time) Time {
	start := r.e.now
	if r.nextFree > start {
		start = r.nextFree
	}
	wait := start - r.e.now
	r.nextFree = start + service
	r.busy += service
	r.requests++
	r.waited += wait
	return wait + service
}

// Utilization returns busy time divided by elapsed time (0 if no time has
// passed).
func (r *Resource) Utilization() float64 {
	if r.e.now == 0 {
		return 0
	}
	return float64(r.busy) / float64(r.e.now)
}

// Requests returns the number of requests served.
func (r *Resource) Requests() uint64 { return r.requests }

// TotalWaited returns the cumulative queueing delay across all requests.
func (r *Resource) TotalWaited() Time { return r.waited }
