package sim

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// pholdRun drives a PHOLD-style workload — the standard PDES benchmark
// model — on a ParEngine and returns a digest of every partition's full
// event history. Each partition owns `jobs` jobs; a job event logs
// (partition, time, rng draw), does a little local work (an extra
// intra-partition event), then forwards itself to a partition chosen
// from the partition's own RNG: with probability ~remotePct to a random
// other partition (delay >= lookahead), otherwise locally with a short
// delay. All state is partition-owned, so the digest must be identical
// at every worker width.
func pholdRun(t *testing.T, parts, workers, jobs int, lookahead Time, perturb uint64, horizon Time) string {
	t.Helper()
	d := NewParEngine(parts, workers, lookahead)
	if perturb != 0 {
		d.Perturb(perturb)
	}
	d.SetLimit(horizon)

	logs := make([][]string, parts)
	rngs := make([]*RNG, parts)
	var step func(p *Part, job int)
	step = func(p *Part, job int) {
		r := rngs[p.ID()]
		logs[p.ID()] = append(logs[p.ID()], fmt.Sprintf("%d:%d@%d", p.ID(), job, p.Now()))
		// Local side work: exercises intra-partition same-window ordering.
		p.Schedule(r.Timen(lookahead), func() {
			logs[p.ID()] = append(logs[p.ID()], fmt.Sprintf("w%d@%d", p.ID(), p.Now()))
		})
		if parts > 1 && r.Intn(100) < 40 {
			dst := r.Intn(parts - 1)
			if dst >= p.ID() {
				dst++
			}
			p.Send(dst, lookahead+r.Timen(lookahead), func() { step(p.Engine().Part(dst), job) })
		} else {
			p.Schedule(1+r.Timen(lookahead), func() { step(p, job) })
		}
	}
	for i := 0; i < parts; i++ {
		rngs[i] = NewRNG(mixSeed(42, uint64(i)))
		p := d.Part(i)
		for j := 0; j < jobs; j++ {
			at := rngs[i].Timen(lookahead)
			job := j
			p.Schedule(at, func() { step(p, job) })
		}
	}
	d.Run()
	d.Shutdown()

	h := fnv.New64a()
	total := 0
	for i, log := range logs {
		fmt.Fprintf(h, "part%d:%d;", i, len(log))
		for _, e := range log {
			h.Write([]byte(e))
		}
		total += len(log)
	}
	if total == 0 {
		t.Fatal("phold produced no events")
	}
	return fmt.Sprintf("%x/%d", h.Sum64(), total)
}

// TestParEngineByteIdenticalAcrossWidths is the core determinism
// contract: the same model yields the same complete event history at
// every worker width, perturbed or not.
func TestParEngineByteIdenticalAcrossWidths(t *testing.T) {
	for _, perturb := range []uint64{0, 7} {
		want := ""
		for _, workers := range []int{1, 2, 4, 8} {
			got := pholdRun(t, 16, workers, 4, 50, perturb, 20_000)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("perturb=%d workers=%d: digest %s != width-1 digest %s", perturb, workers, got, want)
			}
		}
	}
}

// TestParEnginePerturbChangesSchedule checks that different perturb
// seeds explore different schedules while staying internally stable.
func TestParEnginePerturbChangesSchedule(t *testing.T) {
	a := pholdRun(t, 8, 4, 6, 40, 1, 10_000)
	b := pholdRun(t, 8, 4, 6, 40, 2, 10_000)
	if a == b {
		t.Fatal("different perturb seeds produced identical schedules (tie-break space not explored)")
	}
	if again := pholdRun(t, 8, 4, 6, 40, 1, 10_000); again != a {
		t.Fatalf("perturb seed 1 not reproducible: %s then %s", a, again)
	}
}

// TestParEngineLocalOrdering: intra-partition events run in timestamp
// order with FIFO tie-breaks, exactly like the sequential engine.
func TestParEngineLocalOrdering(t *testing.T) {
	d := NewParEngine(1, 4, 10)
	p := d.Part(0)
	var got []int
	p.Schedule(5, func() { got = append(got, 2) })
	p.Schedule(3, func() { got = append(got, 1) })
	p.Schedule(5, func() { got = append(got, 3) }) // same time, later seq
	p.Schedule(3, func() {
		p.Schedule(0, func() { got = append(got, 10) }) // same-time re-entry
	})
	d.Run()
	d.Shutdown()
	want := []int{1, 10, 2, 3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", got, want)
	}
}

// TestParEngineSendDelivery: a message lands on the destination at the
// sender's time plus the given delay, and Part clocks stay monotonic.
func TestParEngineSendDelivery(t *testing.T) {
	d := NewParEngine(2, 2, 100)
	src, dst := d.Part(0), d.Part(1)
	var at Time = -1
	src.Schedule(7, func() {
		src.Send(1, 100, func() { at = dst.Now() })
	})
	d.Run()
	d.Shutdown()
	if at != 107 {
		t.Fatalf("message delivered at %d, want 107", at)
	}
}

// TestParEngineEqualTimestampMerge: messages from different sources
// arriving at the same destination time merge by (src, srcSeq) — stable
// regardless of which partition's window ran first.
func TestParEngineEqualTimestampMerge(t *testing.T) {
	run := func(workers int) string {
		d := NewParEngine(4, workers, 10)
		var got []string
		for i := 1; i < 4; i++ {
			p := d.Part(i)
			id := i
			p.Schedule(0, func() {
				p.Send(0, 10, func() { got = append(got, fmt.Sprintf("a%d", id)) })
				p.Send(0, 10, func() { got = append(got, fmt.Sprintf("b%d", id)) })
			})
		}
		d.Run()
		d.Shutdown()
		return fmt.Sprint(got)
	}
	want := "[a1 b1 a2 b2 a3 b3]"
	for _, w := range []int{1, 2, 4} {
		if got := run(w); got != want {
			t.Fatalf("workers=%d: merge order %s, want %s", w, got, want)
		}
	}
}

// TestParEngineLimit: events past the limit stay queued; re-arming via
// SetLimit resumes exactly where the run left off.
func TestParEngineLimit(t *testing.T) {
	d := NewParEngine(2, 2, 10)
	var got []Time
	for i := 0; i < 2; i++ {
		p := d.Part(i)
		for _, at := range []Time{5, 25, 45} {
			a := at
			p.Schedule(a, func() { got = append(got, a) })
		}
	}
	d.SetLimit(30)
	d.Run()
	if !d.Stopped() {
		t.Fatal("engine not stopped at limit")
	}
	if len(got) != 4 {
		t.Fatalf("ran %d events under limit 30, want 4 (the two at 45 must wait)", len(got))
	}
	d.SetLimit(0)
	d.Run()
	d.Shutdown()
	if len(got) != 6 {
		t.Fatalf("ran %d events after re-arm, want 6", len(got))
	}
}

// TestParEngineStopAtWindowBoundary: Stop lets the current window
// drain, then halts before the next.
func TestParEngineStop(t *testing.T) {
	d := NewParEngine(1, 1, 10)
	p := d.Part(0)
	ran := 0
	p.Schedule(1, func() { ran++; d.Stop() })
	p.Schedule(100, func() { ran++ })
	d.Run()
	d.Shutdown()
	if ran != 1 {
		t.Fatalf("ran %d events, want 1 (event at 100 is past the stopped window)", ran)
	}
}

// TestParEnginePanics: the guard rails that keep models honest.
func TestParEnginePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("zero lookahead", func() { NewParEngine(1, 1, 0) })
	expectPanic("zero partitions", func() { NewParEngine(0, 1, 5) })

	d := NewParEngine(2, 1, 10)
	p := d.Part(0)
	expectPanic("negative schedule", func() { p.Schedule(-1, func() {}) })
	expectPanic("send below lookahead", func() { p.Send(1, 9, func() {}) })
	expectPanic("send to invalid partition", func() { p.Send(5, 10, func() {}) })
	d.Shutdown()
	expectPanic("schedule after shutdown", func() { p.Schedule(0, func() {}) })
	expectPanic("send after shutdown", func() { p.Send(1, 10, func() {}) })

	c := NewParEngine(2, 1, 10)
	c.SetMailboxCap(2)
	cp := c.Part(0)
	cp.Schedule(0, func() {
		cp.Send(1, 10, func() {})
		cp.Send(1, 10, func() {})
	})
	expectPanic("mailbox cap", func() {
		cp2 := c.Part(0)
		cp2.Schedule(0, func() { cp2.Send(1, 10, func() {}) })
		// Third send in the same window exceeds the cap of 2.
		c.Run()
	})
	c.Shutdown()
}

// TestParEngineEventPanicPropagates: a panic inside event code on a
// worker goroutine re-raises on the Run caller.
func TestParEngineEventPanicPropagates(t *testing.T) {
	d := NewParEngine(4, 4, 10)
	for i := 0; i < 4; i++ {
		p := d.Part(i)
		p.Schedule(Time(i), func() {})
	}
	d.Part(2).Schedule(3, func() { panic("boom") })
	defer func() {
		d.Shutdown()
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	d.Run()
}

// TestMixSeedStability pins the partition-stable seed derivation: the
// values are part of the determinism contract (a silent change would
// alter every perturbed parallel schedule).
func TestMixSeedStability(t *testing.T) {
	if mixSeed(1, 0) == mixSeed(1, 1) {
		t.Fatal("mixSeed does not separate partitions")
	}
	if mixSeed(1, 0) == mixSeed(2, 0) {
		t.Fatal("mixSeed does not separate seeds")
	}
	if mixSeed(0, 0) == 0 {
		t.Fatal("mixSeed may return the sticky zero state")
	}
	if a, b := mixSeed(42, 7), mixSeed(42, 7); a != b {
		t.Fatal("mixSeed not deterministic")
	}
}
