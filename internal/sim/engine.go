// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives a set of cooperating processes (each backed by a
// goroutine) in strict one-at-a-time handoff order: exactly one process
// executes between engine steps, so simulations are fully deterministic
// for a given seed regardless of the host scheduler. Events with equal
// timestamps fire in the order they were scheduled.
//
// The machine model in internal/machine is built on this engine; nothing
// in this package knows about caches or locks.
package sim

import (
	"fmt"
	"sync"
)

// Time is simulated time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// String renders a Time using the most natural unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type event struct {
	at  Time
	pri uint64 // tie-break priority (0 unless the engine is perturbed)
	seq uint64
	fn  func()
}

// before orders events by timestamp, ties broken first by the perturbed
// priority and then by schedule order. With no perturbation every pri is
// zero, so the order degenerates to the classic FIFO tie-break.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// eventHeap is a hand-rolled binary min-heap over event values. It
// replaces container/heap on the hottest path in the tree: heap.Push
// boxes every event into an interface{} (one allocation per Schedule)
// and dispatches sift compares through the heap.Interface method table.
// The monomorphic version allocates only when the backing array grows,
// and that storage is recycled across engines via heapPool.
type eventHeap []event

// push appends ev and sifts it up.
func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the backing array does not pin the event's closure.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{}
	s = s[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && s[r].before(s[c]) {
			c = r
		}
		if !s[c].before(s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	*h = s
	return top
}

// heapPool recycles event-heap backing arrays across engine lifetimes.
// Experiment sweeps construct one engine per simulation cell; reusing
// the storage keeps Schedule allocation-free from the second run on.
var heapPool = sync.Pool{
	New: func() interface{} {
		h := make(eventHeap, 0, 1024)
		return &h
	},
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	ctl     chan struct{} // process -> engine: parked or finished
	running int           // live processes
	stopped bool
	limited bool // stopped was set by the time limit, not Stop
	killed  bool
	limit   Time // 0 = no limit
	procs   []*Process
	// tiebreak, when non-nil, assigns each scheduled event a random
	// priority that reorders equal-timestamp events (see Perturb).
	tiebreak *RNG
}

// killSignal unwinds a process body during Shutdown.
type killSignal struct{}

// IsKill reports whether a recovered panic value is the engine's
// internal shutdown signal. Process bodies that install their own
// recover (e.g. the correctness harness, which converts lock panics
// into recorded failures) must re-panic such values so Shutdown can
// unwind them normally.
func IsKill(r any) bool {
	_, ok := r.(killSignal)
	return ok
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{ctl: make(chan struct{}), events: *heapPool.Get().(*eventHeap)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// SetLimit makes Run stop once the clock passes t (0 disables the
// limit). After a limit-induced stop, raising or clearing the limit
// re-arms the engine so Run can resume where it left off; a stop
// requested via Stop is never undone.
func (e *Engine) SetLimit(t Time) {
	e.limit = t
	if e.limited && (t == 0 || t > e.now) {
		e.limited = false
		e.stopped = false
	}
}

// Perturb makes equal-timestamp events fire in a pseudo-random order
// drawn from seed instead of the default schedule (FIFO) order. Every
// linearization it produces is one the FIFO engine could legally have
// produced under a different arrival order, so simulations stay valid —
// they just take a different path through the tie-break space. The
// schedule-exploring checker in internal/check uses this to enumerate
// distinct interleavings; the same seed always yields the same order.
// A zero seed restores the default FIFO tie-break. Call before Run.
func (e *Engine) Perturb(seed uint64) {
	if seed == 0 {
		e.tiebreak = nil
		return
	}
	e.tiebreak = NewRNG(seed)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called (or the time limit hit).
func (e *Engine) Stopped() bool { return e.stopped }

// Schedule runs fn at now+d. Scheduling in the past (d < 0) panics, as
// does scheduling on an engine that has been shut down.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule %v in the past", d))
	}
	if e.killed {
		panic("sim: Schedule after Shutdown (the engine cannot be reused)")
	}
	e.seq++
	var pri uint64
	if e.tiebreak != nil {
		pri = e.tiebreak.Uint64()
	}
	e.events.push(event{at: e.now + d, pri: pri, seq: e.seq, fn: fn})
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Run executes events in timestamp order until no events remain, Stop is
// called, or the time limit is exceeded. It must be called from the same
// goroutine that constructed the engine.
//
// Hitting the time limit leaves the offending event queued (the heap is
// only peeked), so raising the limit with SetLimit and calling Run again
// resumes without losing it.
func (e *Engine) Run() {
	for len(e.events) > 0 && !e.stopped {
		at := e.events[0].at
		if at < e.now {
			panic("sim: event time went backwards")
		}
		if e.limit > 0 && at > e.limit {
			e.now = e.limit
			e.stopped = true
			e.limited = true
			return
		}
		e.now = at
		// Fire the whole same-timestamp batch under the checks above:
		// equal-time events cannot trip the limit or move time backwards,
		// so only the stop flag needs re-testing between them. (An event
		// may advance the clock via the Sleep fast path; the batch ends
		// then because remaining events sort strictly later.)
		for len(e.events) > 0 && e.events[0].at == at && e.now == at && !e.stopped {
			ev := e.events.pop()
			ev.fn()
		}
	}
}

// A Process is a simulated thread of control. Its body runs in a dedicated
// goroutine but only ever executes while the engine has handed control to
// it, so process code may freely touch engine state without locking.
type Process struct {
	e         *Engine
	id        int
	resume    chan struct{}
	handoffFn func() // p.handoff bound once; a fresh method value allocates
	started   bool
	done      bool
	blocked   bool // parked with no wake event (waiting on Wake)
}

// ID returns the identifier given at Spawn.
func (p *Process) ID() int { return p.id }

// Engine returns the owning engine.
func (p *Process) Engine() *Engine { return p.e }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.e.now }

// Spawn creates a process whose body starts executing at the current time
// (after previously scheduled same-time events). The body must only
// interact with simulated time via the Process methods. Spawning on an
// engine that has been shut down panics.
func (e *Engine) Spawn(id int, body func(p *Process)) *Process {
	if e.killed {
		panic("sim: Spawn after Shutdown (the engine cannot be reused)")
	}
	p := &Process{e: e, id: id, resume: make(chan struct{})}
	p.handoffFn = p.handoff
	e.running++
	e.procs = append(e.procs, p)
	e.Schedule(0, func() {
		p.started = true
		go func() {
			<-p.resume
			defer func() {
				p.done = true
				e.running--
				if r := recover(); r != nil {
					if _, ok := r.(killSignal); !ok {
						panic(r)
					}
				}
				e.ctl <- struct{}{}
			}()
			if e.killed {
				panic(killSignal{})
			}
			body(p)
		}()
		p.handoff()
	})
	return p
}

// Shutdown unwinds every process that has not finished and releases the
// engine's event storage. It must be called after Run returns; the
// engine cannot be used afterwards (Spawn and Schedule panic).
// Simulations that stop early (Stop or a time limit) should call
// Shutdown to avoid leaking the goroutines backing parked processes.
func (e *Engine) Shutdown() {
	if e.killed {
		return
	}
	e.killed = true
	e.stopped = true
	for _, p := range e.procs {
		switch {
		case p.done:
		case !p.started:
			// The spawn event never ran; no goroutine exists yet.
			p.done = true
			e.running--
		default:
			p.handoff()
		}
	}
	// Recycle the heap storage for the next engine. Clear any events
	// still queued (e.g. after a time-limit stop) so their closures are
	// not pinned while the array sits in the pool.
	h := e.events
	for i := range h {
		h[i] = event{}
	}
	h = h[:0]
	e.events = nil
	heapPool.Put(&h)
}

// handoff transfers control to p and waits for it to park or finish.
// Called from engine context (inside an event callback).
func (p *Process) handoff() {
	p.resume <- struct{}{}
	<-p.e.ctl
}

// park suspends the process body until the engine resumes it.
func (p *Process) park() {
	p.e.ctl <- struct{}{}
	<-p.resume
	if p.e.killed {
		panic(killSignal{})
	}
}

// Sleep advances the process's local time by d.
func (p *Process) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		return
	}
	e := p.e
	wake := e.now + d
	// Fast path: if no queued event fires before (or at) the wake time,
	// the engine would pop our wake event straight back to us — two
	// channel round-trips for nothing. Advance the clock in place
	// instead. This fires exactly when the wake event would have been
	// the next event popped, so the global event order (and therefore
	// determinism) is unchanged; pending equal-time events keep priority
	// because they were scheduled earlier.
	if !e.stopped && (len(e.events) == 0 || wake < e.events[0].at) &&
		(e.limit == 0 || wake <= e.limit) {
		e.now = wake
		return
	}
	e.Schedule(d, p.handoffFn)
	p.park()
}

// Block parks the process indefinitely; another party must call Wake.
func (p *Process) Block() {
	p.blocked = true
	p.park()
}

// Blocked reports whether the process is parked in Block.
func (p *Process) Blocked() bool { return p.blocked }

// Done reports whether the process body has returned.
func (p *Process) Done() bool { return p.done }

// Wake schedules a blocked process to resume at now+d. Waking a process
// that is not blocked panics (it would corrupt the handoff protocol).
func (p *Process) Wake(d Time) {
	if !p.blocked {
		panic("sim: wake of non-blocked process")
	}
	p.blocked = false
	p.e.Schedule(d, p.handoffFn)
}

// Running returns the number of processes that have not finished.
func (e *Engine) Running() int { return e.running }
