// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives a set of cooperating processes (each backed by a
// goroutine) in strict one-at-a-time handoff order: exactly one process
// executes between engine steps, so simulations are fully deterministic
// for a given seed regardless of the host scheduler. Events with equal
// timestamps fire in the order they were scheduled.
//
// The machine model in internal/machine is built on this engine; nothing
// in this package knows about caches or locks.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// String renders a Time using the most natural unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	ctl     chan struct{} // process -> engine: parked or finished
	running int           // live processes
	stopped bool
	killed  bool
	limit   Time // 0 = no limit
	procs   []*Process
}

// killSignal unwinds a process body during Shutdown.
type killSignal struct{}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{ctl: make(chan struct{})}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// SetLimit makes Run stop once the clock passes t (0 disables the limit).
func (e *Engine) SetLimit(t Time) { e.limit = t }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called (or the time limit hit).
func (e *Engine) Stopped() bool { return e.stopped }

// Schedule runs fn at now+d. Scheduling in the past (d < 0) panics.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule %v in the past", d))
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + d, seq: e.seq, fn: fn})
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Run executes events in timestamp order until no events remain, Stop is
// called, or the time limit is exceeded. It must be called from the same
// goroutine that constructed the engine.
func (e *Engine) Run() {
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			panic("sim: event time went backwards")
		}
		if e.limit > 0 && ev.at > e.limit {
			e.now = e.limit
			e.stopped = true
			return
		}
		e.now = ev.at
		ev.fn()
	}
}

// A Process is a simulated thread of control. Its body runs in a dedicated
// goroutine but only ever executes while the engine has handed control to
// it, so process code may freely touch engine state without locking.
type Process struct {
	e       *Engine
	id      int
	resume  chan struct{}
	started bool
	done    bool
	blocked bool // parked with no wake event (waiting on Wake)
}

// ID returns the identifier given at Spawn.
func (p *Process) ID() int { return p.id }

// Engine returns the owning engine.
func (p *Process) Engine() *Engine { return p.e }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.e.now }

// Spawn creates a process whose body starts executing at the current time
// (after previously scheduled same-time events). The body must only
// interact with simulated time via the Process methods.
func (e *Engine) Spawn(id int, body func(p *Process)) *Process {
	p := &Process{e: e, id: id, resume: make(chan struct{})}
	e.running++
	e.procs = append(e.procs, p)
	e.Schedule(0, func() {
		p.started = true
		go func() {
			<-p.resume
			defer func() {
				p.done = true
				e.running--
				if r := recover(); r != nil {
					if _, ok := r.(killSignal); !ok {
						panic(r)
					}
				}
				e.ctl <- struct{}{}
			}()
			if e.killed {
				panic(killSignal{})
			}
			body(p)
		}()
		p.handoff()
	})
	return p
}

// Shutdown unwinds every process that has not finished. It must be called
// after Run returns; the engine cannot be used afterwards. Simulations
// that stop early (Stop or a time limit) should call Shutdown to avoid
// leaking the goroutines backing parked processes.
func (e *Engine) Shutdown() {
	e.killed = true
	e.stopped = true
	for _, p := range e.procs {
		switch {
		case p.done:
		case !p.started:
			// The spawn event never ran; no goroutine exists yet.
			p.done = true
			e.running--
		default:
			p.handoff()
		}
	}
}

// handoff transfers control to p and waits for it to park or finish.
// Called from engine context (inside an event callback).
func (p *Process) handoff() {
	p.resume <- struct{}{}
	<-p.e.ctl
}

// park suspends the process body until the engine resumes it.
func (p *Process) park() {
	p.e.ctl <- struct{}{}
	<-p.resume
	if p.e.killed {
		panic(killSignal{})
	}
}

// Sleep advances the process's local time by d.
func (p *Process) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		return
	}
	p.e.Schedule(d, p.handoff)
	p.park()
}

// Block parks the process indefinitely; another party must call Wake.
func (p *Process) Block() {
	p.blocked = true
	p.park()
}

// Blocked reports whether the process is parked in Block.
func (p *Process) Blocked() bool { return p.blocked }

// Done reports whether the process body has returned.
func (p *Process) Done() bool { return p.done }

// Wake schedules a blocked process to resume at now+d. Waking a process
// that is not blocked panics (it would corrupt the handoff protocol).
func (p *Process) Wake(d Time) {
	if !p.blocked {
		panic("sim: wake of non-blocked process")
	}
	p.blocked = false
	p.e.Schedule(d, p.handoff)
}

// Running returns the number of processes that have not finished.
func (e *Engine) Running() int { return e.running }
