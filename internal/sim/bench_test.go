package sim

import "testing"

// BenchmarkSchedule measures steady-state event scheduling: one push
// into the event heap per iteration, drained in batches so the heap
// stays at a fixed working size. The acceptance bar is 0 allocs/op —
// scheduling must not box events or grow storage once warm.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, fn)
		if e.Pending() == 1024 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineStep measures the per-step cost of one process
// repeatedly advancing simulated time — the innermost loop of every
// simulation. With a single runnable process this is the self-resume
// fast path.
func BenchmarkEngineStep(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	e.Spawn(0, func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Sleep(10)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineStepPingPong measures the per-step cost when control
// must bounce between two processes through the engine (the channel
// handoff slow path: their sleeps interleave, so neither can
// self-resume).
func BenchmarkEngineStepPingPong(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	for id := 0; id < 2; id++ {
		e.Spawn(id, func(p *Process) {
			for i := 0; i < b.N/2; i++ {
				p.Sleep(10)
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkScheduleContended measures heap push/pop with a deep heap
// (1k outstanding events), the sift cost under a realistic backlog.
func BenchmarkScheduleContended(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.Schedule(Time(1+i%37), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(1+i%37), fn)
		if e.Pending() == 4096 {
			e.Run()
		}
	}
	e.Run()
}
