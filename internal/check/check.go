// Package check is a schedule-exploring differential correctness
// harness for the lock implementations in this repository.
//
// Three layers of checking cover the two lock families:
//
//   - A schedule explorer perturbs the deterministic sim engine's
//     event tie-breaking (machine.Config.TieBreakSeed) and simulation
//     seeds to enumerate distinct interleavings, and runs every
//     internal/simlock algorithm under mutual-exclusion,
//     deadlock/livelock-freedom and bounded-starvation oracles. Each
//     interleaving is fingerprinted by the sequence of critical-section
//     entries (thread, node, wait time), so coverage is measured in
//     *distinct* schedules, not raw runs.
//   - The simulated machine runs with its always-on coherence invariant
//     probes enabled (machine.Config.Probes): MESI single-writer and
//     valid-state checks fire at every access completion, and the
//     per-line traffic attribution is checked to conserve against the
//     machine totals after every schedule.
//   - A differential twin layer (twin.go) stress-runs each native
//     internal/core lock under the same oracles with real goroutines
//     (race-detector clean) and cross-checks qualitative behaviour —
//     fairness bursts, node-handoff locality, quiescence, survival of
//     injected lock-word corruption — against its simlock twin,
//     failing on algorithmic divergence.
//
// Everything is deterministic for a fixed seed: the same seed explores
// the same schedule set and produces byte-identical JSON reports. The
// cmd/lockcheck command drives the harness with a configurable budget;
// broken.go provides deliberately buggy locks that double as an
// end-to-end self-test of the oracles.
//
// The approach follows Chabbi et al. (Correctness of Hierarchical MCS
// Locks with Timeout), which model-checks hierarchical locks precisely
// because their interleaving bugs hide from ordinary stress tests, and
// Dice & Kogan's invariant-driven stress methodology for compact
// NUMA-aware locks.
package check

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// ScheduleConfig describes one simulated schedule: a machine shape plus
// a contention scenario and oracle budgets.
type ScheduleConfig struct {
	Machine    machine.Config
	Threads    int
	Iterations int      // per thread
	CSWork     sim.Time // critical-section compute
	MaxThink   sim.Time // uniform random think-time bound (0 = none)
	LockHome   int      // node homing the lock variable
	Tuning     simlock.Tuning
	// Watchdog bounds the simulated run time; a schedule that does not
	// complete within it is reported as a progress (deadlock/livelock)
	// failure. 0 disables the watchdog.
	Watchdog sim.Time
	// MaxWait bounds any single acquire's wait time (the
	// bounded-starvation oracle). 0 disables the check.
	MaxWait sim.Time
	// Timeout, when positive and the lock implements simlock.TimedLock,
	// switches the thread bodies to AcquireTimeout with this budget in a
	// retry-until-acquired loop; every expiry counts in
	// ScheduleResult.Aborts. Locks without a timed path fall back to the
	// blocking acquire. Fault injection is configured through
	// Machine.Fault.
	Timeout sim.Time
}

// Validate rejects configurations RunSchedule cannot execute: it
// checks the machine shape (machine.Config.Validate covers the fault
// plan too), the thread/iteration counts, that the lock home is a real
// node, that the threads fit on the machine (roundRobinCPUs would
// otherwise search forever for a free CPU), and that every budget is
// non-negative.
func (cfg ScheduleConfig) Validate() error {
	if err := cfg.Machine.Validate(); err != nil {
		return fmt.Errorf("check: machine config: %w", err)
	}
	if cfg.Threads < 1 {
		return fmt.Errorf("check: Threads = %d, need at least 1", cfg.Threads)
	}
	if cfg.Iterations < 1 {
		return fmt.Errorf("check: Iterations = %d, need at least 1", cfg.Iterations)
	}
	if total := cfg.Machine.TotalCPUs(); cfg.Threads > total {
		return fmt.Errorf("check: %d threads exceed the machine's %d CPUs", cfg.Threads, total)
	}
	if cfg.LockHome < 0 || cfg.LockHome >= cfg.Machine.Nodes {
		return fmt.Errorf("check: LockHome %d out of range [0,%d)", cfg.LockHome, cfg.Machine.Nodes)
	}
	for _, f := range []struct {
		name string
		v    sim.Time
	}{
		{"CSWork", cfg.CSWork}, {"MaxThink", cfg.MaxThink},
		{"Watchdog", cfg.Watchdog}, {"MaxWait", cfg.MaxWait},
		{"Timeout", cfg.Timeout},
	} {
		if f.v < 0 {
			return fmt.Errorf("check: %s = %v is negative", f.name, f.v)
		}
	}
	return nil
}

// DefaultScheduleConfig returns the explorer's per-schedule scenario: a
// small 2-node machine and a short contended run, cheap enough that a
// budget of thousands of schedules per lock stays fast. seed and
// tiebreak select the interleaving.
func DefaultScheduleConfig(seed, tiebreak uint64) ScheduleConfig {
	cfg := machine.WildFire()
	cfg.CPUsPerNode = 2
	cfg.Seed = seed
	cfg.TieBreakSeed = tiebreak
	return ScheduleConfig{
		Machine:    cfg,
		Threads:    4,
		Iterations: 6,
		CSWork:     300,
		MaxThink:   1500,
		Tuning:     exploreTuning(),
		Watchdog:   200 * sim.Millisecond,
		MaxWait:    50 * sim.Millisecond,
	}
}

// exploreTuning shrinks the backoff constants so slowpaths, restarts and
// the GT_SD starvation detector are all exercised within short runs.
func exploreTuning() simlock.Tuning {
	tun := simlock.DefaultTuning()
	tun.BackoffBase = 16
	tun.BackoffCap = 256
	tun.RemoteBackoffBase = 128
	tun.RemoteBackoffCap = 1024
	tun.GetAngryLimit = 2
	return tun
}

// ScheduleResult is the outcome of one schedule run.
type ScheduleResult struct {
	// Sig fingerprints the interleaving: an FNV-1a hash over the
	// sequence of (thread, node, wait) critical-section entries. The
	// wait component matters: FIFO locks service every arrival
	// permutation in the same thread order, so acquisition order alone
	// would collapse their whole interleaving space to a handful of
	// signatures. In a deterministic simulator the wait time is an
	// exact function of the event interleaving, so including it
	// distinguishes schedules that take different paths to the same
	// service order without ever splitting a genuinely identical run.
	Sig          uint64
	Acquisitions int
	// Aborts counts timed-acquire expiries (Timeout > 0 only); each
	// aborted attempt was retried until the acquisition succeeded, so
	// Acquisitions is unaffected.
	Aborts    int
	PerThread []int
	MaxWait   sim.Time
	Elapsed   sim.Time
	// Locality is the fraction of consecutive acquisitions served
	// within the same node (NUCA-aware locks push it up).
	Locality float64
	// MaxBurst is the longest run of consecutive acquisitions by a
	// single thread (FIFO locks push it down under contention).
	MaxBurst int
	// Failures lists every oracle violation, in detection order.
	Failures []string
}

// Failed reports whether any oracle fired.
func (r *ScheduleResult) Failed() bool { return len(r.Failures) > 0 }

func (r *ScheduleResult) fail(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// FNV-1a 64-bit constants for schedule fingerprints.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

// roundRobinCPUs spreads threads across nodes the way the paper's
// microbenchmarks do.
func roundRobinCPUs(cfg machine.Config, threads int) []int {
	cpus := make([]int, threads)
	perNode := make([]int, cfg.Nodes)
	for t := 0; t < threads; t++ {
		n := t % cfg.Nodes
		for perNode[n] >= cfg.CPUsPerNode {
			n = (n + 1) % cfg.Nodes
		}
		cpus[t] = n*cfg.CPUsPerNode + perNode[n]
		perNode[n]++
	}
	return cpus
}

// RunSchedule executes one schedule of the named simlock algorithm
// (factory overrides the name lookup when non-nil, which is how the
// deliberately broken locks are injected) and evaluates every oracle:
//
//   - mutual exclusion: a critical-section token that must never be
//     held twice, plus guarded shared counters that must not lose
//     updates;
//   - deadlock/livelock freedom: every thread must finish its
//     iterations before the sim-time watchdog;
//   - bounded starvation: no single acquire may wait longer than
//     MaxWait;
//   - machine invariants: the always-on coherence probes plus the
//     post-run directory sweep and traffic-conservation check;
//   - quiescence: locks exposing a Quiescent probe must return to
//     their idle state;
//   - panics in lock code are caught and reported as failures instead
//     of crashing the harness.
//
// A configuration that fails Validate returns a zero result and the
// validation error instead of running (or panicking deep inside
// machine construction).
func RunSchedule(name string, factory simlock.Factory, cfg ScheduleConfig) (ScheduleResult, error) {
	if err := cfg.Validate(); err != nil {
		return ScheduleResult{}, err
	}
	mcfg := cfg.Machine
	mcfg.Probes = true
	if cfg.Watchdog > 0 {
		mcfg.TimeLimit = cfg.Watchdog
	}
	m := machine.New(mcfg)
	cpus := roundRobinCPUs(mcfg, cfg.Threads)
	var l simlock.Lock
	if factory != nil {
		l = factory(m, cfg.LockHome, cpus, cfg.Tuning)
	} else {
		l = simlock.New(name, m, cfg.LockHome, cpus, cfg.Tuning)
	}
	const csLines = 2
	data := m.Alloc(cfg.LockHome, csLines)
	timed, _ := l.(simlock.TimedLock)
	if cfg.Timeout <= 0 {
		timed = nil
	}

	res := ScheduleResult{Sig: fnvOffset, PerThread: make([]int, cfg.Threads)}
	inCS := 0
	lastTID, lastNode := -1, -1
	burst, handoffs, sameNode := 0, 0, 0
	finished := 0

	for tid := 0; tid < cfg.Threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			defer func() {
				if r := recover(); r != nil {
					if sim.IsKill(r) {
						panic(r)
					}
					res.fail("panic: %s: %v", name, r)
				}
			}()
			rng := sim.NewRNG(mcfg.Seed*524287 + uint64(tid) + 7)
			for i := 0; i < cfg.Iterations; i++ {
				t0 := p.Now()
				if timed != nil {
					// Retry-until-acquired so the oracle arithmetic
					// (acquisition counts, lost-update totals) is the same
					// as the blocking body; the abort path still runs for
					// real, and the wait below includes aborted attempts.
					for !timed.AcquireTimeout(p, tid, cfg.Timeout) {
						res.Aborts++
						p.Delay(100)
					}
				} else {
					l.Acquire(p, tid)
				}
				w := p.Now() - t0
				if w > res.MaxWait {
					res.MaxWait = w
				}
				inCS++
				if inCS != 1 {
					res.fail("mutual-exclusion: %d threads in the critical section (tid %d, t=%v)",
						inCS, tid, p.Now())
				}
				res.Sig = fnvMix(res.Sig, uint64(tid)+1)
				res.Sig = fnvMix(res.Sig, uint64(p.Node())+1)
				res.Sig = fnvMix(res.Sig, uint64(w))
				res.Acquisitions++
				res.PerThread[tid]++
				if lastTID == tid {
					burst++
				} else {
					burst = 1
					lastTID = tid
				}
				if burst > res.MaxBurst {
					res.MaxBurst = burst
				}
				if lastNode >= 0 {
					handoffs++
					if p.Node() == lastNode {
						sameNode++
					}
				}
				lastNode = p.Node()
				for w := 0; w < csLines; w++ {
					a := data + machine.Addr(w)
					p.Store(a, p.Load(a)+1)
				}
				if cfg.CSWork > 0 {
					p.Work(cfg.CSWork)
				}
				inCS--
				l.Release(p, tid)
				if cfg.MaxThink > 0 {
					p.Work(rng.Timen(cfg.MaxThink) + 1)
				}
			}
			finished++
		})
	}
	m.Run()
	res.Elapsed = m.Now()
	if handoffs > 0 {
		res.Locality = float64(sameNode) / float64(handoffs)
	}

	if finished < cfg.Threads {
		res.fail("progress: %d/%d threads finished before the %v watchdog (deadlock or livelock)",
			finished, cfg.Threads, cfg.Watchdog)
	} else {
		// Lost updates and full invariants only mean something for runs
		// that drained; aborted runs legitimately leave waiters parked.
		want := uint64(cfg.Threads * cfg.Iterations)
		for w := 0; w < csLines; w++ {
			if got := m.Peek(data + machine.Addr(w)); got != want {
				res.fail("lost-update: guarded word %d holds %d, want %d", w, got, want)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			res.fail("invariant: %v", err)
		}
		if q, ok := l.(simlock.Quiescer); ok {
			if err := q.Quiescent(m); err != nil {
				res.fail("quiescence: %v", err)
			}
		}
	}
	if err := m.ProbeError(); err != nil {
		res.fail("probe: %v", err)
	}
	if err := m.CheckConservation(); err != nil {
		res.fail("conservation: %v", err)
	}
	if cfg.MaxWait > 0 && res.MaxWait > cfg.MaxWait {
		res.fail("starvation: a single acquire waited %v (bound %v)", res.MaxWait, cfg.MaxWait)
	}
	return res, nil
}
