package check

import (
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// Fault-mode exploration: the same oracles, run on degraded machines.
// Each fault class from internal/fault gets its own exploration per
// lock, so a protocol that survives clean interleavings but wedges when
// the holder's node pauses (or when a coherence transaction NACKs at
// the wrong moment) still fails loudly, with (seed, tiebreak) replay
// coordinates.

// denseFactor compresses the fault presets' window timing for the
// explorer. The presets are calibrated for millisecond-scale benchmark
// runs; a schedule run lasts tens of microseconds, so without the
// compression no fault window would ever open inside one.
const denseFactor = 50

// densify divides every window interval and duration (and the NACK
// retry delay) by denseFactor, clamping at 1ns.
func densify(c fault.Config) fault.Config {
	div := func(t sim.Time) sim.Time {
		t /= denseFactor
		if t < 1 {
			t = 1
		}
		return t
	}
	c.Spike.MeanInterval = div(c.Spike.MeanInterval)
	c.Spike.MeanDuration = div(c.Spike.MeanDuration)
	c.Storm.MeanInterval = div(c.Storm.MeanInterval)
	c.Storm.MeanDuration = div(c.Storm.MeanDuration)
	c.Pause.MeanInterval = div(c.Pause.MeanInterval)
	c.Pause.MeanDuration = div(c.Pause.MeanDuration)
	c.NACK.RetryDelay = div(c.NACK.RetryDelay)
	return c
}

// FaultScheduleConfig is DefaultScheduleConfig on a degraded machine:
// the named fault class (one of fault.Schedules()) at full intensity,
// densified to the explorer's time scale. Timed locks run their
// abortable path with a small budget (aborts are retried, so the
// oracle arithmetic is unchanged); the starvation bound is disabled
// because a paused holder legitimately produces long waits.
func FaultScheduleConfig(class string, seed, tiebreak uint64) (ScheduleConfig, error) {
	fc, err := fault.Preset(class, seed, 1.0)
	if err != nil {
		return ScheduleConfig{}, err
	}
	cfg := DefaultScheduleConfig(seed, tiebreak)
	cfg.Machine.Fault = densify(fc)
	cfg.Watchdog = 20 * sim.Millisecond
	cfg.MaxWait = 0
	cfg.Timeout = 10 * sim.Microsecond
	return cfg, nil
}

// ExploreFaults runs the schedule explorer for every (lock, fault
// class) pair and returns one LockResult per pair, labelled
// "LOCK@class". nil names means every registered lock. Deterministic
// for a fixed (names, seed, budget), like Explore.
func ExploreFaults(names []string, seed uint64, b Budget) []LockResult {
	if names == nil {
		names = simlock.AllNames()
	}
	var out []LockResult
	for _, class := range fault.Schedules() {
		cfgFn := func(s, tb uint64) ScheduleConfig {
			cfg, err := FaultScheduleConfig(class, s, tb)
			if err != nil {
				panic(err) // class comes from fault.Schedules()
			}
			return cfg
		}
		for _, name := range names {
			lr := exploreLock(name, nil, seed^fnvString(class), b, cfgFn)
			lr.Lock = name + "@" + class
			out = append(out, lr)
		}
	}
	return out
}
