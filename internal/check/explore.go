package check

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/simlock"
)

// ReportSchema versions the machine-readable lockcheck report, in the
// hbo-run-report/v1 idiom. Consumers pin this string; bump it whenever a
// field changes meaning or layout.
const ReportSchema = "lockcheck-report/v1"

// Budget bounds one lock's exploration.
type Budget struct {
	// Schedules is the target number of distinct interleavings (by
	// schedule signature) to cover per lock.
	Schedules int `json:"schedules"`
	// MaxRuns caps the number of simulations spent reaching the target;
	// duplicate signatures do not count toward Schedules, so the cap
	// keeps a lock whose behaviour is insensitive to perturbation (few
	// reachable interleavings) from running forever. 0 means
	// 4 × Schedules.
	MaxRuns int `json:"max_runs"`
	// MaxFailures stops a lock's exploration early once this many
	// failing schedules have been recorded (a broken lock fails nearly
	// every schedule; there is no value in collecting thousands of
	// copies of the same diagnosis). 0 means 5.
	MaxFailures int `json:"max_failures"`
}

// DefaultBudget is the lockcheck command's default: meets the harness's
// 1000-distinct-schedules-per-lock bar.
func DefaultBudget() Budget { return Budget{Schedules: 1000} }

func (b Budget) maxRuns() int {
	if b.MaxRuns > 0 {
		return b.MaxRuns
	}
	return 4 * b.Schedules
}

func (b Budget) maxFailures() int {
	if b.MaxFailures > 0 {
		return b.MaxFailures
	}
	return 5
}

// splitmix64 is the standard seed-stream mixer: successive calls with
// the same starting state yield the same independent-looking stream, so
// run n of an exploration is a pure function of (root seed, lock, n).
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnvString hashes a lock name into the seed stream so each lock
// explores an independent but reproducible schedule set.
func fnvString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h = fnvMix(h, uint64(s[i]))
	}
	return h
}

// FailureRecord pins one failing schedule to the exact coordinates that
// reproduce it: re-running RunSchedule with this seed pair replays the
// identical interleaving.
type FailureRecord struct {
	Run      int      `json:"run"`
	Seed     uint64   `json:"seed"`
	TieBreak uint64   `json:"tiebreak"`
	Sig      string   `json:"sig"`
	Failures []string `json:"failures"`
}

// LockResult is the per-lock section of a lockcheck report.
type LockResult struct {
	Lock     string `json:"lock"`
	Runs     int    `json:"runs"`
	Distinct int    `json:"distinct_schedules"`
	// Acquisitions totals critical-section entries over every run.
	Acquisitions int `json:"acquisitions"`
	// MaxWaitNS is the worst single-acquire wait seen over all runs.
	MaxWaitNS int64 `json:"max_wait_ns"`
	// MaxBurst is the longest same-thread acquisition run seen.
	MaxBurst int `json:"max_burst"`
	// MeanLocality averages the same-node handoff fraction over runs.
	MeanLocality float64 `json:"mean_locality"`
	// Aborts totals timed-acquire expiries over every run (fault-mode
	// explorations only; zero and omitted otherwise).
	Aborts int `json:"aborts,omitempty"`
	// FailedRuns counts runs with at least one oracle violation;
	// Failures holds the first few with reproduction coordinates.
	FailedRuns int             `json:"failed_runs"`
	Failures   []FailureRecord `json:"failures,omitempty"`
}

// Passed reports whether every explored schedule was clean.
func (r *LockResult) Passed() bool { return r.FailedRuns == 0 }

// ExploreLock enumerates distinct schedules for one simlock algorithm
// under the budget. Deterministic: the same (name, seed, budget) always
// runs the same schedule sequence and returns the same result. factory
// overrides the registry lookup when non-nil (broken locks).
func ExploreLock(name string, factory simlock.Factory, seed uint64, b Budget) LockResult {
	return exploreLock(name, factory, seed, b, DefaultScheduleConfig)
}

// exploreLock is ExploreLock with the per-run schedule configuration
// delegated to cfgFn, so the fault-mode explorer can swap in degraded
// machines without duplicating the loop.
func exploreLock(name string, factory simlock.Factory, seed uint64, b Budget,
	cfgFn func(seed, tiebreak uint64) ScheduleConfig) LockResult {
	res := LockResult{Lock: name}
	seen := make(map[uint64]struct{}, b.Schedules)
	stream := seed ^ fnvString(name)
	var locSum float64
	for res.Runs < b.maxRuns() && res.Distinct < b.Schedules &&
		res.FailedRuns < b.maxFailures() {
		simSeed := splitmix64(&stream) | 1 // Config.Seed must be non-zero
		tiebreak := splitmix64(&stream)
		if res.Runs == 0 {
			tiebreak = 0 // always include the pure-FIFO baseline order
		}
		cfg := cfgFn(simSeed, tiebreak)
		sr, err := RunSchedule(name, factory, cfg)
		if err != nil {
			// The explorer only generates valid configurations; an error
			// here is a harness bug, not a lock bug.
			panic(err)
		}
		res.Runs++
		if _, dup := seen[sr.Sig]; !dup {
			seen[sr.Sig] = struct{}{}
			res.Distinct++
		}
		res.Acquisitions += sr.Acquisitions
		res.Aborts += sr.Aborts
		if int64(sr.MaxWait) > res.MaxWaitNS {
			res.MaxWaitNS = int64(sr.MaxWait)
		}
		if sr.MaxBurst > res.MaxBurst {
			res.MaxBurst = sr.MaxBurst
		}
		locSum += sr.Locality
		if sr.Failed() {
			res.FailedRuns++
			res.Failures = append(res.Failures, FailureRecord{
				Run:      res.Runs - 1,
				Seed:     simSeed,
				TieBreak: tiebreak,
				Sig:      fmt.Sprintf("%016x", sr.Sig),
				Failures: sr.Failures,
			})
		}
	}
	if res.Runs > 0 {
		res.MeanLocality = locSum / float64(res.Runs)
	}
	return res
}

// Report is the machine-readable result of a lockcheck run. All fields
// are deterministic for a fixed seed, so identical invocations produce
// byte-identical JSON.
type Report struct {
	Schema string       `json:"schema"`
	Tool   string       `json:"tool"`
	Seed   uint64       `json:"seed"`
	Budget Budget       `json:"budget"`
	Locks  []LockResult `json:"locks"`
	Twins  []TwinResult `json:"twins,omitempty"`
	// Faults holds the fault-mode exploration (ExploreFaults): one entry
	// per lock × fault class, named "LOCK@class". Absent unless the
	// fault mode ran, so fault-free reports keep their exact bytes.
	Faults []LockResult `json:"faults,omitempty"`
	Passed bool         `json:"passed"`
}

// Explore runs the schedule explorer over the named simlock algorithms
// (nil means every registered lock) and assembles a report. Twin
// cross-checks are added separately by CheckTwins because they run real
// goroutines and are therefore not schedule-deterministic.
func Explore(names []string, seed uint64, b Budget) *Report {
	if names == nil {
		names = simlock.AllNames()
	}
	rep := &Report{Schema: ReportSchema, Tool: "lockcheck", Seed: seed, Budget: b, Passed: true}
	for _, name := range names {
		lr := ExploreLock(name, nil, seed, b)
		if !lr.Passed() {
			rep.Passed = false
		}
		rep.Locks = append(rep.Locks, lr)
	}
	return rep
}

// WriteJSON emits the report as indented JSON. encoding/json renders
// struct fields in declaration order, so the bytes are stable for a
// fixed report.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
