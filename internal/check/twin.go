package check

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// The differential twin layer. Every paper lock exists twice in this
// repository: as a simulated lock (internal/simlock, deterministic,
// schedule-explorable) and as a native Go lock (internal/core, real
// goroutines, race-detector checkable). The twin layer runs both under
// the same oracles and cross-checks them:
//
//   - hard parity: if one twin passes its correctness oracles and the
//     other fails, the implementations have algorithmically diverged;
//   - probe parity: a lock family exposing quiescence/fault-injection
//     probes on one side must expose them on the other, and both must
//     pass (the HBO family);
//   - injection-survival parity: both HBO_GT_SD twins must ride out the
//     same corrupted-lock-word fault (the bounds-guard divergence this
//     layer originally caught: core/hbo.go guarded the decoded owner,
//     simlock/hbo.go did not);
//   - lenient qualitative cross-checks: node-handoff locality and
//     fairness bursts are compared against each side's own TATAS
//     baseline with a wide dead-band. The sim side is deterministic and
//     checked tightly; the native side runs under the Go scheduler on
//     whatever host CPUs exist (often one), so only gross inversions
//     count as divergence there.

// TwinStress parameterizes the native-side stress run.
type TwinStress struct {
	Threads int
	Iters   int
	Timeout time.Duration // wall-clock watchdog for the native run
}

// DefaultTwinStress is sized to finish quickly even with the race
// detector on while still interleaving heavily.
func DefaultTwinStress() TwinStress {
	return TwinStress{Threads: 4, Iters: 300, Timeout: 30 * time.Second}
}

// TwinResult is one lock's differential comparison.
type TwinResult struct {
	Lock         string   `json:"lock"`
	SimFailures  []string `json:"sim_failures,omitempty"`
	CoreFailures []string `json:"core_failures,omitempty"`
	// Divergences are algorithmic mismatches between the twins — the
	// failures unique to this layer.
	Divergences  []string `json:"divergences,omitempty"`
	SimLocality  float64  `json:"sim_locality"`
	CoreLocality float64  `json:"core_locality"`
	SimMaxBurst  int      `json:"sim_max_burst"`
	CoreMaxBurst int      `json:"core_max_burst"`
}

// Passed reports whether the twins agree and both are correct.
func (r *TwinResult) Passed() bool {
	return len(r.SimFailures) == 0 && len(r.CoreFailures) == 0 && len(r.Divergences) == 0
}

// coreOutcome is the native-side stress result.
type coreOutcome struct {
	failures []string
	locality float64
	maxBurst int
}

// coreQuiescer is the native probe twin of simlock.Quiescer.
type coreQuiescer interface{ Quiescent() error }

// coreInjector is the native probe twin of simlock.WordInjector.
type coreInjector interface{ InjectWord(v uint64) }

// coreStress runs a native lock under the schedule explorer's oracles:
// an atomic critical-section token (mutual exclusion), a wall-clock
// watchdog (progress), and the quiescence probe where available. The
// oracles are all atomic or independently locked so a broken lock under
// test produces oracle failures, not data-race reports.
func coreStress(l core.Lock, rt *core.Runtime, s TwinStress) coreOutcome {
	var out coreOutcome
	var inCS, violations atomic.Int64
	var mu sync.Mutex // guards order independently of the lock under test
	type entry struct{ tid, node int }
	order := make([]entry, 0, s.Threads*s.Iters)

	var wg sync.WaitGroup
	for tid := 0; tid < s.Threads; tid++ {
		th := rt.RegisterThread(tid % rt.Nodes())
		tid := tid
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < s.Iters; i++ {
				l.Acquire(th)
				if tok := inCS.Add(1); tok != 1 {
					violations.Add(1)
				}
				mu.Lock()
				order = append(order, entry{tid, th.Node()})
				mu.Unlock()
				// Periodically yield while inside the critical section:
				// on a host with few CPUs an entire acquire/release
				// cycle otherwise fits in one scheduler quantum, and a
				// mutual-exclusion violation needs two threads *in* the
				// section at once to be observable. Every iteration
				// would be too often — a waiter spinning without a
				// voluntary yield (e.g. TICKET's proportional spin)
				// then burns a full preemption quantum per handoff.
				if i%16 == 0 {
					runtime.Gosched()
				}
				inCS.Add(-1)
				l.Release(th)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.Timeout):
		// The stuck goroutines leak; a checker that already failed has
		// nothing left to protect.
		out.failures = append(out.failures,
			fmt.Sprintf("progress: native stress did not finish within %v", s.Timeout))
		return out
	}

	if v := violations.Load(); v > 0 {
		out.failures = append(out.failures,
			fmt.Sprintf("mutual-exclusion: %d critical-section token violations", v))
	}
	if len(order) != s.Threads*s.Iters {
		out.failures = append(out.failures,
			fmt.Sprintf("lost-update: %d acquisitions recorded, want %d",
				len(order), s.Threads*s.Iters))
	}
	if q, ok := l.(coreQuiescer); ok {
		if err := q.Quiescent(); err != nil {
			out.failures = append(out.failures, fmt.Sprintf("quiescence: %v", err))
		}
	}
	burst, sameNode, handoffs := 0, 0, 0
	lastTID, lastNode := -1, -1
	for _, e := range order {
		if e.tid == lastTID {
			burst++
		} else {
			burst = 1
			lastTID = e.tid
		}
		if burst > out.maxBurst {
			out.maxBurst = burst
		}
		if lastNode >= 0 {
			handoffs++
			if e.node == lastNode {
				sameNode++
			}
		}
		lastNode = e.node
	}
	if handoffs > 0 {
		out.locality = float64(sameNode) / float64(handoffs)
	}
	return out
}

// simInjectionSurvives replays the corrupted-lock-word fault against the
// simulated HBO_GT_SD: the lock word decodes to a nonexistent owner
// while one thread acquires and a second thread later clears the word.
// Survival means the acquirer completes before the sim-time watchdog.
func simInjectionSurvives(seed uint64) bool {
	cfg := machine.WildFire()
	cfg.CPUsPerNode = 2
	cfg.Seed = seed | 1
	cfg.TimeLimit = 50 * sim.Millisecond
	m := machine.New(cfg)
	l := simlock.New("HBO_GT_SD", m, 0, []int{0, 1}, exploreTuning())
	inj, ok := l.(simlock.WordInjector)
	if !ok {
		return false
	}
	inj.InjectWord(m, 100) // decodes to owner 99 on a 2-node machine
	acquired := 0
	m.Spawn(0, func(p *machine.Proc) {
		l.Acquire(p, 0)
		acquired++
		p.Work(100)
		l.Release(p, 0)
	})
	m.Spawn(1, func(p *machine.Proc) {
		p.Work(200 * sim.Microsecond)
		inj.InjectWord(m, 0) // simulated recovery
	})
	m.Run()
	return !m.Aborted() && acquired == 1
}

// coreInjectionSurvives replays the same fault against the native
// HBO_GT_SD twin.
func coreInjectionSurvives(timeout time.Duration) bool {
	rt := core.NewRuntime(2, 1)
	l := core.New("HBO_GT_SD", rt, coreTwinTuning())
	inj, ok := l.(coreInjector)
	if !ok {
		return false
	}
	inj.InjectWord(100)
	th := rt.RegisterThread(0)
	done := make(chan struct{})
	go func() {
		l.Acquire(th)
		l.Release(th)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	inj.InjectWord(0) // simulated recovery
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// coreTwinTuning mirrors exploreTuning for the native side: small
// backoffs and a hair-trigger starvation detector.
func coreTwinTuning() core.Tuning {
	tun := core.DefaultTuning()
	tun.BackoffBase = 16
	tun.BackoffCap = 256
	tun.RemoteBackoffBase = 32
	tun.RemoteBackoffCap = 128
	tun.GetAngryLimit = 2
	// Yield aggressively inside backoff loops: the stress runner yields
	// while holding the lock, and a spinner that does not yield back
	// starves the holder for a whole preemption quantum when the host
	// has fewer CPUs than contenders.
	tun.YieldThreshold = 8
	return tun
}

// CheckTwin differentially checks one lock name present in both
// families. baseline is the TATAS result from the same session (nil
// when comparing TATAS itself), anchoring the qualitative dead-bands.
func CheckTwin(name string, seed uint64, s TwinStress, baseline *TwinResult) TwinResult {
	res := TwinResult{Lock: name}

	// Sim side: a short deterministic schedule sweep.
	lr := ExploreLock(name, nil, seed, Budget{Schedules: 8, MaxRuns: 8, MaxFailures: 3})
	for _, f := range lr.Failures {
		res.SimFailures = append(res.SimFailures, f.Failures...)
	}
	res.SimLocality = lr.MeanLocality
	res.SimMaxBurst = lr.MaxBurst

	// Native side: goroutine stress under the same oracles.
	rt := core.NewRuntime(2, s.Threads)
	l := core.New(name, rt, coreTwinTuning())
	out := coreStress(l, rt, s)
	res.CoreFailures = out.failures
	res.CoreLocality = out.locality
	res.CoreMaxBurst = out.maxBurst

	// Hard parity: one twin clean, the other failing.
	simOK, coreOK := len(res.SimFailures) == 0, len(res.CoreFailures) == 0
	if simOK != coreOK {
		res.Divergences = append(res.Divergences, fmt.Sprintf(
			"oracle parity: sim passed=%v but native passed=%v", simOK, coreOK))
	}

	// Probe parity: quiescence probes must exist on both sides or
	// neither (their verdicts are already in the failure lists).
	mprobe := machine.New(func() machine.Config {
		c := machine.WildFire()
		c.CPUsPerNode = 2
		return c
	}())
	_, simQ := simlock.New(name, mprobe, 0, []int{0, 1}, simlock.DefaultTuning()).(simlock.Quiescer)
	_, coreQ := l.(coreQuiescer)
	if simQ != coreQ {
		res.Divergences = append(res.Divergences, fmt.Sprintf(
			"probe parity: sim quiescence probe=%v, native=%v", simQ, coreQ))
	}

	// Injection-survival parity (HBO_GT_SD only — the starvation
	// detector is the only consumer of the decoded owner id).
	if name == "HBO_GT_SD" {
		simSurv := simInjectionSurvives(seed)
		coreSurv := coreInjectionSurvives(s.Timeout)
		if simSurv != coreSurv {
			res.Divergences = append(res.Divergences, fmt.Sprintf(
				"injection parity: sim survives corrupted owner=%v, native=%v",
				simSurv, coreSurv))
		} else if !simSurv {
			res.Divergences = append(res.Divergences,
				"injection: neither twin survives a corrupted lock-word owner")
		}
	}

	// Lenient qualitative cross-checks against each side's own TATAS
	// baseline. The sim side is deterministic, so its dead-bands are
	// modest; the native side runs under the host scheduler and is
	// skipped when the baseline itself shows no node alternation (on a
	// single-CPU host whole scheduler quanta serialize, pushing every
	// native lock to locality ~1.0 and burst ~Iters).
	//
	// HBO_GT trades fairness for node locality (the paper's headline
	// property), so its locality must not fall grossly below the
	// unthrottled baseline. HBO_GT_SD spends that locality back on
	// starvation freedom — the paper's own framing of the SD lines —
	// so for it the fairness direction is checked instead: its worst
	// same-thread burst must not exceed the baseline's.
	if baseline != nil {
		switch name {
		case "HBO_GT":
			if res.SimLocality < baseline.SimLocality-0.25 {
				res.Divergences = append(res.Divergences, fmt.Sprintf(
					"locality: sim %s locality %.2f far below sim TATAS baseline %.2f",
					name, res.SimLocality, baseline.SimLocality))
			}
			if baseline.CoreLocality > 0.05 && baseline.CoreLocality < 0.95 &&
				res.CoreLocality < baseline.CoreLocality-0.5 {
				res.Divergences = append(res.Divergences, fmt.Sprintf(
					"locality: native %s locality %.2f grossly below native TATAS baseline %.2f",
					name, res.CoreLocality, baseline.CoreLocality))
			}
		case "HBO_GT_SD":
			if res.SimMaxBurst > baseline.SimMaxBurst+2 {
				res.Divergences = append(res.Divergences, fmt.Sprintf(
					"fairness: sim %s max burst %d exceeds sim TATAS baseline %d (starvation detector regressed)",
					name, res.SimMaxBurst, baseline.SimMaxBurst))
			}
		}
	}
	return res
}

// CheckTwins differentially checks every lock implemented by both
// families (nil = all of core.AllNames; CLH_TRY exists only in the
// simulated family and is covered by the schedule explorer alone). The
// native side uses real goroutines, so unlike the schedule explorer the
// results are not bit-deterministic across runs.
func CheckTwins(names []string, seed uint64, s TwinStress) []TwinResult {
	if names == nil {
		names = core.AllNames()
	}
	// TATAS runs first to establish the qualitative baselines.
	base := CheckTwin("TATAS", seed, s, nil)
	results := make([]TwinResult, 0, len(names))
	for _, name := range names {
		if name == "TATAS" {
			results = append(results, base)
			continue
		}
		results = append(results, CheckTwin(name, seed, s, &base))
	}
	return results
}
