package check

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// twinTestStress shrinks the native runs so the full 13-lock sweep stays
// fast under -race.
func twinTestStress() TwinStress {
	return TwinStress{Threads: 4, Iters: 150, Timeout: 30 * time.Second}
}

// TestTwinsAllClean: every lock implemented by both families passes the
// differential comparison — correctness oracles on both sides, probe and
// injection parity, and no gross qualitative inversion.
func TestTwinsAllClean(t *testing.T) {
	results := CheckTwins(nil, 3, twinTestStress())
	for _, r := range results {
		t.Logf("%-10s sim(loc=%.2f burst=%d) core(loc=%.2f burst=%d)",
			r.Lock, r.SimLocality, r.SimMaxBurst, r.CoreLocality, r.CoreMaxBurst)
		if !r.Passed() {
			t.Errorf("%s: sim=%v core=%v divergences=%v",
				r.Lock, r.SimFailures, r.CoreFailures, r.Divergences)
		}
	}
	if len(results) != len(core.AllNames()) {
		t.Fatalf("compared %d twins, want %d", len(results), len(core.AllNames()))
	}
}

// TestCoreStressDetectsBrokenLock: the native-side oracles are not
// decorative — the atomicity-broken TATAS twin must produce a
// mutual-exclusion diagnosis (and stay race-detector clean doing it).
func TestCoreStressDetectsBrokenLock(t *testing.T) {
	rt := core.NewRuntime(2, 4)
	out := coreStress(NewBrokenCoreTATAS(), rt, twinTestStress())
	found := false
	for _, f := range out.failures {
		if strings.Contains(f, "mutual-exclusion") {
			found = true
		}
	}
	if !found {
		t.Fatalf("broken native TATAS not detected; failures = %v", out.failures)
	}
}

// TestInjectionSurvivalBothTwins: the corrupted-owner fault is survived
// by both HBO_GT_SD implementations (the regression the satellite
// bounds-guard fix closed — before it, the sim twin crashed here).
func TestInjectionSurvivalBothTwins(t *testing.T) {
	if !simInjectionSurvives(3) {
		t.Error("sim HBO_GT_SD did not survive a corrupted lock-word owner")
	}
	if !coreInjectionSurvives(10 * time.Second) {
		t.Error("native HBO_GT_SD did not survive a corrupted lock-word owner")
	}
}
