package check

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// TestValidateRejectsBadConfigs: RunSchedule returns an error (instead
// of panicking or hanging) for every malformed configuration.
func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*ScheduleConfig)
	}{
		{"zero threads", func(c *ScheduleConfig) { c.Threads = 0 }},
		{"zero iterations", func(c *ScheduleConfig) { c.Iterations = 0 }},
		{"threads exceed cpus", func(c *ScheduleConfig) { c.Threads = c.Machine.TotalCPUs() + 1 }},
		{"negative lock home", func(c *ScheduleConfig) { c.LockHome = -1 }},
		{"lock home out of range", func(c *ScheduleConfig) { c.LockHome = c.Machine.Nodes }},
		{"negative cs work", func(c *ScheduleConfig) { c.CSWork = -1 }},
		{"negative timeout", func(c *ScheduleConfig) { c.Timeout = -1 }},
		{"zero machine nodes", func(c *ScheduleConfig) { c.Machine.Nodes = 0 }},
		{"bad fault config", func(c *ScheduleConfig) {
			c.Machine.Fault.NACK.Enabled = true
			c.Machine.Fault.NACK.Prob = 2
		}},
	}
	for _, tc := range cases {
		cfg := DefaultScheduleConfig(1, 0)
		tc.mut(&cfg)
		if _, err := RunSchedule("TATAS", nil, cfg); err == nil {
			t.Errorf("%s: RunSchedule accepted the config", tc.name)
		}
	}
}

// TestFaultSchedulesCleanLocks: every registered lock passes every
// oracle under every fault class. Timed locks run their abortable path;
// the retries keep the acquisition totals exact.
func TestFaultSchedulesCleanLocks(t *testing.T) {
	timed := map[string]bool{}
	for _, n := range simlock.TimedNames() {
		timed[n] = true
	}
	for _, class := range fault.Schedules() {
		class := class
		t.Run(class, func(t *testing.T) {
			abortsSeen := false
			for _, name := range simlock.AllNames() {
				for _, seeds := range [][2]uint64{{1, 0}, {9, 5}} {
					cfg, err := FaultScheduleConfig(class, seeds[0], seeds[1])
					if err != nil {
						t.Fatal(err)
					}
					res, err := RunSchedule(name, nil, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if res.Failed() {
						t.Fatalf("%s seed=%d tiebreak=%d: %v", name, seeds[0], seeds[1], res.Failures)
					}
					if res.Acquisitions != cfg.Threads*cfg.Iterations {
						t.Fatalf("%s: acquisitions = %d, want %d",
							name, res.Acquisitions, cfg.Threads*cfg.Iterations)
					}
					if res.Aborts > 0 {
						abortsSeen = true
						if !timed[name] {
							t.Fatalf("%s reported %d aborts but has no timed path", name, res.Aborts)
						}
					}
				}
			}
			if class == "pause" && !abortsSeen {
				t.Error("pause class never expired a timed acquire; the abort path went unexercised")
			}
		})
	}
}

// TestFaultScheduleDeterministic: a (class, seed, tiebreak) triple
// replays the identical degraded interleaving.
func TestFaultScheduleDeterministic(t *testing.T) {
	for _, name := range []string{"HBO_GT_SD", "MCS"} {
		cfg, err := FaultScheduleConfig("all", 42, 99)
		if err != nil {
			t.Fatal(err)
		}
		a, errA := RunSchedule(name, nil, cfg)
		b, errB := RunSchedule(name, nil, cfg)
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if a.Sig != b.Sig || a.Elapsed != b.Elapsed || a.Aborts != b.Aborts {
			t.Fatalf("%s: degraded replay diverged: %+v vs %+v", name, a, b)
		}
	}
}

// TestExploreFaultsDeterministicReport: the fault section makes the
// report byte-reproducible too, and covers lock × class.
func TestExploreFaultsDeterministicReport(t *testing.T) {
	names := []string{"TATAS_EXP", "HBO_GT"}
	build := func() *Report {
		rep := Explore(names, 7, smallBudget())
		rep.Faults = ExploreFaults(names, 7, Budget{Schedules: 6, MaxRuns: 8})
		for _, lr := range rep.Faults {
			if !lr.Passed() {
				rep.Passed = false
			}
		}
		return rep
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("fault reports differ:\n%s\n---\n%s", a.String(), b.String())
	}
	rep := build()
	if want := len(names) * len(fault.Schedules()); len(rep.Faults) != want {
		t.Fatalf("fault section has %d entries, want %d", len(rep.Faults), want)
	}
	if !strings.Contains(a.String(), "HBO_GT@pause") {
		t.Error("fault section lacks the LOCK@class labels")
	}
}

// TestBrokenAbortDetected: the abort-leaking HBO passes fault-free
// blocking exploration (its blocking path is correct) but fails under
// the pause class with a timed budget — proof the harness genuinely
// exercises abort paths rather than inferring them.
func TestBrokenAbortDetected(t *testing.T) {
	clean := ExploreLock("BROKEN_HBO_LEAK_ABORT", NewBrokenAbortHBO, 1, smallBudget())
	if !clean.Passed() {
		t.Fatalf("abort-leak lock failed fault-free blocking schedules: %+v", clean.Failures)
	}
	lr := exploreLock("BROKEN_HBO_LEAK_ABORT", NewBrokenAbortHBO, 1, smallBudget(),
		func(s, tb uint64) ScheduleConfig {
			cfg, err := FaultScheduleConfig("pause", s, tb)
			if err != nil {
				t.Fatal(err)
			}
			return cfg
		})
	if lr.Passed() {
		t.Fatal("oracles missed the leaked abort")
	}
	found := false
	for _, f := range lr.Failures {
		for _, msg := range f.Failures {
			if strings.Contains(msg, "quiescence") || strings.Contains(msg, "progress") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no quiescence/progress diagnosis in %+v", lr.Failures)
	}
	// And the harness-wide self-test agrees.
	if undetected := SelfTest(3, smallBudget()); len(undetected) > 0 {
		t.Fatalf("SelfTest missed: %v", undetected)
	}
}

// TestFaultSchedulesDiffer: the degraded machine actually changes the
// interleaving (faults are not silently disabled by the harness).
func TestFaultSchedulesDiffer(t *testing.T) {
	base, err := RunSchedule("HBO", nil, DefaultScheduleConfig(11, 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := FaultScheduleConfig("storm", 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Timeout = 0 // same blocking body; only the machine differs
	degraded, err := RunSchedule("HBO", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Sig == degraded.Sig && base.Elapsed == degraded.Elapsed {
		t.Fatal("storm-degraded run is indistinguishable from the clean run")
	}
	if degraded.Elapsed <= base.Elapsed {
		t.Logf("note: degraded elapsed %v <= clean %v (convoy effects)", degraded.Elapsed, base.Elapsed)
	}
	_ = sim.Time(0)
}
