package check

import (
	"runtime"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/simlock"
)

// This file holds deliberately broken locks. They are the harness's
// self-test: an oracle that cannot catch a lock with the atomicity
// removed would not be worth running against the real ones. SelfTest
// (and TestSelfTest / the lockcheck --selftest flag) runs each of these
// through the explorer and fails unless the oracles fire.

// brokenTATAS drops the atomic test&set: acquire spins until the word
// reads free, then claims it with a plain store. Two threads whose loads
// complete before either store does both enter the critical section —
// the classic check-then-act race.
type brokenTATAS struct {
	addr machine.Addr
}

// NewBrokenTATAS builds the racy TATAS on machine m (a simlock.Factory).
func NewBrokenTATAS(m *machine.Machine, home int, cpus []int, tun simlock.Tuning) simlock.Lock {
	return &brokenTATAS{addr: m.Alloc(home, 1)}
}

func (l *brokenTATAS) Name() string { return "BROKEN_TATAS_RACE" }

func (l *brokenTATAS) Acquire(p *machine.Proc, tid int) {
	for {
		p.SpinUntilZero(l.addr)
		if p.Load(l.addr) == 0 { // test...
			p.Store(l.addr, 1) // ...then set, non-atomically
			return
		}
	}
}

func (l *brokenTATAS) Release(p *machine.Proc, tid int) {
	p.Store(l.addr, 0)
}

// brokenHBOSkipCAS is HBO with the slowpath's CAS "optimised" into a
// load-then-store: after backing off, a waiter that observes the lock
// free stores its node id without re-checking atomically. The fastpath
// CAS is intact, so the lock mostly works — the bug only bites when two
// backed-off waiters wake into the same free window, which is exactly
// the kind of narrow interleaving the schedule explorer exists to reach.
type brokenHBOSkipCAS struct {
	addr machine.Addr
	tun  simlock.Tuning
}

// NewBrokenHBOSkipCAS builds the CAS-skipping HBO (a simlock.Factory).
func NewBrokenHBOSkipCAS(m *machine.Machine, home int, cpus []int, tun simlock.Tuning) simlock.Lock {
	return &brokenHBOSkipCAS{addr: m.Alloc(home, 1), tun: tun}
}

func (l *brokenHBOSkipCAS) Name() string { return "BROKEN_HBO_SKIPCAS" }

func (l *brokenHBOSkipCAS) Acquire(p *machine.Proc, tid int) {
	my := uint64(p.Node()) + 1
	if p.CAS(l.addr, 0, my) == 0 {
		return
	}
	b := l.tun.BackoffBase
	for {
		p.Delay(b)
		if b < l.tun.BackoffCap {
			b *= l.tun.BackoffFactor
		}
		if p.Load(l.addr) == 0 { // should be a CAS; the skipped
			p.Store(l.addr, my) // re-check is the injected bug
			return
		}
	}
}

func (l *brokenHBOSkipCAS) Release(p *machine.Proc, tid int) {
	p.Store(l.addr, 0)
}

// BrokenNames lists the injected-bug locks with their factories.
func BrokenNames() map[string]simlock.Factory {
	return map[string]simlock.Factory{
		"BROKEN_TATAS_RACE":  NewBrokenTATAS,
		"BROKEN_HBO_SKIPCAS": NewBrokenHBOSkipCAS,
	}
}

// SelfTest explores every broken lock under the budget and returns the
// names whose bugs the oracles FAILED to detect (empty = oracles work).
func SelfTest(seed uint64, b Budget) []string {
	var undetected []string
	for _, name := range []string{"BROKEN_TATAS_RACE", "BROKEN_HBO_SKIPCAS"} {
		lr := ExploreLock(name, BrokenNames()[name], seed, b)
		if lr.Passed() {
			undetected = append(undetected, name)
		}
	}
	return undetected
}

// BrokenCoreTATAS is the native twin of brokenTATAS: every access to the
// lock word is atomic (so the race detector stays quiet — the injected
// bug is an atomicity bug, not a data race), but the load and the store
// are separate operations with a deliberate scheduling point between
// them, so concurrent acquirers routinely both observe zero and both
// claim the lock. The twin layer's self-test uses it to prove the
// native-side oracles catch mutual-exclusion violations too.
type BrokenCoreTATAS struct {
	word atomic.Uint64
}

// NewBrokenCoreTATAS returns the racy native TATAS.
func NewBrokenCoreTATAS() *BrokenCoreTATAS { return &BrokenCoreTATAS{} }

// Name returns the lock's name.
func (l *BrokenCoreTATAS) Name() string { return "BROKEN_CORE_TATAS" }

// Acquire test-then-sets non-atomically.
func (l *BrokenCoreTATAS) Acquire(t *core.Thread) {
	for {
		for l.word.Load() != 0 {
			runtime.Gosched()
		}
		// The widened race window: yield between the test and the set so
		// the bug manifests even on a single-CPU host.
		runtime.Gosched()
		l.word.Store(1)
		return
	}
}

// Release unlocks.
func (l *BrokenCoreTATAS) Release(t *core.Thread) { l.word.Store(0) }
