package check

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// This file holds deliberately broken locks. They are the harness's
// self-test: an oracle that cannot catch a lock with the atomicity
// removed would not be worth running against the real ones. SelfTest
// (and TestSelfTest / the lockcheck --selftest flag) runs each of these
// through the explorer and fails unless the oracles fire.

// brokenTATAS drops the atomic test&set: acquire spins until the word
// reads free, then claims it with a plain store. Two threads whose loads
// complete before either store does both enter the critical section —
// the classic check-then-act race.
type brokenTATAS struct {
	addr machine.Addr
}

// NewBrokenTATAS builds the racy TATAS on machine m (a simlock.Factory).
func NewBrokenTATAS(m *machine.Machine, home int, cpus []int, tun simlock.Tuning) simlock.Lock {
	return &brokenTATAS{addr: m.Alloc(home, 1)}
}

func (l *brokenTATAS) Name() string { return "BROKEN_TATAS_RACE" }

func (l *brokenTATAS) Acquire(p *machine.Proc, tid int) {
	for {
		p.SpinUntilZero(l.addr)
		if p.Load(l.addr) == 0 { // test...
			p.Store(l.addr, 1) // ...then set, non-atomically
			return
		}
	}
}

func (l *brokenTATAS) Release(p *machine.Proc, tid int) {
	p.Store(l.addr, 0)
}

// brokenHBOSkipCAS is HBO with the slowpath's CAS "optimised" into a
// load-then-store: after backing off, a waiter that observes the lock
// free stores its node id without re-checking atomically. The fastpath
// CAS is intact, so the lock mostly works — the bug only bites when two
// backed-off waiters wake into the same free window, which is exactly
// the kind of narrow interleaving the schedule explorer exists to reach.
type brokenHBOSkipCAS struct {
	addr machine.Addr
	tun  simlock.Tuning
}

// NewBrokenHBOSkipCAS builds the CAS-skipping HBO (a simlock.Factory).
func NewBrokenHBOSkipCAS(m *machine.Machine, home int, cpus []int, tun simlock.Tuning) simlock.Lock {
	return &brokenHBOSkipCAS{addr: m.Alloc(home, 1), tun: tun}
}

func (l *brokenHBOSkipCAS) Name() string { return "BROKEN_HBO_SKIPCAS" }

func (l *brokenHBOSkipCAS) Acquire(p *machine.Proc, tid int) {
	my := uint64(p.Node()) + 1
	if p.CAS(l.addr, 0, my) == 0 {
		return
	}
	b := l.tun.BackoffBase
	for {
		p.Delay(b)
		if b < l.tun.BackoffCap {
			b *= l.tun.BackoffFactor
		}
		if p.Load(l.addr) == 0 { // should be a CAS; the skipped
			p.Store(l.addr, my) // re-check is the injected bug
			return
		}
	}
}

func (l *brokenHBOSkipCAS) Release(p *machine.Proc, tid int) {
	p.Store(l.addr, 0)
}

// brokenAbortHBO is an HBO-style lock whose *timeout* path carries two
// classic abort bugs, while its blocking path is correct:
//
//  1. the abort forgets to clear the node's is_spinning throttle word
//     (the "leaked announcement" bug — the waiter promised to come back
//     and never did);
//  2. a last-gasp CAS at the deadline whose win is ignored, so when the
//     lock frees at exactly the wrong moment it ends up held by nobody.
//
// Under fault-free blocking schedules it passes every oracle; only a
// schedule that actually expires a timed acquire (FaultScheduleConfig
// arranges this with holder pauses plus a small Timeout) exposes it —
// bug 1 to the quiescence oracle, bug 2 to the progress watchdog. It is
// the self-test that the harness's abort-path coverage is real.
type brokenAbortHBO struct {
	addr       machine.Addr
	isSpinning []machine.Addr
	tun        simlock.Tuning
}

// NewBrokenAbortHBO builds the abort-leaking HBO (a simlock.Factory).
func NewBrokenAbortHBO(m *machine.Machine, home int, cpus []int, tun simlock.Tuning) simlock.Lock {
	l := &brokenAbortHBO{addr: m.Alloc(home, 1), tun: tun}
	l.isSpinning = make([]machine.Addr, m.Config().Nodes)
	for n := range l.isSpinning {
		l.isSpinning[n] = m.Alloc(n, 1)
	}
	return l
}

func (l *brokenAbortHBO) Name() string { return "BROKEN_HBO_LEAK_ABORT" }

func (l *brokenAbortHBO) Acquire(p *machine.Proc, tid int) {
	l.acquire(p, 0)
}

// AcquireTimeout implements simlock.TimedLock — incorrectly, on abort.
func (l *brokenAbortHBO) AcquireTimeout(p *machine.Proc, tid int, d sim.Time) bool {
	if d <= 0 {
		l.acquire(p, 0)
		return true
	}
	return l.acquire(p, p.Now()+d)
}

func (l *brokenAbortHBO) acquire(p *machine.Proc, deadline sim.Time) bool {
	my := uint64(p.Node()) + 1
	if p.CAS(l.addr, 0, my) == 0 {
		return true
	}
	// Slowpath: publish the throttle word like HBO_GT's remote path does.
	p.Store(l.isSpinning[p.Node()], uint64(l.addr))
	b := l.tun.RemoteBackoffBase
	for {
		if deadline != 0 && p.Now() >= deadline {
			// BUG 1: is_spinning is not cleared — the node stays
			// announced as a remote spinner forever.
			// BUG 2: one last CAS whose win is discarded — if the holder
			// released right here, the lock is now owned by nobody.
			p.CAS(l.addr, 0, my)
			return false
		}
		p.Delay(b)
		if b < l.tun.RemoteBackoffCap {
			b *= l.tun.BackoffFactor
		}
		if p.CAS(l.addr, 0, my) == 0 {
			p.Store(l.isSpinning[p.Node()], 0)
			return true
		}
	}
}

func (l *brokenAbortHBO) Release(p *machine.Proc, tid int) {
	p.Store(l.addr, 0)
}

// Quiescent exposes the leak to the harness's quiescence oracle.
func (l *brokenAbortHBO) Quiescent(m *machine.Machine) error {
	if v := m.Peek(l.addr); v != 0 {
		return fmt.Errorf("%s: lock word %d not free at quiescence", l.Name(), v)
	}
	for n, a := range l.isSpinning {
		if v := m.Peek(a); v != 0 {
			return fmt.Errorf("%s: is_spinning[%d] = %d at quiescence (leaked by an abort)",
				l.Name(), n, v)
		}
	}
	return nil
}

// brokenCNATailDrop is a compact queue lock in CNA's shape whose empty
// release path "optimises" the tail CAS into a plain store. The real
// CNA (and MCS before it) must CAS the tail back to zero precisely
// because an enqueuer can swap itself in *between* the releaser reading
// an empty next link and clearing the tail; when the CAS fails, the
// releaser waits for the link and hands off. The blind store loses that
// enqueuer: its predecessor link points at a node that has already
// left, so it spins on its grant word forever while later arrivals
// stream past through the freed tail — a starvation/deadlock the
// progress watchdog catches.
type brokenCNATailDrop struct {
	tail machine.Addr
	next []machine.Addr // per thread, encoded tid+1
	spin []machine.Addr // per thread grant word
}

// NewBrokenCNATailDrop builds the tail-dropping CNA-style queue lock (a
// simlock.Factory).
func NewBrokenCNATailDrop(m *machine.Machine, home int, cpus []int, tun simlock.Tuning) simlock.Lock {
	l := &brokenCNATailDrop{tail: m.Alloc(home, 1)}
	l.next = make([]machine.Addr, len(cpus))
	l.spin = make([]machine.Addr, len(cpus))
	for t := range cpus {
		l.next[t] = m.Alloc(home, 1)
		l.spin[t] = m.Alloc(home, 1)
	}
	return l
}

func (l *brokenCNATailDrop) Name() string { return "BROKEN_CNA_TAILDROP" }

func (l *brokenCNATailDrop) Acquire(p *machine.Proc, tid int) {
	me := uint64(tid) + 1
	p.Store(l.next[tid], 0)
	p.Store(l.spin[tid], 0)
	prev := p.Swap(l.tail, me)
	if prev == 0 {
		return
	}
	// The swap-to-link gap is the race the dropped CAS was guarding.
	// CNA's real window is a few cycles wide; the delay widens it so a
	// small self-test budget reliably reaches the interleaving.
	p.Delay(50)
	p.Store(l.next[prev-1], me)
	p.SpinUntil(l.spin[tid], func(v uint64) bool { return v != 0 })
}

func (l *brokenCNATailDrop) Release(p *machine.Proc, tid int) {
	succ := p.Load(l.next[tid])
	if succ == 0 {
		// BUG: must be CAS(tail, me, 0) with a wait-for-link retry on
		// failure; the plain store drops any enqueuer mid-swap.
		p.Store(l.tail, 0)
		return
	}
	p.Store(l.spin[succ-1], 1)
}

// Quiescent exposes a dropped waiter to the quiescence oracle on runs
// that manage to finish anyway.
func (l *brokenCNATailDrop) Quiescent(m *machine.Machine) error {
	if v := m.Peek(l.tail); v != 0 {
		return fmt.Errorf("%s: tail %d not empty at quiescence", l.Name(), v)
	}
	return nil
}

// brokenHMCSTLeakAbort is an abortable grant-handoff lock in HMCS-T's
// shape whose timeout path carries the two abort bugs Chabbi et al.'s
// model checking exists to catch:
//
//  1. the abort returns without the waiting→abandoned status
//     transition, so its announcement slot stays claimed and the next
//     releaser hands the lock to a waiter that already left;
//  2. at the deadline it does not re-check whether the grant has
//     already landed — the abort-during-handoff race — so a handoff
//     delivered in that window is discarded and the lock is held by
//     nobody.
//
// Both collapse the queue: every later acquirer spins behind a grant
// no one will consume, which the progress watchdog reports. Schedules
// that still drain expose the leaked status word to the quiescence
// oracle instead. Like BROKEN_HBO_LEAK_ABORT it is clean under
// blocking schedules and only fails once FaultScheduleConfig actually
// expires timed acquires.
type brokenHMCSTLeakAbort struct {
	lock machine.Addr
	stat []machine.Addr // per thread: 0 free, 1 waiting, 2 granted
}

// NewBrokenHMCSTLeakAbort builds the abort-leaking HMCS-style lock (a
// simlock.Factory).
func NewBrokenHMCSTLeakAbort(m *machine.Machine, home int, cpus []int, tun simlock.Tuning) simlock.Lock {
	l := &brokenHMCSTLeakAbort{lock: m.Alloc(home, 1)}
	l.stat = make([]machine.Addr, len(cpus))
	for t := range cpus {
		l.stat[t] = m.Alloc(home, 1)
	}
	return l
}

func (l *brokenHMCSTLeakAbort) Name() string { return "BROKEN_HMCST_LEAK_ABORT" }

func (l *brokenHMCSTLeakAbort) Acquire(p *machine.Proc, tid int) {
	l.acquire(p, tid, 0)
}

// AcquireTimeout implements simlock.TimedLock — incorrectly, on abort.
func (l *brokenHMCSTLeakAbort) AcquireTimeout(p *machine.Proc, tid int, d sim.Time) bool {
	if d <= 0 {
		l.acquire(p, tid, 0)
		return true
	}
	return l.acquire(p, tid, p.Now()+d)
}

func (l *brokenHMCSTLeakAbort) acquire(p *machine.Proc, tid int, deadline sim.Time) bool {
	my := uint64(tid) + 1
	if p.CAS(l.lock, 0, my) == 0 {
		return true
	}
	p.Store(l.stat[tid], 1) // announce: waiting
	for {
		if deadline != 0 && p.Now() >= deadline {
			// BUG 1: no waiting→abandoned transition — the slot stays
			// announced and a releaser will grant it to nobody.
			// BUG 2: no final grant check — a handoff that landed since
			// the last poll is silently discarded.
			return false
		}
		if p.Load(l.stat[tid]) == 2 { // granted: the releaser handed over
			p.Store(l.stat[tid], 0)
			return true
		}
		p.Delay(64)
	}
}

func (l *brokenHMCSTLeakAbort) Release(p *machine.Proc, tid int) {
	// Hand off to the first announced waiter, HMCS-style: transfer
	// ownership, then flip its status to granted.
	for t := range l.stat {
		if p.Load(l.stat[t]) == 1 {
			p.Store(l.lock, uint64(t)+1)
			p.Store(l.stat[t], 2)
			return
		}
	}
	p.Store(l.lock, 0)
}

// Quiescent exposes the leaked announcement to the quiescence oracle.
func (l *brokenHMCSTLeakAbort) Quiescent(m *machine.Machine) error {
	if v := m.Peek(l.lock); v != 0 {
		return fmt.Errorf("%s: lock word %d not free at quiescence", l.Name(), v)
	}
	for t, a := range l.stat {
		if v := m.Peek(a); v != 0 {
			return fmt.Errorf("%s: status[%d] = %d at quiescence (leaked by an abort)",
				l.Name(), t, v)
		}
	}
	return nil
}

// BrokenNames lists the injected-bug locks with their factories.
func BrokenNames() map[string]simlock.Factory {
	return map[string]simlock.Factory{
		"BROKEN_TATAS_RACE":       NewBrokenTATAS,
		"BROKEN_HBO_SKIPCAS":      NewBrokenHBOSkipCAS,
		"BROKEN_HBO_LEAK_ABORT":   NewBrokenAbortHBO,
		"BROKEN_CNA_TAILDROP":     NewBrokenCNATailDrop,
		"BROKEN_HMCST_LEAK_ABORT": NewBrokenHMCSTLeakAbort,
	}
}

// SelfTest explores every broken lock under the budget and returns the
// names whose bugs the oracles FAILED to detect (empty = oracles work).
// The abort-leak lock runs under the fault-mode configuration (paused
// holders plus a timed acquire budget) because its bugs live purely in
// the timeout path.
func SelfTest(seed uint64, b Budget) []string {
	var undetected []string
	for _, name := range []string{"BROKEN_TATAS_RACE", "BROKEN_HBO_SKIPCAS", "BROKEN_CNA_TAILDROP"} {
		lr := ExploreLock(name, BrokenNames()[name], seed, b)
		if lr.Passed() {
			undetected = append(undetected, name)
		}
	}
	// The abort-path mutants fail only once timed acquires actually
	// expire; run them under the fault-mode configuration (paused
	// holders plus a small timeout budget).
	faultCfg := func(s, tb uint64) ScheduleConfig {
		cfg, err := FaultScheduleConfig("pause", s, tb)
		if err != nil {
			panic(err)
		}
		return cfg
	}
	for _, name := range []string{"BROKEN_HBO_LEAK_ABORT", "BROKEN_HMCST_LEAK_ABORT"} {
		lr := exploreLock(name, BrokenNames()[name], seed, b, faultCfg)
		if lr.Passed() {
			undetected = append(undetected, name)
		}
	}
	return undetected
}

// BrokenCoreTATAS is the native twin of brokenTATAS: every access to the
// lock word is atomic (so the race detector stays quiet — the injected
// bug is an atomicity bug, not a data race), but the load and the store
// are separate operations with a deliberate scheduling point between
// them, so concurrent acquirers routinely both observe zero and both
// claim the lock. The twin layer's self-test uses it to prove the
// native-side oracles catch mutual-exclusion violations too.
type BrokenCoreTATAS struct {
	word atomic.Uint64
}

// NewBrokenCoreTATAS returns the racy native TATAS.
func NewBrokenCoreTATAS() *BrokenCoreTATAS { return &BrokenCoreTATAS{} }

// Name returns the lock's name.
func (l *BrokenCoreTATAS) Name() string { return "BROKEN_CORE_TATAS" }

// Acquire test-then-sets non-atomically.
func (l *BrokenCoreTATAS) Acquire(t *core.Thread) {
	for {
		for l.word.Load() != 0 {
			runtime.Gosched()
		}
		// The widened race window: yield between the test and the set so
		// the bug manifests even on a single-CPU host.
		runtime.Gosched()
		l.word.Store(1)
		return
	}
}

// Release unlocks.
func (l *BrokenCoreTATAS) Release(t *core.Thread) { l.word.Store(0) }
