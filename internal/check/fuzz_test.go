package check

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// FuzzMachineConfig drives RunSchedule across fuzzer-chosen machine
// shapes (node count, CPUs per node, cluster grouping, lock home),
// contention levels and interleaving seeds, for every registered lock.
// Raw fuzz inputs are folded into the valid configuration space rather
// than rejected, so every execution exercises the oracles:
//
//   - nodes and CPUs/node fold into 1..4 (asymmetric little machines are
//     where placement bugs hide; the explorer only ever runs 2x2);
//   - RH is capped at two nodes, its documented limit;
//   - threads fold into 1..total CPUs (roundRobinCPUs requires a free
//     CPU per thread);
//   - the starvation bound is disabled — tiny single-CPU-per-node shapes
//     legitimately produce long waits, and the fuzzer is hunting
//     crashes, invariant violations and lost updates, not tuning
//     regressions.
//
// Any oracle failure or uncaught panic is a fuzz finding.
func FuzzMachineConfig(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(0), uint8(4), uint8(6), uint8(0), uint64(1), uint64(0))
	f.Add(uint8(1), uint8(4), uint8(0), uint8(3), uint8(2), uint8(0), uint64(7), uint64(3))
	f.Add(uint8(4), uint8(2), uint8(2), uint8(5), uint8(4), uint8(3), uint64(11), uint64(9))
	f.Add(uint8(3), uint8(1), uint8(0), uint8(3), uint8(3), uint8(2), uint64(255), uint64(254))
	f.Add(uint8(2), uint8(3), uint8(2), uint8(6), uint8(5), uint8(1), uint64(1<<40), uint64(1<<33))
	names := simlock.AllNames()
	f.Fuzz(func(t *testing.T, nodes, cpn, cluster, threads, iters, home uint8, seed, tiebreak uint64) {
		mcfg := machine.WildFire()
		mcfg.Nodes = int(nodes)%4 + 1
		mcfg.CPUsPerNode = int(cpn)%4 + 1
		// ClusterSize folds to {flat, 2}: a 2-node cluster on a 3- or
		// 4-node machine exercises the Far latency tier.
		mcfg.ClusterSize = int(cluster) % 3
		if mcfg.ClusterSize == 1 {
			mcfg.ClusterSize = 2
		}
		mcfg.Seed = seed | 1
		mcfg.TieBreakSeed = tiebreak
		for _, name := range names {
			cfg := ScheduleConfig{
				Machine:    mcfg,
				Threads:    int(threads)%(mcfg.Nodes*mcfg.CPUsPerNode) + 1,
				Iterations: int(iters)%4 + 1,
				CSWork:     200,
				MaxThink:   900,
				LockHome:   int(home) % mcfg.Nodes,
				Tuning:     exploreTuning(),
				Watchdog:   500 * sim.Millisecond,
			}
			if name == "RH" && cfg.Machine.Nodes > 2 {
				// The RH lock is defined for exactly two nodes.
				cfg.Machine.Nodes = 2
				cfg.Threads = int(threads)%(2*mcfg.CPUsPerNode) + 1
				cfg.LockHome = int(home) % 2
			}
			res, err := RunSchedule(name, nil, cfg)
			if err != nil {
				// Folded inputs are always valid; an error means the
				// folding and Validate disagree about the config space.
				t.Fatalf("%s: folded config rejected: %v", name, err)
			}
			if res.Failed() {
				t.Fatalf("%s on %d nodes x %d cpus (cluster %d, threads %d, home %d, seed %d, tiebreak %d): %v",
					name, cfg.Machine.Nodes, cfg.Machine.CPUsPerNode, cfg.Machine.ClusterSize,
					cfg.Threads, cfg.LockHome, cfg.Machine.Seed, cfg.Machine.TieBreakSeed, res.Failures)
			}
			if res.Acquisitions != cfg.Threads*cfg.Iterations {
				t.Fatalf("%s: %d acquisitions, want %d", name, res.Acquisitions, cfg.Threads*cfg.Iterations)
			}
		}
	})
}
