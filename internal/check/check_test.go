package check

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simlock"
)

// smallBudget keeps unit tests fast; TestExploreMeetsScheduleTarget
// covers the full default budget for one representative lock.
func smallBudget() Budget { return Budget{Schedules: 40, MaxRuns: 60} }

// TestRunScheduleCleanLocks: every registered lock passes every oracle
// on a handful of schedules, perturbed and not.
func TestRunScheduleCleanLocks(t *testing.T) {
	for _, name := range simlock.AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, seeds := range [][2]uint64{{1, 0}, {3, 7}, {11, 13}} {
				cfg := DefaultScheduleConfig(seeds[0], seeds[1])
				res, err := RunSchedule(name, nil, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Failed() {
					t.Fatalf("seed=%d tiebreak=%d: %v", seeds[0], seeds[1], res.Failures)
				}
				if res.Acquisitions != cfg.Threads*cfg.Iterations {
					t.Fatalf("acquisitions = %d, want %d",
						res.Acquisitions, cfg.Threads*cfg.Iterations)
				}
			}
		})
	}
}

// TestRunScheduleDeterministic: the same (seed, tiebreak) pair replays
// the identical interleaving — same signature, same timings.
func TestRunScheduleDeterministic(t *testing.T) {
	for _, name := range []string{"TATAS", "MCS", "HBO_GT_SD"} {
		a, errA := RunSchedule(name, nil, DefaultScheduleConfig(42, 99))
		b, errB := RunSchedule(name, nil, DefaultScheduleConfig(42, 99))
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if a.Sig != b.Sig || a.Elapsed != b.Elapsed || a.MaxWait != b.MaxWait {
			t.Fatalf("%s: replay diverged: %+v vs %+v", name, a, b)
		}
	}
}

// TestTieBreakReachesNewSchedules: perturbing the tie-break from the
// same simulation seed reaches interleavings FIFO order cannot.
func TestTieBreakReachesNewSchedules(t *testing.T) {
	base, err := RunSchedule("TATAS", nil, DefaultScheduleConfig(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	distinct := 0
	for tb := uint64(1); tb <= 8; tb++ {
		r, err := RunSchedule("TATAS", nil, DefaultScheduleConfig(5, tb))
		if err != nil {
			t.Fatal(err)
		}
		if r.Sig != base.Sig {
			distinct++
		}
	}
	if distinct == 0 {
		t.Fatal("no tie-break perturbation changed the schedule signature")
	}
}

// TestExploreDeterministicReport: same seed, same budget, byte-identical
// JSON (the reproducibility contract on the report).
func TestExploreDeterministicReport(t *testing.T) {
	names := []string{"TATAS", "MCS", "HBO_GT_SD"}
	var a, b bytes.Buffer
	if err := Explore(names, 7, smallBudget()).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Explore(names, 7, smallBudget()).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("reports differ:\n%s\n---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), ReportSchema) {
		t.Fatalf("report missing schema %q", ReportSchema)
	}
}

// TestExploreSeedSensitivity: a different seed explores a different
// schedule set (drives the coverage claim — the explorer is not
// replaying one interleaving a thousand times).
func TestExploreSeedSensitivity(t *testing.T) {
	a := ExploreLock("TATAS", nil, 7, smallBudget())
	b := ExploreLock("TATAS", nil, 8, smallBudget())
	if a.Distinct < 2 {
		t.Fatalf("explorer found only %d distinct schedules", a.Distinct)
	}
	// The two seeds should at least differ in aggregate outcome; byte
	// equality would mean the seed is ignored.
	if a.MaxWaitNS == b.MaxWaitNS && a.Acquisitions == b.Acquisitions && a.MaxBurst == b.MaxBurst {
		t.Logf("warning: seeds 7 and 8 produced identical aggregates: %+v", a)
	}
}

// TestExploreMeetsScheduleTarget: the default budget's bar — at least
// 1000 distinct interleavings for every registered lock (the FIFO locks
// are the hard cases: their service order is arrival-invariant, so the
// wait-time component of the signature does the distinguishing).
func TestExploreMeetsScheduleTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("full-budget exploration in -short mode")
	}
	for _, name := range simlock.AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			lr := ExploreLock(name, nil, 1, DefaultBudget())
			if lr.Distinct < 1000 {
				t.Fatalf("explored %d distinct schedules in %d runs, want >= 1000",
					lr.Distinct, lr.Runs)
			}
			if !lr.Passed() {
				t.Fatalf("%s failed exploration: %+v", name, lr.Failures)
			}
		})
	}
}

// TestSelfTest: the oracles must detect every deliberately broken lock
// within the default budget (acceptance: a missing release fence or a
// skipped CAS cannot slip through).
func TestSelfTest(t *testing.T) {
	if undetected := SelfTest(1, DefaultBudget()); len(undetected) > 0 {
		t.Fatalf("oracles missed injected bugs in: %v", undetected)
	}
}

// TestBrokenTATASDiagnosis: the racy TATAS produces a mutual-exclusion
// or lost-update diagnosis (not a crash, not a timeout).
func TestBrokenTATASDiagnosis(t *testing.T) {
	lr := ExploreLock("BROKEN_TATAS_RACE", NewBrokenTATAS, 1, smallBudget())
	if lr.Passed() {
		t.Fatal("broken TATAS passed the oracles")
	}
	found := false
	for _, f := range lr.Failures {
		for _, msg := range f.Failures {
			if strings.Contains(msg, "mutual-exclusion") || strings.Contains(msg, "lost-update") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no mutual-exclusion/lost-update diagnosis in %+v", lr.Failures)
	}
}
