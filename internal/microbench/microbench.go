// Package microbench implements the paper's three lock microbenchmarks
// as simulated workloads: the uncontested-latency probe behind Table 1,
// the "traditional" tight-loop benchmark behind Figure 3, and the "new"
// benchmark (Figure 4) behind Figure 5, Table 2 and the fairness and
// sensitivity studies.
package microbench

import (
	"repro/internal/machine"
	"repro/internal/simlock"
)

// Placement binds benchmark threads to CPUs round-robin across nodes
// ("round-robin scheduling for thread binding to different cabinets"),
// returning cpus[tid].
func Placement(cfg machine.Config, threads int) []int {
	cpus := make([]int, threads)
	next := make([]int, cfg.Nodes)
	for t := 0; t < threads; t++ {
		n := t % cfg.Nodes
		if next[n] >= cfg.CPUsPerNode {
			// Node full; spill to the next node with room.
			for i := 0; i < cfg.Nodes; i++ {
				if next[i] < cfg.CPUsPerNode {
					n = i
					break
				}
			}
		}
		cpus[t] = n*cfg.CPUsPerNode + next[n]
		next[n]++
	}
	return cpus
}

// buildLock constructs the named lock on m with the lock variable homed
// in node 0 (the paper allocates the lock in one node; NUCA-aware locks
// must not depend on which).
func buildLock(name string, m *machine.Machine, cpus []int, tun simlock.Tuning) simlock.Lock {
	return simlock.New(name, m, 0, cpus, tun)
}

// handoffCounter tracks how often consecutive lock acquisitions landed
// in different nodes — the paper's "node handoff" ratio.
type handoffCounter struct {
	lastNode int
	acquires int
	handoffs int
}

func newHandoffCounter() *handoffCounter { return &handoffCounter{lastNode: -1} }

// record notes an acquisition by the given node.
func (h *handoffCounter) record(node int) {
	if h.lastNode >= 0 {
		h.acquires++
		if node != h.lastNode {
			h.handoffs++
		}
	}
	h.lastNode = node
}

// Ratio returns handoffs per acquisition (0 when nothing was recorded).
func (h *handoffCounter) Ratio() float64 {
	if h.acquires == 0 {
		return 0
	}
	return float64(h.handoffs) / float64(h.acquires)
}
