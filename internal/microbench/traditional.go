package microbench

import (
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// TraditionalResult reports one traditional-microbenchmark run.
type TraditionalResult struct {
	Lock          string
	Threads       int
	Iterations    int      // per thread
	TotalTime     sim.Time // wall time of the parallel phase
	IterationTime sim.Time // TotalTime / total acquisitions
	HandoffRatio  float64  // node handoffs per acquisition
	Traffic       machine.Stats
}

// TraditionalConfig parameterizes the run.
type TraditionalConfig struct {
	Machine    machine.Config
	Lock       string
	Threads    int
	Iterations int // per thread
	Tuning     simlock.Tuning
}

// doneSentinel is written to last_owner by exiting threads so parked
// observers re-evaluate (the paper excludes the last remaining thread
// from the observe-a-new-owner rule so it can run to completion).
const doneSentinel = ^uint64(0)

// Traditional runs the paper's traditional microbenchmark (section 5.2):
// a tight acquire-release loop whose critical section updates a global
// last_owner variable plus a statistics word, where a thread must
// observe a new owner before contending again.
func Traditional(cfg TraditionalConfig) TraditionalResult {
	m := machine.New(cfg.Machine)
	cpus := Placement(cfg.Machine, cfg.Threads)
	l := buildLock(cfg.Lock, m, cpus, cfg.Tuning)

	lastOwner := m.Alloc(0, 1)
	statsWord := m.Alloc(0, 1)
	m.Poke(lastOwner, doneSentinel)

	hc := newHandoffCounter()
	remaining := cfg.Threads
	totalAcquires := 0

	for tid := 0; tid < cfg.Threads; tid++ {
		tid := tid
		me := uint64(tid)
		rng := sim.NewRNG(cfg.Machine.Seed*999983 + uint64(tid) + 1)
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			// Thread-creation skew (see NewBench).
			p.Work(rng.Timen(5 * sim.Microsecond))
			for i := 0; i < cfg.Iterations; i++ {
				if remaining > 1 {
					// Wait to observe an owner other than ourselves.
					p.SpinWhileEquals(lastOwner, me)
				}
				l.Acquire(p, tid)
				hc.record(p.Node())
				totalAcquires++
				// Critical-section work: publish ownership, bump stats.
				p.Store(lastOwner, me)
				p.Store(statsWord, p.Load(statsWord)+1)
				l.Release(p, tid)
			}
			remaining--
			// Wake any observer parked on our id.
			p.Store(lastOwner, doneSentinel)
		})
	}
	m.Run()

	res := TraditionalResult{
		Lock:       cfg.Lock,
		Threads:    cfg.Threads,
		Iterations: cfg.Iterations,
		TotalTime:  m.Now(),
		Traffic:    m.Stats(),
	}
	if totalAcquires > 0 {
		res.IterationTime = m.Now() / sim.Time(totalAcquires)
	}
	res.HandoffRatio = hc.Ratio()
	return res
}
