package microbench

import (
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// NewBenchConfig parameterizes the paper's new microbenchmark
// (Figure 4): each thread loops { acquire; modify critical_work elements
// of a shared vector; release; static + random private work }.
type NewBenchConfig struct {
	Machine    machine.Config
	Lock       string
	Threads    int
	Iterations int // per thread
	// CriticalWork is the number of shared-vector elements modified in
	// the critical section (the paper's contention knob, 0..~2500).
	CriticalWork int
	// PrivateWork is the static non-critical delay in vector elements;
	// a uniformly random extra delay in [0, PrivateWork) is added, per
	// the paper ("one static delay and one random delay of similar
	// sizes").
	PrivateWork int
	Tuning      simlock.Tuning
	// WrapLock, when non-nil, decorates the lock before the run —
	// the hook observability layers (trace.Wrap) attach through.
	WrapLock func(simlock.Lock) simlock.Lock
}

// NewBenchResult reports one run.
type NewBenchResult struct {
	Lock          string
	Threads       int
	CriticalWork  int
	TotalTime     sim.Time
	IterationTime sim.Time
	HandoffRatio  float64
	Traffic       machine.Stats
	// Lines attributes the traffic per cache line; lock-internal lines
	// are labeled "lock" and the shared vector "cs_data", so reports
	// can split lock-line vs data-line traffic like Tables 2/6.
	Lines []machine.LineStats
	// FinishTimes holds each thread's completion time (fairness study).
	FinishTimes []sim.Time
}

// Cache-geometry and work-cost constants for translating the paper's
// "vector elements" into simulated memory traffic. The benchmark arrays
// are int vectors: intsPerLine elements share one 64-byte line, and each
// element update costs elementWork of pure ALU time on a 250 MHz CPU.
const (
	intsPerLine = 16
	elementWork = sim.Time(8) // ~2 cycles load-add-store per element
)

// NewBench runs the paper's new microbenchmark.
func NewBench(cfg NewBenchConfig) NewBenchResult {
	m := machine.New(cfg.Machine)
	cpus := Placement(cfg.Machine, cfg.Threads)
	w0 := m.AllocatedWords()
	var l simlock.Lock = buildLock(cfg.Lock, m, cpus, cfg.Tuning)
	if lockWords := m.AllocatedWords() - w0; lockWords > 0 {
		m.LabelRange(machine.Addr(w0), lockWords, "lock")
	}
	if cfg.WrapLock != nil {
		l = cfg.WrapLock(l)
	}

	// Shared critical-section vector: one simulated line per
	// intsPerLine elements (at least one line so even CriticalWork=0
	// touches the lock's data neighborhood realistically: with zero
	// critical work the paper's loop body is empty, so honour that).
	csLines := cfg.CriticalWork / intsPerLine
	var csVec machine.Addr
	if csLines > 0 {
		csVec = m.Alloc(0, csLines)
		m.LabelRange(csVec, csLines, "cs_data")
	}

	hc := newHandoffCounter()
	finish := make([]sim.Time, cfg.Threads)
	totalAcquires := 0

	for tid := 0; tid < cfg.Threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(cfg.Machine.Seed*1000003 + uint64(tid) + 1)
			// Stagger thread start-up the way real fork skew does;
			// without it every thread's first acquire lands at t=0 and
			// the HBO_GT gate (is_spinning) never gets a chance to form.
			if cfg.PrivateWork > 0 {
				p.Work(elementWork * sim.Time(rng.Intn(2*cfg.PrivateWork)))
			}
			for i := 0; i < cfg.Iterations; i++ {
				l.Acquire(p, tid)
				hc.record(p.Node())
				totalAcquires++
				// for (j = 0; j < critical_work; j++) cs_work[j]++;
				for line := 0; line < csLines; line++ {
					a := csVec + machine.Addr(line)
					p.Store(a, p.Load(a)+1)
					p.Work(elementWork * intsPerLine)
				}
				if rem := cfg.CriticalWork % intsPerLine; rem > 0 {
					p.Work(elementWork * sim.Time(rem))
				}
				l.Release(p, tid)
				// Private work: static + random, on thread-private data
				// (cached after the first pass, so pure compute time).
				p.Work(elementWork * sim.Time(cfg.PrivateWork))
				if cfg.PrivateWork > 0 {
					p.Work(elementWork * sim.Time(rng.Intn(cfg.PrivateWork)))
				}
			}
			finish[tid] = p.Now()
		})
	}
	m.Run()

	res := NewBenchResult{
		Lock:         cfg.Lock,
		Threads:      cfg.Threads,
		CriticalWork: cfg.CriticalWork,
		TotalTime:    m.Now(),
		Traffic:      m.Stats(),
		Lines:        m.LineStats(),
		FinishTimes:  finish,
	}
	if totalAcquires > 0 {
		res.IterationTime = m.Now() / sim.Time(totalAcquires)
	}
	res.HandoffRatio = hc.Ratio()
	return res
}

// FinishSpreadPercent returns the fairness metric of Figure 8: the
// percentage difference in completion time between the first and the
// last thread to finish.
func (r NewBenchResult) FinishSpreadPercent() float64 {
	if len(r.FinishTimes) == 0 {
		return 0
	}
	min, max := r.FinishTimes[0], r.FinishTimes[0]
	for _, t := range r.FinishTimes {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	if min == 0 {
		return 0
	}
	return 100 * float64(max-min) / float64(min)
}
