package microbench

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// Scenario selects the previous owner of the lock in the uncontested
// probe (Table 1's three columns).
type Scenario int

const (
	// SameProcessor re-acquires on the CPU that held the lock last.
	SameProcessor Scenario = iota
	// SameNode acquires on a different CPU in the previous owner's node.
	SameNode
	// RemoteNode acquires on a CPU in another node.
	RemoteNode
)

// String names the scenario the way Table 1's header does.
func (s Scenario) String() string {
	switch s {
	case SameProcessor:
		return "Same Processor"
	case SameNode:
		return "Same Node"
	case RemoteNode:
		return "Remote Node"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// Scenarios lists all three in table order.
func Scenarios() []Scenario { return []Scenario{SameProcessor, SameNode, RemoteNode} }

// Uncontested measures the cost of a single acquire-release pair on an
// otherwise idle machine, with the lock previously owned per scenario.
// It returns the averaged latency over rounds repetitions.
func Uncontested(cfg machine.Config, lockName string, sc Scenario, rounds int) sim.Time {
	if rounds < 1 {
		rounds = 1
	}
	m := machine.New(cfg)

	// Thread 0 is the previous owner, thread 1 the measuring thread.
	ownerCPU := 0
	measureCPU := 0
	switch sc {
	case SameProcessor:
		ownerCPU, measureCPU = 0, 0
	case SameNode:
		ownerCPU, measureCPU = 1, 0
	case RemoteNode:
		if cfg.Nodes < 2 {
			panic("microbench: RemoteNode scenario needs >= 2 nodes")
		}
		ownerCPU, measureCPU = cfg.CPUsPerNode, 0
	}
	cpus := []int{ownerCPU, measureCPU}
	l := buildLock(lockName, m, cpus, simlock.DefaultTuning())

	var total sim.Time
	// The two phases alternate per round: the owner takes and drops the
	// lock (warming its cache), then the measurer times one pair.
	// Phases are sequenced by simulated-time rendezvous on host state:
	// a strict handoff through Work delays would be fragile, so each
	// phase runs as its own spawn generation on a fresh machine when
	// the CPUs differ.
	if sc == SameProcessor {
		m.Spawn(0, func(p *machine.Proc) {
			// Warm both threads' lock-private state (queue nodes), then
			// measure with the previous owner being this same CPU.
			l.Acquire(p, 1)
			l.Release(p, 1)
			l.Acquire(p, 0)
			l.Release(p, 0)
			for r := 0; r < rounds; r++ {
				t0 := p.Now()
				l.Acquire(p, 1)
				l.Release(p, 1)
				total += p.Now() - t0
			}
		})
		m.Run()
		return total / sim.Time(rounds)
	}

	// Different CPUs: ping-pong via host-side turn variable. The owner
	// and the measurer alternate; each waits for its turn with pure
	// simulated delays (polling a host flag costs nothing, so we use a
	// sim-memory doorbell to keep time flowing realistically).
	turn := m.Alloc(0, 1) // 0: owner's turn, 1: measurer's turn
	m.Spawn(ownerCPU, func(p *machine.Proc) {
		for r := 0; r <= rounds; r++ {
			p.SpinWhileEquals(turn, 1)
			l.Acquire(p, 0)
			l.Release(p, 0)
			p.Store(turn, 1)
		}
	})
	m.Spawn(measureCPU, func(p *machine.Proc) {
		for r := 0; r <= rounds; r++ {
			p.SpinWhileEquals(turn, 0)
			// Let the doorbell traffic settle out of the lock lines.
			p.Work(10 * sim.Microsecond)
			t0 := p.Now()
			l.Acquire(p, 1)
			l.Release(p, 1)
			if r > 0 { // round 0 warms the measurer's queue nodes
				total += p.Now() - t0
			}
			p.Store(turn, 0)
		}
	})
	m.Run()
	return total / sim.Time(rounds)
}
