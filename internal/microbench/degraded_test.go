package microbench

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

func degradedBase(seed uint64) NewBenchConfig {
	cfg := machine.WildFire()
	cfg.Seed = seed
	return NewBenchConfig{
		Machine:      cfg,
		Lock:         "HBO_GT",
		Threads:      8,
		Iterations:   12,
		CriticalWork: 600,
		PrivateWork:  1000,
		Tuning:       simlock.DefaultTuning(),
	}
}

// TestDegradedMatchesNewBenchWhenClean: with a zero fault plan and no
// timeout, DegradedBench reproduces NewBench exactly — so degradation
// numbers are attributable to the injection, not to the driver.
func TestDegradedMatchesNewBenchWhenClean(t *testing.T) {
	base := NewBench(degradedBase(5))
	deg := DegradedBench(DegradedConfig{NewBenchConfig: degradedBase(5)})
	if deg.TotalTime != base.TotalTime || deg.IterationTime != base.IterationTime {
		t.Fatalf("clean DegradedBench diverged: %v/%v vs %v/%v",
			deg.TotalTime, deg.IterationTime, base.TotalTime, base.IterationTime)
	}
	if deg.Traffic.Global != base.Traffic.Global {
		t.Fatalf("clean DegradedBench traffic diverged: %d vs %d",
			deg.Traffic.Global, base.Traffic.Global)
	}
	if deg.Aborts != 0 || deg.Faults.Total() != 0 {
		t.Fatalf("clean run reported aborts=%d faults=%d", deg.Aborts, deg.Faults.Total())
	}
}

// TestDegradedDeterministic: the same (fault seed, schedule) pair
// replays the identical degraded run; a different fault seed changes it.
func TestDegradedDeterministic(t *testing.T) {
	mk := func(fseed uint64) DegradedResult {
		fc, err := fault.Preset("all", fseed, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		return DegradedBench(DegradedConfig{
			NewBenchConfig: degradedBase(5),
			Fault:          fc,
			Timeout:        50 * sim.Microsecond,
		})
	}
	a, b := mk(1234), mk(1234)
	if a.TotalTime != b.TotalTime || a.Aborts != b.Aborts || a.Faults != b.Faults {
		t.Fatalf("replay diverged: %+v vs %+v", a.Faults, b.Faults)
	}
	if a.Faults.Total() == 0 {
		t.Fatal("no fault windows served; the plan never engaged")
	}
	c := mk(99)
	if c.TotalTime == a.TotalTime && c.Faults == a.Faults {
		t.Fatal("fault seed ignored: different seeds produced identical runs")
	}
}

// TestDegradedTimedAborts: under dense pauses with a small budget, the
// timed path aborts (and retries), while acquisition totals stay exact.
func TestDegradedTimedAborts(t *testing.T) {
	fc := fault.Config{
		Seed:  7,
		Pause: fault.PauseConfig{Enabled: true, MeanInterval: 60 * sim.Microsecond, MeanDuration: 40 * sim.Microsecond},
	}
	cfg := degradedBase(9)
	deg := DegradedBench(DegradedConfig{
		NewBenchConfig: cfg,
		Fault:          fc,
		Timeout:        15 * sim.Microsecond,
	})
	if deg.Acquisitions != cfg.Threads*cfg.Iterations {
		t.Fatalf("acquisitions = %d, want %d", deg.Acquisitions, cfg.Threads*cfg.Iterations)
	}
	if deg.Aborts == 0 {
		t.Fatal("no timed acquire expired; the abort path went unexercised")
	}
	if r := deg.AbortRate(); r <= 0 || r >= 1 {
		t.Fatalf("AbortRate = %v, want in (0,1)", r)
	}
}
