package microbench

import (
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

// DegradedConfig parameterizes the graceful-degradation benchmark: the
// new microbenchmark (Figure 4) run on a machine degraded by an
// internal/fault plan, optionally through the lock's timed acquire
// path.
type DegradedConfig struct {
	NewBenchConfig
	// Fault is the injection plan; it is written into Machine.Fault
	// before construction (any plan already present there is replaced).
	Fault fault.Config
	// Timeout, when positive and the lock implements simlock.TimedLock,
	// switches every acquire to AcquireTimeout with this budget in a
	// retry-until-acquired loop, counting expiries. Locks without a
	// timed path run their blocking acquire.
	Timeout sim.Time
}

// DegradedResult extends the benchmark result with degradation
// accounting.
type DegradedResult struct {
	NewBenchResult
	// Acquisitions counts successful critical-section entries.
	Acquisitions int
	// Aborts counts timed-acquire expiries; every abort was retried, so
	// Acquisitions matches the fault-free benchmark.
	Aborts int
	// Faults reports how many fault windows and NACKs the machine
	// actually served during the run.
	Faults fault.Stats
}

// AbortRate returns aborts per attempt (acquisitions + aborts).
func (r DegradedResult) AbortRate() float64 {
	attempts := r.Acquisitions + r.Aborts
	if attempts == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(attempts)
}

// DegradedBench runs the new microbenchmark on a degraded machine. The
// workload is identical to NewBench — same placement, same RNG streams,
// same shared-vector traffic — so a zero fault plan with Timeout 0
// reproduces NewBench exactly, and any divergence under faults is
// attributable to the injection.
func DegradedBench(cfg DegradedConfig) DegradedResult {
	mcfg := cfg.Machine
	mcfg.Fault = cfg.Fault
	m := machine.New(mcfg)
	cpus := Placement(mcfg, cfg.Threads)
	w0 := m.AllocatedWords()
	var l simlock.Lock = buildLock(cfg.Lock, m, cpus, cfg.Tuning)
	if lockWords := m.AllocatedWords() - w0; lockWords > 0 {
		m.LabelRange(machine.Addr(w0), lockWords, "lock")
	}
	if cfg.WrapLock != nil {
		l = cfg.WrapLock(l)
	}
	var timed simlock.TimedLock
	if cfg.Timeout > 0 {
		timed, _ = l.(simlock.TimedLock)
	}

	csLines := cfg.CriticalWork / intsPerLine
	var csVec machine.Addr
	if csLines > 0 {
		csVec = m.Alloc(0, csLines)
		m.LabelRange(csVec, csLines, "cs_data")
	}

	hc := newHandoffCounter()
	finish := make([]sim.Time, cfg.Threads)
	totalAcquires := 0
	aborts := 0

	for tid := 0; tid < cfg.Threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(mcfg.Seed*1000003 + uint64(tid) + 1)
			if cfg.PrivateWork > 0 {
				p.Work(elementWork * sim.Time(rng.Intn(2*cfg.PrivateWork)))
			}
			for i := 0; i < cfg.Iterations; i++ {
				if timed != nil {
					for !timed.AcquireTimeout(p, tid, cfg.Timeout) {
						aborts++
						p.Delay(100)
					}
				} else {
					l.Acquire(p, tid)
				}
				hc.record(p.Node())
				totalAcquires++
				for line := 0; line < csLines; line++ {
					a := csVec + machine.Addr(line)
					p.Store(a, p.Load(a)+1)
					p.Work(elementWork * intsPerLine)
				}
				if rem := cfg.CriticalWork % intsPerLine; rem > 0 {
					p.Work(elementWork * sim.Time(rem))
				}
				l.Release(p, tid)
				p.Work(elementWork * sim.Time(cfg.PrivateWork))
				if cfg.PrivateWork > 0 {
					p.Work(elementWork * sim.Time(rng.Intn(cfg.PrivateWork)))
				}
			}
			finish[tid] = p.Now()
		})
	}
	m.Run()

	res := DegradedResult{
		NewBenchResult: NewBenchResult{
			Lock:         cfg.Lock,
			Threads:      cfg.Threads,
			CriticalWork: cfg.CriticalWork,
			TotalTime:    m.Now(),
			Traffic:      m.Stats(),
			Lines:        m.LineStats(),
			FinishTimes:  finish,
		},
		Acquisitions: totalAcquires,
		Aborts:       aborts,
		Faults:       m.FaultStats(),
	}
	if totalAcquires > 0 {
		res.IterationTime = m.Now() / sim.Time(totalAcquires)
	}
	res.HandoffRatio = hc.Ratio()
	return res
}
